// Command loadgen is the live-socket load generator for the serving layer.
// It seals a synthetic epoch of -blocks /24s (or targets an already-running
// server with -target), then hammers the HTTP front door with -workers
// concurrent clients for -duration and reports sustained queries/s with
// latency percentiles and shed counts — the ISSUE's ">100k queries/s on a
// 1M-block world, p99 bounded while shedding" evidence, measured through
// real sockets rather than the in-process benchmark harness.
//
// Usage:
//
//	loadgen [-blocks 1048576] [-rounds 3] [-workers 16] [-duration 3s]
//	        [-mix lookup|mixed] [-target host:port] [-json out.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"sleepnet/internal/faults"
	"sleepnet/internal/monitor"
	"sleepnet/internal/netsim"
	"sleepnet/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// result is the machine-readable report (-json).
type result struct {
	Target   string  `json:"target"`
	Blocks   int     `json:"blocks"`
	Workers  int     `json:"workers"`
	Duration string  `json:"duration"`
	Requests int64   `json:"requests"`
	OK       int64   `json:"ok"`
	Shed     int64   `json:"shed"`
	Rejected int64   `json:"rejected"`
	Dropped  int64   `json:"dropped"`
	QPS      float64 `json:"queries_per_sec"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

func run() error {
	var (
		blocks   = flag.Int("blocks", 1<<20, "synthetic world size (self-hosted mode)")
		rounds   = flag.Int("rounds", 3, "rounds to seal before serving (self-hosted mode)")
		workers  = flag.Int("workers", 4*runtime.GOMAXPROCS(0), "concurrent clients")
		duration = flag.Duration("duration", 3*time.Second, "attack duration")
		mix      = flag.String("mix", "lookup", "request mix: lookup or mixed")
		target   = flag.String("target", "", "attack an existing server instead of self-hosting")
		jsonOut  = flag.String("json", "", "write the report as JSON to this file")
		seed     = flag.Uint64("seed", 0xf100d, "request-mix seed")
	)
	flag.Parse()

	addr := *target
	if addr == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := serve.NewServer(buildEngine(*blocks, *rounds), serve.ServerConfig{
			// Generous admission: loadgen measures serving capacity, not
			// shedding policy. Use -target against a default-configured
			// server to measure the latter.
			Lookup:   serve.ClassLimits{RPS: 1e9, Burst: 1 << 30, Queue: 1, MaxWait: time.Millisecond},
			Range:    serve.ClassLimits{RPS: 1e6, Burst: 1 << 20, Queue: 64, MaxWait: time.Millisecond},
			Summary:  serve.ClassLimits{RPS: 1e4, Burst: 1 << 10, Queue: 8, MaxWait: time.Millisecond},
			MaxConns: 4096,
		})
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() { _ = srv.Serve(ctx, ln) }()
		addr = ln.Addr().String()
		fmt.Printf("# self-hosted %d-block epoch on %s\n", *blocks, addr)
	}

	paths := lookupPaths(*blocks)
	if *mix == "mixed" {
		paths = append(paths, "/v1/blocks?limit=50", "/v1/blocks?down=true&limit=20", "/v1/summary", "/v1/status")
	}

	var mu sync.Mutex
	lats := make([]time.Duration, 0, 1<<20)
	attackCtx, stop := context.WithTimeout(context.Background(), *duration)
	defer stop()
	//lint:allow nowallclock: load-generator wall timing; printed, never persisted into datasets
	start := time.Now()
	stats := faults.Flood(attackCtx, faults.FloodConfig{
		Addr: addr, Workers: *workers, Seed: *seed, Paths: paths,
		OnLatency: func(d time.Duration) {
			mu.Lock()
			lats = append(lats, d)
			mu.Unlock()
		},
	})
	//lint:allow nowallclock: load-generator wall timing; printed, never persisted into datasets
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p int) float64 {
		if len(lats) == 0 {
			return 0
		}
		return float64(lats[len(lats)*p/100].Microseconds()) / 1000
	}
	res := result{
		Target:   addr,
		Blocks:   *blocks,
		Workers:  *workers,
		Duration: elapsed.String(),
		Requests: stats.Requests,
		OK:       stats.OK,
		Shed:     stats.Shed,
		Rejected: stats.Rejected,
		Dropped:  stats.Dropped,
		QPS:      float64(stats.OK+stats.Shed+stats.Rejected) / elapsed.Seconds(),
		P50Ms:    pct(50),
		P99Ms:    pct(99),
	}
	fmt.Printf("target=%s workers=%d elapsed=%v\n", res.Target, res.Workers, elapsed)
	fmt.Printf("requests=%d ok=%d shed=%d rejected=%d dropped=%d\n",
		res.Requests, res.OK, res.Shed, res.Rejected, res.Dropped)
	fmt.Printf("throughput=%.0f queries/s p50=%.3fms p99=%.3fms\n", res.QPS, res.P50Ms, res.P99Ms)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// buildEngine seals a synthetic epoch of n blocks through the same
// EpochSink contract the live monitor uses.
func buildEngine(n, rounds int) *serve.Engine {
	eng := serve.NewEngine(serve.EngineConfig{MinClassifyRounds: 1})
	eng.BeginRun(monitor.RunInfo{
		Shards: 1, Rounds: rounds, Blocks: n,
		Start:  time.Date(2013, time.April, 1, 0, 0, 0, 0, time.UTC),
		Period: 660 * time.Second, Seed: 1,
	})
	pub := make([]monitor.PubBlock, n)
	for i := range pub {
		pub[i] = monitor.PubBlock{ID: blockAt(i)}
	}
	eng.ResyncShard(0, 0, pub)
	deltas := make([]monitor.RoundPub, n)
	for r := 0; r < rounds; r++ {
		for i := range deltas {
			v := 0.25 + float64((i+r)%3)/4
			deltas[i] = monitor.RoundPub{Avail: v, Long: v}
		}
		eng.PublishRound(0, r, deltas)
	}
	return eng
}

// blockAt spreads ids across 1.x.x upward, matching the bench fixture.
func blockAt(i int) netsim.BlockID {
	return netsim.MakeBlockID(byte(1+i>>16), byte(i>>8), byte(i))
}

// lookupPaths picks a spread of present block ids to query.
func lookupPaths(n int) []string {
	paths := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		id := blockAt(i * (n / 64))
		s := id.String() // "a.b.c/24"
		paths = append(paths, "/v1/block/"+s[:len(s)-3])
	}
	return paths
}
