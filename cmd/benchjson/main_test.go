package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, res, ok := parseBenchLine("BenchmarkFig4CorrelationShortTerm-8   \t       3\t 349129712 ns/op\t 1024 B/op\t      12 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if name != "BenchmarkFig4CorrelationShortTerm" {
		t.Fatalf("name = %q", name)
	}
	if res.Iterations != 3 || res.NsPerOp != 349129712 {
		t.Fatalf("res = %+v", res)
	}
	if res.BytesPerOp == nil || *res.BytesPerOp != 1024 {
		t.Fatalf("bytes = %v", res.BytesPerOp)
	}
	if res.AllocsPerOp == nil || *res.AllocsPerOp != 12 {
		t.Fatalf("allocs = %v", res.AllocsPerOp)
	}
}

func TestParseBenchLineNoMem(t *testing.T) {
	name, res, ok := parseBenchLine("BenchmarkGoertzel-16 12345 987.6 ns/op")
	if !ok || name != "BenchmarkGoertzel" || res.NsPerOp != 987.6 {
		t.Fatalf("got %q %+v %v", name, res, ok)
	}
	if res.BytesPerOp != nil || res.AllocsPerOp != nil {
		t.Fatal("unexpected mem stats")
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"BenchmarkX-8",
		"BenchmarkX-8 abc 1 ns/op",
		"BenchmarkX-8 10 1 bogo/op",
		"goos: linux",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q accepted", line)
		}
	}
}

func writeTempJSON(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const legacyFile = `{
  "BenchmarkA": {"iterations": 1, "ns_per_op": 1000, "bytes_per_op": 4096, "allocs_per_op": 100},
  "BenchmarkOldOnly": {"iterations": 1, "ns_per_op": 5}
}`

const wrappedFile = `{
  "benchtime": "300ms",
  "benchmarks": {
    "BenchmarkA": {"iterations": 3, "ns_per_op": 500, "bytes_per_op": 1024, "allocs_per_op": 10},
    "BenchmarkNewOnly": {"iterations": 9, "ns_per_op": 7}
  }
}`

func TestLoadBenchFileBothSchemas(t *testing.T) {
	legacy, err := loadBenchFile(writeTempJSON(t, "legacy.json", legacyFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Benchmarks) != 2 || legacy.Benchmarks["BenchmarkA"].NsPerOp != 1000 {
		t.Fatalf("legacy = %+v", legacy)
	}
	wrapped, err := loadBenchFile(writeTempJSON(t, "wrapped.json", wrappedFile))
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Benchtime != "300ms" || len(wrapped.Benchmarks) != 2 {
		t.Fatalf("wrapped = %+v", wrapped)
	}
	if _, err := loadBenchFile(writeTempJSON(t, "bogus.json", `{"config": {"ns_per_op": 0}}`)); err == nil {
		t.Fatal("non-benchmark JSON accepted")
	}
}

func TestDiffBenchmarksImprovementPasses(t *testing.T) {
	oldF, _ := loadBenchFile(writeTempJSON(t, "old.json", legacyFile))
	newF, _ := loadBenchFile(writeTempJSON(t, "new.json", wrappedFile))
	th := thresholds{ns: 1.10, bytes: 1.10, allocs: 1.10}
	names, deltas, onlyOld, onlyNew := diffBenchmarks(oldF, newF, th)
	if len(names) != 1 || names[0] != "BenchmarkA" {
		t.Fatalf("shared = %v", names)
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkOldOnly" || len(onlyNew) != 1 || onlyNew[0] != "BenchmarkNewOnly" {
		t.Fatalf("one-sided = %v / %v", onlyOld, onlyNew)
	}
	for _, d := range deltas["BenchmarkA"] {
		if d.regressed {
			t.Errorf("improvement flagged as regression: %+v", d)
		}
	}
}

func TestDiffBenchmarksFlagsRegression(t *testing.T) {
	oldF, _ := loadBenchFile(writeTempJSON(t, "old.json", wrappedFile))
	newF, _ := loadBenchFile(writeTempJSON(t, "new.json", legacyFile))
	th := thresholds{ns: 1.10, bytes: 1.10, allocs: 1.10}
	_, deltas, _, _ := diffBenchmarks(oldF, newF, th)
	for _, d := range deltas["BenchmarkA"] {
		if !d.regressed {
			t.Errorf("2x-10x slowdown not flagged: %+v", d)
		}
	}
	// A generous threshold lets a 2x ns slowdown pass but still catches 4x B/op.
	loose := thresholds{ns: 2.5, bytes: 2.5, allocs: 2.5}
	_, deltas, _, _ = diffBenchmarks(oldF, newF, loose)
	for _, d := range deltas["BenchmarkA"] {
		want := d.ratio > 2.5
		if d.regressed != want {
			t.Errorf("threshold 2.5 metric %s ratio %.2f regressed=%v", d.metric, d.ratio, d.regressed)
		}
	}
}

func TestCompareMetricZeroBaseline(t *testing.T) {
	if d := compareMetric("allocs/op", 0, 0, 1.10, 0); d.regressed {
		t.Errorf("0 -> 0 flagged: %+v", d)
	}
	if d := compareMetric("allocs/op", 0, 5, 1.10, 0); !d.regressed {
		t.Errorf("0 -> 5 not flagged: %+v", d)
	}
}

func TestCompareMetricNoiseFloor(t *testing.T) {
	// 40 -> 60 ns/op is a 1.5x ratio but only 20 ns absolute: below a 25 ns
	// floor the benchmark is timer noise, not a regression.
	if d := compareMetric("ns/op", 40, 60, 1.10, 25); d.regressed {
		t.Errorf("sub-floor delta flagged: %+v", d)
	}
	// The same ratio above the floor still fails.
	if d := compareMetric("ns/op", 4000, 6000, 1.10, 25); !d.regressed {
		t.Errorf("super-floor regression not flagged: %+v", d)
	}
	// The floor also tempers the zero-baseline rule.
	if d := compareMetric("ns/op", 0, 10, 1.10, 25); d.regressed {
		t.Errorf("0 -> 10 flagged despite 25 ns floor: %+v", d)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{9, 1, 5}); m != 5 {
		t.Errorf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
}

func TestReduceSamplesMedian(t *testing.T) {
	f := func(v float64) *float64 { return &v }
	ss := []result{
		{Iterations: 10, NsPerOp: 300, BytesPerOp: f(128), AllocsPerOp: f(3)},
		{Iterations: 30, NsPerOp: 100, BytesPerOp: f(130), AllocsPerOp: f(3)},
		{Iterations: 20, NsPerOp: 900, BytesPerOp: f(126), AllocsPerOp: f(3)},
	}
	red := reduceSamples(ss, true)
	if red.NsPerOp != 300 || red.Iterations != 20 {
		t.Fatalf("median wrong: %+v", red)
	}
	if red.BytesPerOp == nil || *red.BytesPerOp != 128 {
		t.Fatalf("bytes median = %v", red.BytesPerOp)
	}
	if red.AllocsPerOp == nil || *red.AllocsPerOp != 3 {
		t.Fatalf("allocs median = %v", red.AllocsPerOp)
	}
	if red.NsSpread == nil || *red.NsSpread != 800 {
		t.Fatalf("spread = %v", red.NsSpread)
	}

	// A sample missing memory stats suppresses the memory medians entirely.
	ss[1].BytesPerOp = nil
	red = reduceSamples(ss, false)
	if red.BytesPerOp != nil {
		t.Fatal("bytes median fabricated from partial samples")
	}
	if red.NsSpread != nil {
		t.Fatal("spread recorded without multi-run mode")
	}

	// A single sample passes through untouched.
	one := reduceSamples(ss[:1], true)
	if one.NsPerOp != 300 || one.NsSpread != nil {
		t.Fatalf("single sample mangled: %+v", one)
	}
}
