package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	name, res, ok := parseBenchLine("BenchmarkFig4CorrelationShortTerm-8   \t       3\t 349129712 ns/op\t 1024 B/op\t      12 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if name != "BenchmarkFig4CorrelationShortTerm" {
		t.Fatalf("name = %q", name)
	}
	if res.Iterations != 3 || res.NsPerOp != 349129712 {
		t.Fatalf("res = %+v", res)
	}
	if res.BytesPerOp == nil || *res.BytesPerOp != 1024 {
		t.Fatalf("bytes = %v", res.BytesPerOp)
	}
	if res.AllocsPerOp == nil || *res.AllocsPerOp != 12 {
		t.Fatalf("allocs = %v", res.AllocsPerOp)
	}
}

func TestParseBenchLineNoMem(t *testing.T) {
	name, res, ok := parseBenchLine("BenchmarkGoertzel-16 12345 987.6 ns/op")
	if !ok || name != "BenchmarkGoertzel" || res.NsPerOp != 987.6 {
		t.Fatalf("got %q %+v %v", name, res, ok)
	}
	if res.BytesPerOp != nil || res.AllocsPerOp != nil {
		t.Fatal("unexpected mem stats")
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"BenchmarkX-8",
		"BenchmarkX-8 abc 1 ns/op",
		"BenchmarkX-8 10 1 bogo/op",
		"goos: linux",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q accepted", line)
		}
	}
}
