// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON map of benchmark name to measured values — the
// format `make bench` persists as BENCH_seed.json so performance regressions
// can be diffed across commits without reparsing free text.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem . | benchjson -o BENCH_seed.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark's measurements. Field names follow the
// benchmark output units.
type result struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()

	results := map[string]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the terminal
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, res, ok := parseBenchLine(line)
		if ok {
			results[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	// A sorted map keyed by name serializes deterministically.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make(map[string]result, len(results))
	for _, n := range names {
		ordered[n] = results[n]
	}
	data, err := json.MarshalIndent(ordered, "", "  ")
	fatal(err)
	data = append(data, '\n')

	if *out == "" {
		_, err = os.Stdout.Write(data)
		fatal(err)
		return
	}
	fatal(os.WriteFile(*out, data, 0o644))
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

// parseBenchLine parses one `BenchmarkName-N  iters  v unit  v unit ...`
// line. Lines without an ns/op measurement are rejected.
func parseBenchLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the GOMAXPROCS suffix: BenchmarkFoo-8 -> BenchmarkFoo.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	res := result{Iterations: iters, NsPerOp: -1}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			b := v
			res.BytesPerOp = &b
		case "allocs/op":
			a := v
			res.AllocsPerOp = &a
		}
	}
	if res.NsPerOp < 0 {
		return "", result{}, false
	}
	return name, res, true
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
