// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document of benchmark name to measured values — the
// format `make bench` persists as BENCH_*.json so performance regressions
// can be diffed across commits without reparsing free text.
//
// It has two modes. Collect mode parses benchmark output:
//
//	go test -run='^$' -bench=. -benchmem -benchtime=300ms . | \
//	    benchjson -benchtime 300ms -o BENCH_pr5.json
//
// With -runs N (pair it with `go test -count=N`) collect mode takes the
// per-metric MEDIAN across the N samples of each benchmark instead of
// keeping the last line, and records the ns/op spread (max-min) so a noisy
// host is visible in the artifact:
//
//	go test -run='^$' -bench=. -benchmem -count=5 . | \
//	    benchjson -runs 5 -o BENCH_pr7.json
//
// Diff mode compares two collected files and exits nonzero when any shared
// benchmark regressed beyond the allowed ratio on any metric:
//
//	benchjson -diff -threshold 1.10 BENCH_seed.json BENCH_pr5.json
//
// -noise-ns sets an absolute noise floor for diff mode: an ns/op increase
// smaller than this many ns/op is never flagged, however large its ratio —
// sub-floor benchmarks are timer-noise-dominated and their ratios are not
// meaningful.
//
// Collect mode writes the current schema, an object with a "benchtime"
// field recording the -benchtime the run used and a "benchmarks" map:
//
//	{"benchtime": "300ms", "benchmarks": {"BenchmarkFoo": {...}}}
//
// Diff mode reads both that schema and the legacy flat map (benchmark name
// directly to measurements, no wrapper) that earlier BENCH_seed.json files
// use, so the seed baseline stays comparable without rewriting it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark's measurements. Field names follow the
// benchmark output units.
type result struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// NsSpread is max-min ns/op across the -runs samples (multi-run mode
	// only): the host's noise, recorded next to the median it surrounds.
	NsSpread *float64 `json:"ns_spread,omitempty"`
}

// benchFile is the collected-output schema: run metadata plus the per-
// benchmark measurements.
type benchFile struct {
	Benchtime  string            `json:"benchtime,omitempty"`
	Runs       int               `json:"runs,omitempty"`
	Benchmarks map[string]result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout (collect mode)")
	benchtime := flag.String("benchtime", "", "record this -benchtime value in the output (collect mode)")
	diff := flag.Bool("diff", false, "compare two collected files: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 1.10, "fail when new/old exceeds this ratio on any metric (diff mode)")
	thresholdNs := flag.Float64("threshold-ns", 0, "override -threshold for ns/op (diff mode; 0 inherits)")
	thresholdBytes := flag.Float64("threshold-bytes", 0, "override -threshold for B/op (diff mode; 0 inherits)")
	thresholdAllocs := flag.Float64("threshold-allocs", 0, "override -threshold for allocs/op (diff mode; 0 inherits)")
	runs := flag.Int("runs", 1, "samples per benchmark to expect on stdin; >1 takes medians (collect mode, pair with go test -count)")
	noiseNs := flag.Float64("noise-ns", 0, "ignore ns/op increases smaller than this many ns/op (diff mode noise floor)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("diff mode needs exactly two files: benchjson -diff old.json new.json"))
		}
		inherit := func(v float64) float64 {
			if v > 0 {
				return v
			}
			return *threshold
		}
		regressed, err := runDiff(flag.Arg(0), flag.Arg(1), thresholds{
			ns:      inherit(*thresholdNs),
			bytes:   inherit(*thresholdBytes),
			allocs:  inherit(*thresholdAllocs),
			noiseNs: *noiseNs,
		})
		fatal(err)
		if regressed {
			os.Exit(1)
		}
		return
	}

	collect(*out, *benchtime, *runs)
}

// collect parses `go test -bench` output on stdin and writes the JSON
// document to out (or stdout when empty). With runs > 1 every benchmark's
// samples are reduced to their per-metric median.
func collect(out, benchtime string, runs int) {
	samples := map[string][]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the terminal
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, res, ok := parseBenchLine(line)
		if ok {
			samples[name] = append(samples[name], res)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	// A sorted map keyed by name serializes (and warns) deterministically.
	names := make([]string, 0, len(samples))
	for n := range samples {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make(map[string]result, len(samples))
	for _, name := range names {
		ss := samples[name]
		if runs > 1 && len(ss) != runs {
			fmt.Fprintf(os.Stderr, "benchjson: %s has %d samples, expected %d (medians taken over what arrived)\n",
				name, len(ss), runs)
		}
		ordered[name] = reduceSamples(ss, runs > 1)
	}
	fileRuns := 0
	if runs > 1 {
		fileRuns = runs
	}
	data, err := json.MarshalIndent(benchFile{Benchtime: benchtime, Runs: fileRuns, Benchmarks: ordered}, "", "  ")
	fatal(err)
	data = append(data, '\n')

	if out == "" {
		_, err = os.Stdout.Write(data)
		fatal(err)
		return
	}
	fatal(os.WriteFile(out, data, 0o644))
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(ordered), out)
}

// parseBenchLine parses one `BenchmarkName-N  iters  v unit  v unit ...`
// line. Lines without an ns/op measurement are rejected.
func parseBenchLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the GOMAXPROCS suffix: BenchmarkFoo-8 -> BenchmarkFoo.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	res := result{Iterations: iters, NsPerOp: -1}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			b := v
			res.BytesPerOp = &b
		case "allocs/op":
			a := v
			res.AllocsPerOp = &a
		}
	}
	if res.NsPerOp < 0 {
		return "", result{}, false
	}
	return name, res, true
}

// reduceSamples collapses one benchmark's samples into a single result.
// A single sample passes through unchanged; multiple samples reduce to the
// per-metric median, with the ns/op spread (max-min) recorded when multi-run
// mode asked for it.
func reduceSamples(ss []result, recordSpread bool) result {
	if len(ss) == 1 {
		return ss[0]
	}
	ns := make([]float64, len(ss))
	iters := make([]float64, len(ss))
	for i, s := range ss {
		ns[i] = s.NsPerOp
		iters[i] = float64(s.Iterations)
	}
	red := result{
		Iterations: int64(median(iters)),
		NsPerOp:    median(ns),
	}
	if recordSpread {
		sort.Float64s(ns)
		spread := ns[len(ns)-1] - ns[0]
		red.NsSpread = &spread
	}
	if vs := gather(ss, func(r result) *float64 { return r.BytesPerOp }); vs != nil {
		m := median(vs)
		red.BytesPerOp = &m
	}
	if vs := gather(ss, func(r result) *float64 { return r.AllocsPerOp }); vs != nil {
		m := median(vs)
		red.AllocsPerOp = &m
	}
	return red
}

// gather extracts one optional metric across samples; it returns nil unless
// EVERY sample carries the metric, so a half-instrumented run cannot fake a
// median.
func gather(ss []result, get func(result) *float64) []float64 {
	vs := make([]float64, 0, len(ss))
	for _, s := range ss {
		p := get(s)
		if p == nil {
			return nil
		}
		vs = append(vs, *p)
	}
	return vs
}

// median returns the middle value (mean of the middle two for even counts).
// The input slice is sorted in place.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// thresholds carries the per-metric allowed new/old ratios for diff mode,
// plus the absolute ns/op noise floor below which increases are ignored.
type thresholds struct {
	ns, bytes, allocs float64
	noiseNs           float64
}

// loadBenchFile reads a collected file in either schema: the current
// wrapper ({"benchtime": ..., "benchmarks": {...}}) or the legacy flat map
// of benchmark name to measurements.
func loadBenchFile(path string) (benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchFile{}, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err == nil && len(f.Benchmarks) > 0 {
		return f, nil
	}
	var flat map[string]result
	if err := json.Unmarshal(data, &flat); err != nil {
		return benchFile{}, fmt.Errorf("%s: not a benchjson file: %v", path, err)
	}
	// A legacy file is a flat name->result map; reject anything whose
	// entries carry no timing (e.g. an unrelated JSON object).
	for name, r := range flat {
		if !strings.HasPrefix(name, "Benchmark") || r.NsPerOp <= 0 {
			return benchFile{}, fmt.Errorf("%s: entry %q does not look like a benchmark result", path, name)
		}
	}
	if len(flat) == 0 {
		return benchFile{}, fmt.Errorf("%s: no benchmarks found", path)
	}
	return benchFile{Benchmarks: flat}, nil
}

// metricDelta describes one metric comparison within a benchmark.
type metricDelta struct {
	metric    string
	old, new  float64
	ratio     float64
	regressed bool
}

// sortedKeys returns the benchmark names of m in sorted order, so every
// diff traversal is deterministic.
func sortedKeys(m map[string]result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// diffBenchmarks compares the shared benchmarks of two files and returns
// the per-benchmark metric deltas (keyed and ordered by benchmark name)
// plus the names present on only one side.
func diffBenchmarks(oldF, newF benchFile, th thresholds) (names []string, deltas map[string][]metricDelta, onlyOld, onlyNew []string) {
	deltas = map[string][]metricDelta{}
	for _, name := range sortedKeys(oldF.Benchmarks) {
		o := oldF.Benchmarks[name]
		n, ok := newF.Benchmarks[name]
		if !ok {
			onlyOld = append(onlyOld, name)
			continue
		}
		names = append(names, name)
		row := []metricDelta{compareMetric("ns/op", o.NsPerOp, n.NsPerOp, th.ns, th.noiseNs)}
		if o.BytesPerOp != nil && n.BytesPerOp != nil {
			row = append(row, compareMetric("B/op", *o.BytesPerOp, *n.BytesPerOp, th.bytes, 0))
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			row = append(row, compareMetric("allocs/op", *o.AllocsPerOp, *n.AllocsPerOp, th.allocs, 0))
		}
		deltas[name] = row
	}
	for _, name := range sortedKeys(newF.Benchmarks) {
		if _, ok := oldF.Benchmarks[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	return names, deltas, onlyOld, onlyNew
}

// compareMetric builds the delta for one metric. A zero baseline cannot
// express a ratio: old==0 && new==0 is a pass, old==0 && new>0 is flagged
// as a regression (something that cost nothing now costs something).
// An increase no larger than floor absolute units is never a regression —
// on a timer-noise-dominated benchmark the ratio is not meaningful.
func compareMetric(metric string, old, new, threshold, floor float64) metricDelta {
	d := metricDelta{metric: metric, old: old, new: new}
	switch {
	case old == 0 && new == 0:
		d.ratio = 1
	case old == 0:
		d.ratio = -1 // marker: no finite ratio
		d.regressed = new > floor
	default:
		d.ratio = new / old
		d.regressed = d.ratio > threshold && new-old > floor
	}
	return d
}

// runDiff prints the comparison table to stdout and returns whether any
// shared benchmark regressed beyond its metric threshold.
func runDiff(oldPath, newPath string, th thresholds) (bool, error) {
	oldF, err := loadBenchFile(oldPath)
	if err != nil {
		return false, err
	}
	newF, err := loadBenchFile(newPath)
	if err != nil {
		return false, err
	}
	names, deltas, onlyOld, onlyNew := diffBenchmarks(oldF, newF, th)
	if len(names) == 0 {
		return false, fmt.Errorf("no shared benchmarks between %s and %s", oldPath, newPath)
	}

	fmt.Printf("benchdiff: %s -> %s (thresholds ns %.2fx, B %.2fx, allocs %.2fx)\n",
		oldPath, newPath, th.ns, th.bytes, th.allocs)
	regressions := 0
	for _, name := range names {
		for _, d := range deltas[name] {
			flag := "ok"
			switch {
			case d.regressed:
				flag = "REGRESSION"
				regressions++
			case d.ratio < 1:
				flag = "improved"
			}
			ratio := "n/a"
			if d.ratio >= 0 {
				ratio = fmt.Sprintf("%+.1f%%", (d.ratio-1)*100)
			}
			fmt.Printf("  %-50s %-10s %14.1f -> %14.1f  %8s  %s\n",
				name, d.metric, d.old, d.new, ratio, flag)
		}
	}
	for _, name := range onlyOld {
		fmt.Printf("  note: %s only in %s (skipped)\n", name, oldPath)
	}
	for _, name := range onlyNew {
		fmt.Printf("  note: %s only in %s (skipped)\n", name, newPath)
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: %d metric regression(s) across %d shared benchmarks\n", regressions, len(names))
		return true, nil
	}
	fmt.Printf("benchdiff: no regressions across %d shared benchmarks\n", len(names))
	return false, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
