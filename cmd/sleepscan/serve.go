package main

// The serve subcommand runs the live query layer over a monitored campaign:
// a crash-tolerant monitor (as in `sleepscan monitor`) publishes every
// committed round into the epoch engine, and a hardened HTTP server answers
// per-block availability, streaming diurnal class, and sleep-hour queries
// while probing is still underway.
//
//	GET /v1/status            serving posture (never shed)
//	GET /v1/block/10.2.3      one block's state
//	GET /v1/blocks?prefix=10.2&down=true&limit=100
//	GET /v1/summary           full-world rollup
//
// Overload is explicit: per-class token buckets shed with 429/503 and
// Retry-After (summaries first, single-block lookups last), responses carry
// X-Sleepnet-Epoch / X-Sleepnet-Stale-Rounds, and a quarantined or dead
// monitor flips X-Sleepnet-Degraded while the last good epoch keeps
// serving. After the campaign ends the server lingers until interrupted.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sleepnet/internal/analysis"
	"sleepnet/internal/metrics"
	"sleepnet/internal/monitor"
	"sleepnet/internal/report"
	"sleepnet/internal/serve"
	"sleepnet/internal/world"
)

func runServe(argv []string) {
	fs := flag.NewFlagSet("sleepscan serve", flag.ExitOnError)
	blocks := fs.Int("blocks", 500, "number of /24 blocks in the world")
	rounds := fs.Int("rounds", 131, "rounds to monitor (131 x 11 min is about one day)")
	shards := fs.Int("shards", 4, "worker shards")
	seed := fs.Uint64("seed", 42, "seed")
	outages := fs.Float64("outages", 0.15, "base outage episodes per block-week (0 disables)")
	walDir := fs.String("wal", "", "durability directory; re-run with the same value to resume")
	syncWAL := fs.Bool("sync", false, "fsync every WAL record (power-cut safe, slower)")
	snapEvery := fs.Int("snapshot-every", 16, "snapshot each shard every N rounds")
	listen := fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
	withMetrics := fs.Bool("metrics", false, "report run-cost metrics on stdout when done")
	metricsOut := fs.String("metricsout", "", "write the metrics snapshot (JSON) to this file")
	_ = fs.Parse(argv) // ExitOnError: Parse never returns an error

	w, err := world.Generate(world.Config{
		Blocks:              *blocks,
		Seed:                *seed,
		OutagesPerBlockWeek: *outages,
	})
	fatal(err)

	reg := metrics.New()
	eng := serve.NewEngine(serve.EngineConfig{Metrics: reg})
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()

	m, err := monitor.New(monitor.Config{
		Net:           w.Net,
		Start:         analysis.DefaultStart,
		Rounds:        *rounds,
		Shards:        *shards,
		Seed:          *seed,
		WALDir:        *walDir,
		SyncWAL:       *syncWAL,
		SnapshotEvery: *snapEvery,
		WatchdogTick:  tick.C,
		Metrics:       reg,
		Sink:          eng,
	})
	fatal(err)

	ln, err := net.Listen("tcp", *listen)
	fatal(err)
	srv := serve.NewServer(eng, serve.ServerConfig{Metrics: reg})
	srvCtx, srvStop := context.WithCancel(context.Background())
	defer srvStop()
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Serve(srvCtx, ln) }()
	fmt.Printf("serving on http://%s (503 until the first epoch seals)\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	fmt.Printf("monitoring %d blocks across %d shards for %d rounds\n",
		m.NumBlocks(), m.NumShards(), *rounds)
	res, err := m.Run(ctx)
	stop()

	switch {
	case err == nil && res.Completed:
		fmt.Printf("campaign complete (%d shard restarts); final epoch %d\n",
			res.Restarts, eng.Status().Epoch)
	case err == nil && res.Drained:
		fmt.Printf("drained cleanly (%d shard restarts); last epoch %d stays served\n",
			res.Restarts, eng.Status().Epoch)
		eng.SetDegraded()
	case errors.Is(err, monitor.ErrQuarantine), errors.Is(err, monitor.ErrWatchdog):
		// The monitor died but the last good epoch is still queryable:
		// degraded mode, explicit in every response header.
		fmt.Fprintf(os.Stderr, "monitor failed: %v — serving last epoch degraded\n", err)
		eng.SetDegraded()
	default:
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stopped without completing (%d shards quarantined); serving degraded\n",
			len(res.Quarantined))
		eng.SetDegraded()
	}

	fmt.Println("serving until interrupt (ctrl-c to exit)")
	linger, lingerStop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	<-linger.Done()
	lingerStop()
	srvStop()
	fatal(<-srvDone)

	if *withMetrics {
		fmt.Println("\nrun metrics:")
		fmt.Print(report.Metrics(reg.Snapshot()))
	}
	if *metricsOut != "" {
		f, ferr := os.Create(*metricsOut)
		fatal(ferr)
		fatal(reg.Snapshot().WriteJSON(f))
		fatal(f.Close())
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
}
