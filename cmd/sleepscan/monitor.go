package main

// The monitor subcommand runs the measurement as a long-lived crash-tolerant
// service instead of a batch campaign: sharded probing, per-shard WAL and
// snapshots, supervised restarts, and graceful drain on SIGINT/SIGTERM.
// Re-running with the same -wal directory resumes the campaign exactly where
// the committed state left off; the completed study is byte-identical no
// matter how many times the run was interrupted.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sleepnet/internal/analysis"
	"sleepnet/internal/metrics"
	"sleepnet/internal/monitor"
	"sleepnet/internal/report"
	"sleepnet/internal/world"
)

func runMonitor(argv []string) {
	fs := flag.NewFlagSet("sleepscan monitor", flag.ExitOnError)
	blocks := fs.Int("blocks", 500, "number of /24 blocks in the world")
	rounds := fs.Int("rounds", 131, "rounds to monitor (131 x 11 min is about one day)")
	shards := fs.Int("shards", 4, "worker shards (execution detail; results are shard-count independent)")
	seed := fs.Uint64("seed", 42, "seed")
	outages := fs.Float64("outages", 0.15, "base outage episodes per block-week (0 disables)")
	walDir := fs.String("wal", "", "durability directory; re-run with the same value to resume")
	syncWAL := fs.Bool("sync", false, "fsync every WAL record (power-cut safe, slower)")
	snapEvery := fs.Int("snapshot-every", 16, "snapshot each shard every N rounds")
	outPath := fs.String("o", "", "write the completed study (JSON) to this file")
	withMetrics := fs.Bool("metrics", false, "report run-cost metrics on stdout when done")
	metricsOut := fs.String("metricsout", "", "write the metrics snapshot (JSON) to this file")
	_ = fs.Parse(argv) // ExitOnError: Parse never returns an error

	w, err := world.Generate(world.Config{
		Blocks:              *blocks,
		Seed:                *seed,
		OutagesPerBlockWeek: *outages,
	})
	fatal(err)

	reg := metrics.New()
	// The watchdog only needs tick arrival, not tick values, so the wall
	// clock never reaches the measurement.
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()

	m, err := monitor.New(monitor.Config{
		Net:           w.Net,
		Start:         analysis.DefaultStart,
		Rounds:        *rounds,
		Shards:        *shards,
		Seed:          *seed,
		WALDir:        *walDir,
		SyncWAL:       *syncWAL,
		SnapshotEvery: *snapEvery,
		WatchdogTick:  tick.C,
		Metrics:       reg,
	})
	fatal(err)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	fmt.Printf("monitoring %d blocks across %d shards for %d rounds", m.NumBlocks(), m.NumShards(), *rounds)
	if *walDir != "" {
		fmt.Printf(" (wal: %s)", *walDir)
	}
	fmt.Println()

	//lint:allow nowallclock: CLI-only elapsed display; never written into datasets or reports
	t0 := time.Now()
	res, err := m.Run(ctx)
	stop()
	//lint:allow nowallclock: CLI-only elapsed display; never written into datasets or reports
	elapsed := time.Since(t0).Round(time.Millisecond)

	switch {
	case err == nil && res.Completed:
		fmt.Printf("campaign complete in %v (%d shard restarts)\n", elapsed, res.Restarts)
		st, serr := res.Study()
		fatal(serr)
		if *outPath != "" {
			data, eerr := st.Encode()
			fatal(eerr)
			fatal(os.WriteFile(*outPath, data, 0o644))
			fmt.Printf("study written to %s (%d blocks)\n", *outPath, len(st.Blocks))
		}
	case err == nil && res.Drained:
		fmt.Printf("drained cleanly after %v (%d shard restarts)\n", elapsed, res.Restarts)
		if *walDir != "" {
			fmt.Printf("resume with: sleepscan monitor -wal %s -blocks %d -rounds %d -seed %d\n",
				*walDir, *blocks, *rounds, *seed)
		} else {
			fmt.Println("no -wal directory: the drained progress is not recoverable")
		}
	case errors.Is(err, monitor.ErrQuarantine), errors.Is(err, monitor.ErrWatchdog):
		fatal(err)
	default:
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stopped after %v without completing (%d shards quarantined)\n", elapsed, len(res.Quarantined))
	}

	if *withMetrics {
		fmt.Println("\nrun metrics:")
		fmt.Print(report.Metrics(reg.Snapshot()))
	}
	if *metricsOut != "" {
		f, ferr := os.Create(*metricsOut)
		fatal(ferr)
		fatal(reg.Snapshot().WriteJSON(f))
		fatal(f.Close())
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}
}
