// Command sleepscan runs the full measurement pipeline end to end — the
// equivalent of the paper's data-collection-plus-analysis chain: generate
// (or reuse) a synthetic world, probe every block adaptively for the given
// number of days, estimate availability, detect diurnal blocks, and print
// the global report: class counts, per-country and per-region tables, the
// probing budget, and where the Internet sleeps.
//
// Usage:
//
//	sleepscan [-blocks N] [-days N] [-seed N] [-restarts] [-json]
//	          [-loss P] [-corrupt P] [-ratelimit N] [-blackout-every D -blackout-for D]
//	          [-skew D] [-drift D] [-retries N] [-checkpoint FILE [-resume]]
//
// The monitor subcommand runs the measurement as a crash-tolerant service
// with durable WAL recovery and graceful signal drain:
//
//	sleepscan monitor [-blocks N] [-rounds N] [-shards N] [-seed N]
//	                  [-wal DIR] [-sync] [-snapshot-every N] [-o FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sleepnet/internal/analysis"
	"sleepnet/internal/core"
	"sleepnet/internal/dataset"
	"sleepnet/internal/dsp"
	"sleepnet/internal/faults"
	"sleepnet/internal/geo"
	"sleepnet/internal/metrics"
	"sleepnet/internal/report"
	"sleepnet/internal/trinocular"
	"sleepnet/internal/world"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "monitor" {
		runMonitor(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	blocks := flag.Int("blocks", 2000, "number of /24 blocks in the world")
	days := flag.Int("days", 14, "days of probing")
	seed := flag.Uint64("seed", 42, "seed")
	restarts := flag.Bool("restarts", true, "model 5.5h prober restarts")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON summary")
	outages := flag.Float64("outages", 0.15, "base outage episodes per block-week (0 disables)")
	savePath := flag.String("o", "", "save the measured dataset to this file")
	csvPath := flag.String("csv", "", "export per-block records as CSV to this file")
	loss := flag.Float64("loss", 0, "inject this probe loss probability")
	corrupt := flag.Float64("corrupt", 0, "inject this reply corruption probability")
	rateLimit := flag.Int("ratelimit", 0, "rate-limit probes per block per round (0 = off)")
	blackoutEvery := flag.Duration("blackout-every", 0, "vantage blackout period (with -blackout-for)")
	blackoutFor := flag.Duration("blackout-for", 0, "vantage blackout length (with -blackout-every)")
	skew := flag.Duration("skew", 0, "constant prober clock skew")
	drift := flag.Duration("drift", 0, "prober clock drift per day")
	retries := flag.Int("retries", 0, "retry attempts per probe for local send failures (0 = off)")
	checkpoint := flag.String("checkpoint", "", "checkpoint measured blocks to this file")
	resume := flag.Bool("resume", false, "resume from -checkpoint, skipping measured blocks")
	withMetrics := flag.Bool("metrics", false, "instrument the run and report its cost metrics")
	flag.Parse()

	w, err := world.Generate(world.Config{
		Blocks:              *blocks,
		Seed:                *seed,
		OutagesPerBlockWeek: *outages,
	})
	fatal(err)
	cfg := analysis.StudyConfig{
		Days:          *days,
		Seed:          *seed ^ 0x5ca9,
		MissingRate:   0.03,
		DuplicateRate: 0.02,
		Faults: faults.Config{
			Seed:              *seed ^ 0xfa17,
			LossRate:          *loss,
			CorruptRate:       *corrupt,
			RateLimitPerRound: *rateLimit,
			BlackoutEvery:     *blackoutEvery,
			BlackoutFor:       *blackoutFor,
			ClockSkew:         *skew,
			ClockDriftPerDay:  *drift,
		},
		Retry:          trinocular.RetryConfig{MaxAttempts: *retries},
		CheckpointPath: *checkpoint,
		Resume:         *resume,
	}
	if *restarts {
		cfg.RestartInterval = 5*time.Hour + 30*time.Minute
	}
	var reg *metrics.Registry
	if *withMetrics {
		reg = metrics.New()
		cfg.Metrics = reg
		dsp.SetMetrics(reg)
		defer dsp.SetMetrics(nil)
	}
	//lint:allow nowallclock: CLI-only elapsed display; never written into datasets or reports
	t0 := time.Now()
	st, err := analysis.MeasureWorld(w, cfg)
	fatal(err)
	//lint:allow nowallclock: CLI-only elapsed display; never written into datasets or reports
	elapsed := time.Since(t0)

	strict, either := st.DiurnalFraction()
	counts := st.CountByClass()
	minBlocks := len(w.Blocks) / 400
	if minBlocks < 3 {
		minBlocks = 3
	}

	if *asJSON {
		out := map[string]any{
			"blocks":         len(w.Blocks),
			"measured":       len(st.Measured()),
			"days":           *days,
			"strictFraction": strict,
			"eitherFraction": either,
			"strictBlocks":   counts[core.StrictDiurnal],
			"relaxedBlocks":  counts[core.RelaxedDiurnal],
			"nonDiurnal":     counts[core.NonDiurnal],
			"probesPerHour":  st.ProbeBudget(),
			"elapsedSeconds": elapsed.Seconds(),
			"countries":      st.CountryTable(minBlocks),
			"regions":        st.RegionTable(),
			"errors":         st.ErrorCount(),
			"partial":        st.PartialCount(),
			"quarantined":    st.QuarantinedCount(),
		}
		if msg := st.FirstError(); msg != "" {
			out["firstError"] = msg
		}
		if cfg.Faults.Active() {
			fs := st.FaultTotals()
			failed, rt, se, rl := st.DegradationTotals()
			out["faults"] = map[string]any{
				"dropped":          fs.Dropped,
				"rateLimited":      fs.RateLimited,
				"sendErrors":       fs.SendErrors,
				"corrupted":        fs.Corrupted,
				"failedRounds":     failed,
				"retries":          rt,
				"probeSendErrors":  se,
				"probeRateLimited": rl,
			}
		}
		if reg != nil {
			out["metrics"] = reg.Snapshot()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(out))
		return
	}

	fmt.Printf("sleepscan: %d blocks probed for %d days in %v\n",
		len(st.Measured()), *days, elapsed.Round(time.Millisecond))
	fmt.Printf("probing budget: %.1f probes/block/hour (paper budget: < 20)\n\n", st.ProbeBudget())
	if n := st.ErrorCount(); n > 0 {
		fmt.Printf("measurement errors: %d blocks (first: %s)\n\n", n, st.FirstError())
	}
	if cfg.Faults.Active() {
		fs := st.FaultTotals()
		failed, rt, se, rl := st.DegradationTotals()
		fmt.Printf("fault injection: %s\n", fs)
		fmt.Printf("degradation: failed rounds=%d retries=%d send errors=%d rate limited=%d\n", failed, rt, se, rl)
		fmt.Printf("population: %d partial, %d quarantined\n\n", st.PartialCount(), st.QuarantinedCount())
	}
	fmt.Printf("strictly diurnal: %d (%s)   relaxed: %d   non-diurnal: %d\n",
		counts[core.StrictDiurnal], report.Pct(strict),
		counts[core.RelaxedDiurnal], counts[core.NonDiurnal])
	fmt.Printf("either diurnal: %s (paper: 11%% strict, 25%% either at full scale)\n\n", report.Pct(either))

	fmt.Println("where the Internet sleeps (fraction of diurnal blocks by region):")
	rows := [][]string{}
	for _, r := range st.RegionTable() {
		rows = append(rows, []string{r.Region, fmt.Sprint(r.Blocks), report.F(r.FracDiurnal)})
	}
	fmt.Print(report.Table([]string{"region", "blocks", "frac diurnal"}, rows))

	fmt.Println("\ntop countries:")
	rows = rows[:0]
	for i, r := range st.CountryTable(minBlocks) {
		if i >= 15 {
			break
		}
		rows = append(rows, []string{r.Code, fmt.Sprint(r.Blocks), report.F(r.FracDiurnal), fmt.Sprintf("%.0f", r.GDP)})
	}
	fmt.Print(report.Table([]string{"country", "blocks", "frac diurnal", "GDP"}, rows))

	db := geo.FromWorld(w, 0.93, *seed)
	if res, err := st.CorrelateGDP(minBlocks); err == nil {
		fmt.Printf("\ndiurnalness vs GDP correlation: %.3f (paper: -0.526)\n", res.R)
	}
	if pl, err := st.PhaseVsLongitude(db, true); err == nil {
		fmt.Printf("phase vs longitude correlation: %.3f (paper: 0.763 relaxed)\n", pl.R)
	}

	if *outages > 0 {
		fmt.Println("\nreliability (diurnal blocks excluded so sleep is not counted as outage):")
		rows = rows[:0]
		for i, r := range st.OutageTable(minBlocks, true) {
			if i >= 10 {
				break
			}
			rows = append(rows, []string{
				r.Code, fmt.Sprint(r.Blocks), fmt.Sprintf("%.3f", r.EpisodesPerBlockWeek),
				r.Agg.NinesString(),
			})
		}
		fmt.Print(report.Table([]string{"country", "blocks", "outages/blk-week", "uptime"}, rows))
		if r, anova, err := st.OutageGDPCorrelation(minBlocks); err == nil {
			fmt.Printf("outage rate vs GDP correlation: %.3f (p = %.3g)\n", r, anova.P)
		}
	}

	if reg != nil {
		fmt.Println("\nrun metrics:")
		fmt.Print(report.Metrics(reg.Snapshot()))
	}

	saveDataset(st, reg, *savePath, *csvPath)
}

// saveDataset persists the study when output paths were requested, attaching
// the run-cost snapshot when the campaign was instrumented.
func saveDataset(st *analysis.Study, reg *metrics.Registry, savePath, csvPath string) {
	if savePath == "" && csvPath == "" {
		return
	}
	ds := dataset.FromStudy(st)
	if reg != nil {
		ds.Metrics = reg.Snapshot()
	}
	if savePath != "" {
		fatal(ds.Save(savePath))
		fmt.Printf("\ndataset saved to %s (%d records)\n", savePath, len(ds.Blocks))
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		fatal(err)
		fatal(ds.ExportCSV(f))
		fatal(f.Close())
		fmt.Printf("CSV exported to %s\n", csvPath)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sleepscan:", err)
		os.Exit(1)
	}
}
