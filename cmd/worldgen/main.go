// Command worldgen generates a synthetic world and describes it: country
// populations, designed diurnal fractions, link-technology mixes, the /8
// allocation calendar, and the operator (AS/organization) inventory.
//
// Usage:
//
//	worldgen [-blocks N] [-seed N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"sleepnet/internal/report"
	"sleepnet/internal/world"
)

func main() {
	blocks := flag.Int("blocks", 3000, "number of /24 blocks")
	seed := flag.Uint64("seed", 42, "generator seed")
	verbose := flag.Bool("v", false, "list individual ISPs and /8 allocations")
	flag.Parse()

	w, err := world.Generate(world.Config{Blocks: *blocks, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "worldgen:", err)
		os.Exit(1)
	}
	fmt.Printf("world: %d blocks, %d ISPs, %d allocated /8s, seed %d\n\n",
		len(w.Blocks), len(w.ISPs), len(w.AllocDates), *seed)

	type agg struct{ n, diurnal int }
	byCountry := map[string]*agg{}
	byLink := map[string]*agg{}
	for _, b := range w.Blocks {
		c := byCountry[b.Country.Code]
		if c == nil {
			c = &agg{}
			byCountry[b.Country.Code] = c
		}
		l := byLink[b.LinkType]
		if l == nil {
			l = &agg{}
			byLink[b.LinkType] = l
		}
		c.n++
		l.n++
		if b.DesignedDiurnal {
			c.diurnal++
			l.diurnal++
		}
	}

	var codes []string
	for code := range byCountry {
		codes = append(codes, code)
	}
	sort.Slice(codes, func(i, j int) bool { return byCountry[codes[i]].n > byCountry[codes[j]].n })
	rows := [][]string{}
	for _, code := range codes {
		c := world.CountryByCode(code)
		a := byCountry[code]
		rows = append(rows, []string{
			code, c.Region, fmt.Sprint(a.n),
			report.F(float64(a.diurnal) / float64(a.n)),
			report.F(c.DiurnalFrac),
			fmt.Sprintf("%.0f", c.GDP),
		})
	}
	fmt.Println("country populations (designed diurnal fraction vs target):")
	fmt.Print(report.Table([]string{"country", "region", "blocks", "designed", "target", "GDP"}, rows))

	fmt.Println("\nlink technologies:")
	rows = rows[:0]
	for _, lt := range world.LinkTypes {
		a := byLink[lt]
		if a == nil {
			continue
		}
		rows = append(rows, []string{
			lt, fmt.Sprint(a.n), report.F(float64(a.diurnal) / float64(a.n)),
		})
	}
	fmt.Print(report.Table([]string{"link", "blocks", "designed diurnal"}, rows))

	if *verbose {
		fmt.Println("\n/8 allocation calendar:")
		var s8s []int
		for s8 := range w.AllocDates {
			s8s = append(s8s, s8)
		}
		sort.Ints(s8s)
		for _, s8 := range s8s {
			fmt.Printf("  %3d/8  %s\n", s8, w.AllocDates[s8].Format("2006-01"))
		}
		fmt.Println("\nISPs:")
		for _, isp := range w.ISPs {
			fmt.Printf("  %-40s %s ASNs=%v\n", isp.Name, isp.Country, isp.ASNs)
		}
	}
}
