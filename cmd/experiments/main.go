// Command experiments regenerates every table and figure of the paper's
// evaluation from the simulated world. Run with a list of experiment ids
// (fig1..fig17, table1..table5) or "all".
//
// Usage:
//
//	experiments [-blocks N] [-seed N] [-days N] [-quick] all
//	experiments table3 fig16 table5
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"sleepnet/internal/agree"
	"sleepnet/internal/analysis"
	"sleepnet/internal/core"
	"sleepnet/internal/dsp"
	"sleepnet/internal/geo"
	"sleepnet/internal/metrics"
	"sleepnet/internal/netsim"
	"sleepnet/internal/report"
	"sleepnet/internal/stats"
	"sleepnet/internal/trinocular"
	"sleepnet/internal/world"
)

var (
	flagBlocks     = flag.Int("blocks", 3000, "blocks in the simulated world")
	flagSeed       = flag.Uint64("seed", 42, "world and measurement seed")
	flagDays       = flag.Int("days", 14, "days of probing for world-scale studies")
	flagQuick      = flag.Bool("quick", false, "smaller populations and sweeps")
	flagPNG        = flag.String("png", "", "directory to write fig12/fig13 world maps as PNG")
	flagMetrics    = flag.Bool("metrics", false, "instrument the runs and print cost metrics at the end")
	flagMetricsOut = flag.String("metricsout", "", "write the metrics snapshot as JSON to this file")
	flagCPUProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this file")
	flagMemProfile = flag.String("memprofile", "", "write a pprof heap profile taken after the selected experiments to this file")
	flagAgreeOut   = flag.String("agreeout", "", "write the agree experiment's report as JSON to this file")
)

// ctx lazily builds the shared world and study.
type ctx struct {
	world   *world.World
	study   *analysis.Study
	geoDB   *geo.DB
	metrics *metrics.Registry
}

func (c *ctx) World() *world.World {
	if c.world == nil {
		n := *flagBlocks
		if *flagQuick && n > 1000 {
			n = 1000
		}
		w, err := world.Generate(world.Config{Blocks: n, Seed: *flagSeed})
		must(err)
		c.world = w
		fmt.Printf("# world: %d blocks, seed %d\n", len(w.Blocks), *flagSeed)
	}
	return c.world
}

func (c *ctx) Study() *analysis.Study {
	if c.study == nil {
		w := c.World()
		//lint:allow nowallclock: CLI-only elapsed display on a "#" comment line; never parsed or persisted
		start := time.Now()
		st, err := analysis.MeasureWorld(w, analysis.StudyConfig{
			Days:            *flagDays,
			Seed:            *flagSeed ^ 0xabcd,
			RestartInterval: 5*time.Hour + 30*time.Minute,
			MissingRate:     0.03,
			DuplicateRate:   0.02,
			Metrics:         c.metrics,
		})
		must(err)
		c.study = st
		strict, either := st.DiurnalFraction()
		fmt.Printf("# study: %d blocks measured in %v; %s strict, %s either diurnal; %.1f probes/block/hour\n",
			//lint:allow nowallclock: CLI-only elapsed display on a "#" comment line; never parsed or persisted
			len(st.Measured()), time.Since(start).Round(time.Millisecond),
			report.Pct(strict), report.Pct(either), st.ProbeBudget())
	}
	return c.study
}

func (c *ctx) Geo() *geo.DB {
	if c.geoDB == nil {
		c.geoDB = geo.FromWorld(c.World(), 0.93, *flagSeed^0x9e0)
	}
	return c.geoDB
}

// minCountryBlocks scales the paper's 1000-block floor to the world size.
func (c *ctx) minCountryBlocks() int {
	m := len(c.World().Blocks) / 400
	if m < 3 {
		m = 3
	}
	return m
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	// The heap-profile defer is registered first so it runs after the CPU
	// profile has stopped: its runtime.GC barrier then cannot pollute the
	// CPU samples.
	if *flagMemProfile != "" {
		defer func() {
			f, err := os.Create(*flagMemProfile)
			must(err)
			runtime.GC() // materialize the retained-heap picture
			must(pprof.WriteHeapProfile(f))
			must(f.Close())
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", *flagMemProfile)
		}()
	}
	if *flagCPUProfile != "" {
		f, err := os.Create(*flagCPUProfile)
		must(err)
		must(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			must(f.Close())
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *flagCPUProfile)
		}()
	}
	c := &ctx{}
	if *flagMetrics || *flagMetricsOut != "" {
		c.metrics = metrics.New()
		dsp.SetMetrics(c.metrics)
		defer dsp.SetMetrics(nil)
	}
	runners := experimentRunners()
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		for id := range runners {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	} else {
		ids = args
	}
	for _, id := range ids {
		run, ok := runners[strings.ToLower(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
			usage()
			os.Exit(2)
		}
		fmt.Printf("\n===== %s =====\n", strings.ToLower(id))
		run(c)
	}
	if c.metrics != nil {
		snap := c.metrics.Snapshot()
		if *flagMetrics {
			fmt.Println("\n===== run metrics =====")
			fmt.Print(report.Metrics(snap))
		}
		if *flagMetricsOut != "" {
			f, err := os.Create(*flagMetricsOut)
			must(err)
			must(snap.WriteJSON(f))
			must(f.Close())
			fmt.Printf("metrics snapshot written to %s\n", *flagMetricsOut)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [flags] <all | ids...>")
	fmt.Fprintln(os.Stderr, "ids: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12")
	fmt.Fprintln(os.Stderr, "     fig13 fig14 fig15 fig16 fig17 table1 table2 table3 table4 table5")
	fmt.Fprintln(os.Stderr, "     outages census usc faults agree (extensions)")
	flag.PrintDefaults()
}

func experimentRunners() map[string]func(*ctx) {
	return map[string]func(*ctx){
		"fig1": fig1, "fig2": fig2, "fig3": fig3, "fig4": fig4,
		"fig5": fig5, "fig6": fig6, "fig7": fig7, "fig8": fig8,
		"fig9": fig9, "fig10": fig10, "fig11": fig11, "fig12": fig12,
		"fig13": fig13, "fig14": fig14, "fig15": fig15, "fig16": fig16,
		"fig17":  fig17,
		"table1": table1, "table2": table2, "table3": table3,
		"table4": table4, "table5": table5,
		// Extensions beyond the paper's figures (see DESIGN.md):
		// outage-economics correlation (§7), the active-address census
		// application (§5.6), campus validation, and the fault-injection
		// robustness sweep.
		"outages": outages, "census": census, "usc": usc,
		"faults": faultsweep, "agree": agreement,
	}
}

// --- sample blocks (Figs 1-3, 6) ---

// sampleBlock builds one of the paper's three archetype blocks and runs
// both the estimator pipeline and the ground-truth survey on it.
func sampleBlock(kind string, days int) (*core.BlockRun, []float64) {
	net := netsim.NewNetwork(*flagSeed)
	blk := &netsim.Block{Seed: *flagSeed}
	switch kind {
	case "sparse":
		blk.ID = netsim.MakeBlockID(1, 9, 21)
		for h := 0; h < 42; h++ {
			blk.Behaviors[h] = netsim.Intermittent{P: 0.735, Seed: uint64(h) + 5}
		}
		oStart := analysis.DefaultStart.Add(957 * 660 * time.Second)
		blk.Outages = []netsim.Interval{{Start: oStart, End: oStart.Add(6 * time.Hour)}}
	case "dense":
		blk.ID = netsim.MakeBlockID(93, 208, 233)
		for h := 0; h < 245; h++ {
			blk.Behaviors[h] = netsim.Intermittent{P: 0.191, Seed: uint64(h) + 7}
		}
	case "diurnal":
		blk.ID = netsim.MakeBlockID(27, 186, 9)
		for h := 0; h < 100; h++ {
			blk.Behaviors[h] = netsim.AlwaysOn{}
		}
		for h := 100; h < 256; h++ {
			blk.Behaviors[h] = netsim.Diurnal{
				Phase: 1 * time.Hour, Duration: 10 * time.Hour,
				StartSigma: 30 * time.Minute, Seed: uint64(h),
			}
		}
	}
	net.AddBlock(blk)
	pl := core.NewPipeline(net, core.PipelineConfig{
		Start:  analysis.DefaultStart,
		Rounds: analysis.RoundsForDays(days),
		Seed:   *flagSeed,
	})
	run, err := pl.RunBlock(blk.ID)
	must(err)
	sv, err := pl.Survey(blk.ID)
	must(err)
	return run, sv.Values
}

func printSample(run *core.BlockRun, truth []float64, fftToo bool) {
	fmt.Printf("block %s: %d rounds, %d days trimmed, class=%s\n",
		run.ID, run.Short.Len(), run.Days, run.Result.Class)
	fmt.Printf("probes sent: %d (%.1f per hour)\n", run.ProbesSent,
		float64(run.ProbesSent)/(float64(run.Short.Len())*660/3600))
	fmt.Println("\ntrue A (survey):")
	fmt.Print(report.Series(truth, 100, 8))
	fmt.Println("estimated Âs:")
	fmt.Print(report.Series(run.Short.Values, 100, 8))
	fmt.Println("operational Âo:")
	fmt.Print(report.Series(run.Operational, 100, 8))
	for _, ev := range run.Outages {
		state := "recovery"
		if ev.Down {
			state = "OUTAGE"
		}
		fmt.Printf("event: round %d %s\n", ev.Round, state)
	}
	if fftToo {
		fmt.Printf("\nFFT amplitude (bins 1..%d; diurnal bin N_d = %d):\n", 4*run.Days, run.Days)
		amps := run.Result.Spectrum.Amp
		hi := 4 * run.Days
		if hi >= len(amps) {
			hi = len(amps) - 1
		}
		fmt.Print(report.Series(amps[1:hi+1], 100, 8))
		fmt.Printf("diurnal amp %.2f, next strongest non-harmonic %.2f, peak bin %d\n",
			run.Result.DiurnalAmp, run.Result.NextAmp, run.Result.PeakBin)
	}
}

func fig1(c *ctx) {
	fmt.Println("Fig 1: sparse but high-availability block (A ~ 0.735, 42 addrs), with outage")
	run, truth := sampleBlock("sparse", 14)
	printSample(run, truth, true)
}

func fig2(c *ctx) {
	fmt.Println("Fig 2: dense but low-availability block (A ~ 0.191, 245 addrs)")
	run, truth := sampleBlock("dense", 14)
	printSample(run, truth, false)
}

func fig3(c *ctx) {
	fmt.Println("Fig 3: diurnal block (N_d = 14); FFT shows strong diurnal peak")
	run, truth := sampleBlock("diurnal", 14)
	printSample(run, truth, true)
}

func fig6(c *ctx) {
	days := 35
	if *flagQuick {
		days = 21
	}
	fmt.Printf("Fig 6: same diurnal block over %d days; diurnal peak at k = %d\n", days, days)
	run, _ := sampleBlock("diurnal", days)
	fmt.Printf("class=%s fundamental bin=%d (N_d=%d) amp=%.2f next=%.2f\n",
		run.Result.Class, run.Result.FundamentalBin, run.Days,
		run.Result.DiurnalAmp, run.Result.NextAmp)
	amps := run.Result.Spectrum.Amp
	hi := 4 * run.Days
	if hi >= len(amps) {
		hi = len(amps) - 1
	}
	fmt.Print(report.Series(amps[1:hi+1], 100, 8))
}

// --- estimator validation (Figs 4, 5; Table 1) ---

func surveyWorldCfg(c *ctx) (*world.World, core.PipelineConfig) {
	n := 250
	if *flagQuick {
		n = 120
	}
	w, err := world.Generate(world.Config{Blocks: n, Seed: *flagSeed ^ 0xf15})
	must(err)
	days := 7
	cfg := core.PipelineConfig{
		Start:  analysis.DefaultStart,
		Rounds: analysis.RoundsForDays(days),
		Seed:   *flagSeed,
	}
	return w, cfg
}

func fig4(c *ctx) {
	fmt.Println("Fig 4: correlation of true A and short-term estimate Âs")
	w, cfg := surveyWorldCfg(c)
	res, err := analysis.CompareEstimatorToTruth(w, cfg, analysis.ShortTermEstimate, 0)
	must(err)
	fmt.Printf("pooled pairs: %d over %d blocks\n", res.Pairs, res.Blocks)
	fmt.Printf("correlation coefficient: %.5f (paper: 0.95685)\n", res.R)
	fmt.Println("quartiles of Âs binned by 0.1 of true A:")
	rows := make([][]string, 0, 10)
	for g, q := range res.Quartiles {
		rows = append(rows, []string{
			fmt.Sprintf("[%.1f,%.1f)", float64(g)/10, float64(g+1)/10),
			report.F(q[0]), report.F(q[1]), report.F(q[2]),
		})
	}
	fmt.Print(report.Table([]string{"true A", "Q1", "median", "Q3"}, rows))
}

func fig5(c *ctx) {
	fmt.Println("Fig 5: correlation of true A and operational estimate Âo")
	w, cfg := surveyWorldCfg(c)
	res, err := analysis.CompareEstimatorToTruth(w, cfg, analysis.OperationalEstimate, 0)
	must(err)
	fmt.Printf("pooled pairs: %d over %d blocks\n", res.Pairs, res.Blocks)
	fmt.Printf("Âo at or under true A: %s of rounds (paper: 94%%)\n", report.Pct(res.UnderFrac))
	fmt.Printf("correlation coefficient: %.5f\n", res.R)
}

func table1(c *ctx) {
	fmt.Println("Table 1: diurnal detection validated against full-survey truth")
	w, cfg := surveyWorldCfg(c)
	v, err := analysis.ValidateDiurnalDetection(w, cfg, 0)
	must(err)
	rows := [][]string{
		{"d (truth)", "d̂ (pred)", fmt.Sprint(v.TruePos), report.Pct(float64(v.TruePos) / float64(v.Total()))},
		{"n", "n̂", fmt.Sprint(v.TrueNeg), report.Pct(float64(v.TrueNeg) / float64(v.Total()))},
		{"d", "n̂", fmt.Sprint(v.FalseNeg), report.Pct(float64(v.FalseNeg) / float64(v.Total()))},
		{"n", "d̂", fmt.Sprint(v.FalsePos), report.Pct(float64(v.FalsePos) / float64(v.Total()))},
	}
	fmt.Print(report.Table([]string{"truth", "predicted", "blocks", "share"}, rows))
	fmt.Printf("precision: %s (paper: 82.48%%)   accuracy: %s (paper: 90.99%%)\n",
		report.Pct(v.Precision()), report.Pct(v.Accuracy()))
}

// --- controlled sweeps (Figs 7-9) ---

func sweepBase() analysis.SweepConfig {
	cfg := analysis.SweepConfig{Seed: *flagSeed}
	if *flagQuick {
		cfg.Batches, cfg.PerBatch, cfg.Weeks = 3, 10, 2
	} else {
		cfg.Batches, cfg.PerBatch, cfg.Weeks = 10, 30, 4
	}
	return cfg
}

func printSweep(pts []analysis.SweepPoint, xlabel string) {
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			report.F(p.X), report.Pct(p.Mean), report.Pct(p.Q1), report.Pct(p.Median), report.Pct(p.Q3),
		})
	}
	fmt.Print(report.Table([]string{xlabel, "accuracy", "Q1", "median", "Q3"}, rows))
}

func fig7(c *ctx) {
	fmt.Println("Fig 7: detection accuracy vs number of diurnal addresses (Φ=σs=σd=0)")
	counts := []int{1, 2, 5, 10, 20, 40, 60, 80, 100}
	if *flagQuick {
		counts = []int{2, 10, 40, 100}
	}
	pts, err := analysis.SweepDiurnalCount(counts, sweepBase())
	must(err)
	printSweep(pts, "n_d")
}

func fig8(c *ctx) {
	fmt.Println("Fig 8: detection accuracy vs maximum phase spread Φ (n_d=100)")
	hours := []float64{0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24}
	if *flagQuick {
		hours = []float64{0, 8, 14, 20}
	}
	pts, err := analysis.SweepPhaseSpread(hours, sweepBase())
	must(err)
	printSweep(pts, "Φ (hours)")
}

func fig9(c *ctx) {
	fmt.Println("Fig 9: detection accuracy vs uptime-duration noise σd (n_d=100)")
	hours := []float64{0, 2, 4, 6, 8, 10, 14, 18, 24}
	if *flagQuick {
		hours = []float64{0, 6, 12, 24}
	}
	pts, err := analysis.SweepDurationSigma(hours, sweepBase())
	must(err)
	printSweep(pts, "σd (hours)")
}

// --- world-scale results ---

func table2(c *ctx) {
	fmt.Println("Table 2: agreement between two vantage points over the same world")
	a := c.Study()
	b, err := analysis.MeasureWorld(c.World(), analysis.StudyConfig{
		Days: *flagDays, Seed: *flagSeed ^ 0x7e1e, Metrics: c.metrics,
	})
	must(err)
	cs, err := analysis.CompareSites(a, b)
	must(err)
	names := []string{"d (strict)", "e (either)", "N (non)"}
	rows := make([][]string, 3)
	for i := range rows {
		rows[i] = []string{names[i],
			fmt.Sprint(cs.M[i][0]), fmt.Sprint(cs.M[i][1]), fmt.Sprint(cs.M[i][2])}
	}
	fmt.Print(report.Table([]string{"site A \\ site B", "d", "e", "N"}, rows))
	fmt.Printf("strong disagreement (A strict, B non): %s (paper: ~1.2%%)\n",
		report.Pct(cs.StrongDisagree))
	if ks, err := analysis.CompareSiteFrequencies(a, b); err == nil {
		fmt.Printf("frequency-distribution KS: D = %.3f (small D = sites agree distributionally)\n", ks.D)
	}
}

func fig10(c *ctx) {
	fmt.Println("Fig 10: CDF of the strongest frequency per block")
	st := c.Study()
	fd, err := st.FrequencyCDF()
	must(err)
	fmt.Printf("mass near 1 cycle/day: %s (paper: ~25%%)\n", report.Pct(fd.FracDaily))
	fmt.Printf("mass near 4.4 cycles/day (prober restart artifact): %s (paper: ~3%%)\n",
		report.Pct(fd.FracRestartArtifact))
	fmt.Println("CDF at selected frequencies (cycles/day):")
	rows := [][]string{}
	for _, f := range []float64{0.5, 0.9, 1.1, 2, 4, 4.6, 8, 16} {
		rows = append(rows, []string{report.F(f), report.Pct(fd.CDF.At(f))})
	}
	fmt.Print(report.Table([]string{"cycles/day", "CDF"}, rows))
}

func fig11(c *ctx) {
	n, per := 12, 250
	if *flagQuick {
		n, per = 6, 120
	}
	fmt.Printf("Fig 11: diurnal fraction across %d long-term surveys\n", n)
	pts, err := analysis.LongTermTrend(n, per, *flagSeed)
	must(err)
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			p.Date.Format("2006-01"), p.Site, fmt.Sprint(p.Blocks), report.Pct(p.FracDiurnal),
		})
	}
	fmt.Print(report.Table([]string{"date", "site", "blocks", "frac diurnal"}, rows))
}

func worldGrids(c *ctx) *analysis.WorldMaps {
	maps, err := c.Study().BuildWorldMaps(c.Geo())
	must(err)
	return maps
}

func fig12(c *ctx) {
	fmt.Println("Fig 12: observable blocks per 2°x2° cell (log grayscale)")
	maps := worldGrids(c)
	fmt.Printf("geolocated blocks: %d; non-empty cells: %d; max cell: %d\n",
		maps.Geolocated, maps.Counts.NonEmptyCells(), maps.Counts.MaxCount())
	printWorld(maps, false)
	writeWorldPNG(maps, false, "fig12.png")
}

func fig13(c *ctx) {
	fmt.Println("Fig 13: percent of observable blocks that are diurnal per cell")
	maps := worldGrids(c)
	printWorld(maps, true)
	writeWorldPNG(maps, true, "fig13.png")
}

// writeWorldPNG renders the 2° grid to a PNG when -png was given.
func writeWorldPNG(maps *analysis.WorldMaps, fractions bool, name string) {
	if *flagPNG == "" {
		return
	}
	nx, ny := maps.Counts.Dims()
	counts := make([][]int, ny)
	marked := make([][]int, ny)
	for y := range counts {
		counts[y] = make([]int, nx)
		marked[y] = make([]int, nx)
	}
	for _, cell := range maps.Counts.Cells() {
		x := int((cell.LonCenter + 180) / 2)
		y := ny - 1 - int((cell.LatCenter+90)/2) // row 0 = north
		if x < 0 || x >= nx || y < 0 || y >= ny {
			continue
		}
		counts[y][x] = cell.Total
		marked[y][x] = cell.Marked
	}
	path := *flagPNG + "/" + name
	f, err := os.Create(path)
	must(err)
	defer f.Close()
	if fractions {
		fr := make([][]float64, ny)
		for y := range fr {
			fr[y] = make([]float64, nx)
			for x := range fr[y] {
				if counts[y][x] == 0 {
					fr[y][x] = nan()
				} else {
					fr[y][x] = float64(marked[y][x]) / float64(counts[y][x])
				}
			}
		}
		must(report.FractionPNG(f, fr, 6))
	} else {
		must(report.HeatPNG(f, counts, 6))
	}
	fmt.Printf("wrote %s\n", path)
}

// printWorld downsamples the 2° grid to a terminal-sized map between 60S
// and 72N.
func printWorld(maps *analysis.WorldMaps, fractions bool) {
	const cols, rows = 120, 33
	counts := make([][]int, rows)
	marked := make([][]int, rows)
	for r := range counts {
		counts[r] = make([]int, cols)
		marked[r] = make([]int, cols)
	}
	for _, cell := range maps.Counts.Cells() {
		x := int((cell.LonCenter + 180) / 360 * cols)
		y := int((72 - cell.LatCenter) / 132 * rows)
		if x < 0 || x >= cols || y < 0 || y >= rows {
			continue
		}
		counts[y][x] += cell.Total
		marked[y][x] += cell.Marked
	}
	if !fractions {
		fmt.Print(report.Heatmap(counts))
		return
	}
	fr := make([][]float64, rows)
	for r := range fr {
		fr[r] = make([]float64, cols)
		for cc := range fr[r] {
			if counts[r][cc] == 0 {
				fr[r][cc] = nan()
			} else {
				fr[r][cc] = float64(marked[r][cc]) / float64(counts[r][cc])
			}
		}
	}
	fmt.Print(report.FractionMap(fr))
}

func nan() float64 { var z float64; return 0 / z }

func table3(c *ctx) {
	fmt.Println("Table 3: fraction of diurnal blocks by country (top 20 + US)")
	st := c.Study()
	rows := st.CountryTable(c.minCountryBlocks())
	out := [][]string{}
	for i, r := range rows {
		if i >= 20 && r.Code != "US" {
			continue
		}
		lo, hi := stats.WilsonInterval(r.Diurnal, r.Blocks, 0.95)
		out = append(out, []string{
			r.Code, r.Region, fmt.Sprint(r.Blocks), report.F(r.FracDiurnal),
			fmt.Sprintf("[%.3f, %.3f]", lo, hi),
			fmt.Sprintf("%.0f", r.GDP),
		})
	}
	fmt.Print(report.Table([]string{"country", "region", "blocks", "frac diurnal", "95% CI", "GDP (US$)"}, out))
}

func table4(c *ctx) {
	fmt.Println("Table 4: fraction of diurnal blocks by region")
	rows := c.Study().RegionTable()
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Region, fmt.Sprint(r.Blocks), report.F(r.FracDiurnal)})
	}
	fmt.Print(report.Table([]string{"region", "blocks", "frac diurnal"}, out))
}

func fig14(c *ctx) {
	fmt.Println("Fig 14: diurnal phase vs longitude")
	st := c.Study()
	strict, err := st.PhaseVsLongitude(c.Geo(), false)
	must(err)
	relaxed, err := st.PhaseVsLongitude(c.Geo(), true)
	must(err)
	fmt.Printf("(a) strict diurnal:  %d blocks, unrolled-phase/longitude r = %.3f (paper: 0.835)\n",
		strict.Blocks, strict.R)
	fmt.Printf("(b) either diurnal:  %d blocks, r = %.3f (paper: 0.763)\n",
		relaxed.Blocks, relaxed.R)
	fmt.Println("(c) longitude predicted from phase (selected phases):")
	rows := [][]string{}
	for _, ph := range []float64{-3, -2, -1, 0, 1, 2, 3} {
		lon, sd, ok := relaxed.PredictLongitude(ph)
		if !ok {
			rows = append(rows, []string{report.F(ph), "n/a", "n/a"})
			continue
		}
		rows = append(rows, []string{report.F(ph), fmt.Sprintf("%.0f°", lon), fmt.Sprintf("±%.0f°", sd)})
	}
	fmt.Print(report.Table([]string{"phase (rad)", "mean lon", "stddev"}, rows))
}

func fig15(c *ctx) {
	fmt.Println("Fig 15: percent diurnal by /8 allocation month")
	st := c.Study()
	res, err := st.AllocationDateTrend(c.minCountryBlocks())
	must(err)
	rows := [][]string{}
	step := len(res.Months)/12 + 1
	for i := 0; i < len(res.Months); i += step {
		rows = append(rows, []string{
			res.Months[i].Format("2006-01"), fmt.Sprint(res.Blocks[i]), report.Pct(res.Frac[i]),
		})
	}
	fmt.Print(report.Table([]string{"alloc month", "blocks", "frac diurnal"}, rows))
	fmt.Printf("linear fit: slope %+.3f%%/month (paper: +0.08%%), r = %.3f (paper: 0.609)\n",
		res.Fit.Slope, res.Fit.R)
}

func fig16(c *ctx) {
	fmt.Println("Fig 16: diurnal fraction vs per-capita GDP by country")
	res, err := c.Study().CorrelateGDP(c.minCountryBlocks())
	must(err)
	fmt.Printf("countries: %d; correlation: %.3f (paper: -0.526)\n", len(res.Rows), res.R)
	fmt.Printf("fit: frac = %.4f %+.3g * GDP\n", res.Fit.Intercept, res.Fit.Slope)
	labels := []string{}
	vals := []float64{}
	for i, r := range res.Rows {
		if i >= 12 {
			break
		}
		labels = append(labels, fmt.Sprintf("%s ($%.0fk)", r.Code, r.GDP/1000))
		vals = append(vals, r.FracDiurnal)
	}
	fmt.Print(report.BarChart(labels, vals, 50))
}

func table5(c *ctx) {
	fmt.Println("Table 5: ANOVA p-values — factors vs diurnal fraction")
	tab, err := c.Study().ANOVATable(c.minCountryBlocks())
	must(err)
	// Benjamini-Hochberg over the 15 distinct tests (diagonal + upper
	// triangle) controls the table's false discovery rate.
	var pvals []float64
	var pos [][2]int
	for i := range tab.Names {
		for j := i; j < len(tab.Names); j++ {
			pvals = append(pvals, tab.P[i][j])
			pos = append(pos, [2]int{i, j})
		}
	}
	mask := stats.BenjaminiHochberg(pvals, 0.05)
	bh := make(map[[2]int]bool)
	for k, ok := range mask {
		bh[pos[k]] = ok
		bh[[2]int{pos[k][1], pos[k][0]}] = ok
	}
	headers := append([]string{""}, tab.Names...)
	rows := make([][]string, len(tab.Names))
	for i := range tab.Names {
		row := []string{tab.Names[i]}
		for j := range tab.Names {
			cell := report.F(tab.P[i][j])
			if tab.P[i][j] < 0.05 {
				cell += " *"
			}
			if bh[[2]int{i, j}] {
				cell += "+"
			}
			row = append(row, cell)
		}
		rows[i] = row
	}
	fmt.Print(report.Table(headers, rows))
	fmt.Println("(* = raw p < 0.05, + = survives Benjamini-Hochberg FDR 0.05 over all 15 tests;")
	fmt.Println(" paper finds gdp, elec x meanAlloc, meanAlloc significant, uncorrected)")
}

func outages(c *ctx) {
	fmt.Println("Extension: outage rates vs economics (paper §7)")
	n := *flagBlocks
	if *flagQuick && n > 1000 {
		n = 1000
	}
	w, err := world.Generate(world.Config{Blocks: n, Seed: *flagSeed ^ 0x0047, OutagesPerBlockWeek: 0.2})
	must(err)
	st, err := analysis.MeasureWorld(w, analysis.StudyConfig{Days: *flagDays, Seed: *flagSeed, Metrics: c.metrics})
	must(err)
	min := n / 400
	if min < 3 {
		min = 3
	}
	rows := [][]string{}
	for i, r := range st.OutageTable(min, true) {
		if i >= 15 {
			break
		}
		rows = append(rows, []string{
			r.Code, fmt.Sprint(r.Blocks), fmt.Sprintf("%.3f", r.EpisodesPerBlockWeek),
			r.Agg.NinesString(), fmt.Sprintf("%.0f", r.GDP),
		})
	}
	fmt.Print(report.Table([]string{"country", "blocks", "outages/blk-week", "uptime", "GDP"}, rows))
	r, anova, err := st.OutageGDPCorrelation(min)
	must(err)
	fmt.Printf("outage rate vs GDP: r = %.3f, ANOVA p = %s\n", r, report.F(anova.P))
}

func census(c *ctx) {
	fmt.Println("Extension: active-address census and the diurnal swing (paper §5.6)")
	w := c.World()
	pts, err := analysis.AddressCensus(w, analysis.DefaultStart, 72*time.Hour, time.Hour)
	must(err)
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.Active
	}
	fmt.Print(report.Series(vals, 100, 8))
	sw, err := analysis.SummarizeCensus(pts)
	must(err)
	fmt.Printf("mean %.0f active addresses, daily swing %s of mean\n", sw.Mean, report.Pct(sw.SwingFraction))
}

func usc(c *ctx) {
	fmt.Println("Extension: §3.2.4 campus ground-truth validation (USC-style network)")
	cc := world.CampusConfig{Seed: *flagSeed}
	if *flagQuick {
		cc.Wireless, cc.Dynamic, cc.General = 60, 16, 60
	}
	campus, err := world.GenerateCampus(cc)
	must(err)
	res, err := analysis.ValidateCampus(campus, analysis.StudyConfig{Days: *flagDays, Seed: *flagSeed})
	must(err)
	rows := [][]string{}
	for _, cat := range []world.CampusCategory{
		world.CampusWireless, world.CampusDynamic, world.CampusGeneral, world.CampusGeneralPocket,
	} {
		cr := res.PerCategory[cat]
		if cr == nil {
			continue
		}
		rows = append(rows, []string{
			string(cat), fmt.Sprint(cr.Total), fmt.Sprint(cr.Excluded),
			fmt.Sprint(cr.Probed), fmt.Sprint(cr.Detected), fmt.Sprint(cr.Strict),
		})
	}
	fmt.Print(report.Table([]string{"category", "blocks", "excluded", "probed", "diurnal", "strict"}, rows))
	fmt.Printf("wireless exclusion rate: %s (paper: 119/142 = 84%% removed by the 15-active floor)\n",
		report.Pct(res.WirelessExclusionRate()))
	fmt.Println("=> sparse blocks cause false negatives, never false positives; Internet-wide")
	fmt.Println("   diurnal fractions are therefore lower bounds (§3.2.4)")
}

func faultsweep(c *ctx) {
	fmt.Println("Extension: classification accuracy vs injected measurement-path faults")
	fmt.Println("(strict/either agreement with survey ground truth; retries+gap-filling on)")
	cfg := analysis.FaultSweepConfig{
		Seed:  *flagSeed,
		Retry: trinocular.RetryConfig{MaxAttempts: 3},
	}
	if *flagQuick {
		cfg.Blocks, cfg.Days = 120, 5
		cfg.LossRates = []float64{0, 0.02, 0.10}
		cfg.RateLimits = []int{4}
	}
	pts, err := analysis.FaultSweep(cfg)
	must(err)
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			p.Label, fmt.Sprint(p.Measured), fmt.Sprint(p.Partial), fmt.Sprint(p.Quarantined),
			report.Pct(p.StrictAgree), report.Pct(p.EitherAgree),
		})
	}
	fmt.Print(report.Table([]string{"faults", "measured", "partial", "quarantined", "strict agree", "either agree"}, rows))
	fmt.Println("(the resilient probe path keeps agreement near the fault-free baseline")
	fmt.Println(" at deployment-realistic loss; heavy rate limiting degrades via quarantine)")
}

func agreement(c *ctx) {
	fmt.Println("Extension: streaming-vs-batch classifier agreement (confusion matrices")
	fmt.Println("per world scenario × fault level; batch FFT pipeline is the oracle)")
	cfg := agree.Config{Seed: *flagSeed}
	if *flagQuick {
		cfg.Blocks, cfg.Days = 90, 5
	}
	rep, err := agree.Run(cfg)
	must(err)
	fmt.Print(rep.Markdown())
	if bad := agree.DefaultContract().Check(rep); len(bad) != 0 {
		fmt.Println("\ncontract VIOLATED:")
		for _, b := range bad {
			fmt.Println("  -", b)
		}
		os.Exit(1)
	}
	fmt.Println("\ncontract: PASS (thresholds in internal/agree/contract.go)")
	if *flagAgreeOut != "" {
		f, err := os.Create(*flagAgreeOut)
		must(err)
		must(rep.WriteJSON(f))
		must(f.Close())
		fmt.Printf("agreement report written to %s\n", *flagAgreeOut)
	}
}

func fig17(c *ctx) {
	fmt.Println("Fig 17: fraction of diurnal blocks per access-link keyword")
	res, err := c.Study().LinkTypes(*flagSeed ^ 0x11d)
	must(err)
	fmt.Printf("blocks with features: %s (paper: 46.3%%); multiple features: %s (paper: 11.4%%)\n",
		report.Pct(res.ClassifiedFrac), report.Pct(res.MultiFrac))
	labels := make([]string, 0, len(res.Rows))
	vals := make([]float64, 0, len(res.Rows))
	for _, r := range res.Rows {
		labels = append(labels, fmt.Sprintf("%s (n=%d)", r.Keyword, r.Blocks))
		vals = append(vals, r.FracDiurnal)
	}
	fmt.Print(report.BarChart(labels, vals, 50))
}
