// Command inspect queries a saved measurement dataset (produced by
// sleepscan -o): headline summary, per-country and per-link breakdowns,
// organization queries, and CSV re-export.
//
// Usage:
//
//	inspect dataset.sleepnet                 # summary
//	inspect -by country dataset.sleepnet    # per-country table
//	inspect -by link dataset.sleepnet       # per-link-type table
//	inspect -by region dataset.sleepnet     # per-region table
//	inspect -org "china" dataset.sleepnet   # blocks of one organization
//	inspect -csv out.csv dataset.sleepnet   # re-export records
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"sleepnet/internal/core"
	"sleepnet/internal/dataset"
	"sleepnet/internal/report"
)

func main() {
	by := flag.String("by", "", "breakdown dimension: country, region, link")
	org := flag.String("org", "", "show blocks whose organization matches this keyword")
	csvPath := flag.String("csv", "", "re-export records as CSV to this file")
	showMetrics := flag.Bool("metrics", false, "print the full metrics snapshot saved with the dataset")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: inspect [flags] <dataset file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	ds, err := dataset.Load(flag.Arg(0))
	fatal(err)

	sum := ds.Summarize()
	fmt.Printf("dataset: %d blocks (%d measured, %d sparse), created %s, %d rounds\n",
		sum.Blocks, sum.Measured, sum.Sparse, ds.CreatedAt.Format("2006-01-02"), ds.Rounds)
	fmt.Printf("diurnal: %d strict (%s), %d relaxed, %d non-diurnal (either: %s)\n",
		sum.Strict, report.Pct(sum.StrictFraction), sum.Relaxed, sum.NonDiurnal,
		report.Pct(sum.EitherFraction))

	if !ds.Metrics.Empty() {
		fmt.Println("run cost:")
		fmt.Print(report.RunCost(ds.Metrics))
	}
	if *showMetrics {
		fmt.Println("\nrun metrics:")
		fmt.Print(report.Metrics(ds.Metrics))
	}

	switch *by {
	case "":
	case "country":
		breakdown(ds, func(b dataset.BlockRecord) string { return b.Country })
	case "region":
		breakdown(ds, func(b dataset.BlockRecord) string { return b.Region })
	case "link":
		breakdown(ds, func(b dataset.BlockRecord) string { return b.LinkType })
	default:
		fmt.Fprintf(os.Stderr, "inspect: unknown dimension %q\n", *by)
		os.Exit(2)
	}

	if *org != "" {
		orgQuery(ds, *org)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		fatal(err)
		fatal(ds.ExportCSV(f))
		fatal(f.Close())
		fmt.Printf("exported %d records to %s\n", len(ds.Blocks), *csvPath)
	}
}

func breakdown(ds *dataset.Dataset, key func(dataset.BlockRecord) string) {
	type agg struct{ n, strict, outages int }
	m := map[string]*agg{}
	for _, b := range ds.Blocks {
		if b.Sparse {
			continue
		}
		a := m[key(b)]
		if a == nil {
			a = &agg{}
			m[key(b)] = a
		}
		a.n++
		if b.DiurnalClass() == core.StrictDiurnal {
			a.strict++
		}
		a.outages += b.OutageEpisodes
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		fi := float64(m[keys[i]].strict) / float64(m[keys[i]].n)
		fj := float64(m[keys[j]].strict) / float64(m[keys[j]].n)
		//lint:allow floateq: exact tie-break inside a comparator; epsilon equality would break strict weak ordering
		if fi != fj {
			return fi > fj
		}
		return keys[i] < keys[j]
	})
	rows := make([][]string, 0, len(keys))
	for _, k := range keys {
		a := m[k]
		rows = append(rows, []string{
			k, fmt.Sprint(a.n),
			report.F(float64(a.strict) / float64(a.n)),
			fmt.Sprint(a.outages),
		})
	}
	fmt.Println()
	fmt.Print(report.Table([]string{"group", "blocks", "frac strict", "outage episodes"}, rows))
}

func orgQuery(ds *dataset.Dataset, keyword string) {
	kw := strings.ToLower(keyword)
	var n, strict int
	for _, b := range ds.Blocks {
		if b.Sparse || !strings.Contains(strings.ToLower(b.Org), kw) {
			continue
		}
		n++
		if b.DiurnalClass() == core.StrictDiurnal {
			strict++
		}
	}
	if n == 0 {
		fmt.Printf("\nno measured blocks match organization %q\n", keyword)
		return
	}
	fmt.Printf("\norganization %q: %d blocks, %s strictly diurnal\n",
		keyword, n, report.Pct(float64(strict)/float64(n)))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(1)
	}
}
