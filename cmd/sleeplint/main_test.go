package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtureExitCodes is the end-to-end contract of the gate: the built
// binary, run in audit mode over each deliberately-broken fixture package,
// must exit 1 — and exit 0 on a clean package. The in-process golden test
// (internal/lint) pins which findings fire; this pins that firing actually
// fails a build.
func TestFixtureExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and type-checks every fixture")
	}
	bin := filepath.Join(t.TempDir(), "sleeplint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building sleeplint: %v\n%s", err, out)
	}

	src := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			dir := stageFixture(t, filepath.Join(src, name), name)
			cmd := exec.Command(bin, "-allows", "./...")
			cmd.Dir = dir
			out, err := cmd.CombinedOutput()
			code := cmd.ProcessState.ExitCode()
			if hasWantMarkers(t, filepath.Join(src, name)) {
				if code != 1 {
					t.Fatalf("fixture %s: want exit 1, got %d (err %v)\n%s", name, code, err, out)
				}
			} else if code != 0 {
				t.Fatalf("fixture %s: want exit 0, got %d\n%s", name, code, out)
			}
		})
	}

	t.Run("clean", func(t *testing.T) {
		dir := t.TempDir()
		writeFile(t, filepath.Join(dir, "go.mod"), "module fixture/clean\n\ngo 1.24\n")
		writeFile(t, filepath.Join(dir, "clean.go"), "package clean\n\n// Two returns two.\nfunc Two() int { return 2 }\n")
		cmd := exec.Command(bin, "-allows", "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if code := cmd.ProcessState.ExitCode(); code != 0 {
			t.Fatalf("clean package: want exit 0, got %d (err %v)\n%s", code, err, out)
		}
	})
}

// stageFixture copies one fixture package into a temp module, under an
// internal/ directory: rules like norand scope themselves to internal/
// paths, and the in-tree fixtures satisfy that by living below
// internal/lint/testdata — the staged copy must too.
func stageFixture(t *testing.T, src, name string) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fixture/"+name+"\n\ngo 1.24\n")
	pkgDir := filepath.Join(dir, "internal", name)
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		writeFile(t, filepath.Join(pkgDir, e.Name()), string(data))
	}
	return dir
}

func hasWantMarkers(t *testing.T, dir string) bool {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), "// want ") {
			return true
		}
	}
	return false
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
