// Command sleeplint runs sleepnet's static-analysis suite: stdlib-only
// rules that keep the pipeline reproducible (seeded randomness, no
// wall-clock reads in output paths, deterministic map emission, epsilon
// float comparison, handled errors) and, via the flow rules, enforce the
// concurrency, aliasing, and durability contracts (lock balance, atomic
// discipline, call-scoped buffers, fsync-before-rename, hot-path
// allocation budgets, goroutine cancellation). Any finding exits nonzero,
// so CI can use it as a hard gate:
//
//	sleeplint [-rules norand,floateq,...] [-allows] [-j N] [-json] [packages]
//
// Packages follow the go tool shape ("./...", "./internal/world"); the
// default is "./...". Findings print as file:line:col [rule] message with
// a suggested fix. Suppress a single finding with a justified directive:
//
//	//lint:allow <rule>: <why the invariant holds here>
//
// -allows audits the escape hatches instead of trusting them: every allow
// directive is listed with its location, rule, and justification, and an
// allow that no longer suppresses anything is itself a finding — stale
// exemptions must be deleted, not accumulated.
//
// -j N type-checks packages on N parallel workers (default: one per CPU,
// capped at 8). Output is byte-identical for every worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"sleepnet/internal/lint"
)

// jsonReport is the -json output shape: the findings, the audited allow
// directives (in -allows mode), and the wall time of the run.
type jsonReport struct {
	Findings []lint.Finding `json:"findings"`
	Allows   []lint.Allow   `json:"allows,omitempty"`
	WallMS   int64          `json:"wall_ms"`
}

func main() {
	rulesSpec := flag.String("rules", "", "comma-separated rule subset (default: all)")
	asJSON := flag.Bool("json", false, "emit findings (and -allows audit) as a JSON object")
	list := flag.Bool("list", false, "list registered rules and exit")
	audit := flag.Bool("allows", false, "audit //lint:allow directives: list all, flag stale ones as findings")
	workers := flag.Int("j", defaultWorkers(), "parallel type-check workers")
	flag.Parse()

	if *list {
		for _, r := range lint.Rules() {
			fmt.Printf("%-12s %s\n", r.Name(), r.Doc())
		}
		return
	}

	rules, err := lint.Select(*rulesSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sleeplint:", err)
		os.Exit(2)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sleeplint:", err)
		os.Exit(2)
	}
	//lint:allow nowallclock: measures the lint run itself for the -json report; no simulation output depends on it
	start := time.Now()
	pkgs, err := lint.LoadModuleParallel(cwd, flag.Args(), *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sleeplint:", err)
		os.Exit(2)
	}

	var findings []lint.Finding
	var allows []lint.Allow
	if *audit {
		findings, allows = lint.RunAudit(pkgs, rules)
	} else {
		findings = lint.Run(pkgs, rules)
	}
	//lint:allow nowallclock: measures the lint run itself for the -json report; no simulation output depends on it
	wall := time.Since(start)
	relativize(findings, cwd)
	for i := range allows {
		allows[i].File = relPath(allows[i].File, cwd)
	}

	if *asJSON {
		if findings == nil {
			findings = []lint.Finding{} // encode as [], not null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{Findings: findings, Allows: allows, WallMS: wall.Milliseconds()}); err != nil {
			fmt.Fprintln(os.Stderr, "sleeplint:", err)
			os.Exit(2)
		}
	} else {
		if *audit {
			for _, a := range allows {
				status := "live"
				if !a.Used {
					status = "STALE"
				}
				fmt.Printf("%s:%d: allow %s (%s): %s\n", a.File, a.Line, a.Rule, status, a.Justification)
			}
			fmt.Fprintf(os.Stderr, "sleeplint: %d allow directive(s)\n", len(allows))
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		if n := len(findings); n > 0 {
			fmt.Fprintf(os.Stderr, "sleeplint: %d finding(s)\n", n)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// defaultWorkers bounds the type-check pool: one per CPU, capped — the
// source importer re-checks shared dependencies per worker, so returns
// diminish past a handful.
func defaultWorkers() int {
	n := runtime.NumCPU()
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// relativize rewrites finding paths relative to the working directory for
// readable, clickable output.
func relativize(findings []lint.Finding, cwd string) {
	for i := range findings {
		findings[i].File = relPath(findings[i].File, cwd)
	}
}

func relPath(path, cwd string) string {
	if rel, err := filepath.Rel(cwd, path); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return path
}
