// Command sleeplint runs sleepnet's static-analysis suite: stdlib-only
// rules that keep the pipeline reproducible (seeded randomness, no
// wall-clock reads in output paths, deterministic map emission, epsilon
// float comparison, handled errors). Any finding exits nonzero, so CI can
// use it as a hard gate:
//
//	sleeplint [-rules norand,floateq,...] [-json] [packages]
//
// Packages follow the go tool shape ("./...", "./internal/world"); the
// default is "./...". Findings print as file:line:col [rule] message with
// a suggested fix. Suppress a single finding with a justified directive:
//
//	//lint:allow <rule>: <why the invariant holds here>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sleepnet/internal/lint"
)

func main() {
	rulesSpec := flag.String("rules", "", "comma-separated rule subset (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list registered rules and exit")
	flag.Parse()

	if *list {
		for _, r := range lint.Rules() {
			fmt.Printf("%-12s %s\n", r.Name(), r.Doc())
		}
		return
	}

	rules, err := lint.Select(*rulesSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sleeplint:", err)
		os.Exit(2)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sleeplint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadModule(cwd, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sleeplint:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, rules)
	relativize(findings, cwd)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "sleeplint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if n := len(findings); n > 0 {
			fmt.Fprintf(os.Stderr, "sleeplint: %d finding(s)\n", n)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// relativize rewrites finding paths relative to the working directory for
// readable, clickable output.
func relativize(findings []lint.Finding, cwd string) {
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && !filepath.IsAbs(rel) {
			findings[i].File = rel
		}
	}
}
