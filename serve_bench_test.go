// Serving-layer benchmarks: the ISSUE's throughput gate is >100k single-
// block lookups per second against a sealed 1M-block epoch, full HTTP
// handler path included (parse → admission → binary search → JSON). The
// fixture drives the engine through the same EpochSink contract the live
// monitor uses, so the benchmarked epoch is structurally identical to a
// production one.
package sleepnet

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sleepnet/internal/monitor"
	"sleepnet/internal/netsim"
	"sleepnet/internal/serve"
)

const serveBenchBlocks = 1 << 20 // one million /24s

var (
	serveBenchOnce sync.Once
	serveBenchSrv  *serve.Server
	serveBenchReqs []*http.Request
)

// serveBenchFixture seals a 1M-block epoch once and wires the hardened
// handler over it with admission limits high enough that the benchmark
// measures serving, not shedding.
func serveBenchFixture(b *testing.B) (*serve.Server, []*http.Request) {
	b.Helper()
	serveBenchOnce.Do(func() {
		eng := serve.NewEngine(serve.EngineConfig{MinClassifyRounds: 1})
		eng.BeginRun(monitor.RunInfo{
			Shards: 1, Rounds: 3, Blocks: serveBenchBlocks,
			Start:  time.Date(2013, time.April, 1, 0, 0, 0, 0, time.UTC),
			Period: 660 * time.Second, Seed: 1,
		})
		pub := make([]monitor.PubBlock, serveBenchBlocks)
		for i := range pub {
			pub[i] = monitor.PubBlock{ID: netsim.MakeBlockID(byte(1+i>>16), byte(i>>8), byte(i))}
		}
		eng.ResyncShard(0, 0, pub)
		deltas := make([]monitor.RoundPub, serveBenchBlocks)
		for r := 0; r < 3; r++ {
			for i := range deltas {
				v := 0.25 + float64((i+r)%3)/4
				deltas[i] = monitor.RoundPub{Avail: v, Long: v}
			}
			eng.PublishRound(0, r, deltas)
		}
		serveBenchSrv = serve.NewServer(eng, serve.ServerConfig{
			Lookup: serve.ClassLimits{RPS: 1e9, Burst: 1 << 30, Queue: 1, MaxWait: time.Millisecond},
		})
		// A spread of present ids across the whole keyspace. Requests are
		// prebuilt so the measured loop is the handler, not the harness; the
		// handler never mutates the request.
		for i := 0; i < 64; i++ {
			id := netsim.MakeBlockID(byte(1+i%16), byte(i*37), byte(i*101))
			s := id.String() // "a.b.c/24"
			serveBenchReqs = append(serveBenchReqs,
				httptest.NewRequest("GET", "/v1/block/"+s[:len(s)-3], nil))
		}
	})
	if serveBenchSrv == nil {
		b.Fatal("serve bench fixture failed")
	}
	return serveBenchSrv, serveBenchReqs
}

// BenchmarkServeLookup1M is the sequential handler cost of one lookup
// against the 1M-block epoch. queries/s is reported explicitly; the >100k
// floor means ns/op must stay under 10000.
func BenchmarkServeLookup1M(b *testing.B) {
	srv, reqs := serveBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, reqs[i%len(reqs)])
		if w.Code != 200 {
			b.Fatalf("lookup returned %d", w.Code)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkServeLookup1MParallel is the same path under GOMAXPROCS-wide
// concurrency — the epoch is lock-free on the read side, so this is the
// aggregate throughput a saturated front door can sustain.
func BenchmarkServeLookup1MParallel(b *testing.B) {
	srv, reqs := serveBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, reqs[i%len(reqs)])
			if w.Code != 200 {
				b.Fatalf("lookup returned %d", w.Code)
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
