module sleepnet

go 1.22
