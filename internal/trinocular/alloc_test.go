package trinocular

import (
	"testing"

	"sleepnet/internal/netsim"
)

// TestProbeRoundAllocFree pins the steady-state allocation budget of the
// wire path at zero: after the first round has grown the per-block scratch
// buffers, a ProbeRound — marshal echo, IPv4-encapsulate, deliver, build
// the reply into the block's ReplyBuffer, parse it back — must not touch
// the heap. A failure here means a future change reintroduced garbage on
// the hot path (the whole point of the append/Into APIs).
func TestProbeRoundAllocFree(t *testing.T) {
	n := netsim.NewNetwork(1)
	up := buildBlock(netsim.MakeBlockID(10, 0, 1), 100, 0, 0)
	n.AddBlock(up)
	// An intermittent block exercises the multi-probe negative path too.
	flaky := buildBlock(netsim.MakeBlockID(10, 0, 2), 0, 100, 0.3)
	n.AddBlock(flaky)

	p := New(n, Config{}, 7)
	for _, blk := range []*netsim.Block{up, flaky} {
		if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
			t.Fatal(err)
		}
	}

	// Warm-up: grow scratch buffers and settle beliefs.
	round := 0
	probeAll := func() {
		for _, blk := range []*netsim.Block{up, flaky} {
			if _, err := p.ProbeRound(blk.ID, at(0, 0, round*11), 0.5); err != nil {
				t.Fatal(err)
			}
		}
		round++
	}
	probeAll()
	probeAll()

	avg := testing.AllocsPerRun(50, probeAll)
	if avg != 0 {
		t.Fatalf("ProbeRound allocates %.2f times per two-block round, want 0", avg)
	}
}
