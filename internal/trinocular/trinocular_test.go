package trinocular

import (
	"errors"
	"math"
	"testing"
	"time"

	"sleepnet/internal/netsim"
)

var epoch = time.Date(2013, time.April, 1, 0, 0, 0, 0, time.UTC)

func at(d int, h, m int) time.Time {
	return epoch.AddDate(0, 0, d).Add(time.Duration(h)*time.Hour + time.Duration(m)*time.Minute)
}

// buildBlock makes a /24 with nOn always-on hosts and nInt intermittent
// hosts of probability pInt.
func buildBlock(id netsim.BlockID, nOn, nInt int, pInt float64) *netsim.Block {
	b := &netsim.Block{ID: id, Seed: uint64(id)}
	h := 0
	for ; h < nOn; h++ {
		b.Behaviors[h] = netsim.AlwaysOn{}
	}
	for ; h < nOn+nInt; h++ {
		b.Behaviors[h] = netsim.Intermittent{P: pInt, Seed: uint64(id) + uint64(h)}
	}
	return b
}

func TestAddBlockSparseRejected(t *testing.T) {
	n := netsim.NewNetwork(1)
	p := New(n, Config{}, 1)
	var hosts []byte
	for i := 0; i < 14; i++ {
		hosts = append(hosts, byte(i))
	}
	if err := p.AddBlock(netsim.MakeBlockID(10, 0, 0), hosts); !errors.Is(err, ErrTooSparse) {
		t.Fatalf("want ErrTooSparse, got %v", err)
	}
	hosts = append(hosts, 14)
	if err := p.AddBlock(netsim.MakeBlockID(10, 0, 0), hosts); err != nil {
		t.Fatal(err)
	}
	if !p.Tracked(netsim.MakeBlockID(10, 0, 0)) || p.NumTracked() != 1 {
		t.Fatal("tracking state wrong")
	}
}

func TestProbeRoundUnknownBlock(t *testing.T) {
	p := New(netsim.NewNetwork(1), Config{}, 1)
	if _, err := p.ProbeRound(netsim.MakeBlockID(1, 2, 3), at(0, 0, 0), 0.9); err == nil {
		t.Fatal("unknown block should error")
	}
}

func TestHighAvailabilityOneProbe(t *testing.T) {
	// Fully up block with high A: first probe positive, round ends at t=1.
	n := netsim.NewNetwork(1)
	blk := buildBlock(netsim.MakeBlockID(10, 0, 1), 100, 0, 0)
	n.AddBlock(blk)
	p := New(n, Config{}, 7)
	if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
		t.Fatal(err)
	}
	obs, err := p.ProbeRound(blk.ID, at(0, 0, 0), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Total != 1 || obs.Positive != 1 || !obs.Up {
		t.Fatalf("obs = %+v", obs)
	}
	if obs.Rate() != 1 {
		t.Fatalf("Rate = %v", obs.Rate())
	}
}

func TestDownBlockFewProbesWithHighAOp(t *testing.T) {
	// A block in outage with a high A estimate needs only a few negatives
	// to conclude "down" — the paper's point about overestimating Âo.
	n := netsim.NewNetwork(2)
	blk := buildBlock(netsim.MakeBlockID(10, 0, 2), 100, 0, 0)
	blk.Outages = []netsim.Interval{{Start: at(0, 0, 0), End: at(9, 0, 0)}}
	n.AddBlock(blk)
	p := New(n, Config{}, 7)
	if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
		t.Fatal(err)
	}
	obs, err := p.ProbeRound(blk.ID, at(0, 12, 0), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Positive != 0 {
		t.Fatalf("obs = %+v", obs)
	}
	if obs.Total > 5 {
		t.Fatalf("high Âo should conclude down quickly, used %d probes", obs.Total)
	}
	// Debounce: the down declaration lands on the second conclusive round.
	obs2nd, err := p.ProbeRound(blk.ID, at(0, 12, 11), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if obs2nd.Up || !obs2nd.Changed {
		t.Fatalf("second round should declare down: %+v", obs2nd)
	}
	// With a low Âo the same conclusion takes many more probes.
	p2 := New(n, Config{}, 8)
	if err := p2.AddBlock(blk.ID, blk.EverActive()); err != nil {
		t.Fatal(err)
	}
	obs2, err := p2.ProbeRound(blk.ID, at(0, 12, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if obs2.Total <= obs.Total {
		t.Fatalf("low Âo should take more probes: %d vs %d", obs2.Total, obs.Total)
	}
}

func TestOutageDetectionAndRecovery(t *testing.T) {
	n := netsim.NewNetwork(3)
	blk := buildBlock(netsim.MakeBlockID(10, 0, 3), 80, 0, 0)
	blk.Outages = []netsim.Interval{{Start: at(1, 0, 0), End: at(1, 6, 0)}}
	n.AddBlock(blk)
	p := New(n, Config{}, 9)
	if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
		t.Fatal(err)
	}
	var transitions []bool
	for r := 0; r < 400; r++ {
		now := at(0, 20, 0).Add(time.Duration(r) * 660 * time.Second)
		obs, err := p.ProbeRound(blk.ID, now, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if obs.Changed {
			transitions = append(transitions, obs.Up)
		}
	}
	// Expect exactly: down at outage start, up at outage end.
	// (Initial belief settles to up without a Changed event because blocks
	// start in the up state.)
	if len(transitions) != 2 || transitions[0] != false || transitions[1] != true {
		t.Fatalf("transitions = %v, want [down up]", transitions)
	}
	up, ok := p.Up(blk.ID)
	if !ok || !up {
		t.Fatal("block should end up")
	}
}

func TestObservationUnbiasedForIntermittentBlock(t *testing.T) {
	// E[p]/E[t] should estimate A for a block of intermittent addresses.
	n := netsim.NewNetwork(4)
	const trueP = 0.4
	blk := buildBlock(netsim.MakeBlockID(10, 0, 4), 0, 200, trueP)
	n.AddBlock(blk)
	p := New(n, Config{}, 11)
	if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
		t.Fatal(err)
	}
	var sp, stt int
	for r := 0; r < 4000; r++ {
		now := epoch.Add(time.Duration(r) * 660 * time.Second)
		obs, err := p.ProbeRound(blk.ID, now, trueP)
		if err != nil {
			t.Fatal(err)
		}
		sp += obs.Positive
		stt += obs.Total
	}
	got := float64(sp) / float64(stt)
	if math.Abs(got-trueP) > 0.03 {
		t.Fatalf("sum(p)/sum(t) = %v, want ~%v", got, trueP)
	}
}

func TestProbeBudgetUnderTwentyPerHour(t *testing.T) {
	// The headline operational claim: high-availability blocks cost well
	// under 20 probes/hour/block (5.45 rounds per hour, ~1 probe per round).
	n := netsim.NewNetwork(5)
	blk := buildBlock(netsim.MakeBlockID(10, 0, 5), 100, 0, 0)
	n.AddBlock(blk)
	p := New(n, Config{}, 13)
	if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
		t.Fatal(err)
	}
	hours := 24
	rounds := hours * 3600 / 660
	for r := 0; r <= rounds; r++ {
		now := epoch.Add(time.Duration(r) * 660 * time.Second)
		if _, err := p.ProbeRound(blk.ID, now, 0.9); err != nil {
			t.Fatal(err)
		}
	}
	rate := float64(p.ProbesSent()) / float64(hours)
	if rate >= 20 {
		t.Fatalf("probe rate = %v per hour, want < 20", rate)
	}
}

func TestColdRoundsSingleProbe(t *testing.T) {
	n := netsim.NewNetwork(6)
	// Intermittent block where a warm round would normally use >1 probe.
	blk := buildBlock(netsim.MakeBlockID(10, 0, 6), 0, 100, 0.3)
	n.AddBlock(blk)
	cfg := Config{RestartInterval: 5*time.Hour + 30*time.Minute, RestartDowntimeFrac: 1}
	p := New(n, cfg, 17)
	if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
		t.Fatal(err)
	}
	cold := 0
	rounds := 1000
	for r := 0; r < rounds; r++ {
		now := epoch.Add(time.Duration(r) * 660 * time.Second)
		obs, err := p.ProbeRound(blk.ID, now, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if obs.Cold {
			cold++
			if obs.Total != 1 {
				t.Fatalf("cold round used %d probes", obs.Total)
			}
		}
	}
	// 1000 rounds * 660 s = 7.6 days; restarts every 5.5 h => ~33 cold rounds.
	if cold < 25 || cold > 45 {
		t.Fatalf("cold rounds = %d, want ~33", cold)
	}
}

func TestNoRestartMeansNoColdRounds(t *testing.T) {
	n := netsim.NewNetwork(7)
	blk := buildBlock(netsim.MakeBlockID(10, 0, 7), 50, 0, 0)
	n.AddBlock(blk)
	p := New(n, Config{}, 19)
	if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 200; r++ {
		obs, err := p.ProbeRound(blk.ID, epoch.Add(time.Duration(r)*660*time.Second), 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if obs.Cold {
			t.Fatal("cold round without RestartInterval")
		}
	}
}

func TestUpdateBelief(t *testing.T) {
	// A positive response is near-conclusive evidence of up.
	b := updateBelief(0.5, true, 0.5, 1e-3)
	if b < 0.99 {
		t.Fatalf("positive update = %v, want > 0.99", b)
	}
	// A negative response lowers belief by factor (1-a) in odds.
	b = updateBelief(0.5, false, 0.9, 1e-3)
	if b > 0.1 {
		t.Fatalf("negative update with high A = %v, want <= 0.1", b)
	}
	b = updateBelief(0.5, false, 0.1, 1e-3)
	if b < 0.4 {
		t.Fatalf("negative update with low A = %v, want weak evidence", b)
	}
}

func TestWalkCoversAllHosts(t *testing.T) {
	// With MaxProbes=1 and a dead block, each round probes the next host in
	// the walk: after len(E) rounds every host must have been probed once.
	n := netsim.NewNetwork(8)
	blk := &netsim.Block{ID: netsim.MakeBlockID(10, 0, 8), Seed: 3}
	var hosts []byte
	for h := 0; h < 30; h++ {
		blk.Behaviors[h] = netsim.Dead{} // never answers; still "ever active" per history
		hosts = append(hosts, byte(h))
	}
	n.AddBlock(blk)
	p := New(n, Config{MaxProbesPerRound: 1}, 23)
	if err := p.AddBlock(blk.ID, hosts); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 30; r++ {
		if _, err := p.ProbeRound(blk.ID, epoch.Add(time.Duration(r)*660*time.Second), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	// 30 probes to 30 distinct hosts: total probes to block == 30 and the
	// walk is a permutation, so every host got exactly one.
	if got := n.ProbesToBlock(blk.ID); got != 30 {
		t.Fatalf("probes = %d", got)
	}
}

func TestBeliefAccessor(t *testing.T) {
	p := New(netsim.NewNetwork(9), Config{}, 1)
	if _, ok := p.Belief(netsim.MakeBlockID(1, 1, 1)); ok {
		t.Fatal("unknown block should report !ok")
	}
	if _, ok := p.Up(netsim.MakeBlockID(1, 1, 1)); ok {
		t.Fatal("unknown block should report !ok")
	}
}

func BenchmarkProbeRound(b *testing.B) {
	n := netsim.NewNetwork(10)
	blk := buildBlock(netsim.MakeBlockID(10, 1, 0), 100, 100, 0.5)
	n.AddBlock(blk)
	p := New(n, Config{}, 29)
	if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := epoch.Add(time.Duration(i) * 660 * time.Second)
		if _, err := p.ProbeRound(blk.ID, now, 0.7); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGatewayUnreachableSpeedsDetection(t *testing.T) {
	// A block whose gateway answers outage probes with
	// destination-unreachable: the prober should conclude "down" with
	// fewer probes than a silent outage needs, and record the
	// unreachables.
	mk := func(gwProb float64) (int, int) {
		n := netsim.NewNetwork(11)
		blk := buildBlock(netsim.MakeBlockID(10, 0, 30), 100, 0, 0)
		blk.GatewayUnreachableProb = gwProb
		blk.Outages = []netsim.Interval{{Start: at(0, 0, 0), End: at(2, 0, 0)}}
		n.AddBlock(blk)
		p := New(n, Config{}, 31)
		if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
			t.Fatal(err)
		}
		// Probe during the outage with a modest Âo (weak silence evidence).
		var probes, unreach int
		for r := 0; r < 4; r++ {
			obs, err := p.ProbeRound(blk.ID, at(0, 0, r*11), 0.3)
			if err != nil {
				t.Fatal(err)
			}
			probes += obs.Total
			unreach += obs.Unreachable
		}
		return probes, unreach
	}
	silentProbes, silentUnreach := mk(0)
	gwProbes, gwUnreach := mk(1)
	if silentUnreach != 0 {
		t.Fatalf("silent outage produced %d unreachables", silentUnreach)
	}
	if gwUnreach == 0 {
		t.Fatal("gateway outage produced no unreachables")
	}
	if gwProbes >= silentProbes {
		t.Fatalf("unreachables should reduce probing: %d vs %d", gwProbes, silentProbes)
	}
}

func TestFixedProbesPolicy(t *testing.T) {
	n := netsim.NewNetwork(12)
	blk := buildBlock(netsim.MakeBlockID(10, 0, 40), 100, 0, 0)
	n.AddBlock(blk)
	p := New(n, Config{FixedProbes: 7}, 41)
	if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		obs, err := p.ProbeRound(blk.ID, epoch.Add(time.Duration(r)*660*time.Second), 0.9)
		if err != nil {
			t.Fatal(err)
		}
		// Fully-up block: adaptive would stop at 1; fixed sends exactly 7.
		if obs.Total != 7 {
			t.Fatalf("round %d used %d probes, want 7", r, obs.Total)
		}
		if obs.Positive != 7 {
			t.Fatalf("round %d positives = %d", r, obs.Positive)
		}
		if !obs.Up {
			t.Fatal("block should be up")
		}
	}
}
