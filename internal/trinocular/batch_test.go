package trinocular

import (
	"testing"
	"time"

	"sleepnet/internal/faults"
	"sleepnet/internal/metrics"
	"sleepnet/internal/netsim"
)

// batchWorld is one independently-built copy of the equivalence fixture:
// identical worlds are built for the scalar and batch probers so the two
// runs share no state and every counter can be compared at the end.
type batchWorld struct {
	net *netsim.Network
	inj *faults.Injector
	p   *Prober
	reg *metrics.Registry
	ids []netsim.BlockID
}

// buildBatchWorld assembles a hostile fixture that exercises every probe
// outcome: an always-up block (first-probe positives), a flaky block
// (multi-probe negative runs), an outage block whose gateway sometimes
// answers unreachable, and a reply-rate-limited block. The fault injector
// adds loss, reply corruption, admin-prohibited rate limiting, clock skew,
// and periodic vantage blackouts (send errors → retries → the batch path's
// scalar-fallback lanes).
func buildBatchWorld(t *testing.T, withFaults bool) *batchWorld {
	t.Helper()
	n := netsim.NewNetwork(42)

	up := buildBlock(netsim.MakeBlockID(10, 3, 1), 100, 0, 0)
	flaky := buildBlock(netsim.MakeBlockID(10, 3, 2), 0, 100, 0.4)
	outage := buildBlock(netsim.MakeBlockID(10, 3, 3), 80, 0, 0)
	outage.GatewayUnreachableProb = 0.5
	outage.Outages = []netsim.Interval{
		{Start: at(0, 3, 0), End: at(0, 7, 0)},
		{Start: at(0, 14, 0), End: at(0, 16, 0)},
	}
	limited := buildBlock(netsim.MakeBlockID(10, 3, 4), 0, 90, 0.5)
	limited.ReplyRateLimit = 2

	w := &batchWorld{net: n, reg: metrics.New()}
	for _, blk := range []*netsim.Block{up, flaky, outage, limited} {
		n.AddBlock(blk)
		w.ids = append(w.ids, blk.ID)
	}
	if withFaults {
		w.inj = faults.New(faults.Config{
			Seed:              9,
			LossRate:          0.15,
			CorruptRate:       0.15,
			RateLimitPerRound: 6,
			ClockSkew:         30 * time.Millisecond,
			BlackoutEvery:     2 * time.Hour,
			BlackoutFor:       90 * time.Second,
			Epoch:             epoch,
		})
		n.SetTap(w.inj)
	}
	w.p = New(n, Config{
		RestartInterval: 5*time.Hour + 30*time.Minute,
		// Seed 24 puts exactly one of the four blocks inside this restart
		// window, so the fixture mixes cold and warm lanes in one batch.
		RestartDowntimeFrac: 0.5,
		Retry:               RetryConfig{MaxAttempts: 3, BaseBackoff: 2 * time.Second},
		Metrics:             w.reg,
	}, 24)
	for _, blk := range []*netsim.Block{up, flaky, outage, limited} {
		if err := w.p.AddBlock(blk.ID, blk.EverActive()); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// netCounters snapshots a network's global counters for comparison.
func netCounters(n *netsim.Network) [6]int64 {
	return [6]int64{
		n.Stats.Probes.Load(), n.Stats.Replies.Load(), n.Stats.Timeouts.Load(),
		n.Stats.Lost.Load(), n.Stats.Malformed.Load(), n.Stats.RateLimited.Load(),
	}
}

// TestProbeRoundsBatchMatchesScalar is the prober-level equivalence gate:
// the batched wavefront must produce, round for round and block for block,
// the exact observations of sequential ProbeRoundWith calls — and leave
// prober memory, network counters, fault-injector state, and the metrics
// registry identical too. Runs with and without the fault tap; the faulty
// run covers retries, scalar-fallback lanes, corrupted replies, and
// admin-prohibited cut-offs, and the fixture asserts each actually fired.
func TestProbeRoundsBatchMatchesScalar(t *testing.T) {
	for _, tc := range []struct {
		name       string
		withFaults bool
	}{
		{"clean", false},
		{"faulty", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ws := buildBatchWorld(t, tc.withFaults)
			wb := buildBatchWorld(t, tc.withFaults)

			pc := NewProbeContext()
			bc := NewBatchContext()
			aOps := []float64{0.9, 0.4, 0.8, 0.3}
			outB := make([]RoundObs, len(wb.ids))

			var agg RoundObs
			for r := 0; r < 64; r++ {
				now := epoch.Add(time.Duration(r) * 660 * time.Second)
				if err := wb.p.ProbeRoundsBatch(bc, wb.ids, aOps, now, outB); err != nil {
					t.Fatal(err)
				}
				for i, id := range ws.ids {
					obsS, err := ws.p.ProbeRoundWith(pc, id, now, aOps[i])
					if err != nil {
						t.Fatal(err)
					}
					if obsS != outB[i] {
						t.Fatalf("round %d block %s diverged:\nscalar %+v\nbatch  %+v", r, id, obsS, outB[i])
					}
					agg.Total += obsS.Total
					agg.Positive += obsS.Positive
					agg.Unreachable += obsS.Unreachable
					agg.Retries += obsS.Retries
					agg.SendErrors += obsS.SendErrors
					agg.RateLimited += obsS.RateLimited
					if obsS.Cold {
						agg.Round++ // reused as a cold-round tally
					}
				}
			}

			// The fixture must actually exercise the interesting paths, or
			// the equivalence above proves less than it claims.
			if agg.Positive == 0 || agg.Unreachable == 0 || agg.Round == 0 {
				t.Fatalf("fixture too tame: %+v", agg)
			}
			if tc.withFaults && (agg.Retries == 0 || agg.SendErrors == 0 || agg.RateLimited == 0) {
				t.Fatalf("fault fixture too tame: %+v", agg)
			}

			sState, bState := ws.p.ExportState(), wb.p.ExportState()
			if len(sState.Blocks) != len(bState.Blocks) {
				t.Fatalf("state sizes differ")
			}
			for i := range sState.Blocks {
				if sState.Blocks[i] != bState.Blocks[i] {
					t.Errorf("prober state diverged: %+v vs %+v", sState.Blocks[i], bState.Blocks[i])
				}
			}
			if !sState.Epoch.Equal(bState.Epoch) {
				t.Errorf("epochs diverged: %v vs %v", sState.Epoch, bState.Epoch)
			}
			if s, b := ws.p.ProbesSent(), wb.p.ProbesSent(); s != b {
				t.Errorf("ProbesSent %d vs %d", s, b)
			}
			if s, b := netCounters(ws.net), netCounters(wb.net); s != b {
				t.Errorf("network counters diverged: %v vs %v", s, b)
			}
			for _, id := range ws.ids {
				if s, b := ws.net.ProbesToBlock(id), wb.net.ProbesToBlock(id); s != b {
					t.Errorf("ProbesToBlock(%s) %d vs %d", id, s, b)
				}
			}
			if tc.withFaults {
				if s, b := ws.inj.Totals(), wb.inj.Totals(); s != b {
					t.Errorf("injector totals diverged: %+v vs %+v", s, b)
				}
			}
			sSnap, bSnap := ws.reg.Snapshot().Deterministic(), wb.reg.Snapshot().Deterministic()
			for _, name := range []string{
				"trinocular.probes_sent", "trinocular.positives", "trinocular.unreachables",
				"trinocular.retries", "trinocular.send_errors", "trinocular.rounds",
				"trinocular.rounds_cold", "trinocular.rounds_rate_limited",
				"trinocular.rounds_cut_short", "trinocular.rounds_failed", "trinocular.backoff_ns",
			} {
				if s, b := sSnap.Counter(name), bSnap.Counter(name); s != b {
					t.Errorf("%s: scalar %d, batch %d", name, s, b)
				}
			}
		})
	}
}

// scalarOnlyNet hides *netsim.Network's batch capability, leaving only the
// buffered scalar interface.
type scalarOnlyNet struct{ n *netsim.Network }

func (s scalarOnlyNet) DeliverIP(pkt []byte, now time.Time) netsim.Response {
	return s.n.DeliverIP(pkt, now)
}
func (s scalarOnlyNet) DeliverIPInto(buf *netsim.ReplyBuffer, pkt []byte, now time.Time) netsim.Response {
	return s.n.DeliverIPInto(buf, pkt, now)
}

// TestProbeRoundsBatchScalarNetworkFallback pins the degradation path: over
// a network without DeliverBatch, ProbeRoundsBatch must still work and
// still match per-block scalar rounds exactly.
func TestProbeRoundsBatchScalarNetworkFallback(t *testing.T) {
	build := func(batched bool) (*Prober, []netsim.BlockID) {
		n := netsim.NewNetwork(42)
		blkA := buildBlock(netsim.MakeBlockID(10, 4, 1), 50, 50, 0.5)
		blkB := buildBlock(netsim.MakeBlockID(10, 4, 2), 0, 80, 0.3)
		n.AddBlock(blkA)
		n.AddBlock(blkB)
		var pn ProbeNetwork = n
		if !batched {
			pn = scalarOnlyNet{n}
		}
		p := New(pn, Config{}, 13)
		for _, blk := range []*netsim.Block{blkA, blkB} {
			if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
				t.Fatal(err)
			}
		}
		return p, []netsim.BlockID{blkA.ID, blkB.ID}
	}

	pScalar, ids := build(false)
	pBatch, _ := build(true)
	if pScalar.batchNet != nil {
		t.Fatal("wrapper still exposes DeliverBatch")
	}
	if pBatch.batchNet == nil {
		t.Fatal("*netsim.Network should be detected as batched")
	}

	bcS, bcB := NewBatchContext(), NewBatchContext()
	aOps := []float64{0.6, 0.4}
	outS := make([]RoundObs, len(ids))
	outB := make([]RoundObs, len(ids))
	for r := 0; r < 32; r++ {
		now := epoch.Add(time.Duration(r) * 660 * time.Second)
		if err := pScalar.ProbeRoundsBatch(bcS, ids, aOps, now, outS); err != nil {
			t.Fatal(err)
		}
		if err := pBatch.ProbeRoundsBatch(bcB, ids, aOps, now, outB); err != nil {
			t.Fatal(err)
		}
		for i := range ids {
			if outS[i] != outB[i] {
				t.Fatalf("round %d block %s: fallback %+v vs batch %+v", r, ids[i], outS[i], outB[i])
			}
		}
	}
}

// TestProbeRoundsBatchErrors pins the argument contract: mismatched shapes
// and untracked blocks fail up front.
func TestProbeRoundsBatchErrors(t *testing.T) {
	n := netsim.NewNetwork(1)
	blk := buildBlock(netsim.MakeBlockID(10, 5, 1), 40, 0, 0)
	n.AddBlock(blk)
	p := New(n, Config{}, 1)
	if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
		t.Fatal(err)
	}
	bc := NewBatchContext()
	out := make([]RoundObs, 2)
	if err := p.ProbeRoundsBatch(bc, []netsim.BlockID{blk.ID}, []float64{0.5, 0.5}, at(0, 0, 0), out); err == nil {
		t.Fatal("shape mismatch should error")
	}
	ids := []netsim.BlockID{blk.ID, netsim.MakeBlockID(1, 2, 3)}
	if err := p.ProbeRoundsBatch(bc, ids, []float64{0.5, 0.5}, at(0, 0, 0), out); err == nil {
		t.Fatal("untracked block should error")
	}
}

// groupWorld is the per-block-prober variant of batchWorld, mirroring the
// measurement pipeline: every block gets its own prober (its own walk seed,
// derived from the block id exactly as core.Pipeline derives it) over one
// shared network.
type groupWorld struct {
	net     *netsim.Network
	inj     *faults.Injector
	probers []*Prober
	ids     []netsim.BlockID
}

func buildGroupWorld(t *testing.T, withFaults bool) *groupWorld {
	t.Helper()
	n := netsim.NewNetwork(42)

	up := buildBlock(netsim.MakeBlockID(10, 3, 1), 100, 0, 0)
	flaky := buildBlock(netsim.MakeBlockID(10, 3, 2), 0, 100, 0.4)
	outage := buildBlock(netsim.MakeBlockID(10, 3, 3), 80, 0, 0)
	outage.GatewayUnreachableProb = 0.5
	outage.Outages = []netsim.Interval{
		{Start: at(0, 3, 0), End: at(0, 7, 0)},
		{Start: at(0, 14, 0), End: at(0, 16, 0)},
	}
	limited := buildBlock(netsim.MakeBlockID(10, 3, 4), 0, 90, 0.5)
	limited.ReplyRateLimit = 2

	w := &groupWorld{net: n}
	if withFaults {
		w.inj = faults.New(faults.Config{
			Seed:              9,
			LossRate:          0.15,
			CorruptRate:       0.15,
			RateLimitPerRound: 6,
			ClockSkew:         30 * time.Millisecond,
			BlackoutEvery:     2 * time.Hour,
			BlackoutFor:       90 * time.Second,
			Epoch:             epoch,
		})
	}
	for _, blk := range []*netsim.Block{up, flaky, outage, limited} {
		n.AddBlock(blk)
		p := New(n, Config{
			RestartInterval:     5*time.Hour + 30*time.Minute,
			RestartDowntimeFrac: 0.5,
			Retry:               RetryConfig{MaxAttempts: 3, BaseBackoff: 2 * time.Second},
		}, 24^uint64(blk.ID))
		if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
			t.Fatal(err)
		}
		w.probers = append(w.probers, p)
		w.ids = append(w.ids, blk.ID)
	}
	if withFaults {
		n.SetTap(w.inj)
	}
	return w
}

// TestProbeRoundsBatchGroupMatchesScalar extends the equivalence gate to
// mixed-prober wavefronts: with one prober per block (the pipeline's
// arrangement), the grouped wavefront must reproduce sequential per-prober
// scalar rounds exactly — observations, prober memory, ProbesSent, network
// counters, and injector state.
func TestProbeRoundsBatchGroupMatchesScalar(t *testing.T) {
	for _, tc := range []struct {
		name       string
		withFaults bool
	}{
		{"clean", false},
		{"faulty", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ws := buildGroupWorld(t, tc.withFaults)
			wb := buildGroupWorld(t, tc.withFaults)

			pc := NewProbeContext()
			bc := NewBatchContext()
			aOps := []float64{0.9, 0.4, 0.8, 0.3}
			outB := make([]RoundObs, len(wb.ids))

			var agg RoundObs
			for r := 0; r < 64; r++ {
				now := epoch.Add(time.Duration(r) * 660 * time.Second)
				if err := ProbeRoundsBatchGroup(bc, wb.probers, wb.ids, aOps, now, outB); err != nil {
					t.Fatal(err)
				}
				for i, id := range ws.ids {
					obsS, err := ws.probers[i].ProbeRoundWith(pc, id, now, aOps[i])
					if err != nil {
						t.Fatal(err)
					}
					if obsS != outB[i] {
						t.Fatalf("round %d block %s diverged:\nscalar %+v\ngroup  %+v", r, id, obsS, outB[i])
					}
					agg.Total += obsS.Total
					agg.Positive += obsS.Positive
					agg.Unreachable += obsS.Unreachable
					agg.Retries += obsS.Retries
					agg.SendErrors += obsS.SendErrors
					agg.RateLimited += obsS.RateLimited
				}
			}
			if agg.Positive == 0 || agg.Unreachable == 0 {
				t.Fatalf("fixture too tame: %+v", agg)
			}
			if tc.withFaults && (agg.Retries == 0 || agg.SendErrors == 0 || agg.RateLimited == 0) {
				t.Fatalf("fault fixture too tame: %+v", agg)
			}

			for i := range ws.probers {
				sState, bState := ws.probers[i].ExportState(), wb.probers[i].ExportState()
				if len(sState.Blocks) != 1 || len(bState.Blocks) != 1 || sState.Blocks[0] != bState.Blocks[0] {
					t.Errorf("prober %d state diverged: %+v vs %+v", i, sState.Blocks, bState.Blocks)
				}
				if s, b := ws.probers[i].ProbesSent(), wb.probers[i].ProbesSent(); s != b {
					t.Errorf("prober %d ProbesSent %d vs %d", i, s, b)
				}
			}
			if s, b := netCounters(ws.net), netCounters(wb.net); s != b {
				t.Errorf("network counters diverged: %v vs %v", s, b)
			}
			if tc.withFaults {
				if s, b := ws.inj.Totals(), wb.inj.Totals(); s != b {
					t.Errorf("injector totals diverged: %+v vs %+v", s, b)
				}
			}
		})
	}
}

// TestProbeRoundsBatchGroupFallbackAndErrors pins the group contract: shape
// mismatches and untracked blocks error, and a group over a non-batched
// network still matches the batched result exactly.
func TestProbeRoundsBatchGroupFallbackAndErrors(t *testing.T) {
	build := func(batched bool) *groupWorld {
		n := netsim.NewNetwork(42)
		blkA := buildBlock(netsim.MakeBlockID(10, 4, 1), 50, 50, 0.5)
		blkB := buildBlock(netsim.MakeBlockID(10, 4, 2), 0, 80, 0.3)
		w := &groupWorld{net: n}
		var pn ProbeNetwork = n
		for _, blk := range []*netsim.Block{blkA, blkB} {
			n.AddBlock(blk)
			if !batched {
				pn = scalarOnlyNet{n}
			}
			p := New(pn, Config{}, 13^uint64(blk.ID))
			if err := p.AddBlock(blk.ID, blk.EverActive()); err != nil {
				t.Fatal(err)
			}
			w.probers = append(w.probers, p)
			w.ids = append(w.ids, blk.ID)
		}
		return w
	}

	wf := build(false)
	wb := build(true)
	bcF, bcB := NewBatchContext(), NewBatchContext()
	aOps := []float64{0.6, 0.4}
	outF := make([]RoundObs, 2)
	outB := make([]RoundObs, 2)
	for r := 0; r < 32; r++ {
		now := epoch.Add(time.Duration(r) * 660 * time.Second)
		if err := ProbeRoundsBatchGroup(bcF, wf.probers, wf.ids, aOps, now, outF); err != nil {
			t.Fatal(err)
		}
		if err := ProbeRoundsBatchGroup(bcB, wb.probers, wb.ids, aOps, now, outB); err != nil {
			t.Fatal(err)
		}
		for i := range wf.ids {
			if outF[i] != outB[i] {
				t.Fatalf("round %d block %s: fallback %+v vs group %+v", r, wf.ids[i], outF[i], outB[i])
			}
		}
	}

	bc := NewBatchContext()
	if err := ProbeRoundsBatchGroup(bc, wb.probers[:1], wb.ids, aOps, at(0, 0, 0), outB); err == nil {
		t.Fatal("shape mismatch should error")
	}
	badIDs := []netsim.BlockID{wb.ids[0], netsim.MakeBlockID(1, 2, 3)}
	if err := ProbeRoundsBatchGroup(bc, wb.probers, badIDs, aOps, at(0, 0, 0), outB); err == nil {
		t.Fatal("untracked block should error")
	}
	if err := ProbeRoundsBatchGroup(bc, nil, nil, nil, at(0, 0, 0), outB); err != nil {
		t.Fatalf("empty group should be a no-op, got %v", err)
	}
}

// TestProbeRoundsBatchGroupAllocFree pins the grouped warm-round budget at
// zero allocations, matching the single-prober batch path.
func TestProbeRoundsBatchGroupAllocFree(t *testing.T) {
	w := buildGroupWorld(t, false)
	bc := NewBatchContext()
	aOps := []float64{0.9, 0.4, 0.8, 0.3}
	out := make([]RoundObs, len(w.ids))

	round := 0
	probeAll := func() {
		now := epoch.Add(time.Duration(round) * 660 * time.Second)
		if err := ProbeRoundsBatchGroup(bc, w.probers, w.ids, aOps, now, out); err != nil {
			t.Fatal(err)
		}
		round++
	}
	for i := 0; i < 3; i++ {
		probeAll()
	}
	if avg := testing.AllocsPerRun(50, probeAll); avg != 0 {
		t.Fatalf("grouped batched round allocates %.2f times, want 0", avg)
	}
}

// TestProbeRoundsBatchAllocFree pins the batched warm-round budget at zero
// allocations: after the first rounds grow every arena, a full batched
// round over four blocks — marshal the wavefront, cross the boundary once,
// classify, update beliefs — must not touch the heap. Runs without the
// fault tap: reply corruption is copy-on-corrupt by contract and so pays
// its allocation on the scalar path too.
func TestProbeRoundsBatchAllocFree(t *testing.T) {
	w := buildBatchWorld(t, false)
	bc := NewBatchContext()
	aOps := []float64{0.9, 0.4, 0.8, 0.3}
	out := make([]RoundObs, len(w.ids))

	round := 0
	probeAll := func() {
		now := epoch.Add(time.Duration(round) * 660 * time.Second)
		if err := w.p.ProbeRoundsBatch(bc, w.ids, aOps, now, out); err != nil {
			t.Fatal(err)
		}
		round++
	}
	for i := 0; i < 3; i++ {
		probeAll()
	}
	if avg := testing.AllocsPerRun(50, probeAll); avg != 0 {
		t.Fatalf("batched round allocates %.2f times, want 0", avg)
	}
	if bc.RetainedBytes() == 0 {
		t.Fatal("RetainedBytes should report the warm arenas")
	}
}
