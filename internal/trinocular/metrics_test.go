package trinocular

import (
	"testing"
	"time"

	"sleepnet/internal/metrics"
	"sleepnet/internal/netsim"
)

// TestProberMetricsMatchObservations cross-checks the registry counters
// against the per-round observations the prober returns: the exported
// signal stream must agree with the data the estimators consume.
func TestProberMetricsMatchObservations(t *testing.T) {
	n := netsim.NewNetwork(5)
	id := netsim.MakeBlockID(10, 1, 2)
	blk := buildBlock(id, 20, 30, 0.4)
	n.AddBlock(blk)

	reg := metrics.New()
	p := New(n, Config{Metrics: reg}, 11)
	if err := p.AddBlock(id, blk.EverActive()); err != nil {
		t.Fatal(err)
	}

	var positives, unreachables, retries, sendErrors, rounds int
	for r := 0; r < 200; r++ {
		obs, err := p.ProbeRound(id, epoch.Add(time.Duration(r)*660*time.Second), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		positives += obs.Positive
		unreachables += obs.Unreachable
		retries += obs.Retries
		sendErrors += obs.SendErrors
		rounds++
	}

	snap := reg.Snapshot()
	checks := map[string]int64{
		"trinocular.rounds":       int64(rounds),
		"trinocular.positives":    int64(positives),
		"trinocular.unreachables": int64(unreachables),
		"trinocular.retries":      int64(retries),
		"trinocular.send_errors":  int64(sendErrors),
		"trinocular.probes_sent":  p.ProbesSent(),
	}
	for name, want := range checks {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.Counter("trinocular.probes_sent") == 0 {
		t.Fatal("no probes counted")
	}
}

// TestProberNilRegistryUnchanged pins the nil-registry fast path: the same
// seeded campaign with and without instrumentation produces identical
// observations.
func TestProberNilRegistryUnchanged(t *testing.T) {
	run := func(reg *metrics.Registry) []RoundObs {
		n := netsim.NewNetwork(5)
		id := netsim.MakeBlockID(10, 1, 2)
		blk := buildBlock(id, 20, 30, 0.4)
		n.AddBlock(blk)
		p := New(n, Config{Metrics: reg}, 11)
		if err := p.AddBlock(id, blk.EverActive()); err != nil {
			t.Fatal(err)
		}
		var out []RoundObs
		for r := 0; r < 100; r++ {
			obs, err := p.ProbeRound(id, epoch.Add(time.Duration(r)*660*time.Second), 0.5)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, obs)
		}
		return out
	}
	plain := run(nil)
	instr := run(metrics.New())
	for i := range plain {
		if plain[i] != instr[i] {
			t.Fatalf("round %d diverged: %+v vs %+v", i, plain[i], instr[i])
		}
	}
}
