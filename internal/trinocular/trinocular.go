// Package trinocular implements the adaptive outage prober the paper's
// estimators consume (Quan, Heidemann, Pradkin, SIGCOMM 2013): per /24
// block, each 11-minute round sends 1..15 ICMP echo probes to the block's
// ever-active addresses in a pseudorandom cyclic walk, stopping as soon as
// Bayesian belief about the block's state crosses a threshold — in
// particular on the first positive response. The per-round observation
// (p positives out of t probes) is deliberately biased toward positives;
// the availability estimators in internal/core are designed around exactly
// this bias (E[p]/E[t] = A for the truncated-geometric stopping rule).
//
// The prober also models the operational detail behind the paper's Figure
// 10 artifact: the real deployment restarted its prober every 5.5 hours,
// and restart rounds probe cold (single probe, reset belief), injecting
// periodic variance at ~4.4 cycles/day.
package trinocular

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sleepnet/internal/icmp"
	"sleepnet/internal/ipv4"
	"sleepnet/internal/netsim"
)

// ProbeNetwork is the slice of the network the prober needs: delivery of a
// full IPv4 packet. *netsim.Network implements it; a raw-socket adapter
// could too.
type ProbeNetwork interface {
	DeliverIP(pkt []byte, now time.Time) netsim.Response
}

// Config tunes the prober. The zero value is completed by defaults matching
// the paper's deployment.
type Config struct {
	// MaxProbesPerRound caps probes per block per round (default 15).
	MaxProbesPerRound int
	// BeliefUp and BeliefDown are the posterior thresholds that stop a
	// round (defaults 0.9 and 0.1).
	BeliefUp   float64
	BeliefDown float64
	// MinEverActive rejects sparse blocks from probing (default 15); the
	// paper's Trinocular policy, and the cause of its wireless false
	// negatives at USC.
	MinEverActive int
	// RestartInterval models periodic prober restarts; rounds landing on a
	// restart boundary probe cold. Zero disables restarts.
	RestartInterval time.Duration
	// RestartDowntimeFrac is the fraction of a round the prober is down
	// during a restart. Blocks are probed at a stable offset within each
	// round, so only blocks whose offset falls inside the downtime window
	// experience the cold round — the same blocks every restart, which is
	// what makes the artifact coherent for them and absent for the rest.
	// Default 0.1.
	RestartDowntimeFrac float64
	// ProbeID is the ICMP identifier base for this prober instance.
	ProbeID uint16
	// PositiveWhenDown is the probability of a positive answer from a down
	// block (spoofing/measurement error); it keeps the belief update
	// well-defined. Default 1e-3.
	PositiveWhenDown float64
	// FixedProbes, when positive, disables adaptive stopping: every round
	// sends exactly this many probes regardless of belief. This is the
	// ablation baseline for the stop-on-first-positive policy — unbiased
	// like the adaptive rule but far more expensive.
	FixedProbes int
	// SrcIP is the vantage point's source address stamped on probes.
	// Defaults to 198.51.100.1 (TEST-NET-2).
	SrcIP ipv4.Addr
}

func (c Config) withDefaults() Config {
	if c.MaxProbesPerRound <= 0 {
		c.MaxProbesPerRound = 15
	}
	if c.BeliefUp == 0 {
		c.BeliefUp = 0.9
	}
	if c.BeliefDown == 0 {
		c.BeliefDown = 0.1
	}
	if c.MinEverActive == 0 {
		c.MinEverActive = 15
	}
	if c.PositiveWhenDown == 0 {
		c.PositiveWhenDown = 1e-3
	}
	if c.RestartDowntimeFrac == 0 {
		c.RestartDowntimeFrac = 0.1
	}
	if c.SrcIP == (ipv4.Addr{}) {
		c.SrcIP = ipv4.Addr{198, 51, 100, 1}
	}
	return c
}

// ErrTooSparse is returned by AddBlock for blocks below MinEverActive.
var ErrTooSparse = errors.New("trinocular: block has too few ever-active addresses")

// RoundObs is the observation one probing round produces for one block.
type RoundObs struct {
	Round    int  // 0-based round counter for this block
	Positive int  // positive responses (0 or 1 under stop-on-first-positive)
	Total    int  // probes sent this round (1..MaxProbesPerRound)
	Up       bool // block state according to belief after this round
	Changed  bool // state flipped this round (outage start or recovery)
	Cold     bool // this was a restart (cold) round
	// Unreachable counts ICMP destination-unreachable answers this round —
	// negative but informative evidence (a gateway confirmed the block is
	// gone, rather than a probe simply timing out).
	Unreachable int
}

// Rate returns the raw p/t ratio of the round.
func (o RoundObs) Rate() float64 {
	if o.Total == 0 {
		return 0
	}
	return float64(o.Positive) / float64(o.Total)
}

// blockState is per-block prober memory.
type blockState struct {
	id     netsim.BlockID
	walk   []byte // pseudorandom permutation of ever-active hosts
	pos    int
	belief float64
	up     bool
	round  int
	seq    uint16
	// downStreak counts consecutive rounds that concluded "down"; a block
	// is only declared down after two such rounds (debouncing), because a
	// single all-negative round happens by chance on low-availability
	// blocks (0.7^12 ≈ 1.4% per round at A = 0.3) and would flood the
	// outage log with false positives. Recovery needs no debounce — a
	// positive response is near-conclusive evidence of up.
	downStreak int
}

// Prober drives adaptive probing over a set of blocks. After all blocks
// are added, ProbeRound may be called concurrently for *distinct* blocks;
// concurrent rounds for the same block are not supported (a real prober
// never probes one block twice in a round either).
type Prober struct {
	cfg       Config
	net       ProbeNetwork
	seed      uint64
	epoch     time.Time // established on first round; restart phase reference
	epochOnce sync.Once
	states    map[netsim.BlockID]*blockState

	probesSent atomic.Int64
}

// ProbesSent reports how many probes the prober has emitted.
func (p *Prober) ProbesSent() int64 { return p.probesSent.Load() }

// New creates a prober over the given network.
func New(net ProbeNetwork, cfg Config, seed uint64) *Prober {
	return &Prober{
		cfg:    cfg.withDefaults(),
		net:    net,
		seed:   seed,
		states: make(map[netsim.BlockID]*blockState),
	}
}

// AddBlock registers a block for probing given its historically ever-active
// host octets (Trinocular seeds this from census history). Blocks with
// fewer than MinEverActive hosts are rejected with ErrTooSparse.
func (p *Prober) AddBlock(id netsim.BlockID, everActive []byte) error {
	if len(everActive) < p.cfg.MinEverActive {
		return fmt.Errorf("%w: %s has %d < %d", ErrTooSparse, id, len(everActive), p.cfg.MinEverActive)
	}
	st := &blockState{
		id:     id,
		walk:   append([]byte(nil), everActive...),
		belief: 0.5,
		up:     true,
	}
	shuffle(st.walk, p.seed^uint64(id))
	p.states[id] = st
	return nil
}

// Tracked reports whether the block was accepted for probing.
func (p *Prober) Tracked(id netsim.BlockID) bool {
	_, ok := p.states[id]
	return ok
}

// NumTracked returns the number of blocks being probed.
func (p *Prober) NumTracked() int { return len(p.states) }

func shuffle(b []byte, seed uint64) {
	r := rand.New(rand.NewSource(int64(seed)))
	r.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
}

// isColdRound reports whether now falls in the first round after a prober
// restart boundary.
func (p *Prober) isColdRound(now time.Time) bool {
	if p.cfg.RestartInterval <= 0 {
		return false
	}
	since := now.Sub(p.epoch)
	if since < 0 {
		return false
	}
	phase := since % p.cfg.RestartInterval
	// A round is "cold" when it is the first round at or after a restart:
	// the boundary fell within the preceding 11 minutes.
	return phase < 11*time.Minute
}

// inDowntimeWindow reports whether the block's stable within-round probing
// offset falls inside the restart downtime window.
func (p *Prober) inDowntimeWindow(id netsim.BlockID) bool {
	if p.cfg.RestartDowntimeFrac >= 1 {
		return true
	}
	h := p.seed ^ uint64(id) ^ 0x0ff5e7
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	off := float64(h>>11) / (1 << 53)
	return off < p.cfg.RestartDowntimeFrac
}

// ProbeRound probes one block once, at virtual time now, using the caller's
// current operational availability estimate aOp (clamped to [0.1, 1] as the
// paper's policy requires). It returns the round's biased observation.
func (p *Prober) ProbeRound(id netsim.BlockID, now time.Time, aOp float64) (RoundObs, error) {
	st, ok := p.states[id]
	if !ok {
		return RoundObs{}, fmt.Errorf("trinocular: block %s not tracked", id)
	}
	p.epochOnce.Do(func() { p.epoch = now })
	if aOp < 0.1 {
		aOp = 0.1
	}
	if aOp > 1 {
		aOp = 1
	}

	obs := RoundObs{Round: st.round}
	st.round++

	maxProbes := p.cfg.MaxProbesPerRound
	belief := st.belief
	if p.isColdRound(now) && p.inDowntimeWindow(st.id) {
		// Restart: the prober process came back with no memory — belief
		// resets, the round probes cold, and the pseudorandom walk starts
		// over from the beginning. The walk reset is what makes restarts
		// visible in the data: cold rounds always sample the same leading
		// addresses, whose availability differs from the block mean in
		// heterogeneous blocks (the Fig 10 artifact at ~4.4 cycles/day).
		obs.Cold = true
		belief = 0.5
		maxProbes = 1
		st.pos = 0
	}
	// Keep the prior away from saturation so new evidence can move it.
	belief = clamp(belief, 0.05, 0.95)

	if p.cfg.FixedProbes > 0 && !obs.Cold {
		maxProbes = p.cfg.FixedProbes
	}
	for obs.Total < maxProbes {
		host := st.walk[st.pos]
		st.pos = (st.pos + 1) % len(st.walk)
		st.seq++
		outcome := p.sendProbe(st, host, now)
		obs.Total++
		switch outcome {
		case outcomePositive:
			obs.Positive++
			belief = updateBelief(belief, true, aOp, p.cfg.PositiveWhenDown)
		case outcomeUnreachable:
			obs.Unreachable++
			// A gateway's destination-unreachable is much stronger down
			// evidence than silence: likelihood ~1% if up, ~30% if down.
			belief = applyLikelihoods(belief, 0.01, 0.3)
		default:
			belief = updateBelief(belief, false, aOp, p.cfg.PositiveWhenDown)
		}
		if p.cfg.FixedProbes <= 0 && (belief >= p.cfg.BeliefUp || belief <= p.cfg.BeliefDown) {
			break
		}
	}

	st.belief = belief
	newUp := st.up
	switch {
	case belief >= p.cfg.BeliefUp:
		newUp = true
		st.downStreak = 0
	case belief <= p.cfg.BeliefDown:
		st.downStreak++
		if st.downStreak >= 2 || !st.up {
			newUp = false
		}
	default:
		// In between: keep previous state (hysteresis).
		st.downStreak = 0
	}
	obs.Changed = newUp != st.up
	st.up = newUp
	obs.Up = newUp
	return obs, nil
}

// probeOutcome distinguishes what a probe round trip produced.
type probeOutcome int

const (
	// outcomeNegative is silence (timeout) or an unusable reply.
	outcomeNegative probeOutcome = iota
	// outcomePositive is a matching echo reply.
	outcomePositive
	// outcomeUnreachable is an ICMP destination-unreachable quoting our
	// probe — an informative negative.
	outcomeUnreachable
)

// sendProbe emits one IPv4-encapsulated ICMP echo and classifies the
// answer: a matching echo reply from the probed address is positive; a
// destination-unreachable quoting our probe is an informative negative;
// anything else (timeout, malformed, mismatched) counts as silence.
func (p *Prober) sendProbe(st *blockState, host byte, now time.Time) probeOutcome {
	target := st.id.Addr(host)
	echoPkt, err := (&icmp.Echo{ID: p.cfg.ProbeID, Seq: st.seq}).Marshal()
	if err != nil {
		return outcomeNegative
	}
	hdr := &ipv4.Header{
		ID:       st.seq,
		TTL:      ipv4.DefaultTTL,
		Protocol: ipv4.ProtoICMP,
		Src:      p.cfg.SrcIP,
		Dst:      ipv4.Addr(target.IP()),
	}
	pkt, err := hdr.Marshal(echoPkt)
	if err != nil {
		return outcomeNegative
	}
	p.probesSent.Add(1)
	resp := p.net.DeliverIP(pkt, now)
	if resp.Timeout || resp.Data == nil {
		return outcomeNegative
	}
	rHdr, payload, err := ipv4.Parse(resp.Data)
	if err != nil || rHdr.Protocol != ipv4.ProtoICMP {
		return outcomeNegative
	}
	if rHdr.Dst != p.cfg.SrcIP {
		return outcomeNegative
	}
	switch icmp.TypeOf(payload) {
	case icmp.TypeDestUnreachable:
		un, err := icmp.ParseUnreachable(payload)
		if err != nil {
			return outcomeNegative
		}
		// The quoted original must be our probe. Gateways may quote the
		// full IPv4 datagram or just its ICMP payload; accept both.
		inner := un.Original
		if _, payload, perr := ipv4.Parse(inner); perr == nil {
			inner = payload
		}
		orig, err := icmp.ParseEcho(inner)
		if err != nil || orig.Reply || orig.ID != p.cfg.ProbeID || orig.Seq != st.seq {
			return outcomeNegative
		}
		return outcomeUnreachable
	case icmp.TypeEchoReply:
		if rHdr.Src != ipv4.Addr(target.IP()) {
			return outcomeNegative
		}
		reply, err := icmp.ParseEcho(payload)
		if err != nil || !reply.Matches(p.cfg.ProbeID, st.seq) {
			return outcomeNegative
		}
		return outcomePositive
	default:
		return outcomeNegative
	}
}

// updateBelief applies one Bayesian update to the belief that the block is
// up, given a positive or negative probe and the current availability
// estimate a = P(reply | block up, random ever-active target).
func updateBelief(b float64, positive bool, a, posWhenDown float64) float64 {
	if positive {
		return applyLikelihoods(b, a, posWhenDown)
	}
	return applyLikelihoods(b, 1-a, 1-posWhenDown)
}

// applyLikelihoods folds P(obs|up) and P(obs|down) into the belief.
func applyLikelihoods(b, lUp, lDown float64) float64 {
	num := lUp * b
	den := num + lDown*(1-b)
	if den == 0 {
		return b
	}
	return num / den
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Belief exposes the current belief for a block (tests and diagnostics).
func (p *Prober) Belief(id netsim.BlockID) (float64, bool) {
	st, ok := p.states[id]
	if !ok {
		return 0, false
	}
	return st.belief, true
}

// Up reports the prober's current up/down state for the block.
func (p *Prober) Up(id netsim.BlockID) (bool, bool) {
	st, ok := p.states[id]
	if !ok {
		return false, false
	}
	return st.up, true
}
