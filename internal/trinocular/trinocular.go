// Package trinocular implements the adaptive outage prober the paper's
// estimators consume (Quan, Heidemann, Pradkin, SIGCOMM 2013): per /24
// block, each 11-minute round sends 1..15 ICMP echo probes to the block's
// ever-active addresses in a pseudorandom cyclic walk, stopping as soon as
// Bayesian belief about the block's state crosses a threshold — in
// particular on the first positive response. The per-round observation
// (p positives out of t probes) is deliberately biased toward positives;
// the availability estimators in internal/core are designed around exactly
// this bias (E[p]/E[t] = A for the truncated-geometric stopping rule).
//
// The prober also models the operational detail behind the paper's Figure
// 10 artifact: the real deployment restarted its prober every 5.5 hours,
// and restart rounds probe cold (single probe, reset belief), injecting
// periodic variance at ~4.4 cycles/day.
package trinocular

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sleepnet/internal/icmp"
	"sleepnet/internal/ipv4"
	"sleepnet/internal/metrics"
	"sleepnet/internal/netsim"
	"sleepnet/internal/prf"
)

// ProbeNetwork is the slice of the network the prober needs: delivery of a
// full IPv4 packet. *netsim.Network implements it; a raw-socket adapter
// could too.
type ProbeNetwork interface {
	DeliverIP(pkt []byte, now time.Time) netsim.Response
}

// ProbeNetworkBuffered is the optional fast path: networks that can build
// the reply into a caller-owned ReplyBuffer instead of allocating it.
// *netsim.Network implements it. New detects it once and routes every probe
// through it, making the steady-state wire path allocation-free; plain
// ProbeNetwork implementations keep working unchanged.
type ProbeNetworkBuffered interface {
	ProbeNetwork
	DeliverIPInto(buf *netsim.ReplyBuffer, pkt []byte, now time.Time) netsim.Response
}

// Config tunes the prober. The zero value is completed by defaults matching
// the paper's deployment.
type Config struct {
	// MaxProbesPerRound caps probes per block per round (default 15).
	MaxProbesPerRound int
	// BeliefUp and BeliefDown are the posterior thresholds that stop a
	// round (defaults 0.9 and 0.1).
	BeliefUp   float64
	BeliefDown float64
	// MinEverActive rejects sparse blocks from probing (default 15); the
	// paper's Trinocular policy, and the cause of its wireless false
	// negatives at USC.
	MinEverActive int
	// RestartInterval models periodic prober restarts; rounds landing on a
	// restart boundary probe cold. Zero disables restarts.
	RestartInterval time.Duration
	// RestartDowntimeFrac is the fraction of a round the prober is down
	// during a restart. Blocks are probed at a stable offset within each
	// round, so only blocks whose offset falls inside the downtime window
	// experience the cold round — the same blocks every restart, which is
	// what makes the artifact coherent for them and absent for the rest.
	// Default 0.1.
	RestartDowntimeFrac float64
	// ProbeID is the ICMP identifier base for this prober instance.
	ProbeID uint16
	// PositiveWhenDown is the probability of a positive answer from a down
	// block (spoofing/measurement error); it keeps the belief update
	// well-defined. Default 1e-3.
	PositiveWhenDown float64
	// FixedProbes, when positive, disables adaptive stopping: every round
	// sends exactly this many probes regardless of belief. This is the
	// ablation baseline for the stop-on-first-positive policy — unbiased
	// like the adaptive rule but far more expensive.
	FixedProbes int
	// SrcIP is the vantage point's source address stamped on probes.
	// Defaults to 198.51.100.1 (TEST-NET-2).
	SrcIP ipv4.Addr
	// Retry enables per-probe retry of vantage-local send failures with
	// exponential backoff and jitter, bounded so a round cannot outgrow its
	// 11-minute slot. Silence is never retried — a timeout is evidence about
	// the target, a send error is not.
	Retry RetryConfig
	// Metrics, when non-nil, receives the prober's operational counters
	// (probes sent, positives, retries, rate-limited and cut-short rounds,
	// backoff). Nil keeps the probing path uninstrumented and overhead-free.
	Metrics *metrics.Registry
}

// RetryConfig tunes per-probe retry of transient (vantage-local) failures.
type RetryConfig struct {
	// MaxAttempts is the total number of attempts per probe including the
	// first; values below 2 disable retrying.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 2s); each
	// further retry doubles it up to MaxBackoff (default 60s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac adds a uniform draw in [0, JitterFrac) of the delay
	// (default 0.5) so retries from many blocks do not synchronize.
	JitterFrac float64
	// Budget caps the cumulative in-round backoff (default 9 minutes, under
	// the 11-minute round).
	Budget time.Duration
}

func (r RetryConfig) withDefaults() RetryConfig {
	if r.MaxAttempts < 2 {
		return r
	}
	if r.BaseBackoff <= 0 {
		r.BaseBackoff = 2 * time.Second
	}
	if r.MaxBackoff <= 0 {
		r.MaxBackoff = 60 * time.Second
	}
	if r.JitterFrac == 0 {
		r.JitterFrac = 0.5
	}
	if r.JitterFrac < 0 {
		r.JitterFrac = 0
	}
	if r.Budget <= 0 {
		r.Budget = 9 * time.Minute
	}
	return r
}

// delay returns the backoff before retry number attempt (1-based), before
// jitter.
func (r RetryConfig) delay(attempt int) time.Duration {
	d := r.BaseBackoff
	for i := 1; i < attempt && d < r.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	return d
}

func (c Config) withDefaults() Config {
	if c.MaxProbesPerRound <= 0 {
		c.MaxProbesPerRound = 15
	}
	if c.BeliefUp == 0 {
		c.BeliefUp = 0.9
	}
	if c.BeliefDown == 0 {
		c.BeliefDown = 0.1
	}
	if c.MinEverActive == 0 {
		c.MinEverActive = 15
	}
	if c.PositiveWhenDown == 0 {
		c.PositiveWhenDown = 1e-3
	}
	if c.RestartDowntimeFrac == 0 {
		c.RestartDowntimeFrac = 0.1
	}
	if c.SrcIP == (ipv4.Addr{}) {
		c.SrcIP = ipv4.Addr{198, 51, 100, 1}
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// ErrTooSparse is returned by AddBlock for blocks below MinEverActive.
var ErrTooSparse = errors.New("trinocular: block has too few ever-active addresses")

// RoundObs is the observation one probing round produces for one block.
type RoundObs struct {
	Round    int  // 0-based round counter for this block
	Positive int  // positive responses (0 or 1 under stop-on-first-positive)
	Total    int  // probes sent this round (1..MaxProbesPerRound)
	Up       bool // block state according to belief after this round
	Changed  bool // state flipped this round (outage start or recovery)
	Cold     bool // this was a restart (cold) round
	// Unreachable counts ICMP destination-unreachable answers this round —
	// negative but informative evidence (a gateway confirmed the block is
	// gone, rather than a probe simply timing out).
	Unreachable int
	// Retries counts send attempts repeated after vantage-local failures.
	Retries int
	// SendErrors counts probes that failed locally even after retries; they
	// carry no evidence about the block and are excluded from Total.
	SendErrors int
	// RateLimited is 1 when the round was cut short by an administratively-
	// prohibited answer (measurement interference, not evidence).
	RateLimited int
}

// Failed reports whether the round produced no usable observation: every
// probe died at the vantage point or was eaten by rate limiting. The
// pointer receiver (here and on Rate) keeps per-round hot paths from
// copying the struct when inlining falls through.
func (o *RoundObs) Failed() bool { return o.Total == 0 }

// Rate returns the raw p/t ratio of the round.
func (o *RoundObs) Rate() float64 {
	if o.Total == 0 {
		return 0
	}
	return float64(o.Positive) / float64(o.Total)
}

// blockState is per-block prober memory.
type blockState struct {
	id     netsim.BlockID
	walk   []byte // pseudorandom permutation of ever-active hosts
	pos    int
	belief float64
	up     bool
	round  int
	seq    uint16
	// downStreak counts consecutive rounds that concluded "down"; a block
	// is only declared down after two such rounds (debouncing), because a
	// single all-negative round happens by chance on low-availability
	// blocks (0.7^12 ≈ 1.4% per round at A = 0.3) and would flood the
	// outage log with false positives. Recovery needs no debounce — a
	// positive response is near-conclusive evidence of up.
	downStreak int
	// pktTmpl is the prefab probe packet for this block: every byte that
	// does not change between probes (IP version/TTL/protocol/src, the /24
	// prefix of dst, the ICMP type and probe ID) is marshalled once at
	// AddBlock time. A probe then copies the template and patches the five
	// varying fields — IP ID, host octet, echo sequence, and the two
	// checksums, folded from the precomputed partial sums below — which is
	// byte-identical to the generic icmp+ipv4 MarshalAppend chain (pinned
	// by TestProbeTemplateMatchesMarshal) at a fraction of the cost.
	pktTmpl  [probePktLen]byte
	ipPart   uint32 // ones-complement sum of pktTmpl's IP header words (ID, checksum, host octet zero)
	echoPart uint32 // ones-complement sum of pktTmpl's echo words (seq, checksum zero)
}

// probePktLen is the wire size of every probe the prober sends: an
// option-less IPv4 header around a payload-less ICMP echo request.
const probePktLen = ipv4.HeaderLen + icmp.EchoHeaderLen

// initTemplate marshals the static bytes of the block's probe packet and
// the checksum partial sums. Called once per AddBlock.
func (st *blockState) initTemplate(probeID uint16, src ipv4.Addr) {
	b := st.pktTmpl[:]
	b[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(b[2:4], probePktLen)
	b[8] = ipv4.DefaultTTL
	b[9] = ipv4.ProtoICMP
	copy(b[12:16], src[:])
	ip := st.id.Addr(0).IP()
	copy(b[16:20], ip[:])
	b[ipv4.HeaderLen] = icmp.TypeEchoRequest
	binary.BigEndian.PutUint16(b[ipv4.HeaderLen+4:], probeID)
	var sum uint32
	for i := 0; i < ipv4.HeaderLen; i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	st.ipPart = sum
	st.echoPart = uint32(icmp.TypeEchoRequest)<<8 + uint32(probeID)
}

// appendProbe appends the marshalled probe for (st.seq, host) to dst and
// returns the grown slice. The bytes are exactly what the generic marshal
// chain would produce: the template supplies the static bytes, and each
// checksum is the fold of its partial sum plus the varying words (the
// ones-complement sum is commutative, so adding the ID/seq/host words to
// the template's sum equals summing the patched packet).
func (st *blockState) appendProbe(dst []byte, host byte) []byte {
	off := len(dst)
	dst = append(dst, st.pktTmpl[:]...)
	b := dst[off:]
	binary.BigEndian.PutUint16(b[4:6], st.seq)
	b[19] = host
	s := st.ipPart + uint32(st.seq) + uint32(host)
	for s > 0xffff {
		s = (s >> 16) + (s & 0xffff)
	}
	binary.BigEndian.PutUint16(b[10:12], ^uint16(s))
	binary.BigEndian.PutUint16(b[ipv4.HeaderLen+6:], st.seq)
	s = st.echoPart + uint32(st.seq)
	for s > 0xffff {
		s = (s >> 16) + (s & 0xffff)
	}
	binary.BigEndian.PutUint16(b[ipv4.HeaderLen+2:], ^uint16(s))
	return dst
}

// ProbeContext is the reusable wire scratch one probing worker threads
// through its rounds: the marshalled probe packet and the network's reply
// buffer. It used to live inside blockState, which retained
// grown buffers per tracked block — O(blocks) steady-state memory. A
// context belongs to one worker at a time (rounds sharing a context must not
// run concurrently), so a monitor over a million blocks retains O(workers)
// probe-context bytes, not O(blocks).
type ProbeContext struct {
	pktBuf []byte
	reply  netsim.ReplyBuffer
}

// NewProbeContext returns an empty context; buffers grow on first use and
// are reused afterwards.
func NewProbeContext() *ProbeContext { return &ProbeContext{} }

// RetainedBytes reports the heap bytes the context currently retains — the
// quantity the monitor's O(workers) memory contract is pinned against.
func (pc *ProbeContext) RetainedBytes() int {
	return cap(pc.pktBuf) + pc.reply.RetainedBytes()
}

// Prober drives adaptive probing over a set of blocks. After all blocks
// are added, ProbeRound may be called concurrently for *distinct* blocks;
// concurrent rounds for the same block are not supported (a real prober
// never probes one block twice in a round either).
type Prober struct {
	cfg Config
	net ProbeNetwork
	// bufNet is net when it also implements ProbeNetworkBuffered (detected
	// once in New), nil otherwise.
	bufNet ProbeNetworkBuffered
	// batchNet is net when it also implements ProbeNetworkBatched (detected
	// once in New), nil otherwise; without it ProbeRoundsBatch degrades to
	// scalar rounds.
	batchNet  ProbeNetworkBatched
	seed      uint64
	epoch     time.Time // established on first round; restart phase reference
	epochOnce sync.Once
	states    map[netsim.BlockID]*blockState

	// ctxMu guards the free-list of pooled probe contexts backing the
	// context-less ProbeRound entry point. A plain free-list (not a
	// sync.Pool) so the retained set is never GC-cleared and stays exactly
	// at the peak number of concurrent rounds — the O(workers) bound.
	ctxMu      sync.Mutex
	ctxFree    []*ProbeContext
	ctxCreated int64

	probesSent atomic.Int64
	m          proberMetrics
}

// proberMetrics caches the prober's instruments. All fields are nil when no
// registry is configured; counter methods are no-ops on nil receivers, so
// the probing path carries only a nil-check per event.
type proberMetrics struct {
	probes            *metrics.Counter
	positives         *metrics.Counter
	unreachables      *metrics.Counter
	retries           *metrics.Counter
	sendErrors        *metrics.Counter
	rounds            *metrics.Counter
	roundsCold        *metrics.Counter
	roundsRateLimited *metrics.Counter
	roundsCutShort    *metrics.Counter
	roundsFailed      *metrics.Counter
	backoffNanos      *metrics.Counter
}

func newProberMetrics(r *metrics.Registry) proberMetrics {
	if r == nil {
		return proberMetrics{}
	}
	return proberMetrics{
		probes:            r.Counter("trinocular.probes_sent"),
		positives:         r.Counter("trinocular.positives"),
		unreachables:      r.Counter("trinocular.unreachables"),
		retries:           r.Counter("trinocular.retries"),
		sendErrors:        r.Counter("trinocular.send_errors"),
		rounds:            r.Counter("trinocular.rounds"),
		roundsCold:        r.Counter("trinocular.rounds_cold"),
		roundsRateLimited: r.Counter("trinocular.rounds_rate_limited"),
		roundsCutShort:    r.Counter("trinocular.rounds_cut_short"),
		roundsFailed:      r.Counter("trinocular.rounds_failed"),
		backoffNanos:      r.Counter("trinocular.backoff_ns"),
	}
}

// ProbesSent reports how many probes the prober has emitted.
func (p *Prober) ProbesSent() int64 { return p.probesSent.Load() }

// New creates a prober over the given network.
func New(net ProbeNetwork, cfg Config, seed uint64) *Prober {
	p := &Prober{
		cfg:    cfg.withDefaults(),
		net:    net,
		seed:   seed,
		states: make(map[netsim.BlockID]*blockState),
		m:      newProberMetrics(cfg.Metrics),
	}
	if bn, ok := net.(ProbeNetworkBuffered); ok {
		p.bufNet = bn
	}
	if bn, ok := net.(ProbeNetworkBatched); ok {
		p.batchNet = bn
	}
	return p
}

// AddBlock registers a block for probing given its historically ever-active
// host octets (Trinocular seeds this from census history). Blocks with
// fewer than MinEverActive hosts are rejected with ErrTooSparse.
func (p *Prober) AddBlock(id netsim.BlockID, everActive []byte) error {
	if len(everActive) < p.cfg.MinEverActive {
		return fmt.Errorf("%w: %s has %d < %d", ErrTooSparse, id, len(everActive), p.cfg.MinEverActive)
	}
	st := &blockState{
		id:     id,
		walk:   append([]byte(nil), everActive...),
		belief: 0.5,
		up:     true,
	}
	st.initTemplate(p.cfg.ProbeID, p.cfg.SrcIP)
	shuffle(st.walk, p.seed^uint64(id))
	p.states[id] = st
	return nil
}

// Tracked reports whether the block was accepted for probing.
func (p *Prober) Tracked(id netsim.BlockID) bool {
	_, ok := p.states[id]
	return ok
}

// NumTracked returns the number of blocks being probed.
func (p *Prober) NumTracked() int { return len(p.states) }

func shuffle(b []byte, seed uint64) {
	r := rand.New(rand.NewSource(int64(seed)))
	r.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
}

// isColdRound reports whether now falls in the first round after a prober
// restart boundary.
func (p *Prober) isColdRound(now time.Time) bool {
	if p.cfg.RestartInterval <= 0 {
		return false
	}
	since := now.Sub(p.epoch)
	if since < 0 {
		return false
	}
	phase := since % p.cfg.RestartInterval
	// A round is "cold" when it is the first round at or after a restart:
	// the boundary fell within the preceding 11 minutes.
	return phase < 11*time.Minute
}

// inDowntimeWindow reports whether the block's stable within-round probing
// offset falls inside the restart downtime window.
func (p *Prober) inDowntimeWindow(id netsim.BlockID) bool {
	if p.cfg.RestartDowntimeFrac >= 1 {
		return true
	}
	h := p.seed ^ uint64(id) ^ 0x0ff5e7
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	off := float64(h>>11) / (1 << 53)
	return off < p.cfg.RestartDowntimeFrac
}

// getContext borrows a pooled probe context, creating one only when every
// pooled context is already in flight.
func (p *Prober) getContext() *ProbeContext {
	p.ctxMu.Lock()
	defer p.ctxMu.Unlock()
	if n := len(p.ctxFree); n > 0 {
		pc := p.ctxFree[n-1]
		p.ctxFree[n-1] = nil
		p.ctxFree = p.ctxFree[:n-1]
		return pc
	}
	p.ctxCreated++
	return NewProbeContext()
}

// putContext returns a borrowed context to the pool.
func (p *Prober) putContext(pc *ProbeContext) {
	p.ctxMu.Lock()
	p.ctxFree = append(p.ctxFree, pc)
	p.ctxMu.Unlock()
}

// ContextsCreated reports how many probe contexts the internal pool has ever
// built: with k workers calling ProbeRound concurrently it converges to k
// regardless of how many blocks are tracked. Callers that thread their own
// context through ProbeRoundWith never touch the pool.
func (p *Prober) ContextsCreated() int64 {
	p.ctxMu.Lock()
	defer p.ctxMu.Unlock()
	return p.ctxCreated
}

// ProbeRound probes one block once, at virtual time now, using the caller's
// current operational availability estimate aOp (clamped to [0.1, 1] as the
// paper's policy requires). It returns the round's biased observation. Wire
// scratch comes from the prober's internal context pool; workers that own a
// long-lived context should call ProbeRoundWith instead.
func (p *Prober) ProbeRound(id netsim.BlockID, now time.Time, aOp float64) (RoundObs, error) {
	pc := p.getContext()
	defer p.putContext(pc)
	return p.ProbeRoundWith(pc, id, now, aOp)
}

// ProbeRoundWith is ProbeRound with caller-owned wire scratch: the monitor's
// shards each hold one ProbeContext for the lifetime of the shard, so probing
// a million blocks retains O(shards) buffer bytes. The context must not be
// shared with a concurrently probing worker.
func (p *Prober) ProbeRoundWith(pc *ProbeContext, id netsim.BlockID, now time.Time, aOp float64) (RoundObs, error) {
	st, ok := p.states[id]
	if !ok {
		return RoundObs{}, fmt.Errorf("trinocular: block %s not tracked", id)
	}
	//lint:allow hotalloc: once-guarded epoch capture; the closure is live only on the prober's very first round
	p.epochOnce.Do(func() { p.epoch = now })
	var rs roundState
	p.beginRound(&rs, st, now, aOp)
	p.scalarRound(&rs, pc, now)
	p.finishRound(&rs)
	return rs.obs, nil
}

// roundState is the in-flight state of one block's probing round, shared by
// the scalar path (ProbeRoundWith) and the batch path (ProbeRoundsBatch):
// beginRound opens it, prepareProbe/applyOutcome advance it one probe at a
// time, finishRound folds it back into the block's memory. Because both
// paths drive the same probes through the same state machine, a batched
// round is equivalent to a scalar round by construction — there is no
// second belief/stop/debounce implementation to drift.
type roundState struct {
	st        *blockState
	obs       RoundObs
	aOp       float64
	belief    float64
	maxProbes int
	// backoffUsed shifts every later probe of the round: retried probes
	// really happen that much later in virtual time, which is what lets a
	// retry escape a vantage blackout window.
	backoffUsed time.Duration
	// sent counts marshalled send attempts (including retries). It flushes
	// to the prober's probe counters once per round in finishRound, so the
	// hot loop never touches an atomic or a metrics counter per probe.
	sent int64
	done bool
}

// beginRound opens a round for the block into rs: clamps the caller's
// operational availability estimate, bumps the round counter, applies the
// cold-restart reset, clamps the prior, and fixes the probe budget. It
// initializes rs in place (rather than returning a roundState) because the
// struct is large enough that returning it by value shows up as copy cost
// on the batched hot path.
func (p *Prober) beginRound(rs *roundState, st *blockState, now time.Time, aOp float64) {
	if aOp < 0.1 {
		aOp = 0.1
	}
	if aOp > 1 {
		aOp = 1
	}
	// Field-wise reset, not a struct literal: assigning a ~128-byte literal
	// through the pointer compiles to a temporary plus duffcopy, which is
	// measurable at one call per block per round.
	rs.st = st
	rs.obs = RoundObs{Round: st.round}
	rs.aOp = aOp
	rs.belief = st.belief
	rs.maxProbes = p.cfg.MaxProbesPerRound
	rs.backoffUsed = 0
	rs.sent = 0
	rs.done = false
	st.round++
	if p.isColdRound(now) && p.inDowntimeWindow(st.id) {
		// Restart: the prober process came back with no memory — belief
		// resets, the round probes cold, and the pseudorandom walk starts
		// over from the beginning. The walk reset is what makes restarts
		// visible in the data: cold rounds always sample the same leading
		// addresses, whose availability differs from the block mean in
		// heterogeneous blocks (the Fig 10 artifact at ~4.4 cycles/day).
		rs.obs.Cold = true
		rs.belief = 0.5
		rs.maxProbes = 1
		st.pos = 0
	}
	// Keep the prior away from saturation so new evidence can move it.
	rs.belief = clamp(rs.belief, 0.05, 0.95)
	if p.cfg.FixedProbes > 0 && !rs.obs.Cold {
		rs.maxProbes = p.cfg.FixedProbes
	}
}

// prepareProbe advances the walk and sequence number for the round's next
// probe and returns the host octet to target. The inputs of every probe —
// target, sequence, timestamp — are fixed here, before any outcome is
// known, which is what lets the batch path marshal a whole wavefront of
// probes up front without changing the schedule.
func (rs *roundState) prepareProbe() byte {
	st := rs.st
	host := st.walk[st.pos]
	st.pos = (st.pos + 1) % len(st.walk)
	st.seq++
	return host
}

// scalarRound drives rs to completion through the scalar wire path, from
// wherever it currently stands: ProbeRoundWith runs whole rounds through
// it, and the batch path hands over lanes that hit a vantage-local send
// failure (whose remaining probes happen at backoff-shifted times and so
// leave the batch wavefront).
func (p *Prober) scalarRound(rs *roundState, pc *ProbeContext, now time.Time) {
	for !rs.done {
		host := rs.prepareProbe()
		outcome := p.sendProbe(pc, rs, host, now.Add(rs.backoffUsed))
		if outcome == outcomeSendError {
			outcome = p.retrySendErrors(rs, pc, host, now)
		}
		p.applyOutcome(rs, outcome)
	}
}

// retrySendErrors re-sends a probe that failed at the vantage point, with
// exponential backoff, jitter, and the round's cumulative backoff budget.
// It returns the final outcome — still outcomeSendError when the attempt
// cap or budget is exhausted first.
func (p *Prober) retrySendErrors(rs *roundState, pc *ProbeContext, host byte, now time.Time) probeOutcome {
	st := rs.st
	outcome := outcomeSendError
	for attempt := 1; attempt < p.cfg.Retry.MaxAttempts; attempt++ {
		d := p.cfg.Retry.delay(attempt)
		if p.cfg.Retry.JitterFrac > 0 {
			j := prf.Float(p.seed^0x7e77, uint64(st.id), uint64(st.seq), uint64(attempt))
			d += time.Duration(j * p.cfg.Retry.JitterFrac * float64(d))
		}
		if rs.backoffUsed+d > p.cfg.Retry.Budget {
			break
		}
		rs.backoffUsed += d
		rs.obs.Retries++
		st.seq++
		outcome = p.sendProbe(pc, rs, host, now.Add(rs.backoffUsed))
		if outcome != outcomeSendError {
			break
		}
	}
	return outcome
}

// applyOutcome folds one probe's final outcome into the round: the belief
// update, the observation counters, and every way a round can end
// (interference, vantage failure, belief crossing a threshold, probe
// budget exhausted).
func (p *Prober) applyOutcome(rs *roundState, outcome probeOutcome) {
	switch outcome {
	case outcomeSendError:
		// The vantage point is down and the retry budget is spent;
		// further probes this round would fail the same way. No belief
		// update — a local failure says nothing about the block.
		rs.obs.SendErrors++
		rs.done = true
		return
	case outcomeRateLimited:
		// An admin-prohibited answer means an intermediate device is
		// eating our probes: stop the round so the interference cannot
		// masquerade as down evidence and burn the reply budget.
		rs.obs.RateLimited++
		rs.done = true
		return
	case outcomePositive:
		rs.obs.Total++
		rs.obs.Positive++
		rs.belief = updateBelief(rs.belief, true, rs.aOp, p.cfg.PositiveWhenDown)
	case outcomeUnreachable:
		rs.obs.Total++
		rs.obs.Unreachable++
		// A gateway's destination-unreachable is much stronger down
		// evidence than silence: likelihood ~1% if up, ~30% if down.
		rs.belief = applyLikelihoods(rs.belief, 0.01, 0.3)
	default:
		rs.obs.Total++
		rs.belief = updateBelief(rs.belief, false, rs.aOp, p.cfg.PositiveWhenDown)
	}
	if p.cfg.FixedProbes <= 0 && (rs.belief >= p.cfg.BeliefUp || rs.belief <= p.cfg.BeliefDown) {
		rs.done = true
		return
	}
	if rs.obs.Total >= rs.maxProbes {
		rs.done = true
	}
}

// finishRound folds the completed round back into the block's memory (the
// belief and the debounced up/down state machine) and flushes the round's
// metrics — one add per counter per round, never one per probe. The round's
// observation is left in rs.obs; the caller copies it out once, which keeps
// the ~96-byte RoundObs from being copied twice per round on the hot path.
func (p *Prober) finishRound(rs *roundState) {
	st := rs.st
	st.belief = rs.belief
	newUp := st.up
	switch {
	case rs.belief >= p.cfg.BeliefUp:
		newUp = true
		st.downStreak = 0
	case rs.belief <= p.cfg.BeliefDown:
		st.downStreak++
		if st.downStreak >= 2 || !st.up {
			newUp = false
		}
	default:
		// In between: keep previous state (hysteresis).
		st.downStreak = 0
	}
	rs.obs.Changed = newUp != st.up
	st.up = newUp
	rs.obs.Up = newUp

	p.probesSent.Add(rs.sent)
	p.m.probes.Add(rs.sent)
	p.m.rounds.Inc()
	p.m.positives.Add(int64(rs.obs.Positive))
	p.m.unreachables.Add(int64(rs.obs.Unreachable))
	p.m.retries.Add(int64(rs.obs.Retries))
	p.m.sendErrors.Add(int64(rs.obs.SendErrors))
	p.m.backoffNanos.Add(int64(rs.backoffUsed))
	if rs.obs.Cold {
		p.m.roundsCold.Inc()
	}
	if rs.obs.RateLimited > 0 {
		p.m.roundsRateLimited.Inc()
	}
	if rs.obs.SendErrors > 0 {
		// The round stopped early because the vantage point was down.
		p.m.roundsCutShort.Inc()
	}
	if rs.obs.Failed() {
		p.m.roundsFailed.Inc()
	}
}

// probeOutcome distinguishes what a probe round trip produced.
type probeOutcome int

const (
	// outcomeNegative is silence (timeout) or an unusable reply.
	outcomeNegative probeOutcome = iota
	// outcomePositive is a matching echo reply.
	outcomePositive
	// outcomeUnreachable is an ICMP destination-unreachable quoting our
	// probe — an informative negative.
	outcomeUnreachable
	// outcomeSendError is a vantage-local send failure (no evidence,
	// retryable).
	outcomeSendError
	// outcomeRateLimited is an administratively-prohibited unreachable
	// quoting our probe: rate limiting, i.e. interference rather than
	// evidence.
	outcomeRateLimited
)

// sendProbe emits one IPv4-encapsulated ICMP echo for the round's current
// sequence number and classifies the answer. Wire scratch comes from the
// worker's ProbeContext, not the block; the attempt is tallied in rs.sent
// so the probe counters flush once per round instead of once per probe.
func (p *Prober) sendProbe(pc *ProbeContext, rs *roundState, host byte, now time.Time) probeOutcome {
	st := rs.st
	pkt := st.appendProbe(pc.pktBuf[:0], host)
	pc.pktBuf = pkt
	rs.sent++
	var resp netsim.Response
	if p.bufNet != nil {
		// resp.Data aliases pc.reply: valid until this context's next probe,
		// which is after every use below.
		resp = p.bufNet.DeliverIPInto(&pc.reply, pkt, now)
	} else {
		resp = p.net.DeliverIP(pkt, now)
	}
	return p.classifyResponse(resp, ipv4.Addr(st.id.Addr(host).IP()), st.seq)
}

// classifyResponse decides what one probe's round trip produced: a matching
// echo reply from the probed address is positive; a destination-unreachable
// quoting our probe is an informative negative (admin-prohibited meaning
// rate limiting); anything else (timeout, malformed, mismatched) counts as
// silence. Shared verbatim by the scalar and batch wire paths, so the two
// cannot disagree about what a reply means.
func (p *Prober) classifyResponse(resp netsim.Response, target ipv4.Addr, seq uint16) probeOutcome {
	if resp.SendFailed {
		return outcomeSendError
	}
	if resp.Timeout || resp.Data == nil {
		return outcomeNegative
	}
	var rHdr ipv4.Header
	payload, err := ipv4.ParseHeader(&rHdr, resp.Data)
	if err != nil || rHdr.Protocol != ipv4.ProtoICMP {
		return outcomeNegative
	}
	if rHdr.Dst != p.cfg.SrcIP {
		return outcomeNegative
	}
	switch icmp.TypeOf(payload) {
	case icmp.TypeDestUnreachable:
		var un icmp.Unreachable
		if err := icmp.ParseUnreachableInto(&un, payload); err != nil {
			return outcomeNegative
		}
		// The quoted original must be our probe. Gateways may quote the
		// full IPv4 datagram or just its ICMP payload; accept both.
		inner := un.Original
		var innerHdr ipv4.Header
		if innerPayload, perr := ipv4.ParseHeader(&innerHdr, inner); perr == nil {
			inner = innerPayload
		}
		var orig icmp.Echo
		if err := icmp.ParseEchoInto(&orig, inner); err != nil ||
			orig.Reply || orig.ID != p.cfg.ProbeID || orig.Seq != seq {
			return outcomeNegative
		}
		if un.Code == icmp.CodeAdminProhibited {
			return outcomeRateLimited
		}
		return outcomeUnreachable
	case icmp.TypeEchoReply:
		if rHdr.Src != target {
			return outcomeNegative
		}
		var reply icmp.Echo
		if err := icmp.ParseEchoInto(&reply, payload); err != nil ||
			!reply.Matches(p.cfg.ProbeID, seq) {
			return outcomeNegative
		}
		return outcomePositive
	}
	return outcomeNegative
}

// updateBelief applies one Bayesian update to the belief that the block is
// up, given a positive or negative probe and the current availability
// estimate a = P(reply | block up, random ever-active target).
func updateBelief(b float64, positive bool, a, posWhenDown float64) float64 {
	if positive {
		return applyLikelihoods(b, a, posWhenDown)
	}
	return applyLikelihoods(b, 1-a, 1-posWhenDown)
}

// applyLikelihoods folds P(obs|up) and P(obs|down) into the belief.
func applyLikelihoods(b, lUp, lDown float64) float64 {
	num := lUp * b
	den := num + lDown*(1-b)
	if den == 0 {
		return b
	}
	return num / den
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BlockState is the serializable per-block prober memory, used by the
// campaign supervisor's checkpoint files. The pseudorandom walk itself is
// not stored: it is a pure function of (seed, ever-active set) and is
// rebuilt by AddBlock; only the cursor position travels.
type BlockState struct {
	ID         netsim.BlockID
	Belief     float64
	Up         bool
	Round      int
	Pos        int
	Seq        uint16
	DownStreak int
}

// State is the full serializable prober state.
type State struct {
	Epoch  time.Time
	Blocks []BlockState
}

// ExportState snapshots the prober's memory. It must not be called while
// rounds are in flight. Blocks are sorted by id so the snapshot is
// deterministic.
func (p *Prober) ExportState() State {
	s := State{Epoch: p.epoch, Blocks: make([]BlockState, 0, len(p.states))}
	for id, st := range p.states {
		s.Blocks = append(s.Blocks, BlockState{
			ID:         id,
			Belief:     st.belief,
			Up:         st.up,
			Round:      st.round,
			Pos:        st.pos,
			Seq:        st.seq,
			DownStreak: st.downStreak,
		})
	}
	sort.Slice(s.Blocks, func(i, j int) bool { return s.Blocks[i].ID < s.Blocks[j].ID })
	return s
}

// BlockStateOf snapshots one block's serializable prober memory — the
// allocation-free per-block form of ExportState, used by the monitor's WAL
// to log exactly the blocks a shard round touched.
func (p *Prober) BlockStateOf(id netsim.BlockID) (BlockState, bool) {
	st, ok := p.states[id]
	if !ok {
		return BlockState{}, false
	}
	return BlockState{
		ID:         id,
		Belief:     st.belief,
		Up:         st.up,
		Round:      st.round,
		Pos:        st.pos,
		Seq:        st.seq,
		DownStreak: st.downStreak,
	}, true
}

// RestoreState loads a snapshot taken by ExportState. Every snapshotted
// block must already have been re-registered with AddBlock (which rebuilds
// its walk deterministically).
func (p *Prober) RestoreState(s State) error {
	for _, bs := range s.Blocks {
		st, ok := p.states[bs.ID]
		if !ok {
			return fmt.Errorf("trinocular: restore: block %s not tracked", bs.ID)
		}
		if bs.Pos < 0 || bs.Pos >= len(st.walk) {
			return fmt.Errorf("trinocular: restore: block %s walk position %d out of range", bs.ID, bs.Pos)
		}
		st.belief = bs.Belief
		st.up = bs.Up
		st.round = bs.Round
		st.pos = bs.Pos
		st.seq = bs.Seq
		st.downStreak = bs.DownStreak
	}
	if !s.Epoch.IsZero() {
		p.epochOnce.Do(func() { p.epoch = s.Epoch })
	}
	return nil
}

// Belief exposes the current belief for a block (tests and diagnostics).
func (p *Prober) Belief(id netsim.BlockID) (float64, bool) {
	st, ok := p.states[id]
	if !ok {
		return 0, false
	}
	return st.belief, true
}

// Up reports the prober's current up/down state for the block.
func (p *Prober) Up(id netsim.BlockID) (bool, bool) {
	st, ok := p.states[id]
	if !ok {
		return false, false
	}
	return st.up, true
}
