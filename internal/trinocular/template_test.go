package trinocular

import (
	"bytes"
	"fmt"
	"testing"

	"sleepnet/internal/icmp"
	"sleepnet/internal/ipv4"
	"sleepnet/internal/netsim"
)

// TestProbeTemplateMatchesMarshal pins the probe-template fast path to the
// generic marshal chain: for every combination of probe ID, sequence, host
// octet, source address, and block prefix — including the checksum-fold
// edge cases at 0 and 0xffff — appendProbe must produce exactly the bytes
// icmp.Echo.MarshalAppend wrapped in ipv4.Header.MarshalAppend produces.
// This is what lets the hot paths patch a prefab packet instead of
// re-marshalling 28 bytes and walking them twice for checksums.
func TestProbeTemplateMatchesMarshal(t *testing.T) {
	probeIDs := []uint16{0, 1, 0x1234, 0xfffe, 0xffff}
	seqs := []uint16{0, 1, 0x00ff, 0x7fff, 0xfffe, 0xffff}
	hosts := []byte{0, 1, 127, 254, 255}
	srcs := []ipv4.Addr{{}, {192, 0, 2, 1}, {255, 255, 255, 255}}
	blocks := []netsim.BlockID{
		netsim.MakeBlockID(10, 3, 1),
		netsim.MakeBlockID(0, 0, 0),
		netsim.MakeBlockID(255, 255, 255),
	}

	for _, pid := range probeIDs {
		for _, src := range srcs {
			for _, id := range blocks {
				st := &blockState{id: id}
				st.initTemplate(pid, src)
				for _, seq := range seqs {
					for _, host := range hosts {
						st.seq = seq
						got := st.appendProbe(nil, host)

						echo := icmp.Echo{ID: pid, Seq: seq}
						echoPkt, err := echo.MarshalAppend(nil)
						if err != nil {
							t.Fatal(err)
						}
						hdr := ipv4.Header{
							ID:       seq,
							TTL:      ipv4.DefaultTTL,
							Protocol: ipv4.ProtoICMP,
							Src:      src,
							Dst:      ipv4.Addr(id.Addr(host).IP()),
						}
						want, err := hdr.MarshalAppend(nil, echoPkt)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(got, want) {
							t.Fatalf("template diverged for id=%#x src=%v block=%s seq=%#x host=%d:\n got %x\nwant %x",
								pid, src, id, seq, host, got, want)
						}
					}
				}
			}
		}
	}
}

// TestAppendProbeParsesBack sanity-checks that the network side accepts a
// templated probe: the header parses with a valid checksum and the echo
// parses back to the identity the template patched in.
func TestAppendProbeParsesBack(t *testing.T) {
	st := &blockState{id: netsim.MakeBlockID(10, 3, 9)}
	st.initTemplate(0xbeef, ipv4.Addr{198, 51, 100, 7})
	st.seq = 4242
	pkt := st.appendProbe(nil, 77)

	var hdr ipv4.Header
	payload, err := ipv4.ParseHeader(&hdr, pkt)
	if err != nil {
		t.Fatalf("templated packet failed header parse: %v", err)
	}
	if hdr.Dst != (ipv4.Addr{10, 3, 9, 77}) || hdr.ID != 4242 {
		t.Fatalf("unexpected header: %+v", hdr)
	}
	var echo icmp.Echo
	if err := icmp.ParseEchoInto(&echo, payload); err != nil {
		t.Fatalf("templated packet failed echo parse: %v", err)
	}
	if echo.Reply || echo.ID != 0xbeef || echo.Seq != 4242 {
		t.Fatalf("unexpected echo: %+v", echo)
	}
	if s := fmt.Sprintf("%d", len(pkt)); s != "28" {
		t.Fatalf("probe packet is %s bytes, want 28", s)
	}
}
