package trinocular

// Batched probing: ProbeRoundsBatch runs one round for many blocks as a
// wavefront — probe k of every still-active round is marshalled into one
// packet batch and crosses the netsim boundary in a single DeliverBatch
// call, amortizing the per-packet boundary cost the scalar path pays.
//
// The wavefront reproduces the scalar schedule exactly. Every probe's
// inputs — target host, sequence number, issue timestamp — are fixed by
// prepareProbe before any outcome of the round is known, and all probes of
// a round are issued at the round's virtual now until a retry shifts the
// clock (backoffUsed). A retry only ever follows a vantage-local send
// failure, and the first send failure in a round necessarily happens with
// zero backoff used — exactly where the scalar schedule stands — so a lane
// that sees one simply leaves the wavefront and finishes its round through
// the scalar path, probe for probe identical. Blocks never share netsim or
// fault-injector state across lanes (rate-limit windows, reply budgets,
// and tap counters are all per block; global counters are order-free
// sums), so interleaving lanes is unobservable. The round logic itself is
// the roundState machine shared with ProbeRoundWith — there is no second
// belief/stop/debounce implementation to drift.

import (
	"fmt"
	"time"

	"sleepnet/internal/ipv4"
	"sleepnet/internal/netsim"
)

// ProbeNetworkBatched is the optional vectorized fast path: networks that
// can deliver a whole batch of packets in one boundary crossing.
// *netsim.Network implements it. New detects it once; ProbeRoundsBatch
// uses it when present and degrades to scalar rounds when not.
type ProbeNetworkBatched interface {
	ProbeNetworkBuffered
	// DeliverBatch delivers pkts in order at virtual time now, returning
	// one Response per packet, equivalent to sequential DeliverIPInto calls.
	//
	//lint:aliases return: every Response.Data (and the slice itself) is a view into buf's reply arena, valid only until the next DeliverBatch on the same buffer
	DeliverBatch(buf *netsim.BatchBuffer, pkts [][]byte, now time.Time) []netsim.Response
}

// pktSpan locates one marshalled probe inside the batch packet arena.
type pktSpan struct {
	start, end int32
}

// lane is one (prober, block) round riding the wavefront: its roundState
// plus the per-phase probe bookkeeping (target, packet index) needed to
// match the batch response back to the round. Lanes of one wavefront may
// belong to different probers (the pipeline runs one prober per block) as
// long as all of them sit on the same batched network.
type lane struct {
	p      *Prober
	rs     roundState
	out    int32 // index into the caller's ids/out slices
	host   byte
	target ipv4.Addr
	pkt    int32 // index into the phase's packet list; -1 when marshal failed
}

// BatchContext is the reusable state one probing worker threads through
// ProbeRoundsBatch: the lanes, the packet arena one wavefront phase
// marshals into, and the netsim-side batch buffer. The zero value is ready
// to use; everything grows to the largest batch seen and is reused. Like a
// ProbeContext, a BatchContext belongs to one worker at a time.
type BatchContext struct {
	// scalar is the fallback wire scratch: lanes that hit a vantage-local
	// send failure finish their round through the scalar path, and probers
	// over non-batched networks run whole rounds through it. Its echo
	// buffer doubles as the wavefront's per-probe ICMP marshal scratch.
	scalar ProbeContext
	// net is the netsim-side batch state (route cache, reply arena).
	net netsim.BatchBuffer

	pktArena []byte
	spans    []pktSpan
	pkts     [][]byte
	lanes    []lane
	active   []int32

	// stCache memoizes the i-th lane's (prober, id) → *blockState
	// resolution across rounds: callers pass the same id list every round,
	// and state pointers are stable for a prober's lifetime (AddBlock never
	// replaces an entry), so after the first round every lookup is a hit.
	stCache []stCacheEntry
}

// stCacheEntry is one memoized block-state resolution.
type stCacheEntry struct {
	p  *Prober
	id netsim.BlockID
	st *blockState
}

// stateFor resolves the i-th lane's block state through the memo.
func (bc *BatchContext) stateFor(i int, p *Prober, id netsim.BlockID) (*blockState, bool) {
	for len(bc.stCache) <= i {
		bc.stCache = append(bc.stCache, stCacheEntry{})
	}
	if e := &bc.stCache[i]; e.p == p && e.id == id {
		return e.st, true
	}
	st, ok := p.states[id]
	if ok {
		bc.stCache[i] = stCacheEntry{p: p, id: id, st: st}
	}
	return st, ok
}

// NewBatchContext returns an empty context; buffers grow on first use and
// are reused afterwards.
func NewBatchContext() *BatchContext { return &BatchContext{} }

// RetainedBytes reports the heap bytes the context retains across calls —
// the per-worker steady-state cost of batched probing, pinned by the
// monitor's memory-bound test alongside ProbeContext.RetainedBytes.
func (bc *BatchContext) RetainedBytes() int {
	if bc == nil {
		return 0
	}
	n := bc.scalar.RetainedBytes() + bc.net.RetainedBytes()
	n += cap(bc.pktArena)
	n += cap(bc.spans) * 8
	n += cap(bc.pkts) * 24
	n += cap(bc.lanes) * 160 // lane: roundState (~128) + prober/target/host/indexes
	n += cap(bc.active) * 4
	n += cap(bc.stCache) * 24
	return n
}

// ProbeRoundsBatch probes one round for every block in ids at virtual time
// now, writing the i-th block's observation to out[i]. aOps[i] is the
// caller's operational availability estimate for ids[i], clamped exactly
// as ProbeRound clamps it. The observations, every block's prober memory,
// the network's counters, and any fault injector's state end up
// byte-identical to calling ProbeRoundWith(ids[0]), ProbeRoundWith(ids[1]),
// ... in order at the same now (see the package comment for the argument);
// only the boundary-crossing cost changes.
//
//lint:hotpath: batched warm-round probing path, 0 allocs/op pinned by TestProbeRoundsBatchAllocFree
func (p *Prober) ProbeRoundsBatch(bc *BatchContext, ids []netsim.BlockID, aOps []float64, now time.Time, out []RoundObs) error {
	if len(aOps) != len(ids) || len(out) < len(ids) {
		return fmt.Errorf("trinocular: batch shape mismatch: %d ids, %d aOps, %d out", len(ids), len(aOps), len(out))
	}
	if p.batchNet == nil {
		for i, id := range ids {
			obs, err := p.ProbeRoundWith(&bc.scalar, id, now, aOps[i])
			if err != nil {
				return err
			}
			out[i] = obs
		}
		return nil
	}
	//lint:allow hotalloc: once-guarded epoch capture; the closure is live only on the prober's very first round
	p.epochOnce.Do(func() { p.epoch = now })

	bc.growLanes(len(ids))
	for i, id := range ids {
		st, ok := bc.stateFor(i, p, id)
		if !ok {
			return fmt.Errorf("trinocular: block %s not tracked", id)
		}
		ln := &bc.lanes[i]
		ln.p = p
		ln.out = int32(i)
		p.beginRound(&ln.rs, st, now, aOps[i])
		bc.active = append(bc.active, int32(i))
	}
	runWavefront(bc, p.batchNet, now, out)
	return nil
}

// ProbeRoundsBatchGroup is ProbeRoundsBatch for lanes owned by different
// probers: it probes one round for each (probers[i], ids[i]) pair at virtual
// time now, writing the i-th observation to out[i]. The measurement pipeline
// uses it — there every block has its own prober (its own walk seed), yet a
// group of blocks should still cross the netsim boundary as one wavefront.
// Every prober must sit on the same network; when any of them lacks the
// batched fast path the whole group degrades to scalar rounds. The
// per-lane equivalence contract is ProbeRoundsBatch's: prober and network
// state end up byte-identical to sequential ProbeRound calls in slice order
// (probers own disjoint block state, so the package-comment argument
// applies lane by lane).
//
//lint:hotpath: batched warm-round probing path, 0 allocs/op pinned by TestProbeRoundsBatchGroupAllocFree
func ProbeRoundsBatchGroup(bc *BatchContext, probers []*Prober, ids []netsim.BlockID, aOps []float64, now time.Time, out []RoundObs) error {
	if len(probers) != len(ids) || len(aOps) != len(ids) || len(out) < len(ids) {
		return fmt.Errorf("trinocular: batch group shape mismatch: %d probers, %d ids, %d aOps, %d out",
			len(probers), len(ids), len(aOps), len(out))
	}
	if len(ids) == 0 {
		return nil
	}
	bn := probers[0].batchNet
	for _, p := range probers {
		if p.batchNet == nil || p.batchNet != bn {
			bn = nil
			break
		}
	}
	if bn == nil {
		for i, p := range probers {
			obs, err := p.ProbeRoundWith(&bc.scalar, ids[i], now, aOps[i])
			if err != nil {
				return err
			}
			out[i] = obs
		}
		return nil
	}
	bc.growLanes(len(ids))
	for i, id := range ids {
		p := probers[i]
		st, ok := bc.stateFor(i, p, id)
		if !ok {
			return fmt.Errorf("trinocular: block %s not tracked", id)
		}
		//lint:allow hotalloc: once-guarded epoch capture; the closure is live only on each prober's very first round
		p.epochOnce.Do(func() { p.epoch = now })
		ln := &bc.lanes[i]
		ln.p = p
		ln.out = int32(i)
		p.beginRound(&ln.rs, st, now, aOps[i])
		bc.active = append(bc.active, int32(i))
	}
	runWavefront(bc, bn, now, out)
	return nil
}

// growLanes resizes the lane slice to n and resets the active set. Lane
// fields are not cleared: beginRound rewrites rs in full, p/out are
// assigned by the caller, and host/target/pkt are set every wavefront
// phase before they are read, so stale values are never observed. Indexed
// initialization (instead of appending a lane literal per block) avoids a
// ~176-byte struct copy per lane per round.
func (bc *BatchContext) growLanes(n int) {
	for cap(bc.lanes) < n {
		bc.lanes = append(bc.lanes[:cap(bc.lanes)], lane{})
	}
	bc.lanes = bc.lanes[:n]
	bc.active = bc.active[:0]
}

// runWavefront drives the prepared lanes in bc to completion: each
// iteration marshals the next probe of every active lane into one packet
// batch, crosses the boundary once, and folds the responses back into the
// lanes' round machines.
func runWavefront(bc *BatchContext, bn ProbeNetworkBatched, now time.Time, out []RoundObs) {
	for len(bc.active) > 0 {
		// Marshal the next probe of every active lane into one packet batch.
		bc.pktArena = bc.pktArena[:0]
		bc.spans = bc.spans[:0]
		for _, li := range bc.active {
			ln := &bc.lanes[li]
			ln.host = ln.rs.prepareProbe()
			st := ln.rs.st
			ln.target = ipv4.Addr(st.id.Addr(ln.host).IP())
			start := int32(len(bc.pktArena))
			// The block's prefab template plus checksum folding — the same
			// bytes the scalar path's sendProbe puts on the wire.
			bc.pktArena = st.appendProbe(bc.pktArena, ln.host)
			ln.pkt = int32(len(bc.spans))
			bc.spans = append(bc.spans, pktSpan{start, int32(len(bc.pktArena))})
			ln.rs.sent++
		}
		// Packet views are built only after the arena stops growing.
		bc.pkts = bc.pkts[:0]
		for _, sp := range bc.spans {
			bc.pkts = append(bc.pkts, bc.pktArena[sp.start:sp.end])
		}
		var resps []netsim.Response
		if len(bc.pkts) > 0 {
			// resps and every Response.Data are views into bc.net's reply
			// arena, valid until the next DeliverBatch — i.e. through this
			// phase's classification below, never beyond it.
			resps = bn.DeliverBatch(&bc.net, bc.pkts, now)
		}

		keep := bc.active[:0]
		for _, li := range bc.active {
			ln := &bc.lanes[li]
			outcome := outcomeNegative
			if ln.pkt >= 0 {
				outcome = ln.p.classifyResponse(resps[ln.pkt], ln.target, ln.rs.st.seq)
			}
			if outcome == outcomeSendError {
				// A vantage-local failure shifts the lane's remaining probes
				// to backoff-adjusted times, so it leaves the wavefront and
				// finishes through the scalar path. Equivalent by
				// construction: the round's first send error always happens
				// with zero backoff used, exactly where the scalar schedule
				// stands.
				outcome = ln.p.retrySendErrors(&ln.rs, &bc.scalar, ln.host, now)
				ln.p.applyOutcome(&ln.rs, outcome)
				if !ln.rs.done {
					ln.p.scalarRound(&ln.rs, &bc.scalar, now)
				}
			} else {
				ln.p.applyOutcome(&ln.rs, outcome)
			}
			if ln.rs.done {
				ln.p.finishRound(&ln.rs)
				out[ln.out] = ln.rs.obs
			} else {
				keep = append(keep, li)
			}
		}
		bc.active = keep
	}
}
