// Package icmp implements the ICMPv4 echo request/reply wire format used by
// the prober: RFC 792 message layout with the RFC 1071 internet checksum.
// Probes in this reproduction are marshalled to real packet bytes, carried
// over the simulated network, and parsed back, so the measurement pipeline
// exercises the same encode/validate/decode path a live prober would.
package icmp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Message types used by the prober (RFC 792).
const (
	TypeEchoReply       = 0
	TypeDestUnreachable = 3
	TypeEchoRequest     = 8
	TypeTimeExceeded    = 11
	codeNetUnreachable  = 0
	codeHostUnreachable = 1
	CodeNetUnreachable  = codeNetUnreachable
	CodeHostUnreachable = codeHostUnreachable
	CodeAdminProhibited = 13
	headerLen           = 8
	// EchoHeaderLen is the fixed echo message header size: the payload of a
	// parsed echo starts at this offset. Exported for batch delivery paths
	// that record parse results as offsets instead of retaining aliased
	// views.
	EchoHeaderLen = headerLen
	// MaxPayload bounds echo payloads; probes here are small, and the bound
	// protects the simulator from absurd allocations on malformed input.
	MaxPayload = 1472
)

// Common parse errors.
var (
	ErrTruncated   = errors.New("icmp: message truncated")
	ErrChecksum    = errors.New("icmp: bad checksum")
	ErrPayloadSize = errors.New("icmp: payload too large")
)

// Echo is an ICMP echo request or reply.
type Echo struct {
	Reply   bool   // false = echo request (type 8), true = echo reply (type 0)
	ID      uint16 // identifier, used to demultiplex probers
	Seq     uint16 // sequence number, used to match replies to probes
	Payload []byte
}

// Marshal encodes the echo message with a correct checksum.
func (e *Echo) Marshal() ([]byte, error) {
	b, err := e.MarshalAppend(make([]byte, 0, headerLen+len(e.Payload)))
	if err != nil {
		return nil, err
	}
	return b, nil
}

// MarshalAppend appends the encoded echo message (with a correct checksum)
// to dst and returns the extended slice. Passing a scratch slice with
// spare capacity makes encoding allocation-free; MarshalAppend(nil) is
// equivalent to Marshal.
//
//lint:hotpath: per-probe encode path, 0 allocs/op budget pinned by BenchmarkMarshalAppend
func (e *Echo) MarshalAppend(dst []byte) ([]byte, error) {
	if len(e.Payload) > MaxPayload {
		return dst, fmt.Errorf("%w: %d bytes", ErrPayloadSize, len(e.Payload))
	}
	off := len(dst)
	var hdr [headerLen]byte
	dst = append(dst, hdr[:]...)
	dst = append(dst, e.Payload...)
	b := dst[off:]
	if e.Reply {
		b[0] = TypeEchoReply
	} else {
		b[0] = TypeEchoRequest
	}
	// b[1] code = 0, b[2:4] checksum = 0 for computation.
	binary.BigEndian.PutUint16(b[4:6], e.ID)
	binary.BigEndian.PutUint16(b[6:8], e.Seq)
	if len(e.Payload) == 0 {
		// Payload-less echoes (every probe request and its reply) checksum
		// over exactly the four header words, so the sum folds in closed
		// form — identical to Checksum(b) without walking the buffer.
		sum := uint32(b[0])<<8 + uint32(e.ID) + uint32(e.Seq)
		for sum > 0xffff {
			sum = (sum >> 16) + (sum & 0xffff)
		}
		binary.BigEndian.PutUint16(b[2:4], ^uint16(sum))
		return dst, nil
	}
	binary.BigEndian.PutUint16(b[2:4], Checksum(b))
	return dst, nil
}

// ParseEcho decodes and validates an echo request or reply. The returned
// payload is a copy, safe to retain after the input buffer is reused.
func ParseEcho(b []byte) (*Echo, error) {
	e := new(Echo)
	if err := ParseEchoInto(e, b); err != nil {
		return nil, err
	}
	if len(e.Payload) > 0 {
		e.Payload = append([]byte(nil), e.Payload...)
	}
	return e, nil
}

// ParseEchoInto decodes and validates an echo request or reply into e
// without allocating: e.Payload aliases b, so it is only valid while the
// caller's buffer is. Callers that retain the payload must copy it.
//
//lint:hotpath: per-reply decode path, 0 allocs/op budget pinned by BenchmarkParseEchoInto
//lint:aliases e, b: e.Payload aliases b after the call; neither outlives the caller's read buffer
func ParseEchoInto(e *Echo, b []byte) error {
	if len(b) < headerLen {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if len(b)-headerLen > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrPayloadSize, len(b)-headerLen)
	}
	typ := b[0]
	if typ != TypeEchoRequest && typ != TypeEchoReply {
		return fmt.Errorf("icmp: unexpected type %d for echo", typ)
	}
	if b[1] != 0 {
		return fmt.Errorf("icmp: echo with non-zero code %d", b[1])
	}
	if Checksum(b) != 0 {
		// A valid packet checksums to zero when the stored checksum is
		// included in the computation.
		return ErrChecksum
	}
	e.Reply = typ == TypeEchoReply
	e.ID = binary.BigEndian.Uint16(b[4:6])
	e.Seq = binary.BigEndian.Uint16(b[6:8])
	e.Payload = nil
	if len(b) > headerLen {
		e.Payload = b[headerLen:]
	}
	return nil
}

// ReplyTo constructs the echo reply for a request, echoing ID, Seq, and
// payload as RFC 792 requires.
func ReplyTo(req *Echo) *Echo {
	return &Echo{
		Reply:   true,
		ID:      req.ID,
		Seq:     req.Seq,
		Payload: append([]byte(nil), req.Payload...),
	}
}

// Matches reports whether reply answers the probe identified by id and seq.
func (e *Echo) Matches(id, seq uint16) bool {
	return e.Reply && e.ID == id && e.Seq == seq
}

// Unreachable is an ICMP destination-unreachable message, generated by the
// simulated network when a block is down and its gateway answers on its
// behalf (the paper's probers distinguish "no answer" from "negative
// answer").
type Unreachable struct {
	Code byte
	// Original holds the leading bytes of the offending datagram (the
	// original ICMP echo in this simulator).
	Original []byte
}

// Marshal encodes the unreachable message.
func (u *Unreachable) Marshal() ([]byte, error) {
	b, err := u.MarshalAppend(make([]byte, 0, headerLen+len(u.Original)))
	if err != nil {
		return nil, err
	}
	return b, nil
}

// MarshalAppend appends the encoded unreachable message to dst and returns
// the extended slice; see Echo.MarshalAppend for the scratch-reuse contract.
//
//lint:hotpath: gateway negative-answer encode path shares the probe alloc budget
func (u *Unreachable) MarshalAppend(dst []byte) ([]byte, error) {
	if len(u.Original) > MaxPayload {
		return dst, fmt.Errorf("%w: %d bytes", ErrPayloadSize, len(u.Original))
	}
	off := len(dst)
	var hdr [headerLen]byte
	dst = append(dst, hdr[:]...)
	dst = append(dst, u.Original...)
	b := dst[off:]
	b[0] = TypeDestUnreachable
	b[1] = u.Code
	binary.BigEndian.PutUint16(b[2:4], Checksum(b))
	return dst, nil
}

// ParseUnreachable decodes and validates a destination-unreachable message.
// The returned quoted original is a copy, safe to retain.
func ParseUnreachable(b []byte) (*Unreachable, error) {
	u := new(Unreachable)
	if err := ParseUnreachableInto(u, b); err != nil {
		return nil, err
	}
	if len(u.Original) > 0 {
		u.Original = append([]byte(nil), u.Original...)
	}
	return u, nil
}

// ParseUnreachableInto decodes and validates a destination-unreachable
// message into u without allocating: u.Original aliases b and is only
// valid while the caller's buffer is.
//
//lint:hotpath: per-reply decode path shares ParseEchoInto's 0 allocs/op budget
//lint:aliases u, b: u.Original aliases b after the call; neither outlives the caller's read buffer
func ParseUnreachableInto(u *Unreachable, b []byte) error {
	if len(b) < headerLen {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if b[0] != TypeDestUnreachable {
		return fmt.Errorf("icmp: unexpected type %d for unreachable", b[0])
	}
	if Checksum(b) != 0 {
		return ErrChecksum
	}
	// RFC 792 defines bytes 4-7 as unused and zero; Marshal always emits
	// zeros there, so accepting nonzero bytes would break the re-marshal
	// round-trip (they would be silently dropped).
	if b[4] != 0 || b[5] != 0 || b[6] != 0 || b[7] != 0 {
		return fmt.Errorf("icmp: unreachable with nonzero unused field %x", b[4:8])
	}
	u.Code = b[1]
	u.Original = nil
	if len(b) > headerLen {
		u.Original = b[headerLen:]
	}
	return nil
}

// TypeOf returns the ICMP type byte of a raw message, or -1 if truncated.
// It lets receivers demultiplex without a full parse.
func TypeOf(b []byte) int {
	if len(b) < 1 {
		return -1
	}
	return int(b[0])
}

// Checksum computes the RFC 1071 internet checksum over b: the one's
// complement of the one's-complement sum of 16-bit words, padding an odd
// trailing byte with zero. A message containing a correct checksum field
// sums to zero.
//
//lint:hotpath: runs on every marshal and parse; pure arithmetic over the input
func Checksum(b []byte) uint16 {
	// The ones-complement sum is commutative and associative, so the words
	// can be accumulated eight bytes at a time in a wide register and folded
	// once at the end — bit-identical to the two-bytes-at-a-time loop, at a
	// quarter of the iterations. A packet is at most 64KiB, so the uint64
	// accumulator is nowhere near overflow.
	var sum uint64
	for len(b) >= 8 {
		sum += uint64(binary.BigEndian.Uint32(b)) + uint64(binary.BigEndian.Uint32(b[4:8]))
		b = b[8:]
	}
	if len(b) >= 4 {
		sum += uint64(binary.BigEndian.Uint32(b))
		b = b[4:]
	}
	if len(b) >= 2 {
		sum += uint64(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint64(b[0]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}
