package icmp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEchoRoundTrip(t *testing.T) {
	e := &Echo{ID: 0x1234, Seq: 42, Payload: []byte("trinocular-probe")}
	b, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseEcho(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reply != false || got.ID != 0x1234 || got.Seq != 42 || !bytes.Equal(got.Payload, e.Payload) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestEchoReplyRoundTrip(t *testing.T) {
	req := &Echo{ID: 7, Seq: 9, Payload: []byte{1, 2, 3}}
	rep := ReplyTo(req)
	if !rep.Reply || rep.ID != 7 || rep.Seq != 9 || !bytes.Equal(rep.Payload, req.Payload) {
		t.Fatalf("ReplyTo = %+v", rep)
	}
	b, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if TypeOf(b) != TypeEchoReply {
		t.Fatalf("TypeOf = %d", TypeOf(b))
	}
	got, err := ParseEcho(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Matches(7, 9) {
		t.Fatal("reply should match its probe")
	}
	if got.Matches(7, 10) || got.Matches(8, 9) {
		t.Fatal("reply should not match other probes")
	}
	if req2 := (&Echo{ID: 7, Seq: 9}); req2.Matches(7, 9) {
		t.Fatal("requests never match (not a reply)")
	}
}

func TestReplyToCopiesPayload(t *testing.T) {
	req := &Echo{Payload: []byte{1, 2, 3}}
	rep := ReplyTo(req)
	req.Payload[0] = 99
	if rep.Payload[0] == 99 {
		t.Fatal("ReplyTo must copy the payload")
	}
}

func TestParseEchoErrors(t *testing.T) {
	if _, err := ParseEcho([]byte{8, 0, 0}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
	e := &Echo{ID: 1, Seq: 2}
	b, _ := e.Marshal()
	b[4] ^= 0xff // corrupt ID
	if _, err := ParseEcho(b); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted: %v", err)
	}
	// Wrong type.
	u := &Unreachable{Code: CodeHostUnreachable}
	ub, _ := u.Marshal()
	if _, err := ParseEcho(ub); err == nil {
		t.Fatal("unreachable parsed as echo")
	}
	// Non-zero code.
	b2, _ := (&Echo{}).Marshal()
	b2[1] = 5
	// Recompute checksum so only the code is wrong.
	b2[2], b2[3] = 0, 0
	ck := Checksum(b2)
	b2[2], b2[3] = byte(ck>>8), byte(ck)
	if _, err := ParseEcho(b2); err == nil {
		t.Fatal("non-zero code should fail")
	}
}

func TestPayloadTooLarge(t *testing.T) {
	e := &Echo{Payload: make([]byte, MaxPayload+1)}
	if _, err := e.Marshal(); !errors.Is(err, ErrPayloadSize) {
		t.Fatalf("oversize marshal: %v", err)
	}
	huge := make([]byte, 8+MaxPayload+1)
	huge[0] = TypeEchoRequest
	if _, err := ParseEcho(huge); !errors.Is(err, ErrPayloadSize) {
		t.Fatalf("oversize parse: %v", err)
	}
}

func TestUnreachableRoundTrip(t *testing.T) {
	orig, _ := (&Echo{ID: 3, Seq: 4}).Marshal()
	u := &Unreachable{Code: CodeNetUnreachable, Original: orig}
	b, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseUnreachable(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != CodeNetUnreachable || !bytes.Equal(got.Original, orig) {
		t.Fatalf("unreachable round trip = %+v", got)
	}
	// The quoted original should parse back as the probe.
	inner, err := ParseEcho(got.Original)
	if err != nil {
		t.Fatal(err)
	}
	if inner.ID != 3 || inner.Seq != 4 {
		t.Fatalf("inner = %+v", inner)
	}
}

func TestParseUnreachableErrors(t *testing.T) {
	if _, err := ParseUnreachable([]byte{3}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
	b, _ := (&Unreachable{Code: 1}).Marshal()
	b[1] ^= 0xff
	if _, err := ParseUnreachable(b); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt: %v", err)
	}
	eb, _ := (&Echo{}).Marshal()
	if _, err := ParseUnreachable(eb); err == nil {
		t.Fatal("echo parsed as unreachable")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data: checksum of {0x00,0x01,0xf2,0x03,0xf4,0xf5,0xf6,0xf7}
	// one's complement sum is 0xddf2, checksum is ^0xddf2 = 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
	// Odd-length input pads with zero.
	if got := Checksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Fatalf("odd checksum = %#04x", got)
	}
}

func TestChecksumSelfVerifyingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := &Echo{
			Reply:   r.Intn(2) == 0,
			ID:      uint16(r.Uint32()),
			Seq:     uint16(r.Uint32()),
			Payload: make([]byte, r.Intn(64)),
		}
		r.Read(e.Payload)
		b, err := e.Marshal()
		if err != nil {
			return false
		}
		// A packet with an embedded valid checksum sums to zero.
		if Checksum(b) != 0 {
			return false
		}
		got, err := ParseEcho(b)
		if err != nil {
			return false
		}
		return got.ID == e.ID && got.Seq == e.Seq && got.Reply == e.Reply && bytes.Equal(got.Payload, e.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitFlipDetectedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := &Echo{ID: uint16(r.Uint32()), Seq: uint16(r.Uint32()), Payload: make([]byte, 1+r.Intn(32))}
		r.Read(e.Payload)
		b, err := e.Marshal()
		if err != nil {
			return false
		}
		// Flip one random bit anywhere except the type byte (type changes
		// are rejected for a different reason).
		pos := 1 + r.Intn(len(b)-1)
		bit := byte(1) << uint(r.Intn(8))
		b[pos] ^= bit
		_, err = ParseEcho(b)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeOf(t *testing.T) {
	if TypeOf(nil) != -1 {
		t.Fatal("TypeOf(nil)")
	}
	if TypeOf([]byte{11}) != TypeTimeExceeded {
		t.Fatal("TypeOf time-exceeded")
	}
}

func BenchmarkEchoMarshal(b *testing.B) {
	e := &Echo{ID: 1, Seq: 2, Payload: []byte("trinocular-probe")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEchoParse(b *testing.B) {
	e := &Echo{ID: 1, Seq: 2, Payload: []byte("trinocular-probe")}
	buf, _ := e.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseEcho(buf); err != nil {
			b.Fatal(err)
		}
	}
}
