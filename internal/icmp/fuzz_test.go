package icmp

import (
	"bytes"
	"errors"
	"testing"
)

// TestParseMalformedTable drives both parsers through the malformed-input
// classes the fault injector produces: truncated headers, bad checksums,
// oversized payloads, and unknown types. Every case must be rejected with
// the right error class — never a panic, never a silently wrong message.
func TestParseMalformedTable(t *testing.T) {
	valid, err := (&Echo{ID: 0x1234, Seq: 7, Payload: []byte("probe")}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x01 // payload bit: header still sane, checksum wrong
	badType := append([]byte(nil), valid...)
	badType[0] = TypeTimeExceeded
	badCode := append([]byte(nil), valid...)
	badCode[1] = 5
	huge := make([]byte, headerLen+MaxPayload+1)

	cases := []struct {
		name    string
		in      []byte
		wantErr error // nil: any non-nil error accepted
	}{
		{"empty", nil, ErrTruncated},
		{"truncated header", valid[:headerLen-1], ErrTruncated},
		{"single byte", []byte{TypeEchoRequest}, ErrTruncated},
		{"bit flip", flipped, ErrChecksum},
		{"zeroed checksum", append(append([]byte(nil), valid[:2]...), append([]byte{0, 0}, valid[4:]...)...), ErrChecksum},
		{"oversized payload", huge, ErrPayloadSize},
		{"unknown type", badType, nil},
		{"nonzero code", badCode, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseEcho(tc.in)
			if err == nil {
				t.Fatalf("ParseEcho accepted %q input", tc.name)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("ParseEcho error = %v, want %v", err, tc.wantErr)
			}
		})
	}

	un, err := (&Unreachable{Code: CodeAdminProhibited, Original: valid}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	unFlipped := append([]byte(nil), un...)
	unFlipped[10] ^= 0x80
	unCases := []struct {
		name    string
		in      []byte
		wantErr error
	}{
		{"truncated", un[:5], ErrTruncated},
		{"bit flip", unFlipped, ErrChecksum},
		{"wrong type", valid, nil}, // an echo is not an unreachable
	}
	for _, tc := range unCases {
		t.Run("unreachable "+tc.name, func(t *testing.T) {
			_, err := ParseUnreachable(tc.in)
			if err == nil {
				t.Fatalf("ParseUnreachable accepted %q input", tc.name)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("ParseUnreachable error = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// FuzzParse throws arbitrary bytes at both parsers and checks the parser
// invariants: no panics, accepted messages always checksum to zero, and
// accepted messages re-marshal to the same wire bytes outside the checksum
// field. (The checksum field itself is excluded: RFC 1071 one's-complement
// arithmetic has two zero representations, so 0xffff in the input can
// validate yet re-marshal as 0x0000.) Run with
// `go test -fuzz=FuzzParse ./internal/icmp`.
func FuzzParse(f *testing.F) {
	seed, _ := (&Echo{ID: 1, Seq: 2, Payload: []byte("x")}).Marshal()
	f.Add(seed)
	reply, _ := (&Echo{Reply: true, ID: 0xffff, Seq: 0}).Marshal()
	f.Add(reply)
	un, _ := (&Unreachable{Code: CodeHostUnreachable, Original: seed}).Marshal()
	f.Add(un)
	f.Add([]byte{})
	f.Add([]byte{TypeEchoRequest, 0, 0, 0})
	f.Add(make([]byte, headerLen+MaxPayload+8))

	// sameOutsideChecksum compares wire bytes ignoring the checksum field.
	sameOutsideChecksum := func(a, b []byte) bool {
		return len(a) == len(b) &&
			bytes.Equal(a[:2], b[:2]) && bytes.Equal(a[4:], b[4:])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if e, err := ParseEcho(data); err == nil {
			if Checksum(data) != 0 {
				t.Fatalf("accepted echo with nonzero checksum: %x", data)
			}
			out, merr := e.Marshal()
			if merr != nil {
				t.Fatalf("parsed echo failed to re-marshal: %v", merr)
			}
			if !sameOutsideChecksum(out, data) {
				t.Fatalf("echo round-trip changed bytes: %x -> %x", data, out)
			}
			if _, rerr := ParseEcho(out); rerr != nil {
				t.Fatalf("re-marshalled echo rejected: %v", rerr)
			}
		}
		if u, err := ParseUnreachable(data); err == nil {
			if Checksum(data) != 0 {
				t.Fatalf("accepted unreachable with nonzero checksum: %x", data)
			}
			out, merr := u.Marshal()
			if merr != nil {
				t.Fatalf("parsed unreachable failed to re-marshal: %v", merr)
			}
			if !sameOutsideChecksum(out, data) {
				t.Fatalf("unreachable round-trip changed bytes: %x -> %x", data, out)
			}
			if _, rerr := ParseUnreachable(out); rerr != nil {
				t.Fatalf("re-marshalled unreachable rejected: %v", rerr)
			}
		}
		// TypeOf never panics and agrees with the first byte.
		if ty := TypeOf(data); len(data) > 0 && ty != int(data[0]) {
			t.Fatalf("TypeOf = %d, want %d", ty, data[0])
		}
	})
}
