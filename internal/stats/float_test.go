package stats

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		a, b float64
		want bool
	}{
		{"identical", 0.25, 0.25, true},
		{"rounding drift", 0.1 + 0.2, 0.3, true},
		{"accumulated sum", sumN(0.1, 10), 1.0, true},
		{"distinct", 0.25, 0.2500001, false},
		{"near zero", 1e-12, -1e-12, true},
		{"large relative", 1e15, 1e15 * (1 + 1e-12), true},
		{"large distinct", 1e15, 1.0000001e15, false},
		{"nan left", math.NaN(), 1, false},
		{"nan both", math.NaN(), math.NaN(), false},
		{"inf equal", inf, inf, true},
		{"inf opposite", inf, -inf, false},
		{"inf vs finite", inf, 1e300, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b); got != c.want {
			t.Errorf("%s: ApproxEqual(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestApproxEqualTol(t *testing.T) {
	if !ApproxEqualTol(1.0, 1.05, 0.1) {
		t.Error("tol 0.1 should accept 5% gap")
	}
	if ApproxEqualTol(1.0, 1.05, 0.01) {
		t.Error("tol 0.01 should reject 5% gap")
	}
	// Symmetry.
	if ApproxEqualTol(3, 4, 0.2) != ApproxEqualTol(4, 3, 0.2) {
		t.Error("ApproxEqualTol is not symmetric")
	}
}

// sumN adds v to itself n times, accumulating representable error.
func sumN(v float64, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += v
	}
	return s
}
