package stats

import "math"

// FDist is Fisher's F distribution with D1 numerator and D2 denominator
// degrees of freedom.
type FDist struct {
	D1, D2 float64
}

// CDF returns P(F <= x).
func (f FDist) CDF(x float64) float64 {
	if f.D1 <= 0 || f.D2 <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	// I_{d1 x / (d1 x + d2)}(d1/2, d2/2)
	z := f.D1 * x / (f.D1*x + f.D2)
	return RegIncBeta(f.D1/2, f.D2/2, z)
}

// SF returns the survival function P(F > x), the p-value of an observed F
// statistic. The complementary incomplete-beta form is used directly so the
// extreme tail does not lose precision to cancellation.
func (f FDist) SF(x float64) float64 {
	if f.D1 <= 0 || f.D2 <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 1
	}
	z := f.D2 / (f.D2 + f.D1*x)
	return RegIncBeta(f.D2/2, f.D1/2, z)
}

// TDist is Student's t distribution with Nu degrees of freedom.
type TDist struct {
	Nu float64
}

// CDF returns P(T <= x).
func (t TDist) CDF(x float64) float64 {
	if t.Nu <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0.5
	}
	z := t.Nu / (t.Nu + x*x)
	half := 0.5 * RegIncBeta(t.Nu/2, 0.5, z)
	if x > 0 {
		return 1 - half
	}
	return half
}

// SF2 returns the two-sided p-value P(|T| > |x|).
func (t TDist) SF2(x float64) float64 {
	if t.Nu <= 0 {
		return math.NaN()
	}
	z := t.Nu / (t.Nu + x*x)
	return RegIncBeta(t.Nu/2, 0.5, z)
}

// ChiSquared is the chi-squared distribution with K degrees of freedom.
type ChiSquared struct {
	K float64
}

// CDF returns P(X <= x).
func (c ChiSquared) CDF(x float64) float64 {
	if c.K <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	return RegIncGammaP(c.K/2, x/2)
}

// SF returns P(X > x).
func (c ChiSquared) SF(x float64) float64 {
	if c.K <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 1
	}
	return RegIncGammaQ(c.K/2, x/2)
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion (successes of n trials) at the given confidence
// level (e.g. 0.95). It behaves sensibly at the extremes (0 or n
// successes), unlike the normal approximation, which matters for Table 3's
// near-zero US diurnal fraction.
func WilsonInterval(successes, n int, confidence float64) (lo, hi float64) {
	if n <= 0 || successes < 0 || successes > n || confidence <= 0 || confidence >= 1 {
		return math.NaN(), math.NaN()
	}
	z := NormalQuantile(1 - (1-confidence)/2)
	p := float64(successes) / float64(n)
	fn := float64(n)
	denom := 1 + z*z/fn
	center := (p + z*z/(2*fn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/fn+z*z/(4*fn*fn))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
