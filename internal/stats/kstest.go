package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSResult is the outcome of a two-sample Kolmogorov-Smirnov test.
type KSResult struct {
	// D is the supremum distance between the two empirical CDFs.
	D float64
	// P is the asymptotic p-value of the null hypothesis that both samples
	// come from the same distribution.
	P float64
	// N1, N2 are the sample sizes.
	N1, N2 int
}

// KSTest performs the two-sample Kolmogorov-Smirnov test, used here to
// compare strongest-frequency distributions across vantage points (the
// distributional strengthening of Table 2's block-level agreement).
func KSTest(a, b []float64) (KSResult, error) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return KSResult{}, fmt.Errorf("stats: KSTest needs non-empty samples (%d, %d)", n1, n2)
	}
	x := append([]float64(nil), a...)
	y := append([]float64(nil), b...)
	sort.Float64s(x)
	sort.Float64s(y)
	var d float64
	i, j := 0, 0
	for i < n1 && j < n2 {
		// Advance through ties on both sides before comparing CDFs, so
		// identical values never create a spurious gap.
		v := math.Min(x[i], y[j])
		//lint:allow floateq: KS ties are defined by exact equality on sorted samples; v is copied, not computed
		for i < n1 && x[i] == v {
			i++
		}
		//lint:allow floateq: KS ties are defined by exact equality on sorted samples; v is copied, not computed
		for j < n2 && y[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/float64(n1) - float64(j)/float64(n2))
		if diff > d {
			d = diff
		}
	}
	res := KSResult{D: d, N1: n1, N2: n2}
	ne := float64(n1) * float64(n2) / float64(n1+n2)
	res.P = ksPValue((math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d)
	return res, nil
}

// ksPValue evaluates the Kolmogorov distribution's survival function
// Q_KS(λ) = 2 Σ_{j>=1} (-1)^{j-1} exp(-2 j² λ²).
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j*j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// BenjaminiHochberg controls the false discovery rate across m simultaneous
// hypothesis tests: it returns a significance mask aligned with pvals,
// marking the tests that survive at FDR level q. Table 5 tests fifteen
// factor combinations at once, so a raw 0.05 threshold overstates
// significance; the paper does not correct, and cmd/experiments reports
// both views.
func BenjaminiHochberg(pvals []float64, q float64) []bool {
	m := len(pvals)
	out := make([]bool, m)
	if m == 0 || q <= 0 || q >= 1 {
		return out
	}
	type pv struct {
		p float64
		i int
	}
	sorted := make([]pv, m)
	for i, p := range pvals {
		sorted[i] = pv{p, i}
	}
	sort.Slice(sorted, func(a, b int) bool {
		pa, pb := sorted[a].p, sorted[b].p
		if math.IsNaN(pa) {
			return false // NaNs sort last
		}
		if math.IsNaN(pb) {
			return true
		}
		return pa < pb
	})
	// Largest k with p_(k) <= k/m * q; all tests up to k are significant.
	k := -1
	for i, s := range sorted {
		if !math.IsNaN(s.p) && s.p <= float64(i+1)/float64(m)*q {
			k = i
		}
	}
	for i := 0; i <= k; i++ {
		out[sorted[i].i] = true
	}
	return out
}
