package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if got := RegIncBeta(1, 1, x); !near(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// I_x(2,2) = x^2 (3 - 2x).
	for _, x := range []float64{0.2, 0.5, 0.8} {
		want := x * x * (3 - 2*x)
		if got := RegIncBeta(2, 2, x); !near(got, want, 1e-12) {
			t.Errorf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got := RegIncBeta(3.5, 1.25, 0.3) + RegIncBeta(1.25, 3.5, 0.7); !near(got, 1, 1e-12) {
		t.Errorf("symmetry check = %v, want 1", got)
	}
	if !math.IsNaN(RegIncBeta(-1, 1, 0.5)) || !math.IsNaN(RegIncBeta(1, 1, 1.5)) {
		t.Fatal("invalid domain should be NaN")
	}
}

func TestRegIncBetaMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := 0.5 + 5*r.Float64()
		b := 0.5 + 5*r.Float64()
		prev := -1.0
		for x := 0.0; x <= 1.0001; x += 0.05 {
			xx := math.Min(x, 1)
			v := RegIncBeta(a, b, xx)
			if v < prev-1e-12 || v < 0 || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncGamma(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.1, 1, 3, 10} {
		want := 1 - math.Exp(-x)
		if got := RegIncGammaP(1, x); !near(got, want, 1e-10) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
		if got := RegIncGammaQ(1, x); !near(got, math.Exp(-x), 1e-10) {
			t.Errorf("Q(1,%v) = %v, want %v", x, got, math.Exp(-x))
		}
	}
	if got := RegIncGammaP(2.5, 0); got != 0 {
		t.Fatalf("P(a,0) = %v", got)
	}
}

func TestFDistReference(t *testing.T) {
	// Reference values from R: pf(q, d1, d2).
	cases := []struct {
		d1, d2, q, want float64
	}{
		{1, 1, 1, 0.5},      // pf(1,1,1) = 0.5
		{2, 10, 4.10, 0.95}, // qf(0.95, 2, 10) ≈ 4.102821
		{5, 20, 2.71, 0.95}, // qf(0.95, 5, 20) ≈ 2.71089
		{10, 10, 1, 0.5},    // symmetric
		{3, 7, 8.45, 0.99},  // qf(0.99, 3, 7) ≈ 8.4513
	}
	for _, c := range cases {
		got := FDist{D1: c.d1, D2: c.d2}.CDF(c.q)
		if !near(got, c.want, 2e-3) {
			t.Errorf("F(%v,%v).CDF(%v) = %v, want %v", c.d1, c.d2, c.q, got, c.want)
		}
	}
	f := FDist{D1: 4, D2: 9}
	if got := f.CDF(2.5) + f.SF(2.5); !near(got, 1, 1e-12) {
		t.Fatalf("CDF+SF = %v", got)
	}
	if f.CDF(0) != 0 || f.SF(-1) != 1 {
		t.Fatal("edge behavior wrong")
	}
}

func TestTDistReference(t *testing.T) {
	// pt(2.228, 10) ≈ 0.975 (two-sided 0.05 critical value).
	got := TDist{Nu: 10}.CDF(2.228)
	if !near(got, 0.975, 1e-3) {
		t.Fatalf("T10.CDF(2.228) = %v, want ~0.975", got)
	}
	if got := (TDist{Nu: 10}).SF2(2.228); !near(got, 0.05, 2e-3) {
		t.Fatalf("SF2 = %v, want ~0.05", got)
	}
	if got := (TDist{Nu: 5}).CDF(0); got != 0.5 {
		t.Fatalf("CDF(0) = %v", got)
	}
	// t^2 with nu df is F(1, nu): cross-check.
	tv := 1.7
	a := TDist{Nu: 8}.SF2(tv)
	b := FDist{D1: 1, D2: 8}.SF(tv * tv)
	if !near(a, b, 1e-10) {
		t.Fatalf("t/F equivalence: %v vs %v", a, b)
	}
}

func TestChiSquaredReference(t *testing.T) {
	// qchisq(0.95, 3) ≈ 7.8147.
	got := ChiSquared{K: 3}.CDF(7.8147)
	if !near(got, 0.95, 1e-3) {
		t.Fatalf("Chi2(3).CDF(7.8147) = %v", got)
	}
	c := ChiSquared{K: 5}
	if got := c.CDF(4) + c.SF(4); !near(got, 1, 1e-10) {
		t.Fatalf("CDF+SF = %v", got)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); !near(got, p, 1e-8) {
			t.Errorf("round trip p=%v: z=%v back=%v", p, z, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("boundary quantiles should be infinite")
	}
}

func TestOneWayANOVAKnown(t *testing.T) {
	// Classic example: three groups with clearly different means.
	groups := [][]float64{
		{6, 8, 4, 5, 3, 4},
		{8, 12, 9, 11, 6, 8},
		{13, 9, 11, 8, 7, 12},
	}
	res, err := OneWayANOVA(groups)
	if err != nil {
		t.Fatal(err)
	}
	// R: summary(aov(...)): F = 9.3, p = 0.0024 (approximately).
	if !near(res.F, 9.3, 0.1) {
		t.Fatalf("F = %v, want ~9.3", res.F)
	}
	if !near(res.P, 0.0024, 5e-4) {
		t.Fatalf("p = %v, want ~0.0024", res.P)
	}
	if res.DF1 != 2 || res.DF2 != 15 {
		t.Fatalf("df = (%d, %d)", res.DF1, res.DF2)
	}
	if !res.Significant(0.05) || res.Significant(0.001) {
		t.Fatal("significance thresholds wrong")
	}
}

func TestOneWayANOVAIdenticalGroups(t *testing.T) {
	res, err := OneWayANOVA([][]float64{{1, 2, 3}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-9 || res.P < 0.99 {
		t.Fatalf("identical groups: F=%v p=%v", res.F, res.P)
	}
}

func TestOneWayANOVAErrors(t *testing.T) {
	if _, err := OneWayANOVA([][]float64{{1, 2}}); err == nil {
		t.Fatal("single group should error")
	}
	if _, err := OneWayANOVA([][]float64{{1}, {}}); err == nil {
		t.Fatal("empty group should error")
	}
}

func TestFitLine(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !near(fit.Slope, 2, 1e-12) || !near(fit.Intercept, 1, 1e-12) || !near(fit.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
	if got := fit.Predict(10); !near(got, 21, 1e-12) {
		t.Fatalf("Predict = %v", got)
	}
	if _, err := FitLine(x, y[:3]); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := FitLine([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("degenerate x should error")
	}
}

func TestFitOLSMatchesFitLine(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 40
	x := make([]float64, n)
	y := make([]float64, n)
	design := make([][]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
		y[i] = 2 + 3*x[i] + 0.1*r.NormFloat64()
		design[i] = []float64{1, x[i]}
	}
	line, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	ols, err := FitOLS(design, y)
	if err != nil {
		t.Fatal(err)
	}
	if !near(ols.Coef[0], line.Intercept, 1e-9) || !near(ols.Coef[1], line.Slope, 1e-9) {
		t.Fatalf("OLS %v vs line %+v", ols.Coef, line)
	}
	if !near(ols.R2(), line.R2, 1e-9) {
		t.Fatalf("R2 %v vs %v", ols.R2(), line.R2)
	}
}

func TestFitOLSErrors(t *testing.T) {
	if _, err := FitOLS(nil, nil); err == nil {
		t.Fatal("empty should error")
	}
	if _, err := FitOLS([][]float64{{1, 0}}, []float64{1}); err == nil {
		t.Fatal("n <= p should error")
	}
	if _, err := FitOLS([][]float64{{1, 0}, {1}, {1, 2}}, []float64{1, 2, 3}); err == nil {
		t.Fatal("ragged design should error")
	}
	// Collinear design is singular.
	design := [][]float64{{1, 2, 4}, {1, 3, 6}, {1, 4, 8}, {1, 5, 10}}
	if _, err := FitOLS(design, []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("collinear design should error")
	}
}

func TestSolveLinearKnown(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !near(x[0], 1, 1e-12) || !near(x[1], 3, 1e-12) {
		t.Fatalf("solution = %v, want [1 3]", x)
	}
	if _, err := SolveLinear([][]float64{{0, 0}, {0, 0}}, []float64{1, 2}); err == nil {
		t.Fatal("singular should error")
	}
}

func TestRegressionANOVADetectsEffect(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 50
	x := make([]float64, n)
	noiseOnly := make([]float64, n)
	effect := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		noiseOnly[i] = r.NormFloat64()
		effect[i] = 0.2*x[i] + r.NormFloat64()
	}
	resNull, err := RegressionANOVA(noiseOnly, x)
	if err != nil {
		t.Fatal(err)
	}
	resEff, err := RegressionANOVA(effect, x)
	if err != nil {
		t.Fatal(err)
	}
	if resNull.P < 0.01 {
		t.Fatalf("null p = %v, should not be tiny", resNull.P)
	}
	if resEff.P > 1e-6 {
		t.Fatalf("effect p = %v, should be tiny", resEff.P)
	}
}

func TestRegressionANOVAMatchesSimpleFTest(t *testing.T) {
	// For a single predictor, F = t^2 and F-test p equals two-sided t-test p;
	// also F = (n-2) R^2 / (1 - R^2).
	r := rand.New(rand.NewSource(13))
	n := 30
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
		y[i] = 0.5*x[i] + r.NormFloat64()
	}
	res, err := RegressionANOVA(y, x)
	if err != nil {
		t.Fatal(err)
	}
	fit, _ := FitLine(x, y)
	wantF := float64(n-2) * fit.R2 / (1 - fit.R2)
	if !near(res.F, wantF, 1e-8*wantF) {
		t.Fatalf("F = %v, want %v", res.F, wantF)
	}
}

func TestNestedFTest(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	n := 60
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	dRed := make([][]float64, n)
	dFull := make([][]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = r.NormFloat64()
		x2[i] = r.NormFloat64()
		y[i] = 1 + 2*x1[i] + 3*x2[i] + 0.5*r.NormFloat64()
		dRed[i] = []float64{1, x1[i]}
		dFull[i] = []float64{1, x1[i], x2[i]}
	}
	red, err := FitOLS(dRed, y)
	if err != nil {
		t.Fatal(err)
	}
	full, err := FitOLS(dFull, y)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NestedFTest(red, full)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-10 {
		t.Fatalf("x2 clearly matters, p = %v", res.P)
	}
	if _, err := NestedFTest(full, red); err == nil {
		t.Fatal("swapped models should error")
	}
}

func TestFactorialANOVATable(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	n := 80
	gdp := make([]float64, n)
	elec := make([]float64, n)
	junk := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		gdp[i] = 5000 + 45000*r.Float64()
		elec[i] = gdp[i]*0.3 + 2000*r.NormFloat64() // correlated with gdp
		junk[i] = r.NormFloat64()
		y[i] = 0.6 - gdp[i]/1e5 + 0.03*r.NormFloat64()
	}
	tab, err := FactorialANOVA(y, []Factor{
		{Name: "gdp", Values: gdp},
		{Name: "elec", Values: elec},
		{Name: "junk", Values: junk},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Names) != 3 || len(tab.P) != 3 {
		t.Fatalf("table shape wrong: %+v", tab)
	}
	if tab.P[0][0] > 1e-8 {
		t.Fatalf("gdp diagonal p = %v, should be tiny", tab.P[0][0])
	}
	if tab.P[2][2] < 0.001 {
		t.Fatalf("junk diagonal p = %v, should not be tiny", tab.P[2][2])
	}
	if tab.P[0][1] != tab.P[1][0] {
		t.Fatal("table should be symmetric")
	}
	if tab.P[0][1] > 1e-6 {
		t.Fatalf("gdp+elec joint p = %v, should be small", tab.P[0][1])
	}
	if _, err := FactorialANOVA(y, nil); err == nil {
		t.Fatal("no factors should error")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100, 0.95)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Fatalf("interval [%v, %v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("interval too wide: %v", hi-lo)
	}
	// Zero successes: lower bound 0, upper bound positive but small.
	lo, hi = WilsonInterval(0, 100, 0.95)
	if lo != 0 || hi <= 0 || hi > 0.08 {
		t.Fatalf("zero-success interval [%v, %v]", lo, hi)
	}
	// All successes mirrors it.
	lo, hi = WilsonInterval(100, 100, 0.95)
	if hi != 1 || lo < 0.92 {
		t.Fatalf("all-success interval [%v, %v]", lo, hi)
	}
	// Bigger n shrinks the interval.
	lo1, hi1 := WilsonInterval(5, 10, 0.95)
	lo2, hi2 := WilsonInterval(500, 1000, 0.95)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatal("larger samples should give tighter intervals")
	}
	if l, h := WilsonInterval(5, 0, 0.95); !math.IsNaN(l) || !math.IsNaN(h) {
		t.Fatal("degenerate inputs should be NaN")
	}
	if l, _ := WilsonInterval(-1, 10, 0.95); !math.IsNaN(l) {
		t.Fatal("negative successes should be NaN")
	}
}
