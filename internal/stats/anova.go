package stats

import (
	"fmt"
	"math"
)

// ANOVAResult is the outcome of an F-test.
type ANOVAResult struct {
	F      float64 // F statistic
	P      float64 // p-value, P(F_{DF1,DF2} > F)
	DF1    int     // numerator degrees of freedom
	DF2    int     // denominator degrees of freedom
	SSB    float64 // between-group / regression sum of squares
	SSW    float64 // within-group / residual sum of squares
	GrandN int     // total observations
}

// Significant reports whether the result rejects the null at level alpha.
func (r ANOVAResult) Significant(alpha float64) bool {
	return !math.IsNaN(r.P) && r.P < alpha
}

// OneWayANOVA performs a one-way analysis of variance over k groups of
// observations, testing the null hypothesis that all group means are equal.
func OneWayANOVA(groups [][]float64) (ANOVAResult, error) {
	k := len(groups)
	if k < 2 {
		return ANOVAResult{}, fmt.Errorf("stats: OneWayANOVA needs >= 2 groups, got %d", k)
	}
	var n int
	var grand float64
	for i, g := range groups {
		if len(g) == 0 {
			return ANOVAResult{}, fmt.Errorf("stats: OneWayANOVA group %d is empty", i)
		}
		n += len(g)
		grand += Sum(g)
	}
	if n <= k {
		return ANOVAResult{}, fmt.Errorf("stats: OneWayANOVA needs > %d total observations, got %d", k, n)
	}
	grand /= float64(n)
	var ssb, ssw float64
	for _, g := range groups {
		m := Mean(g)
		d := m - grand
		ssb += float64(len(g)) * d * d
		for _, v := range g {
			e := v - m
			ssw += e * e
		}
	}
	df1, df2 := k-1, n-k
	res := ANOVAResult{DF1: df1, DF2: df2, SSB: ssb, SSW: ssw, GrandN: n}
	if ssw == 0 {
		if ssb == 0 {
			res.F = 0
			res.P = 1
			return res, nil
		}
		res.F = math.Inf(1)
		res.P = 0
		return res, nil
	}
	res.F = (ssb / float64(df1)) / (ssw / float64(df2))
	res.P = FDist{D1: float64(df1), D2: float64(df2)}.SF(res.F)
	return res, nil
}

// RegressionANOVA tests whether the given continuous predictors jointly
// explain the outcome: the overall F-test of the linear model
// y ~ 1 + x1 + ... + xp against the intercept-only model. This is what R's
// aov reports for continuous covariates, and what the paper's Table 5 runs
// on country-level factors.
func RegressionANOVA(y []float64, predictors ...[]float64) (ANOVAResult, error) {
	p := len(predictors)
	if p == 0 {
		return ANOVAResult{}, fmt.Errorf("stats: RegressionANOVA needs >= 1 predictor")
	}
	n := len(y)
	for i, x := range predictors {
		if len(x) != n {
			return ANOVAResult{}, fmt.Errorf("stats: predictor %d length %d != outcome length %d", i, len(x), n)
		}
	}
	design := make([][]float64, n)
	for r := 0; r < n; r++ {
		row := make([]float64, p+1)
		row[0] = 1
		for j, x := range predictors {
			row[j+1] = x[r]
		}
		design[r] = row
	}
	fit, err := FitOLS(design, y)
	if err != nil {
		return ANOVAResult{}, err
	}
	df1 := p
	df2 := n - p - 1
	if df2 <= 0 {
		return ANOVAResult{}, fmt.Errorf("stats: RegressionANOVA needs > %d observations, got %d", p+1, n)
	}
	res := ANOVAResult{DF1: df1, DF2: df2, SSB: fit.SSR, SSW: fit.SSE, GrandN: n}
	if fit.SSE <= 0 {
		res.F = math.Inf(1)
		res.P = 0
		return res, nil
	}
	res.F = (fit.SSR / float64(df1)) / (fit.SSE / float64(df2))
	res.P = FDist{D1: float64(df1), D2: float64(df2)}.SF(res.F)
	return res, nil
}

// NestedFTest compares a full linear model against a nested reduced model
// (reduced's design columns must be a subset of full's). It returns the
// partial F-test of the extra columns.
func NestedFTest(reduced, full OLS) (ANOVAResult, error) {
	if full.N != reduced.N {
		return ANOVAResult{}, fmt.Errorf("stats: NestedFTest models fit on different n (%d vs %d)", full.N, reduced.N)
	}
	extra := full.P - reduced.P
	if extra <= 0 {
		return ANOVAResult{}, fmt.Errorf("stats: full model must have more parameters (full %d, reduced %d)", full.P, reduced.P)
	}
	df2 := full.N - full.P
	if df2 <= 0 {
		return ANOVAResult{}, fmt.Errorf("stats: no residual degrees of freedom")
	}
	num := (reduced.SSE - full.SSE) / float64(extra)
	den := full.SSE / float64(df2)
	res := ANOVAResult{DF1: extra, DF2: df2, SSB: reduced.SSE - full.SSE, SSW: full.SSE, GrandN: full.N}
	if den <= 0 {
		res.F = math.Inf(1)
		res.P = 0
		return res, nil
	}
	if num < 0 {
		num = 0
	}
	res.F = num / den
	res.P = FDist{D1: float64(extra), D2: float64(df2)}.SF(res.F)
	return res, nil
}

// Factor is a named continuous covariate for factorial screening.
type Factor struct {
	Name   string
	Values []float64
}

// FactorialTable holds single-factor p-values on the diagonal and pairwise
// combined-model p-values off the diagonal, as in the paper's Table 5.
type FactorialTable struct {
	Names []string
	// P[i][j] for i == j is the single-factor p-value of factor i; for
	// i != j it is the p-value of the joint model with factors i and j.
	P [][]float64
}

// FactorialANOVA screens every factor and every unordered pair of factors
// against the outcome, mirroring the paper's Table 5 construction.
func FactorialANOVA(y []float64, factors []Factor) (FactorialTable, error) {
	k := len(factors)
	if k == 0 {
		return FactorialTable{}, fmt.Errorf("stats: FactorialANOVA needs factors")
	}
	t := FactorialTable{Names: make([]string, k), P: make([][]float64, k)}
	for i := range factors {
		t.Names[i] = factors[i].Name
		t.P[i] = make([]float64, k)
		for j := range t.P[i] {
			t.P[i][j] = math.NaN()
		}
	}
	for i := 0; i < k; i++ {
		res, err := RegressionANOVA(y, factors[i].Values)
		if err != nil {
			return FactorialTable{}, fmt.Errorf("factor %q: %w", factors[i].Name, err)
		}
		t.P[i][i] = res.P
		for j := i + 1; j < k; j++ {
			pair, err := RegressionANOVA(y, factors[i].Values, factors[j].Values)
			if err != nil {
				return FactorialTable{}, fmt.Errorf("factors %q x %q: %w", factors[i].Name, factors[j].Name, err)
			}
			t.P[i][j] = pair.P
			t.P[j][i] = pair.P
		}
	}
	return t, nil
}
