// Package stats is the statistics substrate for the study: descriptive
// statistics, correlation, least-squares regression, histograms and
// empirical CDFs, the special functions needed for exact p-values
// (regularized incomplete beta), the F and t distributions, and analysis of
// variance (one-way on categorical groups and regression ANOVA on continuous
// country-level covariates, which is what the paper's Table 5 uses).
//
// Everything is implemented from scratch on the standard library, matching
// the definitions in standard texts; see the tests for cross-checks against
// closed-form cases and R/scipy reference values.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or NaN for empty input.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Sum returns the sum of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Variance returns the unbiased sample variance (n-1 denominator) of x.
// It returns NaN for fewer than two samples.
func Variance(x []float64) float64 {
	n := len(x)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(x)
	var ss float64
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// PopVariance returns the population variance (n denominator).
func PopVariance(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return math.NaN()
	}
	m := Mean(x)
	var ss float64
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return ss / float64(n)
}

// MinMax returns the smallest and largest values in x.
// It returns (NaN, NaN) for empty input.
func MinMax(x []float64) (min, max float64) {
	if len(x) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = x[0], x[0]
	for _, v := range x[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 <= q <= 1) of x using linear
// interpolation between order statistics (R type-7, the R and NumPy
// default). x need not be sorted. It returns NaN for empty input or q
// outside [0, 1].
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// QuantilesSorted computes several quantiles of already-sorted data in one
// pass over qs. It panics if s is not sorted in tests; callers are expected
// to sort once and reuse.
func QuantilesSorted(s []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		if len(s) == 0 || q < 0 || q > 1 {
			out[i] = math.NaN()
			continue
		}
		out[i] = quantileSorted(s, q)
	}
	return out
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1]
	}
	frac := h - float64(lo)
	return s[lo] + frac*(s[hi]-s[lo])
}

// Median returns the 0.5 quantile of x.
func Median(x []float64) float64 { return Quantile(x, 0.5) }

// Summary bundles the five-number summary plus mean of a sample.
type Summary struct {
	N                  int
	Min, Q1, Median    float64
	Q3, Max, Mean, Std float64
}

// Summarize computes a Summary of x.
func Summarize(x []float64) Summary {
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	var sum Summary
	sum.N = len(s)
	if sum.N == 0 {
		nan := math.NaN()
		return Summary{Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan, Mean: nan, Std: nan}
	}
	qs := QuantilesSorted(s, 0, 0.25, 0.5, 0.75, 1)
	sum.Min, sum.Q1, sum.Median, sum.Q3, sum.Max = qs[0], qs[1], qs[2], qs[3], qs[4]
	sum.Mean = Mean(s)
	sum.Std = StdDev(s)
	return sum
}
