package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1.9, 2, 5, 9.99, -1, 10, math.NaN()} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, c := range wantCounts {
		if h.Counts[i] != c {
			t.Fatalf("Counts = %v, want %v", h.Counts, wantCounts)
		}
	}
	if h.Under != 2 || h.Over != 1 { // NaN counted under, -1 under, 10 over
		t.Fatalf("Under=%d Over=%d", h.Under, h.Over)
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	fr := h.Fractions()
	if !near(fr[0], 0.25, 1e-12) {
		t.Fatalf("Fractions = %v", fr)
	}
	cdf := h.CDF()
	if !near(cdf[4], 7.0/8, 1e-12) { // all except the single Over
		t.Fatalf("CDF = %v", cdf)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero bins should error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range should error")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := map[float64]float64{0: 0, 1: 0.25, 2: 0.75, 2.5: 0.75, 3: 1, 99: 1}
	for v, want := range cases {
		if got := e.At(v); !near(got, want, 1e-12) {
			t.Errorf("ECDF.At(%v) = %v, want %v", v, got, want)
		}
	}
	if e.N() != 4 {
		t.Fatalf("N = %d", e.N())
	}
	if !math.IsNaN(NewECDF(nil).At(1)) {
		t.Fatal("empty ECDF should be NaN")
	}
}

func TestGrid2D(t *testing.T) {
	g, err := NewGrid2D(0, 1, 10, 0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	g.Add(0.05, 0.05) // (0,0)
	g.Add(0.95, 0.95) // (9,9)
	g.Add(0.5, 0.5)   // (5,5)
	g.Add(-1, 0.5)    // out
	g.Add(0.5, math.NaN())
	if g.Total() != 5 || g.OutOfRange() != 2 {
		t.Fatalf("Total=%d Out=%d", g.Total(), g.OutOfRange())
	}
	if g.Counts[0][0] != 1 || g.Counts[9][9] != 1 || g.Counts[5][5] != 1 {
		t.Fatal("cells not recorded correctly")
	}
	if _, err := NewGrid2D(0, 1, 0, 0, 1, 5); err == nil {
		t.Fatal("zero dims should error")
	}
}

func TestColumnQuantiles(t *testing.T) {
	// Two columns: x in [0, 0.5) has y = {1,2,3}; x in [0.5, 1] has y = {10}.
	xs := []float64{0.1, 0.2, 0.3, 0.7}
	ys := []float64{1, 2, 3, 10}
	rows, err := ColumnQuantiles(xs, ys, 0, 1, 2, 0.25, 0.5, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if !near(rows[0][1], 2, 1e-12) {
		t.Fatalf("median of first column = %v", rows[0][1])
	}
	if !near(rows[1][1], 10, 1e-12) {
		t.Fatalf("median of second column = %v", rows[1][1])
	}
	rows, err = ColumnQuantiles(nil, nil, 0, 1, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if !math.IsNaN(row[0]) {
			t.Fatal("empty columns should be NaN")
		}
	}
	if _, err := ColumnQuantiles([]float64{1}, nil, 0, 1, 2, 0.5); err == nil {
		t.Fatal("mismatch should error")
	}
	if _, err := ColumnQuantiles(nil, nil, 1, 0, 2, 0.5); err == nil {
		t.Fatal("bad range should error")
	}
}

func TestKSTestSameDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := make([]float64, 400)
	b := make([]float64, 500)
	for i := range a {
		a[i] = r.NormFloat64()
	}
	for i := range b {
		b[i] = r.NormFloat64()
	}
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("same distribution rejected: D=%v p=%v", res.D, res.P)
	}
	if res.N1 != 400 || res.N2 != 500 {
		t.Fatalf("sizes = %d, %d", res.N1, res.N2)
	}
}

func TestKSTestDifferentDistributions(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 1 // shifted
	}
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Fatalf("shifted distribution not rejected: D=%v p=%v", res.D, res.P)
	}
	if res.D < 0.3 {
		t.Fatalf("D = %v, want large", res.D)
	}
}

func TestKSTestIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	res, err := KSTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 0 || res.P < 0.99 {
		t.Fatalf("identical: D=%v p=%v", res.D, res.P)
	}
}

func TestKSTestErrors(t *testing.T) {
	if _, err := KSTest(nil, []float64{1}); err == nil {
		t.Fatal("empty sample should error")
	}
}

func TestBenjaminiHochberg(t *testing.T) {
	// Classic example: with q=0.05 and these p-values, BH keeps the
	// smallest few.
	p := []float64{0.001, 0.008, 0.039, 0.041, 0.042, 0.06, 0.074, 0.205, 0.5}
	mask := BenjaminiHochberg(p, 0.05)
	// Thresholds: k/m*q = 0.0056, 0.0111, 0.0167, 0.0222, 0.0278, ...
	// 0.041 > 4/9*0.05=0.0222 and 0.042 > 0.0278, so only the first two
	// survive... check 0.039 <= 3/9*0.05 = 0.0167? No. So k=2 (first two).
	want := []bool{true, true, false, false, false, false, false, false, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask = %v, want %v", mask, want)
		}
	}
	// Order independence: shuffle input, mask follows the values.
	p2 := []float64{0.5, 0.001, 0.06, 0.008}
	mask2 := BenjaminiHochberg(p2, 0.05)
	if mask2[0] || !mask2[1] || mask2[2] || !mask2[3] {
		t.Fatalf("mask2 = %v", mask2)
	}
	// Degenerate inputs.
	if m := BenjaminiHochberg(nil, 0.05); len(m) != 0 {
		t.Fatal("empty input")
	}
	if m := BenjaminiHochberg([]float64{0.01}, 0); m[0] {
		t.Fatal("q=0 should reject everything")
	}
	if m := BenjaminiHochberg([]float64{math.NaN(), 0.001}, 0.05); m[0] || !m[1] {
		t.Fatalf("NaN handling: %v", m)
	}
}
