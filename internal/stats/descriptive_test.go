package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) == math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasics(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Fatalf("Sum = %v", got)
	}
}

func TestVariance(t *testing.T) {
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of 1 sample should be NaN")
	}
	// Known: sample variance of 2,4,4,4,5,5,7,9 is 4.571428...
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(x); !near(got, 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := PopVariance(x); !near(got, 4, 1e-12) {
		t.Fatalf("PopVariance = %v, want 4", got)
	}
	if got := StdDev(x); !near(got, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestVarianceInvariantUnderShift(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		shift := r.NormFloat64() * 100
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = x[i] + shift
		}
		return near(Variance(x), Variance(y), 1e-8*(1+math.Abs(shift)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%v, %v)", min, max)
	}
	min, max = MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Fatal("MinMax(nil) should be NaN")
	}
}

func TestQuantileKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	cases := map[float64]float64{0: 1, 0.25: 1.75, 0.5: 2.5, 0.75: 3.25, 1: 4}
	for q, want := range cases {
		if got := Quantile(x, q); !near(got, want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if !math.IsNaN(Quantile(x, -0.1)) || !math.IsNaN(Quantile(x, 1.1)) || !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("out-of-range quantiles should be NaN")
	}
	if got := Quantile([]float64{42}, 0.9); got != 42 {
		t.Fatalf("single-sample quantile = %v", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(x, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Median) {
		t.Fatalf("Summarize(nil) = %+v", empty)
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); !near(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); !near(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
	if !math.IsNaN(Pearson(x, []float64{1, 1, 1, 1, 1})) {
		t.Fatal("zero-variance Pearson should be NaN")
	}
	if !math.IsNaN(Pearson(x, x[:3])) {
		t.Fatal("mismatched Pearson should be NaN")
	}
}

func TestPearsonRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		p := Pearson(x, y)
		return p >= -1-1e-12 && p <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly increasing transform gives Spearman exactly 1.
	x := []float64{1, 5, 2, 8, 3}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v)
	}
	if got := Spearman(x, y); !near(got, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", got)
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestWeightedPearsonReducesToPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 7}
	y := []float64{2, 1, 4, 3, 6, 8}
	w := []float64{1, 1, 1, 1, 1, 1}
	if got, want := WeightedPearson(x, y, w), Pearson(x, y); !near(got, want, 1e-12) {
		t.Fatalf("WeightedPearson = %v, Pearson = %v", got, want)
	}
}

func TestCovarianceMatchesVariance(t *testing.T) {
	x := []float64{1, 4, 2, 8, 5}
	if got, want := Covariance(x, x), Variance(x); !near(got, want, 1e-12) {
		t.Fatalf("Cov(x,x) = %v, Var = %v", got, want)
	}
}

func TestCircularLinearCorrelation(t *testing.T) {
	// Linear variable perfectly predicted by angle within a half-circle:
	// expect strong association.
	n := 60
	theta := make([]float64, n)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		theta[i] = -math.Pi/2 + math.Pi*float64(i)/float64(n)
		x[i] = theta[i] * 3
	}
	r := CircularLinearCorrelation(theta, x)
	if r < 0.95 {
		t.Fatalf("circular-linear r = %v, want > 0.95", r)
	}
	if !math.IsNaN(CircularLinearCorrelation(theta[:2], x[:2])) {
		t.Fatal("tiny input should be NaN")
	}
}
