package stats

import "math"

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf form),
// with the symmetry transform applied when x is past the distribution bulk
// so the continued fraction converges quickly.
//
// Domain: a > 0, b > 0, 0 <= x <= 1. Out-of-domain input returns NaN.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case a <= 0 || b <= 0 || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		if x < 0 {
			return math.NaN()
		}
		return 0
	case x >= 1:
		if x > 1 {
			return math.NaN()
		}
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x) + b*math.Log1p(-x) - lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		epsCF   = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsCF {
			break
		}
	}
	return h
}

// RegIncGammaP computes the regularized lower incomplete gamma function
// P(a, x) by series (x < a+1) or continued fraction (otherwise). Used for
// chi-square tail probabilities.
func RegIncGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinued(a, x)
}

// RegIncGammaQ returns 1 - P(a, x), the regularized upper incomplete gamma.
func RegIncGammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinued(a, x)
}

func gammaPSeries(a, x float64) float64 {
	const maxIter = 500
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lgamma(a))
}

func gammaQContinued(a, x float64) float64 {
	const (
		maxIter = 500
		fpmin   = 1e-300
	)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lgamma(a)) * h
}

// ErfApprox is math.Erf re-exported for callers in this module that want a
// single stats entry point; the standard library implementation is exact
// enough for every use here.
func ErfApprox(x float64) float64 { return math.Erf(x) }

// NormalCDF returns the standard normal CDF Phi(z).
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the standard normal quantile (inverse CDF) using
// the Acklam rational approximation refined by one Halley step; absolute
// error is far below any statistical use here.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
	// One Halley refinement.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
