package stats

import "math"

// defaultTol is the mixed absolute/relative tolerance ApproxEqual uses:
// loose enough to absorb the rounding drift of availability fractions and
// FFT magnitudes accumulated over a campaign, tight enough that genuinely
// different statistics never collide.
const defaultTol = 1e-9

// ApproxEqual reports whether a and b are equal within the default mixed
// absolute/relative tolerance. It is the comparison the floateq lint rule
// points at: computed floats (fractions, magnitudes, coefficients) must
// not be compared with == / !=, which flip near rounding boundaries.
// NaN equals nothing; equal infinities are equal.
func ApproxEqual(a, b float64) bool { return ApproxEqualTol(a, b, defaultTol) }

// ApproxEqualTol reports whether |a-b| <= tol*max(1, |a|, |b|): absolute
// tolerance near zero, relative tolerance for large magnitudes.
func ApproxEqualTol(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		//lint:allow floateq: infinities carry no rounding error; exact comparison is the definition here
		return a == b
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= tol*scale
}
