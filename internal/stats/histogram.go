package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-width binned count of scalar observations.
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Under and Over count observations outside [Min, Max).
	Under, Over int
	total       int
}

// NewHistogram creates a histogram of bins equal-width bins over [min, max).
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs > 0 bins, got %d", bins)
	}
	if !(max > min) {
		return nil, fmt.Errorf("stats: histogram needs max > min (%v, %v)", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case math.IsNaN(v):
		h.Under++ // NaN is counted as out-of-range low, never a bin.
	case v < h.Min:
		h.Under++
	case v >= h.Max:
		h.Over++
	default:
		idx := int(float64(len(h.Counts)) * (v - h.Min) / (h.Max - h.Min))
		if idx == len(h.Counts) { // float edge
			idx--
		}
		h.Counts[idx]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Fractions returns the in-range fraction of observations per bin.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// CDF returns the cumulative fraction at each bin upper edge (in-range
// observations only contribute to bins; under-range mass is included as the
// starting offset).
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	run := h.Under
	for i, c := range h.Counts {
		run += c
		out[i] = float64(run) / float64(h.total)
	}
	return out
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample (copied and sorted).
func NewECDF(sample []float64) *ECDF {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns the fraction of the sample <= v.
func (e *ECDF) At(v float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(v, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Grid2D accumulates counts of (x, y) pairs on a fixed rectangular grid —
// the density plots of Figures 4, 5, and 14.
type Grid2D struct {
	XMin, XMax, YMin, YMax float64
	NX, NY                 int
	Counts                 [][]int // Counts[yi][xi]
	total                  int
	out                    int
}

// NewGrid2D creates an nx-by-ny grid over the given ranges.
func NewGrid2D(xmin, xmax float64, nx int, ymin, ymax float64, ny int) (*Grid2D, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("stats: grid needs positive dimensions (%d, %d)", nx, ny)
	}
	if !(xmax > xmin) || !(ymax > ymin) {
		return nil, fmt.Errorf("stats: grid needs max > min")
	}
	g := &Grid2D{XMin: xmin, XMax: xmax, YMin: ymin, YMax: ymax, NX: nx, NY: ny}
	g.Counts = make([][]int, ny)
	for i := range g.Counts {
		g.Counts[i] = make([]int, nx)
	}
	return g, nil
}

// Add records one pair. Out-of-range pairs are counted but not binned.
func (g *Grid2D) Add(x, y float64) {
	g.total++
	if math.IsNaN(x) || math.IsNaN(y) || x < g.XMin || x >= g.XMax || y < g.YMin || y >= g.YMax {
		g.out++
		return
	}
	xi := int(float64(g.NX) * (x - g.XMin) / (g.XMax - g.XMin))
	yi := int(float64(g.NY) * (y - g.YMin) / (g.YMax - g.YMin))
	if xi == g.NX {
		xi--
	}
	if yi == g.NY {
		yi--
	}
	g.Counts[yi][xi]++
}

// Total returns the number of Add calls; OutOfRange those not binned.
func (g *Grid2D) Total() int      { return g.total }
func (g *Grid2D) OutOfRange() int { return g.out }

// ColumnQuantiles bins pairs by x-column group and returns, for each of the
// groups of width (XMax-XMin)/groups, the requested quantiles of the y
// values in that column — the white quartile boxes overlaid on Figures 4–5.
// Columns with no data yield NaN rows.
func ColumnQuantiles(xs, ys []float64, xmin, xmax float64, groups int, qs ...float64) ([][]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: ColumnQuantiles length mismatch")
	}
	if groups <= 0 || !(xmax > xmin) {
		return nil, fmt.Errorf("stats: ColumnQuantiles bad grouping")
	}
	buckets := make([][]float64, groups)
	for i, x := range xs {
		if math.IsNaN(x) || x < xmin || x > xmax {
			continue
		}
		gi := int(float64(groups) * (x - xmin) / (xmax - xmin))
		if gi == groups {
			gi--
		}
		buckets[gi] = append(buckets[gi], ys[i])
	}
	out := make([][]float64, groups)
	for i, b := range buckets {
		row := make([]float64, len(qs))
		if len(b) == 0 {
			for j := range row {
				row[j] = math.NaN()
			}
		} else {
			sort.Float64s(b)
			copy(row, QuantilesSorted(b, qs...))
		}
		out[i] = row
	}
	return out, nil
}
