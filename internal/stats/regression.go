package stats

import (
	"fmt"
	"math"
)

// LinearFit is the result of a simple least-squares line fit y = a + b*x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R         float64 // Pearson correlation of x and y
	R2        float64 // coefficient of determination
	N         int
}

// FitLine fits y = a + b*x by ordinary least squares.
// It returns an error for mismatched lengths or fewer than two points.
func FitLine(x, y []float64) (LinearFit, error) {
	n := len(x)
	if n != len(y) {
		return LinearFit{}, fmt.Errorf("stats: FitLine length mismatch %d vs %d", n, len(y))
	}
	if n < 2 {
		return LinearFit{}, fmt.Errorf("stats: FitLine needs >= 2 points, got %d", n)
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: FitLine degenerate x (zero variance)")
	}
	b := sxy / sxx
	fit := LinearFit{
		Intercept: my - b*mx,
		Slope:     b,
		N:         n,
	}
	if syy > 0 {
		fit.R = sxy / math.Sqrt(sxx*syy)
		fit.R2 = fit.R * fit.R
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// OLS is a multiple linear regression fit y = Xb (the design matrix X must
// already contain an intercept column if one is wanted).
type OLS struct {
	Coef []float64 // fitted coefficients, one per design column
	SSE  float64   // residual sum of squares
	SST  float64   // total sum of squares about the mean of y
	SSR  float64   // regression sum of squares (SST - SSE)
	N    int       // observations
	P    int       // design columns (parameters)
}

// FitOLS solves the normal equations (X'X) b = X'y by Gaussian elimination
// with partial pivoting. The design is expected to be small (the paper's
// ANOVA uses at most three columns), so this is both adequate and exact
// enough. rows(X) must equal len(y) and exceed the number of columns.
func FitOLS(x [][]float64, y []float64) (OLS, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return OLS{}, fmt.Errorf("stats: FitOLS needs matching non-empty x (%d rows) and y (%d)", n, len(y))
	}
	p := len(x[0])
	if p == 0 {
		return OLS{}, fmt.Errorf("stats: FitOLS empty design row")
	}
	if n <= p {
		return OLS{}, fmt.Errorf("stats: FitOLS needs more observations (%d) than parameters (%d)", n, p)
	}
	for i, row := range x {
		if len(row) != p {
			return OLS{}, fmt.Errorf("stats: FitOLS ragged design at row %d: %d vs %d", i, len(row), p)
		}
	}
	// Normal equations.
	xtx := make([][]float64, p)
	xty := make([]float64, p)
	for i := 0; i < p; i++ {
		xtx[i] = make([]float64, p)
	}
	for r := 0; r < n; r++ {
		for i := 0; i < p; i++ {
			xty[i] += x[r][i] * y[r]
			for j := i; j < p; j++ {
				xtx[i][j] += x[r][i] * x[r][j]
			}
		}
	}
	for i := 1; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	coef, err := SolveLinear(xtx, xty)
	if err != nil {
		return OLS{}, fmt.Errorf("stats: FitOLS singular design: %w", err)
	}
	fit := OLS{Coef: coef, N: n, P: p}
	my := Mean(y)
	for r := 0; r < n; r++ {
		var pred float64
		for j := 0; j < p; j++ {
			pred += coef[j] * x[r][j]
		}
		e := y[r] - pred
		fit.SSE += e * e
		d := y[r] - my
		fit.SST += d * d
	}
	fit.SSR = fit.SST - fit.SSE
	if fit.SSR < 0 {
		fit.SSR = 0
	}
	return fit, nil
}

// R2 returns the coefficient of determination of the fit.
func (o OLS) R2() float64 {
	if o.SST == 0 {
		return math.NaN()
	}
	return o.SSR / o.SST
}

// SolveLinear solves the dense system a*x = b by Gaussian elimination with
// partial pivoting, destroying neither input. It returns an error when the
// matrix is singular to working precision.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("stats: SolveLinear dimension mismatch")
	}
	// Copy.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("stats: SolveLinear non-square matrix")
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	v := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: singular matrix at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		v[col], v[pivot] = v[pivot], v[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			v[r] -= f * v[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := v[i]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}
