package stats

import (
	"math"
	"sort"
)

// Covariance returns the unbiased sample covariance of paired samples x, y.
// It returns NaN if the lengths differ or fewer than two pairs are given.
func Covariance(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var s float64
	for i := 0; i < n; i++ {
		s += (x[i] - mx) * (y[i] - my)
	}
	return s / float64(n-1)
}

// Pearson returns the Pearson product-moment correlation coefficient of
// paired samples x and y. It returns NaN for mismatched lengths, fewer than
// two pairs, or zero variance in either sample.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns Spearman's rank correlation: Pearson correlation of the
// ranks, with ties receiving the average of the ranks they span.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) {
		return math.NaN()
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns the 1-based fractional ranks of x, averaging tied values.
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		//lint:allow floateq: rank ties are defined by exact equality; approximate ties would change every rank statistic
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		// positions i..j are tied: average rank
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// WeightedPearson returns the Pearson correlation of x and y with
// non-negative observation weights w. Used when correlating per-country
// aggregates weighted by block counts.
func WeightedPearson(x, y, w []float64) float64 {
	n := len(x)
	if n != len(y) || n != len(w) || n < 2 {
		return math.NaN()
	}
	var sw, mx, my float64
	for i := 0; i < n; i++ {
		sw += w[i]
		mx += w[i] * x[i]
		my += w[i] * y[i]
	}
	if sw <= 0 {
		return math.NaN()
	}
	mx /= sw
	my /= sw
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += w[i] * dx * dy
		sxx += w[i] * dx * dx
		syy += w[i] * dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CircularLinearCorrelation measures association between a circular variable
// theta (radians) and a linear variable x, following Mardia's r_{xc}:
//
//	r^2 = (r_xc^2 + r_xs^2 - 2 r_xc r_xs r_cs) / (1 - r_cs^2)
//
// where r_xc = corr(x, cos θ), r_xs = corr(x, sin θ), r_cs = corr(cos θ, sin θ).
// The result is in [0, 1]; the paper instead "unrolls" phase before a plain
// Pearson (see analysis.UnrollPhase), but this gives a rotation-invariant
// cross-check.
func CircularLinearCorrelation(theta, x []float64) float64 {
	n := len(theta)
	if n != len(x) || n < 3 {
		return math.NaN()
	}
	c := make([]float64, n)
	s := make([]float64, n)
	for i, t := range theta {
		si, ci := math.Sincos(t)
		c[i], s[i] = ci, si
	}
	rxc := Pearson(x, c)
	rxs := Pearson(x, s)
	rcs := Pearson(c, s)
	den := 1 - rcs*rcs
	if den <= 0 {
		return math.NaN()
	}
	r2 := (rxc*rxc + rxs*rxs - 2*rxc*rxs*rcs) / den
	if r2 < 0 {
		r2 = 0
	}
	return math.Sqrt(r2)
}
