package probe

import (
	"math"
	"testing"
	"time"

	"sleepnet/internal/core"
	"sleepnet/internal/netsim"
	"sleepnet/internal/trinocular"
)

var t0 = time.Date(2013, time.April, 24, 17, 18, 0, 0, time.UTC)

func TestTokenBucketBasics(t *testing.T) {
	b, err := NewTokenBucket(10, 5) // 10 tok/s, burst 5
	if err != nil {
		t.Fatal(err)
	}
	now := t0
	// Burst drains the initial capacity.
	for i := 0; i < 5; i++ {
		if !b.Allow(now, 1) {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if b.Allow(now, 1) {
		t.Fatal("empty bucket should deny")
	}
	// Half a second refills 5 tokens.
	now = now.Add(500 * time.Millisecond)
	if got := b.Available(now); math.Abs(got-5) > 1e-9 {
		t.Fatalf("available = %v", got)
	}
	if !b.Allow(now, 5) {
		t.Fatal("refilled tokens denied")
	}
	// Capacity caps accumulation.
	now = now.Add(time.Hour)
	if got := b.Available(now); got != 5 {
		t.Fatalf("capped available = %v", got)
	}
}

func TestTokenBucketEdgeCases(t *testing.T) {
	if _, err := NewTokenBucket(0, 5); err == nil {
		t.Fatal("zero rate should error")
	}
	if _, err := NewTokenBucket(5, 0); err == nil {
		t.Fatal("zero capacity should error")
	}
	b, _ := NewTokenBucket(1, 1)
	if !b.Allow(t0, 0) || !b.Allow(t0, -1) {
		t.Fatal("non-positive requests are free")
	}
	// Time going backwards is clamped, not panicking or minting tokens.
	b.Allow(t0, 1)
	if b.Allow(t0.Add(-time.Hour), 1) {
		t.Fatal("backwards time must not refill")
	}
}

func TestTokenBucketRateLongRun(t *testing.T) {
	b, _ := NewTokenBucket(2, 4) // 2 tokens/s
	now := t0
	granted := 0
	for i := 0; i < 1000; i++ {
		now = now.Add(100 * time.Millisecond)
		if b.Allow(now, 1) {
			granted++
		}
	}
	// 100 s of simulated time at 2 tok/s => ~200 grants (+ initial burst).
	if granted < 195 || granted > 210 {
		t.Fatalf("granted = %d, want ~200", granted)
	}
}

func campaignNet(nBlocks int) (*netsim.Network, []netsim.BlockID) {
	net := netsim.NewNetwork(9)
	var ids []netsim.BlockID
	for i := 0; i < nBlocks; i++ {
		blk := &netsim.Block{ID: netsim.MakeBlockID(10, byte(i>>8), byte(i)), Seed: uint64(i)}
		for h := 0; h < 60; h++ {
			blk.Behaviors[h] = netsim.Intermittent{P: 0.7, Seed: uint64(i*256 + h)}
		}
		net.AddBlock(blk)
		ids = append(ids, blk.ID)
	}
	return net, ids
}

func TestCampaignRun(t *testing.T) {
	net, ids := campaignNet(20)
	c := &Campaign{Net: net, Start: t0, Workers: 8, Seed: 3}
	res, err := c.Run(ids, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 20 {
		t.Fatalf("results = %d", len(res))
	}
	for id, r := range res {
		if len(r.Short) != 300 {
			t.Fatalf("block %s has %d samples", id, len(r.Short))
		}
		est := r.Estimator.LongTerm()
		if math.Abs(est-0.7) > 0.1 {
			t.Fatalf("block %s estimate = %v, want ~0.7", id, est)
		}
		if r.Skipped != 0 {
			t.Fatalf("unexpected skips without budget: %d", r.Skipped)
		}
	}
}

func TestCampaignSparseExcluded(t *testing.T) {
	net, ids := campaignNet(3)
	sparse := &netsim.Block{ID: netsim.MakeBlockID(99, 0, 0), Seed: 1}
	sparse.Behaviors[0] = netsim.AlwaysOn{}
	net.AddBlock(sparse)
	ids = append(ids, sparse.ID)
	c := &Campaign{Net: net, Start: t0, Seed: 3}
	res, err := c.Run(ids, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res[sparse.ID]; ok {
		t.Fatal("sparse block should be excluded")
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
}

func TestCampaignBudgetSkipsRounds(t *testing.T) {
	net, ids := campaignNet(30)
	// Budget far below 30 blocks/round x 15 tokens: some rounds skip.
	budget, err := NewTokenBucket(0.2, 60) // 0.2 tokens per (virtual) second
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{
		Net: net, Start: t0, Seed: 3, Budget: budget,
		Prober: trinocular.Config{MaxProbesPerRound: 15},
	}
	res, err := c.Run(ids, 100)
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, r := range res {
		skipped += r.Skipped
		if len(r.Short) != 100 {
			t.Fatal("series must stay on the round grid even when skipping")
		}
	}
	if skipped == 0 {
		t.Fatal("tight budget should skip rounds")
	}
	// 660 s/round * 0.2 tok/s = 132 tokens/round = ~8 block-rounds of 15.
	// With 30 blocks wanting rounds, roughly 2/3 should be skipped.
	frac := float64(skipped) / float64(30*100)
	if frac < 0.4 || frac > 0.9 {
		t.Fatalf("skip fraction = %v", frac)
	}
}

func TestCampaignErrors(t *testing.T) {
	if _, err := (&Campaign{}).Run(nil, 10); err == nil {
		t.Fatal("nil network should error")
	}
	net, ids := campaignNet(1)
	if _, err := (&Campaign{Net: net}).Run(ids, 0); err == nil {
		t.Fatal("zero rounds should error")
	}
	if _, err := (&Campaign{Net: net, Start: t0}).Run([]netsim.BlockID{netsim.MakeBlockID(1, 2, 3)}, 5); err == nil {
		t.Fatal("unknown block should error")
	}
}

func TestCampaignEventsRecorded(t *testing.T) {
	net := netsim.NewNetwork(5)
	blk := &netsim.Block{ID: netsim.MakeBlockID(20, 0, 0), Seed: 2}
	for h := 0; h < 50; h++ {
		blk.Behaviors[h] = netsim.AlwaysOn{}
	}
	oStart := t0.Add(100 * 660 * time.Second)
	blk.Outages = []netsim.Interval{{Start: oStart, End: oStart.Add(4 * time.Hour)}}
	net.AddBlock(blk)
	c := &Campaign{Net: net, Start: t0, Seed: 7}
	res, err := c.Run([]netsim.BlockID{blk.ID}, 300)
	if err != nil {
		t.Fatal(err)
	}
	ev := res[blk.ID].Events
	if len(ev) != 2 || !ev[0].Down || ev[1].Down {
		t.Fatalf("events = %+v", ev)
	}
	var _ core.OutageEvent = ev[0]
}
