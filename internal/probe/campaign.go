package probe

import (
	"fmt"
	"sync"
	"time"

	"sleepnet/internal/core"
	"sleepnet/internal/netsim"
	"sleepnet/internal/trinocular"
)

// Campaign drives a set of blocks through synchronized probing rounds —
// the way a real deployment works: all blocks advance through round r
// before any block sees round r+1, with a bounded worker pool and an
// optional global rate budget. (The per-block pipeline in internal/core
// runs blocks independently, which is equivalent for analysis but does not
// model a shared probing budget.)
type Campaign struct {
	Net    *netsim.Network
	Start  time.Time
	Period time.Duration
	// Prober carries the Trinocular policy.
	Prober trinocular.Config
	// Workers bounds per-round parallelism (default 4).
	Workers int
	// Budget, when set, caps aggregate probes; blocks whose round does not
	// fit the budget skip the round (recorded as a missing observation).
	Budget *TokenBucket
	// InitialA seeds the estimators.
	InitialA float64
	Seed     uint64
}

// BlockResult accumulates one block's campaign state.
type BlockResult struct {
	ID        netsim.BlockID
	Estimator *core.Estimator
	// Short is the recorded Âs value per round; NaN-free, rounds skipped
	// by the budget hold the previous value.
	Short []float64
	// Skipped counts rounds lost to the probe budget.
	Skipped int
	// Events are outage transitions.
	Events []core.OutageEvent

	// The remaining counters are maintained by the Supervisor; a plain
	// Campaign leaves them zero.

	// FailedRounds counts probed rounds that produced no usable observation
	// (every probe died locally or was eaten by rate limiting); such rounds
	// hold the previous Âs and are gap-filled downstream.
	FailedRounds int
	// Quarantined counts rounds skipped because the block's circuit breaker
	// was open.
	Quarantined int
	// Trips counts how many times the circuit breaker opened.
	Trips int
	// Retries, SendErrors and RateLimited accumulate the prober's per-round
	// fault counters.
	Retries     int
	SendErrors  int
	RateLimited int
	// Panics counts probe-round panics the supervisor recovered.
	Panics int
}

// Run probes all given blocks for the given number of rounds in lockstep.
// It returns per-block results keyed by block id. Blocks rejected as too
// sparse are omitted from the result with no error (matching the paper's
// policy of silently excluding them from probing).
func (c *Campaign) Run(ids []netsim.BlockID, rounds int) (map[netsim.BlockID]*BlockResult, error) {
	if c.Net == nil {
		return nil, fmt.Errorf("probe: campaign needs a network")
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("probe: campaign needs positive rounds")
	}
	period := c.Period
	if period <= 0 {
		period = 660 * time.Second
	}
	workers := c.Workers
	if workers <= 0 {
		workers = 4
	}
	initialA := c.InitialA
	if initialA == 0 {
		initialA = 0.5
	}

	prober := trinocular.New(c.Net, c.Prober, c.Seed)
	results := make(map[netsim.BlockID]*BlockResult)
	var tracked []netsim.BlockID
	for _, id := range ids {
		blk := c.Net.Block(id)
		if blk == nil {
			return nil, fmt.Errorf("probe: block %s not in network", id)
		}
		if err := prober.AddBlock(id, blk.EverActive()); err != nil {
			continue // sparse: excluded by policy
		}
		tracked = append(tracked, id)
		results[id] = &BlockResult{
			ID:        id,
			Estimator: core.NewEstimator(initialA),
			Short:     make([]float64, 0, rounds),
		}
	}

	// Lockstep rounds: a worker pool sweeps the tracked blocks each round.
	// The prober supports concurrent rounds for distinct blocks, and each
	// block's result is only touched by the worker that drew it, so no
	// locking is needed beyond the channel.
	budgetTokens := float64(c.Prober.MaxProbesPerRound)
	if budgetTokens <= 0 {
		budgetTokens = 15
	}
	for r := 0; r < rounds; r++ {
		now := c.Start.Add(time.Duration(r) * period)
		var wg sync.WaitGroup
		ch := make(chan netsim.BlockID)
		errCh := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for id := range ch {
					res := results[id]
					if c.Budget != nil && !c.Budget.Allow(now, budgetTokens) {
						res.Skipped++
						res.Short = append(res.Short, lastOr(res.Short, initialA))
						continue
					}
					obs, err := prober.ProbeRound(id, now, res.Estimator.Operational())
					if err != nil {
						select {
						case errCh <- err:
						default:
						}
						continue
					}
					res.Estimator.Observe(obs.Positive, obs.Total)
					res.Short = append(res.Short, res.Estimator.ShortTerm())
					if obs.Changed {
						res.Events = append(res.Events, core.OutageEvent{Round: r, Down: !obs.Up})
					}
				}
			}()
		}
		for _, id := range tracked {
			ch <- id
		}
		close(ch)
		wg.Wait()
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
	}
	return results, nil
}

func lastOr(s []float64, def float64) float64 {
	if len(s) == 0 {
		return def
	}
	return s[len(s)-1]
}
