package probe

import (
	"fmt"
	"sync"
	"time"

	"sleepnet/internal/core"
	"sleepnet/internal/metrics"
	"sleepnet/internal/netsim"
	"sleepnet/internal/trinocular"
)

// Supervisor is the resilient variant of Campaign: the same lockstep round
// scheduler, hardened for a hostile measurement path. Probe rounds that
// produce no usable observation (vantage blackout, rate limiting) are
// recorded as failed and gap-filled downstream instead of poisoning the
// estimators; a per-block circuit breaker quarantines blocks whose recent
// failure rate crosses a threshold, so a rate-limiting gateway stops
// burning probe budget; worker panics are recovered and charged to the
// block rather than killing the campaign; and the full campaign state is
// periodically checkpointed to disk so a killed run resumes where it
// stopped.
type Supervisor struct {
	Campaign
	// Breaker tunes the per-block circuit breaker; the zero value uses
	// defaults (trip at >50% failures over the last 10 rounds, 10-round
	// cooldown).
	Breaker BreakerConfig
	// CheckpointPath, when set, enables periodic checkpointing to this file.
	CheckpointPath string
	// CheckpointEvery is the number of rounds between checkpoints (default 10).
	CheckpointEvery int
	// Resume loads CheckpointPath (if it exists) and continues from it
	// instead of starting at round 0. Resuming replays any rounds probed
	// after the last checkpoint; probing is deterministic in virtual time,
	// so the replay reproduces them exactly.
	Resume bool
	// Metrics, when non-nil, receives supervisor counters (breaker state
	// transitions, recovered panics, quarantined and budget-skipped rounds)
	// and the checkpoint write-latency histogram; it is also forwarded to
	// the prober unless the prober carries its own registry.
	Metrics *metrics.Registry

	// stopAfterRound, when positive, makes Run return ErrStopped after
	// completing that many rounds — the test hook that simulates a killed
	// process for checkpoint/resume tests.
	stopAfterRound int
	// injectPanic, when set, is called before each block's probe round —
	// the test hook for the panic-recovery path.
	injectPanic func(id netsim.BlockID, round int)

	// pm caches the supervisor's instruments for the current Run; all nil
	// (no-op) when Metrics is nil.
	pm supervisorMetrics
}

// supervisorMetrics caches the supervisor's instruments.
type supervisorMetrics struct {
	breakerOpened     *metrics.Counter
	breakerHalfOpen   *metrics.Counter
	breakerClosed     *metrics.Counter
	panicsRecovered   *metrics.Counter
	roundsQuarantined *metrics.Counter
	roundsBudgetSkip  *metrics.Counter
	roundsFailed      *metrics.Counter
	checkpoints       *metrics.Counter
	checkpointSeconds *metrics.Histogram
	checkpointBytes   *metrics.Histogram
}

func newSupervisorMetrics(r *metrics.Registry) supervisorMetrics {
	if r == nil {
		return supervisorMetrics{}
	}
	return supervisorMetrics{
		breakerOpened:     r.Counter("supervisor.breaker_opened"),
		breakerHalfOpen:   r.Counter("supervisor.breaker_half_open"),
		breakerClosed:     r.Counter("supervisor.breaker_closed"),
		panicsRecovered:   r.Counter("supervisor.panics_recovered"),
		roundsQuarantined: r.Counter("supervisor.rounds_quarantined"),
		roundsBudgetSkip:  r.Counter("supervisor.rounds_budget_skipped"),
		roundsFailed:      r.Counter("supervisor.rounds_failed"),
		checkpoints:       r.Counter("supervisor.checkpoints_written"),
		checkpointSeconds: r.Histogram("supervisor.checkpoint_write_seconds", metrics.UnitSeconds, metrics.ExpBuckets(1e-5, 10, 8)),
		checkpointBytes:   r.Histogram("supervisor.checkpoint_bytes", "bytes", metrics.ExpBuckets(1024, 4, 10)),
	}
}

// ErrStopped is returned by Supervisor.Run when the stop-after-round test
// hook fires, simulating a killed process.
var ErrStopped = fmt.Errorf("probe: supervisor stopped early")

// BreakerConfig tunes the per-block circuit breaker.
type BreakerConfig struct {
	// Window is how many recent rounds the failure rate is computed over
	// (default 10).
	Window int
	// FailureThreshold is the failure fraction over the window that trips
	// the breaker (default 0.5).
	FailureThreshold float64
	// MinSamples is the minimum number of rounds in the window before the
	// breaker may trip (default 5), so one early failure cannot quarantine
	// a block.
	MinSamples int
	// Cooldown is how many rounds an open breaker skips before letting one
	// trial round through (half-open) (default 10).
	Cooldown int
	// Disabled turns the breaker off entirely.
	Disabled bool
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10
	}
	return c
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one block's circuit breaker: closed (probing normally), open
// (quarantined, skipping rounds), or half-open (letting one trial round
// through after the cooldown).
type breaker struct {
	cfg          BreakerConfig
	state        int
	cooldownLeft int
	trips        int
	recent       []bool // ring buffer of recent round outcomes, true = failed
	head         int    // next write position
	count        int    // filled entries
}

func newBreaker(cfg BreakerConfig) *breaker {
	cfg = cfg.withDefaults()
	return &breaker{cfg: cfg, recent: make([]bool, cfg.Window)}
}

// allow reports whether the block may probe this round, advancing the
// cooldown of an open breaker.
func (b *breaker) allow() bool {
	if b.cfg.Disabled || b.state == breakerClosed || b.state == breakerHalfOpen {
		return true
	}
	b.cooldownLeft--
	if b.cooldownLeft <= 0 {
		b.state = breakerHalfOpen
		return true
	}
	return false
}

// record folds one probed round's outcome into the breaker.
func (b *breaker) record(failed bool) {
	if b.cfg.Disabled {
		return
	}
	if b.state == breakerHalfOpen {
		if failed {
			// The trial round failed: back to quarantine.
			b.reopen()
		} else {
			// Recovered: close and forget the failure history.
			b.state = breakerClosed
			b.head, b.count = 0, 0
		}
		return
	}
	b.recent[b.head] = failed
	b.head = (b.head + 1) % len(b.recent)
	if b.count < len(b.recent) {
		b.count++
	}
	if b.count < b.cfg.MinSamples {
		return
	}
	fails := 0
	for i := 0; i < b.count; i++ {
		if b.recent[i] {
			fails++
		}
	}
	if float64(fails)/float64(b.count) > b.cfg.FailureThreshold {
		b.reopen()
	}
}

func (b *breaker) reopen() {
	b.state = breakerOpen
	b.cooldownLeft = b.cfg.Cooldown
	b.trips++
	b.head, b.count = 0, 0
	for i := range b.recent {
		b.recent[i] = false
	}
}

// Run probes all given blocks for the given number of rounds in lockstep,
// like Campaign.Run, with retry-aware failure accounting, circuit breaking,
// panic recovery, and optional checkpoint/resume.
func (s *Supervisor) Run(ids []netsim.BlockID, rounds int) (map[netsim.BlockID]*BlockResult, error) {
	if s.Net == nil {
		return nil, fmt.Errorf("probe: supervisor needs a network")
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("probe: supervisor needs positive rounds")
	}
	period := s.Period
	if period <= 0 {
		period = 660 * time.Second
	}
	workers := s.Workers
	if workers <= 0 {
		workers = 4
	}
	initialA := s.InitialA
	if initialA == 0 {
		initialA = 0.5
	}
	every := s.CheckpointEvery
	if every <= 0 {
		every = 10
	}

	s.pm = newSupervisorMetrics(s.Metrics)
	proberCfg := s.Prober
	if proberCfg.Metrics == nil {
		proberCfg.Metrics = s.Metrics
	}
	prober := trinocular.New(s.Net, proberCfg, s.Seed)
	results := make(map[netsim.BlockID]*BlockResult)
	breakers := make(map[netsim.BlockID]*breaker)
	var tracked []netsim.BlockID
	for _, id := range ids {
		blk := s.Net.Block(id)
		if blk == nil {
			return nil, fmt.Errorf("probe: block %s not in network", id)
		}
		if err := prober.AddBlock(id, blk.EverActive()); err != nil {
			continue // sparse: excluded by policy
		}
		tracked = append(tracked, id)
		results[id] = &BlockResult{
			ID:        id,
			Estimator: core.NewEstimator(initialA),
			Short:     make([]float64, 0, rounds),
		}
		breakers[id] = newBreaker(s.Breaker)
	}

	startRound := 0
	if s.Resume && s.CheckpointPath != "" {
		next, err := s.loadInto(prober, results, breakers)
		if err != nil {
			return nil, err
		}
		startRound = next
	}

	budgetTokens := float64(s.Prober.MaxProbesPerRound)
	if budgetTokens <= 0 {
		budgetTokens = 15
	}
	for r := startRound; r < rounds; r++ {
		now := s.Start.Add(time.Duration(r) * period)
		var wg sync.WaitGroup
		ch := make(chan netsim.BlockID)
		errCh := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for id := range ch {
					res := results[id]
					br := breakers[id]
					prevState := br.state
					allowed := br.allow()
					if br.state == breakerHalfOpen && prevState == breakerOpen {
						s.pm.breakerHalfOpen.Inc()
					}
					if !allowed {
						res.Quarantined++
						s.pm.roundsQuarantined.Inc()
						res.Short = append(res.Short, lastOr(res.Short, initialA))
						continue
					}
					if s.Budget != nil && !s.Budget.Allow(now, budgetTokens) {
						res.Skipped++
						s.pm.roundsBudgetSkip.Inc()
						res.Short = append(res.Short, lastOr(res.Short, initialA))
						continue
					}
					obs, failed, err := s.probeOne(prober, id, r, now, res)
					if err != nil {
						select {
						case errCh <- err:
						default:
						}
						continue
					}
					res.Retries += obs.Retries
					res.SendErrors += obs.SendErrors
					res.RateLimited += obs.RateLimited
					prevState = br.state
					br.record(failed)
					if br.state != prevState {
						switch br.state {
						case breakerOpen:
							s.pm.breakerOpened.Inc()
						case breakerClosed:
							s.pm.breakerClosed.Inc()
						}
					}
					if failed {
						s.pm.roundsFailed.Inc()
						// No usable observation: record the gap, hold the
						// previous estimate, and let downstream gap-filling
						// treat the round as a missing sample.
						res.FailedRounds++
						res.Short = append(res.Short, lastOr(res.Short, initialA))
						continue
					}
					res.Estimator.Observe(obs.Positive, obs.Total)
					res.Short = append(res.Short, res.Estimator.ShortTerm())
					if obs.Changed {
						res.Events = append(res.Events, core.OutageEvent{Round: r, Down: !obs.Up})
					}
				}
			}()
		}
		for _, id := range tracked {
			ch <- id
		}
		close(ch)
		wg.Wait()
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
		if s.CheckpointPath != "" && (r+1)%every == 0 && r+1 < rounds {
			if err := s.save(prober, results, breakers, r+1); err != nil {
				return nil, err
			}
		}
		if s.stopAfterRound > 0 && r+1 >= s.stopAfterRound {
			s.syncTrips(results, breakers)
			return results, ErrStopped
		}
	}
	s.syncTrips(results, breakers)
	return results, nil
}

// probeOne runs one block's probe round with panic recovery: a panic is
// charged to the block as a failed round instead of killing the campaign.
// (The prober's in-memory state for the block is left as the panic found
// it; the next round proceeds from there.)
func (s *Supervisor) probeOne(prober *trinocular.Prober, id netsim.BlockID, round int, now time.Time, res *BlockResult) (obs trinocular.RoundObs, failed bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			res.Panics++
			s.pm.panicsRecovered.Inc()
			obs, failed, err = trinocular.RoundObs{}, true, nil
		}
	}()
	if s.injectPanic != nil {
		s.injectPanic(id, round)
	}
	obs, err = prober.ProbeRound(id, now, res.Estimator.Operational())
	if err != nil {
		return obs, false, err
	}
	return obs, obs.Failed(), nil
}

func (s *Supervisor) syncTrips(results map[netsim.BlockID]*BlockResult, breakers map[netsim.BlockID]*breaker) {
	for id, res := range results {
		res.Trips = breakers[id].trips
	}
}
