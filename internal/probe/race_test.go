package probe

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"sleepnet/internal/metrics"
	"sleepnet/internal/netsim"
)

// TestSupervisorMetricsRaceStress drives two supervised campaigns
// concurrently over one shared registry — many workers each, one campaign
// with an injected vantage fault so the breaker path is exercised — while
// other goroutines continuously snapshot the registry. Run under -race this
// pins the concurrency safety of the whole instrumented probe path.
func TestSupervisorMetricsRaceStress(t *testing.T) {
	reg := metrics.New()

	runCampaign := func(seed uint64, faulty bool) (map[netsim.BlockID]*BlockResult, error) {
		net, ids := campaignNet(10)
		if faulty {
			net.SetTap(failTap{block: ids[1], until: t0.Add(1000 * time.Hour)})
		}
		s := &Supervisor{
			Campaign: Campaign{Net: net, Start: t0, Workers: 8, Seed: seed},
			Metrics:  reg,
		}
		return s.Run(ids, 80)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := runCampaign(uint64(i+3), i == 1); err != nil {
				errs <- err
			}
		}(i)
	}

	// Concurrent readers: snapshots must be consistent mid-flight.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					snap := reg.Snapshot()
					if snap.Counter("trinocular.probes_sent") < 0 {
						panic("negative counter")
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	snap := reg.Snapshot()
	// Quarantined rounds never reach the prober, so probed plus quarantined
	// must account for every block-round of both campaigns exactly.
	probed := snap.Counter("trinocular.rounds")
	quarantined := snap.Counter("supervisor.rounds_quarantined")
	if probed+quarantined != 2*10*80 {
		t.Fatalf("rounds %d + quarantined %d = %d, want %d",
			probed, quarantined, probed+quarantined, 2*10*80)
	}
	if snap.Counter("trinocular.probes_sent") == 0 {
		t.Fatal("no probes counted")
	}
	if snap.Counter("supervisor.breaker_opened") == 0 {
		t.Fatal("faulty campaign never opened the breaker")
	}
	if snap.Counter("supervisor.rounds_quarantined") == 0 {
		t.Fatal("faulty campaign never quarantined a round")
	}
}

// TestSupervisorMetricsDeterministicAcrossRuns runs the same seeded campaign
// twice with separate registries and requires the deterministic snapshots
// (timing histograms stripped) to serialize byte-identically — the
// acceptance bar for reproducible run-cost accounting.
func TestSupervisorMetricsDeterministicAcrossRuns(t *testing.T) {
	run := func() []byte {
		reg := metrics.New()
		net, ids := campaignNet(8)
		net.SetTap(failTap{block: ids[2], until: t0.Add(15 * 660 * time.Second)})
		s := &Supervisor{
			Campaign: Campaign{Net: net, Start: t0, Workers: 5, Seed: 17},
			Metrics:  reg,
		}
		if _, err := s.Run(ids, 90); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.Snapshot().Deterministic().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("metrics snapshots differ across same-seed runs:\n%s\nvs\n%s", a, b)
	}
}
