package probe

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"sleepnet/internal/core"
	"sleepnet/internal/durable"
	"sleepnet/internal/netsim"
	"sleepnet/internal/trinocular"
)

// checkpointVersion guards the on-disk format; a mismatch refuses to resume
// rather than silently misreading state.
const checkpointVersion = 1

// breakerSnapshot is the serializable state of one block's circuit breaker.
type breakerSnapshot struct {
	State        int    `json:"state"`
	CooldownLeft int    `json:"cooldown_left"`
	Trips        int    `json:"trips"`
	Recent       []bool `json:"recent"` // window contents in insertion order
}

func (b *breaker) snapshot() breakerSnapshot {
	s := breakerSnapshot{State: b.state, CooldownLeft: b.cooldownLeft, Trips: b.trips}
	// Unroll the ring into insertion order (oldest first).
	start := (b.head - b.count + len(b.recent)) % len(b.recent)
	for i := 0; i < b.count; i++ {
		s.Recent = append(s.Recent, b.recent[(start+i)%len(b.recent)])
	}
	return s
}

func (b *breaker) restore(s breakerSnapshot) error {
	if s.State < breakerClosed || s.State > breakerHalfOpen {
		return fmt.Errorf("probe: checkpoint: bad breaker state %d", s.State)
	}
	if len(s.Recent) > len(b.recent) {
		return fmt.Errorf("probe: checkpoint: breaker window %d exceeds configured %d", len(s.Recent), len(b.recent))
	}
	b.state = s.State
	b.cooldownLeft = s.CooldownLeft
	b.trips = s.Trips
	b.head, b.count = 0, 0
	for i := range b.recent {
		b.recent[i] = false
	}
	for _, f := range s.Recent {
		b.recent[b.head] = f
		b.head = (b.head + 1) % len(b.recent)
		b.count++
	}
	return nil
}

// checkpointBlock is one block's campaign state in the checkpoint file.
type checkpointBlock struct {
	ID           netsim.BlockID      `json:"id"`
	Estimator    core.EstimatorState `json:"estimator"`
	Short        []float64           `json:"short"`
	Skipped      int                 `json:"skipped"`
	FailedRounds int                 `json:"failed_rounds"`
	Quarantined  int                 `json:"quarantined"`
	Retries      int                 `json:"retries"`
	SendErrors   int                 `json:"send_errors"`
	RateLimited  int                 `json:"rate_limited"`
	Panics       int                 `json:"panics"`
	Events       []core.OutageEvent  `json:"events,omitempty"`
	Breaker      breakerSnapshot     `json:"breaker"`
}

// checkpoint is the versioned on-disk campaign state.
type checkpoint struct {
	Version   int               `json:"version"`
	Seed      uint64            `json:"seed"`
	Start     time.Time         `json:"start"`
	NextRound int               `json:"next_round"`
	Prober    trinocular.State  `json:"prober"`
	Budget    *TokenBucketState `json:"budget,omitempty"`
	Blocks    []checkpointBlock `json:"blocks"`
}

// save writes the campaign state crash-safely (temp file, fsync, atomic
// rename, directory fsync), so neither a kill mid-write nor a power cut
// straight after can leave a torn or missing checkpoint — the previous one
// stays intact until the new one is durably in place.
func (s *Supervisor) save(prober *trinocular.Prober, results map[netsim.BlockID]*BlockResult, breakers map[netsim.BlockID]*breaker, nextRound int) error {
	ck := checkpoint{
		Version:   checkpointVersion,
		Seed:      s.Seed,
		Start:     s.Start,
		NextRound: nextRound,
		Prober:    prober.ExportState(),
	}
	if s.Budget != nil {
		st := s.Budget.State()
		ck.Budget = &st
	}
	for id, res := range results {
		ck.Blocks = append(ck.Blocks, checkpointBlock{
			ID:           id,
			Estimator:    res.Estimator.State(),
			Short:        res.Short,
			Skipped:      res.Skipped,
			FailedRounds: res.FailedRounds,
			Quarantined:  res.Quarantined,
			Retries:      res.Retries,
			SendErrors:   res.SendErrors,
			RateLimited:  res.RateLimited,
			Panics:       res.Panics,
			Events:       res.Events,
			Breaker:      breakers[id].snapshot(),
		})
	}
	sort.Slice(ck.Blocks, func(i, j int) bool { return ck.Blocks[i].ID < ck.Blocks[j].ID })

	stop := s.pm.checkpointSeconds.Time()
	data, err := json.Marshal(&ck)
	if err != nil {
		return fmt.Errorf("probe: checkpoint: %w", err)
	}
	if err := durable.WriteFileAtomic(s.CheckpointPath, data, 0o644); err != nil {
		return fmt.Errorf("probe: checkpoint: %w", err)
	}
	stop()
	s.pm.checkpoints.Inc()
	s.pm.checkpointBytes.Observe(float64(len(data)))
	return nil
}

// loadInto restores a checkpoint into the freshly constructed campaign
// state and returns the round to resume at. A missing file is not an error:
// the campaign simply starts from round 0.
func (s *Supervisor) loadInto(prober *trinocular.Prober, results map[netsim.BlockID]*BlockResult, breakers map[netsim.BlockID]*breaker) (int, error) {
	data, err := os.ReadFile(s.CheckpointPath)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("probe: checkpoint: %w", err)
	}
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return 0, fmt.Errorf("probe: checkpoint %s: %w", s.CheckpointPath, err)
	}
	if ck.Version != checkpointVersion {
		return 0, fmt.Errorf("probe: checkpoint %s: version %d, want %d", s.CheckpointPath, ck.Version, checkpointVersion)
	}
	if ck.Seed != s.Seed {
		return 0, fmt.Errorf("probe: checkpoint %s: seed %d does not match campaign seed %d", s.CheckpointPath, ck.Seed, s.Seed)
	}
	if !ck.Start.Equal(s.Start) {
		return 0, fmt.Errorf("probe: checkpoint %s: start %v does not match campaign start %v", s.CheckpointPath, ck.Start, s.Start)
	}
	if len(ck.Blocks) != len(results) {
		return 0, fmt.Errorf("probe: checkpoint %s: %d blocks, campaign tracks %d", s.CheckpointPath, len(ck.Blocks), len(results))
	}
	for _, cb := range ck.Blocks {
		res, ok := results[cb.ID]
		if !ok {
			return 0, fmt.Errorf("probe: checkpoint %s: block %s not tracked by this campaign", s.CheckpointPath, cb.ID)
		}
		res.Estimator = core.EstimatorFromState(cb.Estimator)
		res.Short = append(res.Short[:0], cb.Short...)
		res.Skipped = cb.Skipped
		res.FailedRounds = cb.FailedRounds
		res.Quarantined = cb.Quarantined
		res.Retries = cb.Retries
		res.SendErrors = cb.SendErrors
		res.RateLimited = cb.RateLimited
		res.Panics = cb.Panics
		res.Events = cb.Events
		if err := breakers[cb.ID].restore(cb.Breaker); err != nil {
			return 0, err
		}
	}
	if err := prober.RestoreState(ck.Prober); err != nil {
		return 0, fmt.Errorf("probe: checkpoint %s: %w", s.CheckpointPath, err)
	}
	if ck.Budget != nil && s.Budget != nil {
		b, err := TokenBucketFromState(*ck.Budget)
		if err != nil {
			return 0, fmt.Errorf("probe: checkpoint %s: %w", s.CheckpointPath, err)
		}
		s.Budget = b
	}
	if ck.NextRound < 0 {
		return 0, fmt.Errorf("probe: checkpoint %s: negative next round", s.CheckpointPath)
	}
	return ck.NextRound, nil
}
