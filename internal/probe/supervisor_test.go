package probe

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sleepnet/internal/netsim"
)

// failTap is a minimal netsim.Tap failing every probe to one block before a
// cutoff time — a deterministic stand-in for a vantage problem that affects
// a single target path.
type failTap struct {
	block netsim.BlockID
	until time.Time
}

func (f failTap) Outbound(dst netsim.Addr, now time.Time) (time.Time, netsim.TapVerdict) {
	if dst.Block == f.block && now.Before(f.until) {
		return now, netsim.TapSendError
	}
	return now, netsim.TapDeliver
}

func (f failTap) Inbound(dst netsim.Addr, reply []byte, now time.Time) []byte { return reply }

func TestSupervisorMatchesCampaignWithoutFaults(t *testing.T) {
	net1, ids1 := campaignNet(12)
	c := &Campaign{Net: net1, Start: t0, Workers: 6, Seed: 3}
	want, err := c.Run(ids1, 120)
	if err != nil {
		t.Fatal(err)
	}
	net2, ids2 := campaignNet(12)
	s := &Supervisor{Campaign: Campaign{Net: net2, Start: t0, Workers: 6, Seed: 3}}
	got, err := s.Run(ids2, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("blocks: %d vs %d", len(got), len(want))
	}
	for id, w := range want {
		g := got[id]
		if len(g.Short) != len(w.Short) {
			t.Fatalf("block %s: %d vs %d samples", id, len(g.Short), len(w.Short))
		}
		for i := range w.Short {
			if g.Short[i] != w.Short[i] {
				t.Fatalf("block %s round %d: %v vs %v", id, i, g.Short[i], w.Short[i])
			}
		}
		if g.Estimator.State() != w.Estimator.State() {
			t.Fatalf("block %s estimator state diverged", id)
		}
		if g.FailedRounds != 0 || g.Quarantined != 0 || g.Trips != 0 || g.Panics != 0 {
			t.Fatalf("block %s: fault counters nonzero without faults: %+v", id, g)
		}
	}
}

func TestSupervisorBreakerQuarantines(t *testing.T) {
	net, ids := campaignNet(6)
	bad := ids[2]
	net.SetTap(failTap{block: bad, until: t0.Add(1000 * time.Hour)})
	s := &Supervisor{Campaign: Campaign{Net: net, Start: t0, Workers: 4, Seed: 3}}
	res, err := s.Run(ids, 60)
	if err != nil {
		t.Fatal(err)
	}
	b := res[bad]
	if b.Trips < 2 {
		t.Fatalf("breaker trips = %d, want >= 2", b.Trips)
	}
	if b.Quarantined < 20 {
		t.Fatalf("quarantined rounds = %d, want most of the run", b.Quarantined)
	}
	if b.FailedRounds < 5 {
		t.Fatalf("failed rounds = %d, want >= MinSamples", b.FailedRounds)
	}
	if len(b.Short) != 60 {
		t.Fatalf("series length %d, want 60 (quarantined rounds hold previous value)", len(b.Short))
	}
	// The healthy blocks are untouched.
	for _, id := range ids {
		if id == bad {
			continue
		}
		if r := res[id]; r.Trips != 0 || r.Quarantined != 0 || r.FailedRounds != 0 {
			t.Fatalf("healthy block %s affected: %+v", id, r)
		}
	}
}

func TestSupervisorBreakerRecovers(t *testing.T) {
	net, ids := campaignNet(3)
	bad := ids[0]
	// Fail the block for the first 20 rounds, then let it heal.
	net.SetTap(failTap{block: bad, until: t0.Add(20 * 660 * time.Second)})
	s := &Supervisor{Campaign: Campaign{Net: net, Start: t0, Workers: 2, Seed: 3}}
	res, err := s.Run(ids, 120)
	if err != nil {
		t.Fatal(err)
	}
	b := res[bad]
	if b.Trips == 0 {
		t.Fatal("breaker never tripped during the failure window")
	}
	if b.Estimator.Rounds() < 60 {
		t.Fatalf("only %d observed rounds after recovery, want the healthy tail", b.Estimator.Rounds())
	}
}

func TestSupervisorPanicRecovery(t *testing.T) {
	net, ids := campaignNet(5)
	victim := ids[1]
	s := &Supervisor{Campaign: Campaign{Net: net, Start: t0, Workers: 3, Seed: 3}}
	s.injectPanic = func(id netsim.BlockID, round int) {
		if id == victim && round == 7 {
			panic("probe worker exploded")
		}
	}
	res, err := s.Run(ids, 40)
	if err != nil {
		t.Fatal(err)
	}
	v := res[victim]
	if v.Panics != 1 {
		t.Fatalf("panics = %d, want 1", v.Panics)
	}
	if v.FailedRounds != 1 {
		t.Fatalf("failed rounds = %d, want 1 (the panicked round)", v.FailedRounds)
	}
	if len(v.Short) != 40 {
		t.Fatalf("series length %d, want 40", len(v.Short))
	}
	for _, id := range ids {
		if id != victim && res[id].Panics != 0 {
			t.Fatalf("panic leaked to block %s", id)
		}
	}
}

// TestSupervisorCheckpointResume kills a checkpointed campaign mid-run and
// verifies that resuming reproduces the uninterrupted run exactly, breaker
// history and all.
func TestSupervisorCheckpointResume(t *testing.T) {
	const rounds = 80
	mk := func() (*Supervisor, []netsim.BlockID) {
		net, ids := campaignNet(8)
		// A block that fails for the first 30 rounds exercises failed-round,
		// breaker, and recovery state across the checkpoint boundary.
		net.SetTap(failTap{block: ids[3], until: t0.Add(30 * 660 * time.Second)})
		return &Supervisor{Campaign: Campaign{Net: net, Start: t0, Workers: 4, Seed: 11}}, ids
	}

	sa, idsA := mk()
	want, err := sa.Run(idsA, rounds)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	sb, idsB := mk()
	sb.CheckpointPath = ckpt
	sb.CheckpointEvery = 7
	sb.stopAfterRound = 38 // not a checkpoint boundary: resume must replay rounds 36-38
	if _, err := sb.Run(idsB, rounds); !errors.Is(err, ErrStopped) {
		t.Fatalf("stop hook: err = %v, want ErrStopped", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	sc, idsC := mk()
	sc.CheckpointPath = ckpt
	sc.CheckpointEvery = 7
	sc.Resume = true
	got, err := sc.Run(idsC, rounds)
	if err != nil {
		t.Fatal(err)
	}

	for id, w := range want {
		g := got[id]
		if len(g.Short) != len(w.Short) {
			t.Fatalf("block %s: %d vs %d samples", id, len(g.Short), len(w.Short))
		}
		for i := range w.Short {
			if g.Short[i] != w.Short[i] {
				t.Fatalf("block %s round %d: resumed %v vs uninterrupted %v", id, i, g.Short[i], w.Short[i])
			}
		}
		if g.Estimator.State() != w.Estimator.State() {
			t.Fatalf("block %s: estimator state diverged after resume", id)
		}
		if g.FailedRounds != w.FailedRounds || g.Quarantined != w.Quarantined || g.Trips != w.Trips {
			t.Fatalf("block %s: counters diverged: resumed %+v vs %+v", id, g, w)
		}
		if len(g.Events) != len(w.Events) {
			t.Fatalf("block %s: %d vs %d events", id, len(g.Events), len(w.Events))
		}
		for i := range w.Events {
			if g.Events[i] != w.Events[i] {
				t.Fatalf("block %s event %d: %+v vs %+v", id, i, g.Events[i], w.Events[i])
			}
		}
	}
}

func TestSupervisorResumeRejectsMismatchedCampaign(t *testing.T) {
	net, ids := campaignNet(4)
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	s := &Supervisor{Campaign: Campaign{Net: net, Start: t0, Seed: 1}}
	s.CheckpointPath = ckpt
	s.CheckpointEvery = 5
	s.stopAfterRound = 10
	if _, err := s.Run(ids, 40); !errors.Is(err, ErrStopped) {
		t.Fatal(err)
	}

	net2, ids2 := campaignNet(4)
	s2 := &Supervisor{Campaign: Campaign{Net: net2, Start: t0, Seed: 2}} // wrong seed
	s2.CheckpointPath = ckpt
	s2.Resume = true
	if _, err := s2.Run(ids2, 40); err == nil {
		t.Fatal("resume with mismatched seed must fail")
	}
	// A missing file is not an error: the run simply starts fresh.
	s3 := &Supervisor{Campaign: Campaign{Net: net2, Start: t0, Seed: 1}}
	s3.CheckpointPath = filepath.Join(t.TempDir(), "missing.ckpt")
	s3.Resume = true
	if _, err := s3.Run(ids2, 5); err != nil {
		t.Fatalf("missing checkpoint should start fresh: %v", err)
	}
}

func TestCampaignBudgetSkipHoldsPreviousShort(t *testing.T) {
	net, ids := campaignNet(30)
	budget, err := NewTokenBucket(0.2, 60)
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{Net: net, Start: t0, Seed: 3, Budget: budget}
	res, err := c.Run(ids, 100)
	if err != nil {
		t.Fatal(err)
	}
	totalSkipped := 0
	for id, r := range res {
		totalSkipped += r.Skipped
		if r.Skipped+r.Estimator.Rounds() != 100 {
			t.Fatalf("block %s: %d skipped + %d observed != 100 rounds", id, r.Skipped, r.Estimator.Rounds())
		}
		// A skipped round must hold the previous Âs: the series never moves
		// on a round the estimator did not observe. Detect skips as rounds
		// where consecutive values are exactly equal only when skipped > 0.
		if r.Skipped > 0 {
			holds := 0
			for i := 1; i < len(r.Short); i++ {
				if r.Short[i] == r.Short[i-1] {
					holds++
				}
			}
			if holds < r.Skipped-1 {
				t.Fatalf("block %s: %d skips but only %d held values", id, r.Skipped, holds)
			}
		}
	}
	if totalSkipped == 0 {
		t.Fatal("tight budget should skip rounds")
	}
}
