// Package probe provides the operational probing layer a deployment of the
// measurement system needs: a token-bucket rate limiter to cap aggregate
// probe rate (the paper's "do no harm" policy bounds probing to a small
// fraction of background radiation), and a round-lockstep campaign
// scheduler that drives many blocks through synchronized 11-minute rounds
// with bounded parallelism, feeding each block's estimator as observations
// arrive.
package probe

import (
	"fmt"
	"sync"
	"time"
)

// TokenBucket is a thread-safe token-bucket rate limiter over an injectable
// clock, so simulations and tests can drive it with virtual time.
type TokenBucket struct {
	mu       sync.Mutex
	rate     float64 // tokens per second
	capacity float64
	tokens   float64
	last     time.Time
}

// NewTokenBucket creates a bucket refilling at rate tokens/second with the
// given burst capacity, initially full. The first Allow call anchors the
// clock.
func NewTokenBucket(rate, capacity float64) (*TokenBucket, error) {
	if rate <= 0 || capacity <= 0 {
		return nil, fmt.Errorf("probe: token bucket needs positive rate and capacity (%v, %v)", rate, capacity)
	}
	return &TokenBucket{rate: rate, capacity: capacity, tokens: capacity}, nil
}

// Allow consumes n tokens at virtual time now and reports whether the
// request fits the budget. Calls must use non-decreasing times; earlier
// times are treated as equal to the latest seen.
func (b *TokenBucket) Allow(now time.Time, n float64) bool {
	if n <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.last = now
	}
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
		b.last = now
	}
	if b.tokens >= n {
		b.tokens -= n
		return true
	}
	return false
}

// TokenBucketState is the serializable snapshot of a TokenBucket, used by
// campaign checkpoints so a resumed run keeps the same budget position.
type TokenBucketState struct {
	Rate, Capacity, Tokens float64
	Last                   time.Time
}

// State snapshots the bucket.
func (b *TokenBucket) State() TokenBucketState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return TokenBucketState{Rate: b.rate, Capacity: b.capacity, Tokens: b.tokens, Last: b.last}
}

// TokenBucketFromState rebuilds a bucket from a snapshot.
func TokenBucketFromState(s TokenBucketState) (*TokenBucket, error) {
	b, err := NewTokenBucket(s.Rate, s.Capacity)
	if err != nil {
		return nil, err
	}
	b.tokens = s.Tokens
	b.last = s.Last
	return b, nil
}

// Available reports the current token balance at time now.
func (b *TokenBucket) Available(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tokens
	if !b.last.IsZero() && now.After(b.last) {
		t += now.Sub(b.last).Seconds() * b.rate
		if t > b.capacity {
			t = b.capacity
		}
	}
	return t
}
