package ipv4

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMarshalParseRoundTrip(t *testing.T) {
	h := &Header{
		TOS:      0,
		ID:       0x1234,
		DontFrag: true,
		TTL:      64,
		Protocol: ProtoICMP,
		Src:      Addr{192, 0, 2, 1},
		Dst:      Addr{10, 9, 8, 7},
	}
	payload := []byte("icmp goes here")
	pkt, err := h.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, pl, err := Parse(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != h.ID || got.TTL != 64 || got.Protocol != ProtoICMP ||
		got.Src != h.Src || got.Dst != h.Dst || !got.DontFrag {
		t.Fatalf("header = %+v", got)
	}
	if !bytes.Equal(pl, payload) {
		t.Fatalf("payload = %q", pl)
	}
	if int(got.TotalLen) != HeaderLen+len(payload) {
		t.Fatalf("total = %d", got.TotalLen)
	}
}

func TestMarshalDefaultTTL(t *testing.T) {
	h := &Header{Protocol: ProtoICMP}
	pkt, err := h.Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Parse(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.TTL != DefaultTTL {
		t.Fatalf("TTL = %d", got.TTL)
	}
}

func TestParseErrors(t *testing.T) {
	if _, _, err := Parse([]byte{0x45, 0}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
	pkt, _ := (&Header{Protocol: 1}).Marshal([]byte("x"))
	bad := append([]byte(nil), pkt...)
	bad[0] = 0x65 // version 6
	if _, _, err := Parse(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: %v", err)
	}
	bad = append([]byte(nil), pkt...)
	bad[0] = 0x46 // IHL 6 (options)
	if _, _, err := Parse(bad); !errors.Is(err, ErrOptions) {
		t.Fatalf("options: %v", err)
	}
	bad = append([]byte(nil), pkt...)
	bad[16] ^= 0xff // corrupt dst
	if _, _, err := Parse(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("checksum: %v", err)
	}
	// Total length beyond the buffer.
	bad = append([]byte(nil), pkt...)
	bad[2], bad[3] = 0xff, 0xff
	bad[10], bad[11] = 0, 0
	cksum := headerChecksum(bad[:HeaderLen])
	bad[10], bad[11] = byte(cksum>>8), byte(cksum)
	if _, _, err := Parse(bad); !errors.Is(err, ErrLength) {
		t.Fatalf("length: %v", err)
	}
}

func TestMarshalTooBig(t *testing.T) {
	h := &Header{Protocol: ProtoICMP}
	if _, err := h.Marshal(make([]byte, MaxPacket)); !errors.Is(err, ErrLength) {
		t.Fatalf("oversize: %v", err)
	}
}

func TestDecrementTTL(t *testing.T) {
	pkt, _ := (&Header{TTL: 10, Protocol: 1}).Marshal([]byte("p"))
	out, ok := DecrementTTL(pkt, 3)
	if !ok {
		t.Fatal("should survive 3 hops")
	}
	h, _, err := Parse(out)
	if err != nil {
		t.Fatalf("decremented packet invalid: %v", err)
	}
	if h.TTL != 7 {
		t.Fatalf("TTL = %d", h.TTL)
	}
	// Original untouched.
	if orig, _, _ := Parse(pkt); orig.TTL != 10 {
		t.Fatal("DecrementTTL must not mutate input")
	}
	// Dies in transit.
	if _, ok := DecrementTTL(pkt, 10); ok {
		t.Fatal("10 hops should kill TTL 10")
	}
	if _, ok := DecrementTTL(pkt, 0); !ok {
		t.Fatal("0 hops is a no-op")
	}
}

func TestAddrHelpers(t *testing.T) {
	a := Addr{1, 9, 21, 7}
	if a.String() != "1.9.21.7" {
		t.Fatalf("String = %q", a.String())
	}
	if got := AddrFromUint32(a.Uint32()); got != a {
		t.Fatalf("round trip = %v", got)
	}
}

func TestHeaderChecksumSelfVerifying(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := &Header{
			TOS:      byte(r.Intn(256)),
			ID:       uint16(r.Uint32()),
			DontFrag: r.Intn(2) == 0,
			TTL:      byte(1 + r.Intn(255)),
			Protocol: byte(r.Intn(256)),
		}
		r.Read(h.Src[:])
		r.Read(h.Dst[:])
		payload := make([]byte, r.Intn(100))
		r.Read(payload)
		pkt, err := h.Marshal(payload)
		if err != nil {
			return false
		}
		got, pl, err := Parse(pkt)
		if err != nil {
			return false
		}
		return got.Src == h.Src && got.Dst == h.Dst && got.ID == h.ID && bytes.Equal(pl, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBitFlipsDetected(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := &Header{TTL: 64, Protocol: ProtoICMP, Src: Addr{1, 2, 3, 4}, Dst: Addr{5, 6, 7, 8}}
		pkt, err := h.Marshal([]byte("payload"))
		if err != nil {
			return false
		}
		// Flip a bit in the address or ID fields (bytes 4..5, 12..19);
		// the header checksum must catch it.
		positions := []int{4, 5, 12, 13, 14, 15, 16, 17, 18, 19}
		pos := positions[r.Intn(len(positions))]
		pkt[pos] ^= byte(1) << uint(r.Intn(8))
		_, _, err = Parse(pkt)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	h := &Header{TTL: 64, Protocol: ProtoICMP, Src: Addr{1, 2, 3, 4}, Dst: Addr{5, 6, 7, 8}}
	payload := []byte("trinocular-probe")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Marshal(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	h := &Header{TTL: 64, Protocol: ProtoICMP, Src: Addr{1, 2, 3, 4}, Dst: Addr{5, 6, 7, 8}}
	pkt, _ := h.Marshal([]byte("trinocular-probe"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Parse(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
