// Package ipv4 implements the IPv4 header (RFC 791): marshalling and
// parsing with header checksum validation, plus the encapsulation helpers
// the prober and the simulated network use so that every probe travels as
// a full IPv4(ICMP) packet — exercising the same header construction,
// validation, and TTL handling a live prober would.
package ipv4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol numbers used here.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// HeaderLen is the length of a header without options; options are not
// used by the prober and are rejected on parse for simplicity and safety.
const HeaderLen = 20

// DefaultTTL is the initial TTL the prober stamps on probes.
const DefaultTTL = 64

// MaxPacket bounds accepted packet sizes (standard Ethernet MTU).
const MaxPacket = 1500

// Common errors.
var (
	ErrTruncated = errors.New("ipv4: packet truncated")
	ErrVersion   = errors.New("ipv4: not an IPv4 packet")
	ErrChecksum  = errors.New("ipv4: bad header checksum")
	ErrOptions   = errors.New("ipv4: options not supported")
	ErrLength    = errors.New("ipv4: inconsistent length")
)

// Addr is an IPv4 address as four octets.
type Addr [4]byte

// String renders the dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Uint32 packs the address big-endian.
func (a Addr) Uint32() uint32 { return binary.BigEndian.Uint32(a[:]) }

// AddrFromUint32 unpacks a big-endian address.
func AddrFromUint32(v uint32) Addr {
	var a Addr
	binary.BigEndian.PutUint32(a[:], v)
	return a
}

// Header is an IPv4 header without options.
type Header struct {
	TOS      byte
	ID       uint16
	DontFrag bool
	TTL      byte
	Protocol byte
	Src, Dst Addr
	// TotalLen is filled on parse; Marshal computes it from the payload.
	TotalLen uint16
}

// Marshal encodes the header followed by the payload, computing lengths
// and the header checksum.
func (h *Header) Marshal(payload []byte) ([]byte, error) {
	b, err := h.MarshalAppend(make([]byte, 0, HeaderLen+len(payload)), payload)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// MarshalAppend appends the encoded header followed by the payload to dst
// and returns the extended slice. Passing a scratch slice with spare
// capacity makes encoding allocation-free; the payload may not alias the
// spare capacity of dst.
//
//lint:hotpath: per-packet encode path shares the probe 0 allocs/op budget
func (h *Header) MarshalAppend(dst []byte, payload []byte) ([]byte, error) {
	total := HeaderLen + len(payload)
	if total > MaxPacket {
		return dst, fmt.Errorf("%w: %d bytes", ErrLength, total)
	}
	off := len(dst)
	var hdr [HeaderLen]byte
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	b := dst[off:]
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	if h.DontFrag {
		b[6] = 0x40
	}
	ttl := h.TTL
	if ttl == 0 {
		ttl = DefaultTTL
	}
	b[8] = ttl
	b[9] = h.Protocol
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(b[10:12], headerChecksum(b[:HeaderLen]))
	return dst, nil
}

// Parse decodes and validates a packet, returning the header and a view of
// the payload (not copied).
func Parse(b []byte) (*Header, []byte, error) {
	h := new(Header)
	payload, err := ParseHeader(h, b)
	if err != nil {
		return nil, nil, err
	}
	return h, payload, nil
}

// ParseHeader decodes and validates a packet into the caller's header,
// returning a view of the payload (not copied). It is the allocation-free
// form of Parse.
//
//lint:hotpath: per-packet decode path shares the probe 0 allocs/op budget
//lint:aliases return: the returned payload is a view into b, valid only while the caller's buffer is
func ParseHeader(h *Header, b []byte) ([]byte, error) {
	if len(b) < HeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("%w: version %d", ErrVersion, b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl != HeaderLen {
		return nil, fmt.Errorf("%w: IHL %d", ErrOptions, ihl)
	}
	if headerChecksum(b[:HeaderLen]) != 0 {
		return nil, ErrChecksum
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < HeaderLen || total > len(b) {
		return nil, fmt.Errorf("%w: total %d of %d", ErrLength, total, len(b))
	}
	*h = Header{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:6]),
		DontFrag: b[6]&0x40 != 0,
		TTL:      b[8],
		Protocol: b[9],
		TotalLen: uint16(total),
	}
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return b[HeaderLen:total], nil
}

// DecrementTTL returns a copy of the packet with TTL reduced by hops and
// the checksum fixed up. ok is false when the TTL would reach zero (the
// packet dies in transit, as a router would signal with time-exceeded).
func DecrementTTL(b []byte, hops int) (out []byte, ok bool) {
	if len(b) < HeaderLen || hops <= 0 {
		return b, len(b) >= HeaderLen
	}
	ttl := int(b[8])
	if ttl <= hops {
		return nil, false
	}
	out = append([]byte(nil), b...)
	out[8] = byte(ttl - hops)
	out[10], out[11] = 0, 0
	binary.BigEndian.PutUint16(out[10:12], headerChecksum(out[:HeaderLen]))
	return out, true
}

// TTLSurvives reports whether a packet whose header starts b would survive
// a path of the given hop count — the same verdict DecrementTTL's ok result
// gives, without copying the packet. It exists for forwarding paths that
// only need the life-or-death answer, not the decremented copy.
func TTLSurvives(b []byte, hops int) bool {
	if len(b) < HeaderLen {
		return false
	}
	if hops <= 0 {
		return true
	}
	return int(b[8]) > hops
}

// headerChecksum is the RFC 1071 checksum over the header; a valid header
// (including its checksum field) sums to zero.
func headerChecksum(b []byte) uint16 {
	// Every caller passes exactly the 20-byte option-less header, so the
	// ones-complement sum unrolls to five word loads; folding at the end is
	// bit-identical to summing 16-bit words (the sum is commutative and
	// associative, and a uint64 cannot overflow on five 32-bit terms).
	_ = b[HeaderLen-1]
	sum := uint64(binary.BigEndian.Uint32(b)) +
		uint64(binary.BigEndian.Uint32(b[4:8])) +
		uint64(binary.BigEndian.Uint32(b[8:12])) +
		uint64(binary.BigEndian.Uint32(b[12:16])) +
		uint64(binary.BigEndian.Uint32(b[16:20]))
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}
