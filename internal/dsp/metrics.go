package dsp

import (
	"sync/atomic"

	"sleepnet/internal/metrics"
)

// instruments caches the package's metric handles. The transforms are pure
// functions with no receiver to hang a registry off, so instrumentation is a
// package-level hook installed with SetMetrics.
type instruments struct {
	fftCalls      *metrics.Counter
	fftSize       *metrics.Histogram
	fftSeconds    *metrics.Histogram
	planEvictions *metrics.Counter
}

var activeInstruments atomic.Pointer[instruments]

// SetMetrics installs (or, with nil, removes) the registry receiving FFT
// instrumentation: dsp.fft_calls, a size histogram bucketed at powers of
// two, a timing histogram, and dsp.plan_evictions counting plans the
// LRU-bounded cache dropped. The hook is safe for concurrent use with
// running transforms; callers that install a registry for one experiment
// should `defer dsp.SetMetrics(nil)` to avoid leaking it into the next.
func SetMetrics(r *metrics.Registry) {
	if r == nil {
		activeInstruments.Store(nil)
		return
	}
	activeInstruments.Store(&instruments{
		fftCalls:      r.Counter("dsp.fft_calls"),
		fftSize:       r.Histogram("dsp.fft_size", "points", metrics.ExpBuckets(16, 2, 12)),
		fftSeconds:    r.Histogram("dsp.fft_seconds", metrics.UnitSeconds, metrics.ExpBuckets(1e-7, 10, 8)),
		planEvictions: r.Counter("dsp.plan_evictions"),
	})
}

// observeFFT records one transform of n points and returns a stopwatch for
// its duration. With no registry installed it reads no clock and allocates
// nothing beyond the closure already inlined by the caller.
func observeFFT(n int) func() {
	ins := activeInstruments.Load()
	if ins == nil {
		return nil
	}
	ins.fftCalls.Inc()
	ins.fftSize.Observe(float64(n))
	return ins.fftSeconds.Time()
}
