package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// TestStreamingAccumulationMatchesFFT pins the single-bin DFT convention the
// streaming classifier (internal/serve) relies on: accumulating
// Σ x[r]·(cos θ_r, sin θ_r) with θ_r = -2πkr/n — one multiply-add per round,
// the exact op pattern of a live accumulator — must reproduce the FFT bin
// coefficient the batch oracle computes, on both the radix-2 and Bluestein
// transform paths. The agreement harness (internal/agree) compares the two
// classifiers end to end; this test anchors the shared convention (exponent
// sign, no normalization) at the dsp layer, so a convention drift fails
// here with a pinpoint message instead of as a mysterious phase offset in
// the confusion matrices.
func TestStreamingAccumulationMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for _, n := range []int{64, 256, 330, 661} { // pow2 and Bluestein sizes
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		X := RealFFT(x)
		for _, k := range []int{1, 2, 5, n / 3} {
			var re, im float64
			for r := 0; r < n; r++ {
				theta := -2 * math.Pi * float64(k) * float64(r) / float64(n)
				re += x[r] * math.Cos(theta)
				im += x[r] * math.Sin(theta)
			}
			want := X[k]
			scale := math.Hypot(real(want), imag(want)) + 1
			if math.Abs(re-real(want))/scale > 1e-9 || math.Abs(im-imag(want))/scale > 1e-9 {
				t.Fatalf("n=%d k=%d: accumulated (%g,%g), FFT bin (%g,%g)",
					n, k, re, im, real(want), imag(want))
			}
		}
	}
}
