package dsp

import (
	"container/list"
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// planTestLengths covers the trivial, power-of-two (radix-2), and
// non-power-of-two (Bluestein) regimes, even and odd, including the
// ~131-samples-per-day series lengths the pipeline actually produces.
var planTestLengths = []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 27, 64, 100, 128, 255, 256, 458, 459, 917, 918, 1000, 1024}

func randComplex(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func randReal(r *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

func maxAbs(x []complex128) float64 {
	m := 0.0
	for _, v := range x {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// TestPlanForwardMatchesFFT is the acceptance property: planned transforms
// agree with the unplanned FFT to within 1e-12 (relative to the spectrum
// peak) across power-of-two and Bluestein lengths. The complex path is in
// fact engineered to be bit-identical — its tables replay the unplanned
// recurrences — and the test pins that stronger property too, because the
// same-seed golden contract depends on it.
func TestPlanForwardMatchesFFT(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	s := NewScratch()
	for _, n := range planTestLengths {
		x := randComplex(r, n)
		want := FFT(x)
		got := PlanFor(n).Forward(nil, x, s)
		if len(got) != len(want) {
			t.Fatalf("n=%d: got %d bins, want %d", n, len(got), len(want))
		}
		scale := maxAbs(want)
		for k := range want {
			if d := cmplx.Abs(got[k] - want[k]); d > 1e-12*scale {
				t.Errorf("n=%d bin %d: plan %v vs fft %v (|d|=%g)", n, k, got[k], want[k], d)
			}
			if got[k] != want[k] { //lint:allow floateq: pinning exact bit-identity of the planned complex path
				t.Errorf("n=%d bin %d: planned transform not bit-identical: %v vs %v", n, k, got[k], want[k])
			}
		}
	}
}

// TestPlanRealForwardMatchesReference checks the packed real-input path
// (and the odd-length staging path) against the unplanned complex
// transform of the same series, within the 1e-12 acceptance tolerance.
func TestPlanRealForwardMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	s := NewScratch()
	for _, n := range planTestLengths {
		x := randReal(r, n)
		cx := make([]complex128, n)
		for i, v := range x {
			cx[i] = complex(v, 0)
		}
		want := FFT(cx)
		got := PlanFor(n).RealForward(nil, x, s)
		keep := n/2 + 1
		if len(got) != keep {
			t.Fatalf("n=%d: got %d bins, want %d", n, len(got), keep)
		}
		scale := maxAbs(want)
		for k := 0; k < keep; k++ {
			if d := cmplx.Abs(got[k] - want[k]); d > 1e-12*scale {
				t.Errorf("n=%d bin %d: real plan %v vs reference %v (|d|=%g)", n, k, got[k], want[k], d)
			}
		}
	}
}

// TestRealFFTMatchesDFT anchors the rerouted RealFFT against the O(n^2)
// definition on small lengths, full spectrum including the mirrored half.
func TestRealFFTMatchesDFT(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for _, n := range []int{1, 2, 3, 4, 5, 8, 12, 17, 30} {
		x := randReal(r, n)
		cx := make([]complex128, n)
		for i, v := range x {
			cx[i] = complex(v, 0)
		}
		want := DFT(cx)
		got := RealFFT(x)
		scale := maxAbs(want) + 1
		for k := range want {
			if d := cmplx.Abs(got[k] - want[k]); d > 1e-9*scale {
				t.Errorf("n=%d bin %d: RealFFT %v vs DFT %v (|d|=%g)", n, k, got[k], want[k], d)
			}
		}
	}
}

// TestSpectrumBitIdenticalToUnplanned pins the spectrum constructors to
// the exact path: Coef must be bit-identical to the unplanned FFT of the
// complexified series, which is what keeps same-seed study output (classes
// AND phases) byte-identical across the planned/unplanned implementations.
func TestSpectrumBitIdenticalToUnplanned(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for _, n := range planTestLengths {
		x := randReal(r, n)
		cx := make([]complex128, n)
		for i, v := range x {
			cx[i] = complex(v, 0)
		}
		want := FFT(cx)
		s := NewSpectrum(x)
		for k := range s.Coef {
			if s.Coef[k] != want[k] { //lint:allow floateq: the exact-path spectrum must match the unplanned FFT bit for bit
				t.Errorf("n=%d bin %d: spectrum %v vs unplanned %v", n, k, s.Coef[k], want[k])
			}
		}
	}
}

// TestPlanScratchReuse checks that reusing one scratch across different
// lengths and directions cannot corrupt results (buffers are resized, not
// assumed clean).
func TestPlanScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	s := NewScratch()
	// Interleave large and small, even and odd, so every slot shrinks and
	// grows repeatedly.
	order := []int{1024, 5, 918, 2, 917, 1000, 3, 256}
	for pass := 0; pass < 3; pass++ {
		for _, n := range order {
			x := randReal(r, n)
			got := PlanFor(n).RealForward(nil, x, s)
			fresh := PlanFor(n).RealForward(nil, x, NewScratch())
			for k := range got {
				if got[k] != fresh[k] { //lint:allow floateq: identical code path must yield identical bits regardless of scratch history
					t.Fatalf("n=%d bin %d: scratch reuse changed result: %v vs %v", n, k, got[k], fresh[k])
				}
			}
		}
	}
}

// TestPlanCacheConcurrent hammers PlanFor and the transforms from many
// goroutines; run under -race this is the acceptance check that the plan
// cache and the immutable plans are safe for concurrent use.
func TestPlanCacheConcurrent(t *testing.T) {
	lengths := []int{64, 100, 917, 918, 1024}
	// Per-length reference computed serially first.
	refs := make(map[int][]complex128)
	inputs := make(map[int][]float64)
	r := rand.New(rand.NewSource(46))
	for _, n := range lengths {
		inputs[n] = randReal(r, n)
		refs[n] = PlanFor(n).RealForward(nil, inputs[n], nil)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := NewScratch()
			for it := 0; it < 20; it++ {
				n := lengths[(g+it)%len(lengths)]
				got := PlanFor(n).RealForward(nil, inputs[n], s)
				for k := range got {
					if got[k] != refs[n][k] { //lint:allow floateq: concurrent planned runs must be bit-identical to the serial run
						t.Errorf("goroutine %d n=%d bin %d: %v vs %v", g, n, k, got[k], refs[n][k])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPlanForPanicsOnMismatch pins the misuse contract: a plan rejects
// inputs of the wrong length loudly instead of corrupting memory.
func TestPlanForPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Forward with mismatched length should panic")
		}
	}()
	PlanFor(8).Forward(nil, make([]complex128, 7), nil)
}

// TestRealForwardDCAndNyquist spot-checks physically meaningful bins on a
// constant series: all energy in DC, Nyquist exactly zero.
func TestRealForwardDCAndNyquist(t *testing.T) {
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = 2.5
	}
	got := PlanFor(n).RealForward(nil, x, nil)
	if math.Abs(real(got[0])-2.5*float64(n)) > 1e-9 || math.Abs(imag(got[0])) > 1e-9 {
		t.Errorf("DC bin = %v, want %v", got[0], complex(2.5*float64(n), 0))
	}
	for k := 1; k <= n/2; k++ {
		if cmplx.Abs(got[k]) > 1e-9 {
			t.Errorf("bin %d = %v, want 0 for constant input", k, got[k])
		}
	}
}

// TestPlanCacheLRUBound pins the cache's memory contract: the cache never
// holds more than the configured number of plans, eviction is
// least-recently-used, and an evicted length rebuilds to a bit-identical
// plan (so eviction can never change results, only cost rebuild time).
func TestPlanCacheLRUBound(t *testing.T) {
	defer SetPlanCacheLimit(defaultPlanCacheLimit)

	r := rand.New(rand.NewSource(99))
	in := randReal(r, 48)
	ref := PlanFor(48).RealForward(nil, in, nil)

	SetPlanCacheLimit(4)
	if got := PlanCacheSize(); got > 4 {
		t.Fatalf("shrinking the limit left %d plans cached", got)
	}
	// Power-of-two lengths keep the recursion shallow: each PlanFor(n) here
	// caches the plans for n and n/2.
	for _, n := range []int{256, 512, 1024, 2048, 4096} {
		PlanFor(n)
		if got := PlanCacheSize(); got > 4 {
			t.Fatalf("after PlanFor(%d): %d plans cached, limit 4", n, got)
		}
	}

	// An evicted plan rebuilds bit-identically.
	SetPlanCacheLimit(1)
	PlanFor(4096) // certainly evicts 48
	got := PlanFor(48).RealForward(nil, in, nil)
	for k := range got {
		if got[k] != ref[k] { //lint:allow floateq: rebuilt plans must be bit-identical to the evicted original
			t.Fatalf("bin %d after rebuild: %v, want %v", k, got[k], ref[k])
		}
	}

	// Unbounded mode accumulates freely.
	SetPlanCacheLimit(0)
	for n := 16; n <= 16+8; n++ {
		PlanFor(n)
	}
	if got := PlanCacheSize(); got < 9 {
		t.Fatalf("unbounded cache holds %d plans, want >= 9", got)
	}
}

// TestPlanLRUEvictionOrder pins the replacement policy on the cache
// structure itself (PlanFor's recursive sub-plan pulls make end-to-end
// order assertions ambiguous): a get refreshes recency, and insertion past
// the limit evicts the least recently used entry.
func TestPlanLRUEvictionOrder(t *testing.T) {
	c := planLRU{limit: 2, byLen: map[int]*list.Element{}}
	pa, pb, pc := &Plan{n: 1}, &Plan{n: 2}, &Plan{n: 3}
	c.insert(1, pa)
	c.insert(2, pb)
	c.get(1)        // 1 becomes most recent
	c.insert(3, pc) // evicts 2, the LRU
	if c.get(2) != nil {
		t.Fatal("LRU entry survived eviction")
	}
	if c.get(1) != pa || c.get(3) != pc {
		t.Fatal("recently used entries evicted")
	}
	// Racing insert keeps the incumbent.
	if got := c.insert(1, &Plan{n: 1}); got != pa {
		t.Fatal("racing insert replaced the incumbent plan")
	}
}

// TestPlanForHitPathAllocFree pins the steady-state cost of a cache hit:
// lock, map lookup, list bump — no heap.
func TestPlanForHitPathAllocFree(t *testing.T) {
	PlanFor(96) // warm
	avg := testing.AllocsPerRun(200, func() { PlanFor(96) })
	if avg != 0 {
		t.Fatalf("PlanFor cache hit allocates %.2f times, want 0", avg)
	}
}
