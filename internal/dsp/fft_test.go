package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-8

func complexNear(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func randomComplex(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func TestFFTEmpty(t *testing.T) {
	if got := FFT(nil); len(got) != 0 {
		t.Fatalf("FFT(nil) = %v, want empty", got)
	}
	if got := IFFT(nil); len(got) != 0 {
		t.Fatalf("IFFT(nil) = %v, want empty", got)
	}
}

func TestFFTSingle(t *testing.T) {
	got := FFT([]complex128{3 + 4i})
	if len(got) != 1 || !complexNear(got[0], 3+4i, eps) {
		t.Fatalf("FFT single = %v", got)
	}
}

func TestFFTMatchesDFTPowersOfTwo(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		x := randomComplex(r, n)
		want := DFT(x)
		got := FFT(x)
		for k := range want {
			if !complexNear(got[k], want[k], 1e-7*float64(n)) {
				t.Fatalf("n=%d bin %d: FFT=%v DFT=%v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTMatchesDFTArbitraryLengths(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 6, 7, 9, 12, 17, 33, 100, 255, 1000, 1831} {
		x := randomComplex(r, n)
		want := DFT(x)
		got := FFT(x)
		for k := range want {
			if !complexNear(got[k], want[k], 1e-6*float64(n)) {
				t.Fatalf("n=%d bin %d: FFT=%v DFT=%v", n, k, got[k], want[k])
			}
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 16, 63, 128, 341} {
		x := randomComplex(r, n)
		back := IFFT(FFT(x))
		for i := range x {
			if !complexNear(back[i], x[i], 1e-7*float64(n)) {
				t.Fatalf("n=%d sample %d: got %v want %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5}
	orig := append([]complex128(nil), x...)
	FFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("FFT modified input at %d", i)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 3 + rr.Intn(60)
		x := randomComplex(rr, n)
		y := randomComplex(rr, n)
		a := complex(rr.NormFloat64(), rr.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a*x[i] + y[i]
		}
		fx, fy, fs := FFT(x), FFT(y), FFT(sum)
		for k := 0; k < n; k++ {
			if !complexNear(fs[k], a*fx[k]+fy[k], 1e-6*float64(n)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	// Parseval: sum |x|^2 == (1/n) sum |X|^2.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(200)
		x := randomComplex(rr, n)
		X := FFT(x)
		var tEnergy, fEnergy float64
		for i := range x {
			tEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		for k := range X {
			fEnergy += real(X[k])*real(X[k]) + imag(X[k])*imag(X[k])
		}
		fEnergy /= float64(n)
		return math.Abs(tEnergy-fEnergy) < 1e-6*(1+tEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRealFFTConjugateSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{8, 9, 100, 101} {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		X := RealFFT(x)
		for k := 1; k < n; k++ {
			if !complexNear(X[k], cmplx.Conj(X[n-k]), 1e-7*float64(n)) {
				t.Fatalf("n=%d bin %d not conjugate-symmetric", n, k)
			}
		}
	}
}

func TestGoertzelMatchesFFT(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, n := range []int{4, 7, 16, 100, 1831} {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		X := RealFFT(x)
		for _, k := range []int{0, 1, n / 3, n / 2, n - 1} {
			got := Goertzel(x, k)
			if !complexNear(got, X[k], 1e-6*float64(n)) {
				t.Fatalf("n=%d k=%d: Goertzel=%v FFT=%v", n, k, got, X[k])
			}
		}
	}
}

func TestGoertzelPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range bin")
		}
	}()
	Goertzel([]float64{1, 2, 3}, 3)
}

func TestGoertzelEmpty(t *testing.T) {
	if got := Goertzel(nil, 0); got != 0 {
		t.Fatalf("Goertzel(nil) = %v, want 0", got)
	}
}

func TestSinePeakDetection(t *testing.T) {
	// A pure 14-cycle sine over 1831 samples must put its energy in bin 14.
	n := 1831
	x := Sine(n, 14, 1, 0.3)
	s := NewSpectrum(x)
	bin, amp := s.Peak()
	if bin != 14 {
		t.Fatalf("peak bin = %d, want 14", bin)
	}
	// Energy of a unit sine in its bin is n/2.
	if math.Abs(amp-float64(n)/2) > 1 {
		t.Fatalf("peak amp = %v, want ~%v", amp, float64(n)/2)
	}
}

func TestSpectrumPhaseRecovery(t *testing.T) {
	// sin(theta + p) = cos shifted; phase of the FFT coefficient at the bin
	// should vary linearly with p. Verify relative phase differences.
	n := 2048
	p1, p2 := 0.5, 1.7
	s1 := NewSpectrum(Sine(n, 8, 1, p1))
	s2 := NewSpectrum(Sine(n, 8, 1, p2))
	d := s2.Phase(8) - s1.Phase(8)
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	if math.Abs(d-(p2-p1)) > 1e-6 {
		t.Fatalf("phase difference = %v, want %v", d, p2-p1)
	}
}

func TestPeakExcluding(t *testing.T) {
	n := 512
	x := make([]float64, n)
	a := Sine(n, 10, 3, 0)
	b := Sine(n, 25, 2, 0)
	for i := range x {
		x[i] = a[i] + b[i]
	}
	s := NewSpectrum(x)
	bin, _ := s.Peak()
	if bin != 10 {
		t.Fatalf("peak = %d, want 10", bin)
	}
	bin2, _ := s.PeakExcluding(func(k int) bool { return k == 10 })
	if bin2 != 25 {
		t.Fatalf("second peak = %d, want 25", bin2)
	}
}

func TestIsHarmonicOf(t *testing.T) {
	cases := []struct {
		k, f, tol int
		want      bool
	}{
		{28, 14, 0, true},
		{42, 14, 0, true},
		{29, 14, 1, true},
		{30, 14, 1, false},
		{14, 14, 0, false}, // fundamental is not its own harmonic
		{7, 14, 0, false},
		{15, 14, 1, false}, // within tol of fundamental, not a multiple >= 2
		{0, 14, 0, false},
		{28, 0, 0, false},
	}
	for _, c := range cases {
		if got := IsHarmonicOf(c.k, c.f, c.tol); got != c.want {
			t.Errorf("IsHarmonicOf(%d,%d,%d) = %v, want %v", c.k, c.f, c.tol, got, c.want)
		}
	}
}

func TestDetrendZeroMean(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = rr.NormFloat64() * 10
		}
		d := Detrend(x)
		var sum float64
		for _, v := range d {
			sum += v
		}
		return math.Abs(sum/float64(n)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDetrendLinearRemovesLine(t *testing.T) {
	n := 100
	x := make([]float64, n)
	for i := range x {
		x[i] = 3 + 0.5*float64(i)
	}
	d := DetrendLinear(x)
	for i, v := range d {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("residual at %d = %v, want 0", i, v)
		}
	}
}

func TestDetrendLinearPreservesSine(t *testing.T) {
	n := 1024
	sig := Sine(n, 12, 1, 0)
	x := make([]float64, n)
	for i := range x {
		x[i] = sig[i] + 5 + 0.01*float64(i)
	}
	s := NewSpectrum(DetrendLinear(x))
	bin, _ := s.Peak()
	if bin != 12 {
		t.Fatalf("peak after linear detrend = %d, want 12", bin)
	}
}

func TestCyclesPerDay(t *testing.T) {
	// 11-minute sampling (660 s) over 14 days => n = 14*24*60/11 ≈ 1832
	// samples (not integral; use exact round count n and check bin N_d maps
	// to ~1 cycle/day).
	n := 1832
	got := CyclesPerDay(14, n, 660)
	if math.Abs(got-1.0) > 0.01 {
		t.Fatalf("bin 14 of 14-day series = %v cyc/day, want ~1", got)
	}
	if CyclesPerDay(5, 0, 660) != 0 || BinFrequencyHz(5, 100, 0) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func BenchmarkFFTPow2_4096(b *testing.B) {
	x := randomComplex(rand.New(rand.NewSource(9)), 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein_4580(b *testing.B) {
	// 35 days of 11-minute rounds ≈ 4580 samples: the A12w shape.
	x := randomComplex(rand.New(rand.NewSource(10)), 4580)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkGoertzelSingleBin_4580(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	x := make([]float64, 4580)
	for i := range x {
		x[i] = r.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Goertzel(x, 35)
	}
}
