package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Spectrum holds the one-sided interpretation of the DFT of a real series:
// bins 0..n/2, with per-bin amplitude and phase. Bin k corresponds to k
// cycles over the whole series (k/(n*dt) Hz for sample spacing dt).
type Spectrum struct {
	// N is the length of the original series.
	N int
	// Coef holds the complex DFT coefficients for bins 0..n/2 inclusive.
	Coef []complex128
	// Amp holds |Coef[k]| for each retained bin. Amp[0] is the DC magnitude.
	Amp []float64
}

// NewSpectrum computes the one-sided spectrum of the real series x.
// The series mean (DC) is retained in bin 0 but is excluded by the peak
// helpers, which look for periodic structure only.
func NewSpectrum(x []float64) *Spectrum {
	sc := getScratch()
	defer putScratch(sc)
	return NewSpectrumScratch(x, sc)
}

// NewSpectrumScratch is NewSpectrum staging transform temporaries through
// the caller's scratch, so a worker classifying many same-length series
// allocates only the returned Spectrum. The Spectrum owns its Coef and Amp
// storage and may be retained after the scratch is reused.
//
// The transform takes the plan's numerically exact path (bit-identical to
// the historical unplanned FFT) rather than the packed real shortcut, so
// same-seed study output — including coefficient phases — stays
// byte-identical across implementations.
func NewSpectrumScratch(x []float64, sc *Scratch) *Spectrum {
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	n := len(x)
	keep := n/2 + 1
	if n == 0 {
		keep = 0
	}
	s := &Spectrum{
		N:    n,
		Coef: make([]complex128, keep),
		Amp:  make([]float64, keep),
	}
	stop := observeFFT(n)
	PlanFor(n).realForwardExactInto(s.Coef, x, sc)
	if stop != nil {
		stop()
	}
	for k := 0; k < keep; k++ {
		s.Amp[k] = cmplx.Abs(s.Coef[k])
	}
	return s
}

// Bins returns the number of retained (one-sided) bins.
func (s *Spectrum) Bins() int { return len(s.Amp) }

// Phase returns the phase angle of bin k in radians in (-pi, pi].
func (s *Spectrum) Phase(k int) float64 {
	if k < 0 || k >= len(s.Coef) {
		return 0
	}
	return cmplx.Phase(s.Coef[k])
}

// Peak returns the non-DC bin with the largest amplitude and that amplitude.
// It returns (0, 0) when the spectrum has no non-DC bins.
func (s *Spectrum) Peak() (bin int, amp float64) {
	for k := 1; k < len(s.Amp); k++ {
		if s.Amp[k] > amp {
			bin, amp = k, s.Amp[k]
		}
	}
	return bin, amp
}

// PeakExcluding returns the strongest non-DC bin whose index is not rejected
// by skip. It returns (0, 0) if every bin is rejected.
func (s *Spectrum) PeakExcluding(skip func(k int) bool) (bin int, amp float64) {
	for k := 1; k < len(s.Amp); k++ {
		if skip != nil && skip(k) {
			continue
		}
		if s.Amp[k] > amp {
			bin, amp = k, s.Amp[k]
		}
	}
	return bin, amp
}

// AmpAt returns the amplitude of bin k, or 0 when out of range.
func (s *Spectrum) AmpAt(k int) float64 {
	if k < 0 || k >= len(s.Amp) {
		return 0
	}
	return s.Amp[k]
}

// IsHarmonicOf reports whether bin k is an exact harmonic (integer multiple,
// tolerance tol bins) of the fundamental bin f. The fundamental itself is not
// considered its own harmonic.
func IsHarmonicOf(k, f, tol int) bool {
	if f <= 0 || k <= f {
		return false
	}
	m := (k + f/2) / f // nearest multiple
	if m < 2 {
		return false
	}
	return abs(k-m*f) <= tol
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Detrend subtracts the mean from x in a fresh slice. Removing DC before
// spectral peak-hunting keeps bin 0 from dwarfing periodic structure.
func Detrend(x []float64) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i, v := range x {
		out[i] = v - mean
	}
	return out
}

// DetrendLinear removes the least-squares line from x in a fresh slice.
func DetrendLinear(x []float64) []float64 {
	return DetrendLinearInto(make([]float64, len(x)), x)
}

// DetrendLinearInto removes the least-squares line from x into dst (which
// must have length len(x); dst may be x itself) and returns dst. It is the
// allocation-free form of DetrendLinear for callers staging through a
// Scratch.
func DetrendLinearInto(dst, x []float64) []float64 {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("dsp: DetrendLinearInto: dst length %d does not match input length %d", len(dst), len(x)))
	}
	out := dst
	n := float64(len(x))
	if len(x) == 0 {
		return out
	}
	var sx, sy, sxx, sxy float64
	for i, v := range x {
		fi := float64(i)
		sx += fi
		sy += v
		sxx += fi * fi
		sxy += fi * v
	}
	den := n*sxx - sx*sx
	var slope, intercept float64
	if den != 0 {
		slope = (n*sxy - sx*sy) / den
		intercept = (sy - slope*sx) / n
	} else {
		intercept = sy / n
	}
	for i, v := range x {
		out[i] = v - (intercept + slope*float64(i))
	}
	return out
}

// BinFrequencyHz converts bin k of an n-sample series with sample period
// dtSeconds to a frequency in hertz (k / (n*dt)).
func BinFrequencyHz(k, n int, dtSeconds float64) float64 {
	if n == 0 || dtSeconds == 0 {
		return 0
	}
	return float64(k) / (float64(n) * dtSeconds)
}

// CyclesPerDay converts bin k of an n-sample series with sample period
// dtSeconds into cycles per day, the unit the paper reports (Fig 10).
func CyclesPerDay(k, n int, dtSeconds float64) float64 {
	return BinFrequencyHz(k, n, dtSeconds) * 86400
}

// Sine synthesizes amp*sin(2*pi*cycles*t/n + phase) sampled at t=0..n-1.
// It is a convenience for tests and simulations.
func Sine(n int, cycles, amp, phase float64) []float64 {
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		out[t] = amp * math.Sin(2*math.Pi*cycles*float64(t)/float64(n)+phase)
	}
	return out
}
