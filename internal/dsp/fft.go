// Package dsp provides the spectral-analysis substrate used by the diurnal
// detector: discrete Fourier transforms for arbitrary input lengths
// (iterative radix-2 for powers of two, Bluestein's chirp-z algorithm for
// everything else), a Goertzel single-bin evaluator, and helpers for
// interpreting real-valued spectra (amplitude, phase, harmonics).
//
// The paper computes an FFT over an 11-minute availability timeseries whose
// length is whatever the measurement produced (rarely a power of two), so
// arbitrary-n support is required, not a convenience.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x:
//
//	X[k] = sum_{m=0}^{n-1} x[m] * exp(-2*pi*i*m*k/n)
//
// The input is not modified. Any length is accepted; powers of two use an
// iterative radix-2 Cooley-Tukey transform and other lengths use Bluestein's
// algorithm. An empty input returns an empty (non-nil) slice.
func FFT(x []complex128) []complex128 {
	n := len(x)
	stop := observeFFT(n)
	var out []complex128
	switch {
	case n == 0:
		out = []complex128{}
	case n == 1:
		out = []complex128{x[0]}
	case isPow2(n):
		out = make([]complex128, n)
		copy(out, x)
		fftRadix2InPlace(out, false)
	default:
		out = bluestein(x, false)
	}
	if stop != nil {
		stop()
	}
	return out
}

// IFFT returns the inverse discrete Fourier transform of X, normalized by
// 1/n so that IFFT(FFT(x)) == x up to floating-point error.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	stop := observeFFT(n)
	switch {
	case n == 0:
		if stop != nil {
			stop()
		}
		return []complex128{}
	case n == 1:
		if stop != nil {
			stop()
		}
		return []complex128{x[0]}
	}
	var out []complex128
	if isPow2(n) {
		out = make([]complex128, n)
		copy(out, x)
		fftRadix2InPlace(out, true)
	} else {
		out = bluestein(x, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	if stop != nil {
		stop()
	}
	return out
}

// RealFFT computes the DFT of a real-valued series and returns the full
// complex spectrum of length len(x). Bins k and n-k are conjugate
// symmetric; callers interested in physical frequencies normally inspect
// bins 0..n/2 only.
//
// The transform runs through the cached plan for len(x): even lengths use
// the packed real-input path (a half-length complex transform plus
// untangling), odd lengths the planned complex path. See Plan.RealForward
// for the scratch-reusing, one-sided form.
func RealFFT(x []float64) []complex128 {
	n := len(x)
	p := PlanFor(n)
	s := getScratch()
	defer putScratch(s)
	out := make([]complex128, n)
	stop := observeFFT(n)
	p.realForwardFullInto(out, x, s)
	if stop != nil {
		stop()
	}
	return out
}

// DFT computes the transform by the O(n^2) definition. It exists as a
// reference implementation for tests and for very short inputs where setup
// costs dominate.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	if n == 0 {
		return out
	}
	w := -2 * math.Pi / float64(n)
	for k := 0; k < n; k++ {
		var sum complex128
		for m := 0; m < n; m++ {
			s, c := math.Sincos(w * float64(k) * float64(m))
			sum += x[m] * complex(c, s)
		}
		out[k] = sum
	}
	return out
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// fftRadix2InPlace computes an in-place iterative radix-2 FFT.
// If inverse is true the conjugate transform is computed (no 1/n scaling).
func fftRadix2InPlace(a []complex128, inverse bool) {
	n := len(a)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		// Root of unity for this stage.
		ws, wc := math.Sincos(step)
		wBase := complex(wc, ws)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for off := 0; off < half; off++ {
				i, j := start+off, start+off+half
				t := a[j] * w
				a[j] = a[i] - t
				a[i] += t
				w *= wBase
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// expressing it as a convolution that is evaluated with a power-of-two FFT.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	m := nextPow2(2*n - 1)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[i] = exp(sign * i * pi * i^2 / n). Compute i^2 mod 2n to keep the
	// sincos argument small and precise for long series.
	chirp := make([]complex128, n)
	mod := 2 * n
	for i := 0; i < n; i++ {
		i2 := (i * i) % mod
		s, c := math.Sincos(sign * math.Pi * float64(i2) / float64(n))
		chirp[i] = complex(c, s)
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for i := 0; i < n; i++ {
		a[i] = x[i] * chirp[i]
		b[i] = cmplx.Conj(chirp[i])
	}
	for i := 1; i < n; i++ {
		b[m-i] = b[i]
	}
	fftRadix2InPlace(a, false)
	fftRadix2InPlace(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2InPlace(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] * invM * chirp[i]
	}
	return out
}

// Goertzel evaluates a single DFT bin k of a real series using the Goertzel
// recurrence. It matches FFT(x)[k] for 0 <= k < len(x) and costs O(n) with a
// tiny constant, which makes it the right tool when only the diurnal bin is
// needed.
func Goertzel(x []float64, k int) complex128 {
	n := len(x)
	if n == 0 {
		return 0
	}
	if k < 0 || k >= n {
		panic(fmt.Sprintf("dsp: Goertzel bin %d out of range [0,%d)", k, n))
	}
	w := 2 * math.Pi * float64(k) / float64(n)
	sinW, cosW := math.Sincos(w)
	coeff := 2 * cosW
	var s0, s1, s2 float64
	for i := 0; i < n; i++ {
		s0 = x[i] + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// X[k] = e^{iw}*s1 - s2, which matches the FFT sign convention used here.
	re := s1*cosW - s2
	im := s1 * sinW
	return complex(re, im)
}
