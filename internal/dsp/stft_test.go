package dsp

import (
	"math"
	"testing"
)

func TestHannWindow(t *testing.T) {
	w := HannWindow(8)
	if w[0] != 0 || w[7] != 0 {
		t.Fatalf("endpoints = %v, %v", w[0], w[7])
	}
	// Symmetric, peaked in the middle.
	for i := 0; i < 4; i++ {
		if math.Abs(w[i]-w[7-i]) > 1e-12 {
			t.Fatal("window not symmetric")
		}
	}
	if w[3] < 0.8 {
		t.Fatalf("middle = %v", w[3])
	}
	if got := HannWindow(1); got[0] != 1 {
		t.Fatalf("n=1 window = %v", got)
	}
}

func TestSpectrogramDetectsRegimeChange(t *testing.T) {
	// First half flat, second half a 16-sample-period sine: the sine's bin
	// should carry energy only in late frames.
	n := 4096
	x := make([]float64, n)
	for i := n / 2; i < n; i++ {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	window, hop := 512, 256
	frames, err := Spectrogram(x, window, hop)
	if err != nil {
		t.Fatal(err)
	}
	bin := window / 16 // 16-sample period -> bin window/16
	early := frames[0][bin]
	late := frames[len(frames)-1][bin]
	if late < 10*early+1 {
		t.Fatalf("late energy %v should dwarf early %v", late, early)
	}
	if len(frames[0]) != window/2+1 {
		t.Fatalf("bins = %d", len(frames[0]))
	}
}

func TestSpectrogramErrors(t *testing.T) {
	if _, err := Spectrogram(make([]float64, 100), 1, 10); err == nil {
		t.Fatal("window 1 should error")
	}
	if _, err := Spectrogram(make([]float64, 100), 64, 0); err == nil {
		t.Fatal("hop 0 should error")
	}
	if _, err := Spectrogram(make([]float64, 10), 64, 16); err == nil {
		t.Fatal("short series should error")
	}
}

func TestAutocorrelationPeriodic(t *testing.T) {
	// Period-20 sine: ACF peaks at lag 20.
	n := 2000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 20)
	}
	acf, err := Autocorrelation(x, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acf[0]-1) > 1e-9 {
		t.Fatalf("acf[0] = %v", acf[0])
	}
	lag, v, err := DominantLag(acf, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	if lag != 20 && lag != 40 {
		t.Fatalf("dominant lag = %d, want 20 (or 40)", lag)
	}
	if v < 0.9 {
		t.Fatalf("peak acf = %v", v)
	}
}

func TestAutocorrelationWhiteNoiseFlat(t *testing.T) {
	// Deterministic pseudo-noise via a simple LCG.
	n := 4000
	x := make([]float64, n)
	state := uint64(12345)
	for i := range x {
		state = state*6364136223846793005 + 1442695040888963407
		x[i] = float64(state>>11)/(1<<53) - 0.5
	}
	acf, err := Autocorrelation(x, 100)
	if err != nil {
		t.Fatal(err)
	}
	for lag := 1; lag <= 100; lag++ {
		if math.Abs(acf[lag]) > 0.1 {
			t.Fatalf("acf[%d] = %v, want near zero", lag, acf[lag])
		}
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5, 5}
	acf, err := Autocorrelation(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 || acf[1] != 0 {
		t.Fatalf("constant acf = %v", acf)
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation([]float64{1}, 0); err == nil {
		t.Fatal("single sample should error")
	}
	if _, err := Autocorrelation([]float64{1, 2, 3}, 5); err == nil {
		t.Fatal("maxLag >= n should error")
	}
	if _, _, err := DominantLag([]float64{1, 0.5}, 0, 1); err == nil {
		t.Fatal("minLag 0 should error")
	}
	if _, _, err := DominantLag([]float64{1, 0.5}, 1, 5); err == nil {
		t.Fatal("out-of-range maxLag should error")
	}
}

func BenchmarkAutocorrelation4580(b *testing.B) {
	x := Sine(4580, 35, 1, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Autocorrelation(x, 200); err != nil {
			b.Fatal(err)
		}
	}
}
