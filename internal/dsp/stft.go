package dsp

import (
	"fmt"
	"math"
)

// HannWindow returns the n-point Hann window.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// Spectrogram computes a short-time Fourier transform magnitude matrix:
// frames of length window, advanced by hop samples, Hann-windowed. Frame f,
// bin k holds |FFT(x[f*hop : f*hop+window] * hann)[k]| for k in 0..window/2.
// It is the diagnostic for non-stationary blocks: a block that switches
// from always-on to diurnal mid-measurement shows its diurnal line appear
// partway through the spectrogram.
func Spectrogram(x []float64, window, hop int) ([][]float64, error) {
	if window <= 1 || hop <= 0 {
		return nil, fmt.Errorf("dsp: spectrogram needs window > 1 and hop > 0 (%d, %d)", window, hop)
	}
	if len(x) < window {
		return nil, fmt.Errorf("dsp: series of %d shorter than window %d", len(x), window)
	}
	hann := HannWindow(window)
	frames := 1 + (len(x)-window)/hop
	keep := window/2 + 1
	out := make([][]float64, frames)
	buf := make([]float64, window)
	for f := 0; f < frames; f++ {
		start := f * hop
		for i := 0; i < window; i++ {
			buf[i] = x[start+i] * hann[i]
		}
		spec := NewSpectrum(buf)
		row := make([]float64, keep)
		copy(row, spec.Amp)
		out[f] = row
	}
	return out, nil
}

// Autocorrelation returns the biased sample autocorrelation of x for lags
// 0..maxLag, computed in O(n log n) via the Wiener-Khinchin theorem
// (FFT of the power spectrum). ACF[0] is 1 for any non-constant series.
func Autocorrelation(x []float64, maxLag int) ([]float64, error) {
	n := len(x)
	if n < 2 {
		return nil, fmt.Errorf("dsp: autocorrelation needs >= 2 samples")
	}
	if maxLag < 0 || maxLag >= n {
		return nil, fmt.Errorf("dsp: maxLag %d out of range [0, %d)", maxLag, n)
	}
	d := Detrend(x)
	// Zero-pad to avoid circular wrap.
	m := nextPow2(2 * n)
	cx := make([]complex128, m)
	for i, v := range d {
		cx[i] = complex(v, 0)
	}
	fftRadix2InPlace(cx, false)
	for i := range cx {
		re := real(cx[i])
		im := imag(cx[i])
		cx[i] = complex(re*re+im*im, 0)
	}
	fftRadix2InPlace(cx, true)
	norm := real(cx[0])
	out := make([]float64, maxLag+1)
	if norm == 0 {
		// Constant series: define ACF as zero beyond lag 0.
		out[0] = 1
		return out, nil
	}
	for lag := 0; lag <= maxLag; lag++ {
		out[lag] = real(cx[lag]) / norm
	}
	return out, nil
}

// DominantLag returns the lag in [minLag, maxLag] with the largest
// autocorrelation and that value. It is the time-domain counterpart of the
// spectral peak: a diurnal series peaks at the one-day lag.
func DominantLag(acf []float64, minLag, maxLag int) (lag int, value float64, err error) {
	if minLag < 1 || maxLag >= len(acf) || minLag > maxLag {
		return 0, 0, fmt.Errorf("dsp: lag range [%d, %d] invalid for acf of %d", minLag, maxLag, len(acf))
	}
	lag = minLag
	value = acf[minLag]
	for l := minLag + 1; l <= maxLag; l++ {
		if acf[l] > value {
			lag, value = l, acf[l]
		}
	}
	return lag, value, nil
}
