package dsp

// Cached transform plans. A campaign classifies thousands of availability
// series of the same handful of lengths, and the unplanned transforms
// rebuild the same setup — bit-reversal order, stage twiddle factors, and
// for non-power-of-two lengths the whole Bluestein chirp and its FFT — on
// every call. A Plan computes all of that once per length and caches it
// process-wide, so the steady-state cost of a transform is the butterflies
// themselves plus caller-reusable scratch.
//
// Numerical contract: for complex input a Plan's Forward is bit-identical
// to the unplanned FFT, because every table is precomputed with the exact
// recurrences fftRadix2InPlace and bluestein use at runtime. The packed
// real-input path (RealForward on even lengths) evaluates the same DFT
// through a half-length transform and differs from the unplanned result
// only at rounding level (well under 1e-12 relative; see plan_test.go).

import (
	"container/list"
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// Plan holds the precomputed state for transforms of one length. Plans are
// immutable after construction and safe for concurrent use by any number of
// goroutines; per-call mutable state lives in a Scratch.
type Plan struct {
	n int

	// r2 is the radix-2 machinery when n is a power of two.
	r2 *radix2Plan

	// Bluestein state when n is not a power of two: the convolution length
	// m = nextPow2(2n-1), its radix-2 plan, the forward chirp, and the
	// FFT of the chirp-conjugate pulse (bq), which the unplanned path
	// recomputes per call.
	m     int
	mr2   *radix2Plan
	chirp []complex128
	bq    []complex128

	// Packed real-input state for even n: the half-length plan and the
	// untangling twiddles rw[k] = exp(-2*pi*i*k/n) for k = 0..n/2.
	half *Plan
	rw   []complex128
}

// radix2Plan caches the bit-reversal swap schedule and per-stage twiddle
// factors for one power-of-two length, in both transform directions.
type radix2Plan struct {
	n     int
	swaps []int32        // flattened (i, j) pairs with i < j
	fwd   [][]complex128 // twiddles per stage, forward (sign -1)
	inv   [][]complex128 // twiddles per stage, inverse (sign +1)
}

// defaultPlanCacheLimit bounds the plan cache at a size that comfortably
// covers a campaign's handful of series lengths (plus the Bluestein
// convolution lengths they pull in) while keeping a hostile mix of lengths —
// every block a different series size — from pinning unbounded table memory.
const defaultPlanCacheLimit = 64

// planLRU is the size-bounded plan cache: a mutex-guarded map into an LRU
// list, most recently used at the front. Evicting a plan is always safe —
// plans are immutable, callers (and parent plans, via mr2/half pointers)
// keep theirs alive, and a rebuilt plan is bit-identical by construction, so
// eviction costs only rebuild time, never determinism.
type planLRU struct {
	mu    sync.Mutex
	limit int // <= 0: unbounded
	ll    list.List
	byLen map[int]*list.Element
}

type planEntry struct {
	n    int
	plan *Plan
}

var planCache = planLRU{limit: defaultPlanCacheLimit, byLen: map[int]*list.Element{}}

func (c *planLRU) get(n int) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byLen[n]; ok {
		c.ll.MoveToFront(e)
		return e.Value.(*planEntry).plan
	}
	return nil
}

// insert adds a freshly built plan, keeping the incumbent if a concurrent
// builder won the race (plans of one length are interchangeable by
// construction, so the race is benign — and exercised under -race).
func (c *planLRU) insert(n int, p *Plan) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byLen[n]; ok {
		c.ll.MoveToFront(e)
		return e.Value.(*planEntry).plan
	}
	c.byLen[n] = c.ll.PushFront(&planEntry{n: n, plan: p})
	c.evictOver()
	return p
}

// evictOver drops least-recently-used entries past the limit. Callers hold mu.
func (c *planLRU) evictOver() {
	for c.limit > 0 && c.ll.Len() > c.limit {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.byLen, old.Value.(*planEntry).n)
		if ins := activeInstruments.Load(); ins != nil {
			ins.planEvictions.Inc()
		}
	}
}

func (c *planLRU) setLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	c.evictOver()
}

func (c *planLRU) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// SetPlanCacheLimit bounds how many plans PlanFor retains (default 64,
// evicting least-recently-used). A limit <= 0 removes the bound. Shrinking
// the limit evicts immediately; plans already handed out stay valid.
func SetPlanCacheLimit(n int) { planCache.setLimit(n) }

// PlanCacheSize reports how many plans the cache currently retains.
func PlanCacheSize() int { return planCache.size() }

// PlanFor returns the shared transform plan for series length n, building
// and caching it on first use. Campaign series lengths repeat, so after
// warm-up this is a mutex-guarded map hit with no allocation; the cache is
// LRU-bounded (SetPlanCacheLimit) so adversarial length mixes cost rebuild
// time, not unbounded memory.
func PlanFor(n int) *Plan {
	if n < 0 {
		panic(fmt.Sprintf("dsp: PlanFor(%d): negative length", n))
	}
	if p := planCache.get(n); p != nil {
		return p
	}
	// Build outside the cache lock: newPlan recurses into PlanFor for the
	// Bluestein convolution length and the packed-real half length.
	return planCache.insert(n, newPlan(n))
}

func newPlan(n int) *Plan {
	p := &Plan{n: n}
	switch {
	case n <= 1:
		// Trivial transforms need no tables.
	case isPow2(n):
		p.r2 = newRadix2Plan(n)
	default:
		p.m = nextPow2(2*n - 1)
		// The convolution length is shared across many n; reuse its plan.
		p.mr2 = PlanFor(p.m).r2
		// chirp[i] = exp(-i*pi*i^2/n), same i^2 mod 2n reduction as the
		// unplanned bluestein so the values are bit-identical.
		p.chirp = make([]complex128, n)
		mod := 2 * n
		for i := 0; i < n; i++ {
			i2 := (i * i) % mod
			s, c := math.Sincos(-math.Pi * float64(i2) / float64(n))
			p.chirp[i] = complex(c, s)
		}
		b := make([]complex128, p.m)
		for i := 0; i < n; i++ {
			b[i] = cmplx.Conj(p.chirp[i])
		}
		for i := 1; i < n; i++ {
			b[p.m-i] = b[i]
		}
		p.mr2.transform(b, false)
		p.bq = b
	}
	if n > 1 && n%2 == 0 {
		p.half = PlanFor(n / 2)
		h := n / 2
		p.rw = make([]complex128, h+1)
		for k := 0; k <= h; k++ {
			s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
			p.rw[k] = complex(c, s)
		}
	}
	return p
}

// N returns the series length the plan transforms.
func (p *Plan) N() int { return p.n }

// Forward computes the forward DFT of x (which must have length N) into
// dst, reusing dst's storage when it has capacity, and returns the result
// slice. dst may be x itself (in-place) but must not otherwise overlap it.
// s provides transform temporaries; nil uses a pooled scratch. The result
// is bit-identical to the unplanned FFT.
func (p *Plan) Forward(dst, x []complex128, s *Scratch) []complex128 {
	if len(x) != p.n {
		panic(fmt.Sprintf("dsp: Forward: input length %d does not match plan length %d", len(x), p.n))
	}
	if s == nil {
		s = getScratch()
		defer putScratch(s)
	}
	dst = growComplex(dst, p.n)
	stop := observeFFT(p.n)
	p.forwardInto(dst, x, s)
	if stop != nil {
		stop()
	}
	return dst
}

// forwardInto is Forward without instrumentation or sizing, used by the
// public entry points. dst must have length n; dst == x is allowed.
func (p *Plan) forwardInto(dst, x []complex128, s *Scratch) {
	switch {
	case p.n == 0:
	case p.n == 1:
		dst[0] = x[0]
	case p.r2 != nil:
		copy(dst, x)
		p.r2.transform(dst, false)
	default:
		p.bluesteinInto(dst, x, s, p.n)
	}
}

// bluesteinInto evaluates the chirp-z transform of x, writing the first
// outLen bins into dst. It reads x completely before writing dst, so
// dst == x is allowed. The arithmetic replays the unplanned bluestein
// step for step (with the b-FFT precomputed), keeping results
// bit-identical.
func (p *Plan) bluesteinInto(dst, x []complex128, s *Scratch, outLen int) {
	a := s.complexA(p.m)
	for i := 0; i < p.n; i++ {
		a[i] = x[i] * p.chirp[i]
	}
	for i := p.n; i < p.m; i++ {
		a[i] = 0
	}
	p.mr2.transform(a, false)
	for i := range a {
		a[i] *= p.bq[i]
	}
	p.mr2.transform(a, true)
	invM := complex(1/float64(p.m), 0)
	for i := 0; i < outLen; i++ {
		dst[i] = a[i] * invM * p.chirp[i]
	}
}

// RealForward computes the one-sided spectrum of the real series x (which
// must have length N): bins 0..N/2 inclusive, the half every real-input
// consumer here inspects. dst is reused when it has capacity. For even
// lengths the transform packs x into a half-length complex series and
// untangles, halving the butterfly work; odd lengths stage through the
// complex path with output truncated to the kept bins.
func (p *Plan) RealForward(dst []complex128, x []float64, s *Scratch) []complex128 {
	if len(x) != p.n {
		panic(fmt.Sprintf("dsp: RealForward: input length %d does not match plan length %d", len(x), p.n))
	}
	if s == nil {
		s = getScratch()
		defer putScratch(s)
	}
	keep := 0
	if p.n > 0 {
		keep = p.n/2 + 1
	}
	dst = growComplex(dst, keep)
	stop := observeFFT(p.n)
	p.realForwardInto(dst, x, s)
	if stop != nil {
		stop()
	}
	return dst
}

// realForwardInto computes bins 0..n/2 of the DFT of real x into dst
// (which must have length n/2+1 for n > 0).
func (p *Plan) realForwardInto(dst []complex128, x []float64, s *Scratch) {
	switch {
	case p.n == 0:
	case p.n == 1:
		dst[0] = complex(x[0], 0)
	case p.n%2 == 0:
		h := p.n / 2
		z := s.complexZ(h)
		for k := 0; k < h; k++ {
			z[k] = complex(x[2*k], x[2*k+1])
		}
		p.half.forwardInto(z, z, s)
		// Untangle: with Z the half-length transform of z[k] = x[2k] +
		// i*x[2k+1], the even- and odd-sample spectra are
		//   E[k] = (Z[k] + conj(Z[h-k]))/2
		//   O[k] = -i*(Z[k] - conj(Z[h-k]))/2
		// and X[k] = E[k] + W^k * O[k] for k = 0..h (indices mod h).
		for k := 0; k <= h; k++ {
			zk := z[k%h]
			zc := cmplx.Conj(z[(h-k)%h])
			even := (zk + zc) * 0.5
			odd := (zk - zc) * complex(0, -0.5)
			dst[k] = even + p.rw[k]*odd
		}
	default:
		z := s.complexZ(p.n)
		for i, v := range x {
			z[i] = complex(v, 0)
		}
		p.bluesteinInto(dst, z, s, p.n/2+1)
	}
}

// realForwardExactInto computes bins 0..n/2 of the DFT of real x into dst
// through the complex path only — no packed half-length shortcut — so the
// result is bit-identical to the unplanned FFT of the complexified series.
// The spectrum constructors use it to keep same-seed study output
// byte-identical across the planned/unplanned implementations; RealForward
// is the cheaper packed form for callers without that contract.
func (p *Plan) realForwardExactInto(dst []complex128, x []float64, s *Scratch) {
	switch {
	case p.n == 0:
	case p.n == 1:
		dst[0] = complex(x[0], 0)
	case p.r2 != nil:
		z := s.complexZ(p.n)
		for i, v := range x {
			z[i] = complex(v, 0)
		}
		p.r2.transform(z, false)
		copy(dst, z[:len(dst)])
	default:
		z := s.complexZ(p.n)
		for i, v := range x {
			z[i] = complex(v, 0)
		}
		p.bluesteinInto(dst, z, s, len(dst))
	}
}

// realForwardFullInto computes the full length-n spectrum of real x into
// dst (length n), mirroring the conjugate-symmetric upper half.
func (p *Plan) realForwardFullInto(dst []complex128, x []float64, s *Scratch) {
	if p.n == 0 {
		return
	}
	keep := p.n/2 + 1
	p.realForwardInto(dst[:keep], x, s)
	for k := keep; k < p.n; k++ {
		dst[k] = cmplx.Conj(dst[p.n-k])
	}
}

// newRadix2Plan precomputes the bit-reversal swap schedule and the
// per-stage twiddle tables for a power-of-two length n. The twiddles are
// generated with the same iterative w *= wBase recurrence the unplanned
// fftRadix2InPlace evaluates, so a planned transform reproduces its
// rounding exactly.
func newRadix2Plan(n int) *radix2Plan {
	p := &radix2Plan{n: n}
	if n <= 1 {
		return p
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			p.swaps = append(p.swaps, int32(i), int32(j))
		}
	}
	p.fwd = stageTwiddles(n, false)
	p.inv = stageTwiddles(n, true)
	return p
}

func stageTwiddles(n int, inverse bool) [][]complex128 {
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	var stages [][]complex128
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		ws, wc := math.Sincos(step)
		wBase := complex(wc, ws)
		tw := make([]complex128, half)
		w := complex(1, 0)
		for off := 0; off < half; off++ {
			tw[off] = w
			w *= wBase
		}
		stages = append(stages, tw)
	}
	return stages
}

// transform runs the in-place radix-2 FFT over a (length n) using the
// cached tables; the butterfly order and arithmetic mirror
// fftRadix2InPlace exactly.
func (p *radix2Plan) transform(a []complex128, inverse bool) {
	n := p.n
	if n <= 1 {
		return
	}
	for i := 0; i < len(p.swaps); i += 2 {
		x, y := p.swaps[i], p.swaps[i+1]
		a[x], a[y] = a[y], a[x]
	}
	tws := p.fwd
	if inverse {
		tws = p.inv
	}
	si := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		tw := tws[si]
		si++
		for start := 0; start < n; start += size {
			for off := 0; off < half; off++ {
				i, j := start+off, start+off+half
				t := a[j] * tw[off]
				a[j] = a[i] - t
				a[i] += t
			}
		}
	}
}

// Scratch is the reusable workspace planned transforms stage through. It
// grows to the largest transform it has served and is reused afterwards,
// so a goroutine classifying same-length series allocates nothing per
// call. A Scratch must not be used concurrently; keep one per goroutine
// (or borrow from a pool, as NewSpectrum does).
type Scratch struct {
	a []complex128 // Bluestein convolution work array (length m)
	z []complex128 // real-input staging / packed half-length series
	f []float64    // detrended-values staging for callers
}

// NewScratch returns an empty workspace; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

func (s *Scratch) complexA(n int) []complex128 {
	s.a = growComplex(s.a, n)
	return s.a
}

func (s *Scratch) complexZ(n int) []complex128 {
	s.z = growComplex(s.z, n)
	return s.z
}

// Floats returns a length-n float64 buffer owned by the scratch, for
// callers staging derived series (e.g. detrended values) without
// allocating per call. Contents are unspecified on return.
func (s *Scratch) Floats(n int) []float64 {
	if cap(s.f) < n {
		s.f = make([]float64, n)
	}
	s.f = s.f[:n]
	return s.f
}

// growComplex returns b resized to length n, reallocating only when
// capacity is short. Contents are unspecified.
func growComplex(b []complex128, n int) []complex128 {
	if cap(b) < n {
		return make([]complex128, n)
	}
	return b[:n]
}

// scratchPool backs the no-scratch convenience entry points (NewSpectrum,
// RealFFT): concurrent pipeline workers each borrow a warm workspace
// instead of allocating transform temporaries per call.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

func getScratch() *Scratch  { return scratchPool.Get().(*Scratch) }
func putScratch(s *Scratch) { scratchPool.Put(s) }
