package report

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
)

// HeatPNG renders a count matrix (rows x cols, row 0 at top) as a PNG
// heatmap with a logarithmic dark-to-warm ramp — the image form of the
// paper's Figure 12 world map. Cells with zero count are black.
func HeatPNG(w io.Writer, counts [][]int, scale int) error {
	if len(counts) == 0 || len(counts[0]) == 0 {
		return fmt.Errorf("report: empty heatmap")
	}
	if scale < 1 {
		scale = 1
	}
	rows, cols := len(counts), len(counts[0])
	maxC := 0
	for _, row := range counts {
		if len(row) != cols {
			return fmt.Errorf("report: ragged heatmap")
		}
		for _, c := range row {
			if c > maxC {
				maxC = c
			}
		}
	}
	img := image.NewRGBA(image.Rect(0, 0, cols*scale, rows*scale))
	logMax := math.Log1p(float64(maxC))
	for y, row := range counts {
		for x, c := range row {
			var px color.RGBA
			if c > 0 && logMax > 0 {
				t := math.Log1p(float64(c)) / logMax
				px = rampColor(t)
			} else {
				px = color.RGBA{A: 255}
			}
			fillCell(img, x, y, scale, px)
		}
	}
	return png.Encode(w, img)
}

// FractionPNG renders a fraction matrix in [0,1] (NaN = dark gray) with a
// linear blue-to-red ramp — the image form of Figure 13.
func FractionPNG(w io.Writer, fracs [][]float64, scale int) error {
	if len(fracs) == 0 || len(fracs[0]) == 0 {
		return fmt.Errorf("report: empty fraction map")
	}
	if scale < 1 {
		scale = 1
	}
	rows, cols := len(fracs), len(fracs[0])
	img := image.NewRGBA(image.Rect(0, 0, cols*scale, rows*scale))
	for y, row := range fracs {
		if len(row) != cols {
			return fmt.Errorf("report: ragged fraction map")
		}
		for x, f := range row {
			var px color.RGBA
			switch {
			case math.IsNaN(f):
				px = color.RGBA{R: 24, G: 24, B: 24, A: 255}
			default:
				if f < 0 {
					f = 0
				}
				if f > 1 {
					f = 1
				}
				px = divergingColor(f)
			}
			fillCell(img, x, y, scale, px)
		}
	}
	return png.Encode(w, img)
}

func fillCell(img *image.RGBA, x, y, scale int, px color.RGBA) {
	for dy := 0; dy < scale; dy++ {
		for dx := 0; dx < scale; dx++ {
			img.SetRGBA(x*scale+dx, y*scale+dy, px)
		}
	}
}

// rampColor maps t in [0,1] onto a black → orange → white ramp.
func rampColor(t float64) color.RGBA {
	r := clampByte(3 * t * 255)
	g := clampByte((3*t - 1) * 255)
	b := clampByte((3*t - 2) * 255)
	return color.RGBA{R: r, G: g, B: b, A: 255}
}

// divergingColor maps f in [0,1] onto blue (0, always-on) → red (1, diurnal).
func divergingColor(f float64) color.RGBA {
	return color.RGBA{
		R: clampByte(f * 255),
		G: clampByte(64 * (1 - math.Abs(2*f-1))),
		B: clampByte((1 - f) * 255),
		A: 255,
	}
}

func clampByte(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v)
}
