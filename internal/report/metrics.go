package report

import (
	"fmt"
	"strconv"
	"strings"

	"sleepnet/internal/metrics"
)

// Metrics renders a snapshot as aligned text tables: one for counters, one
// for gauges, one for histograms (count / sum / mean). An empty snapshot
// renders a single placeholder line so callers can print unconditionally.
func Metrics(s metrics.Snapshot) string {
	if s.Empty() {
		return "(no metrics recorded)\n"
	}
	var b strings.Builder
	if len(s.Counters) > 0 {
		rows := make([][]string, 0, len(s.Counters))
		for _, c := range s.Counters {
			rows = append(rows, []string{c.Name, strconv.FormatInt(c.Value, 10)})
		}
		b.WriteString(Table([]string{"counter", "value"}, rows))
	}
	if len(s.Gauges) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		rows := make([][]string, 0, len(s.Gauges))
		for _, g := range s.Gauges {
			rows = append(rows, []string{g.Name, F(g.Value)})
		}
		b.WriteString(Table([]string{"gauge", "value"}, rows))
	}
	if len(s.Histograms) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		rows := make([][]string, 0, len(s.Histograms))
		for _, h := range s.Histograms {
			rows = append(rows, []string{
				h.Name,
				h.Unit,
				strconv.FormatInt(h.Count, 10),
				F(h.Sum),
				F(h.Mean()),
			})
		}
		b.WriteString(Table([]string{"histogram", "unit", "count", "sum", "mean"}, rows))
	}
	return b.String()
}

// RunCost renders the handful of headline cost counters of a campaign
// snapshot (probes, rounds, blocks) as a short single-line-per-item list —
// the view cmd/inspect shows for saved datasets. Counters absent from the
// snapshot are skipped.
func RunCost(s metrics.Snapshot) string {
	var b strings.Builder
	for _, name := range []string{
		"trinocular.probes_sent",
		"trinocular.rounds",
		"trinocular.retries",
		"trinocular.rounds_rate_limited",
		"pipeline.blocks_measured",
		"pipeline.failed_rounds",
		"analysis.blocks_measured",
		"analysis.blocks_quarantined",
		"dsp.fft_calls",
	} {
		if v, ok := s.Lookup(name); ok {
			fmt.Fprintf(&b, "  %-32s %d\n", name, v)
		}
	}
	return b.String()
}
