// Package report renders experiment results as aligned text tables and
// ASCII charts — the terminal equivalents of the paper's tables and
// figures, used by cmd/experiments and the examples.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table renders an aligned text table with a header rule.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders one horizontal bar scaled to width for value in [0, max].
func Bar(value, max float64, width int) string {
	if width <= 0 || max <= 0 || value < 0 || math.IsNaN(value) {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// BarChart renders labeled horizontal bars with values.
func BarChart(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		return "barchart: label/value mismatch\n"
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		fmt.Fprintf(&b, "%-*s %8.4f |%s\n", maxL, labels[i], v, Bar(v, maxV, width))
	}
	return b.String()
}

// Series renders a y(x) line chart of values as ASCII, height rows tall.
// The y-range is [min, max] of the data (or [0,1] when flat).
func Series(values []float64, width, height int) string {
	if len(values) == 0 || width <= 0 || height <= 0 {
		return ""
	}
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	//lint:allow floateq: flat-data guard; only exact equality collapses the y-range to zero width
	if max == min {
		max = min + 1
	}
	// Downsample to width columns by averaging.
	cols := make([]float64, width)
	for c := 0; c < width; c++ {
		lo := c * len(values) / width
		hi := (c + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		var s float64
		for i := lo; i < hi && i < len(values); i++ {
			s += values[i]
		}
		cols[c] = s / float64(hi-lo)
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c, v := range cols {
		r := int((v - min) / (max - min) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		grid[height-1-r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.3f +%s\n", max, strings.Repeat("-", width))
	for _, row := range grid {
		fmt.Fprintf(&b, "%8s |%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%8.3f +%s\n", min, strings.Repeat("-", width))
	return b.String()
}

// grayRamp maps density 0..1 to characters, darkest last.
const grayRamp = " .:-=+*#%@"

// Heatmap renders a 2D count grid (rows x cols, row 0 at the top) with a
// logarithmic grayscale ramp, suitable for the world maps of Figs 12–13.
func Heatmap(counts [][]int) string {
	maxC := 0
	for _, row := range counts {
		for _, c := range row {
			if c > maxC {
				maxC = c
			}
		}
	}
	var b strings.Builder
	if maxC == 0 {
		return "(empty heatmap)\n"
	}
	logMax := math.Log1p(float64(maxC))
	for _, row := range counts {
		for _, c := range row {
			idx := 0
			if c > 0 {
				idx = int(math.Log1p(float64(c)) / logMax * float64(len(grayRamp)-1))
				if idx == 0 {
					idx = 1
				}
			}
			b.WriteByte(grayRamp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FractionMap renders a 2D fraction grid in [0,1] (NaN = blank) with a
// linear ramp.
func FractionMap(fracs [][]float64) string {
	var b strings.Builder
	for _, row := range fracs {
		for _, f := range row {
			switch {
			case math.IsNaN(f):
				b.WriteByte(' ')
			default:
				if f < 0 {
					f = 0
				}
				if f > 1 {
					f = 1
				}
				idx := int(f * float64(len(grayRamp)-1))
				if idx == 0 && f > 0 {
					idx = 1
				}
				b.WriteByte(grayRamp[idx])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string {
	if math.IsNaN(f) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", f*100)
}

// F formats a float compactly.
func F(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	a := math.Abs(v)
	switch {
	case a != 0 && (a < 1e-3 || a >= 1e6):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
