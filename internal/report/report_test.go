package report

import (
	"bytes"
	"image/png"
	"math"
	"strings"
	"testing"
)

func TestTable(t *testing.T) {
	out := Table([]string{"code", "frac"}, [][]string{{"US", "0.002"}, {"CN", "0.498"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "code") || !strings.Contains(lines[3], "CN") {
		t.Fatalf("table:\n%s", out)
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatal("missing rule")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 1, 10); got != "#####" {
		t.Fatalf("Bar = %q", got)
	}
	if got := Bar(2, 1, 10); got != "##########" {
		t.Fatalf("clamped Bar = %q", got)
	}
	if Bar(0.5, 0, 10) != "" || Bar(math.NaN(), 1, 10) != "" || Bar(0.5, 1, 0) != "" {
		t.Fatal("degenerate bars should be empty")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"dyn", "dial"}, []float64{0.19, 0.03}, 20)
	if !strings.Contains(out, "dyn") || !strings.Contains(out, "dial") {
		t.Fatalf("chart:\n%s", out)
	}
	// dyn bar longer than dial bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[0], "#") <= strings.Count(lines[1], "#") {
		t.Fatalf("bar ordering wrong:\n%s", out)
	}
	if got := BarChart([]string{"a"}, []float64{1, 2}, 10); !strings.Contains(got, "mismatch") {
		t.Fatal("mismatch should be reported")
	}
}

func TestSeries(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = math.Sin(float64(i) / 10)
	}
	out := Series(vals, 40, 8)
	if !strings.Contains(out, "*") {
		t.Fatalf("series has no points:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 { // top rule + 8 rows + bottom rule
		t.Fatalf("height = %d", len(lines))
	}
	if Series(nil, 10, 5) != "" || Series(vals, 0, 5) != "" {
		t.Fatal("degenerate series should be empty")
	}
	// Flat series should not panic.
	if out := Series([]float64{1, 1, 1}, 10, 3); out == "" {
		t.Fatal("flat series should render")
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap([][]int{{0, 1}, {10, 100}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 2 {
		t.Fatalf("heatmap shape:\n%s", out)
	}
	if lines[0][0] != ' ' {
		t.Fatal("zero cell should be blank")
	}
	if lines[1][1] == ' ' || lines[1][1] == lines[0][1] {
		t.Fatalf("ramp not increasing:\n%s", out)
	}
	if got := Heatmap([][]int{{0}}); !strings.Contains(got, "empty") {
		t.Fatal("empty heatmap")
	}
}

func TestFractionMap(t *testing.T) {
	out := FractionMap([][]float64{{math.NaN(), 0, 0.5, 1}})
	line := strings.Split(out, "\n")[0]
	if line[0] != ' ' {
		t.Fatal("NaN should be blank")
	}
	if line[1] != ' ' {
		t.Fatal("zero renders blank")
	}
	if line[2] == ' ' || line[3] == ' ' {
		t.Fatal("positive fractions should render")
	}
	// Out-of-range clamps rather than panics.
	FractionMap([][]float64{{-1, 2}})
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.114); got != "11.4%" {
		t.Fatalf("Pct = %q", got)
	}
	if Pct(math.NaN()) != "n/a" || F(math.NaN()) != "n/a" {
		t.Fatal("NaN formatting")
	}
	if got := F(6.61e-8); got != "6.61e-08" {
		t.Fatalf("F small = %q", got)
	}
	if got := F(0.5); got != "0.5000" {
		t.Fatalf("F = %q", got)
	}
	if got := F(0); got != "0.0000" {
		t.Fatalf("F zero = %q", got)
	}
}

func TestHeatPNG(t *testing.T) {
	counts := [][]int{{0, 1, 10}, {100, 1000, 0}}
	var buf bytes.Buffer
	if err := HeatPNG(&buf, counts, 4); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 12 || b.Dy() != 8 {
		t.Fatalf("dims = %dx%d", b.Dx(), b.Dy())
	}
	// Zero cell is black, max cell is bright.
	r0, g0, b0, _ := img.At(0, 0).RGBA()
	if r0 != 0 || g0 != 0 || b0 != 0 {
		t.Fatalf("zero cell = %v %v %v", r0, g0, b0)
	}
	rMax, gMax, _, _ := img.At(5, 5).RGBA() // the 1000 cell, scaled
	if rMax == 0 && gMax == 0 {
		t.Fatal("max cell should be bright")
	}
	if err := HeatPNG(&buf, nil, 1); err == nil {
		t.Fatal("empty should error")
	}
	if err := HeatPNG(&buf, [][]int{{1, 2}, {3}}, 1); err == nil {
		t.Fatal("ragged should error")
	}
}

func TestFractionPNG(t *testing.T) {
	fr := [][]float64{{0, 0.5, 1, math.NaN()}}
	var buf bytes.Buffer
	if err := FractionPNG(&buf, fr, 2); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// f=0 is blue-dominant, f=1 red-dominant.
	r0, _, b0, _ := img.At(0, 0).RGBA()
	r1, _, b1, _ := img.At(5, 0).RGBA()
	if !(b0 > r0) {
		t.Fatalf("f=0 pixel r=%v b=%v, want blue", r0, b0)
	}
	if !(r1 > b1) {
		t.Fatalf("f=1 pixel r=%v b=%v, want red", r1, b1)
	}
	if err := FractionPNG(&buf, nil, 1); err == nil {
		t.Fatal("empty should error")
	}
	// Out-of-range fractions clamp.
	if err := FractionPNG(&buf, [][]float64{{-3, 7}}, 1); err != nil {
		t.Fatal(err)
	}
}
