// Package outage analyzes the block-state transitions the Trinocular-style
// prober emits: it reconstructs outage episodes, computes per-block
// reliability summaries (availability, MTBF, MTTR), and aggregates them —
// the paper's companion analysis ("we correlate diurnal usage and outages
// to economic factors", §7).
package outage

import (
	"encoding/json"
	"fmt"
	"math"

	"sleepnet/internal/core"
)

// Episode is one contiguous down period, in probing rounds.
type Episode struct {
	// Start is the round the block was declared down.
	Start int
	// End is the round the block recovered; for an outage still open at
	// the end of measurement, End == totalRounds and Ongoing is true.
	End     int
	Ongoing bool
}

// Rounds returns the episode length in rounds.
func (e Episode) Rounds() int { return e.End - e.Start }

// Episodes reconstructs outage episodes from a block's ordered state
// transitions. Events must alternate down/up as the prober emits them; a
// leading recovery event (block started down) opens an episode at round 0.
func Episodes(events []core.OutageEvent, totalRounds int) ([]Episode, error) {
	if totalRounds < 0 {
		return nil, fmt.Errorf("outage: negative totalRounds %d", totalRounds)
	}
	var eps []Episode
	openStart := -1
	for i, ev := range events {
		if ev.Round < 0 || ev.Round > totalRounds {
			return nil, fmt.Errorf("outage: event %d at round %d outside [0, %d]", i, ev.Round, totalRounds)
		}
		if i > 0 && ev.Round < events[i-1].Round {
			return nil, fmt.Errorf("outage: events out of order at %d", i)
		}
		if ev.Down {
			if openStart >= 0 {
				return nil, fmt.Errorf("outage: double down event at round %d", ev.Round)
			}
			openStart = ev.Round
		} else {
			start := openStart
			if start < 0 {
				// Block was down from the beginning of measurement.
				start = 0
			}
			eps = append(eps, Episode{Start: start, End: ev.Round})
			openStart = -1
		}
	}
	if openStart >= 0 {
		eps = append(eps, Episode{Start: openStart, End: totalRounds, Ongoing: true})
	}
	return eps, nil
}

// Summary is a block's reliability over a measurement window.
type Summary struct {
	// Episodes is the number of distinct outages.
	Episodes int
	// DownRounds is the total number of rounds spent down.
	DownRounds int
	// TotalRounds is the measurement length.
	TotalRounds int
	// Uptime is 1 - DownRounds/TotalRounds.
	Uptime float64
	// MeanEpisodeRounds is the mean outage length (MTTR in rounds);
	// NaN with no episodes.
	MeanEpisodeRounds float64
	// MTBFRounds is the mean number of rounds between outage starts;
	// NaN with fewer than two episodes.
	MTBFRounds float64
}

// Summarize computes the reliability summary from episodes.
func Summarize(eps []Episode, totalRounds int) Summary {
	s := Summary{Episodes: len(eps), TotalRounds: totalRounds}
	for _, e := range eps {
		s.DownRounds += e.Rounds()
	}
	if totalRounds > 0 {
		s.Uptime = 1 - float64(s.DownRounds)/float64(totalRounds)
	} else {
		s.Uptime = math.NaN()
	}
	if len(eps) > 0 {
		s.MeanEpisodeRounds = float64(s.DownRounds) / float64(len(eps))
	} else {
		s.MeanEpisodeRounds = math.NaN()
	}
	if len(eps) >= 2 {
		span := eps[len(eps)-1].Start - eps[0].Start
		s.MTBFRounds = float64(span) / float64(len(eps)-1)
	} else {
		s.MTBFRounds = math.NaN()
	}
	return s
}

// jsonSummary mirrors Summary with pointer float fields: JSON cannot
// represent NaN, so the "undefined" summaries (no episodes, empty window)
// are encoded as null and decoded back to NaN.
type jsonSummary struct {
	Episodes          int      `json:"episodes"`
	DownRounds        int      `json:"downRounds"`
	TotalRounds       int      `json:"totalRounds"`
	Uptime            *float64 `json:"uptime"`
	MeanEpisodeRounds *float64 `json:"meanEpisodeRounds"`
	MTBFRounds        *float64 `json:"mtbfRounds"`
}

func optFloat(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

func fromOptFloat(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

// MarshalJSON encodes the summary with NaN fields as null.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonSummary{
		Episodes:          s.Episodes,
		DownRounds:        s.DownRounds,
		TotalRounds:       s.TotalRounds,
		Uptime:            optFloat(s.Uptime),
		MeanEpisodeRounds: optFloat(s.MeanEpisodeRounds),
		MTBFRounds:        optFloat(s.MTBFRounds),
	})
}

// UnmarshalJSON decodes null float fields back to NaN.
func (s *Summary) UnmarshalJSON(b []byte) error {
	var js jsonSummary
	if err := json.Unmarshal(b, &js); err != nil {
		return err
	}
	s.Episodes = js.Episodes
	s.DownRounds = js.DownRounds
	s.TotalRounds = js.TotalRounds
	s.Uptime = fromOptFloat(js.Uptime)
	s.MeanEpisodeRounds = fromOptFloat(js.MeanEpisodeRounds)
	s.MTBFRounds = fromOptFloat(js.MTBFRounds)
	return nil
}

// NinesString formats uptime as a conventional "three nines" style
// percentage with two decimals.
func (s Summary) NinesString() string {
	if math.IsNaN(s.Uptime) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", s.Uptime*100)
}

// Merge pools several block summaries into an aggregate (weighted by
// rounds), for per-country or per-ISP reliability reporting.
func Merge(summaries []Summary) Summary {
	var agg Summary
	for _, s := range summaries {
		agg.Episodes += s.Episodes
		agg.DownRounds += s.DownRounds
		agg.TotalRounds += s.TotalRounds
	}
	if agg.TotalRounds > 0 {
		agg.Uptime = 1 - float64(agg.DownRounds)/float64(agg.TotalRounds)
	} else {
		agg.Uptime = math.NaN()
	}
	if agg.Episodes > 0 {
		agg.MeanEpisodeRounds = float64(agg.DownRounds) / float64(agg.Episodes)
	} else {
		agg.MeanEpisodeRounds = math.NaN()
	}
	agg.MTBFRounds = math.NaN()
	return agg
}
