package outage

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sleepnet/internal/core"
)

func ev(round int, down bool) core.OutageEvent { return core.OutageEvent{Round: round, Down: down} }

func TestEpisodesBasic(t *testing.T) {
	eps, err := Episodes([]core.OutageEvent{ev(100, true), ev(130, false)}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 1 || eps[0].Start != 100 || eps[0].End != 130 || eps[0].Ongoing {
		t.Fatalf("eps = %+v", eps)
	}
	if eps[0].Rounds() != 30 {
		t.Fatalf("Rounds = %d", eps[0].Rounds())
	}
}

func TestEpisodesMultipleAndOngoing(t *testing.T) {
	events := []core.OutageEvent{
		ev(10, true), ev(20, false),
		ev(50, true), ev(80, false),
		ev(900, true),
	}
	eps, err := Episodes(events, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 3 {
		t.Fatalf("eps = %+v", eps)
	}
	last := eps[2]
	if !last.Ongoing || last.End != 1000 || last.Rounds() != 100 {
		t.Fatalf("ongoing = %+v", last)
	}
}

func TestEpisodesLeadingRecovery(t *testing.T) {
	// Block starts down; the first event is the recovery.
	eps, err := Episodes([]core.OutageEvent{ev(40, false)}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 1 || eps[0].Start != 0 || eps[0].End != 40 {
		t.Fatalf("eps = %+v", eps)
	}
}

func TestEpisodesEmpty(t *testing.T) {
	eps, err := Episodes(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 0 {
		t.Fatalf("eps = %+v", eps)
	}
}

func TestEpisodesErrors(t *testing.T) {
	if _, err := Episodes([]core.OutageEvent{ev(10, true), ev(20, true)}, 100); err == nil {
		t.Fatal("double down should error")
	}
	if _, err := Episodes([]core.OutageEvent{ev(50, true), ev(20, false)}, 100); err == nil {
		t.Fatal("out-of-order should error")
	}
	if _, err := Episodes([]core.OutageEvent{ev(500, true)}, 100); err == nil {
		t.Fatal("out-of-range should error")
	}
	if _, err := Episodes(nil, -1); err == nil {
		t.Fatal("negative rounds should error")
	}
}

func TestSummarize(t *testing.T) {
	eps := []Episode{{Start: 100, End: 130}, {Start: 500, End: 520}}
	s := Summarize(eps, 1000)
	if s.Episodes != 2 || s.DownRounds != 50 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Uptime-0.95) > 1e-12 {
		t.Fatalf("uptime = %v", s.Uptime)
	}
	if s.MeanEpisodeRounds != 25 {
		t.Fatalf("MTTR = %v", s.MeanEpisodeRounds)
	}
	if s.MTBFRounds != 400 {
		t.Fatalf("MTBF = %v", s.MTBFRounds)
	}
	if s.NinesString() != "95.00%" {
		t.Fatalf("NinesString = %q", s.NinesString())
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	s := Summarize(nil, 100)
	if s.Uptime != 1 || !math.IsNaN(s.MeanEpisodeRounds) || !math.IsNaN(s.MTBFRounds) {
		t.Fatalf("no-outage summary = %+v", s)
	}
	s = Summarize(nil, 0)
	if !math.IsNaN(s.Uptime) || s.NinesString() != "n/a" {
		t.Fatalf("zero-rounds summary = %+v", s)
	}
	s = Summarize([]Episode{{Start: 10, End: 30}}, 100)
	if !math.IsNaN(s.MTBFRounds) || s.MeanEpisodeRounds != 20 {
		t.Fatalf("single-episode summary = %+v", s)
	}
}

func TestMerge(t *testing.T) {
	a := Summarize([]Episode{{Start: 0, End: 10}}, 100) // 90% up
	b := Summarize(nil, 100)                            // 100% up
	m := Merge([]Summary{a, b})
	if m.TotalRounds != 200 || m.DownRounds != 10 || m.Episodes != 1 {
		t.Fatalf("merge = %+v", m)
	}
	if math.Abs(m.Uptime-0.95) > 1e-12 {
		t.Fatalf("merged uptime = %v", m.Uptime)
	}
	empty := Merge(nil)
	if !math.IsNaN(empty.Uptime) {
		t.Fatal("empty merge uptime should be NaN")
	}
}

func TestEpisodesRoundTripProperty(t *testing.T) {
	// Build random well-formed event sequences; Episodes must preserve
	// total down rounds and never error.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 200 + r.Intn(1000)
		var events []core.OutageEvent
		round := 0
		wantDown := 0
		for round < total-20 && r.Float64() < 0.7 {
			start := round + 1 + r.Intn(50)
			end := start + 1 + r.Intn(30)
			if end >= total {
				break
			}
			events = append(events, ev(start, true), ev(end, false))
			wantDown += end - start
			round = end
		}
		eps, err := Episodes(events, total)
		if err != nil {
			return false
		}
		s := Summarize(eps, total)
		return s.DownRounds == wantDown && s.Episodes == len(events)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	cases := []Summary{
		Summarize(nil, 100), // NaN MTTR and MTBF
		Summarize(nil, 0),   // everything NaN
		Summarize([]Episode{{Start: 5, End: 9}}, 100), // NaN MTBF only
		Summarize([]Episode{{Start: 5, End: 9}, {Start: 50, End: 51}}, 100),
	}
	for i, want := range cases {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var got Summary
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		same := func(a, b float64) bool {
			return a == b || (math.IsNaN(a) && math.IsNaN(b))
		}
		if got.Episodes != want.Episodes || got.DownRounds != want.DownRounds ||
			got.TotalRounds != want.TotalRounds || !same(got.Uptime, want.Uptime) ||
			!same(got.MeanEpisodeRounds, want.MeanEpisodeRounds) ||
			!same(got.MTBFRounds, want.MTBFRounds) {
			t.Fatalf("case %d: round trip changed summary: %+v -> %+v", i, want, got)
		}
	}
}
