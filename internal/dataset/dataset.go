// Package dataset persists measurement results: studies (per-block
// classifications with their covariates) can be saved to a versioned,
// compressed binary format and reloaded, and exported to CSV for external
// tools — the equivalent of the paper's published datasets (the authors
// release their availability and diurnal analyses through the LANDER
// project; this module's datasets play that role for the simulation).
package dataset

import (
	"compress/gzip"
	"encoding/csv"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"sleepnet/internal/analysis"
	"sleepnet/internal/core"
	"sleepnet/internal/durable"
	"sleepnet/internal/metrics"
)

// magic and version identify the file format.
const (
	magic   = "SLEEPNET"
	version = 1
)

// ErrFormat reports an unrecognized or incompatible file.
var ErrFormat = errors.New("dataset: unrecognized format")

// BlockRecord is the persisted form of one measured block.
type BlockRecord struct {
	ID              uint32
	Country         string
	Region          string
	Lat, Lon        float64
	ASN             int
	Org             string
	LinkType        string
	Slash8          int
	AllocDate       time.Time
	Class           int // core.DiurnalClass
	Phase           float64
	StrongestCPD    float64
	Days            int
	ProbesSent      int64
	OutageEpisodes  int
	OutageDownRound int
	Sparse          bool
}

// Dataset is a persisted study.
type Dataset struct {
	// Meta describes the campaign.
	CreatedAt time.Time
	Seed      uint64
	Days      int
	Rounds    int
	Blocks    []BlockRecord
	// Metrics is the run-cost snapshot of the campaign that produced the
	// dataset (probes sent, rounds, per-phase tallies). Zero-valued for
	// uninstrumented runs and for files written before the field existed —
	// gob decodes both identically, so the format version stays at 1.
	Metrics metrics.Snapshot
}

// FromStudy converts a study into its persistable form.
func FromStudy(st *analysis.Study) *Dataset {
	ds := &Dataset{
		CreatedAt: st.Cfg.Start,
		Seed:      st.Cfg.Seed,
		Rounds:    st.Cfg.Rounds,
		Days:      int(float64(st.Cfg.Rounds) * st.Cfg.Period.Hours() / 24),
		Blocks:    make([]BlockRecord, 0, len(st.Blocks)),
	}
	for _, b := range st.Blocks {
		if b.ErrMsg != "" {
			continue
		}
		rec := BlockRecord{
			ID:              uint32(b.Info.ID),
			Country:         b.Info.Country.Code,
			Region:          b.Info.Country.Region,
			Lat:             b.Info.Lat,
			Lon:             b.Info.Lon,
			ASN:             b.Info.ASN,
			Org:             b.Info.OrgName,
			LinkType:        b.Info.LinkType,
			Slash8:          b.Info.Slash8,
			AllocDate:       b.Info.AllocDate,
			Class:           int(b.Class),
			Phase:           b.Phase,
			StrongestCPD:    b.StrongestCPD,
			Days:            b.Days,
			ProbesSent:      b.ProbesSent,
			OutageEpisodes:  b.Outage.Episodes,
			OutageDownRound: b.Outage.DownRounds,
			Sparse:          b.Sparse,
		}
		ds.Blocks = append(ds.Blocks, rec)
	}
	return ds
}

// DiurnalClass recovers the typed class of a record.
func (r BlockRecord) DiurnalClass() core.DiurnalClass { return core.DiurnalClass(r.Class) }

// Write serializes the dataset (gzip-compressed gob with a magic header).
func (d *Dataset) Write(w io.Writer) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	if _, err := w.Write([]byte{version}); err != nil {
		return fmt.Errorf("dataset: writing version: %w", err)
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(d); err != nil {
		return fmt.Errorf("dataset: encoding: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("dataset: finishing compression: %w", err)
	}
	return nil
}

// Read deserializes a dataset written by Write.
func Read(r io.Reader) (*Dataset, error) {
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("%w: short header (%v)", ErrFormat, err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, head[:len(magic)])
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, head[len(magic)])
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	defer zr.Close()
	var d Dataset
	if err := gob.NewDecoder(zr).Decode(&d); err != nil {
		return nil, fmt.Errorf("dataset: decoding: %w", err)
	}
	return &d, nil
}

// Save writes the dataset to a file, atomically via a temp file rename.
// The temp file is fsynced before the rename and the directory after it
// (via durable.Rename) so a power cut cannot leave the final path pointing
// at a half-written dataset — the gap sleeplint's fsyncorder rule flagged.
func (d *Dataset) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := d.Write(f); err != nil {
		_ = f.Close()      // best effort: the write error is the one to surface
		_ = os.Remove(tmp) // temp file is already orphaned
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp) // temp file is already orphaned
		return fmt.Errorf("dataset: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp) // temp file is already orphaned
		return fmt.Errorf("dataset: %w", err)
	}
	return durable.Rename(tmp, path)
}

// Load reads a dataset from a file.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// csvHeader lists the exported columns.
var csvHeader = []string{
	"block", "country", "region", "lat", "lon", "asn", "org", "link",
	"slash8", "alloc_date", "class", "phase", "strongest_cpd", "days",
	"probes", "outage_episodes", "outage_down_rounds", "sparse",
}

// ExportCSV writes the per-block records as CSV.
func (d *Dataset) ExportCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("dataset: csv header: %w", err)
	}
	for _, b := range d.Blocks {
		row := []string{
			blockString(b.ID),
			b.Country, b.Region,
			strconv.FormatFloat(b.Lat, 'f', 4, 64),
			strconv.FormatFloat(b.Lon, 'f', 4, 64),
			strconv.Itoa(b.ASN), b.Org, b.LinkType,
			strconv.Itoa(b.Slash8),
			b.AllocDate.Format("2006-01-02"),
			core.DiurnalClass(b.Class).String(),
			strconv.FormatFloat(b.Phase, 'f', 4, 64),
			strconv.FormatFloat(b.StrongestCPD, 'f', 4, 64),
			strconv.Itoa(b.Days),
			strconv.FormatInt(b.ProbesSent, 10),
			strconv.Itoa(b.OutageEpisodes),
			strconv.Itoa(b.OutageDownRound),
			strconv.FormatBool(b.Sparse),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func blockString(id uint32) string {
	return fmt.Sprintf("%d.%d.%d/24", byte(id>>24), byte(id>>16), byte(id>>8))
}

// Summary reports headline statistics of a dataset.
type Summary struct {
	Blocks, Measured, Sparse       int
	Strict, Relaxed, NonDiurnal    int
	StrictFraction, EitherFraction float64
}

// Summarize computes headline statistics.
func (d *Dataset) Summarize() Summary {
	var s Summary
	s.Blocks = len(d.Blocks)
	for _, b := range d.Blocks {
		if b.Sparse {
			s.Sparse++
			continue
		}
		s.Measured++
		switch core.DiurnalClass(b.Class) {
		case core.StrictDiurnal:
			s.Strict++
		case core.RelaxedDiurnal:
			s.Relaxed++
		default:
			s.NonDiurnal++
		}
	}
	if s.Measured > 0 {
		s.StrictFraction = float64(s.Strict) / float64(s.Measured)
		s.EitherFraction = float64(s.Strict+s.Relaxed) / float64(s.Measured)
	}
	return s
}
