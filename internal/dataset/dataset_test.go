package dataset

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sleepnet/internal/analysis"
	"sleepnet/internal/core"
	"sleepnet/internal/metrics"
	"sleepnet/internal/world"
)

var (
	dsOnce  sync.Once
	dsStudy *analysis.Study
	dsErr   error
)

func testStudy(t *testing.T) *analysis.Study {
	t.Helper()
	dsOnce.Do(func() {
		var w *world.World
		w, dsErr = world.Generate(world.Config{Blocks: 250, Seed: 77, OutagesPerBlockWeek: 0.2})
		if dsErr != nil {
			return
		}
		dsStudy, dsErr = analysis.MeasureWorld(w, analysis.StudyConfig{Days: 7, Seed: 5})
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsStudy
}

func TestRoundTripInMemory(t *testing.T) {
	st := testStudy(t)
	ds := FromStudy(st)
	if len(ds.Blocks) == 0 {
		t.Fatal("empty dataset")
	}
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Blocks) != len(ds.Blocks) {
		t.Fatalf("blocks: %d vs %d", len(got.Blocks), len(ds.Blocks))
	}
	for i := range ds.Blocks {
		if got.Blocks[i] != ds.Blocks[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, got.Blocks[i], ds.Blocks[i])
		}
	}
	if got.Seed != ds.Seed || got.Rounds != ds.Rounds {
		t.Fatal("metadata lost")
	}
}

func TestSaveLoadFile(t *testing.T) {
	st := testStudy(t)
	ds := FromStudy(st)
	path := filepath.Join(t.TempDir(), "study.sleepnet")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Blocks) != len(ds.Blocks) {
		t.Fatal("load mismatch")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a dataset at all"))); !errors.Is(err, ErrFormat) {
		t.Fatalf("garbage: %v", err)
	}
	if _, err := Read(bytes.NewReader([]byte("SL"))); !errors.Is(err, ErrFormat) {
		t.Fatalf("short: %v", err)
	}
	// Right magic, wrong version.
	bad := append([]byte("SLEEPNET"), 99)
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
		t.Fatalf("version: %v", err)
	}
	// Right header, corrupt body.
	ok := append([]byte("SLEEPNET"), 1)
	ok = append(ok, []byte("garbage body")...)
	if _, err := Read(bytes.NewReader(ok)); err == nil {
		t.Fatal("corrupt body should error")
	}
}

func TestExportCSV(t *testing.T) {
	st := testStudy(t)
	ds := FromStudy(st)
	var buf bytes.Buffer
	if err := ds.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(ds.Blocks)+1 {
		t.Fatalf("lines = %d, records = %d", len(lines), len(ds.Blocks))
	}
	if !strings.HasPrefix(lines[0], "block,country,region") {
		t.Fatalf("header = %q", lines[0])
	}
	// Spot-check a row parses back into the right number of fields.
	if got := strings.Count(lines[1], ","); got != len(csvHeader)-1 {
		t.Fatalf("row has %d commas, want %d", got, len(csvHeader)-1)
	}
}

func TestSummarizeMatchesStudy(t *testing.T) {
	st := testStudy(t)
	ds := FromStudy(st)
	sum := ds.Summarize()
	wantStrict, wantEither := st.DiurnalFraction()
	if sum.Measured != len(st.Measured()) {
		t.Fatalf("measured = %d, want %d", sum.Measured, len(st.Measured()))
	}
	if !near(sum.StrictFraction, wantStrict) || !near(sum.EitherFraction, wantEither) {
		t.Fatalf("fractions %v/%v vs study %v/%v",
			sum.StrictFraction, sum.EitherFraction, wantStrict, wantEither)
	}
	if sum.Strict+sum.Relaxed+sum.NonDiurnal != sum.Measured {
		t.Fatal("class counts inconsistent")
	}
}

func near(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func TestDiurnalClassRecovery(t *testing.T) {
	r := BlockRecord{Class: int(core.StrictDiurnal)}
	if r.DiurnalClass() != core.StrictDiurnal {
		t.Fatal("class recovery")
	}
}

func TestBlockString(t *testing.T) {
	if got := blockString(0x01091500); got != "1.9.21/24" {
		t.Fatalf("blockString = %q", got)
	}
}

// TestMetricsSnapshotRoundTrip pins that a run-cost snapshot attached to a
// dataset survives serialization, and that files written without one decode
// to an empty snapshot (the pre-snapshot format is version-compatible).
func TestMetricsSnapshotRoundTrip(t *testing.T) {
	st := testStudy(t)
	ds := FromStudy(st)

	reg := metrics.New()
	reg.Counter("trinocular.probes_sent").Add(12345)
	reg.Counter("analysis.blocks_measured").Add(250)
	reg.Gauge("campaign.progress").Set(1)
	reg.Histogram("supervisor.checkpoint_bytes", "bytes", metrics.ExpBuckets(1024, 4, 4)).Observe(2048)
	ds.Metrics = reg.Snapshot()

	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics.Counter("trinocular.probes_sent") != 12345 {
		t.Fatalf("probes_sent = %d", got.Metrics.Counter("trinocular.probes_sent"))
	}
	wantJSON, gotJSON := new(bytes.Buffer), new(bytes.Buffer)
	if err := ds.Metrics.WriteJSON(wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := got.Metrics.WriteJSON(gotJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
		t.Fatalf("snapshot changed across round trip:\n%s\nvs\n%s", wantJSON, gotJSON)
	}

	// A dataset written without a snapshot reads back empty.
	plain := FromStudy(st)
	buf.Reset()
	if err := plain.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err = Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Metrics.Empty() {
		t.Fatal("expected empty snapshot on uninstrumented dataset")
	}
}
