package monitor

// study.go — the deterministic export of a completed monitoring campaign.
// A Study is derived ONLY from committed per-block state, so two runs that
// commit the same rounds — one uninterrupted, one crash-recovered — encode
// to identical bytes. That byte-equality is the chaos harness's oracle.

import (
	"encoding/json"
	"fmt"

	"sleepnet/internal/core"
)

// StudyBlock is one block's complete campaign record.
type StudyBlock struct {
	ID string `json:"id"`
	// Short is the Âs series, one value per round.
	Short []float64 `json:"short"`
	// Events are the prober's outage transitions.
	Events []core.OutageEvent `json:"events,omitempty"`
	// Estimator is the final EWMA state.
	Estimator core.EstimatorState `json:"estimator"`
	// FailedRounds counts rounds with no usable observation.
	FailedRounds int `json:"failed_rounds,omitempty"`
}

// Study is the campaign's exported result, blocks sorted by id.
type Study struct {
	Seed   uint64       `json:"seed"`
	Rounds int          `json:"rounds"`
	Blocks []StudyBlock `json:"blocks"`
}

// Study exports the campaign result. It is only defined for completed runs:
// a drained or halted run has committed state on disk but no full series to
// report — resume it (same WALDir) to completion first.
func (r *Result) Study() (*Study, error) {
	if !r.Completed {
		return nil, fmt.Errorf("monitor: study requires a completed run")
	}
	var st *Study
	for _, s := range r.shards {
		if st == nil {
			st = &Study{Seed: s.m.cfg.Seed, Rounds: s.m.cfg.Rounds}
		}
		// Shards hold contiguous slices of the global sorted order, so
		// walking them in index order yields globally sorted blocks.
		for _, mon := range s.mons {
			st.Blocks = append(st.Blocks, StudyBlock{
				ID:           mon.id.String(),
				Short:        mon.short,
				Events:       mon.events,
				Estimator:    mon.est.State(),
				FailedRounds: mon.failed,
			})
		}
	}
	return st, nil
}

// Encode serializes the study deterministically (indented JSON; float
// formatting in encoding/json is bit-exact for identical values).
func (s *Study) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		return nil, fmt.Errorf("monitor: study encode: %w", err)
	}
	return append(out, '\n'), nil
}
