package monitor

import (
	"context"
	"testing"
)

// TestMonitorRoundAllocFree pins the warm hot path: with durability off, a
// monitor round over a shard — probe every block (a whole batched wavefront
// by default, per-probe under ScalarProbe), observe into the estimators,
// extend the preallocated series — must not touch the heap. probeRound is
// exactly the per-round work; commit and snapshot are the durable (and
// allocating) cold path by design.
func TestMonitorRoundAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scalar bool
	}{
		{"batched", false},
		{"scalar", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(testNet(8), 128)
			cfg.Shards = 1
			cfg.ScalarProbe = tc.scalar
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := m.shards[0]
			if err := s.rebuild(); err != nil {
				t.Fatal(err)
			}

			// Warm-up: the initial up transitions land in the event slices
			// and the probe scratch grows its arenas here.
			r := 0
			roundOnce := func() {
				s.probeRound(r)
				r++
			}
			for i := 0; i < 4; i++ {
				roundOnce()
			}

			avg := testing.AllocsPerRun(100, roundOnce)
			if avg != 0 {
				t.Fatalf("warm monitor round allocates %.2f times per 8-block round, want 0", avg)
			}
		})
	}
}

// TestMonitorHeapIsWorkerBound pins the O(workers) steady-state memory
// claim: probe scratch lives in one long-lived ProbeContext per shard, so a
// 100x larger world must not change what the contexts retain, and the
// prober's internal context pool must never be touched (the monitor threads
// its own). The per-block series are the measurement output and necessarily
// scale with the world — the bound under test is the probing machinery.
func TestMonitorHeapIsWorkerBound(t *testing.T) {
	measure := func(blocks int) (retained int, created int64) {
		cfg := baseConfig(testNet(blocks), 2)
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("run over %d blocks not completed: %+v", blocks, res)
		}
		for _, s := range m.shards {
			retained += s.pc.RetainedBytes() + s.bc.RetainedBytes()
			created += s.prober.ContextsCreated()
		}
		return retained, created
	}

	small, createdSmall := measure(100)
	big, createdBig := measure(10000)
	bigger, createdBigger := measure(20000)

	if createdSmall != 0 || createdBig != 0 || createdBigger != 0 {
		t.Errorf("prober context pool was touched (%d/%d/%d contexts): shards must probe through their own context",
			createdSmall, createdBig, createdBigger)
	}
	if small == 0 {
		t.Fatal("contexts retain no scratch; the measurement is vacuous")
	}
	// The scratch plateaus: a small world retains less (its batch groups and
	// route cache never fill), but past the plateau doubling the world must
	// not move the number at all — the bound is O(shards), not O(blocks).
	if bigger > big {
		t.Fatalf("probe scratch grew with the world: %d bytes over 20000 blocks vs %d over 10000", bigger, big)
	}
	const perShardCap = 64 << 10
	if bigger > 4*perShardCap {
		t.Fatalf("retained scratch %d bytes exceeds %d per shard", bigger, perShardCap)
	}
}
