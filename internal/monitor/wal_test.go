package monitor

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sleepnet/internal/faults"
)

func testMetrics() *monitorMetrics { return &monitorMetrics{} }

// readAll decodes every segment of a shard dir in order and returns the
// concatenated record payloads.
func readAll(t *testing.T, dir string) [][]byte {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for _, sf := range segs {
		data, err := os.ReadFile(sf.path)
		if err != nil {
			t.Fatal(err)
		}
		_, recs, _, damage := decodeSegment(data)
		if damage != nil {
			t.Fatalf("segment %s damaged: %v", sf.path, damage)
		}
		out = append(out, recs...)
	}
	return out
}

func TestWALRoundTripWithRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segment bound forces several rotations.
	w, err := newWALWriter(dir, 3, 0, 128, false, testMetrics())
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf(`{"round":%d,"payload":"abcdefghij"}`, i))
		want = append(want, p)
		if err := w.append(p, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several sealed segments, got %d", len(segs))
	}
	for _, sf := range segs {
		if !sf.sealed {
			t.Fatalf("segment %s left unsealed after close", sf.path)
		}
	}
	got := readAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestWALGC(t *testing.T) {
	dir := t.TempDir()
	w, err := newWALWriter(dir, 0, 0, 64, false, testMetrics())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.append([]byte(`{"r":1234567890}`), i); err != nil {
			t.Fatal(err)
		}
	}
	sealedBefore := len(w.sealedMax)
	if sealedBefore < 2 {
		t.Fatalf("expected rotations before gc, sealed=%d", sealedBefore)
	}
	// A snapshot covering every round lets gc delete all sealed segments.
	w.gc(9)
	if len(w.sealedMax) != 0 {
		t.Fatalf("gc left %d sealed segments registered", len(w.sealedMax))
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sf := range segs {
		if sf.sealed {
			t.Fatalf("sealed segment %s survived full gc", sf.path)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	w, err := newWALWriter(dir, 1, 0, 1<<20, false, testMetrics())
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte(`{"a":1}`), []byte(`{"b":2}`), []byte(`{"c":3}`)}
	for i, p := range recs {
		if err := w.append(p, i); err != nil {
			t.Fatal(err)
		}
	}
	w.abandon() // simulated kill: no seal

	segPath := filepath.Join(dir, segName(0, false))
	for _, corrupt := range []func() error{
		func() error { return faults.TruncateFileTail(segPath, 3) },
		func() error { return faults.CorruptFileTail(segPath, 2) },
	} {
		if err := corrupt(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(segPath)
		if err != nil {
			t.Fatal(err)
		}
		shard, got, _, damage := decodeSegment(data)
		if damage == nil {
			t.Fatal("tail damage went undetected")
		}
		if !errors.Is(damage, ErrCorrupt) {
			t.Fatalf("damage %v is not ErrCorrupt", damage)
		}
		if shard != 1 {
			t.Fatalf("shard = %d, want 1", shard)
		}
		// The intact prefix must survive: records 0 and 1.
		if len(got) != 2 || !bytes.Equal(got[0], recs[0]) || !bytes.Equal(got[1], recs[1]) {
			t.Fatalf("intact prefix lost: %q", got)
		}
	}
}

func TestDecodeSegmentDamageTyped(t *testing.T) {
	valid := encodeValidSegment(7, [][]byte{[]byte(`{"x":1}`), []byte(`{"y":2}`)})

	cases := map[string][]byte{
		"empty":            {},
		"header truncated": valid[:10],
		"bad magic":        append([]byte("NOTAWAL0"), valid[8:]...),
		"bad version": func() []byte {
			b := append([]byte(nil), valid...)
			binary.BigEndian.PutUint32(b[8:12], 99)
			return b
		}(),
		"torn frame": valid[:len(valid)-3],
		"crc flip": func() []byte {
			b := append([]byte(nil), valid...)
			b[len(b)-1] ^= 0x40
			return b
		}(),
		"giant length": func() []byte {
			b := append([]byte(nil), valid[:walHeaderSize]...)
			var f [8]byte
			binary.BigEndian.PutUint32(f[0:4], maxRecordSize+1)
			return append(b, f[:]...)
		}(),
	}
	for name, data := range cases {
		_, _, _, damage := decodeSegment(data)
		if damage == nil {
			t.Errorf("%s: no damage reported", name)
			continue
		}
		if !errors.Is(damage, ErrCorrupt) {
			t.Errorf("%s: %v is not ErrCorrupt", name, damage)
		}
	}

	// The undamaged image decodes fully.
	shard, recs, off, damage := decodeSegment(valid)
	if damage != nil || shard != 7 || len(recs) != 2 || off != int64(len(valid)) {
		t.Fatalf("valid image: shard=%d recs=%d off=%d damage=%v", shard, len(recs), off, damage)
	}
}

func encodeValidSegment(shard int, recs [][]byte) []byte {
	hdr := encodeSegmentHeader(shard)
	out := append([]byte(nil), hdr[:]...)
	for _, p := range recs {
		out = appendFrame(out, p)
	}
	return out
}

func TestParseSegName(t *testing.T) {
	cases := []struct {
		name   string
		seq    int
		sealed bool
		ok     bool
	}{
		{"seg-00000000.wal", 0, true, true},
		{"seg-00000042.open", 42, false, true},
		{"seg-1.wal", 1, true, true},
		{"snap.json", 0, false, false},
		{"seg-.wal", 0, false, false},
		{"seg--1.wal", 0, false, false},
		{"seg-00000001.tmp", 0, false, false},
	}
	for _, c := range cases {
		seq, sealed, ok := parseSegName(c.name)
		if ok != c.ok || (ok && (seq != c.seq || sealed != c.sealed)) {
			t.Errorf("parseSegName(%q) = (%d,%v,%v), want (%d,%v,%v)",
				c.name, seq, sealed, ok, c.seq, c.sealed, c.ok)
		}
	}
}

func TestSnapshotRoundTripAndDamage(t *testing.T) {
	snap := &shardSnapshot{Shard: 2, Round: 5}
	data, err := encodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != 2 || got.Round != 5 {
		t.Fatalf("round-trip = %+v", got)
	}

	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, err := decodeSnapshot(mut); err == nil {
			// A flip inside the shard-id header field changes the decoded
			// shard but stays structurally valid; every other byte is
			// covered by magic, version, length, or CRC checks.
			if i < 12 || i >= walHeaderSize {
				t.Errorf("bit flip at byte %d went undetected", i)
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at %d: %v is not ErrCorrupt", i, err)
		}
	}
}

// FuzzWALDecode is the decoder's no-panic/typed-error contract: arbitrary
// bytes fed to the segment and snapshot decoders must produce either a
// clean decode or an error chained to ErrCorrupt — never a panic, never an
// unbounded allocation, never an untyped failure. Seeds cover the known
// crash shapes (torn tail, bit flip, truncated header, hostile length
// field); new crashers found by fuzzing land in testdata/fuzz as
// regression seeds automatically.
func FuzzWALDecode(f *testing.F) {
	valid := encodeValidSegment(1, [][]byte{[]byte(`{"Round":0,"Deltas":[]}`)})
	f.Add(valid)
	f.Add(valid[:len(valid)-4]) // torn tail
	f.Add(valid[:12])           // truncated header
	f.Add([]byte{})
	flip := append([]byte(nil), valid...)
	flip[walHeaderSize+2] ^= 0x10
	f.Add(flip)
	hostile := append([]byte(nil), valid[:walHeaderSize]...)
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	f.Add(hostile) // length field claims 4 GiB
	snap, err := encodeSnapshot(&shardSnapshot{Shard: 0, Round: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)

	f.Fuzz(func(t *testing.T, data []byte) {
		_, recs, off, damage := decodeSegment(data)
		if damage != nil && !errors.Is(damage, ErrCorrupt) {
			t.Fatalf("segment damage not typed: %v", damage)
		}
		if off > int64(len(data)) {
			t.Fatalf("offset %d past input length %d", off, len(data))
		}
		for _, r := range recs {
			if _, err := decodeRecord(r); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("record error not typed: %v", err)
			}
		}
		if _, err := decodeSnapshot(data); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("snapshot error not typed: %v", err)
		}
	})
}
