// Package monitor runs the paper's measurement as a crash-tolerant
// continuous service: the sorted block set is partitioned across worker
// shards, each shard probes its blocks round after round with one pooled
// ProbeContext (steady-state memory O(shards), not O(blocks)), commits
// every round to a per-shard write-ahead log, and snapshots periodically. A
// supervision tree restarts crashed shards with exponential backoff —
// rebuilding state from the WAL, never from the wreckage — and escalates:
// crash loop → quarantine, quarantine quorum or hard wedge → monitor-fatal.
// A watchdog on an injectable tick channel detects wedged rounds; SIGINT/
// SIGTERM-style context cancellation drains gracefully (finish the
// in-flight round, snapshot, seal).
//
// The determinism contract carries over from the rest of the pipeline:
// probing is a pure function of (seed, block, virtual time), so a run with
// any interleaving of crashes and recoveries commits exactly the state an
// uninterrupted run commits, and the exported Study is byte-identical —
// the property the chaos harness in monitor_test.go pins.
package monitor

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sleepnet/internal/faults"
	"sleepnet/internal/metrics"
	"sleepnet/internal/netsim"
	"sleepnet/internal/trinocular"
)

// Terminal monitor errors.
var (
	// ErrHalted reports a simulated hard kill (Config.HaltAfterRound): the
	// monitor stopped without draining, snapshotting, or sealing — the WAL
	// tail is whatever was committed. Restarting a monitor over the same
	// WALDir resumes from exactly that state.
	ErrHalted = errors.New("monitor: halted")
	// ErrWatchdog reports a shard wedged beyond the watchdog's abort.
	ErrWatchdog = errors.New("monitor: watchdog declared shard wedged")
	// ErrQuarantine reports that too many shards crash-looped into
	// quarantine for the run to be meaningful.
	ErrQuarantine = errors.New("monitor: quarantine quorum exceeded")
)

// Config describes a monitoring campaign. Net, Start, and Rounds are
// required; everything else has defaults.
type Config struct {
	// Net is the network to probe (shared by all shards; netsim.Network is
	// safe for concurrent probing).
	Net *netsim.Network
	// Blocks selects the monitored blocks; nil monitors every block in Net.
	// Blocks too sparse to probe are silently excluded, as in the paper.
	Blocks []netsim.BlockID
	// Start is the campaign's virtual epoch; round r probes at
	// Start + r*Period.
	Start time.Time
	// Period is the round length (default: the paper's 660s).
	Period time.Duration
	// Rounds is the campaign length (required, positive).
	Rounds int
	// Shards is the number of worker shards (default 4, clamped to the
	// block count). Sharding does not affect results — only wall-clock and
	// fault isolation.
	Shards int
	// Prober carries the Trinocular policy for every shard.
	Prober trinocular.Config
	// InitialA seeds the estimators (default 0.5).
	InitialA float64
	Seed     uint64
	// ScalarProbe forces the per-probe delivery path instead of the default
	// batched one. Results are identical either way (the batch path only
	// amortizes the netsim boundary cost); the knob exists for A/B
	// benchmarks and equivalence tests.
	ScalarProbe bool

	// WALDir enables durability: per-shard segmented WALs and snapshots
	// live under it. Empty runs the monitor in-memory only.
	WALDir string
	// SyncWAL fsyncs every record (the power-cut-safe mode). Off, records
	// still reach the kernel per round and every seal/snapshot syncs.
	SyncWAL bool
	// SegmentBytes rotates WAL segments at this size (default 1 MiB).
	SegmentBytes int64
	// SnapshotEvery writes a shard snapshot every that many rounds
	// (default 16; 0 disables periodic snapshots, leaving only the final
	// and drain-time ones).
	SnapshotEvery int

	// MaxRestarts is how many crashes a shard may accumulate before it is
	// quarantined (default 5).
	MaxRestarts int
	// BackoffBase/BackoffMax shape the exponential restart backoff
	// (defaults 10ms, 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// FatalQuarantineFrac escalates to monitor-fatal when more than this
	// fraction of shards is quarantined (default 0.5).
	FatalQuarantineFrac float64

	// WatchdogTick drives the wedge detector; nil disables it. Tests inject
	// a channel they fire by hand; the CLI feeds a time.Ticker. Tick values
	// are ignored — only arrival matters.
	WatchdogTick <-chan time.Time
	// WatchdogStrikes is how many consecutive tick intervals without shard
	// progress trigger an abort; twice that without progress is fatal
	// (default 3).
	WatchdogStrikes int

	// Metrics receives operational counters; it is also handed to the
	// probers when they have none of their own.
	Metrics *metrics.Registry
	// Sink, when non-nil, receives every committed round (and a full resync
	// at each shard rebuild) for live serving — see publish.go. Nil costs
	// one comparison per round.
	Sink EpochSink
	// Chaos injects process-level faults (tests only).
	Chaos *faults.ChaosPlan
	// HaltAfterRound simulates kill -9: once every shard has committed this
	// many rounds the whole monitor stops dead — no drain, no snapshot, no
	// seal (tests only; 0 disables). The all-shards condition makes the
	// halt deterministic relative to chaos schedules: any event keyed to an
	// earlier round is guaranteed to have fired first.
	HaltAfterRound int
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = 660 * time.Second
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.InitialA == 0 {
		c.InitialA = 0.5
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 1 << 20
	}
	if c.SnapshotEvery < 0 {
		c.SnapshotEvery = 0
	} else if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 16
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 5
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.FatalQuarantineFrac <= 0 || c.FatalQuarantineFrac > 1 {
		c.FatalQuarantineFrac = 0.5
	}
	if c.WatchdogStrikes <= 0 {
		c.WatchdogStrikes = 3
	}
	if c.Metrics != nil && c.Prober.Metrics == nil {
		c.Prober.Metrics = c.Metrics
	}
	return c
}

// monitorMetrics caches the monitor's instruments; all fields are nil (and
// every method a no-op) without a registry.
type monitorMetrics struct {
	rounds          *metrics.Counter
	restarts        *metrics.Counter
	quarantines     *metrics.Counter
	watchdogStrikes *metrics.Counter
	watchdogAborts  *metrics.Counter
	recoveries      *metrics.Counter
	replayedRounds  *metrics.Counter
	truncatedTails  *metrics.Counter
	snapshots       *metrics.Counter
	walRecords      *metrics.Counter
	walBytes        *metrics.Counter
	walSeals        *metrics.Counter
	segmentsDeleted *metrics.Counter
}

func newMonitorMetrics(r *metrics.Registry) *monitorMetrics {
	if r == nil {
		return &monitorMetrics{}
	}
	return &monitorMetrics{
		rounds:          r.Counter("monitor.rounds_committed"),
		restarts:        r.Counter("monitor.shard_restarts"),
		quarantines:     r.Counter("monitor.shards_quarantined"),
		watchdogStrikes: r.Counter("monitor.watchdog_strikes"),
		watchdogAborts:  r.Counter("monitor.watchdog_aborts"),
		recoveries:      r.Counter("monitor.recoveries"),
		replayedRounds:  r.Counter("monitor.replayed_rounds"),
		truncatedTails:  r.Counter("monitor.truncated_tails"),
		snapshots:       r.Counter("monitor.snapshots"),
		walRecords:      r.Counter("monitor.wal_records"),
		walBytes:        r.Counter("monitor.wal_bytes"),
		walSeals:        r.Counter("monitor.wal_seals"),
		segmentsDeleted: r.Counter("monitor.wal_segments_deleted"),
	}
}

// Monitor is a configured, not-yet-running campaign. Run may be called once.
type Monitor struct {
	cfg    Config
	met    *monitorMetrics
	chaos  *faults.ChaosPlan
	shards []*shard

	halted      atomic.Bool
	cancel      context.CancelFunc
	fatalMu     sync.Mutex
	fatalErr    error
	quarantined int
}

// New validates the configuration, selects and partitions the probe-eligible
// blocks, and prepares (or checks) the WAL directory. It performs no probing.
func New(cfg Config) (*Monitor, error) {
	cfg = cfg.withDefaults()
	if cfg.Net == nil {
		return nil, fmt.Errorf("monitor: Config.Net is required")
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("monitor: Config.Rounds must be positive, got %d", cfg.Rounds)
	}
	if cfg.Start.IsZero() {
		return nil, fmt.Errorf("monitor: Config.Start is required (the virtual epoch)")
	}

	ids := cfg.Blocks
	if ids == nil {
		ids = cfg.Net.BlockIDs()
	}
	ids = append([]netsim.BlockID(nil), ids...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	minActive := cfg.Prober.MinEverActive
	if minActive == 0 {
		minActive = 15 // the trinocular default
	}
	eligible := ids[:0]
	for i, id := range ids {
		if i > 0 && id == ids[i-1] {
			continue
		}
		blk := cfg.Net.Block(id)
		if blk == nil {
			return nil, fmt.Errorf("monitor: block %s not in network", id)
		}
		if len(blk.EverActive()) < minActive {
			continue // too sparse to probe; excluded by policy
		}
		eligible = append(eligible, id)
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("monitor: no probe-eligible blocks")
	}
	if cfg.Shards > len(eligible) {
		cfg.Shards = len(eligible)
	}

	m := &Monitor{
		cfg:   cfg,
		met:   newMonitorMetrics(cfg.Metrics),
		chaos: cfg.Chaos,
	}
	// Contiguous, balanced partition of the sorted order: deterministic, and
	// shard i's blocks sort entirely before shard i+1's (Study relies on it).
	base, rem := len(eligible)/cfg.Shards, len(eligible)%cfg.Shards
	off := 0
	for i := 0; i < cfg.Shards; i++ {
		n := base
		if i < rem {
			n++
		}
		m.shards = append(m.shards, &shard{idx: i, m: m, blocks: eligible[off : off+n]})
		off += n
	}

	if cfg.WALDir != "" {
		if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
			return nil, fmt.Errorf("monitor: %w", err)
		}
		meta := metaFor(cfg.Seed, cfg.Start, cfg.Period, cfg.Rounds, cfg.Shards, eligible)
		if err := checkOrWriteMeta(cfg.WALDir+"/meta.json", meta); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// NumBlocks reports how many blocks the monitor tracks after eligibility
// filtering.
func (m *Monitor) NumBlocks() int {
	n := 0
	for _, s := range m.shards {
		n += len(s.blocks)
	}
	return n
}

// NumShards reports the effective shard count.
func (m *Monitor) NumShards() int { return len(m.shards) }

// halt flips the monitor into simulated-kill mode and cancels everything.
func (m *Monitor) halt() {
	if m.halted.CompareAndSwap(false, true) {
		m.cancel()
	}
}

// maybeHalt triggers the simulated kill once every shard has committed at
// least HaltAfterRound rounds.
func (m *Monitor) maybeHalt() {
	if m.cfg.HaltAfterRound <= 0 {
		return
	}
	for _, s := range m.shards {
		if int(s.committed.Load()) < m.cfg.HaltAfterRound {
			return
		}
	}
	m.halt()
}

// fail records the first fatal error and cancels everything.
func (m *Monitor) fail(err error) {
	m.fatalMu.Lock()
	if m.fatalErr == nil {
		m.fatalErr = err
	}
	m.fatalMu.Unlock()
	m.cancel()
}

func (m *Monitor) fatal() error {
	m.fatalMu.Lock()
	defer m.fatalMu.Unlock()
	return m.fatalErr
}

// noteQuarantine counts a quarantined shard and escalates past the quorum.
func (m *Monitor) noteQuarantine() {
	m.fatalMu.Lock()
	m.quarantined++
	over := float64(m.quarantined) > m.cfg.FatalQuarantineFrac*float64(len(m.shards))
	m.fatalMu.Unlock()
	if over {
		m.fail(fmt.Errorf("%w: %d of %d shards", ErrQuarantine, m.quarantined, len(m.shards)))
	}
}

// shardOutcome is one supervisor's verdict.
type shardOutcome struct {
	completed   bool
	drained     bool
	halted      bool
	quarantined bool
	restarts    int
	lastErr     error
}

// Result summarizes a Run.
type Result struct {
	// Completed: every shard committed every round. Only then is Study
	// available.
	Completed bool
	// Drained: the run was stopped by context cancellation and every
	// non-finished shard drained cleanly.
	Drained bool
	// Halted: the run was stopped by the simulated hard kill.
	Halted bool
	// Restarts sums shard restarts across the run.
	Restarts int
	// Quarantined lists shards that crash-looped out of the run.
	Quarantined []int
	shards      []*shard
}

// Run executes the campaign until completion, cancellation, halt, or fatal
// error. It may be called once per Monitor; restart tolerance within a run
// is the supervisor's job, and resuming a previous run is done by building
// a new Monitor over the same WALDir.
func (m *Monitor) Run(ctx context.Context) (*Result, error) {
	ictx, cancel := context.WithCancel(ctx)
	m.cancel = cancel
	defer cancel()

	if m.cfg.Sink != nil {
		m.cfg.Sink.BeginRun(RunInfo{
			Shards: len(m.shards),
			Rounds: m.cfg.Rounds,
			Blocks: m.NumBlocks(),
			Start:  m.cfg.Start,
			Period: m.cfg.Period,
			Seed:   m.cfg.Seed,
		})
	}

	outcomes := make([]shardOutcome, len(m.shards))
	var shardWg sync.WaitGroup
	for i, s := range m.shards {
		shardWg.Add(1)
		go func(i int, s *shard) {
			defer shardWg.Done()
			outcomes[i] = m.supervise(ictx, s)
		}(i, s)
	}
	var auxWg sync.WaitGroup
	if m.cfg.WatchdogTick != nil {
		auxWg.Add(1)
		go func() {
			defer auxWg.Done()
			m.watchdog(ictx)
		}()
	}
	shardWg.Wait()
	cancel()
	auxWg.Wait()

	res := &Result{Completed: true, shards: m.shards}
	for i, o := range outcomes {
		res.Restarts += o.restarts
		if o.quarantined {
			res.Quarantined = append(res.Quarantined, i)
		}
		if o.drained {
			res.Drained = true
		}
		if o.halted {
			res.Halted = true
		}
		if !o.completed {
			res.Completed = false
		}
	}
	if err := m.fatal(); err != nil {
		return res, err
	}
	if res.Halted {
		return res, ErrHalted
	}
	return res, nil
}

// supervise is one shard's restart loop: run an attempt; on clean exits
// return; on crashes (panics, aborts, I/O errors) back off exponentially
// and retry with state rebuilt from the WAL, up to quarantine.
func (m *Monitor) supervise(ctx context.Context, s *shard) shardOutcome {
	var out shardOutcome
	defer s.done.Store(true)
	backoff := m.cfg.BackoffBase
	for {
		s.newAttempt()
		err := s.runAttempt(ctx)
		switch {
		case err == nil:
			out.completed = true
			return out
		case errors.Is(err, errDrained):
			out.drained = true
			return out
		case errors.Is(err, ErrHalted):
			out.halted = true
			return out
		}
		// A crash. Restart with backoff unless the shard is hopeless or the
		// monitor is shutting down.
		out.restarts++
		out.lastErr = err
		m.met.restarts.Inc()
		if out.restarts > m.cfg.MaxRestarts {
			out.quarantined = true
			m.met.quarantines.Inc()
			if m.cfg.Sink != nil {
				m.cfg.Sink.ShardDown(s.idx)
			}
			m.noteQuarantine()
			return out
		}
		select {
		case <-ctx.Done():
			out.halted = m.halted.Load()
			out.drained = !out.halted
			return out
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > m.cfg.BackoffMax {
			backoff = m.cfg.BackoffMax
		}
	}
}

// watchdog strikes shards whose heartbeat stalls across tick intervals:
// WatchdogStrikes consecutive silent intervals abort the attempt (the
// supervisor restarts it); twice that without progress means the shard is
// wedged beyond recovery and the monitor dies loudly rather than reporting
// a silently incomplete study.
func (m *Monitor) watchdog(ctx context.Context) {
	last := make([]int64, len(m.shards))
	strikes := make([]int, len(m.shards))
	for i, s := range m.shards {
		last[i] = s.hb.Load()
	}
	for {
		select {
		case <-ctx.Done():
			return
		case _, ok := <-m.cfg.WatchdogTick:
			if !ok {
				return
			}
			for i, s := range m.shards {
				if s.done.Load() {
					strikes[i] = 0
					continue
				}
				h := s.hb.Load()
				if h != last[i] {
					last[i] = h
					strikes[i] = 0
					continue
				}
				strikes[i]++
				m.met.watchdogStrikes.Inc()
				switch {
				case strikes[i] == m.cfg.WatchdogStrikes:
					s.abortAttempt()
					m.met.watchdogAborts.Inc()
				case strikes[i] >= 2*m.cfg.WatchdogStrikes:
					m.fail(fmt.Errorf("%w: shard %d made no progress through abort", ErrWatchdog, i))
					return
				}
			}
		}
	}
}
