package monitor

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sleepnet/internal/faults"
	"sleepnet/internal/metrics"
	"sleepnet/internal/netsim"
	"sleepnet/internal/world"
)

var testEpoch = time.Date(2013, time.April, 1, 0, 0, 0, 0, time.UTC)

// testNet builds a synthetic network of n probe-eligible blocks with mixed
// behaviours — cheaper than world.Generate for size-scaling tests, with the
// same determinism contract.
func testNet(n int) *netsim.Network {
	net := netsim.NewNetwork(0xbeef)
	for i := 0; i < n; i++ {
		id := netsim.MakeBlockID(byte(10+i/65536), byte(i/256%256), byte(i%256))
		blk := &netsim.Block{ID: id, Seed: uint64(id) ^ 0xbeef}
		for h := 1; h <= 20; h++ {
			blk.Behaviors[h] = netsim.AlwaysOn{}
		}
		// A few flappy hosts so estimates move.
		for h := 21; h <= 26; h++ {
			blk.Behaviors[h] = netsim.Intermittent{P: 0.6, Seed: uint64(id) + uint64(h)*257}
		}
		net.AddBlock(blk)
	}
	return net
}

func baseConfig(net *netsim.Network, rounds int) Config {
	return Config{
		Net:         net,
		Start:       testEpoch,
		Rounds:      rounds,
		Shards:      4,
		Seed:        42,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}
}

// runStudy runs a fresh monitor to completion and returns the encoded study.
func runStudy(t *testing.T, cfg Config) []byte {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run not completed: %+v", res)
	}
	st, err := res.Study()
	if err != nil {
		t.Fatal(err)
	}
	data, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestStudyDeterministicAcrossShardCounts(t *testing.T) {
	// Sharding is an execution detail: the committed study depends only on
	// (seed, blocks, schedule), so 1, 3, and 5 shards must agree bytewise.
	ref := runStudy(t, baseConfig(testNet(23), 6))
	for _, shards := range []int{1, 3, 5} {
		cfg := baseConfig(testNet(23), 6)
		cfg.Shards = shards
		if got := runStudy(t, cfg); !bytes.Equal(got, ref) {
			t.Fatalf("study with %d shards diverges from reference", shards)
		}
	}
}

func TestStudyEquivalentAcrossProbePaths(t *testing.T) {
	// Batched delivery is a boundary-cost optimization, not a semantic
	// change: the default (batched) run and a ScalarProbe run of the same
	// seed must produce byte-identical studies — on a clean world and under
	// wire faults, whose injector keeps order-sensitive per-block state.
	t.Run("clean", func(t *testing.T) {
		ref := runStudy(t, baseConfig(testNet(23), 6))
		cfg := baseConfig(testNet(23), 6)
		cfg.ScalarProbe = true
		if got := runStudy(t, cfg); !bytes.Equal(got, ref) {
			t.Fatal("scalar-probe study diverges from batched reference on a clean world")
		}
	})
	t.Run("faulty", func(t *testing.T) {
		mkCfg := func(net *netsim.Network) Config {
			cfg := baseConfig(net, 16)
			cfg.Shards = 3
			return cfg
		}
		ref := runStudy(t, mkCfg(chaosWorld(t)))
		cfg := mkCfg(chaosWorld(t))
		cfg.ScalarProbe = true
		if got := runStudy(t, cfg); !bytes.Equal(got, ref) {
			t.Fatal("scalar-probe study diverges from batched reference under wire faults")
		}
	})
}

func TestHaltAndResumeFromWAL(t *testing.T) {
	ref := runStudy(t, baseConfig(testNet(17), 12))

	dir := t.TempDir()
	cfg := baseConfig(testNet(17), 12)
	cfg.WALDir = dir
	cfg.SnapshotEvery = 4
	cfg.HaltAfterRound = 5
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("want ErrHalted, got %v", err)
	}
	if !res.Halted || res.Completed {
		t.Fatalf("halt result: %+v", res)
	}

	// A different campaign must be refused the WAL directory.
	bad := baseConfig(testNet(17), 12)
	bad.WALDir = dir
	bad.SnapshotEvery = 4
	bad.Seed = 43
	if _, err := New(bad); !errors.Is(err, ErrMismatch) {
		t.Fatalf("want ErrMismatch for foreign seed, got %v", err)
	}

	cfg.HaltAfterRound = 0
	reg := metrics.New()
	cfg.Metrics = reg
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Completed {
		t.Fatalf("resume not completed: %+v", res2)
	}
	snap := reg.Snapshot()
	if snap.Counter("monitor.recoveries") == 0 {
		t.Fatal("resume did not recover from WAL")
	}
	st, err := res2.Study()
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("halt+resume study diverges from uninterrupted run")
	}
}

func TestResumeFromEmptyFinalSegment(t *testing.T) {
	// A crash between creating the next .open segment and writing its
	// 16-byte header leaves a zero-length husk as the final segment. It
	// carries nothing: recovery must drop it and resume from the sealed
	// history, not reject the directory or seal an undecodable file.
	ref := runStudy(t, baseConfig(testNet(17), 12))

	dir := t.TempDir()
	cfg := baseConfig(testNet(17), 12)
	cfg.WALDir = dir
	cfg.SnapshotEvery = 4
	cfg.HaltAfterRound = 5
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background()); !errors.Is(err, ErrHalted) {
		t.Fatalf("want ErrHalted, got %v", err)
	}

	for s := 0; s < cfg.Shards; s++ {
		sd := filepath.Join(dir, shardDirName(s))
		segs, err := listSegments(sd)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) == 0 {
			t.Fatalf("shard %d halted with no segments", s)
		}
		husk := filepath.Join(sd, segName(segs[len(segs)-1].seq+1, false))
		if err := os.WriteFile(husk, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cfg.HaltAfterRound = 0
	reg := metrics.New()
	cfg.Metrics = reg
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("resume not completed: %+v", res)
	}
	if got := reg.Snapshot().Counter("monitor.truncated_tails"); got < int64(cfg.Shards) {
		t.Fatalf("truncated_tails = %d, want >= %d (one husk per shard)", got, cfg.Shards)
	}
	st, err := res.Study()
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("resume over empty final segment diverges from uninterrupted run")
	}
	// The husks themselves must be gone, not sealed into history.
	for s := 0; s < cfg.Shards; s++ {
		segs, err := listSegments(filepath.Join(dir, shardDirName(s)))
		if err != nil {
			t.Fatal(err)
		}
		for _, sf := range segs {
			fi, err := os.Stat(sf.path)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() == 0 {
				t.Fatalf("zero-length segment %s survived recovery", sf.path)
			}
		}
	}
}

// chaosWorld regenerates the same faulty world for each run: a generated
// internet plus a wire-fault injector. Loss and corruption draws are pure
// functions of (seed, dst, virtual time), so re-executed rounds redraw
// identical fates — the property crash recovery leans on.
func chaosWorld(t *testing.T) *netsim.Network {
	t.Helper()
	w, err := world.Generate(world.Config{Blocks: 40, Seed: 0x5eed, OutagesPerBlockWeek: 2})
	if err != nil {
		t.Fatal(err)
	}
	w.Net.SetTap(faults.New(faults.Config{
		Seed:        0xfa17,
		LossRate:    0.02,
		CorruptRate: 0.01,
	}))
	return w.Net
}

// TestChaosEquivalence is the harness's headline property and the CI gate:
// a fixed-seed run that suffers three injected shard kills, a hard process
// halt, and WAL tail corruption must — after recovery — produce a study
// byte-identical to an uninterrupted run of the same seed.
func TestChaosEquivalence(t *testing.T) {
	const rounds = 16
	mkCfg := func(net *netsim.Network) Config {
		cfg := baseConfig(net, rounds)
		cfg.Shards = 4
		cfg.SnapshotEvery = 5
		return cfg
	}
	ref := runStudy(t, mkCfg(chaosWorld(t)))

	dir := t.TempDir()
	cfg := mkCfg(chaosWorld(t))
	cfg.WALDir = dir
	cfg.HaltAfterRound = 11
	plan := &faults.ChaosPlan{
		Kills: []faults.ShardRound{{Shard: 0, Round: 3}, {Shard: 1, Round: 7}, {Shard: 2, Round: 9}},
	}
	cfg.Chaos = plan
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("want ErrHalted, got %v", err)
	}
	if res.Restarts < 3 {
		t.Fatalf("restarts = %d, want >= 3 (one per injected kill)", res.Restarts)
	}
	if plan.Fired() != 3 {
		t.Fatalf("chaos events fired = %d, want 3", plan.Fired())
	}

	// Damage the abandoned open WAL tails the way a power cut would;
	// recovery must truncate and re-execute the lost rounds. (A shard that
	// finished all its rounds before the halt landed has already sealed —
	// at least the halt-triggering shard is guaranteed to leave one open.)
	corrupted := 0
	for shard := 0; shard < 4; shard++ {
		segs, err := listSegments(filepath.Join(dir, shardDirName(shard)))
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) == 0 {
			t.Fatalf("shard %d has no segments after halt", shard)
		}
		last := segs[len(segs)-1]
		if last.sealed {
			continue
		}
		if err := faults.CorruptFileTail(last.path, 4); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("halt left no open segment to corrupt")
	}

	cfg2 := mkCfg(chaosWorld(t))
	cfg2.WALDir = dir
	reg := metrics.New()
	cfg2.Metrics = reg
	m2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Completed {
		t.Fatalf("recovery run not completed: %+v", res2)
	}
	snap := reg.Snapshot()
	if snap.Counter("monitor.truncated_tails") == 0 {
		t.Fatal("no truncated tail repaired despite injected corruption")
	}
	if snap.Counter("monitor.recoveries") == 0 {
		t.Fatal("recovery run replayed nothing")
	}
	st, err := res2.Study()
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("crash-recovered study diverges from uninterrupted run")
	}
}

func TestWatchdogAbortsStalledShard(t *testing.T) {
	ref := runStudy(t, baseConfig(testNet(13), 8))

	tick := make(chan time.Time)
	cfg := baseConfig(testNet(13), 8)
	cfg.WALDir = t.TempDir()
	cfg.SnapshotEvery = 3
	cfg.Chaos = &faults.ChaosPlan{Stalls: []faults.ShardRound{{Shard: 0, Round: 2}}}
	cfg.WatchdogTick = tick
	cfg.WatchdogStrikes = 2
	reg := metrics.New()
	cfg.Metrics = reg
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var res *Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = m.Run(context.Background())
	}()
	// Feed watchdog ticks until the run finishes: the stalled shard stops
	// heartbeating, accumulates strikes, is aborted, restarts from its WAL,
	// and completes (the stall fires only on the first attempt).
	for {
		select {
		case tick <- time.Time{}:
			time.Sleep(time.Millisecond)
		case <-done:
		}
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !res.Completed {
		t.Fatalf("run not completed: %+v", res)
	}
	if res.Restarts < 1 {
		t.Fatal("stalled shard was never restarted")
	}
	snap := reg.Snapshot()
	if snap.Counter("monitor.watchdog_aborts") < 1 {
		t.Fatal("watchdog recorded no abort")
	}
	st, err := res.Study()
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("watchdog-recovered study diverges from reference")
	}
}

func TestWatchdogEscalatesHardWedgeToFatal(t *testing.T) {
	tick := make(chan time.Time)
	cfg := baseConfig(testNet(9), 50)
	cfg.Chaos = &faults.ChaosPlan{HardStalls: []faults.ShardRound{{Shard: 0, Round: 1}}}
	cfg.WatchdogTick = tick
	cfg.WatchdogStrikes = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = m.Run(context.Background())
	}()
	for {
		select {
		case tick <- time.Time{}:
			time.Sleep(time.Millisecond)
			continue
		case <-done:
		}
		break
	}
	if !errors.Is(runErr, ErrWatchdog) {
		t.Fatalf("want ErrWatchdog, got %v", runErr)
	}
}

func TestCrashLoopQuarantineAndQuorum(t *testing.T) {
	// Without a WAL a restart re-executes from round 0, so a kill scheduled
	// at each successive round fires once per attempt: a crash loop.
	kills := make([]faults.ShardRound, 0, 8)
	for r := 0; r < 8; r++ {
		kills = append(kills, faults.ShardRound{Shard: 0, Round: r})
	}

	// Two shards: one quarantined of two is not past the 0.5 quorum.
	cfg := baseConfig(testNet(8), 4)
	cfg.Shards = 2
	cfg.MaxRestarts = 3
	cfg.Chaos = &faults.ChaosPlan{Kills: kills}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatalf("sub-quorum quarantine must not be fatal: %v", err)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0] != 0 {
		t.Fatalf("quarantined = %v, want [0]", res.Quarantined)
	}
	if res.Completed {
		t.Fatal("run with a quarantined shard cannot be complete")
	}
	if _, err := res.Study(); err == nil {
		t.Fatal("study must be unavailable for an incomplete run")
	}

	// One shard: its quarantine exceeds any quorum and kills the monitor.
	cfg2 := baseConfig(testNet(8), 4)
	cfg2.Shards = 1
	cfg2.MaxRestarts = 3
	cfg2.Chaos = &faults.ChaosPlan{Kills: kills}
	m2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run(context.Background()); !errors.Is(err, ErrQuarantine) {
		t.Fatalf("want ErrQuarantine, got %v", err)
	}
}

func TestGracefulDrainAndResume(t *testing.T) {
	ref := runStudy(t, baseConfig(testNet(15), 14))

	dir := t.TempDir()
	cfg := baseConfig(testNet(15), 14)
	cfg.WALDir = dir
	cfg.SnapshotEvery = 4
	reg := metrics.New()
	cfg.Metrics = reg
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res *Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = m.Run(ctx)
	}()
	// Cancel mid-campaign, once some rounds are committed.
	for reg.Snapshot().Counter("monitor.rounds_committed") < 8 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	<-done
	if runErr != nil {
		t.Fatalf("graceful drain returned %v", runErr)
	}
	if res.Halted {
		t.Fatalf("drain misreported as halt: %+v", res)
	}
	if res.Completed {
		// The cancel raced completion — legal but pointless for this test.
		t.Skip("run completed before cancellation landed")
	}
	if !res.Drained {
		t.Fatalf("drain result: %+v", res)
	}
	// Every shard sealed its WAL on the way out: no .open segments remain.
	for i := 0; i < m.NumShards(); i++ {
		segs, err := listSegments(filepath.Join(dir, shardDirName(i)))
		if err != nil {
			t.Fatal(err)
		}
		for _, sf := range segs {
			if !sf.sealed {
				t.Fatalf("shard %d left unsealed segment %s after drain", i, sf.path)
			}
		}
	}

	cfg2 := baseConfig(testNet(15), 14)
	cfg2.WALDir = dir
	cfg2.SnapshotEvery = 4
	m2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.Run(context.Background())
	if err != nil || !res2.Completed {
		t.Fatalf("resume after drain: err=%v res=%+v", err, res2)
	}
	st, err := res2.Study()
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("drain+resume study diverges from uninterrupted run")
	}
}
