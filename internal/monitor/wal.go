package monitor

// wal.go — the monitor's durability layer: a per-shard, segmented,
// CRC-framed write-ahead log.
//
// Layout (one directory per shard under the monitor's WAL root):
//
//	wal/meta.json                  — campaign identity, written atomically
//	wal/shard-0003/seg-00000007.wal   — sealed segment (immutable)
//	wal/shard-0003/seg-00000008.open  — the segment being appended to
//	wal/shard-0003/snap.json          — latest shard snapshot (atomic rename)
//
// Segment format: a 16-byte header (magic, version, shard), then framed
// records: 4-byte big-endian payload length, 4-byte big-endian CRC-32C of
// the payload, payload bytes. A record is committed once its frame is fully
// on disk (fsynced when the monitor runs with Sync). Sealing a segment
// fsyncs it and renames seg-N.open → seg-N.wal (atomic), so a reader can
// trust every sealed segment completely and must only tolerate damage at
// the tail of the single .open segment.
//
// Recovery policy (the classic one): scan records forward; the first
// damaged frame ends the segment. Damage in a sealed (non-final) segment is
// history loss in the middle of the log and is fatal (ErrCorrupt); damage
// at the tail of the final segment is the expected signature of a crash
// mid-append and is repaired by truncating the tail (counted, never
// silent). Every decoder error is typed — fuzzed inputs must map to
// ErrCorrupt, never a panic.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sleepnet/internal/durable"
)

const (
	walMagic   = "SLPWAL01"
	walVersion = 1
	// walHeaderSize is magic(8) + version(4) + shard(4).
	walHeaderSize = 16
	// walFrameSize is length(4) + crc(4).
	walFrameSize = 8
	// maxRecordSize bounds a frame's claimed payload length so a corrupt
	// length field cannot drive a giant allocation.
	maxRecordSize = 16 << 20
)

// ErrCorrupt is the typed decode failure for any damaged WAL or snapshot
// byte stream: bad magic, impossible length, CRC mismatch, truncated frame.
// Recovery tolerates it only at the tail of the final open segment.
var ErrCorrupt = errors.New("monitor: wal corrupt")

// castagnoli is the CRC-32C table; the same polynomial storage systems use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed record to buf and returns the result.
func appendFrame(buf, payload []byte) []byte {
	var hdr [walFrameSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// encodeSegmentHeader writes the 16-byte segment header.
func encodeSegmentHeader(shard int) [walHeaderSize]byte {
	var h [walHeaderSize]byte
	copy(h[:8], walMagic)
	binary.BigEndian.PutUint32(h[8:12], walVersion)
	binary.BigEndian.PutUint32(h[12:16], uint32(shard))
	return h
}

// decodeSegment parses a segment image: header then framed records. It
// returns the shard id from the header, the payloads of every intact
// record in order, the byte offset where decoding stopped, and damage —
// nil when the image ends exactly at a record boundary, otherwise an error
// wrapping ErrCorrupt describing the first damaged frame. Records before
// the damage are always returned; the caller decides whether the damage is
// a repairable tail or fatal mid-history corruption.
func decodeSegment(data []byte) (shard int, recs [][]byte, off int64, damage error) {
	if len(data) < walHeaderSize {
		return 0, nil, 0, fmt.Errorf("monitor: wal header truncated (%d bytes): %w", len(data), ErrCorrupt)
	}
	if string(data[:8]) != walMagic {
		return 0, nil, 0, fmt.Errorf("monitor: wal bad magic: %w", ErrCorrupt)
	}
	if v := binary.BigEndian.Uint32(data[8:12]); v != walVersion {
		return 0, nil, 0, fmt.Errorf("monitor: wal version %d, want %d: %w", v, walVersion, ErrCorrupt)
	}
	shard = int(binary.BigEndian.Uint32(data[12:16]))
	pos := int64(walHeaderSize)
	for {
		rest := data[pos:]
		if len(rest) == 0 {
			return shard, recs, pos, nil
		}
		if len(rest) < walFrameSize {
			return shard, recs, pos, fmt.Errorf("monitor: wal frame truncated at offset %d: %w", pos, ErrCorrupt)
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		if n > maxRecordSize {
			return shard, recs, pos, fmt.Errorf("monitor: wal record length %d exceeds bound at offset %d: %w", n, pos, ErrCorrupt)
		}
		if int64(len(rest)) < walFrameSize+int64(n) {
			return shard, recs, pos, fmt.Errorf("monitor: wal record torn at offset %d (%d of %d bytes): %w", pos, len(rest)-walFrameSize, n, ErrCorrupt)
		}
		payload := rest[walFrameSize : walFrameSize+int64(n)]
		if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(rest[4:8]) {
			return shard, recs, pos, fmt.Errorf("monitor: wal crc mismatch at offset %d: %w", pos, ErrCorrupt)
		}
		recs = append(recs, payload)
		pos += walFrameSize + int64(n)
	}
}

// shardDirName returns the per-shard WAL directory name.
func shardDirName(shard int) string { return fmt.Sprintf("shard-%04d", shard) }

// segName returns a segment file name; sealed segments end in .wal, the
// live one in .open.
func segName(seq int, sealed bool) string {
	ext := ".open"
	if sealed {
		ext = ".wal"
	}
	return fmt.Sprintf("seg-%08d%s", seq, ext)
}

// parseSegName extracts the sequence number of a segment file name and
// whether it is sealed; ok is false for unrelated files.
func parseSegName(name string) (seq int, sealed, ok bool) {
	var ext string
	switch {
	case strings.HasSuffix(name, ".wal"):
		ext, sealed = ".wal", true
	case strings.HasSuffix(name, ".open"):
		ext, sealed = ".open", false
	default:
		return 0, false, false
	}
	if !strings.HasPrefix(name, "seg-") {
		return 0, false, false
	}
	num := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ext)
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0, false, false
	}
	return n, sealed, true
}

// walWriter appends framed records to a shard's open segment, rotating to a
// new segment past SegmentBytes. Not safe for concurrent use: each shard
// owns exactly one writer.
type walWriter struct {
	dir      string // the shard's WAL directory
	shard    int
	seq      int // sequence of the open segment
	f        *os.File
	written  int64 // bytes in the open segment
	segBytes int64
	sync     bool
	frameBuf []byte // reusable frame staging

	// lastRound tracks the highest round appended to the open segment, and
	// sealedMax the same per sealed segment (for snapshot-driven GC).
	lastRound int
	sealedMax map[int]int // seq -> max round in that sealed segment

	m *monitorMetrics
}

// newWALWriter opens (creating if needed) the shard directory and starts a
// fresh open segment with sequence nextSeq.
func newWALWriter(dir string, shard, nextSeq int, segBytes int64, sync bool, m *monitorMetrics) (*walWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("monitor: wal: %w", err)
	}
	w := &walWriter{
		dir:       dir,
		shard:     shard,
		seq:       nextSeq,
		segBytes:  segBytes,
		sync:      sync,
		lastRound: -1,
		sealedMax: make(map[int]int),
		m:         m,
	}
	if err := w.openSegment(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *walWriter) openSegment() error {
	path := filepath.Join(w.dir, segName(w.seq, false))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("monitor: wal: %w", err)
	}
	hdr := encodeSegmentHeader(w.shard)
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close() // best effort: the write error is the one to surface
		return fmt.Errorf("monitor: wal: %w", err)
	}
	w.f = f
	w.written = int64(walHeaderSize)
	w.lastRound = -1
	return nil
}

// append commits one record: frame, single write call (so an in-process
// crash can never leave a half-written frame), optional fsync, rotate when
// the segment is full. round is the record's round number, tracked for
// snapshot-driven segment GC.
func (w *walWriter) append(payload []byte, round int) error {
	w.frameBuf = appendFrame(w.frameBuf[:0], payload)
	if _, err := w.f.Write(w.frameBuf); err != nil {
		return fmt.Errorf("monitor: wal append: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("monitor: wal sync: %w", err)
		}
	}
	w.written += int64(len(w.frameBuf))
	if round > w.lastRound {
		w.lastRound = round
	}
	w.m.walRecords.Inc()
	w.m.walBytes.Add(int64(len(w.frameBuf)))
	if w.written >= w.segBytes {
		return w.rotate()
	}
	return nil
}

// rotate seals the open segment and starts the next one.
func (w *walWriter) rotate() error {
	if err := w.seal(); err != nil {
		return err
	}
	w.seq++
	return w.openSegment()
}

// seal makes the open segment immutable: fsync, close, atomic rename to
// .wal, directory fsync. Sealing always syncs, even when per-record Sync is
// off, so a sealed segment is trustworthy end to end.
func (w *walWriter) seal() error {
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close() // best effort: the sync error is the one to surface
		w.f = nil
		return fmt.Errorf("monitor: wal seal: %w", err)
	}
	if err := w.f.Close(); err != nil {
		w.f = nil
		return fmt.Errorf("monitor: wal seal: %w", err)
	}
	w.f = nil
	if err := durable.Rename(
		filepath.Join(w.dir, segName(w.seq, false)),
		filepath.Join(w.dir, segName(w.seq, true)),
	); err != nil {
		return fmt.Errorf("monitor: wal seal: %w", err)
	}
	w.sealedMax[w.seq] = w.lastRound
	w.m.walSeals.Inc()
	return nil
}

// gc deletes sealed segments whose every record is covered by a snapshot at
// snapRound. Only segments sealed by this writer are considered; leftover
// segments from earlier processes are skipped by the recovery reader anyway
// and cost only disk.
func (w *walWriter) gc(snapRound int) {
	seqs := make([]int, 0, len(w.sealedMax))
	for seq := range w.sealedMax {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		if w.sealedMax[seq] > snapRound {
			continue
		}
		if err := os.Remove(filepath.Join(w.dir, segName(seq, true))); err == nil {
			w.m.segmentsDeleted.Inc()
		}
		delete(w.sealedMax, seq)
	}
}

// close seals the open segment (graceful drain). abandon drops the handle
// without sealing (simulated kill), leaving the .open tail exactly as a
// real crash would.
func (w *walWriter) close() error { return w.seal() }

func (w *walWriter) abandon() {
	if w.f != nil {
		_ = w.f.Close() // simulated kill: the torn .open tail is the point
		w.f = nil
	}
}

// segmentFile pairs a segment's sequence number with its path and seal
// state, sorted for replay.
type segmentFile struct {
	seq    int
	sealed bool
	path   string
}

// listSegments returns the shard directory's segment files in sequence
// order. A missing directory is an empty log.
func listSegments(dir string) ([]segmentFile, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("monitor: wal: %w", err)
	}
	var segs []segmentFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		seq, sealed, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, segmentFile{seq: seq, sealed: sealed, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for i := 1; i < len(segs); i++ {
		if segs[i].seq == segs[i-1].seq {
			// Both seg-N.open and seg-N.wal exist: the process died between
			// the rename and the directory sync, or during a crash-looped
			// seal. The sealed file is the trustworthy one.
			return nil, fmt.Errorf("monitor: wal: duplicate segment %d in %s: %w", segs[i].seq, dir, ErrCorrupt)
		}
	}
	return segs, nil
}
