package monitor

// publish.go — the epoch-publication hook between the monitor and a live
// query layer (internal/serve). After every committed round a shard hands
// its post-round block state to the configured EpochSink; after every
// rebuild (first attempt, crash recovery, resume over an old WAL) it first
// re-publishes its full committed state so the sink never has to guess what
// a restarted shard already covered.
//
// The contract is deliberately one-way and non-durable: the sink is a
// read-side consumer, the WAL stays the only source of truth. Publication
// happens strictly after the round commits, so anything a sink ever saw is
// state a recovery would reconstruct — a sink fed by a crash-looping shard
// converges to exactly the state a sink fed by an uninterrupted run sees,
// because resync is a pure function of the committed series.
//
// A nil sink costs one comparison per round. Sink calls run on the shard
// goroutine: implementations must be fast (no I/O, no unbounded blocking)
// or they stall probing — the serve engine copies into writer-owned buffers
// under a mutex no reader ever takes. A panic inside a sink is absorbed by
// the shard's supervisor like any other crash.

import (
	"time"

	"sleepnet/internal/netsim"
)

// Published outage-transition codes (RoundPub.Event).
const (
	// PubEventNone: no up/down transition this round.
	PubEventNone = eventNone
	// PubEventDown: the block transitioned into an outage this round.
	PubEventDown = eventDown
	// PubEventUp: the block recovered from an outage this round.
	PubEventUp = eventUp
)

// RunInfo describes the campaign to a sink before any shard starts.
type RunInfo struct {
	Shards int
	Rounds int
	Blocks int
	Start  time.Time
	Period time.Duration
	Seed   uint64
}

// PubBlock is one block's full committed state — the resync form. Short
// aliases shard-owned memory and is valid only for the duration of the
// ResyncShard call; sinks must consume it before returning.
type PubBlock struct {
	ID netsim.BlockID
	// Short is the committed Âs series so far, one value per round.
	Short []float64
	// Long is the estimator's long-term availability.
	Long float64
	// Down reports whether the block is currently inside an outage.
	Down bool
	// Failed counts rounds with no usable observation.
	Failed int
}

// RoundPub is one block's post-round delta, in the shard's block order.
type RoundPub struct {
	// Avail is the Âs value appended to the series this round.
	Avail float64
	// Long is the estimator's long-term availability after the round.
	Long float64
	// Event is PubEventNone/PubEventDown/PubEventUp.
	Event uint8
	// Failed marks a round that produced no usable observation.
	Failed bool
}

// EpochSink receives the monitor's committed per-block state, round by
// round. Implementations must be safe for concurrent use: shards publish
// from their own goroutines.
type EpochSink interface {
	// BeginRun announces the campaign shape before any shard runs.
	BeginRun(info RunInfo)
	// ResyncShard replaces everything known about the shard with its full
	// committed state; nextRound is the number of committed rounds. Called
	// at the start of every shard attempt (including the first).
	ResyncShard(shard, nextRound int, blocks []PubBlock)
	// PublishRound applies one committed round's deltas, ordered exactly as
	// the shard's blocks in the global sorted order.
	PublishRound(shard, round int, deltas []RoundPub)
	// ShardDown reports that the shard crash-looped into quarantine and
	// will publish no further rounds this run.
	ShardDown(shard int)
}

// down reports whether the block is currently inside an outage: the last
// committed transition was a down.
func (b *blockMon) down() bool {
	if len(b.events) == 0 {
		return false
	}
	return b.events[len(b.events)-1].Down
}

// publishResync re-publishes the shard's full committed state after a
// rebuild. Cold path: allocation here is fine.
func (s *shard) publishResync() {
	sink := s.m.cfg.Sink
	if sink == nil {
		return
	}
	blocks := make([]PubBlock, 0, len(s.mons))
	for _, mon := range s.mons {
		blocks = append(blocks, PubBlock{
			ID:     mon.id,
			Short:  mon.short,
			Long:   mon.est.LongTerm(),
			Down:   mon.down(),
			Failed: mon.failed,
		})
	}
	sink.ResyncShard(s.idx, s.round, blocks)
}

// publishRound hands the just-committed round r to the sink. Hot path: the
// staging slice is reused across rounds.
func (s *shard) publishRound(r int) {
	sink := s.m.cfg.Sink
	if sink == nil {
		return
	}
	s.pub = s.pub[:0]
	if cap(s.pub) < len(s.mons) {
		s.pub = make([]RoundPub, 0, len(s.mons))
	}
	for _, mon := range s.mons {
		s.pub = append(s.pub, RoundPub{
			Avail:  mon.short[len(mon.short)-1],
			Long:   mon.est.LongTerm(),
			Event:  uint8(mon.lastEvent),
			Failed: mon.lastFailed,
		})
	}
	sink.PublishRound(s.idx, r, s.pub)
}
