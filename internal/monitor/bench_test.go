package monitor

import "testing"

// BenchmarkMonitorRoundBatch measures one warm monitor round over a
// 64-block shard — the steady-state unit of continuous monitoring — on the
// default batched wavefront path and on the ScalarProbe fallback. The CI
// perf-smoke gate diffs the batched number against BENCH_pr10.json, so a
// regression in the vectorized delivery path fails the build rather than
// landing silently; the scalar sub-benchmark keeps the fallback honest and
// makes the batch-vs-scalar gap visible in every bench run.
func BenchmarkMonitorRoundBatch(b *testing.B) {
	for _, bc := range []struct {
		name   string
		scalar bool
	}{
		{"batched", false},
		{"scalar", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := baseConfig(testNet(64), 1<<20)
			cfg.Shards = 1
			cfg.ScalarProbe = bc.scalar
			m, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s := m.shards[0]
			if err := s.rebuild(); err != nil {
				b.Fatal(err)
			}
			// Warm up arenas and event slices so the loop measures the
			// steady state the alloc-free contract pins.
			r := 0
			for i := 0; i < 4; i++ {
				s.probeRound(r)
				r++
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.probeRound(r)
				r++
			}
		})
	}
}
