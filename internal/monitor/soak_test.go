package monitor

import (
	"bytes"
	"context"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"sleepnet/internal/faults"
	"sleepnet/internal/metrics"
)

// monitorGoroutines counts live goroutines (other than the calling one) with
// a frame in this package — a stdlib-only leak detector for the supervision
// tree. Run joins every goroutine it spawns before returning, so the count
// after a drain must match the count before the monitor existed.
func monitorGoroutines() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	count := 0
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "monitorGoroutines") {
			continue // the caller
		}
		if strings.Contains(g, "internal/monitor") {
			count++
		}
	}
	return count
}

// TestSIGTERMSoakDrainsCleanly is the soak scenario from the robustness
// brief: a durable monitor with the watchdog on a real ticker absorbs three
// chaos kills, then the whole test process receives an honest SIGTERM
// mid-round. The monitor must drain (finish in-flight rounds, snapshot,
// seal), leak no goroutines, and a later monitor over the same WALDir must
// resume to a study byte-identical to an uninterrupted run. Run it under
// -race: the signal path, the watchdog, and the supervisors all overlap here.
func TestSIGTERMSoakDrainsCleanly(t *testing.T) {
	before := monitorGoroutines()

	dir := t.TempDir()
	reg := metrics.New()
	chaos := &faults.ChaosPlan{Kills: []faults.ShardRound{
		{Shard: 0, Round: 5}, {Shard: 1, Round: 7}, {Shard: 2, Round: 9},
	}}
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()

	const rounds = 2000
	cfg := baseConfig(testNet(15), rounds)
	cfg.WALDir = dir
	cfg.SnapshotEvery = 64
	cfg.Metrics = reg
	cfg.Chaos = chaos
	cfg.WatchdogTick = tick.C
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, rerr := m.Run(ctx)
		done <- outcome{res, rerr}
	}()

	// Let the campaign absorb all three kills and make real progress, then
	// deliver a genuine SIGTERM to the test process itself.
	deadline := time.After(60 * time.Second)
	for chaos.Fired() < 3 || reg.Snapshot().Counter("monitor.rounds_committed") < 600 {
		select {
		case o := <-done:
			if o.err != nil {
				t.Fatal(o.err)
			}
			t.Skip("campaign completed before SIGTERM could be delivered")
		case <-deadline:
			t.Fatalf("soak never reached the signal threshold (fired=%d committed=%d)",
				chaos.Fired(), reg.Snapshot().Counter("monitor.rounds_committed"))
		case <-time.After(time.Millisecond):
		}
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	o := <-done
	stop()
	if o.err != nil {
		t.Fatalf("drain returned %v", o.err)
	}
	if o.res.Completed {
		t.Skip("campaign completed in the signal race; drain untestable this run")
	}
	if !o.res.Drained {
		t.Fatalf("run stopped without draining: %+v", o.res)
	}
	if o.res.Restarts < 3 {
		t.Errorf("restarts = %d, want >= 3 (one per chaos kill)", o.res.Restarts)
	}

	got := monitorGoroutines()
	for i := 0; i < 200 && got > before; i++ {
		time.Sleep(time.Millisecond)
		got = monitorGoroutines()
	}
	if got > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d monitor goroutines before, %d after drain\n%s",
			before, got, buf[:runtime.Stack(buf, true)])
	}

	// The drained state must resume to exactly the uninterrupted study.
	ref := runStudy(t, baseConfig(testNet(15), rounds))
	resumed := baseConfig(testNet(15), rounds)
	resumed.WALDir = dir
	if got := runStudy(t, resumed); !bytes.Equal(got, ref) {
		t.Fatal("resumed study diverges from the uninterrupted reference")
	}
}
