package monitor

// record.go — the serialized forms the WAL and snapshot files carry.
//
// A round record is self-contained: it holds the *post-round* state of
// every block the shard probed (prober memory, estimator EWMAs, the Âs
// value appended to the series, and any outage transition), so recovery is
// latest snapshot + ordered replay of later records, with no dependence on
// re-running probes for committed rounds. Snapshots reuse the WAL's frame
// (header + one CRC-framed record), so one decoder — and one fuzz target —
// covers both.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"sleepnet/internal/core"
	"sleepnet/internal/durable"
	"sleepnet/internal/netsim"
	"sleepnet/internal/trinocular"
)

// Outage event codes in a blockDelta.
const (
	eventNone = 0
	eventDown = 1 // up -> down transition this round
	eventUp   = 2 // down -> up transition this round
)

// blockDelta is one block's post-round committed state.
type blockDelta struct {
	Prober trinocular.BlockState
	Est    core.EstimatorState
	// Short is the Âs value appended to the block's series this round.
	Short float64
	// Event is eventNone/eventDown/eventUp.
	Event int
	// Failed marks a round that produced no usable observation.
	Failed bool
}

// walRecord is one committed shard round.
type walRecord struct {
	Round  int
	Deltas []blockDelta
}

// blockSnapshot is one block's cumulative state at a snapshot boundary.
type blockSnapshot struct {
	ID     netsim.BlockID
	Est    core.EstimatorState
	Short  []float64
	Events []core.OutageEvent
	Failed int
}

// shardSnapshot is the full committed state of one shard after Round
// rounds. Blocks and Prober are sorted by block id, so two snapshots of the
// same state are byte-identical.
type shardSnapshot struct {
	Shard  int
	Round  int // rounds covered: [0, Round)
	Prober []trinocular.BlockState
	Blocks []blockSnapshot
}

// encodeSnapshot frames a snapshot as a one-record segment image.
func encodeSnapshot(s *shardSnapshot) ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("monitor: snapshot encode: %w", err)
	}
	hdr := encodeSegmentHeader(s.Shard)
	return appendFrame(hdr[:], payload), nil
}

// decodeSnapshot parses a snapshot file image. Any damage — framing, CRC,
// record count, or JSON — is ErrCorrupt: a snapshot is written atomically,
// so unlike a WAL tail there is no benign way for one to be half-written.
func decodeSnapshot(data []byte) (*shardSnapshot, error) {
	_, recs, _, damage := decodeSegment(data)
	if damage != nil {
		return nil, damage
	}
	if len(recs) != 1 {
		return nil, fmt.Errorf("monitor: snapshot has %d records, want 1: %w", len(recs), ErrCorrupt)
	}
	var s shardSnapshot
	if err := json.Unmarshal(recs[0], &s); err != nil {
		return nil, fmt.Errorf("monitor: snapshot decode: %v: %w", err, ErrCorrupt)
	}
	for i := 1; i < len(s.Blocks); i++ {
		if s.Blocks[i].ID <= s.Blocks[i-1].ID {
			return nil, fmt.Errorf("monitor: snapshot blocks out of order: %w", ErrCorrupt)
		}
	}
	if s.Round < 0 {
		return nil, fmt.Errorf("monitor: snapshot round %d negative: %w", s.Round, ErrCorrupt)
	}
	return &s, nil
}

// decodeRecord parses one WAL round-record payload, with the structural
// checks the replay path relies on.
func decodeRecord(payload []byte) (*walRecord, error) {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("monitor: record decode: %v: %w", err, ErrCorrupt)
	}
	if rec.Round < 0 {
		return nil, fmt.Errorf("monitor: record round %d negative: %w", rec.Round, ErrCorrupt)
	}
	return &rec, nil
}

// ErrMismatch reports a WAL directory written by a different campaign
// (seed, schedule, or block set): resuming from it would splice two
// incompatible histories.
var ErrMismatch = errors.New("monitor: wal belongs to a different campaign")

// walMeta identifies the campaign a WAL directory belongs to.
type walMeta struct {
	Magic      string
	Version    int
	Seed       uint64
	StartNanos int64
	PeriodNs   int64
	Rounds     int
	Shards     int
	NumBlocks  int
	BlocksCRC  uint32
}

const metaMagic = "SLPMON01"

// blocksCRC fingerprints the monitored block set (order-sensitive over the
// sorted ids).
func blocksCRC(ids []netsim.BlockID) uint32 {
	var buf [4]byte
	crc := crc32.Checksum(nil, castagnoli)
	for _, id := range ids {
		binary.BigEndian.PutUint32(buf[:], uint32(id))
		crc = crc32.Update(crc, castagnoli, buf[:])
	}
	return crc
}

func (m *walMeta) equal(o *walMeta) bool {
	return m.Magic == o.Magic && m.Version == o.Version && m.Seed == o.Seed &&
		m.StartNanos == o.StartNanos && m.PeriodNs == o.PeriodNs &&
		m.Rounds == o.Rounds && m.Shards == o.Shards &&
		m.NumBlocks == o.NumBlocks && m.BlocksCRC == o.BlocksCRC
}

// checkOrWriteMeta guards a WAL root: a fresh directory gets the campaign's
// identity written atomically; an existing one must match it exactly.
func checkOrWriteMeta(path string, want walMeta) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		out, merr := json.Marshal(want)
		if merr != nil {
			return fmt.Errorf("monitor: meta encode: %w", merr)
		}
		return durable.WriteFileAtomic(path, out, 0o644)
	}
	if err != nil {
		return fmt.Errorf("monitor: meta: %w", err)
	}
	var got walMeta
	if uerr := json.Unmarshal(data, &got); uerr != nil {
		return fmt.Errorf("monitor: meta decode: %v: %w", uerr, ErrCorrupt)
	}
	if !got.equal(&want) {
		return fmt.Errorf("monitor: meta %s: %w", path, ErrMismatch)
	}
	return nil
}

// metaFor builds the identity record for a monitor configuration.
func metaFor(seed uint64, start time.Time, period time.Duration, rounds, shards int, ids []netsim.BlockID) walMeta {
	return walMeta{
		Magic:      metaMagic,
		Version:    walVersion,
		Seed:       seed,
		StartNanos: start.UnixNano(),
		PeriodNs:   int64(period),
		Rounds:     rounds,
		Shards:     shards,
		NumBlocks:  len(ids),
		BlocksCRC:  blocksCRC(ids),
	}
}
