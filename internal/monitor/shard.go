package monitor

// shard.go — one worker shard of the monitor: a contiguous slice of the
// sorted block set, probed round by round with a single long-lived
// ProbeContext (the O(shards) memory bound), committed to the shard's WAL,
// snapshotted every SnapshotEvery rounds.
//
// The crash-recovery invariant is that a shard attempt NEVER patches
// partially-mutated in-memory state: every attempt rebuilds from scratch —
// fresh prober, fresh estimators, snapshot + WAL replay — so the only state
// that survives a crash is committed state, and re-executing an uncommitted
// round is deterministic because probing is a pure function of (seed, block,
// virtual time). That uniform rebuild path is what makes a kill-and-recover
// run byte-identical to an uninterrupted one.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sleepnet/internal/core"
	"sleepnet/internal/durable"
	"sleepnet/internal/netsim"
	"sleepnet/internal/trinocular"
)

// probeBatchGroup caps how many blocks one batched wavefront carries. Large
// enough to amortize the per-batch boundary crossing, small enough that the
// per-lane scratch keeps the shard's steady-state memory O(shards) rather
// than O(blocks) (TestMonitorHeapIsWorkerBound pins the bound).
const probeBatchGroup = 64

// Internal control-flow sentinels for a shard attempt's exit.
var (
	// errDrained: the context was cancelled and the shard finished its
	// in-flight round, wrote a final snapshot, and sealed its WAL.
	errDrained = errors.New("monitor: shard drained")
	// errAborted: the watchdog (or supervisor) aborted a wedged attempt.
	errAborted = errors.New("monitor: shard attempt aborted")
)

// blockMon is one block's in-memory accumulation — the mutable mirror of
// what the WAL commits.
type blockMon struct {
	id     netsim.BlockID
	est    *core.Estimator
	short  []float64
	events []core.OutageEvent
	failed int
	// lastEvent/lastFailed stage the current round's delta between
	// probeRound and commitRound (no allocation on the hot path).
	lastEvent  int
	lastFailed bool
}

// shard owns a partition of the monitored blocks.
type shard struct {
	idx    int
	m      *Monitor
	blocks []netsim.BlockID // sorted, contiguous slice of the global order

	// Rebuilt from durable state at the start of every attempt.
	prober *trinocular.Prober
	pc     *trinocular.ProbeContext
	bc     *trinocular.BatchContext // batched-delivery scratch (default path)
	aOps   []float64                // per-round availability inputs, reused
	obsBuf []trinocular.RoundObs    // per-round observations, reused
	mons   []*blockMon
	round  int // next round to execute
	wal    *walWriter
	rec    walRecord  // staging buffer reused across commits
	pub    []RoundPub // sink staging buffer reused across rounds

	// hb is the watchdog heartbeat: bumped on every completed round and
	// every completed rebuild.
	hb atomic.Int64
	// committed is the high-water mark of durably committed rounds,
	// monotonic across restarts; the simulated-kill trigger reads it.
	committed atomic.Int64
	// done marks the shard finished (completed, drained, halted, or
	// quarantined); the watchdog skips done shards.
	done atomic.Bool

	attemptMu sync.Mutex
	abort     chan struct{}
	aborted   bool
}

func (s *shard) dir() string { return filepath.Join(s.m.cfg.WALDir, shardDirName(s.idx)) }

// newAttempt arms a fresh abort channel for the next attempt.
func (s *shard) newAttempt() {
	s.attemptMu.Lock()
	s.abort = make(chan struct{})
	s.aborted = false
	s.attemptMu.Unlock()
}

// abortAttempt asks the current attempt to stop (idempotent).
func (s *shard) abortAttempt() {
	s.attemptMu.Lock()
	if !s.aborted && s.abort != nil {
		close(s.abort)
		s.aborted = true
	}
	s.attemptMu.Unlock()
}

func (s *shard) abortCh() <-chan struct{} {
	s.attemptMu.Lock()
	defer s.attemptMu.Unlock()
	return s.abort
}

// rebuild constructs the attempt's working state purely from configuration
// and durable state: fresh prober and estimators, then snapshot + WAL
// replay when durability is on.
func (s *shard) rebuild() error {
	cfg := &s.m.cfg
	s.prober = trinocular.New(cfg.Net, cfg.Prober, cfg.Seed)
	s.pc = trinocular.NewProbeContext()
	s.bc = trinocular.NewBatchContext()
	group := len(s.blocks)
	if group > probeBatchGroup {
		group = probeBatchGroup
	}
	if cap(s.aOps) < group {
		s.aOps = make([]float64, group)
		s.obsBuf = make([]trinocular.RoundObs, group)
	}
	s.aOps = s.aOps[:group]
	s.obsBuf = s.obsBuf[:group]
	s.mons = s.mons[:0]
	if cap(s.mons) < len(s.blocks) {
		s.mons = make([]*blockMon, 0, len(s.blocks))
	}
	for _, id := range s.blocks {
		blk := cfg.Net.Block(id)
		if blk == nil {
			return fmt.Errorf("monitor: shard %d: block %s not in network", s.idx, id)
		}
		if err := s.prober.AddBlock(id, blk.EverActive()); err != nil {
			return fmt.Errorf("monitor: shard %d: %w", s.idx, err)
		}
		s.mons = append(s.mons, &blockMon{
			id:     id,
			est:    core.NewEstimator(cfg.InitialA),
			short:  make([]float64, 0, cfg.Rounds),
			events: make([]core.OutageEvent, 0, 8),
		})
	}
	// Pin the restart-phase epoch to the campaign start so cold rounds fall
	// on the same virtual times no matter when (or after how many crashes)
	// this attempt begins.
	if err := s.prober.RestoreState(trinocular.State{Epoch: cfg.Start}); err != nil {
		return fmt.Errorf("monitor: shard %d: %w", s.idx, err)
	}
	s.round = 0
	s.wal = nil
	if cfg.WALDir == "" {
		return nil
	}
	return s.recoverWAL()
}

// recoverWAL restores committed state: latest snapshot, then ordered replay
// of WAL records past it. Damage at the tail of the final segment is the
// crash signature and is repaired by truncation; damage anywhere else is
// fatal. Leftover .open segments (from crashes) are repaired and sealed so
// the directory converges to sealed history plus one live segment.
func (s *shard) recoverWAL() error {
	dir := s.dir()
	cfg := &s.m.cfg

	recovered := false
	snapPath := filepath.Join(dir, "snap.json")
	if data, err := os.ReadFile(snapPath); err == nil {
		snap, derr := decodeSnapshot(data)
		if derr != nil {
			return fmt.Errorf("monitor: shard %d snapshot %s: %w", s.idx, snapPath, derr)
		}
		if snap.Shard != s.idx {
			return fmt.Errorf("monitor: snapshot for shard %d found in shard %d dir: %w", snap.Shard, s.idx, ErrCorrupt)
		}
		if err := s.applySnapshot(snap); err != nil {
			return err
		}
		s.round = snap.Round
		recovered = true
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("monitor: shard %d: %w", s.idx, err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	maxSeq := -1
	replayed := 0
	// segRounds remembers each surviving sealed segment's max round so the
	// new writer's snapshot GC covers pre-crash history too.
	segRounds := make(map[int]int)
	for i, sf := range segs {
		maxSeq = sf.seq
		data, rerr := os.ReadFile(sf.path)
		if rerr != nil {
			return fmt.Errorf("monitor: shard %d: %w", s.idx, rerr)
		}
		shardID, recs, tail, damage := decodeSegment(data)
		if damage != nil {
			if i != len(segs)-1 || sf.sealed {
				// A sealed or non-final segment is supposed to be beyond
				// doubt; damage here is unrecoverable history loss.
				return fmt.Errorf("monitor: shard %d segment %s damaged mid-history: %w", s.idx, sf.path, damage)
			}
			s.m.met.truncatedTails.Inc()
			if tail < int64(walHeaderSize) {
				// Even the header is gone: the crash beat the first write.
				// The file carries nothing; drop it rather than sealing an
				// undecodable husk.
				if err := os.Remove(sf.path); err != nil {
					return fmt.Errorf("monitor: shard %d: %w", s.idx, err)
				}
				continue
			}
			if err := os.Truncate(sf.path, tail); err != nil {
				return fmt.Errorf("monitor: shard %d: %w", s.idx, err)
			}
		}
		if len(recs) > 0 && shardID != s.idx {
			return fmt.Errorf("monitor: shard %d segment %s claims shard %d: %w", s.idx, sf.path, shardID, ErrCorrupt)
		}
		segMax := -1
		for _, payload := range recs {
			rec, derr := decodeRecord(payload)
			if derr != nil {
				return fmt.Errorf("monitor: shard %d segment %s: %w", s.idx, sf.path, derr)
			}
			if rec.Round > segMax {
				segMax = rec.Round
			}
			if rec.Round < s.round {
				continue // covered by the snapshot
			}
			if rec.Round != s.round {
				return fmt.Errorf("monitor: shard %d wal gap: have round %d, next record is %d: %w",
					s.idx, s.round, rec.Round, ErrCorrupt)
			}
			if err := s.applyRecord(rec); err != nil {
				return err
			}
			s.round++
			replayed++
		}
		if !sf.sealed {
			// Repaired (or cleanly abandoned) leftover: seal it in place so
			// future recoveries treat it as immutable history.
			if err := durable.Rename(sf.path, filepath.Join(dir, segName(sf.seq, true))); err != nil {
				return fmt.Errorf("monitor: shard %d: %w", s.idx, err)
			}
		}
		segRounds[sf.seq] = segMax
	}
	if recovered || replayed > 0 {
		s.m.met.recoveries.Inc()
		s.m.met.replayedRounds.Add(int64(replayed))
	}

	w, werr := newWALWriter(dir, s.idx, maxSeq+1, cfg.SegmentBytes, cfg.SyncWAL, s.m.met)
	if werr != nil {
		return werr
	}
	for seq, maxRound := range segRounds {
		w.sealedMax[seq] = maxRound
	}
	s.wal = w
	return nil
}

// applySnapshot loads a snapshot's cumulative state into the fresh mons and
// prober.
func (s *shard) applySnapshot(snap *shardSnapshot) error {
	if len(snap.Blocks) != len(s.mons) {
		return fmt.Errorf("monitor: shard %d snapshot has %d blocks, monitor %d: %w",
			s.idx, len(snap.Blocks), len(s.mons), ErrCorrupt)
	}
	for i, bs := range snap.Blocks {
		mon := s.mons[i]
		if mon.id != bs.ID {
			return fmt.Errorf("monitor: shard %d snapshot block %s, monitor %s: %w",
				s.idx, bs.ID, mon.id, ErrCorrupt)
		}
		mon.est = core.EstimatorFromState(bs.Est)
		mon.short = append(mon.short[:0], bs.Short...)
		mon.events = append(mon.events[:0], bs.Events...)
		mon.failed = bs.Failed
	}
	if err := s.prober.RestoreState(trinocular.State{Blocks: snap.Prober}); err != nil {
		return fmt.Errorf("monitor: shard %d snapshot: %v: %w", s.idx, err, ErrCorrupt)
	}
	return nil
}

// applyRecord replays one committed round into the in-memory state.
func (s *shard) applyRecord(rec *walRecord) error {
	if len(rec.Deltas) != len(s.mons) {
		return fmt.Errorf("monitor: shard %d record round %d has %d blocks, monitor %d: %w",
			s.idx, rec.Round, len(rec.Deltas), len(s.mons), ErrCorrupt)
	}
	states := make([]trinocular.BlockState, len(rec.Deltas))
	for i := range rec.Deltas {
		d := &rec.Deltas[i]
		mon := s.mons[i]
		if mon.id != d.Prober.ID {
			return fmt.Errorf("monitor: shard %d record block %s, monitor %s: %w",
				s.idx, d.Prober.ID, mon.id, ErrCorrupt)
		}
		mon.est = core.EstimatorFromState(d.Est)
		mon.short = append(mon.short, d.Short)
		switch d.Event {
		case eventDown:
			mon.events = append(mon.events, core.OutageEvent{Round: rec.Round, Down: true})
		case eventUp:
			mon.events = append(mon.events, core.OutageEvent{Round: rec.Round, Down: false})
		}
		if d.Failed {
			mon.failed++
		}
		states[i] = d.Prober
	}
	if err := s.prober.RestoreState(trinocular.State{Blocks: states}); err != nil {
		return fmt.Errorf("monitor: shard %d replay: %v: %w", s.idx, err, ErrCorrupt)
	}
	return nil
}

// runAttempt is one supervised life of the shard: rebuild, then probe and
// commit rounds until done, drained, halted, aborted, or crashed. Panics
// (including injected chaos kills) are converted to errors so the
// supervisor can apply restart policy.
func (s *shard) runAttempt(ctx context.Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if s.wal != nil {
				s.wal.abandon()
				s.wal = nil
			}
			err = fmt.Errorf("monitor: shard %d panic: %v", s.idx, r)
		}
	}()
	if err := s.rebuild(); err != nil {
		return err
	}
	s.publishResync()
	s.hb.Add(1)
	cfg := &s.m.cfg
	for s.round < cfg.Rounds {
		r := s.round
		select {
		case <-ctx.Done():
			return s.shutdown()
		case <-s.abortCh():
			return s.abandonWith(errAborted)
		default:
		}
		if s.m.chaos.ShouldHardStall(s.idx, r) {
			// Wedged beyond the watchdog's abort: only monitor shutdown
			// (which the watchdog escalates to) releases the shard.
			<-ctx.Done()
			return s.abandonWith(errAborted)
		}
		if s.m.chaos.ShouldStall(s.idx, r) {
			select {
			case <-s.abortCh():
				return s.abandonWith(errAborted)
			case <-ctx.Done():
				return s.shutdown()
			}
		}
		s.probeRound(r)
		if s.m.chaos.ShouldKill(s.idx, r) {
			panic(fmt.Sprintf("chaos: kill shard %d after probing round %d", s.idx, r))
		}
		if err := s.commitRound(r); err != nil {
			return err
		}
		s.publishRound(r)
		s.round = r + 1
		if int64(s.round) > s.committed.Load() {
			s.committed.Store(int64(s.round))
		}
		s.hb.Add(1)
		s.m.met.rounds.Inc()
		if cfg.SnapshotEvery > 0 && s.wal != nil && s.round%cfg.SnapshotEvery == 0 {
			if err := s.writeSnapshot(); err != nil {
				return err
			}
		}
		s.m.maybeHalt()
		if s.m.halted.Load() {
			return s.abandonWith(ErrHalted)
		}
	}
	if s.wal != nil {
		if err := s.writeSnapshot(); err != nil {
			return err
		}
		if err := s.wal.close(); err != nil {
			return err
		}
		s.wal = nil
	}
	return nil
}

// shutdown handles context cancellation: a halt abandons the WAL exactly as
// a kill -9 would; a graceful drain writes a final snapshot and seals.
func (s *shard) shutdown() error {
	if s.m.halted.Load() {
		return s.abandonWith(ErrHalted)
	}
	if s.wal != nil {
		if err := s.writeSnapshot(); err != nil {
			return err
		}
		if err := s.wal.close(); err != nil {
			return err
		}
		s.wal = nil
	}
	return errDrained
}

// abandonWith drops the WAL handle without sealing and returns reason.
func (s *shard) abandonWith(reason error) error {
	if s.wal != nil {
		s.wal.abandon()
		s.wal = nil
	}
	return reason
}

// probeRound executes one round over the shard's blocks. This is the hot
// path: with durability off a warm round performs no allocations (series
// capacity is preallocated; the shard's one BatchContext — or ProbeContext
// in scalar mode — carries the wire scratch). By default the whole shard's
// round crosses the netsim boundary through the batched delivery path;
// Config.ScalarProbe falls back to per-probe delivery, with identical
// results either way (the trinocular equivalence contract).
//
//lint:hotpath: warm-round 0 allocs/op budget pinned by TestWarmRoundAllocations
func (s *shard) probeRound(r int) {
	cfg := &s.m.cfg
	now := cfg.Start.Add(time.Duration(r) * cfg.Period)
	if cfg.ScalarProbe {
		for i, id := range s.blocks {
			mon := s.mons[i]
			obs, err := s.prober.ProbeRoundWith(s.pc, id, now, mon.est.Operational())
			if err != nil {
				// Only possible for an untracked id — a construction
				// invariant violation, surfaced through the supervisor's
				// panic recovery.
				panic(err)
			}
			s.applyObs(mon, &obs, r)
		}
		return
	}
	// Wavefronts run over bounded groups, not the whole shard at once: the
	// batch scratch (lanes, packet arena, reply arena) grows with the
	// largest batch, so capping the group keeps the shard's retained probe
	// scratch O(1) no matter the world size — the same memory bound the
	// scalar path has. Per-block results don't depend on grouping.
	for g := 0; g < len(s.blocks); g += probeBatchGroup {
		e := g + probeBatchGroup
		if e > len(s.blocks) {
			e = len(s.blocks)
		}
		n := e - g
		for i := 0; i < n; i++ {
			s.aOps[i] = s.mons[g+i].est.Operational()
		}
		if err := s.prober.ProbeRoundsBatch(s.bc, s.blocks[g:e], s.aOps[:n], now, s.obsBuf[:n]); err != nil {
			// Shape mismatches and untracked ids are construction invariant
			// violations, surfaced through the supervisor's panic recovery.
			panic(err)
		}
		for i := 0; i < n; i++ {
			s.applyObs(s.mons[g+i], &s.obsBuf[i], r)
		}
	}
}

// applyObs folds one block's round observation into its in-memory
// accumulation — shared by the batched and scalar probe paths so the two
// cannot drift. obs is a pointer only to avoid a per-round struct copy; it
// is read, never mutated.
func (s *shard) applyObs(mon *blockMon, obs *trinocular.RoundObs, r int) {
	cfg := &s.m.cfg
	if obs.Failed() {
		mon.failed++
		mon.short = append(mon.short, lastOr(mon.short, cfg.InitialA))
		mon.lastFailed = true
	} else {
		mon.est.Observe(obs.Positive, obs.Total)
		mon.short = append(mon.short, mon.est.ShortTerm())
		mon.lastFailed = false
	}
	mon.lastEvent = eventNone
	if obs.Changed {
		if obs.Up {
			mon.lastEvent = eventUp
		} else {
			mon.lastEvent = eventDown
		}
		mon.events = append(mon.events, core.OutageEvent{Round: r, Down: !obs.Up})
	}
}

// commitRound appends the round's deltas to the WAL. A crash before this
// append loses the round entirely (it re-executes identically on restart);
// a crash after it makes the round durable. There is no in-between: the
// frame is a single write.
func (s *shard) commitRound(r int) error {
	if s.wal == nil {
		return nil
	}
	s.rec.Round = r
	s.rec.Deltas = s.rec.Deltas[:0]
	for i, id := range s.blocks {
		mon := s.mons[i]
		ps, ok := s.prober.BlockStateOf(id)
		if !ok {
			return fmt.Errorf("monitor: shard %d: block %s lost from prober", s.idx, id)
		}
		s.rec.Deltas = append(s.rec.Deltas, blockDelta{
			Prober: ps,
			Est:    mon.est.State(),
			Short:  mon.short[len(mon.short)-1],
			Event:  mon.lastEvent,
			Failed: mon.lastFailed,
		})
	}
	payload, err := json.Marshal(&s.rec)
	if err != nil {
		return fmt.Errorf("monitor: shard %d commit: %w", s.idx, err)
	}
	return s.wal.append(payload, r)
}

// writeSnapshot persists the shard's cumulative committed state atomically
// and garbage-collects sealed segments the snapshot covers.
func (s *shard) writeSnapshot() error {
	snap := shardSnapshot{
		Shard:  s.idx,
		Round:  s.round,
		Prober: make([]trinocular.BlockState, 0, len(s.blocks)),
		Blocks: make([]blockSnapshot, 0, len(s.blocks)),
	}
	for i, id := range s.blocks {
		ps, ok := s.prober.BlockStateOf(id)
		if !ok {
			return fmt.Errorf("monitor: shard %d: block %s lost from prober", s.idx, id)
		}
		mon := s.mons[i]
		snap.Prober = append(snap.Prober, ps)
		snap.Blocks = append(snap.Blocks, blockSnapshot{
			ID:     id,
			Est:    mon.est.State(),
			Short:  mon.short,
			Events: mon.events,
			Failed: mon.failed,
		})
	}
	data, err := encodeSnapshot(&snap)
	if err != nil {
		return err
	}
	if err := durable.WriteFileAtomic(filepath.Join(s.dir(), "snap.json"), data, 0o644); err != nil {
		return fmt.Errorf("monitor: shard %d snapshot: %w", s.idx, err)
	}
	s.m.met.snapshots.Inc()
	if s.wal != nil {
		s.wal.gc(snap.Round - 1)
	}
	return nil
}

func lastOr(s []float64, def float64) float64 {
	if len(s) == 0 {
		return def
	}
	return s[len(s)-1]
}
