// Package prf is the repository's one canonical seeded pseudorandom
// function: a SplitMix64-based keyed hash over packed integer inputs. All
// simulator randomness (address behaviours, path loss, collection
// artifacts, fault injection) must come from here so that a run is exactly
// reproducible from its seed and so that independent subsystems cannot
// drift apart by re-implementing the mixer with subtly different chaining.
package prf

import "math"

// Mix is the finalizing mixer from the SplitMix64 generator (including the
// golden-ratio increment); it is the primitive every derived draw builds on.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash hashes the seed and parts into a uniform 64-bit value.
func Hash(seed uint64, parts ...uint64) uint64 {
	h := Mix(seed)
	for _, p := range parts {
		h = Mix(h ^ p)
	}
	return h
}

// Float returns a uniform float64 in [0, 1).
func Float(seed uint64, parts ...uint64) float64 {
	return float64(Hash(seed, parts...)>>11) / (1 << 53)
}

// Float2 is Float(seed, a, b) with the Mix chain unrolled: bit-identical
// output without the variadic slice setup and loop, for per-probe draws on
// the delivery hot path. TestFixedArityMatchesVariadic pins the equality.
func Float2(seed, a, b uint64) float64 {
	return float64(Mix(Mix(Mix(seed)^a)^b)>>11) / (1 << 53)
}

// Float3 is Float(seed, a, b, c) unrolled; see Float2.
func Float3(seed, a, b, c uint64) float64 {
	return float64(Mix(Mix(Mix(Mix(seed)^a)^b)^c)>>11) / (1 << 53)
}

// mixRaw is the SplitMix64 finalizer without the golden-ratio increment.
// It exists only to support the legacy chain below; new code uses Mix.
func mixRaw(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// LegacyFloat returns a uniform float64 in [0, 1) using the historical
// chaining of internal/core's collection-artifact draws: the increment is
// applied to the seed only, not per part. The stream is frozen because
// recorded datasets and reports must stay reproducible from their seeds
// (repositioning the ~5% artifact rounds flips borderline classifications).
// New code must use Float.
func LegacyFloat(seed uint64, parts ...uint64) float64 {
	h := mixRaw(seed + 0x9e3779b97f4a7c15)
	for _, p := range parts {
		h = mixRaw(h ^ p)
	}
	return float64(h>>11) / (1 << 53)
}

// Norm returns a standard normal deviate via the Box-Muller transform on
// two independent draws.
func Norm(seed uint64, parts ...uint64) float64 {
	u1 := Float(seed^0x5bf0_3635, parts...)
	u2 := Float(seed^0xc2b2_ae35, parts...)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
