package prf

import (
	"math"
	"testing"
)

// TestKnownAnswers freezes the PRF streams. These constants must never
// change: every simulator draw (behaviours, loss, artifacts, faults) and
// every recorded dataset is reproducible from its seed only while the mixer
// and both chaining rules produce exactly these values. Mix(0)/Mix(1) match
// the reference SplitMix64 sequence seeded with 0.
func TestKnownAnswers(t *testing.T) {
	if got := Mix(0); got != 0xe220a8397b1dcdaf {
		t.Errorf("Mix(0) = %#x", got)
	}
	if got := Mix(1); got != 0x910a2dec89025cc1 {
		t.Errorf("Mix(1) = %#x", got)
	}
	if got := Hash(42, 7, 9); got != 0xec56d7d409cf7398 {
		t.Errorf("Hash(42,7,9) = %#x", got)
	}
	if got := Float(42, 7, 9); got != 0.92320012022702058 {
		t.Errorf("Float(42,7,9) = %.17g", got)
	}
	if got := LegacyFloat(42, 7, 9); got != 0.39248683041846799 {
		t.Errorf("LegacyFloat(42,7,9) = %.17g", got)
	}
	if got := LegacyFloat(1); got != 0.5665615751722809 {
		t.Errorf("LegacyFloat(1) = %.17g", got)
	}
	if got := Norm(42, 7); got != -0.11885889198450857 {
		t.Errorf("Norm(42,7) = %.17g", got)
	}
}

func TestRanges(t *testing.T) {
	for i := uint64(0); i < 2000; i++ {
		if f := Float(i, i*3); f < 0 || f >= 1 {
			t.Fatalf("Float out of [0,1): %g", f)
		}
		if f := LegacyFloat(i, i*3); f < 0 || f >= 1 {
			t.Fatalf("LegacyFloat out of [0,1): %g", f)
		}
		if n := Norm(i); math.IsNaN(n) || math.IsInf(n, 0) {
			t.Fatalf("Norm not finite: %g", n)
		}
	}
}

// TestChainingDiffers documents that the two chains are distinct: collapsing
// them would silently reshuffle the legacy artifact stream.
func TestChainingDiffers(t *testing.T) {
	if Float(42, 7, 9) == LegacyFloat(42, 7, 9) {
		t.Fatal("Float and LegacyFloat agree; legacy chain lost")
	}
}

// TestFixedArityMatchesVariadic pins the unrolled hot-path forms to the
// canonical variadic chain bit for bit, including edge inputs that stress
// the xor-fold (all-zero, all-ones, high bits set).
func TestFixedArityMatchesVariadic(t *testing.T) {
	cases := []uint64{0, 1, 0xffffffffffffffff, 0x9e3779b97f4a7c15, 1 << 63, 0xdeadbeef}
	for _, seed := range cases {
		for _, a := range cases {
			for _, b := range cases {
				if got, want := Float2(seed, a, b), Float(seed, a, b); got != want {
					t.Fatalf("Float2(%#x,%#x,%#x) = %v, want %v", seed, a, b, got, want)
				}
				for _, c := range cases {
					if got, want := Float3(seed, a, b, c), Float(seed, a, b, c); got != want {
						t.Fatalf("Float3(%#x,%#x,%#x,%#x) = %v, want %v", seed, a, b, c, got, want)
					}
				}
			}
		}
	}
}
