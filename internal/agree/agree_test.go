package agree

import (
	"bytes"
	"strings"
	"testing"

	"sleepnet/internal/world"
)

// gateConfig is the sweep the CI `agreement` job gates on: the full default
// scenario × fault-level grid at a population small enough to keep the job
// in tens of seconds but large enough that the agreement fractions are
// stable against single-block flips.
func gateConfig() Config {
	return Config{
		Seed:   42,
		Blocks: 90,
		Days:   5,
	}
}

// TestAgreementContract is the gated accuracy contract: the seeded sweep's
// clean-world agreement with the batch FFT oracle must clear the committed
// thresholds, and every faulted condition must degrade gracefully rather
// than collapse. CI runs this in the `agreement` job (make agree); a
// streaming-classifier change that diverges from the batch oracle fails
// here instead of shipping.
func TestAgreementContract(t *testing.T) {
	rep, err := Run(gateConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Markdown())
	if bad := DefaultContract().Check(rep); len(bad) != 0 {
		t.Fatalf("agreement contract violated:\n  %s", strings.Join(bad, "\n  "))
	}
}

// TestAgreementGoldenDeterminism extends the same-seed byte-identity suite
// to the agreement harness: the confusion-matrix JSON of a small seeded
// sweep must be byte-identical across runs, regardless of worker
// scheduling. This is what makes the committed report an artifact rather
// than a snapshot of one lucky run.
func TestAgreementGoldenDeterminism(t *testing.T) {
	cfg := Config{
		Seed:       7,
		Blocks:     40,
		Days:       3,
		LossRates:  []float64{0.05},
		RateLimits: []int{},
		Scenarios: []Scenario{
			{Name: "clean"},
			{Name: "outage-heavy", World: world.Config{OutagesPerBlockWeek: 0.5}},
		},
		Workers: 4,
	}
	render := func() []byte {
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render()
	b := render()
	if !bytes.Equal(a, b) {
		t.Errorf("agreement reports differ across same-seed runs:\n%s\nvs\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(`"confusion"`)) || !bytes.Contains(a, []byte(`"outage-heavy"`)) {
		t.Fatalf("report missing expected structure:\n%s", a)
	}
}

// TestConfusionDerivedMetrics pins the matrix arithmetic the contract
// depends on against a hand-built matrix.
func TestConfusionDerivedMetrics(t *testing.T) {
	var c Confusion
	// 10 strict/strict, 2 strict/relaxed, 1 strict/non, 1 strict/unknown,
	// 3 relaxed/relaxed, 2 relaxed/non, 20 non/non, 1 non/strict.
	c.M[rowStrict][colStrict] = 10
	c.M[rowStrict][colRelaxed] = 2
	c.M[rowStrict][colNon] = 1
	c.M[rowStrict][colUnknown] = 1
	c.M[rowRelaxed][colRelaxed] = 3
	c.M[rowRelaxed][colNon] = 2
	c.M[rowNon][colNon] = 20
	c.M[rowNon][colStrict] = 1

	if got := c.Total(); got != 40 {
		t.Fatalf("Total = %d, want 40", got)
	}
	if got := c.Decided(); got != 39 {
		t.Fatalf("Decided = %d, want 39", got)
	}
	wantClass := float64(10+3+20) / 39
	if got := c.ClassAgree(); got != wantClass {
		t.Fatalf("ClassAgree = %v, want %v", got, wantClass)
	}
	// either-agree: strict row strict+relaxed (12) + relaxed row
	// strict+relaxed (3) + non/non (20) = 35 of 39 decided.
	wantEither := float64(35) / 39
	if got := c.EitherAgree(); got != wantEither {
		t.Fatalf("EitherAgree = %v, want %v", got, wantEither)
	}
	// strict-agree: strict/strict (10) + relaxed row relaxed+non (5) +
	// non row relaxed+non (20) = 35 of 39 decided (non/strict and the
	// strict row's relaxed+non misses disagree on the strict boundary).
	wantStrict := float64(35) / 39
	if got := c.StrictAgree(); got != wantStrict {
		t.Fatalf("StrictAgree = %v, want %v", got, wantStrict)
	}
	if got := c.UnknownFrac(); got != float64(1)/40 {
		t.Fatalf("UnknownFrac = %v, want 1/40", got)
	}
}

// TestContractFlagsViolations ensures the gate actually fires: a report
// with a collapsed clean condition must produce violations.
func TestContractFlagsViolations(t *testing.T) {
	rep := &Report{Conditions: []Condition{{
		Scenario: "clean", Fault: "fault-free",
		Compared:    50,
		ClassAgree:  0.10,
		StrictAgree: 0.20,
		UnknownFrac: 0.50,
	}}}
	bad := DefaultContract().Check(rep)
	if len(bad) < 3 {
		t.Fatalf("expected >= 3 violations, got %d: %v", len(bad), bad)
	}
	if got := DefaultContract().Check(&Report{}); len(got) != 1 {
		t.Fatalf("empty report should fail with exactly the missing-baseline violation, got %v", got)
	}
}

// TestQuantilesNeverNaN guards the JSON goldenness: empty distributions
// must summarize to zeros, not NaN (which encoding/json rejects).
func TestQuantilesNeverNaN(t *testing.T) {
	q := summarize(nil)
	if q != (Quantiles{}) {
		t.Fatalf("summarize(nil) = %+v, want zero", q)
	}
	q = summarize([]float64{3})
	if q.N != 1 || q.P50 != 3 || q.P90 != 3 || q.Max != 3 {
		t.Fatalf("summarize([3]) = %+v", q)
	}
}
