package agree

// report.go — deterministic serialization of an agreement report. The JSON
// form is the golden artifact: same Config, byte-identical output (struct
// field order is fixed, every float is a pure function of the seeded run,
// and no NaN/Inf can reach the encoder). The markdown form is for humans
// and the experiments CLI.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"sleepnet/internal/report"
)

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return fmt.Errorf("agree: marshal report: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Markdown renders the report: one agreement-summary table over all
// conditions, then each condition's confusion matrix and distributions.
func (r *Report) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "agreement sweep: %d blocks requested per world, %d days, seed %d, classify floor %d rounds\n\n",
		r.Blocks, r.Days, r.Seed, r.MinClassify)

	rows := make([][]string, 0, len(r.Conditions))
	for i := range r.Conditions {
		c := &r.Conditions[i]
		rows = append(rows, []string{
			c.Scenario, c.Fault,
			fmt.Sprint(c.Compared), fmt.Sprint(c.Quarantined),
			report.Pct(c.ClassAgree), report.Pct(c.StrictAgree),
			report.Pct(c.EitherAgree), report.Pct(c.UnknownFrac),
			quantCell(c.SleepDeltaHours, "h"),
			quantCell(c.RoundsToStable, ""),
		})
	}
	sb.WriteString(report.Table([]string{
		"scenario", "faults", "compared", "quar",
		"class agree", "strict agree", "either agree", "unknown",
		"sleep Δ p50/p90", "stable p50/p90",
	}, rows))

	for i := range r.Conditions {
		c := &r.Conditions[i]
		fmt.Fprintf(&sb, "\n%s × %s — confusion (batch oracle rows × streaming cols, %d blocks):\n",
			c.Scenario, c.Fault, c.Compared)
		mrows := make([][]string, numRows)
		for ri := 0; ri < numRows; ri++ {
			mrows[ri] = []string{RowNames[ri]}
			for ci := 0; ci < numCols; ci++ {
				mrows[ri] = append(mrows[ri], fmt.Sprint(c.Confusion.M[ri][ci]))
			}
		}
		sb.WriteString(report.Table(append([]string{"batch \\ stream"}, ColNames[:]...), mrows))
		fmt.Fprintf(&sb, "phase err (rad): %s   sleep Δ (h): %s   rounds-to-stable: %s\n",
			quantFull(c.PhaseErrRad), quantFull(c.SleepDeltaHours), quantFull(c.RoundsToStable))
	}
	return sb.String()
}

// quantCell compresses a Quantiles to "p50/p90" for the summary table.
func quantCell(q Quantiles, unit string) string {
	if q.N == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f/%.2f%s", q.P50, q.P90, unit)
}

// quantFull renders a Quantiles with its sample count.
func quantFull(q Quantiles) string {
	if q.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("p50 %.3f p90 %.3f max %.3f (n=%d)", q.P50, q.P90, q.Max, q.N)
}
