// Package agree is the streaming-vs-batch agreement harness: the validation
// arm for the streaming diurnal classifier that internal/serve answers live
// queries with. It replays identical per-round availability series through
// both detectors — the batch path (dsp FFT over the midnight-trimmed series,
// via core.Pipeline, the golden oracle the paper's results rest on) and the
// streaming path (the incremental 1 c/d + first-harmonic DFT extracted from
// internal/serve as a Replayer) — across world scenarios × fault levels,
// and reports per-condition confusion matrices, phase error distributions,
// sleep-UTC deltas, and rounds-to-stable-classification.
//
// The harness exists so future classifier changes cannot silently diverge
// from the batch oracle: Contract (contract.go) turns the report into a
// pass/fail gate that CI enforces (the `agreement` job).
package agree

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"sleepnet/internal/analysis"
	"sleepnet/internal/core"
	"sleepnet/internal/faults"
	"sleepnet/internal/serve"
	"sleepnet/internal/trinocular"
	"sleepnet/internal/world"
)

// Scenario is one world shape the sweep measures under every fault level.
type Scenario struct {
	// Name labels the scenario in reports ("clean", "lossy-net", ...).
	Name string
	// World configures generation; Blocks and Seed are filled in by the
	// harness so every scenario measures the same population size from a
	// scenario-decorrelated seed.
	World world.Config
}

// DefaultScenarios is the standard world sweep: a clean world, a world with
// elevated per-block path loss (stressing the estimator input), and a world
// with frequent whole-block outages (stressing both detectors with
// availability collapses that are not diurnal).
func DefaultScenarios() []Scenario {
	return []Scenario{
		{Name: "clean"},
		{Name: "lossy-net", World: world.Config{MeanLoss: 0.05}},
		{Name: "outage-heavy", World: world.Config{OutagesPerBlockWeek: 0.5}},
	}
}

// Config controls an agreement run.
type Config struct {
	// Scenarios are the world shapes to sweep (default: DefaultScenarios).
	Scenarios []Scenario
	// LossRates and RateLimits define the fault levels via
	// faults.SweepLevels; the fault-free baseline always runs first.
	// Defaults: loss 2% and 10%; rate limit 4/round.
	LossRates  []float64
	RateLimits []int
	// Blocks is the world size per condition (default 150).
	Blocks int
	// Days of probing per run (default 7).
	Days int
	// Seed drives world generation, measurement, and fault draws.
	Seed uint64
	// Workers bounds per-condition parallelism (default GOMAXPROCS).
	Workers int
	// MinClassifyRounds is the streaming classification floor; 0 selects the
	// engine default (one virtual day of rounds).
	MinClassifyRounds int
	// Retry is the prober's retry policy (default: 3 attempts, matching the
	// fault sweep's resilient configuration).
	Retry trinocular.RetryConfig
	// QuarantineFailedFrac excludes blocks whose failed-round fraction
	// exceeds it, mirroring the study quarantine policy (default 0.25).
	QuarantineFailedFrac float64
}

func (c Config) withDefaults() Config {
	if c.Scenarios == nil {
		c.Scenarios = DefaultScenarios()
	}
	if c.LossRates == nil {
		c.LossRates = []float64{0.02, 0.10}
	}
	if c.RateLimits == nil {
		c.RateLimits = []int{4}
	}
	if c.Blocks == 0 {
		c.Blocks = 150
	}
	if c.Days == 0 {
		c.Days = 7
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry.MaxAttempts = 3
	}
	if c.QuarantineFailedFrac == 0 {
		c.QuarantineFailedFrac = 0.25
	}
	return c
}

// Batch oracle classes index confusion-matrix rows; streaming classes index
// columns. Unknown is a streaming-only outcome (the batch oracle always
// decides).
const (
	rowStrict = iota
	rowRelaxed
	rowNon
	numRows
)
const (
	colStrict = iota
	colRelaxed
	colNon
	colUnknown
	numCols
)

// RowNames and ColNames label the confusion matrix for reports.
var (
	RowNames = [numRows]string{"strict", "relaxed", "non-diurnal"}
	ColNames = [numCols]string{"strict", "relaxed", "non-diurnal", "unknown"}
)

func batchRow(c core.DiurnalClass) int {
	switch c {
	case core.StrictDiurnal:
		return rowStrict
	case core.RelaxedDiurnal:
		return rowRelaxed
	default:
		return rowNon
	}
}

func streamCol(c serve.DiurnalClass) int {
	switch c {
	case serve.ClassStrict:
		return colStrict
	case serve.ClassRelaxed:
		return colRelaxed
	case serve.ClassNonDiurnal:
		return colNon
	default:
		return colUnknown
	}
}

// Confusion is the per-condition agreement matrix: batch oracle class (row)
// × streaming class (column), counted over compared blocks.
type Confusion struct {
	M [numRows][numCols]int `json:"m"`
}

// Add counts one block.
func (c *Confusion) Add(batch core.DiurnalClass, stream serve.DiurnalClass) {
	c.M[batchRow(batch)][streamCol(stream)]++
}

// Total sums all cells.
func (c *Confusion) Total() int {
	n := 0
	for i := range c.M {
		for j := range c.M[i] {
			n += c.M[i][j]
		}
	}
	return n
}

// Decided sums blocks the streaming classifier decided (non-unknown).
func (c *Confusion) Decided() int {
	return c.Total() - c.M[rowStrict][colUnknown] - c.M[rowRelaxed][colUnknown] - c.M[rowNon][colUnknown]
}

// ClassAgree is the exact 3-class agreement over decided blocks.
func (c *Confusion) ClassAgree() float64 {
	d := c.Decided()
	if d == 0 {
		return 0
	}
	return float64(c.M[rowStrict][colStrict]+c.M[rowRelaxed][colRelaxed]+c.M[rowNon][colNon]) / float64(d)
}

// StrictAgree is the strict-vs-not agreement over decided blocks — the
// boundary the paper's headline results rest on, and the one the streaming
// classifier's dominance rule mirrors most directly.
func (c *Confusion) StrictAgree() float64 {
	d := c.Decided()
	if d == 0 {
		return 0
	}
	agree := c.M[rowStrict][colStrict] +
		c.M[rowRelaxed][colRelaxed] + c.M[rowRelaxed][colNon] +
		c.M[rowNon][colRelaxed] + c.M[rowNon][colNon]
	return float64(agree) / float64(d)
}

// EitherAgree is the diurnal-vs-not agreement over decided blocks: strict
// and relaxed collapse to "diurnal" on both axes.
func (c *Confusion) EitherAgree() float64 {
	d := c.Decided()
	if d == 0 {
		return 0
	}
	agree := c.M[rowStrict][colStrict] + c.M[rowStrict][colRelaxed] +
		c.M[rowRelaxed][colStrict] + c.M[rowRelaxed][colRelaxed] +
		c.M[rowNon][colNon]
	return float64(agree) / float64(d)
}

// UnknownFrac is the share of compared blocks the streaming classifier left
// undecided.
func (c *Confusion) UnknownFrac() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(t-c.Decided()) / float64(t)
}

// Quantiles summarizes a per-block distribution. N = 0 means the condition
// produced no samples (all fields zero, never NaN — the report must stay
// JSON-encodable and byte-stable).
type Quantiles struct {
	N   int     `json:"n"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	Max float64 `json:"max"`
}

func summarize(xs []float64) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Quantiles{N: len(s), P50: s[(len(s)-1)/2], P90: s[(len(s)-1)*9/10], Max: s[len(s)-1]}
}

// Condition is one scenario × fault level cell of the sweep.
type Condition struct {
	Scenario string `json:"scenario"`
	Fault    string `json:"fault"`
	// Blocks is the world size; Compared how many entered the matrix
	// (measured, not sparse/failed/quarantined).
	Blocks      int `json:"blocks"`
	Compared    int `json:"compared"`
	Sparse      int `json:"sparse"`
	Errors      int `json:"errors"`
	Quarantined int `json:"quarantined"`

	Confusion Confusion `json:"confusion"`

	// ClassAgree/StrictAgree/EitherAgree/UnknownFrac are derived from the
	// matrix and denormalized for report readability and threshold checks.
	ClassAgree  float64 `json:"class_agree"`
	StrictAgree float64 `json:"strict_agree"`
	EitherAgree float64 `json:"either_agree"`
	UnknownFrac float64 `json:"unknown_frac"`

	// PhaseErrRad is the circular distance between the streaming phase
	// (re-anchored to midnight UTC) and the batch FFT phase, over blocks
	// both detectors call diurnal.
	PhaseErrRad Quantiles `json:"phase_err_rad"`
	// SleepDeltaHours is the circular distance between the two detectors'
	// sleep-UTC hour, over the same blocks.
	SleepDeltaHours Quantiles `json:"sleep_delta_hours"`
	// RoundsToStable is, per decided block, the committed-round count after
	// which the streaming class never changed again.
	RoundsToStable Quantiles `json:"rounds_to_stable"`
}

// Report is the full sweep output.
type Report struct {
	Seed        uint64      `json:"seed"`
	Blocks      int         `json:"blocks"`
	Days        int         `json:"days"`
	MinClassify int         `json:"min_classify_rounds"`
	Conditions  []Condition `json:"conditions"`
}

// Find returns the condition for (scenario, fault), or nil.
func (r *Report) Find(scenario, fault string) *Condition {
	for i := range r.Conditions {
		if r.Conditions[i].Scenario == scenario && r.Conditions[i].Fault == fault {
			return &r.Conditions[i]
		}
	}
	return nil
}

// blockOutcome is one block's replay result inside a condition.
type blockOutcome struct {
	skip        bool
	sparse      bool
	errored     bool
	quarantined bool

	batchClass  core.DiurnalClass
	streamClass serve.DiurnalClass

	bothDiurnal bool
	phaseErrRad float64
	sleepDelta  float64

	decided        bool
	roundsToStable int
}

// Run executes the sweep: every scenario measured under every fault level,
// each block's series replayed through both detectors. Deterministic for a
// given Config regardless of Workers.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Seed: cfg.Seed, Blocks: cfg.Blocks, Days: cfg.Days}
	levels := faults.SweepLevels(cfg.Seed, cfg.LossRates, cfg.RateLimits)
	for si, sc := range cfg.Scenarios {
		wc := sc.World
		wc.Blocks = cfg.Blocks
		// Decorrelate the scenario worlds without making them depend on the
		// scenario list order of the *other* scenarios.
		wc.Seed = cfg.Seed ^ (uint64(si+1) * 0x9e3779b97f4a7c15)
		w, err := world.Generate(wc)
		if err != nil {
			return nil, fmt.Errorf("agree: scenario %s: %w", sc.Name, err)
		}
		for _, lvl := range levels {
			cond, minClassify, err := runCondition(cfg, sc.Name, w, lvl)
			if err != nil {
				return nil, fmt.Errorf("agree: %s/%s: %w", sc.Name, lvl.Label, err)
			}
			rep.MinClassify = minClassify
			rep.Conditions = append(rep.Conditions, cond)
		}
	}
	return rep, nil
}

// runCondition measures one world under one fault level and replays every
// block through both detectors.
func runCondition(cfg Config, scenario string, w *world.World, lvl faults.Level) (Condition, int, error) {
	pcfg := core.PipelineConfig{
		Start:  analysis.DefaultStart,
		Rounds: analysis.RoundsForDays(cfg.Days),
		Seed:   cfg.Seed,
		Prober: trinocular.Config{Retry: cfg.Retry},
	}
	pl := core.NewPipeline(w.Net, pcfg)

	if lvl.Config.Active() {
		fc := lvl.Config
		fc.Epoch = pcfg.Start
		w.Net.SetTap(faults.New(fc))
		defer w.Net.SetTap(nil)
	}

	minClassify := cfg.MinClassifyRounds
	if minClassify <= 0 {
		minClassify = serve.NewBasis(pl.Config().Period).DefaultMinClassify()
	}

	outcomes := make([]blockOutcome, len(w.Blocks))
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for wk := 0; wk < cfg.Workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				outcomes[i] = replayBlock(pl, w.Blocks[i], cfg, minClassify)
			}
		}()
	}
	for i := range w.Blocks {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	cond := Condition{Scenario: scenario, Fault: lvl.Label, Blocks: len(w.Blocks)}
	var phaseErrs, sleepDeltas, stables []float64
	for i := range outcomes {
		o := &outcomes[i]
		switch {
		case o.sparse:
			cond.Sparse++
			continue
		case o.errored:
			cond.Errors++
			continue
		case o.quarantined:
			cond.Quarantined++
			continue
		case o.skip:
			continue
		}
		cond.Compared++
		cond.Confusion.Add(o.batchClass, o.streamClass)
		if o.bothDiurnal {
			phaseErrs = append(phaseErrs, o.phaseErrRad)
			sleepDeltas = append(sleepDeltas, o.sleepDelta)
		}
		if o.decided {
			stables = append(stables, float64(o.roundsToStable))
		}
	}
	cond.ClassAgree = cond.Confusion.ClassAgree()
	cond.StrictAgree = cond.Confusion.StrictAgree()
	cond.EitherAgree = cond.Confusion.EitherAgree()
	cond.UnknownFrac = cond.Confusion.UnknownFrac()
	cond.PhaseErrRad = summarize(phaseErrs)
	cond.SleepDeltaHours = summarize(sleepDeltas)
	cond.RoundsToStable = summarize(stables)
	return cond, minClassify, nil
}

// replayBlock measures one block through the batch pipeline and replays its
// cleaned Âs series through the streaming classifier. Both detectors see
// the identical per-round series; disagreement is therefore attributable to
// the classifiers, not their inputs.
func replayBlock(pl *core.Pipeline, info *world.BlockInfo, cfg Config, minClassify int) blockOutcome {
	var o blockOutcome
	run, err := pl.RunBlock(info.ID)
	if err != nil {
		if isSparse(err) {
			o.sparse = true
		} else {
			o.errored = true
		}
		return o
	}
	rounds := pl.Config().Rounds
	if rounds > 0 && float64(run.FailedRounds)/float64(rounds) > cfg.QuarantineFailedFrac {
		// The study layer would quarantine this block; its classification is
		// unreliable on both paths, so it does not enter the matrix.
		o.quarantined = true
		return o
	}

	// Batch oracle: FFT classification of the midnight-trimmed series, the
	// exact result the paper's pipeline commits.
	o.batchClass = run.Result.Class

	// Streaming path: replay the same cleaned series round by round, the
	// way the monitor would publish it into the serve engine, tracking when
	// the class last changed.
	rp := serve.NewReplayer(pl.Config().Start, pl.Config().Period, minClassify)
	cur := serve.ClassUnknown
	lastChange := 0
	for r, v := range run.Short.Values {
		rp.Push(v)
		if c, _ := rp.Classify(); c != cur {
			cur = c
			lastChange = r
		}
	}
	o.streamClass = cur
	if cur != serve.ClassUnknown {
		o.decided = true
		o.roundsToStable = lastChange + 1
	}

	if run.Result.Class.IsDiurnal() && (cur == serve.ClassStrict || cur == serve.ClassRelaxed) {
		o.bothDiurnal = true
		_, streamPhase := rp.Classify()
		// The batch phase is anchored at midnight UTC (the trim); the
		// streaming phase at the campaign start. Re-anchor the streaming
		// phase to midnight before comparing angles.
		startHour := startOfDayHourUTC(pl.Config().Start)
		streamAtMidnight := streamPhase - 2*math.Pi*startHour/24
		o.phaseErrRad = circDistRad(streamAtMidnight, run.Result.Phase)

		batchPeak := analysis.UTCPeakHour(run.Result.Phase)
		batchSleep := math.Mod(batchPeak+12, 24)
		_, streamSleep := rp.PeakSleepUTC()
		o.sleepDelta = circDistHours(batchSleep, streamSleep)
	}
	return o
}

// isSparse reports whether err is the prober's too-sparse refusal.
func isSparse(err error) bool { return errors.Is(err, trinocular.ErrTooSparse) }

// circDistRad is the circular distance between two angles, in [0, π].
func circDistRad(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 2*math.Pi)
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// circDistHours is the circular distance between two times of day, in
// [0, 12].
func circDistHours(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 24)
	if d > 12 {
		d = 24 - d
	}
	return d
}

// startOfDayHourUTC is the start's UTC time-of-day in hours.
func startOfDayHourUTC(t time.Time) float64 {
	u := t.UTC()
	return float64(u.Hour()) + float64(u.Minute())/60 + float64(u.Second())/3600
}
