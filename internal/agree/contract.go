package agree

// contract.go — the quantitative acceptance contract over an agreement
// report. DefaultContract's thresholds are the committed floor CI enforces
// (the `agreement` job runs TestAgreementContract): a classifier change
// that drops clean-world agreement with the batch FFT oracle below them
// fails the build instead of silently shipping a divergent live detector.
//
// Threshold rationale (see DESIGN.md §14): the streaming classifier tracks
// only the diurnal bin and its first harmonic, so it cannot reproduce the
// batch *relaxed* rule — a full-spectrum rank test with no amplitude floor
// that fires whenever the spectrum's peak happens to land at the
// fundamental among red-noise neighbors the stream does not observe. The
// strict boundary, by contrast, is a dominance test both detectors express
// in their own observables and agree on almost perfectly. The contract
// therefore holds the strict boundary to a near-unity floor, phase/sleep
// deltas to a tight bound, and the exact 3-class agreement to a calibrated
// floor that detects collapse rather than demanding the unreachable.

import "fmt"

// Contract is the set of thresholds a report must clear.
type Contract struct {
	// Clean-world (scenario "clean", fault-free) floors.
	//
	// MinCleanStrictAgree is the headline gate: agreement on the
	// strict-vs-not boundary, the class the paper's results rest on.
	MinCleanStrictAgree float64 `json:"min_clean_strict_agree"`
	// MinCleanClassAgree floors the exact 3-class agreement; it is set
	// beneath the structural ceiling the relaxed divergence imposes and
	// exists to catch collapse (a classifier that stops deciding anything
	// correctly), not to demand spectrum-rank reproduction.
	MinCleanClassAgree  float64 `json:"min_clean_class_agree"`
	MaxCleanUnknownFrac float64 `json:"max_clean_unknown_frac"`
	// MaxCleanSleepDeltaP90H bounds the p90 circular distance between the
	// two detectors' sleep-UTC hour on clean worlds, in hours.
	MaxCleanSleepDeltaP90H float64 `json:"max_clean_sleep_delta_p90_h"`

	// Every-condition floors: graceful degradation under faults and across
	// scenarios, not collapse.
	MinAnyStrictAgree float64 `json:"min_any_strict_agree"`
	MinAnyClassAgree  float64 `json:"min_any_class_agree"`
	// MaxAnyUnknownFrac bounds undecided blocks everywhere: the classify
	// floor is one virtual day, campaigns run much longer, so a compared
	// (non-quarantined) block must decide.
	MaxAnyUnknownFrac float64 `json:"max_any_unknown_frac"`
	// MinCompared guards against a sweep that silently measured nothing.
	MinCompared int `json:"min_compared"`
}

// DefaultContract is the committed gate.
func DefaultContract() Contract {
	return Contract{
		MinCleanStrictAgree:    0.97,
		MinCleanClassAgree:     0.55,
		MaxCleanUnknownFrac:    0.02,
		MaxCleanSleepDeltaP90H: 0.5,
		MinAnyStrictAgree:      0.93,
		MinAnyClassAgree:       0.50,
		MaxAnyUnknownFrac:      0.05,
		MinCompared:            20,
	}
}

// Check evaluates the report against the contract and returns one message
// per violation (empty = pass). The clean baseline condition must exist.
func (c Contract) Check(r *Report) []string {
	var bad []string
	clean := r.Find("clean", "fault-free")
	if clean == nil {
		return []string{"report has no clean/fault-free condition"}
	}
	if clean.StrictAgree < c.MinCleanStrictAgree {
		bad = append(bad, fmt.Sprintf("clean strict agreement %.4f < %.4f",
			clean.StrictAgree, c.MinCleanStrictAgree))
	}
	if clean.ClassAgree < c.MinCleanClassAgree {
		bad = append(bad, fmt.Sprintf("clean class agreement %.4f < %.4f",
			clean.ClassAgree, c.MinCleanClassAgree))
	}
	if clean.UnknownFrac > c.MaxCleanUnknownFrac {
		bad = append(bad, fmt.Sprintf("clean unknown fraction %.4f > %.4f",
			clean.UnknownFrac, c.MaxCleanUnknownFrac))
	}
	if clean.SleepDeltaHours.N > 0 && clean.SleepDeltaHours.P90 > c.MaxCleanSleepDeltaP90H {
		bad = append(bad, fmt.Sprintf("clean sleep-UTC delta p90 %.3fh > %.3fh",
			clean.SleepDeltaHours.P90, c.MaxCleanSleepDeltaP90H))
	}
	for i := range r.Conditions {
		cond := &r.Conditions[i]
		tag := cond.Scenario + "/" + cond.Fault
		if cond.Compared < c.MinCompared {
			bad = append(bad, fmt.Sprintf("%s compared %d < %d blocks",
				tag, cond.Compared, c.MinCompared))
			continue
		}
		if cond.StrictAgree < c.MinAnyStrictAgree {
			bad = append(bad, fmt.Sprintf("%s strict agreement %.4f < %.4f",
				tag, cond.StrictAgree, c.MinAnyStrictAgree))
		}
		if cond.ClassAgree < c.MinAnyClassAgree {
			bad = append(bad, fmt.Sprintf("%s class agreement %.4f < %.4f",
				tag, cond.ClassAgree, c.MinAnyClassAgree))
		}
		if cond.UnknownFrac > c.MaxAnyUnknownFrac {
			bad = append(bad, fmt.Sprintf("%s unknown fraction %.4f > %.4f",
				tag, cond.UnknownFrac, c.MaxAnyUnknownFrac))
		}
	}
	return bad
}
