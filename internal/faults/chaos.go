package faults

// chaos.go — process-level faults for the monitor's crash harness. Where
// faults.Injector perturbs the wire, a ChaosPlan perturbs the *process*:
// kill a shard mid-round (panic between probing and commit), wedge a shard
// so only the watchdog can recover it, or damage a WAL tail the way a
// power cut does. Schedules are deterministic — (shard, round) pairs — and
// each event fires on the first attempt only, so a crash-recovered replay
// of the same round does not re-trigger its own killer.

import (
	"fmt"
	"os"
	"sync"
)

// ShardRound schedules one chaos event: when the given shard reaches the
// given round.
type ShardRound struct {
	Shard int
	Round int
}

// ChaosPlan is a deterministic schedule of process-level faults. The zero
// value (and a nil plan) injects nothing. Safe for concurrent use.
type ChaosPlan struct {
	// Kills panics the shard after it has probed the scheduled round but
	// before the round commits — the worst in-process crash point: all of
	// the round's work is lost and must be deterministically re-executed.
	Kills []ShardRound
	// Stalls wedge the shard at the start of the scheduled round until its
	// supervisor aborts it (the watchdog path). A stalled shard ignores
	// everything except abort/shutdown.
	Stalls []ShardRound
	// HardStalls wedge the shard beyond the reach of abort: only monitor
	// shutdown releases it. This is the hard-wedge case that must escalate
	// to monitor-fatal.
	HardStalls []ShardRound

	mu    sync.Mutex
	fired map[ShardRound]int
}

// fire reports whether the event at (shard, round) is scheduled in table
// and has not fired yet, marking it fired. The table index disambiguates
// the three schedules sharing one fired map.
func (p *ChaosPlan) fire(table []ShardRound, tag int, shard, round int) bool {
	if p == nil || len(table) == 0 {
		return false
	}
	key := ShardRound{Shard: shard, Round: round}
	found := false
	for _, e := range table {
		if e == key {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fired == nil {
		p.fired = make(map[ShardRound]int)
	}
	if p.fired[key]&(1<<tag) != 0 {
		return false
	}
	p.fired[key] |= 1 << tag
	return true
}

// ShouldKill reports (once) that the shard must crash after probing round.
func (p *ChaosPlan) ShouldKill(shard, round int) bool { return p.fire(p.kills(), 0, shard, round) }

// ShouldStall reports (once) that the shard must wedge at round start.
func (p *ChaosPlan) ShouldStall(shard, round int) bool { return p.fire(p.stalls(), 1, shard, round) }

// ShouldHardStall reports (once) that the shard must wedge beyond abort.
func (p *ChaosPlan) ShouldHardStall(shard, round int) bool {
	return p.fire(p.hardStalls(), 2, shard, round)
}

func (p *ChaosPlan) kills() []ShardRound {
	if p == nil {
		return nil
	}
	return p.Kills
}

func (p *ChaosPlan) stalls() []ShardRound {
	if p == nil {
		return nil
	}
	return p.Stalls
}

func (p *ChaosPlan) hardStalls() []ShardRound {
	if p == nil {
		return nil
	}
	return p.HardStalls
}

// Fired reports how many scheduled events have fired so far.
func (p *ChaosPlan) Fired() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, bits := range p.fired {
		for b := bits; b != 0; b >>= 1 {
			n += int(b & 1)
		}
	}
	return n
}

// CorruptFileTail flips one bit in each of the last n bytes of the file —
// the signature of a torn write or media damage at the end of a log. The
// flips are deterministic (bit i%8 of each byte), so a chaos run is exactly
// reproducible. Files shorter than n are corrupted over their whole length.
func CorruptFileTail(path string, n int) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("faults: corrupt tail: %w", err)
	}
	defer func() { _ = f.Close() }() // read-modify-write already synced below
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("faults: corrupt tail: %w", err)
	}
	size := info.Size()
	if size == 0 {
		return nil
	}
	if int64(n) > size {
		n = int(size)
	}
	buf := make([]byte, n)
	off := size - int64(n)
	if _, err := f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("faults: corrupt tail: %w", err)
	}
	for i := range buf {
		buf[i] ^= 1 << (i % 8)
	}
	if _, err := f.WriteAt(buf, off); err != nil {
		return fmt.Errorf("faults: corrupt tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("faults: corrupt tail: %w", err)
	}
	return nil
}

// TruncateFileTail removes the last n bytes of the file — the torn-write
// shape where the tail never reached the disk at all.
func TruncateFileTail(path string, n int) error {
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("faults: truncate tail: %w", err)
	}
	size := info.Size() - int64(n)
	if size < 0 {
		size = 0
	}
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("faults: truncate tail: %w", err)
	}
	return nil
}
