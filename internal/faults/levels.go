package faults

import "fmt"

// Level is one named fault intensity in a sweep plan: a label for reports
// and the injector configuration that realizes it.
type Level struct {
	// Label names the fault configuration ("fault-free", "loss=2%",
	// "ratelimit=4/round").
	Label string
	// Config is the injector configuration; the zero Config is fault-free.
	Config Config
}

// SweepLevels builds the canonical fault-sweep plan shared by the
// fault-robustness sweep (analysis.FaultSweep) and the streaming-vs-batch
// agreement harness (internal/agree): the fault-free baseline first, then
// one level per positive loss rate, then one per positive rate-limit cap.
// Non-positive entries are skipped, so callers can pass sweeps with
// explicit zeros. All levels draw from seed^0xfa17, decorrelating fault
// fates from the simulation's own randomness while keeping a given level
// reproducible across harnesses.
func SweepLevels(seed uint64, lossRates []float64, rateLimits []int) []Level {
	levels := []Level{{Label: "fault-free"}}
	for _, lr := range lossRates {
		if lr <= 0 {
			continue
		}
		levels = append(levels, Level{
			Label:  fmt.Sprintf("loss=%g%%", lr*100),
			Config: Config{Seed: seed ^ 0xfa17, LossRate: lr},
		})
	}
	for _, rl := range rateLimits {
		if rl <= 0 {
			continue
		}
		levels = append(levels, Level{
			Label:  fmt.Sprintf("ratelimit=%d/round", rl),
			Config: Config{Seed: seed ^ 0xfa17, RateLimitPerRound: rl},
		})
	}
	return levels
}
