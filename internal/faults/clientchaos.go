package faults

// clientchaos.go — hostile HTTP clients for the serving layer's overload
// harness. Where chaos.go attacks the monitor process and faults.go attacks
// the wire, these attack the *front door*: slow-loris connections that
// dribble half a request forever, connection churn, request floods, and
// oversized/malformed queries. They are load generators, not simulations —
// they open real sockets against a real listener — so their timing is
// wall-clock by nature; what stays deterministic is the request *content*,
// drawn from internal/prf off the attack seed.
//
// Every attacker respects its context: cancel it and the goroutines drain.
// Counters are collected with atomics and read after Wait returns.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sleepnet/internal/prf"
)

// AttackStats counts what one attack saw. All fields are totals across the
// attack's workers.
type AttackStats struct {
	// Requests is the number of request attempts (or connections, for the
	// connection-level attacks).
	Requests int64
	// OK counts 2xx responses.
	OK int64
	// Shed counts explicit 429/503 responses.
	Shed int64
	// Rejected counts 4xx responses (the malformed attack wants these).
	Rejected int64
	// Dropped counts dial failures, resets, and timeouts — connections the
	// server refused or cut, which is the *correct* response to abuse.
	Dropped int64
}

// attackCounters is the atomic accumulation form of AttackStats.
type attackCounters struct {
	requests, ok, shed, rejected, dropped atomic.Int64
}

func (c *attackCounters) stats() AttackStats {
	return AttackStats{
		Requests: c.requests.Load(),
		OK:       c.ok.Load(),
		Shed:     c.shed.Load(),
		Rejected: c.rejected.Load(),
		Dropped:  c.dropped.Load(),
	}
}

func (c *attackCounters) note(status int) {
	switch {
	case status >= 200 && status < 300:
		c.ok.Add(1)
	case status == 429 || status == 503:
		c.shed.Add(1)
	case status >= 400 && status < 500:
		c.rejected.Add(1)
	default:
		c.dropped.Add(1)
	}
}

// SlowLoris holds conns connections open against addr, dribbling one header
// byte per interval and never finishing the request, until ctx is
// cancelled. A hardened server cuts each connection (read-header timeout or
// byte budget); an unhardened one leaks a goroutine and a socket per conn.
// Returns how many connections the server terminated.
func SlowLoris(ctx context.Context, addr string, conns int, interval time.Duration) int64 {
	var terminated atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d := net.Dialer{Timeout: time.Second}
			c, err := d.DialContext(ctx, "tcp", addr)
			if err != nil {
				terminated.Add(1)
				return
			}
			defer c.Close()
			// A valid prefix, then an endless dribble of header bytes.
			req := fmt.Sprintf("GET /v1/block/10.0.%d HTTP/1.1\r\nHost: sleepnet\r\nX-Dribble: ", id%256)
			for j := 0; ; j++ {
				var b byte
				if j < len(req) {
					b = req[j]
				} else {
					b = byte('a' + prf.Hash(0x51047, uint64(id), uint64(j))%26)
				}
				if _, err := c.Write([]byte{b}); err != nil {
					terminated.Add(1)
					return
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(interval):
				}
			}
		}(i)
	}
	wg.Wait()
	return terminated.Load()
}

// ConnChurn opens and immediately abandons connections against addr as fast
// as workers allow until ctx is cancelled — the accept-queue churn attack.
// Returns the number of connections cycled.
func ConnChurn(ctx context.Context, addr string, workers int) int64 {
	var cycled atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := net.Dialer{Timeout: 250 * time.Millisecond}
			for ctx.Err() == nil {
				c, err := d.DialContext(ctx, "tcp", addr)
				if err != nil {
					continue
				}
				_ = c.Close()
				cycled.Add(1)
			}
		}()
	}
	wg.Wait()
	return cycled.Load()
}

// FloodConfig shapes a request flood.
type FloodConfig struct {
	// Addr is the host:port under attack.
	Addr string
	// Workers is the number of concurrent clients.
	Workers int
	// Seed drives the deterministic request mix.
	Seed uint64
	// Paths is the request mix, drawn uniformly by PRF. Default: a mix of
	// block lookups, listings, and summaries.
	Paths []string
	// OnLatency, when set, receives each successful request's latency —
	// the chaos harness uses it to bound p99 under shedding.
	OnLatency func(time.Duration)
}

// Flood hammers addr with well-formed queries from Workers concurrent
// clients until ctx is cancelled. Every response must be a complete HTTP
// response; bodies are drained and discarded. Returns totals.
func Flood(ctx context.Context, cfg FloodConfig) AttackStats {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if len(cfg.Paths) == 0 {
		cfg.Paths = []string{
			"/v1/block/10.0.1", "/v1/block/10.0.2", "/v1/block/99.99.99",
			"/v1/blocks?limit=50", "/v1/blocks?down=true&limit=20",
			"/v1/summary", "/v1/status",
		}
	}
	var ctr attackCounters
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := &http.Client{
				Timeout: 5 * time.Second,
				Transport: &http.Transport{
					MaxIdleConnsPerHost: 4,
				},
			}
			defer client.CloseIdleConnections()
			for i := 0; ctx.Err() == nil; i++ {
				path := cfg.Paths[prf.Hash(cfg.Seed, uint64(id), uint64(i))%uint64(len(cfg.Paths))]
				req, err := http.NewRequestWithContext(ctx, "GET", "http://"+cfg.Addr+path, nil)
				if err != nil {
					ctr.dropped.Add(1)
					continue
				}
				ctr.requests.Add(1)
				//lint:allow nowallclock: client-side latency measurement of a real socket; never persisted
				start := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					ctr.dropped.Add(1)
					continue
				}
				_, copyErr := io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if copyErr != nil {
					ctr.dropped.Add(1)
					continue
				}
				if resp.StatusCode < 300 && cfg.OnLatency != nil {
					//lint:allow nowallclock: client-side latency measurement of a real socket; never persisted
					cfg.OnLatency(time.Since(start))
				}
				ctr.note(resp.StatusCode)
			}
		}(w)
	}
	wg.Wait()
	return ctr.stats()
}

// Malformed throws protocol garbage at addr until ctx is cancelled:
// oversized URLs, bad octets, negative limits, header-injection shapes, and
// raw non-HTTP bytes. Every attempt must end in an explicit 4xx/shed
// response or a dropped connection — anything 2xx is a parser hole. Returns
// totals; the caller asserts OK == 0.
func Malformed(ctx context.Context, addr string, workers int, seed uint64) AttackStats {
	if workers <= 0 {
		workers = 2
	}
	longPath := "/v1/block/" + strings.Repeat("1.", 200)
	attacks := []string{
		"GET /v1/block/300.1.1 HTTP/1.1\r\nHost: x\r\n\r\n",
		"GET /v1/block/../../etc/passwd HTTP/1.1\r\nHost: x\r\n\r\n",
		"GET /v1/blocks?limit=-1 HTTP/1.1\r\nHost: x\r\n\r\n",
		"GET /v1/blocks?limit=99999999999999999999 HTTP/1.1\r\nHost: x\r\n\r\n",
		"GET /v1/blocks?" + strings.Repeat("a=b&", 200) + " HTTP/1.1\r\nHost: x\r\n\r\n",
		"GET " + longPath + " HTTP/1.1\r\nHost: x\r\n\r\n",
		"POST /v1/summary HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nboom",
		"\x00\x01\x02\x03 not http at all\r\n\r\n",
		"GET /v1/status HTTP/9.9\r\nHost: x\r\n\r\n",
	}
	var ctr attackCounters
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			d := net.Dialer{Timeout: time.Second}
			for i := 0; ctx.Err() == nil; i++ {
				raw := attacks[prf.Hash(seed, uint64(id), uint64(i))%uint64(len(attacks))]
				c, err := d.DialContext(ctx, "tcp", addr)
				if err != nil {
					ctr.dropped.Add(1)
					continue
				}
				ctr.requests.Add(1)
				_ = c.SetDeadline(deadlineIn(2 * time.Second))
				if _, err := c.Write([]byte(raw)); err != nil {
					ctr.dropped.Add(1)
					_ = c.Close()
					continue
				}
				status, err := readStatus(c)
				if err != nil {
					ctr.dropped.Add(1) // server cut the connection: acceptable
				} else {
					ctr.note(status)
				}
				_ = c.Close()
			}
		}(w)
	}
	wg.Wait()
	return ctr.stats()
}

// deadlineIn converts a timeout into an absolute socket deadline.
func deadlineIn(d time.Duration) time.Time {
	//lint:allow nowallclock: socket deadline for a real connection; never persisted
	return time.Now().Add(d)
}

// readStatus reads just enough of an HTTP/1.x response to extract the
// status code.
func readStatus(c net.Conn) (int, error) {
	buf := make([]byte, 64)
	n, err := io.ReadAtLeast(c, buf, 12) // "HTTP/1.1 NNN"
	if err != nil {
		return 0, err
	}
	line := string(buf[:n])
	if !strings.HasPrefix(line, "HTTP/1.") || len(line) < 12 {
		return 0, fmt.Errorf("not an http response: %q", line)
	}
	status := 0
	for _, ch := range line[9:12] {
		if ch < '0' || ch > '9' {
			return 0, fmt.Errorf("bad status line: %q", line)
		}
		status = status*10 + int(ch-'0')
	}
	return status, nil
}
