package faults

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"sleepnet/internal/icmp"
	"sleepnet/internal/ipv4"
	"sleepnet/internal/netsim"
)

var epoch = time.Date(2013, time.April, 24, 0, 0, 0, 0, time.UTC)

func addr(host byte) netsim.Addr {
	return netsim.Addr{Block: netsim.MakeBlockID(10, 1, 1), Host: host}
}

func TestZeroValueIsNoOp(t *testing.T) {
	var in Injector
	now := epoch
	for i := 0; i < 100; i++ {
		ts, v := in.Outbound(addr(byte(i)), now)
		if v != netsim.TapDeliver {
			t.Fatalf("zero injector verdict = %v, want deliver", v)
		}
		if !ts.Equal(now) {
			t.Fatalf("zero injector skewed time: %v != %v", ts, now)
		}
		reply := []byte{1, 2, 3}
		if got := in.Inbound(addr(byte(i)), reply, now); &got[0] != &reply[0] {
			t.Fatal("zero injector copied the reply")
		}
		now = now.Add(time.Second)
	}
	if in.Totals().Any() {
		t.Fatalf("zero injector injected faults: %v", in.Totals())
	}
	if (Config{}).Active() {
		t.Fatal("zero config reports active")
	}
}

func TestDeterministicAndLossRate(t *testing.T) {
	cfg := Config{Seed: 7, LossRate: 0.2}
	a, b := New(cfg), New(cfg)
	drops := 0
	const n = 5000
	for i := 0; i < n; i++ {
		now := epoch.Add(time.Duration(i) * time.Second)
		_, va := a.Outbound(addr(byte(i)), now)
		_, vb := b.Outbound(addr(byte(i)), now)
		if va != vb {
			t.Fatalf("draw %d: verdicts diverge (%v vs %v)", i, va, vb)
		}
		if va == netsim.TapDrop {
			drops++
		}
	}
	frac := float64(drops) / n
	if frac < 0.17 || frac > 0.23 {
		t.Fatalf("loss fraction %.3f, want ~0.2", frac)
	}
	if got := a.Totals().Dropped; got != int64(drops) {
		t.Fatalf("Totals().Dropped = %d, want %d", got, drops)
	}
}

func TestRateLimitWindow(t *testing.T) {
	in := New(Config{Seed: 1, RateLimitPerRound: 3})
	now := epoch
	var limited int
	for i := 0; i < 10; i++ {
		if _, v := in.Outbound(addr(1), now.Add(time.Duration(i)*time.Second)); v == netsim.TapAdminProhibited {
			limited++
		}
	}
	if limited != 7 {
		t.Fatalf("limited %d of 10 probes, want 7 (cap 3)", limited)
	}
	// A fresh window resets the count.
	later := now.Add(2 * 660 * time.Second)
	if _, v := in.Outbound(addr(1), later); v != netsim.TapDeliver {
		t.Fatalf("first probe of new window got %v, want deliver", v)
	}
	// Other blocks are counted independently.
	other := netsim.Addr{Block: netsim.MakeBlockID(10, 2, 2), Host: 1}
	if _, v := in.Outbound(other, now); v != netsim.TapDeliver {
		t.Fatalf("other block rate limited immediately: %v", v)
	}
	if got := in.BlockStats(addr(1).Block).RateLimited; got != 7 {
		t.Fatalf("BlockStats rate limited = %d, want 7", got)
	}
}

func TestBlackouts(t *testing.T) {
	in := New(Config{
		Seed:          3,
		BlackoutEvery: time.Hour,
		BlackoutFor:   10 * time.Minute,
		Epoch:         epoch,
	})
	if _, v := in.Outbound(addr(1), epoch.Add(5*time.Minute)); v != netsim.TapSendError {
		t.Fatalf("inside blackout window: %v, want send error", v)
	}
	if _, v := in.Outbound(addr(1), epoch.Add(30*time.Minute)); v != netsim.TapDeliver {
		t.Fatalf("outside blackout window: %v, want deliver", v)
	}
	if _, v := in.Outbound(addr(1), epoch.Add(time.Hour+2*time.Minute)); v != netsim.TapSendError {
		t.Fatalf("inside second blackout: %v, want send error", v)
	}
	// Explicit windows work without a periodic schedule.
	in2 := New(Config{Blackouts: []netsim.Interval{{Start: epoch, End: epoch.Add(time.Minute)}}})
	if _, v := in2.Outbound(addr(1), epoch.Add(30*time.Second)); v != netsim.TapSendError {
		t.Fatalf("explicit blackout: %v, want send error", v)
	}
}

func TestClockSkewAndDrift(t *testing.T) {
	in := New(Config{
		ClockSkew:        5 * time.Second,
		ClockDriftPerDay: 2 * time.Second,
		Epoch:            epoch,
	})
	now := epoch.Add(36 * time.Hour) // 1.5 days -> drift 3s
	ts, v := in.Outbound(addr(1), now)
	if v != netsim.TapDeliver {
		t.Fatalf("verdict %v, want deliver", v)
	}
	want := now.Add(5*time.Second + 3*time.Second)
	if !ts.Equal(want) {
		t.Fatalf("skewed time %v, want %v", ts, want)
	}
}

// TestCorruptionBreaksParsing feeds valid echo replies through the corruptor
// and requires every corrupted reply to fail validation — corruption must
// never silently yield a different valid message.
func TestCorruptionBreaksParsing(t *testing.T) {
	in := New(Config{Seed: 9, CorruptRate: 1})
	sawErr := map[string]bool{}
	for i := 0; i < 300; i++ {
		reply, err := (&icmp.Echo{Reply: true, ID: 7, Seq: uint16(i), Payload: []byte("ping")}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		now := epoch.Add(time.Duration(i) * time.Second)
		got := in.Inbound(addr(byte(i)), reply, now)
		if _, perr := icmp.ParseEcho(got); perr != nil {
			switch {
			case errors.Is(perr, icmp.ErrTruncated):
				sawErr["truncated"] = true
			case errors.Is(perr, icmp.ErrChecksum):
				sawErr["checksum"] = true
			case errors.Is(perr, icmp.ErrPayloadSize):
				sawErr["payload"] = true
			default:
				sawErr["other"] = true
			}
		} else {
			t.Fatalf("draw %d: corrupted reply parsed cleanly", i)
		}
	}
	for _, kind := range []string{"truncated", "checksum", "payload"} {
		if !sawErr[kind] {
			t.Fatalf("corruption never produced a %s error (saw %v)", kind, sawErr)
		}
	}
	if got := in.Totals().Corrupted; got != 300 {
		t.Fatalf("Corrupted = %d, want 300", got)
	}
}

// TestNetworkIntegration attaches an injector to a real simulated network
// and checks the verdicts surface as the right Response shapes.
func TestNetworkIntegration(t *testing.T) {
	net := netsim.NewNetwork(42)
	blk := &netsim.Block{ID: netsim.MakeBlockID(10, 1, 1), Seed: 5}
	for h := 0; h < 30; h++ {
		blk.Behaviors[h] = netsim.AlwaysOn{}
	}
	net.AddBlock(blk)
	probeOnce := func(seq uint16, now time.Time) netsim.Response {
		pkt, err := (&icmp.Echo{ID: 9, Seq: seq}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return net.Probe(netsim.Addr{Block: blk.ID, Host: 3}, pkt, now)
	}

	// Total loss: every probe times out without SendFailed.
	net.SetTap(New(Config{LossRate: 1}))
	r := probeOnce(1, epoch)
	if !r.Timeout || r.SendFailed {
		t.Fatalf("loss: got %+v, want plain timeout", r)
	}

	// Blackout: SendFailed set, so the prober can tell it apart.
	net.SetTap(New(Config{Blackouts: []netsim.Interval{{Start: epoch, End: epoch.Add(time.Hour)}}}))
	r = probeOnce(2, epoch.Add(time.Minute))
	if !r.SendFailed {
		t.Fatalf("blackout: got %+v, want SendFailed", r)
	}

	// Rate limit of zero probes per window answers everything with
	// admin-prohibited unreachables quoting our probe.
	net.SetTap(New(Config{RateLimitPerRound: 1}))
	probeOnce(3, epoch) // consumes the window's allowance
	r = probeOnce(4, epoch.Add(time.Second))
	if r.Timeout || r.Data == nil {
		t.Fatalf("rate limit: got %+v, want a reply", r)
	}
	un, err := icmp.ParseUnreachable(r.Data)
	if err != nil {
		t.Fatalf("rate limit reply did not parse: %v", err)
	}
	if un.Code != icmp.CodeAdminProhibited {
		t.Fatalf("rate limit code = %d, want %d", un.Code, icmp.CodeAdminProhibited)
	}
	orig, err := icmp.ParseEcho(un.Original)
	if err != nil || orig.Seq != 4 {
		t.Fatalf("quoted original wrong: %v %+v", err, orig)
	}

	// Removing the tap restores clean delivery.
	net.SetTap(nil)
	r = probeOnce(5, epoch)
	if r.Timeout {
		t.Fatalf("untapped probe timed out: %+v", r)
	}
}

// TestOutboundBatchMatchesSequential pins the TapBatch contract on the
// injector directly: one OutboundBatch call must fill exactly what
// sequential Outbound calls return, in slice order, including the
// stateful per-block rate-limit decisions.
func TestOutboundBatchMatchesSequential(t *testing.T) {
	cfg := Config{
		Seed: 11, LossRate: 0.2, RateLimitPerRound: 3,
		RateLimitWindow: 660 * time.Second,
		ClockSkew:       150 * time.Millisecond,
		BlackoutEvery:   30 * time.Minute, BlackoutFor: 2 * time.Minute,
		Epoch: epoch,
	}
	seq, bat := New(cfg), New(cfg)
	var dsts []netsim.Addr
	for i := 0; i < 120; i++ {
		dsts = append(dsts, netsim.Addr{Block: netsim.MakeBlockID(10, 1, byte(i%4)), Host: byte(i)})
	}
	times := make([]time.Time, len(dsts))
	verdicts := make([]netsim.TapVerdict, len(dsts))
	for round := 0; round < 12; round++ {
		now := epoch.Add(time.Duration(round) * 5 * time.Minute)
		bat.OutboundBatch(dsts, now, times, verdicts)
		for i, dst := range dsts {
			wt, wv := seq.Outbound(dst, now)
			if !times[i].Equal(wt) || verdicts[i] != wv {
				t.Fatalf("round %d probe %d: batch (%v,%v) != sequential (%v,%v)",
					round, i, times[i], verdicts[i], wt, wv)
			}
		}
	}
	if st, bt := seq.Totals(), bat.Totals(); st != bt {
		t.Fatalf("stats diverged: sequential %v, batch %v", st, bt)
	}
}

// TestInjectorBatchDeliveryEquivalence runs the real injector under
// netsim.DeliverBatch vs the scalar path: byte-identical responses and
// identical fault accounting.
func TestInjectorBatchDeliveryEquivalence(t *testing.T) {
	cfg := Config{
		Seed: 3, LossRate: 0.15, CorruptRate: 0.2, RateLimitPerRound: 4,
		RateLimitWindow: 660 * time.Second,
		ClockSkew:       80 * time.Millisecond,
		Epoch:           epoch,
	}
	mkNet := func() (*netsim.Network, *Injector) {
		n := netsim.NewNetwork(9)
		for bi := 0; bi < 3; bi++ {
			b := &netsim.Block{ID: netsim.MakeBlockID(10, 2, byte(bi)), Seed: uint64(bi), LatencyBase: 20 * time.Millisecond}
			for h := 0; h < 200; h++ {
				b.Behaviors[h] = netsim.AlwaysOn{}
			}
			n.AddBlock(b)
		}
		in := New(cfg)
		n.SetTap(in)
		return n, in
	}
	mkPkt := func(dst netsim.Addr, s uint16) []byte {
		echo, err := (&icmp.Echo{ID: 7, Seq: s, Payload: []byte("pp")}).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := (&ipv4.Header{ID: s, TTL: 64, Protocol: ipv4.ProtoICMP,
			Src: ipv4.Addr{198, 51, 100, 1}, Dst: ipv4.Addr(dst.IP())}).Marshal(echo)
		if err != nil {
			t.Fatal(err)
		}
		return pkt
	}
	sNet, sIn := mkNet()
	bNet, bIn := mkNet()
	var rb netsim.ReplyBuffer
	var bb netsim.BatchBuffer
	for round := 0; round < 10; round++ {
		now := epoch.Add(time.Duration(round) * 11 * time.Minute)
		var pkts [][]byte
		s := uint16(round * 64)
		for i := 0; i < 48; i++ {
			dst := netsim.Addr{Block: netsim.MakeBlockID(10, 2, byte(i%3)), Host: byte(i * 5)}
			pkts = append(pkts, mkPkt(dst, s))
			s++
		}
		want := make([]netsim.Response, 0, len(pkts))
		for _, pkt := range pkts {
			r := sNet.DeliverIPInto(&rb, pkt, now)
			if r.Data != nil {
				r.Data = append([]byte(nil), r.Data...)
			}
			want = append(want, r)
		}
		got := bNet.DeliverBatch(&bb, pkts, now)
		for i := range want {
			w, g := want[i], got[i]
			if w.Timeout != g.Timeout || w.SendFailed != g.SendFailed || w.RTT != g.RTT || !bytes.Equal(w.Data, g.Data) {
				t.Fatalf("round %d probe %d diverged:\n scalar %+v\n batch  %+v", round, i, w, g)
			}
		}
	}
	if st, bt := sIn.Totals(), bIn.Totals(); st != bt {
		t.Fatalf("injector stats diverged: scalar %v, batch %v", st, bt)
	}
}
