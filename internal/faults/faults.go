// Package faults is the fault-injection layer for the measurement path: a
// deterministic, seeded perturbation of probe delivery that models the
// hostile reality the paper's pipeline survived — lost probes, ICMP rate
// limiting at target networks, corrupted replies, prober clock skew, and
// vantage-point blackouts (§2.2 reports ~5% of rounds missing or duplicated
// even after all of this). The injector implements netsim.Tap and attaches
// to a Network with SetTap; the zero value (and a zero Config) is a no-op,
// so fault-free runs are byte-identical to runs without the layer.
//
// All draws come from the canonical PRF keyed by (seed, destination, time),
// so a faulty run is exactly reproducible from its seed and a retried probe
// at a later virtual time redraws its fate.
package faults

import (
	"fmt"
	"sync"
	"time"

	"sleepnet/internal/netsim"
	"sleepnet/internal/prf"
)

// Config describes the fault model. The zero value injects nothing.
type Config struct {
	// Seed decorrelates fault draws from the simulation's own randomness.
	Seed uint64
	// LossRate is the probability a probe is silently lost in transit, on
	// top of any per-block path loss the simulated network already models.
	LossRate float64
	// CorruptRate is the probability a delivered reply is corrupted
	// (bit-flip, truncation, or payload bloat — each exercising a distinct
	// icmp parse error path).
	CorruptRate float64
	// RateLimitPerRound, when positive, lets only that many probes per
	// target block through in each rate-limit window; the rest are eaten by
	// an intermediate device that answers with an ICMP administratively-
	// prohibited unreachable — the bursty rate limiting real gateways apply.
	RateLimitPerRound int
	// RateLimitWindow is the rate-limit accounting window (default: the
	// paper's 11-minute round).
	RateLimitWindow time.Duration
	// ClockSkew is a constant offset added to every delivery timestamp —
	// the prober's clock disagreeing with the world's.
	ClockSkew time.Duration
	// ClockDriftPerDay adds a linearly growing offset anchored at Epoch.
	ClockDriftPerDay time.Duration
	// BlackoutEvery/BlackoutFor schedule periodic vantage-point blackouts
	// anchored at Epoch: during the first BlackoutFor of every
	// BlackoutEvery, all probes fail locally with a send error.
	BlackoutEvery time.Duration
	BlackoutFor   time.Duration
	// Blackouts lists additional explicit blackout windows.
	Blackouts []netsim.Interval
	// Epoch anchors drift and periodic blackouts; campaigns set it to their
	// start time. Drift and periodic blackouts are disabled while zero.
	Epoch time.Time
}

// Active reports whether the configuration injects anything at all.
func (c Config) Active() bool {
	return c.LossRate > 0 || c.CorruptRate > 0 || c.RateLimitPerRound > 0 ||
		c.ClockSkew != 0 || c.ClockDriftPerDay != 0 ||
		(c.BlackoutEvery > 0 && c.BlackoutFor > 0) || len(c.Blackouts) > 0
}

// Stats counts injected faults, globally or for one block.
type Stats struct {
	Probes      int64 // outbound probes seen by the injector
	Dropped     int64 // silently lost
	RateLimited int64 // eaten and answered admin-prohibited
	SendErrors  int64 // failed at the vantage point (blackout)
	Corrupted   int64 // replies mangled on the way back
}

// Any reports whether any fault was injected.
func (s Stats) Any() bool {
	return s.Dropped > 0 || s.RateLimited > 0 || s.SendErrors > 0 || s.Corrupted > 0
}

// String summarizes the counters for logs.
func (s Stats) String() string {
	return fmt.Sprintf("probes=%d dropped=%d ratelimited=%d senderrors=%d corrupted=%d",
		s.Probes, s.Dropped, s.RateLimited, s.SendErrors, s.Corrupted)
}

func (s *Stats) add(o Stats) {
	s.Probes += o.Probes
	s.Dropped += o.Dropped
	s.RateLimited += o.RateLimited
	s.SendErrors += o.SendErrors
	s.Corrupted += o.Corrupted
}

// blockState is per-block injector memory: fault counters plus the current
// rate-limit window.
type blockState struct {
	stats    Stats
	rlWindow int64
	rlCount  int
}

// Injector implements netsim.Tap. The zero value is a usable no-op; create
// configured injectors with New. Safe for concurrent use.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	blocks map[netsim.BlockID]*blockState
}

// New creates an injector for the given fault model.
func New(cfg Config) *Injector {
	if cfg.RateLimitWindow <= 0 {
		cfg.RateLimitWindow = 660 * time.Second
	}
	return &Injector{cfg: cfg}
}

// Config returns the effective configuration.
func (in *Injector) Config() Config { return in.cfg }

func (in *Injector) block(id netsim.BlockID) *blockState {
	if in.blocks == nil {
		in.blocks = make(map[netsim.BlockID]*blockState)
	}
	st := in.blocks[id]
	if st == nil {
		st = &blockState{}
		in.blocks[id] = st
	}
	return st
}

// skewed returns now as the fault model's clock sees it.
func (in *Injector) skewed(now time.Time) time.Time {
	adj := now.Add(in.cfg.ClockSkew)
	if in.cfg.ClockDriftPerDay != 0 && !in.cfg.Epoch.IsZero() {
		days := now.Sub(in.cfg.Epoch).Hours() / 24
		adj = adj.Add(time.Duration(days * float64(in.cfg.ClockDriftPerDay)))
	}
	return adj
}

// blackedOut reports whether the vantage point is down at now.
func (in *Injector) blackedOut(now time.Time) bool {
	for _, iv := range in.cfg.Blackouts {
		if iv.Contains(now) {
			return true
		}
	}
	if in.cfg.BlackoutEvery > 0 && in.cfg.BlackoutFor > 0 && !in.cfg.Epoch.IsZero() {
		since := now.Sub(in.cfg.Epoch)
		if since >= 0 && since%in.cfg.BlackoutEvery < in.cfg.BlackoutFor {
			return true
		}
	}
	return false
}

// Outbound implements netsim.Tap: it decides the probe's fate and skews its
// delivery timestamp.
func (in *Injector) Outbound(dst netsim.Addr, now time.Time) (time.Time, netsim.TapVerdict) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.outboundLocked(dst, now)
}

// OutboundBatch implements netsim.TapBatch: one lock acquisition decides a
// whole batch of probes, filling times[i]/verdicts[i] with exactly what
// sequential Outbound calls would have returned in slice order. Legal
// because every draw is PRF-pure per (destination, timestamp) and the only
// stateful decision — the per-block rate-limit window — sees each block's
// probes in the same relative order either way; Inbound's corruption draw
// is likewise pure, so deciding all outbound fates before any inbound
// processing cannot change any decision.
func (in *Injector) OutboundBatch(dsts []netsim.Addr, now time.Time, times []time.Time, verdicts []netsim.TapVerdict) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, dst := range dsts {
		times[i], verdicts[i] = in.outboundLocked(dst, now)
	}
}

// outboundLocked is Outbound's body; in.mu must be held.
func (in *Injector) outboundLocked(dst netsim.Addr, now time.Time) (time.Time, netsim.TapVerdict) {
	st := in.block(dst.Block)
	st.stats.Probes++

	if in.blackedOut(now) {
		st.stats.SendErrors++
		return now, netsim.TapSendError
	}
	if in.cfg.LossRate > 0 &&
		prf.Float(in.cfg.Seed^0x10c55, uint64(dst.Block), uint64(dst.Host), uint64(now.UnixNano())) < in.cfg.LossRate {
		st.stats.Dropped++
		return now, netsim.TapDrop
	}
	if in.cfg.RateLimitPerRound > 0 {
		w := now.UnixNano() / int64(in.cfg.RateLimitWindow)
		if w != st.rlWindow {
			st.rlWindow = w
			st.rlCount = 0
		}
		st.rlCount++
		if st.rlCount > in.cfg.RateLimitPerRound {
			st.stats.RateLimited++
			return now, netsim.TapAdminProhibited
		}
	}
	return in.skewed(now), netsim.TapDeliver
}

// Inbound implements netsim.Tap: it may corrupt a reply. Three corruption
// modes exercise the parser's distinct error paths: truncation
// (ErrTruncated for short messages, ErrChecksum otherwise), a single bit
// flip (ErrChecksum), and payload bloat past the size bound (ErrPayloadSize).
//
// The reply slice may be a prober's reusable netsim.ReplyBuffer storage, so
// the Tap contract applies: it is never retained past the call and every
// corruption mode returns a fresh copy (copy-on-corrupt) instead of
// mutating the caller's bytes in place.
func (in *Injector) Inbound(dst netsim.Addr, reply []byte, now time.Time) []byte {
	if in.cfg.CorruptRate <= 0 || len(reply) == 0 {
		return reply
	}
	key := []uint64{uint64(dst.Block), uint64(dst.Host), uint64(now.UnixNano())}
	if prf.Float(in.cfg.Seed^0xc0bb, key...) >= in.cfg.CorruptRate {
		return reply
	}
	in.mu.Lock()
	in.block(dst.Block).stats.Corrupted++
	in.mu.Unlock()

	h := prf.Hash(in.cfg.Seed^0x5a17, key...)
	switch h % 3 {
	case 0: // truncate
		n := int(h>>8) % len(reply)
		return append([]byte(nil), reply[:n]...)
	case 1: // flip one bit
		out := append([]byte(nil), reply...)
		i := int(h>>8) % len(out)
		out[i] ^= 1 << ((h >> 32) % 8)
		return out
	default: // bloat past the parser's payload bound
		out := append([]byte(nil), reply...)
		return append(out, make([]byte, 1500)...)
	}
}

// BlockStats returns the fault counters accumulated for one block.
func (in *Injector) BlockStats(id netsim.BlockID) Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.blocks[id]; st != nil {
		return st.stats
	}
	return Stats{}
}

// Totals returns the fault counters summed over all blocks.
func (in *Injector) Totals() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	var total Stats
	for _, st := range in.blocks {
		total.add(st.stats)
	}
	return total
}

var (
	_ netsim.Tap      = (*Injector)(nil)
	_ netsim.TapBatch = (*Injector)(nil)
)
