package faults

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestChaosPlanFiresOncePerEvent(t *testing.T) {
	p := &ChaosPlan{
		Kills:      []ShardRound{{Shard: 0, Round: 3}},
		Stalls:     []ShardRound{{Shard: 0, Round: 3}}, // same key, distinct schedule
		HardStalls: []ShardRound{{Shard: 1, Round: 0}},
	}
	if p.ShouldKill(0, 2) || p.ShouldKill(1, 3) {
		t.Fatal("unscheduled (shard, round) fired")
	}
	if !p.ShouldKill(0, 3) {
		t.Fatal("scheduled kill did not fire")
	}
	if p.ShouldKill(0, 3) {
		t.Fatal("kill fired twice: a recovered replay of the round must survive")
	}
	// The stall at the same (shard, round) is independent of the kill.
	if !p.ShouldStall(0, 3) || p.ShouldStall(0, 3) {
		t.Fatal("stall schedule not independent of kill schedule")
	}
	if !p.ShouldHardStall(1, 0) || p.ShouldHardStall(1, 0) {
		t.Fatal("hard stall did not fire exactly once")
	}
	if got := p.Fired(); got != 3 {
		t.Fatalf("Fired() = %d, want 3", got)
	}
}

func TestChaosPlanZeroAndNil(t *testing.T) {
	var nilPlan *ChaosPlan
	var zero ChaosPlan
	for r := 0; r < 4; r++ {
		if nilPlan.ShouldKill(0, r) || nilPlan.ShouldStall(0, r) || nilPlan.ShouldHardStall(0, r) {
			t.Fatal("nil plan injected a fault")
		}
		if zero.ShouldKill(0, r) || zero.ShouldStall(0, r) || zero.ShouldHardStall(0, r) {
			t.Fatal("zero plan injected a fault")
		}
	}
	if nilPlan.Fired() != 0 || zero.Fired() != 0 {
		t.Fatal("empty plans report fired events")
	}
}

func TestCorruptFileTailDeterministic(t *testing.T) {
	orig := []byte("0123456789abcdef")
	write := func() string {
		path := filepath.Join(t.TempDir(), "f")
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	p1, p2 := write(), write()
	for _, p := range []string{p1, p2} {
		if err := CorruptFileTail(p, 4); err != nil {
			t.Fatal(err)
		}
	}
	a, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("corruption is not deterministic across runs")
	}
	if bytes.Equal(a, orig) {
		t.Fatal("corruption changed nothing")
	}
	if !bytes.Equal(a[:len(a)-4], orig[:len(orig)-4]) {
		t.Fatal("corruption reached beyond the tail")
	}

	// n larger than the file corrupts the whole file without error.
	p3 := write()
	if err := CorruptFileTail(p3, 1000); err != nil {
		t.Fatal(err)
	}
	c, err := os.ReadFile(p3)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != len(orig) || bytes.Equal(c[:4], orig[:4]) {
		t.Fatal("oversized n did not clamp to the file length")
	}
}

func TestTruncateFileTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateFileTail(path, 3); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "0123456" {
		t.Fatalf("after truncate: %q", got)
	}
	// Truncating more than remains clamps to empty.
	if err := TruncateFileTail(path, 100); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("after over-truncate: %q", got)
	}
}
