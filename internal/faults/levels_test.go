package faults

import "testing"

// TestSweepLevels pins the shared sweep plan both the fault sweep and the
// agreement harness iterate: baseline first, stable labels, zeros skipped,
// injector seeds decorrelated from the simulation seed.
func TestSweepLevels(t *testing.T) {
	levels := SweepLevels(42, []float64{0, 0.02, 0.10}, []int{4, 0})
	wantLabels := []string{"fault-free", "loss=2%", "loss=10%", "ratelimit=4/round"}
	if len(levels) != len(wantLabels) {
		t.Fatalf("got %d levels, want %d: %+v", len(levels), len(wantLabels), levels)
	}
	for i, want := range wantLabels {
		if levels[i].Label != want {
			t.Errorf("level %d label = %q, want %q", i, levels[i].Label, want)
		}
	}
	if levels[0].Config.Active() {
		t.Error("baseline level must be fault-free")
	}
	for _, lvl := range levels[1:] {
		if !lvl.Config.Active() {
			t.Errorf("%s: config inactive", lvl.Label)
		}
		if lvl.Config.Seed == 42 {
			t.Errorf("%s: injector seed not decorrelated from simulation seed", lvl.Label)
		}
	}

	if got := SweepLevels(7, nil, nil); len(got) != 1 || got[0].Label != "fault-free" {
		t.Fatalf("empty sweep = %+v, want just the baseline", got)
	}
}
