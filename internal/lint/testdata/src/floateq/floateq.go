// Package floateq is a deliberately-broken fixture: every line marked
// `want floateq` must trigger exactly the floateq rule.
package floateq

import "math"

// Fragile compares computed floats exactly.
func Fragile(a, b []float64) bool {
	sa, sb := 0.0, 0.0
	for _, v := range a {
		sa += v
	}
	for _, v := range b {
		sb += v
	}
	if sa == sb { // want floateq
		return true
	}
	return math.Sqrt(sa) != math.Sqrt(sb) // want floateq
}

// Narrow also applies to float32.
func Narrow(x, y float32) bool {
	return x == y // want floateq
}

// Legal shapes: constant sentinels, the NaN idiom, integer equality.
func Legal(v float64, n, m int) bool {
	if v == 0 { // constant operand: exact by construction
		return true
	}
	if v != v { // NaN idiom
		return false
	}
	if v == math.Pi { // constant operand
		return true
	}
	return n == m
}
