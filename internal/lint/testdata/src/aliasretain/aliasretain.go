// Package aliasretain exercises the call-scoped aliasing contract: values
// an annotated API documents as views of a caller-owned buffer must not
// outlive the call that produced them.
package aliasretain

// View is a zero-copy decode target.
type View struct {
	Data []byte
	Seq  int
}

// Holder outlives individual parse calls.
type Holder struct {
	last []byte
}

// ParseInto fills v with a view of b.
//
//lint:aliases v: v.Data aliases b until the buffer's next reuse
func ParseInto(v *View, b []byte) {
	v.Data = b
}

// Window returns a view of the holder's scratch.
//
//lint:aliases return: the returned slice aliases h's scratch buffer
func (h *Holder) Window() []byte {
	return h.last
}

var global *View
var keep []byte

// RetainGlobal stores the view in a package variable.
func RetainGlobal(buf []byte) {
	v := &View{}
	ParseInto(v, buf)
	global = v // want aliasretain
}

// RetainField stores view bytes through a caller-retained pointer.
func RetainField(h *Holder, buf []byte) {
	var v View
	ParseInto(&v, buf)
	h.last = v.Data // want aliasretain
}

// RetainPropagated reaches the sink through a local alias.
func RetainPropagated(h *Holder, buf []byte) {
	var v View
	ParseInto(&v, buf)
	d := v.Data
	h.last = d // want aliasretain
}

// SendView leaks the view across a channel.
func SendView(ch chan []byte, buf []byte) {
	var v View
	ParseInto(&v, buf)
	ch <- v.Data // want aliasretain
}

// EscapeClosure captures the view in a returned closure.
func EscapeClosure(buf []byte) func() int {
	var v View
	ParseInto(&v, buf)
	return func() int { return len(v.Data) } // want aliasretain
}

// RetainReturn keeps a `return`-annotated result.
func RetainReturn(h *Holder) {
	w := h.Window()
	keep = w // want aliasretain
}

// CopyOK copies the bytes before retaining — no finding.
func CopyOK(h *Holder, buf []byte) {
	var v View
	ParseInto(&v, buf)
	h.last = append([]byte(nil), v.Data...)
}

// ScalarOK copies a non-reference field out of the view — no finding.
func ScalarOK(buf []byte) int {
	var v View
	ParseInto(&v, buf)
	seq := v.Seq
	return seq
}

// InlineClosureOK runs the closure inside the frame — no finding.
func InlineClosureOK(buf []byte) int {
	var v View
	ParseInto(&v, buf)
	n := func() int { return len(v.Data) }()
	return n
}
