// Package maporder is a deliberately-broken fixture: every line marked
// `want maporder` must trigger exactly the maporder rule.
package maporder

import (
	"bytes"
	"fmt"
	"sort"

	"sleepnet/internal/metrics"
)

// UnsortedKeys appends map keys and never sorts them.
func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want maporder
	}
	return keys
}

// SortedKeys is the legal collect-then-sort shape.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GroupedSorted sorts through the range-value alias — also legal.
func GroupedSorted(m map[int]string) map[string][]int {
	out := make(map[string][]int)
	for n, name := range m {
		out[name] = append(out[name], n)
	}
	for _, ns := range out {
		sort.Ints(ns)
	}
	return out
}

// DirectEmit writes into a buffer in map order.
func DirectEmit(m map[string]int) string {
	var buf bytes.Buffer
	for k, v := range m {
		fmt.Fprintf(&buf, "%s=%d\n", k, v) // want maporder
	}
	return buf.String()
}

// WriterEmit calls a writer method in map order.
func WriterEmit(m map[string]int) string {
	var buf bytes.Buffer
	for k := range m {
		buf.WriteString(k) // want maporder
	}
	return buf.String()
}

// MetricsEmit mutates metrics in map order — the snapshot-nondeterminism
// shape when gauge values depend on visit order.
func MetricsEmit(reg *metrics.Registry, m map[string]float64) {
	g := reg.Gauge("last_seen")
	for _, v := range m {
		g.Set(v) // want maporder
	}
}
