// Package nowallclock is a deliberately-broken fixture: every line marked
// `want nowallclock` must trigger exactly the nowallclock rule.
package nowallclock

import "time"

// Epoch is the simulation epoch — deriving from it is the legal pattern.
var Epoch = time.Date(2013, time.April, 1, 0, 0, 0, 0, time.UTC)

// Stamp reads the host clock in an output path.
func Stamp() time.Time {
	return time.Now() // want nowallclock
}

// Elapsed reads the host clock twice over.
func Elapsed(start time.Time) time.Duration {
	d := time.Since(start) // want nowallclock
	_ = time.Until(start)  // want nowallclock
	return d
}

// Virtual derives timestamps from the epoch — legal.
func Virtual(round int) time.Time {
	return Epoch.Add(time.Duration(round) * 11 * time.Minute)
}
