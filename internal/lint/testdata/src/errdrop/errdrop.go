// Package errdrop is a deliberately-broken fixture: every line marked
// `want errdrop` must trigger exactly the errdrop rule.
package errdrop

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

func work() error            { return nil }
func workBoth() (int, error) { return 0, nil }

type closer struct{}

func (closer) Close() error { return nil }

// Dropped errors — violations.
func Dropped(w io.Writer, path string) {
	work()                     // want errdrop
	workBoth()                 // want errdrop
	os.Remove(path)            // want errdrop
	fmt.Fprintf(w, "unsafe\n") // want errdrop
	closer{}.Close()           // want errdrop
}

// Handled or always-nil — legal.
func Handled(path string) error {
	if err := work(); err != nil {
		return err
	}
	_ = work() // explicit discard is visible in review
	var buf bytes.Buffer
	var sb strings.Builder
	buf.WriteString("in-memory writes cannot fail")
	sb.WriteString("same")
	fmt.Fprintf(&buf, "fmt to a buffer is fine\n")
	fmt.Fprintln(os.Stderr, "stderr is conventional")
	fmt.Println("stdout is conventional")
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // defer close is idiomatic; not a statement drop
	return nil
}
