// Package lockbalance exercises the CFG-backed mutex discipline rule:
// a Lock must reach Unlock on all paths (defer-aware), and re-locking a
// held mutex is a guaranteed self-deadlock.
package lockbalance

import "sync"

// S carries both mutex flavors.
type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// DeferOK is the canonical shape — no finding.
func DeferOK(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// BranchesOK unlocks explicitly on the single exit — no finding.
func BranchesOK(s *S, c bool) {
	s.mu.Lock()
	if c {
		s.n++
	}
	s.mu.Unlock()
}

// DeferLitOK discharges through a deferred closure — no finding.
func DeferLitOK(s *S) {
	s.mu.Lock()
	defer func() {
		s.n--
		s.mu.Unlock()
	}()
	s.n++
}

// LeakOnBranch returns while holding on the early path.
func LeakOnBranch(s *S, c bool) {
	s.mu.Lock() // want lockbalance
	if c {
		return
	}
	s.mu.Unlock()
}

// ReadLeak leaks the read lock the same way.
func ReadLeak(s *S, c bool) int {
	s.rw.RLock() // want lockbalance
	if c {
		return -1
	}
	n := s.n
	s.rw.RUnlock()
	return n
}

// DoubleLock re-locks a mutex held on every path.
func DoubleLock(s *S) {
	s.mu.Lock()
	s.mu.Lock() // want lockbalance
	s.n++
	s.mu.Unlock()
	s.mu.Unlock()
}

// unlockOnly is a called-with-lock-held helper: unlock without a local
// Lock is deliberately not flagged.
func unlockOnly(s *S) {
	s.n++
	s.mu.Unlock()
}

// TwoMutexesOK interleaves two locks correctly — no finding.
func TwoMutexesOK(s *S) {
	s.mu.Lock()
	s.rw.Lock()
	s.n++
	s.rw.Unlock()
	s.mu.Unlock()
}
