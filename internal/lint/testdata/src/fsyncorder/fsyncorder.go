// Package fsyncorder exercises the outside-durable layer of the rule:
// os.Rename anywhere but a durable package must go through the helpers.
package fsyncorder

import "os"

// Move renames directly — the finding.
func Move(a, b string) error {
	return os.Rename(a, b) // want fsyncorder
}

// MoveAllowed carries a justified suppression — no finding.
func MoveAllowed(a, b string) error {
	//lint:allow fsyncorder: fixture demonstrating a justified direct rename on a scratch path
	return os.Rename(a, b)
}
