// Package ctxleak exercises the supervision-tree contract: goroutines in
// supervised packages must observe a ctx or done channel on some path.
package ctxleak

import "context"

// Spawn demonstrates the sanctioned shapes and the leak.
func Spawn(ctx context.Context, work chan int) {
	// Selects on ctx.Done — fine.
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case w := <-work:
				_ = w
			}
		}
	}()
	// A channel argument is the caller's declaration of a done signal.
	go drain(work)
	// Observes nothing: can outlive its supervisor.
	go func() { // want ctxleak
		for {
			step()
		}
	}()
}

// SpawnNamed resolves the named function's body one level deep.
func SpawnNamed() {
	go tick() // want ctxleak
}

// SpawnNamedOK: the named function ranges a closable channel.
func SpawnNamedOK(ch chan int) {
	go drain(ch)
}

func drain(ch chan int) {
	for range ch {
	}
}

func tick() {
	for {
		step()
	}
}

func step() {}
