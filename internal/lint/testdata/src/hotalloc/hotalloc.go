// Package hotalloc exercises the build-time allocation budget: a
// //lint:hotpath function and its same-package static callees must not
// allocate, with error/panic paths exempt.
package hotalloc

import "fmt"

// Hot is the annotated root; appendInt is pulled into the budget.
//
//lint:hotpath: fixture wire path must stay 0 allocs/op per bench budget
func Hot(dst []byte, vals []int) []byte {
	for _, v := range vals {
		dst = appendInt(dst, v)
	}
	return dst
}

// appendInt is hot transitively (called from Hot).
func appendInt(b []byte, v int) []byte {
	b = append(b, byte(v)) // self-append: the owned-buffer idiom, fine
	tmp := make([]byte, 4) // want hotalloc
	_ = tmp
	return b
}

// HotBad collects the other allocating shapes.
//
//lint:hotpath: closures, fmt, and foreign appends stay off this path
func HotBad(b []byte, n int) []byte {
	f := func() int { return n }     // want hotalloc
	fmt.Println(n)                   // want hotalloc
	out := append([]byte(nil), b...) // want hotalloc
	s := string(b)                   // want hotalloc
	_ = s
	_ = f
	return out
}

// HotErr allocates only on the error path — exempt, no finding.
//
//lint:hotpath: success path is allocation-free; error path is cold
func HotErr(b []byte) ([]byte, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("empty input (%d bytes)", len(b))
	}
	return b, nil
}

// HotPanic allocates only inside panic — exempt, no finding.
//
//lint:hotpath: the panic path is a programming error, not the hot path
func HotPanic(b []byte) byte {
	if len(b) == 0 {
		panic(fmt.Sprintf("empty buffer %v", b))
	}
	return b[0]
}

// boxer has an interface-taking method.
type boxer interface {
	Put(x any)
}

// HotBox boxes a non-pointer value into an interface parameter.
//
//lint:hotpath: interface boxing allocates and is off-budget here
func HotBox(w boxer, v int) {
	w.Put(v) // want hotalloc
}

// Cold is unannotated: the same constructs draw no findings.
func Cold(n int) []byte {
	out := make([]byte, n)
	return append(out, fmt.Sprintf("%d", n)...)
}
