// Package durable exercises the in-durable layer of the fsyncorder rule:
// direct os.Rename is the implementation here, so the flow checks take
// over — Sync must dominate the rename of a written temp file, and a
// SyncDir must be reachable after it.
package durable

import "os"

// fsync is the injectable seam, as in the real internal/durable.
var fsync = (*os.File).Sync

// WriteGood follows the full contract — no finding.
func WriteGood(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := fsync(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return SyncDir(".")
}

// WriteNoSync renames a written temp file no path ever synced.
func WriteNoSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil { // want fsyncorder
		return err
	}
	return SyncDir(".")
}

// WriteNoDirSync syncs the file but never the directory.
func WriteNoDirSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := fsync(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want fsyncorder
}

// RenameOnly moves a file it never wrote (a recovery sweep): the sync
// dominance gate does not apply, but the dir sync still must follow.
func RenameOnly(old, new string) error {
	if err := os.Rename(old, new); err != nil {
		return err
	}
	return SyncDir(".")
}

// SyncDir fsyncs a directory, as in the real package.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}
