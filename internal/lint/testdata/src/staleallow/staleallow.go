// Package staleallow exercises the -allows audit: a well-formed directive
// that no longer suppresses any finding is itself a finding, because a
// stale allow silently licenses the next real violation on its line.
package staleallow

import "time"

// Used suppresses a live finding — listed by the audit, not stale.
func Used() time.Time {
	//lint:allow nowallclock: fixture demonstrating a live suppression of a clock read
	return time.Now()
}

// Stale excuses code that no longer exists on the next line.
func Stale() int {
	//lint:allow nowallclock: this directive outlived the clock read it once excused // want staleallow
	return 42
}
