// Package allowfix exercises the //lint:allow escape hatch: a justified
// directive suppresses its finding; an unjustified or unknown-rule
// directive is itself a finding and suppresses nothing.
package allowfix

import "time"

// Suppressed carries a proper justification — no finding.
func Suppressed() time.Time {
	//lint:allow nowallclock: fixture demonstrating a justified suppression of a clock read
	return time.Now()
}

// SuppressedTrailing uses the trailing-comment form — no finding.
func SuppressedTrailing() time.Time {
	return time.Now() //lint:allow nowallclock: trailing-form justification for this clock read
}

// Unjustified has no explanation: the directive is flagged AND the clock
// read still reports.
func Unjustified() time.Time {
	//lint:allow nowallclock // want allowdirective
	return time.Now() // want nowallclock
}

// UnknownRule names a rule that does not exist.
func UnknownRule() time.Time {
	//lint:allow nosuchrule: the rule name here is wrong so this suppresses nothing // want allowdirective
	return time.Now() // want nowallclock
}
