// Package atomicmix exercises the all-or-nothing sync/atomic rule: once a
// field is accessed atomically anywhere, every plain access of it races.
package atomicmix

import "sync/atomic"

// C mixes an atomically-used counter with a plainly-used one.
type C struct {
	n int64 // accessed via sync/atomic below
	m int64 // never atomic: plain access fine
}

// Add is the sanctioned atomic access.
func Add(c *C) {
	atomic.AddInt64(&c.n, 1)
}

// Racy reads the atomic field plainly.
func Racy(c *C) int64 {
	return c.n // want atomicmix
}

// StoreRacy writes it plainly.
func StoreRacy(c *C) {
	c.n = 5 // want atomicmix
}

// PlainOther touches the never-atomic field — no finding.
func PlainOther(c *C) int64 {
	return c.m
}

var gen int64

// Bump uses the package counter atomically.
func Bump() {
	atomic.StoreInt64(&gen, 1)
}

// ReadGen reads it plainly.
func ReadGen() int64 {
	return gen // want atomicmix
}
