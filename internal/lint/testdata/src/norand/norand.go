// Package norand is a deliberately-broken fixture: every line marked
// `want norand` must trigger exactly the norand rule and nothing else.
package norand

import "math/rand"

// GlobalDraws uses the process-seeded global stream — each is a violation.
func GlobalDraws() int {
	rand.Seed(42)                      // want norand
	n := rand.Intn(10)                 // want norand
	f := rand.Float64()                // want norand
	rand.Shuffle(3, func(i, j int) {}) // want norand
	return n + int(f)
}

// SeededDraws uses an explicitly seeded generator — all legal.
func SeededDraws(seed uint64) int {
	r := rand.New(rand.NewSource(int64(seed)))
	n := r.Intn(10)
	_ = r.Float64()
	_ = r.NormFloat64()
	return n
}
