package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for rule checks.
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// Path is the package's import path within the module.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds soft type-check errors (the checker continues past
	// them so rules still see partial information).
	TypeErrors []error
}

// Loader parses and type-checks packages from source, stdlib included, with
// no toolchain invocation beyond reading GOROOT sources. One Loader caches
// imports across packages, so loading a whole module is cheap. A Loader is
// safe for concurrent LoadDir calls: the FileSet synchronizes itself and the
// import cache is serialized behind a mutex, so dependencies shared by many
// packages are type-checked exactly once no matter how many workers load.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader with a fresh FileSet and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: &lockedImporter{imp: importer.ForCompiler(fset, "source", nil)}}
}

// lockedImporter serializes Import calls: the source importer's cache is not
// safe for concurrent use, but sharing that cache across type-check workers
// is the whole point — each dependency is checked once and every later
// Import is a cache hit. The packages it returns are complete, and complete
// *types.Package values are safe to read concurrently.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imp.Import(path)
}

// LoadDir parses and type-checks the non-test files of one directory as the
// package importPath.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{Dir: dir, Path: importPath, Fset: l.Fset, Files: files}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	// Check reports the first error it saw; with Error set it still
	// type-checks the rest, so keep the partial package either way.
	pkg.Types, _ = conf.Check(importPath, l.Fset, files, pkg.Info)
	return pkg, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return dir, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// PackageDirs returns every directory under root that contains non-test Go
// files, skipping testdata, vendor, hidden, and underscore-prefixed
// directories — the same exclusions the go tool applies.
func PackageDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				out = append(out, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// LoadModule loads every package under the module rooted at (or above) dir
// whose directory matches one of the patterns. Patterns follow the go tool
// shape: "./..." loads everything, "./internal/world" one package,
// "./internal/..." a subtree. An empty pattern list means "./...".
func LoadModule(dir string, patterns []string) ([]*Package, error) {
	return LoadModuleParallel(dir, patterns, 1)
}

// LoadModuleParallel is LoadModule with the type-checking fanned out over a
// bounded pool of workers. Type-checking dominates whole-module lint time,
// so this is where the parallelism pays; rules still run sequentially over
// the loaded packages (the annotation index and finding order stay trivially
// deterministic that way). Each worker owns a private Loader — the source
// importer's cache is not safe for concurrent use — and packages come back
// in directory order no matter which worker finished first, so output is
// byte-identical across runs and worker counts.
func LoadModuleParallel(dir string, patterns []string, workers int) ([]*Package, error) {
	root, modPath, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := PackageDirs(root)
	if err != nil {
		return nil, err
	}
	keep, err := matchPatterns(root, dir, dirs, patterns)
	if err != nil {
		return nil, err
	}
	paths := make([]string, len(keep))
	for i, d := range keep {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		paths[i] = modPath
		if rel != "." {
			paths[i] = modPath + "/" + filepath.ToSlash(rel)
		}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(keep) {
		workers = len(keep)
	}
	l := NewLoader()
	pkgs := make([]*Package, len(keep))
	errs := make([]error, len(keep))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				pkg, err := l.LoadDir(keep[i], paths[i])
				if err != nil {
					errs[i] = fmt.Errorf("lint: loading %s: %w", paths[i], err)
					continue
				}
				pkgs[i] = pkg
			}
		}()
	}
	for i := range keep {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// matchPatterns filters package dirs by the go-tool-style patterns,
// resolved relative to base.
func matchPatterns(root, base string, dirs, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	keep := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs := pat
		if !filepath.IsAbs(pat) {
			abs = filepath.Join(base, pat)
		}
		abs = filepath.Clean(abs)
		matched := false
		for _, d := range dirs {
			if d == abs || (recursive && strings.HasPrefix(d+string(filepath.Separator), abs+string(filepath.Separator))) {
				keep[d] = true
				matched = true
			}
		}
		if !matched && !recursive {
			return nil, fmt.Errorf("lint: pattern %s matches no package under %s", pat, root)
		}
	}
	var out []string
	for d := range keep {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}
