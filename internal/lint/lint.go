// Package lint is sleepnet's dependency-free static-analysis framework:
// a package loader on stdlib go/parser + go/types plus a registry of rules
// that enforce the repository's reproducibility invariants (seeded
// randomness, no wall-clock reads in output paths, deterministic map
// emission order, epsilon float comparison, handled errors).
//
// The paper's results hinge on same-seed runs being byte-identical; these
// invariants are exactly the ones reviewer vigilance keeps missing, so
// cmd/sleeplint wires the registry into CI as a hard gate.
//
// Escape hatch: a finding may be suppressed with a directive comment
//
//	//lint:allow <rule>: <justification>
//
// placed on the offending line or alone on the line above it. The
// justification is mandatory (and checked): an allow without one is itself
// a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one reported rule violation.
type Finding struct {
	Pos  token.Position `json:"-"`
	File string         `json:"file"`
	Line int            `json:"line"`
	Col  int            `json:"col"`
	Rule string         `json:"rule"`
	// Message states the violation.
	Message string `json:"message"`
	// Suggestion is the suggested edit, in prose ("-fix"-style guidance).
	Suggestion string `json:"suggestion,omitempty"`
}

// String renders the canonical file:line:col [rule] message form.
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
	if f.Suggestion != "" {
		s += " (fix: " + f.Suggestion + ")"
	}
	return s
}

// Pass carries one type-checked package through the rules.
type Pass struct {
	Fset *token.FileSet
	// PkgPath is the package's import path ("sleepnet/internal/world").
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info
	// Files are the parsed non-test files of the package.
	Files []*ast.File

	findings *[]Finding
	allows   map[string][]*allowDirective // filename -> directives

	// hotpath marks the functions in this package carrying a
	// //lint:hotpath annotation (set by collectAnnotations).
	hotpath map[*ast.FuncDecl]bool
	// anns is the module-wide annotation index shared by every pass of a
	// Run, so cross-package aliasing contracts are visible to callers.
	anns *Annotations
}

// Report records a finding at n's position unless an allow directive
// covers it.
func (p *Pass) Report(n ast.Node, rule, message, suggestion string) {
	pos := p.Fset.Position(n.Pos())
	for _, d := range p.allows[pos.Filename] {
		if d.rule == rule && d.covers(pos.Line) && d.justified() {
			d.used = true
			return
		}
	}
	*p.findings = append(*p.findings, Finding{
		Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
		Rule: rule, Message: message, Suggestion: suggestion,
	})
}

// TypeOf returns the type of e, or nil when type information is missing.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// IsTestFile reports whether the file holding n is a _test.go file.
// The loader skips test files, but fixtures may re-enable them.
func (p *Pass) IsTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.Fset.Position(n.Pos()).Filename, "_test.go")
}

// Rule is one self-contained invariant check.
type Rule interface {
	// Name is the registry key ("norand").
	Name() string
	// Doc is a one-line description for -rules listings and DESIGN.md.
	Doc() string
	// Check inspects one package and reports findings on the pass.
	Check(p *Pass)
}

// Rules returns the full registry in stable order.
func Rules() []Rule {
	return []Rule{
		NoRand{},
		NoWallClock{},
		MapOrder{},
		FloatEq{},
		ErrDrop{},
		LockBalance{},
		AtomicMix{},
		AliasRetain{},
		FsyncOrder{},
		HotAlloc{},
		CtxLeak{},
	}
}

// RuleNames returns the registered rule names in stable order.
func RuleNames() []string {
	var out []string
	for _, r := range Rules() {
		out = append(out, r.Name())
	}
	return out
}

// Select resolves a comma-separated rule list ("norand,floateq") against
// the registry. An empty spec selects every rule.
func Select(spec string) ([]Rule, error) {
	all := Rules()
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	byName := make(map[string]Rule, len(all))
	for _, r := range all {
		byName[r.Name()] = r
	}
	var out []Rule
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", name, strings.Join(RuleNames(), ", "))
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty rule selection %q", spec)
	}
	return out, nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	rule string
	// line is the line the comment sits on; alone selects whether it also
	// covers the next line (a directive on its own line annotates the
	// statement below it).
	line          int
	alone         bool
	justification string
	// used flips when the directive suppresses at least one finding; an
	// unused directive is stale and flagged by the -allows audit.
	used bool
	// file is the position filename, kept for audit listings.
	file string
}

func (d allowDirective) covers(line int) bool {
	return line == d.line || (d.alone && line == d.line+1)
}

// justified reports whether the directive carries a real justification: at
// least ten characters of explanation after the rule name.
func (d allowDirective) justified() bool {
	return len(strings.TrimSpace(d.justification)) >= 10
}

const allowPrefix = "//lint:allow "

// collectAllows parses every //lint:allow directive in the pass's files and
// reports malformed ones (missing justification, unknown rule) as findings
// under the "allowdirective" pseudo-rule. Malformed directives suppress
// nothing.
func (p *Pass) collectAllows() {
	known := make(map[string]bool)
	for _, name := range RuleNames() {
		known[name] = true
	}
	p.allows = make(map[string][]*allowDirective)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				pos := p.Fset.Position(c.Pos())
				d := &allowDirective{file: pos.Filename, line: pos.Line,
					alone: pos.Column == 1 || onlyCommentOnLine(p.Fset, f, c)}
				// Split "rule: why" / "rule -- why" / "rule — why".
				rule, why := splitDirective(rest)
				d.rule, d.justification = rule, why
				if !known[d.rule] {
					p.Report(c, "allowdirective",
						fmt.Sprintf("//lint:allow names unknown rule %q", d.rule),
						"use one of: "+strings.Join(RuleNames(), ", "))
					continue
				}
				if !d.justified() {
					p.Report(c, "allowdirective",
						fmt.Sprintf("//lint:allow %s requires a justification (\"//lint:allow %s: why this is safe\")", d.rule, d.rule),
						"append a colon and an explanation of why the invariant holds here")
					continue
				}
				p.allows[pos.Filename] = append(p.allows[pos.Filename], d)
			}
		}
	}
}

// splitDirective separates the rule name from its justification, accepting
// ':', "--", or an em-dash as the separator, or plain whitespace. A nested
// " // " starts a new comment and is not part of the justification.
func splitDirective(rest string) (rule, why string) {
	if i := strings.Index(rest, " // "); i >= 0 {
		rest = rest[:i]
	}
	for _, sep := range []string{":", "--", "—"} {
		if i := strings.Index(rest, sep); i >= 0 {
			return strings.TrimSpace(rest[:i]), strings.TrimSpace(rest[i+len(sep):])
		}
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		return rest[:i], strings.TrimSpace(rest[i:])
	}
	return rest, ""
}

// onlyCommentOnLine reports whether c is the only token on its line (a
// standalone directive annotating the next line, rather than a trailing
// comment on a code line). A node merely spanning the line (a multi-line
// call) does not count; a token starting or ending on the line before the
// comment does.
func onlyCommentOnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if n.Pos() < c.Pos() && fset.Position(n.Pos()).Line == line {
			alone = false
			return false
		}
		if n.End() <= c.Pos() && fset.Position(n.End()-1).Line == line {
			alone = false
			return false
		}
		return true
	})
	return alone
}

// Run executes the rules over the packages and returns findings sorted by
// file, line, column, and rule.
func Run(pkgs []*Package, rules []Rule) []Finding {
	findings, _ := run(pkgs, rules, false)
	return findings
}

// Allow is one //lint:allow directive as listed by the -allows audit.
type Allow struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Rule          string `json:"rule"`
	Justification string `json:"justification"`
	// Used reports whether the directive suppressed at least one finding
	// in this run; a well-formed, unused directive is stale.
	Used bool `json:"used"`
}

// RunAudit is Run plus the allow audit: it additionally returns every
// well-formed //lint:allow directive in the analyzed packages, and reports
// directives that suppressed nothing as findings under the "staleallow"
// pseudo-rule — but only when their rule was actually among the rules run,
// since an unexercised rule cannot prove its allows stale.
func RunAudit(pkgs []*Package, rules []Rule) ([]Finding, []Allow) {
	return run(pkgs, rules, true)
}

func run(pkgs []*Package, rules []Rule, audit bool) ([]Finding, []Allow) {
	var findings []Finding
	shared := newAnnotations()
	passes := make([]*Pass, 0, len(pkgs))
	// Phase 1: parse directives and contract annotations everywhere first,
	// so cross-package aliasing contracts are indexed before any caller's
	// rules run (package order must not matter).
	for _, pkg := range pkgs {
		pass := &Pass{
			Fset: pkg.Fset, PkgPath: pkg.Path, Pkg: pkg.Types,
			Info: pkg.Info, Files: pkg.Files, findings: &findings,
			anns: shared,
		}
		pass.collectAllows()
		pass.collectAnnotations(shared)
		passes = append(passes, pass)
	}
	// Phase 2: run the rules.
	for _, pass := range passes {
		for _, r := range rules {
			r.Check(pass)
		}
	}
	var allows []Allow
	if audit {
		ran := make(map[string]bool, len(rules))
		for _, r := range rules {
			ran[r.Name()] = true
		}
		for _, pass := range passes {
			for _, ds := range pass.allows {
				for _, d := range ds {
					allows = append(allows, Allow{
						File: d.file, Line: d.line, Rule: d.rule,
						Justification: d.justification, Used: d.used,
					})
					if !d.used && ran[d.rule] {
						findings = append(findings, Finding{
							File: d.file, Line: d.line, Col: 1,
							Rule:       "staleallow",
							Message:    fmt.Sprintf("//lint:allow %s suppresses nothing — the finding it excused is gone", d.rule),
							Suggestion: "delete the directive (or re-justify it against a finding that exists)",
						})
					}
				}
			}
		}
		sort.Slice(allows, func(i, j int) bool {
			a, b := allows[i], allows[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Rule < b.Rule
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return findings, allows
}
