package lint

import (
	"fmt"
	"go/types"
)

// NoWallClock forbids reading the wall clock (time.Now, time.Since,
// time.Until) outside the metrics timing layer and _test.go files. The
// pipeline is simulation-clocked: every timestamp derives from the virtual
// epoch, so a wall-clock read in an output path makes two same-seed runs
// differ — The Internet Pendulum's lesson that measurement pipelines inject
// their own periodic artifacts applies doubly when the artifact is the
// host's clock. Timing belongs in internal/metrics (whose histograms the
// registry's Deterministic() snapshot strips); anything else needs a
// justified //lint:allow nowallclock.
type NoWallClock struct{}

func (NoWallClock) Name() string { return "nowallclock" }
func (NoWallClock) Doc() string {
	return "forbid time.Now/time.Since/time.Until outside internal/metrics and tests"
}

// wallClockFuncs are the time package functions that read the host clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// nowallclockExempt is the one package allowed to read the clock: the
// timing layer, whose Deterministic() snapshot strips host-dependent
// histograms before any reproducible output.
const nowallclockExempt = "sleepnet/internal/metrics"

func (NoWallClock) Check(p *Pass) {
	if p.PkgPath == nowallclockExempt {
		return
	}
	for id, obj := range p.Info.Uses {
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			continue
		}
		fn, ok := obj.(*types.Func)
		if !ok || !wallClockFuncs[fn.Name()] {
			continue
		}
		if p.IsTestFile(id) {
			continue
		}
		p.Report(id, "nowallclock",
			fmt.Sprintf("time.%s reads the host clock; same-seed runs will differ", fn.Name()),
			"derive timestamps from the simulation epoch, route timing through internal/metrics, or add //lint:allow nowallclock: <why>")
	}
}
