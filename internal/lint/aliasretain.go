package lint

// aliasretain enforces the caller side of the zero-copy aliasing contract:
// a value an API documents as call-scoped (via //lint:aliases on the
// callee — e.g. the *Echo filled by icmp.ParseEchoInto, whose Payload
// aliases the caller's reply buffer) must not outlive the call that
// produced it. The buffer will be reused for the next packet; anything
// retaining a view of it reads torn data later — the PR-5 reply-buffer
// lifetime contract, previously enforced only by AllocsPerRun tests and
// code review.
//
// The analysis is per calling function: call sites of annotated callees
// seed a tainted-object set (annotated args, or assigned results for
// `return` specs); taint propagates through assignments whose type can
// carry a reference (slices, pointers, structs containing them — an int
// copied out of a view is safe); and a violation is any sink that outlives
// the function's current call frame: a store to a package variable, a
// store through a field/pointer whose root is a parameter or receiver, a
// channel send, or capture by a goroutine/escaping closure. Returning a
// tainted value is deliberately not flagged: APIs like ParseEcho copy the
// payload before returning, and object-level taint cannot see the
// field-level untaint.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AliasRetain checks that //lint:aliases-annotated call-scoped values are
// not retained beyond the call.
type AliasRetain struct{}

func (AliasRetain) Name() string { return "aliasretain" }
func (AliasRetain) Doc() string {
	return "values documented call-scoped via //lint:aliases must not be stored to fields, globals, channels, or escaping closures"
}

func (AliasRetain) Check(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkAliasRetain(p, fn.Type, fn.Recv, fn.Body)
				}
			case *ast.FuncLit:
				checkAliasRetain(p, fn.Type, nil, fn.Body)
			}
			return true
		})
	}
}

// calleeAliasSpec resolves a call to an annotated callee's spec.
func calleeAliasSpec(p *Pass, call *ast.CallExpr) *aliasSpec {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	default:
		return nil
	}
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	return p.anns.aliasesFor(annKey(obj.Pkg().Path(), obj.Name()))
}

// aliasRoot resolves the object a view expression ultimately reads
// through, unwrapping slicing, indexing, address-of, and dereference.
func aliasRoot(p *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// carriesReference reports whether a value of type t can hold an alias of
// another object's memory (directly or through struct/array fields).
func carriesReference(t types.Type) bool {
	return carriesRef(t, make(map[types.Type]bool))
}

func carriesRef(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRef(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return carriesRef(u.Elem(), seen)
	}
	return false
}

func checkAliasRetain(p *Pass, ft *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) {
	// Seed: objects made call-scoped by annotated call sites in this body.
	tainted := make(map[types.Object]bool)
	taint := func(obj types.Object) {
		if obj != nil {
			tainted[obj] = true
		}
	}
	inspectOwn(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		spec := calleeAliasSpec(p, call)
		if spec == nil {
			return true
		}
		for _, i := range spec.idx {
			if i < len(call.Args) {
				taint(aliasRoot(p, call.Args[i]))
			}
		}
		return true
	})
	// `return`-annotated callees taint the variables their results land in.
	inspectOwn(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if spec := calleeAliasSpec(p, call); spec != nil && spec.ret {
			for _, lhs := range as.Lhs {
				taint(aliasRoot(p, lhs))
			}
		}
		return true
	})
	if len(tainted) == 0 {
		return
	}

	// Parameters and the receiver are roots that outlive the call frame's
	// locals: a store through them escapes to the caller's world.
	outlives := make(map[types.Object]bool)
	addParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if obj := p.Info.Defs[id]; obj != nil {
					outlives[obj] = true
				}
			}
		}
	}
	addParams(recv)
	addParams(ft.Params)

	isTainted := func(e ast.Expr) bool {
		// append(x, tainted...) and conversions to string copy; the result
		// of any other call is a fresh value.
		if call, ok := e.(*ast.CallExpr); ok {
			if isBuiltinAppend(p, call) && len(call.Args) > 0 {
				return tainted[aliasRoot(p, call.Args[0])]
			}
			return false
		}
		obj := aliasRoot(p, e)
		if obj == nil || !tainted[obj] {
			return false
		}
		if t := p.TypeOf(e); t != nil && !carriesReference(t) {
			return false // an int/bool copied out of a view is a copy
		}
		return true
	}

	// Propagate through local assignments until stable.
	for changed := true; changed; {
		changed = false
		inspectOwn(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) || !isTainted(rhs) {
					continue
				}
				if lobj := aliasRoot(p, as.Lhs[i]); lobj != nil && !tainted[lobj] && !outlives[lobj] {
					if _, isIdent := as.Lhs[i].(*ast.Ident); isIdent {
						tainted[lobj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	reportSink := func(n ast.Node, what, sink string) {
		p.Report(n, "aliasretain",
			fmt.Sprintf("%s is call-scoped (//lint:aliases) but %s, outliving the call that produced it", what, sink),
			"copy the bytes you need (append to an owned buffer) before retaining")
	}
	describe := func(e ast.Expr) string {
		return types.ExprString(e)
	}

	// Closures invoked inline run inside the frame; any other FuncLit
	// capturing a tainted object escapes (stored, passed, returned). A
	// go'd or deferred literal runs outside the producing call's scope, so
	// those do not count as inline.
	calledLits := make(map[*ast.FuncLit]bool)
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			deferred[s.Call] = true
		case *ast.DeferStmt:
			deferred[s.Call] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && !deferred[call] {
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				calledLits[lit] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) || !isTainted(rhs) {
					continue
				}
				lhs := s.Lhs[i]
				lobj := aliasRoot(p, lhs)
				if lobj == nil {
					continue
				}
				_, plainIdent := lhs.(*ast.Ident)
				switch {
				case lobj.Parent() == p.Pkg.Scope():
					reportSink(s, describe(rhs), "is stored to package variable "+lobj.Name())
				case !plainIdent && outlives[lobj]:
					reportSink(s, describe(rhs), fmt.Sprintf("is stored through %s, which the caller retains", lobj.Name()))
				}
			}
		case *ast.SendStmt:
			if isTainted(s.Value) {
				reportSink(s, describe(s.Value), "is sent on a channel")
			}
		case *ast.FuncLit:
			if calledLits[s] {
				return true
			}
			capturesTaint := false
			ast.Inspect(s.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && !capturesTaint {
					if obj := p.Info.Uses[id]; obj != nil && tainted[obj] {
						capturesTaint = true
					}
				}
				return !capturesTaint
			})
			if capturesTaint {
				reportSink(s, "a call-scoped value", "is captured by an escaping closure")
			}
			return false
		}
		return true
	})
}
