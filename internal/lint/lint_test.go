package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFixture parses and type-checks one testdata/src package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := NewLoader().LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	for _, e := range pkg.TypeErrors {
		t.Fatalf("fixture %s does not type-check: %v", name, e)
	}
	return pkg
}

// wantedFindings scans fixture sources for `// want rule [rule...]`
// markers and returns the expected "file:line rule" keys.
func wantedFindings(t *testing.T, dir string) map[string]int {
	t.Helper()
	want := make(map[string]int)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			i := strings.Index(text, "// want ")
			if i < 0 {
				continue
			}
			for _, rule := range strings.Fields(text[i+len("// want "):]) {
				want[keyOf(path, line, rule)]++
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

func keyOf(file string, line int, rule string) string {
	return filepath.Base(file) + ":" + itoa(line) + " " + rule
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestFixturesGolden runs the FULL registry over every fixture package and
// requires the findings to match the `// want` annotations exactly — so
// each deliberately-broken fixture triggers its intended rule and nothing
// else.
func TestFixturesGolden(t *testing.T) {
	fixtures := []string{
		"norand", "nowallclock", "maporder", "floateq", "errdrop", "allowfix",
		"lockbalance", "atomicmix", "aliasretain", "durable", "fsyncorder",
		"hotalloc", "ctxleak", "staleallow",
	}
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			pkg := loadFixture(t, name)
			got := make(map[string]int)
			// The audit runner is the strictest mode: stale allows report
			// too, so fixtures must keep every directive live (or mark it
			// with a staleallow want).
			findings, _ := RunAudit([]*Package{pkg}, Rules())
			for _, f := range findings {
				got[keyOf(f.File, f.Line, f.Rule)]++
			}
			want := wantedFindings(t, pkg.Dir)
			for k, n := range want {
				if got[k] != n {
					t.Errorf("want %d finding(s) %q, got %d", n, k, got[k])
				}
			}
			for k, n := range got {
				if want[k] != n {
					t.Errorf("unexpected finding %q (x%d)", k, n)
				}
			}
		})
	}
}

// TestRuleIsolation re-runs each broken fixture with only its intended rule
// selected and checks the finding count survives -rules filtering.
func TestRuleIsolation(t *testing.T) {
	for _, name := range []string{
		"norand", "nowallclock", "maporder", "floateq", "errdrop",
		"lockbalance", "atomicmix", "aliasretain", "fsyncorder", "hotalloc", "ctxleak",
	} {
		t.Run(name, func(t *testing.T) {
			pkg := loadFixture(t, name)
			rules, err := Select(name)
			if err != nil {
				t.Fatal(err)
			}
			findings := Run([]*Package{pkg}, rules)
			if len(findings) == 0 {
				t.Fatalf("rule %s found nothing in its own fixture", name)
			}
			for _, f := range findings {
				if f.Rule != name {
					t.Errorf("selected only %s but got finding from %s: %s", name, f.Rule, f)
				}
			}
		})
	}
}

// TestSelfCheck runs the whole registry over the whole module: sleeplint
// must be clean on its own source (and everything else in the tree).
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow")
	}
	root, _, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	var lintPkgSeen bool
	for _, p := range pkgs {
		if p.Path == "sleepnet/internal/lint" {
			lintPkgSeen = true
		}
	}
	if !lintPkgSeen {
		t.Fatalf("self-check did not load internal/lint (loaded %d packages)", len(pkgs))
	}
	findings := Run(pkgs, Rules())
	for _, f := range findings {
		t.Errorf("module not lint-clean: %s", f)
	}
}

// TestAllowRequiresJustification pins the escape-hatch policy directly:
// a bare directive suppresses nothing and is itself reported.
func TestAllowRequiresJustification(t *testing.T) {
	pkg := loadFixture(t, "allowfix")
	findings := Run([]*Package{pkg}, Rules())

	var directiveFindings, clockFindings int
	for _, f := range findings {
		switch f.Rule {
		case "allowdirective":
			directiveFindings++
		case "nowallclock":
			clockFindings++
		}
	}
	// Two malformed directives (unjustified + unknown rule), each leaving
	// its clock read unsuppressed; the two justified ones suppress theirs.
	if directiveFindings != 2 {
		t.Errorf("want 2 allowdirective findings, got %d", directiveFindings)
	}
	if clockFindings != 2 {
		t.Errorf("want 2 unsuppressed nowallclock findings, got %d", clockFindings)
	}
}

func TestSplitDirective(t *testing.T) {
	cases := []struct {
		in, rule, why string
	}{
		{"norand: seeded upstream by the campaign config", "norand", "seeded upstream by the campaign config"},
		{"floateq -- exact tie-break", "floateq", "exact tie-break"},
		{"maporder — sorted by caller", "maporder", "sorted by caller"},
		{"norand", "norand", ""},
		{"norand // trailing comment is not a justification", "norand", ""},
	}
	for _, c := range cases {
		rule, why := splitDirective(c.in)
		if rule != c.rule || why != c.why {
			t.Errorf("splitDirective(%q) = (%q, %q), want (%q, %q)", c.in, rule, why, c.rule, c.why)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Rules()) {
		t.Fatalf("Select(\"\") = %d rules, err %v", len(all), err)
	}
	two, err := Select("norand, floateq")
	if err != nil || len(two) != 2 {
		t.Fatalf("Select subset = %d rules, err %v", len(two), err)
	}
	if _, err := Select("nosuchrule"); err == nil {
		t.Fatal("Select accepted an unknown rule")
	}
}

// TestFindingsSorted pins the deterministic output order.
func TestFindingsSorted(t *testing.T) {
	pkg := loadFixture(t, "norand")
	findings := Run([]*Package{pkg}, Rules())
	sorted := sort.SliceIsSorted(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	if !sorted {
		t.Errorf("findings not sorted: %v", findings)
	}
}

// TestFindingString pins the file:line:col [rule] message format CI greps.
func TestFindingString(t *testing.T) {
	f := Finding{File: "x/y.go", Line: 3, Col: 7, Rule: "norand", Message: "bad", Suggestion: "use prf"}
	want := "x/y.go:3:7: [norand] bad (fix: use prf)"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
