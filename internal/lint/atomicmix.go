package lint

// atomicmix enforces the all-or-nothing rule of sync/atomic: once any site
// accesses a variable or field through atomic.Load*/Store*/Add*/Swap*/CAS,
// every other access must go through sync/atomic too. A plain load races
// with the atomic store it was supposed to synchronize with — the exact
// bug class the serve epoch-pointer pattern avoids by using the typed
// atomics (atomic.Pointer, atomic.Int64), which need no rule because the
// type system already forbids plain access.
//
// Scope is the package: the set of atomically-accessed objects is
// collected in a first walk, then every plain mention outside a sync/atomic
// argument list is flagged.

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AtomicMix checks that atomically-accessed variables are never accessed
// plainly.
type AtomicMix struct{}

func (AtomicMix) Name() string { return "atomicmix" }
func (AtomicMix) Doc() string {
	return "a variable accessed via sync/atomic anywhere must never be plainly loaded or stored"
}

// isAtomicFn reports whether call invokes a sync/atomic package function.
func isAtomicFn(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" &&
		obj.Parent() == obj.Pkg().Scope() // package funcs, not typed-atomic methods
}

// addressedObject resolves &x / &s.f to the object being addressed.
func addressedObject(p *Pass, e ast.Expr) types.Object {
	u, ok := e.(*ast.UnaryExpr)
	if !ok || u.Op.String() != "&" {
		return nil
	}
	switch x := u.X.(type) {
	case *ast.Ident:
		return p.Info.Uses[x]
	case *ast.SelectorExpr:
		if sel := p.Info.Selections[x]; sel != nil {
			return sel.Obj()
		}
		return p.Info.Uses[x.Sel]
	}
	return nil
}

func (AtomicMix) Check(p *Pass) {
	// Walk 1: objects whose address feeds a sync/atomic call, and the
	// source ranges of those calls' argument lists (sanctioned mentions).
	atomicObjs := make(map[types.Object]bool)
	type span struct{ lo, hi int }
	var sanctioned []span
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFn(p, call) {
				return true
			}
			for _, arg := range call.Args {
				if obj := addressedObject(p, arg); obj != nil {
					atomicObjs[obj] = true
				}
				sanctioned = append(sanctioned, span{int(arg.Pos()), int(arg.End())})
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}
	inSanctioned := func(n ast.Node) bool {
		pos := int(n.Pos())
		for _, s := range sanctioned {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}
	// Walk 2: every other mention of those objects is a plain (racy)
	// access.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var obj types.Object
			var name string
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if sel := p.Info.Selections[x]; sel != nil {
					obj = sel.Obj()
				}
				name = x.Sel.Name
			case *ast.Ident:
				obj = p.Info.Uses[x]
				name = x.Name
			default:
				return true
			}
			if obj == nil || !atomicObjs[obj] || inSanctioned(n) {
				return true
			}
			p.Report(n, "atomicmix",
				fmt.Sprintf("%s is accessed via sync/atomic elsewhere; this plain access races with those", name),
				"use the matching atomic.Load/Store here (or migrate the field to a typed atomic)")
			return false
		})
	}
}
