package lint

// annotations.go — the contract annotations the flow rules consume.
//
//	//lint:hotpath: <why this function must stay allocation-free>
//	//lint:aliases <name>[,<name>...]: <what aliases what, and why>
//
// Both live in a function's doc comment (or an interface method's). A
// hotpath annotation puts the function and everything it statically calls
// within its package under the hotalloc allocation budget. An aliases
// annotation declares the named parameters (or `return`, meaning the
// results) call-scoped at every call site: the value handed in or out
// aliases a caller-owned buffer and must not be retained — the aliasretain
// rule enforces that in callers module-wide, which is why the alias index
// is shared across packages rather than per-pass.
//
// Malformed annotations (unknown parameter, missing justification) are
// findings under the "annotation" pseudo-rule, mirroring how malformed
// //lint:allow directives are handled: a contract that does not parse
// protects nothing and must not look like it does.

import (
	"fmt"
	"go/ast"
	"strings"
)

const (
	hotpathPrefix = "//lint:hotpath"
	aliasesPrefix = "//lint:aliases "
)

// aliasSpec records which parts of a function's signature are declared
// call-scoped.
type aliasSpec struct {
	params map[string]bool // parameter names marked call-scoped
	idx    []int           // positional indexes of those parameters
	ret    bool            // results marked call-scoped ("return")
}

// Annotations is the module-wide annotation index, keyed by
// "<pkgpath>.<funcname>" (methods by bare method name: the contract is per
// package and name, shared by a concrete method and the interfaces that
// describe it).
type Annotations struct {
	aliases map[string]*aliasSpec
}

func newAnnotations() *Annotations {
	return &Annotations{aliases: make(map[string]*aliasSpec)}
}

// aliasesFor returns the alias spec for a callee key, or nil.
func (a *Annotations) aliasesFor(key string) *aliasSpec {
	if a == nil {
		return nil
	}
	return a.aliases[key]
}

// annKey builds the index key for a function name in a package.
func annKey(pkgPath, name string) string { return pkgPath + "." + name }

// collectAnnotations parses the pass's files for contract annotations,
// recording hotpath roots on the pass and alias specs into the shared
// module index. Malformed annotations are reported and ignored.
func (p *Pass) collectAnnotations(shared *Annotations) {
	p.hotpath = make(map[*ast.FuncDecl]bool)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				p.collectFuncAnnotations(shared, d, d.Name.Name, d.Type, d.Doc)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					for _, m := range it.Methods.List {
						ft, ok := m.Type.(*ast.FuncType)
						if !ok || len(m.Names) == 0 {
							continue
						}
						p.collectFuncAnnotations(shared, nil, m.Names[0].Name, ft, m.Doc)
					}
				}
			}
		}
	}
}

// collectFuncAnnotations handles one function or interface-method doc
// comment. fd is nil for interface methods (which cannot be hotpath roots:
// there is no body to check).
func (p *Pass) collectFuncAnnotations(shared *Annotations, fd *ast.FuncDecl, name string, ft *ast.FuncType, doc *ast.CommentGroup) {
	if doc == nil {
		return
	}
	for _, c := range doc.List {
		switch {
		case strings.HasPrefix(c.Text, hotpathPrefix):
			rest := strings.TrimPrefix(c.Text, hotpathPrefix)
			rest = strings.TrimSpace(strings.TrimPrefix(rest, ":"))
			if len(rest) < 10 {
				p.Report(c, "annotation",
					fmt.Sprintf("//lint:hotpath on %s requires a justification", name),
					"write //lint:hotpath: <why this path must stay allocation-free>")
				continue
			}
			if fd == nil || fd.Body == nil {
				p.Report(c, "annotation",
					fmt.Sprintf("//lint:hotpath on %s has no body to check", name),
					"annotate the concrete implementation instead")
				continue
			}
			p.hotpath[fd] = true

		case strings.HasPrefix(c.Text, aliasesPrefix):
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, aliasesPrefix))
			names, why := splitDirective(rest)
			if len(strings.TrimSpace(why)) < 10 {
				p.Report(c, "annotation",
					fmt.Sprintf("//lint:aliases on %s requires a justification", name),
					"write //lint:aliases <param|return>: <what aliases what, and why>")
				continue
			}
			spec := &aliasSpec{params: make(map[string]bool)}
			bad := false
			for _, n := range strings.Split(names, ",") {
				n = strings.TrimSpace(n)
				if n == "" {
					continue
				}
				if n == "return" {
					if ft.Results == nil || len(ft.Results.List) == 0 {
						p.Report(c, "annotation",
							fmt.Sprintf("//lint:aliases return on %s, which has no results", name), "")
						bad = true
						break
					}
					spec.ret = true
					continue
				}
				if !paramExists(ft, n) {
					p.Report(c, "annotation",
						fmt.Sprintf("//lint:aliases names %q, not a parameter of %s", n, name),
						"name a parameter or `return`")
					bad = true
					break
				}
				spec.params[n] = true
			}
			if bad || (len(spec.params) == 0 && !spec.ret) {
				if !bad {
					p.Report(c, "annotation",
						fmt.Sprintf("//lint:aliases on %s names nothing", name),
						"name a parameter or `return`")
				}
				continue
			}
			// Positional walk keeps idx sorted and deterministic.
			pi := 0
			if ft.Params != nil {
				for _, pf := range ft.Params.List {
					for _, id := range pf.Names {
						if spec.params[id.Name] {
							spec.idx = append(spec.idx, pi)
						}
						pi++
					}
					if len(pf.Names) == 0 {
						pi++
					}
				}
			}
			key := annKey(p.PkgPath, name)
			if prev := shared.aliases[key]; prev != nil && !sameAliasSpec(prev, spec) {
				p.Report(c, "annotation",
					fmt.Sprintf("conflicting //lint:aliases contracts for %s in this package", name),
					"same-named functions in one package share one aliasing contract")
				continue
			}
			shared.aliases[key] = spec
		}
	}
}

func paramExists(ft *ast.FuncType, name string) bool {
	if ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		for _, id := range f.Names {
			if id.Name == name {
				return true
			}
		}
	}
	return false
}

func sameAliasSpec(a, b *aliasSpec) bool {
	if a.ret != b.ret || len(a.params) != len(b.params) {
		return false
	}
	for k := range a.params {
		if !b.params[k] {
			return false
		}
	}
	return true
}
