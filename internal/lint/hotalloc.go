package lint

// hotalloc turns PR 5's 0-allocs/op bench budget into a build-time check:
// a function annotated //lint:hotpath, and every same-package function it
// statically calls, must not contain an allocating construct. AllocsPerRun
// tests sample one input shape; this rule covers every branch on every
// build.
//
// Flagged constructs: make/new, &CompositeLit, slice/map/func-typed
// composite literals, closures (FuncLit), append that grows a different
// slice than it reads (non-self append — `b = append(b, ...)` is the
// amortized-owned-buffer idiom and allowed), string concatenation and
// string<->[]byte conversions, calls into known allocating stdlib surfaces
// (fmt, encoding/json, strings.Join/Repeat, sort.Slice*), and interface
// boxing of non-pointer arguments at call sites.
//
// Error paths are cold by definition: allocations inside a return
// statement that produces an error (fmt.Errorf/errors.New and friends)
// and inside panic(...) arguments are exempt — the hot path is the one
// that succeeds.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc checks that //lint:hotpath functions and their same-package
// callees do not allocate.
type HotAlloc struct{}

func (HotAlloc) Name() string { return "hotalloc" }
func (HotAlloc) Doc() string {
	return "//lint:hotpath functions and their static same-package callees must not allocate (error/panic paths exempt)"
}

func (HotAlloc) Check(p *Pass) {
	if len(p.hotpath) == 0 {
		return
	}
	// Index every function declared in this package by its object, so call
	// sites resolve to bodies for the transitive closure.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	// BFS from the annotated roots through same-package static calls.
	// Roots are gathered in file/declaration order (not by ranging the
	// hotpath map) so chain labels and finding order are deterministic.
	inBudget := make(map[*ast.FuncDecl]string) // decl -> root chain label
	var queue, order []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && p.hotpath[fd] {
				inBudget[fd] = fd.Name.Name
				queue = append(queue, fd)
				order = append(order, fd)
			}
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		inspectOwn(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var obj types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				obj = p.Info.Uses[fun]
			case *ast.SelectorExpr:
				obj = p.Info.Uses[fun.Sel]
			}
			if callee := decls[obj]; callee != nil {
				if _, seen := inBudget[callee]; !seen {
					inBudget[callee] = inBudget[fd] + " → " + callee.Name.Name
					queue = append(queue, callee)
					order = append(order, callee)
				}
			}
			return true
		})
	}
	for _, fd := range order {
		checkHotBody(p, fd, inBudget[fd])
	}
}

// coldZones collects source ranges exempt from the budget: arguments of
// error-producing returns and of panic calls.
func coldZones(p *Pass, body *ast.BlockStmt) [][2]int {
	var zones [][2]int
	producesError := func(e ast.Expr) bool {
		t := p.TypeOf(e)
		if t == nil {
			return false
		}
		if tup, ok := t.(*types.Tuple); ok && tup.Len() > 0 {
			t = tup.At(tup.Len() - 1).Type()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
	}
	inspectOwn(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, e := range s.Results {
				if call, ok := e.(*ast.CallExpr); ok && producesError(call) {
					zones = append(zones, [2]int{int(s.Pos()), int(s.End())})
					break
				}
			}
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					zones = append(zones, [2]int{int(s.Pos()), int(s.End())})
				}
			}
		}
		return true
	})
	return zones
}

func checkHotBody(p *Pass, fd *ast.FuncDecl, chain string) {
	zones := coldZones(p, fd.Body)
	cold := func(n ast.Node) bool {
		pos := int(n.Pos())
		for _, z := range zones {
			if pos >= z[0] && pos < z[1] {
				return true
			}
		}
		return false
	}
	report := func(n ast.Node, what string) {
		if cold(n) {
			return
		}
		p.Report(n, "hotalloc",
			fmt.Sprintf("%s in hot path %s", what, chain),
			"hoist the allocation to setup, reuse a scratch buffer, or drop the //lint:hotpath annotation")
	}
	// selfAppendOK marks append calls of the owned-buffer idiom
	// `x = append(x, ...)` (same root on both sides).
	selfAppendOK := make(map[*ast.CallExpr]bool)
	inspectOwn(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(p, call) || i >= len(as.Lhs) || len(call.Args) == 0 {
				continue
			}
			l, r := rootObject(p, as.Lhs[i]), aliasRoot(p, call.Args[0])
			if l != nil && l == r {
				selfAppendOK[call] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// The literal itself is the allocation; its body runs outside
			// this function's budget (it has no annotation of its own).
			report(x, "closure allocation (FuncLit)")
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := x.X.(*ast.CompositeLit); isLit {
					report(x, "&composite-literal heap allocation")
				}
			}
		case *ast.CompositeLit:
			if t := p.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(x, "slice/map composite-literal allocation")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := p.Info.Types[x]; ok && tv.Value == nil && tv.Type != nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(x, "string concatenation allocation")
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(p, x, report, selfAppendOK)
		}
		return true
	})
}

// allocPkgs are stdlib surfaces that allocate on essentially every call.
var allocPkgs = map[string]string{
	"fmt":           "fmt call",
	"encoding/json": "encoding/json call",
}

var allocFuncs = map[string]string{
	"strings.Join":     "strings.Join allocation",
	"strings.Repeat":   "strings.Repeat allocation",
	"sort.Slice":       "sort.Slice allocation (boxes the closure)",
	"sort.SliceStable": "sort.SliceStable allocation (boxes the closure)",
}

func checkHotCall(p *Pass, call *ast.CallExpr, report func(ast.Node, string), selfAppendOK map[*ast.CallExpr]bool) {
	// Builtins: make/new always allocate; append allocates unless it is
	// the self-append owned-buffer idiom.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				report(call, id.Name+" allocation")
			case "append":
				if !selfAppendOK[call] {
					report(call, "append into a slice it does not own (growth allocates)")
				}
			}
			return
		}
	}
	// Conversions string([]byte) / []byte(string) copy.
	if t := conversionTarget(p, call); t != nil && len(call.Args) == 1 {
		from := p.TypeOf(call.Args[0])
		if isStringType(t) && isByteSlice(from) || isByteSlice(t) && isStringType(from) {
			report(call, "string<->[]byte conversion copy")
			return
		}
	}
	// Known allocating stdlib calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
			pkg := obj.Pkg().Path()
			if what, bad := allocPkgs[pkg]; bad {
				report(call, what)
				return
			}
			if what, bad := allocFuncs[pkg+"."+obj.Name()]; bad {
				report(call, what)
				return
			}
		}
	}
	// Interface boxing: a non-pointer concrete argument passed to an
	// interface parameter escapes to the heap.
	sig, ok := p.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		if sig.Variadic() && i >= np-1 {
			if s, okS := sig.Params().At(np - 1).Type().(*types.Slice); okS {
				param = s.Elem()
			}
		} else if i < np {
			param = sig.Params().At(i).Type()
		}
		if param == nil {
			continue
		}
		if _, isIface := param.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.TypeOf(arg)
		if at == nil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map:
			continue // pointer-shaped: boxing is allocation-free
		case *types.Basic:
			if at.Underlying().(*types.Basic).Kind() == types.UntypedNil {
				continue
			}
		}
		report(arg, "interface boxing of a non-pointer value")
	}
}

func conversionTarget(p *Pass, call *ast.CallExpr) types.Type {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return tv.Type
	}
	return nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
