package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags statement-position calls whose error result vanishes: the
// checkpoint/resume and dataset paths depend on I/O errors actually
// propagating (a dropped Save error means a silent half-written study).
// Explicit discards (`_ = f()`) stay legal — they are visible in review —
// as do calls that cannot fail by contract: fmt printing to
// stdout/stderr/in-memory buffers and *bytes.Buffer / *strings.Builder
// methods, whose error results are documented always-nil.
type ErrDrop struct{}

func (ErrDrop) Name() string { return "errdrop" }
func (ErrDrop) Doc() string {
	return "flag discarded error returns outside the always-nil allowlist (fmt to stdout, in-memory buffers)"
}

func (ErrDrop) Check(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			t := p.TypeOf(call)
			if t == nil || !returnsError(t) {
				return true
			}
			if errDropAllowed(p, call) {
				return true
			}
			p.Report(call, "errdrop",
				fmt.Sprintf("error returned by %s is discarded", callName(call)),
				"handle the error (return/wrap/log-and-degrade) or assign `_ =` with a comment saying why it is safe")
			return true
		})
	}
}

// returnsError reports whether a call result type includes error.
func returnsError(t types.Type) bool {
	if isErrorType(t) {
		return true
	}
	tup, ok := t.(*types.Tuple)
	if !ok {
		return false
	}
	for i := 0; i < tup.Len(); i++ {
		if isErrorType(tup.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// errDropAllowed applies the always-nil allowlist.
func errDropAllowed(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	obj := p.Info.Uses[sel.Sel]

	// Methods on in-memory buffers never return a non-nil error.
	if s := p.Info.Selections[sel]; s != nil {
		if named, ok := derefNamed(s.Recv()); ok && named.Obj().Pkg() != nil {
			pkgName := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if pkgName == "bytes.Buffer" || pkgName == "strings.Builder" {
				return true
			}
		}
		return false
	}

	// Package-level fmt calls.
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		if strings.HasPrefix(name, "Print") {
			return true // implicit stdout: conventional in CLIs
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return safeWriter(p, call.Args[0])
		}
	}
	return false
}

// safeWriter reports whether the fmt.Fprint* destination cannot meaningfully
// fail: os.Stdout/os.Stderr or an in-memory buffer.
func safeWriter(p *Pass, w ast.Expr) bool {
	if sel, ok := w.(*ast.SelectorExpr); ok {
		if obj := p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" &&
			(obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return true
		}
	}
	if named, ok := derefNamed(p.TypeOf(w)); ok && named.Obj().Pkg() != nil {
		pkgName := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		return pkgName == "bytes.Buffer" || pkgName == "strings.Builder"
	}
	return false
}

// callName renders the called expression for the message.
func callName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
