package lint

// fsyncorder enforces the WAL sealing contract statically: an atomic
// rename only makes data durable if the temp file was fsynced before the
// rename and the directory is fsynced after it. PR 6 centralized the
// sequence in internal/durable (WriteFileAtomic, Rename+SyncDir, the
// injectable fsync seam); the rule has two layers:
//
//  1. Outside a durable package, calling os.Rename directly is itself the
//     finding — every atomic-replace in this codebase must go through the
//     helpers, or the fsync gets forgotten exactly once (it did: the
//     analysis checkpoint rewrite and dataset.Save both renamed without a
//     sync until this rule flagged them).
//  2. Inside a durable package (import path ending /durable, where direct
//     os.Rename is the implementation), two flow checks run per function
//     that opens a writable file: a must-forward analysis proving a
//     File.Sync (or fsync-seam call) dominates the rename on every path,
//     and a may-backward analysis proving a SyncDir is reachable after it
//     (may, not must: rename-error paths legitimately return early).

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// FsyncOrder checks the fsync→rename→dirsync durability ordering.
type FsyncOrder struct{}

func (FsyncOrder) Name() string { return "fsyncorder" }
func (FsyncOrder) Doc() string {
	return "os.Rename must go through internal/durable; inside durable, Sync must dominate the rename and SyncDir must follow it"
}

// isPkgFunc reports whether call is pkgPath.name.
func isPkgFunc(p *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// opensWritableFile reports whether call is os.Create or os.OpenFile.
func opensWritableFile(p *Pass, call *ast.CallExpr) bool {
	return isPkgFunc(p, call, "os", "Create") || isPkgFunc(p, call, "os", "OpenFile")
}

func (FsyncOrder) Check(p *Pass) {
	inDurable := strings.HasSuffix(p.PkgPath, "/durable") || p.PkgPath == "durable"
	for _, f := range p.Files {
		for _, body := range functionBodies(f) {
			if inDurable {
				checkDurableRename(p, body)
			} else {
				inspectOwn(body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || !isPkgFunc(p, call, "os", "Rename") {
						return true
					}
					p.Report(call, "fsyncorder",
						"os.Rename here skips the fsync-before/dirsync-after the durability contract requires",
						"use durable.WriteFileAtomic or durable.Rename")
					return true
				})
			}
		}
	}
}

// fileFact is the forward fact namespace: "open:<var>" a writable file var,
// "sync:<var>" that file synced with no write since, "path:<var>:<pathvar>"
// links a file var to the path expression it was opened with.
func checkDurableRename(p *Pass, body *ast.BlockStmt) {
	// Gate: only functions that open a writable file themselves are
	// checked for sync dominance — a function renaming a path it did not
	// write (recovery sweeps, the Rename helper itself) has no file handle
	// whose sync state this analysis could track.
	opens := false
	var renames []*ast.CallExpr
	inspectOwn(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if opensWritableFile(p, call) {
				opens = true
			}
			if isPkgFunc(p, call, "os", "Rename") {
				renames = append(renames, call)
			}
		}
		return true
	})
	if len(renames) == 0 {
		return
	}
	g := flowBuild(body, p.Info)

	if opens {
		// Must-forward: does a sync of the opened file dominate each
		// rename of its path?
		fileOf := make(map[types.Object]types.Object) // file var -> path var
		transfer := func(n ast.Node, in flowFacts) flowFacts {
			as, ok := n.(*ast.AssignStmt)
			if ok && len(as.Rhs) == 1 {
				if call, isCall := as.Rhs[0].(*ast.CallExpr); isCall && opensWritableFile(p, call) && len(as.Lhs) > 0 {
					fobj := aliasRoot(p, as.Lhs[0])
					if fobj != nil {
						in["open:"+objKey(fobj)] = true
						delete(in, "sync:"+objKey(fobj))
						if len(call.Args) > 0 {
							if pobj := aliasRoot(p, call.Args[0]); pobj != nil {
								fileOf[pobj] = fobj
							}
						}
					}
					return in
				}
			}
			inspectOwn(n, func(m ast.Node) bool {
				call, isCall := m.(*ast.CallExpr)
				if !isCall {
					return true
				}
				if fobj := syncedFile(p, call); fobj != nil {
					in["sync:"+objKey(fobj)] = true
					return true
				}
				// Any other use of an open file var (Write, a bufio wrap,
				// passing it on) invalidates its synced state.
				for _, arg := range call.Args {
					if fobj := aliasRoot(p, arg); fobj != nil && in["open:"+objKey(fobj)] {
						delete(in, "sync:"+objKey(fobj))
					}
				}
				if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
					if fobj := aliasRoot(p, sel.X); fobj != nil && in["open:"+objKey(fobj)] {
						if name := sel.Sel.Name; name != "Close" && name != "Name" && name != "Sync" {
							delete(in, "sync:"+objKey(fobj))
						}
					}
				}
				return true
			})
			return in
		}
		must := flowForward(g, nil, transfer, false)
		must.Walk(func(n ast.Node, at flowFacts) {
			inspectOwn(n, func(m ast.Node) bool {
				call, isCall := m.(*ast.CallExpr)
				if !isCall || !isPkgFunc(p, call, "os", "Rename") || len(call.Args) == 0 {
					return true
				}
				pobj := aliasRoot(p, call.Args[0])
				fobj := fileOf[pobj]
				if fobj == nil {
					return true
				}
				if !at["sync:"+objKey(fobj)] {
					p.Report(call, "fsyncorder",
						"renaming "+types.ExprString(call.Args[0])+" is not dominated by a Sync of the file written to it",
						"call the fsync seam (or f.Sync) after the last write, before the rename")
				}
				return true
			})
		})
	}

	// May-backward: after each rename, is a SyncDir reachable on some
	// path? (Error paths may return early; the success path must sync.)
	back := flowBackward(g, nil, func(n ast.Node, in flowFacts) flowFacts {
		inspectOwn(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && isSyncDirCall(p, call) {
				in["dirsync"] = true
			}
			return true
		})
		return in
	}, true)
	reported := make(map[*ast.CallExpr]bool)
	back.Walk(func(n ast.Node, at flowFacts) {
		inspectOwn(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || !isPkgFunc(p, call, "os", "Rename") || reported[call] {
				return true
			}
			if !at["dirsync"] {
				reported[call] = true
				p.Report(call, "fsyncorder",
					"no SyncDir is reachable after this rename — the entry may vanish on power loss",
					"SyncDir(filepath.Dir(newpath)) on the success path")
			}
			return true
		})
	})
}

// syncedFile recognizes f.Sync() (os.File method) and fsync-seam calls
// (any func(*os.File) error applied to f), returning the file object.
func syncedFile(p *Pass, call *ast.CallExpr) types.Object {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		obj := p.Info.Uses[sel.Sel]
		if obj != nil && obj.Name() == "Sync" && obj.Pkg() != nil && obj.Pkg().Path() == "os" {
			return aliasRoot(p, sel.X)
		}
	}
	if len(call.Args) != 1 {
		return nil
	}
	sig, ok := p.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return nil
	}
	pt, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := pt.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "File" || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "os" {
		return nil
	}
	return aliasRoot(p, call.Args[0])
}

// isSyncDirCall recognizes SyncDir / durable.SyncDir calls by name.
func isSyncDirCall(p *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "SyncDir"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "SyncDir"
	}
	return false
}

// objKey gives a stable per-function fact key for an object.
func objKey(o types.Object) string {
	return o.Name() + "#" + strconv.Itoa(int(o.Pos()))
}
