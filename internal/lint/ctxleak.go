package lint

// ctxleak enforces the supervision-tree contract of the long-running
// subsystems: a goroutine spawned inside internal/monitor, internal/serve,
// or internal/probe must observe a cancellation signal on some path — a
// context.Context value, or a channel receive (a closed work/done channel
// is the other shutdown idiom here). A goroutine observing neither can
// outlive its supervisor, which is exactly the leak the -race SIGTERM soak
// hunts for dynamically; this rule refuses it at build time.
//
// Resolution is one level deep: a `go` of a function literal scans the
// literal (and the call's arguments); a `go` of a same-package function
// scans that function's body. A cross-package spawn is judged by its
// arguments only — passing a ctx or a channel counts.

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxLeak checks that goroutines in supervised packages observe a
// ctx/done signal.
type CtxLeak struct{}

func (CtxLeak) Name() string { return "ctxleak" }
func (CtxLeak) Doc() string {
	return "goroutines spawned in monitor/serve/probe must observe a ctx or done channel on some path"
}

// ctxLeakPkgs are the supervised subsystems (plus fixtures).
func ctxLeakApplies(pkgPath string) bool {
	if strings.HasPrefix(pkgPath, "fixture/") {
		pkgPath = strings.TrimPrefix(pkgPath, "fixture/")
	}
	switch pkgPath[strings.LastIndex(pkgPath, "/")+1:] {
	case "monitor", "serve", "probe", "ctxleak":
		return true
	}
	return false
}

func (CtxLeak) Check(p *Pass) {
	if !ctxLeakApplies(p.PkgPath) {
		return
	}
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goObservesSignal(p, g, decls) {
				return true
			}
			p.Report(g, "ctxleak",
				"this goroutine observes no ctx or done channel — it can outlive its supervisor",
				"select on ctx.Done() (or range a closable channel) in its loop")
			return true
		})
	}
}

// goObservesSignal reports whether the spawned goroutine can see a
// cancellation signal.
func goObservesSignal(p *Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) bool {
	// A ctx or channel handed to the call is the caller's declaration that
	// the callee observes it.
	for _, arg := range g.Call.Args {
		if t := p.TypeOf(arg); t != nil && (isContextType(t) || isChanType(t)) {
			return true
		}
	}
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return bodyObservesSignal(p, fun.Body)
	case *ast.Ident:
		if fd := decls[p.Info.Uses[fun]]; fd != nil {
			return bodyObservesSignal(p, fd.Body)
		}
	case *ast.SelectorExpr:
		if fd := decls[p.Info.Uses[fun.Sel]]; fd != nil {
			return bodyObservesSignal(p, fd.Body)
		}
		// Receiver carrying a ctx/done the method observes is beyond this
		// analysis; a method value spawn with no signal argument is
		// flagged and justified case by case.
	}
	return false
}

// bodyObservesSignal scans a body (including nested literals — helpers the
// goroutine itself runs) for a context reference or a channel receive.
func bodyObservesSignal(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if t := p.TypeOf(x); t != nil && isContextType(t) {
				found = true
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(x.X); t != nil && isChanType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
