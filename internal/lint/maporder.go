package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags `for range` over a map whose body makes iteration order
// observable — appending to a slice that is never sorted afterwards in the
// same function, writing to a writer/encoder, or emitting metrics. Go
// randomizes map iteration order per run, so any of these turns a snapshot,
// report, or metrics dump nondeterministic: the classic way the golden
// same-seed test gets broken. The accepted shape is collect-then-sort:
// append keys or rows inside the loop and sort them before anything is
// emitted.
type MapOrder struct{}

func (MapOrder) Name() string { return "maporder" }
func (MapOrder) Doc() string {
	return "flag map iteration whose order escapes (unsorted append, writer/encoder writes, metric emits)"
}

// emitMethods are method names that make iteration order observable when
// called inside a map-range body.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// metricEmitMethods are the internal/metrics mutation methods.
var metricEmitMethods = map[string]bool{
	"Inc": true, "Add": true, "Set": true, "Observe": true,
}

func (MapOrder) Check(p *Pass) {
	for _, f := range p.Files {
		for _, body := range functionBodies(f) {
			checkBodyMapOrder(p, body)
		}
	}
}

// functionBodies returns every function body in the file: top-level
// declarations plus function literals, each analyzed independently.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			out = append(out, fn.Body)
		}
		return true
	})
	return out
}

// inspectOwn walks n but does not descend into nested function literals;
// their bodies are analyzed as functions in their own right.
func inspectOwn(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return fn(m)
	})
}

func checkBodyMapOrder(p *Pass, body *ast.BlockStmt) {
	inspectOwn(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(p, body, rng)
		return true
	})
}

// checkMapRange inspects one map-range loop for order-escaping operations.
func checkMapRange(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	inspectOwn(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(stmt.Lhs) {
					continue
				}
				target := rootObject(p, stmt.Lhs[i])
				if target == nil {
					continue
				}
				if sortedAfter(p, fnBody, rng, target) {
					continue
				}
				p.Report(call, "maporder",
					fmt.Sprintf("append to %q inside map iteration without a post-loop sort makes its order nondeterministic", target.Name()),
					fmt.Sprintf("sort.Slice/sort.Strings %s after the loop (or range over sorted keys)", target.Name()))
			}
		case *ast.CallExpr:
			if name, ok := orderEscapingCall(p, stmt); ok {
				p.Report(stmt, "maporder",
					fmt.Sprintf("%s inside map iteration emits in nondeterministic order", name),
					"collect rows into a slice, sort it after the loop, then emit")
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// rootObject resolves the object an lvalue ultimately writes through: the
// ident itself, or the base of a selector/index chain (out.Rows -> out).
func rootObject(p *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether, after the range loop inside the same
// function body, a sort/slices call references target — directly, or via a
// range-value alias (`for _, s := range target { sort.Ints(s) }`, the
// map-of-slices shape).
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target types.Object) bool {
	// First pass: objects that alias (parts of) the target after the loop.
	aliases := map[types.Object]bool{target: true}
	inspectOwn(fnBody, func(n ast.Node) bool {
		r2, ok := n.(*ast.RangeStmt)
		if !ok || r2.Pos() <= rng.End() || !referencesObject(p, r2.X, target) {
			return true
		}
		if id, ok := r2.Value.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				aliases[obj] = true
			}
		}
		return true
	})
	found := false
	inspectOwn(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		if !isSortCall(p, call) {
			return true
		}
		for _, arg := range call.Args {
			for obj := range aliases {
				if referencesObject(p, arg, obj) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isSortCall reports whether call invokes the sort or slices package.
func isSortCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "sort" || path == "slices"
}

// referencesObject reports whether expr mentions target anywhere.
func referencesObject(p *Pass, expr ast.Expr, target types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == target {
			found = true
		}
		return !found
	})
	return found
}

// orderEscapingCall classifies a call inside a map-range body that emits
// directly: fmt printing, writer/encoder methods, or metrics mutations.
func orderEscapingCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	// fmt.Fprint*/fmt.Print* to any destination.
	if obj := p.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
			return "fmt." + name, true
		}
	}
	// Writer/encoder method calls.
	if emitMethods[name] && p.Info.Selections[sel] != nil {
		return "." + name + " call", true
	}
	// Metrics emits: Inc/Add/Set/Observe on internal/metrics types.
	if metricEmitMethods[name] {
		if s := p.Info.Selections[sel]; s != nil {
			if named, ok := derefNamed(s.Recv()); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "sleepnet/internal/metrics" {
				return "metrics ." + name + " call", true
			}
		}
	}
	return "", false
}

// derefNamed unwraps pointers down to a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x, true
		default:
			return nil, false
		}
	}
}
