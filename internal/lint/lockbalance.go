package lint

// lockbalance enforces the mutex discipline the race job can only sample:
// every sync.Mutex/RWMutex Lock must reach its Unlock on ALL paths out of
// the function (directly or through a defer), and no path may Lock a mutex
// it already holds. It is the first CFG-backed rule: leak detection is a
// may-forward analysis (does any path reach return still holding?), and
// double-lock detection is a must-forward analysis (is the lock held on
// every path into a second Lock?).
//
// Unlock-without-lock is deliberately NOT flagged: the codebase's
// `fooLocked` helpers are called with the lock held by the caller, and
// flagging them would force allows on correct code. Cross-function lock
// protocols stay the race detector's job; this rule owns the per-function
// balance.

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
)

// LockBalance checks that every Lock reaches an Unlock on all paths.
type LockBalance struct{}

func (LockBalance) Name() string { return "lockbalance" }
func (LockBalance) Doc() string {
	return "every mutex Lock must reach Unlock on all paths (defer-aware); double-locking is flagged"
}

// lockOp classifies one sync lock-protocol call.
type lockOp struct {
	call *ast.CallExpr
	key  string // mode:receiver, e.g. "W:e.mu"
	lock bool   // Lock/RLock vs Unlock/RUnlock
}

// syncLockOp recognizes x.Lock/Unlock/RLock/RUnlock where the method
// belongs to package sync (covers Mutex, RWMutex, promoted embeds, and the
// Locker interface).
func syncLockOp(p *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	var mode string
	var lock bool
	switch obj.Name() {
	case "Lock":
		mode, lock = "W", true
	case "Unlock":
		mode, lock = "W", false
	case "RLock":
		mode, lock = "R", true
	case "RUnlock":
		mode, lock = "R", false
	default:
		return lockOp{}, false
	}
	return lockOp{call: call, key: mode + ":" + types.ExprString(sel.X), lock: lock}, true
}

func (LockBalance) Check(p *Pass) {
	for _, f := range p.Files {
		for _, body := range functionBodies(f) {
			checkLockBalance(p, body)
		}
	}
}

func checkLockBalance(p *Pass, body *ast.BlockStmt) {
	// Quick reject: no sync lock calls in this body at all.
	any := false
	inspectOwn(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, isOp := syncLockOp(p, call); isOp {
				any = true
			}
		}
		return !any
	})
	if !any {
		return
	}

	g := flowBuild(body, p.Info)
	// lockSites maps a positioned held-fact back to its Lock call for
	// reporting.
	lockSites := make(map[string]*ast.CallExpr)

	transfer := func(n ast.Node, in flowFacts) flowFacts {
		if d, ok := n.(*ast.DeferStmt); ok {
			// A deferred unlock discharges the hold at every exit from
			// here on: register a D-fact. Both direct `defer mu.Unlock()`
			// and `defer func() { ...mu.Unlock()... }()` count.
			if op, isOp := syncLockOp(p, d.Call); isOp && !op.lock {
				in["D:"+op.key] = true
				return in
			}
			if lit, isLit := d.Call.Fun.(*ast.FuncLit); isLit {
				inspectOwn(lit.Body, func(m ast.Node) bool {
					if call, isCall := m.(*ast.CallExpr); isCall {
						if op, isOp := syncLockOp(p, call); isOp && !op.lock {
							in["D:"+op.key] = true
						}
					}
					return true
				})
			}
			return in
		}
		inspectOwn(n, func(m ast.Node) bool {
			call, isCall := m.(*ast.CallExpr)
			if !isCall {
				return true
			}
			op, isOp := syncLockOp(p, call)
			if !isOp {
				return true
			}
			if op.lock {
				site := "H:" + op.key + "@" + strconv.Itoa(int(call.Pos()))
				lockSites[site] = call
				in[site] = true
				in["h:"+op.key] = true
			} else {
				for k := range in {
					if k == "h:"+op.key || (len(k) > 2 && k[0] == 'H' && matchHeldKey(k, op.key)) {
						delete(in, k)
					}
				}
			}
			return true
		})
		return in
	}

	// May-analysis: a held-fact surviving to Exit on SOME path without a
	// matching deferred unlock is a lock leaked across a return.
	may := flowForward(g, nil, transfer, true)
	atExit := may.AtExit()
	for k := range atExit {
		if len(k) < 2 || k[0] != 'H' {
			continue
		}
		key := heldKeyOf(k)
		if atExit["D:"+key] {
			continue
		}
		call := lockSites[k]
		if call == nil {
			continue
		}
		name := key[2:]
		p.Report(call, "lockbalance",
			fmt.Sprintf("%s is locked here but some path reaches return without unlocking it", name),
			fmt.Sprintf("defer %s.Unlock() right after the Lock, or unlock on every branch", name))
	}

	// Must-analysis: the lock held on EVERY path into another Lock of the
	// same mutex is a guaranteed self-deadlock (sync mutexes are not
	// reentrant).
	must := flowForward(g, nil, transfer, false)
	must.Walk(func(n ast.Node, at flowFacts) {
		inspectOwn(n, func(m ast.Node) bool {
			call, isCall := m.(*ast.CallExpr)
			if !isCall {
				return true
			}
			op, isOp := syncLockOp(p, call)
			if !isOp || !op.lock {
				return true
			}
			if at["h:"+op.key] && !at["D:"+op.key] {
				name := op.key[2:]
				p.Report(call, "lockbalance",
					fmt.Sprintf("%s is already held on every path reaching this Lock — this deadlocks", name),
					"unlock first, or split the critical section")
			}
			return true
		})
	})
}

// matchHeldKey reports whether positioned held-fact k ("H:W:e.mu@123")
// refers to lock key ("W:e.mu").
func matchHeldKey(k, key string) bool {
	body := heldKeyOf(k)
	return body == key
}

// heldKeyOf strips the "H:" prefix and "@pos" suffix of a held-fact.
func heldKeyOf(k string) string {
	body := k[2:]
	for i := len(body) - 1; i >= 0; i-- {
		if body[i] == '@' {
			return body[:i]
		}
	}
	return body
}
