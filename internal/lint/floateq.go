package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between two non-constant float operands outside
// tests. Availability fractions, FFT magnitudes, and correlation
// coefficients all accumulate rounding error, so exact equality silently
// flips near boundaries; the stats package's epsilon helpers
// (stats.ApproxEqual / stats.ApproxEqualTol) are the intended comparison.
// Comparisons against a constant (v == 0 sentinel checks) and the x != x
// NaN idiom stay legal: both are exact by construction.
type FloatEq struct{}

func (FloatEq) Name() string { return "floateq" }
func (FloatEq) Doc() string {
	return "flag ==/!= between non-constant floats outside tests; use stats.ApproxEqual"
}

func (FloatEq) Check(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, okx := p.Info.Types[be.X]
			ty, oky := p.Info.Types[be.Y]
			if !okx || !oky {
				return true
			}
			// A constant operand compares exactly (v == 0 defaults checks).
			if tx.Value != nil || ty.Value != nil {
				return true
			}
			if !isFloat(tx.Type) || !isFloat(ty.Type) {
				return true
			}
			// x != x is the portable NaN test; leave it alone.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			if p.IsTestFile(be) {
				return true
			}
			p.Report(be, "floateq",
				fmt.Sprintf("%s between computed floats is rounding-fragile", be.Op),
				fmt.Sprintf("use stats.ApproxEqual(%s, %s) (or ApproxEqualTol with an explicit tolerance)",
					types.ExprString(be.X), types.ExprString(be.Y)))
			return true
		})
	}
}

// isFloat reports whether t's core type is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
