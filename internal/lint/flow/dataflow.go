package flow

// dataflow.go — a small worklist engine over the CFG. Facts are named set
// elements ("H:e.mu@1234", "synced"); analyses are forward or backward,
// with union merge (may: the fact holds on SOME path) or intersection
// merge (must: the fact holds on EVERY path). That is exactly enough
// lattice for the lint rules: lock-held sets, sync-before-rename
// dominance, reachability of a directory sync.

import "go/ast"

// Facts is a set of dataflow facts. A nil Facts is ⊤ (unknown/unvisited),
// distinct from an empty set.
type Facts map[string]bool

// Clone copies the set (nil stays nil).
func (f Facts) Clone() Facts {
	if f == nil {
		return nil
	}
	out := make(Facts, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// Equal reports set equality; nil equals only nil.
func (f Facts) Equal(o Facts) bool {
	if (f == nil) != (o == nil) || len(f) != len(o) {
		return false
	}
	for k := range f {
		if !o[k] {
			return false
		}
	}
	return true
}

// Transfer applies one node's effect to the incoming facts and returns the
// outgoing facts. It may mutate and return in (the engine clones between
// blocks).
type Transfer func(n ast.Node, in Facts) Facts

// Result is the fixpoint of one analysis: the facts at the start of each
// block (for forward analyses) or at the end (for backward ones).
type Result struct {
	g        *Graph
	transfer Transfer
	union    bool
	backward bool
	// at[i] is the facts entering block i in analysis direction: block
	// start for forward, block end for backward. nil = unreachable/⊤.
	at []Facts
}

// merge combines two fact sets under the analysis's lattice; nil is ⊤ and
// is the identity for intersection, absorbing for union only in the sense
// that unreachable paths contribute nothing.
func (r *Result) merge(a, b Facts) Facts {
	if a == nil {
		return b.Clone()
	}
	if b == nil {
		return a
	}
	if r.union {
		for k := range b {
			a[k] = true
		}
		return a
	}
	for k := range a {
		if !b[k] {
			delete(a, k)
		}
	}
	return a
}

// applyBlock runs the transfer across a block's nodes (in direction order)
// starting from in, returning the out facts.
func (r *Result) applyBlock(blk *Block, in Facts) Facts {
	out := in.Clone()
	if out == nil {
		return nil
	}
	if r.backward {
		for i := len(blk.Nodes) - 1; i >= 0; i-- {
			out = r.transfer(blk.Nodes[i], out)
		}
	} else {
		for _, n := range blk.Nodes {
			out = r.transfer(n, out)
		}
	}
	return out
}

// run executes the worklist to fixpoint.
func run(g *Graph, entry Facts, t Transfer, union, backward bool) *Result {
	r := &Result{g: g, transfer: t, union: union, backward: backward,
		at: make([]Facts, len(g.Blocks))}
	start := g.Entry
	if backward {
		start = g.Exit
	}
	if entry == nil {
		entry = Facts{}
	}
	r.at[start.Index] = entry.Clone()
	work := []*Block{start}
	inWork := make([]bool, len(g.Blocks))
	inWork[start.Index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.Index] = false
		out := r.applyBlock(blk, r.at[blk.Index])
		next := blk.Succs
		if backward {
			next = blk.Preds
		}
		for _, s := range next {
			merged := r.merge(r.at[s.Index].Clone(), out)
			if !merged.Equal(r.at[s.Index]) {
				r.at[s.Index] = merged
				if !inWork[s.Index] {
					work = append(work, s)
					inWork[s.Index] = true
				}
			}
		}
	}
	return r
}

// Forward runs a forward analysis from Entry. union selects may-semantics
// (fact holds on some path); !union selects must-semantics (fact holds on
// every path).
func Forward(g *Graph, entry Facts, t Transfer, union bool) *Result {
	return run(g, entry, t, union, false)
}

// Backward runs a backward analysis from Exit; at-Exit facts flow toward
// Entry through reversed edges and reversed node order.
func Backward(g *Graph, exit Facts, t Transfer, union bool) *Result {
	return run(g, exit, t, union, true)
}

// Walk calls fn for every node with the facts holding immediately before
// it in analysis direction (before = above for forward, below for
// backward). Unreachable blocks (⊤) are skipped: no path reaches them, so
// no path-sensitive claim about them is sound.
func (r *Result) Walk(fn func(n ast.Node, at Facts)) {
	for _, blk := range r.g.Blocks {
		facts := r.at[blk.Index]
		if facts == nil {
			continue
		}
		facts = facts.Clone()
		if r.backward {
			for i := len(blk.Nodes) - 1; i >= 0; i-- {
				fn(blk.Nodes[i], facts)
				facts = r.transfer(blk.Nodes[i], facts)
			}
		} else {
			for _, n := range blk.Nodes {
				fn(n, facts)
				facts = r.transfer(n, facts)
			}
		}
	}
}

// AtExit returns the facts reaching the Exit block (forward analyses).
func (r *Result) AtExit() Facts { return r.at[r.g.Exit.Index] }
