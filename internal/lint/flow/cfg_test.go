package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src (a file body containing one function named f) and
// builds its CFG. Types info is nil: the tests exercise pure structure,
// and the builder treats unshadowed panic as terminal without it.
func buildFunc(t *testing.T, src string) (*token.FileSet, *Graph) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package t\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fset, Build(fd.Body, nil)
		}
	}
	t.Fatalf("no func f in src")
	return nil, nil
}

// blockWith finds the block containing a node whose source line contains
// marker (via the fset line of the node's position).
func blockWith(t *testing.T, fset *token.FileSet, g *Graph, src, marker string) *Block {
	t.Helper()
	wantLine := 0
	for i, l := range strings.Split("package t\n"+src, "\n") {
		if strings.Contains(l, marker) {
			wantLine = i + 1
			break
		}
	}
	if wantLine == 0 {
		t.Fatalf("marker %q not in src", marker)
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if fset.Position(n.Pos()).Line == wantLine {
				return b
			}
		}
	}
	t.Fatalf("no block holds a node on line %d (%q)", wantLine, marker)
	return nil
}

// reaches reports whether to is reachable from from over Succs edges.
func reaches(from, to *Block) bool {
	seen := make(map[*Block]bool)
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

func TestIfElseJoins(t *testing.T) {
	src := `
func f(c bool) {
	x := 0 // init
	if c {
		x = 1 // then
	} else {
		x = 2 // else
	}
	_ = x // after
}`
	fset, g := buildFunc(t, src)
	then := blockWith(t, fset, g, src, "// then")
	els := blockWith(t, fset, g, src, "// else")
	after := blockWith(t, fset, g, src, "// after")
	if !reaches(then, after) || !reaches(els, after) {
		t.Fatalf("both branches must reach the join")
	}
	if reaches(then, els) || reaches(els, then) {
		t.Fatalf("branches must be exclusive")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Fatalf("entry must reach exit")
	}
}

func TestForLoopBackEdgeAndExit(t *testing.T) {
	src := `
func f(n int) {
	s := 0
	for i := 0; i < n; i++ {
		s += i // body
	}
	_ = s // after
}`
	fset, g := buildFunc(t, src)
	body := blockWith(t, fset, g, src, "// body")
	after := blockWith(t, fset, g, src, "// after")
	if !reaches(body, body) {
		t.Fatalf("loop body must reach itself again (back edge through post+head)")
	}
	if !reaches(body, after) {
		t.Fatalf("the loop must be exitable to the after block")
	}
	if !reaches(g.Entry, after) {
		t.Fatalf("zero-iteration path must reach the after block")
	}
}

func TestInfiniteLoopWithoutBreakDoesNotFallThrough(t *testing.T) {
	src := `
func f() {
	for {
		_ = 1 // body
	}
}`
	fset, g := buildFunc(t, src)
	body := blockWith(t, fset, g, src, "// body")
	if reaches(body, g.Exit) {
		t.Fatalf("for{} with no break/return must not reach exit")
	}
}

func TestLabeledBreakAndContinue(t *testing.T) {
	src := `
func f(xs [][]int) {
outer:
	for _, row := range xs {
		for _, v := range row {
			if v < 0 {
				_ = v // preCont
				continue outer
			}
			if v == 0 {
				_ = v // preBrk
				break outer
			}
			_ = v // inner
		}
		_ = row // innerAfter
	}
	_ = xs // after
}`
	fset, g := buildFunc(t, src)
	preBrk := blockWith(t, fset, g, src, "// preBrk")
	preCont := blockWith(t, fset, g, src, "// preCont")
	after := blockWith(t, fset, g, src, "// after")
	innerAfter := blockWith(t, fset, g, src, "// innerAfter")
	// break outer jumps past both loops: it must reach `after` without
	// passing the outer loop's trailing body statement.
	if !reaches(preBrk, after) {
		t.Fatalf("break outer must reach the statement after the outer loop")
	}
	if reaches(preBrk, innerAfter) {
		t.Fatalf("break outer must not re-enter the outer loop body")
	}
	// continue outer re-enters the outer range head: the outer body stays
	// reachable on the next iteration.
	if !reaches(preCont, innerAfter) {
		t.Fatalf("continue outer must allow the next outer iteration")
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	src := `
func f(c bool) {
	i := 0
top:
	i++ // top
	if c {
		goto done
	}
	goto top
done:
	_ = i // done
}`
	fset, g := buildFunc(t, src)
	top := blockWith(t, fset, g, src, "// top")
	done := blockWith(t, fset, g, src, "// done")
	if !reaches(top, done) {
		t.Fatalf("forward goto must reach its label")
	}
	if !reaches(top, top) {
		// reaches() from a node to itself requires an actual cycle.
		t.Fatalf("backward goto must form a loop")
	}
}

func TestSelectWithoutDefaultBlocks(t *testing.T) {
	src := `
func f(a, b chan int) {
	select {
	case <-a:
		_ = 1 // caseA
	case <-b:
		_ = 2 // caseB
	}
	_ = 3 // after
}`
	fset, g := buildFunc(t, src)
	caseA := blockWith(t, fset, g, src, "// caseA")
	after := blockWith(t, fset, g, src, "// after")
	if !reaches(caseA, after) {
		t.Fatalf("a taken case must reach the statement after select")
	}
	// Without a default, every path into `after` goes through some case.
	for _, pred := range after.Preds {
		hasComm := false
		for _, n := range pred.Nodes {
			if _, ok := n.(ast.Stmt); ok {
				hasComm = true
			}
		}
		if !hasComm && pred != g.Entry {
			t.Fatalf("select without default must not bypass its cases")
		}
	}
}

func TestSelectWithDefaultPassesThrough(t *testing.T) {
	src := `
func f(a chan int) {
	select {
	case <-a:
		_ = 1 // caseA
	default:
		_ = 2 // dflt
	}
	_ = 3 // after
}`
	fset, g := buildFunc(t, src)
	dflt := blockWith(t, fset, g, src, "// dflt")
	after := blockWith(t, fset, g, src, "// after")
	if !reaches(dflt, after) {
		t.Fatalf("default branch must reach after")
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	src := `
func f() {
	_ = 1 // before
	select {}
	_ = 2 // after
}`
	fset, g := buildFunc(t, src)
	before := blockWith(t, fset, g, src, "// before")
	after := blockWith(t, fset, g, src, "// after")
	if reaches(before, after) {
		t.Fatalf("code after select{} must be unreachable")
	}
}

func TestPanicOnlyPathTerminates(t *testing.T) {
	src := `
func f(c bool) {
	if !c {
		panic("no") // panic
	}
	_ = 1 // after
}`
	fset, g := buildFunc(t, src)
	pan := blockWith(t, fset, g, src, "// panic")
	after := blockWith(t, fset, g, src, "// after")
	if reaches(pan, after) {
		t.Fatalf("panic must not fall through to the next statement")
	}
	if !reaches(pan, g.Exit) {
		t.Fatalf("panic path must reach exit (defers still run)")
	}
	if !reaches(g.Entry, after) {
		t.Fatalf("non-panic path must reach the statement after the if")
	}
}

func TestNestedDeferNodesStayInOrder(t *testing.T) {
	src := `
func f() {
	defer one() // d1
	if cond() {
		defer two() // d2
	}
	defer func() {
		three() // d3body
	}()
	_ = 1 // after
}`
	fset, g := buildFunc(t, src)
	d1 := blockWith(t, fset, g, src, "// d1")
	d2 := blockWith(t, fset, g, src, "// d2")
	after := blockWith(t, fset, g, src, "// after")
	if !reaches(d1, d2) || !reaches(d2, after) {
		t.Fatalf("defers must be ordinary nodes along the path")
	}
	// The deferred literal's body is not a separate CFG path of f.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if call, ok := n.(*ast.ExprStmt); ok {
				if fset.Position(call.Pos()).Line == 0 {
					t.Fatalf("unexpected node %v", call)
				}
			}
		}
	}
}

func TestSwitchFallthroughAndNoDefault(t *testing.T) {
	src := `
func f(x int) {
	switch x {
	case 1:
		_ = 1 // c1
		fallthrough
	case 2:
		_ = 2 // c2
	}
	_ = 3 // after
}`
	fset, g := buildFunc(t, src)
	c1 := blockWith(t, fset, g, src, "// c1")
	c2 := blockWith(t, fset, g, src, "// c2")
	after := blockWith(t, fset, g, src, "// after")
	if !reaches(c1, c2) {
		t.Fatalf("fallthrough must connect case 1 to case 2's body")
	}
	if !reaches(c2, after) {
		t.Fatalf("case bodies must reach the join")
	}
	head := blockWith(t, fset, g, src, "switch x")
	direct := false
	for _, s := range head.Succs {
		if s == after {
			direct = true
		}
	}
	if !direct {
		t.Fatalf("switch without default must have a no-match edge to the join")
	}
}

func TestDataflowMayVsMust(t *testing.T) {
	src := `
func f(c bool) {
	if c {
		lock() // lockSite
	}
	_ = 1 // after
}`
	fset, g := buildFunc(t, src)
	lockLine := fset // silence unused in case of refactor
	_ = lockLine
	transfer := func(n ast.Node, in Facts) Facts {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "lock" {
					in["held"] = true
				}
			}
		}
		return in
	}
	may := Forward(g, nil, transfer, true)
	must := Forward(g, nil, transfer, false)
	if !may.AtExit()["held"] {
		t.Fatalf("may-analysis: held must reach exit on some path")
	}
	if must.AtExit()["held"] {
		t.Fatalf("must-analysis: held must NOT hold on every path")
	}
}

func TestBackwardReachability(t *testing.T) {
	src := `
func f(c bool) {
	work() // work
	if c {
		return
	}
	cleanup() // cleanup
}`
	fset, g := buildFunc(t, src)
	transfer := func(n ast.Node, in Facts) Facts {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "cleanup" {
					in["cleaned"] = true
				}
			}
		}
		return in
	}
	res := Backward(g, nil, transfer, true)
	sawWork := false
	res.Walk(func(n ast.Node, at Facts) {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "work" {
					sawWork = true
					if !at["cleaned"] {
						t.Fatalf("backward-may: cleanup is reachable after work on some path")
					}
				}
			}
		}
		_ = fset
	})
	if !sawWork {
		t.Fatalf("work() node not visited")
	}
}
