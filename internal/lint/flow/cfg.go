// Package flow is sleeplint's control-flow layer: a per-function
// control-flow graph over go/ast plus a small worklist dataflow engine
// (dataflow.go). The second-generation lint rules — lock balance, fsync
// ordering, hot-path allocation budgets — are path-sensitive properties
// that a flat ast.Inspect cannot express; this package gives them the
// graph to reason over while staying stdlib-only like the rest of the
// linter.
//
// Granularity is the statement: each basic block holds the simple
// statements and controlling expressions executed straight-line, in
// order, and edges encode branching (if/for/range/switch/select), loop
// back-edges, labeled break/continue, goto, fallthrough, and the two
// function exits — return and panic — which both lead to the synthetic
// Exit block (deferred calls run on either, so rules that model defers
// treat Exit uniformly).
//
// Compound statements are never appended as nodes themselves; only their
// non-branching parts are (an if's init and cond, a for's init/cond/post,
// a switch's tag, a select clause's comm statement), so walking a block's
// Nodes visits each executable piece of the function exactly once.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one basic block: statements (and controlling expressions)
// executed sequentially, then a transfer to one of Succs.
type Block struct {
	// Nodes are the block's statements/expressions in execution order.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Index is the block's position in Graph.Blocks (stable, creation
	// order) — usable as a map-free block key.
	Index int
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	// Exit is the synthetic sink every return, panic, and fall-off-the-end
	// path reaches. It holds no nodes.
	Exit   *Block
	Blocks []*Block
}

// Build constructs the CFG of one function body. info may be nil; when
// present it is used to recognize the panic builtin precisely (shadowed
// `panic` identifiers are then not treated as terminators).
func Build(body *ast.BlockStmt, info *types.Info) *Graph {
	b := &builder{
		g:      &Graph{},
		info:   info,
		labels: make(map[string]*labelInfo),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	b.edgeTo(b.g.Exit)
	// Resolve forward gotos now that every label has a block.
	for _, pg := range b.gotos {
		if li, ok := b.labels[pg.label]; ok {
			addEdge(pg.from, li.block)
		}
	}
	return b.g
}

// labelInfo records a label's entry block and, when the labeled statement
// is a loop or switch, the frame labeled break/continue target.
type labelInfo struct {
	block *Block
	frame *loopFrame
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label   string // "" when unlabeled
	breakTo *Block
	contTo  *Block // nil for switch/select (continue passes through)
	breakOK bool
	contOK  bool
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g      *Graph
	info   *types.Info
	cur    *Block // nil when the current point is unreachable
	frames []*loopFrame
	labels map[string]*labelInfo
	gotos  []pendingGoto
	// pendingLabel is set between a LabeledStmt and the loop/switch it
	// labels, so break/continue with that label resolve to the frame.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func addEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// edgeTo links the current block to next (no-op when unreachable).
func (b *builder) edgeTo(next *Block) {
	if b.cur != nil {
		addEdge(b.cur, next)
	}
}

// startBlock makes next the current block.
func (b *builder) startBlock(next *Block) { b.cur = next }

// append adds a node to the current block, reviving an unreachable point
// as a fresh predecessor-less block so dead code still gets analyzed.
func (b *builder) append(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) pushFrame(f *loopFrame) {
	f.label, b.pendingLabel = b.pendingLabel, ""
	b.frames = append(b.frames, f)
	if f.label != "" {
		if li, ok := b.labels[f.label]; ok {
			li.frame = f
		}
	}
}

func (b *builder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

// findFrame resolves a break/continue target; label "" means innermost.
func (b *builder) findFrame(label string, cont bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label != "" && f.label != label {
			continue
		}
		if cont && !f.contOK {
			continue
		}
		if !cont && !f.breakOK {
			continue
		}
		return f
	}
	return nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.append(s.Init)
		b.append(s.Cond)
		condB := b.cur
		join := b.newBlock()
		thenB := b.newBlock()
		if condB != nil {
			addEdge(condB, thenB)
		}
		b.startBlock(thenB)
		b.stmtList(s.Body.List)
		b.edgeTo(join)
		if s.Else != nil {
			elseB := b.newBlock()
			if condB != nil {
				addEdge(condB, elseB)
			}
			b.startBlock(elseB)
			b.stmt(s.Else)
			b.edgeTo(join)
		} else if condB != nil {
			addEdge(condB, join)
		}
		b.startBlock(join)

	case *ast.ForStmt:
		b.append(s.Init)
		head := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edgeTo(head)
		b.startBlock(head)
		b.append(s.Cond)
		if s.Cond != nil {
			addEdge(head, after)
		}
		body := b.newBlock()
		addEdge(head, body)
		b.pushFrame(&loopFrame{breakTo: after, contTo: post, breakOK: true, contOK: true})
		b.startBlock(body)
		b.stmtList(s.Body.List)
		b.popFrame()
		b.edgeTo(post)
		b.startBlock(post)
		b.append(s.Post)
		b.edgeTo(head)
		b.startBlock(after)

	case *ast.RangeStmt:
		head := b.newBlock()
		after := b.newBlock()
		b.edgeTo(head)
		b.startBlock(head)
		b.append(s.X)
		addEdge(head, after) // the range may be empty
		body := b.newBlock()
		addEdge(head, body)
		b.pushFrame(&loopFrame{breakTo: after, contTo: head, breakOK: true, contOK: true})
		b.startBlock(body)
		b.stmtList(s.Body.List)
		b.popFrame()
		b.edgeTo(head)
		b.startBlock(after)

	case *ast.SwitchStmt:
		b.append(s.Init)
		b.append(s.Tag)
		b.caseClauses(s.Body.List, false)

	case *ast.TypeSwitchStmt:
		b.append(s.Init)
		b.append(s.Assign)
		b.caseClauses(s.Body.List, false)

	case *ast.SelectStmt:
		b.selectClauses(s.Body.List)

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edgeTo(lb)
		b.startBlock(lb)
		b.labels[s.Label.Name] = &labelInfo{block: lb}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(label, false); f != nil {
				b.edgeTo(f.breakTo)
			}
			b.cur = nil
		case token.CONTINUE:
			if f := b.findFrame(label, true); f != nil {
				b.edgeTo(f.contTo)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by caseClauses (it is always the last statement of a
			// clause); nothing to do here.
		}

	case *ast.ReturnStmt:
		b.append(s)
		b.edgeTo(b.g.Exit)
		b.cur = nil

	case *ast.ExprStmt:
		b.append(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.isTerminalCall(call) {
			b.edgeTo(b.g.Exit)
			b.cur = nil
		}

	case nil:
		// e.g. missing init

	default:
		// DeferStmt, GoStmt, AssignStmt, SendStmt, IncDecStmt, DeclStmt,
		// EmptyStmt: straight-line nodes.
		b.append(s)
	}
}

// caseClauses builds the branching structure of a switch body. The head is
// the current block (holding init/tag); every clause forks from it, falls
// to a common join, and a trailing fallthrough jumps to the next clause's
// body instead.
func (b *builder) caseClauses(clauses []ast.Stmt, _ bool) {
	head := b.cur
	join := b.newBlock()
	// Create clause entry blocks up front so fallthrough can target the
	// next clause.
	entries := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		entries[i] = b.newBlock()
		if head != nil {
			addEdge(head, entries[i])
		}
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault && head != nil {
		addEdge(head, join) // no case matched
	}
	b.pushFrame(&loopFrame{breakTo: join, breakOK: true})
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.startBlock(entries[i])
		for _, e := range cc.List {
			b.append(e)
		}
		fallsThrough := false
		bodyList := cc.Body
		if n := len(bodyList); n > 0 {
			if br, ok := bodyList[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				bodyList = bodyList[:n-1]
			}
		}
		b.stmtList(bodyList)
		if fallsThrough && i+1 < len(clauses) {
			b.edgeTo(entries[i+1])
			b.cur = nil
		} else {
			b.edgeTo(join)
		}
	}
	b.popFrame()
	b.startBlock(join)
}

// selectClauses builds a select statement: one branch per comm clause. A
// select with no default blocks until some case is ready, so without a
// default there is no head→join edge; an empty select blocks forever.
func (b *builder) selectClauses(clauses []ast.Stmt) {
	head := b.cur
	join := b.newBlock()
	b.pushFrame(&loopFrame{breakTo: join, breakOK: true})
	for _, c := range clauses {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		entry := b.newBlock()
		if head != nil {
			addEdge(head, entry)
		}
		b.startBlock(entry)
		b.stmt(cc.Comm) // nil for default
		b.stmtList(cc.Body)
		b.edgeTo(join)
	}
	b.popFrame()
	if len(clauses) == 0 {
		// select {} blocks forever: join is unreachable from head.
		b.cur = nil
	}
	b.startBlock(join)
}

// isTerminalCall reports whether the call never returns: the panic builtin,
// os.Exit, runtime.Goexit, or log.Fatal*.
func (b *builder) isTerminalCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if b.info != nil {
			_, isBuiltin := b.info.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
		return true
	case *ast.SelectorExpr:
		var obj types.Object
		if b.info != nil {
			obj = b.info.Uses[fun.Sel]
		}
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() {
		case "os":
			return obj.Name() == "Exit"
		case "runtime":
			return obj.Name() == "Goexit"
		case "log":
			return obj.Name() == "Fatal" || obj.Name() == "Fatalf" || obj.Name() == "Fatalln"
		}
	}
	return false
}
