package lint

import (
	"fmt"
	"go/types"
	"strings"
)

// NoRand forbids the process-seeded global math/rand functions (rand.Intn,
// rand.Float64, rand.Seed, ...) in non-test code under internal/. Global
// rand draws from a shared, launch-time-seeded stream, so two runs of the
// same seed diverge — the exact nondeterminism the golden same-seed test
// exists to prevent. Explicitly seeded generators (rand.New(rand.NewSource)
// and methods on *rand.Rand) and the canonical prf package are allowed.
type NoRand struct{}

func (NoRand) Name() string { return "norand" }
func (NoRand) Doc() string {
	return "forbid global math/rand functions in non-test internal/ code; use prf.* or a seeded rand.New"
}

// norandAllowed lists the math/rand package-level names that do not draw
// from the global stream: constructors and types.
var norandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func (NoRand) Check(p *Pass) {
	for id, obj := range p.Info.Uses {
		if obj == nil || obj.Pkg() == nil {
			continue
		}
		pkgPath := obj.Pkg().Path()
		if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
			continue
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Type().(*types.Signature).Recv() != nil {
			continue // types, vars, and *rand.Rand methods are fine
		}
		if norandAllowed[fn.Name()] {
			continue
		}
		file := p.Fset.Position(id.Pos()).Filename
		if strings.HasSuffix(file, "_test.go") || !underInternal(file) {
			continue
		}
		p.Report(id, "norand",
			fmt.Sprintf("global math/rand.%s draws from the process-seeded stream and breaks same-seed reproducibility", fn.Name()),
			fmt.Sprintf("use prf.Hash/prf.Float keyed by the run seed, or r := rand.New(rand.NewSource(seed)); r.%s(...)", fn.Name()))
	}
}

// underInternal reports whether the file path sits below an internal/
// directory.
func underInternal(path string) bool {
	path = strings.ReplaceAll(path, "\\", "/")
	return strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/")
}
