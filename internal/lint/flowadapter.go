package lint

// flowadapter.go — thin aliases over internal/lint/flow so rule files can
// build graphs and run analyses without qualifying every type.

import (
	"go/ast"
	"go/types"

	"sleepnet/internal/lint/flow"
)

type flowFacts = flow.Facts

func flowBuild(body *ast.BlockStmt, info *types.Info) *flow.Graph {
	return flow.Build(body, info)
}

func flowForward(g *flow.Graph, entry flowFacts, t func(ast.Node, flowFacts) flowFacts, union bool) *flow.Result {
	return flow.Forward(g, entry, flow.Transfer(t), union)
}

func flowBackward(g *flow.Graph, exit flowFacts, t func(ast.Node, flowFacts) flowFacts, union bool) *flow.Result {
	return flow.Backward(g, exit, flow.Transfer(t), union)
}
