package world

// Link technology labels follow the paper's §2.3.3 keyword set. Of the 16
// keywords the paper considers, seven are discarded as too rare; the nine
// that survive (Fig 17) are modelled here.
const (
	LinkStatic  = "sta"
	LinkDynamic = "dyn"
	LinkServer  = "srv"
	LinkDHCP    = "dhcp"
	LinkPPP     = "ppp"
	LinkDSL     = "dsl"
	LinkDialup  = "dial"
	LinkCable   = "cable"
	LinkRes     = "res"
)

// LinkTypes lists the nine modelled link technologies in Fig 17 order.
var LinkTypes = []string{
	LinkStatic, LinkDynamic, LinkServer, LinkDHCP, LinkPPP,
	LinkDSL, LinkDialup, LinkCable, LinkRes,
}

// linkDiurnalMult scales a block's diurnal propensity by access technology,
// encoding the paper's Fig 17 finding: dynamic addressing is strongly
// diurnal (19%), DSL moderately (11%), dialup barely (<3% — dialup lines
// are few but always-connected gear), static and server space barely at
// all.
var linkDiurnalMult = map[string]float64{
	LinkStatic:  0.30,
	LinkDynamic: 1.90,
	LinkServer:  0.10,
	LinkDHCP:    1.40,
	LinkPPP:     1.20,
	LinkDSL:     1.05,
	LinkDialup:  0.22,
	LinkCable:   0.55,
	LinkRes:     0.90,
}

// LinkDiurnalMultiplier returns the technology multiplier (1.0 for unknown
// technologies).
func LinkDiurnalMultiplier(link string) float64 {
	if m, ok := linkDiurnalMult[link]; ok {
		return m
	}
	return 1
}

// richMix and poorMix are link-technology distributions for high- and
// low-GDP countries; a country's mix interpolates between them by GDP.
// Order matches LinkTypes.
var (
	richMix = []float64{0.16, 0.10, 0.08, 0.12, 0.06, 0.18, 0.02, 0.20, 0.08}
	poorMix = []float64{0.06, 0.26, 0.03, 0.16, 0.14, 0.22, 0.07, 0.03, 0.03}
)

// LinkMixFor returns the per-technology probability vector for a country,
// interpolated by GDP between the poor (GDP <= $4k) and rich (GDP >= $45k)
// reference mixes. The vector sums to 1 and aligns with LinkTypes.
func LinkMixFor(c *Country) []float64 {
	const lo, hi = 4000.0, 45000.0
	t := (c.GDP - lo) / (hi - lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	mix := make([]float64, len(LinkTypes))
	var sum float64
	for i := range mix {
		mix[i] = (1-t)*poorMix[i] + t*richMix[i]
		sum += mix[i]
	}
	for i := range mix {
		mix[i] /= sum
	}
	return mix
}

// expectedLinkMult returns E[link multiplier] under the country's mix,
// used to normalize per-block diurnal propensity so the country aggregate
// matches its target fraction.
func expectedLinkMult(c *Country) float64 {
	mix := LinkMixFor(c)
	var e float64
	for i, lt := range LinkTypes {
		e += mix[i] * linkDiurnalMult[lt]
	}
	return e
}
