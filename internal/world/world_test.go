package world

import (
	"math"
	"testing"
	"time"
)

func TestCountryTableConsistency(t *testing.T) {
	seen := make(map[string]bool)
	for i := range Countries {
		c := &Countries[i]
		if seen[c.Code] {
			t.Errorf("duplicate country %s", c.Code)
		}
		seen[c.Code] = true
		if c.GDP <= 0 || c.ElecPerCapita <= 0 || c.UsersPerHost <= 0 {
			t.Errorf("%s: non-positive covariates", c.Code)
		}
		if !(c.LonMax > c.LonMin) || !(c.LatMax > c.LatMin) {
			t.Errorf("%s: degenerate bounding box", c.Code)
		}
		if c.LonMin < -180 || c.LonMax > 180 || c.LatMin < -90 || c.LatMax > 90 {
			t.Errorf("%s: bounding box out of range", c.Code)
		}
		if c.DiurnalFrac < 0 || c.DiurnalFrac > 1 {
			t.Errorf("%s: DiurnalFrac %v", c.Code, c.DiurnalFrac)
		}
		if c.BlockWeight <= 0 {
			t.Errorf("%s: weight %v", c.Code, c.BlockWeight)
		}
		if c.FirstAllocYear < 1983 || c.FirstAllocYear > 2010 {
			t.Errorf("%s: alloc year %d", c.Code, c.FirstAllocYear)
		}
	}
	// All 16 paper regions present.
	if got := len(Regions()); got != 16 {
		t.Fatalf("regions = %d, want 16", got)
	}
}

func TestPaperTable3ValuesPreserved(t *testing.T) {
	// Spot-check countries whose diurnal fraction the paper reports.
	cases := map[string]float64{
		"AM": 0.630, "CN": 0.498, "US": 0.002, "RU": 0.159, "BR": 0.185, "KZ": 0.400,
	}
	for code, want := range cases {
		c := CountryByCode(code)
		if c == nil {
			t.Fatalf("missing country %s", code)
		}
		if c.DiurnalFrac != want {
			t.Errorf("%s DiurnalFrac = %v, want %v", code, c.DiurnalFrac, want)
		}
	}
	if CountryByCode("XX") != nil {
		t.Fatal("unknown code should be nil")
	}
}

func TestGDPDiurnalAnticorrelationInTable(t *testing.T) {
	// The table must encode the paper's central finding: high diurnal
	// fraction goes with low GDP. Check a rank-style statistic.
	var lowGDPFracSum, highGDPFracSum float64
	var nLow, nHigh int
	for i := range Countries {
		c := &Countries[i]
		if c.GDP < 12000 {
			lowGDPFracSum += c.DiurnalFrac
			nLow++
		}
		if c.GDP > 35000 {
			highGDPFracSum += c.DiurnalFrac
			nHigh++
		}
	}
	lo := lowGDPFracSum / float64(nLow)
	hi := highGDPFracSum / float64(nHigh)
	if lo < 5*hi {
		t.Fatalf("low-GDP mean frac %v should dwarf high-GDP %v", lo, hi)
	}
}

func TestLinkMixFor(t *testing.T) {
	us := CountryByCode("US")
	bd := CountryByCode("BD")
	mixUS := LinkMixFor(us)
	mixBD := LinkMixFor(bd)
	sum := 0.0
	for _, m := range mixUS {
		sum += m
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("US mix sums to %v", sum)
	}
	// Poor countries use more dynamic addressing; rich more cable.
	idxDyn, idxCable := 1, 7
	if !(mixBD[idxDyn] > mixUS[idxDyn]) {
		t.Fatalf("dyn: BD %v vs US %v", mixBD[idxDyn], mixUS[idxDyn])
	}
	if !(mixUS[idxCable] > mixBD[idxCable]) {
		t.Fatalf("cable: US %v vs BD %v", mixUS[idxCable], mixBD[idxCable])
	}
}

func TestLinkDiurnalMultiplier(t *testing.T) {
	if !(LinkDiurnalMultiplier(LinkDynamic) > LinkDiurnalMultiplier(LinkDSL)) {
		t.Fatal("dyn should exceed dsl")
	}
	if !(LinkDiurnalMultiplier(LinkDSL) > LinkDiurnalMultiplier(LinkDialup)) {
		t.Fatal("dsl should exceed dial")
	}
	if LinkDiurnalMultiplier("unknown") != 1 {
		t.Fatal("unknown multiplier should be 1")
	}
}

func TestGenerateBasics(t *testing.T) {
	w, err := Generate(Config{Blocks: 1500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Blocks) < 1400 || len(w.Blocks) > 1700 {
		t.Fatalf("generated %d blocks, want ~1500", len(w.Blocks))
	}
	if w.Net.NumBlocks() != len(w.Blocks) {
		t.Fatalf("network has %d blocks, info has %d", w.Net.NumBlocks(), len(w.Blocks))
	}
	// Every block consistent.
	for _, b := range w.Blocks {
		if w.ByID[b.ID] != b {
			t.Fatalf("ByID inconsistent for %s", b.ID)
		}
		if b.Country == nil || b.OrgName == "" || b.ASN == 0 || b.LinkType == "" {
			t.Fatalf("incomplete block %+v", b)
		}
		if b.AllocDate.IsZero() {
			t.Fatalf("block %s has no allocation date", b.ID)
		}
		if !b.CountryCentroid {
			if b.Lon < b.Country.LonMin-1e-9 || b.Lon > b.Country.LonMax+1e-9 {
				t.Fatalf("block %s lon %v outside %s", b.ID, b.Lon, b.Country.Code)
			}
		}
		if nb := w.Net.Block(b.ID); nb == nil {
			t.Fatalf("block %s missing from network", b.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1, err := Generate(Config{Blocks: 400, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(Config{Blocks: 400, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Blocks) != len(w2.Blocks) {
		t.Fatalf("lengths differ: %d vs %d", len(w1.Blocks), len(w2.Blocks))
	}
	for i := range w1.Blocks {
		a, b := w1.Blocks[i], w2.Blocks[i]
		if a.ID != b.ID || a.DesignedDiurnal != b.DesignedDiurnal || a.LinkType != b.LinkType || a.Lon != b.Lon {
			t.Fatalf("block %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("zero blocks should error")
	}
}

func TestCountryDiurnalSharesFollowTargets(t *testing.T) {
	w, err := Generate(Config{Blocks: 6000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	check := func(code string, tol float64) {
		c := CountryByCode(code)
		blocks := w.CountryBlocks(code)
		if len(blocks) == 0 {
			t.Fatalf("no blocks for %s", code)
		}
		d := 0
		for _, b := range blocks {
			if b.DesignedDiurnal {
				d++
			}
		}
		got := float64(d) / float64(len(blocks))
		if math.Abs(got-c.DiurnalFrac) > tol {
			t.Errorf("%s designed diurnal frac = %v, target %v (n=%d)", code, got, c.DiurnalFrac, len(blocks))
		}
	}
	check("CN", 0.08)
	check("US", 0.02)
	check("BR", 0.09)
}

func TestDesignedDiurnalBlocksHaveDiurnalAddrs(t *testing.T) {
	w, err := Generate(Config{Blocks: 800, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range w.Blocks {
		if b.DesignedDiurnal {
			if b.NumDiurnal < 40 {
				t.Fatalf("diurnal block %s has only %d diurnal addrs", b.ID, b.NumDiurnal)
			}
			if b.LocalOnHour < 5 || b.LocalOnHour > 13 {
				t.Fatalf("on-hour %v out of range", b.LocalOnHour)
			}
		} else if b.NumDiurnal != 0 {
			t.Fatalf("non-diurnal block %s has diurnal addrs", b.ID)
		}
	}
}

func TestAllocationDatesWithinEra(t *testing.T) {
	w, err := Generate(Config{Blocks: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	eraStart := time.Date(1983, 1, 1, 0, 0, 0, 0, time.UTC)
	for s8, d := range w.AllocDates {
		if d.Before(eraStart) || d.After(allocEnd) {
			t.Fatalf("/%d allocated %v outside era", s8, d)
		}
	}
	// Early adopters hold earlier space on average.
	usMean, usFirst := w.MeanAllocYear("US")
	amMean, _ := w.MeanAllocYear("AM")
	if !(usMean < amMean) {
		t.Fatalf("US mean alloc %v should precede AM %v", usMean, amMean)
	}
	if usFirst > 1986 {
		t.Fatalf("US first alloc = %v", usFirst)
	}
	if m, f := w.MeanAllocYear("XX"); !math.IsNaN(m) || !math.IsNaN(f) {
		t.Fatal("unknown country should be NaN")
	}
}

func TestAllocMultIncreasing(t *testing.T) {
	early := allocDiurnalMult(time.Date(1985, 1, 1, 0, 0, 0, 0, time.UTC))
	late := allocDiurnalMult(time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC))
	if !(late > early) {
		t.Fatalf("alloc mult: late %v should exceed early %v", late, early)
	}
	if got := allocDiurnalMult(time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)); got != 0.5 {
		t.Fatalf("pre-era mult = %v", got)
	}
	if got := allocDiurnalMult(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)); got != 1.5 {
		t.Fatalf("post-era mult = %v", got)
	}
}

func TestISPsAndOrgs(t *testing.T) {
	w, err := Generate(Config{Blocks: 500, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.ISPs) < len(Countries)*2 {
		t.Fatalf("only %d ISPs", len(w.ISPs))
	}
	for _, isp := range w.ISPs {
		if len(isp.ASNs) == 0 {
			t.Fatalf("ISP %q has no ASNs", isp.Name)
		}
		for _, a := range isp.ASNs {
			if w.ASNOrg[a] != isp.Name {
				t.Fatalf("ASN %d org mismatch", a)
			}
		}
	}
	// Every block's ASN resolves to its org.
	for _, b := range w.Blocks {
		if w.ASNOrg[b.ASN] != b.OrgName {
			t.Fatalf("block %s ASN %d org %q != %q", b.ID, b.ASN, w.ASNOrg[b.ASN], b.OrgName)
		}
	}
}

func TestCentroidFraction(t *testing.T) {
	w, err := Generate(Config{Blocks: 4000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, b := range w.Blocks {
		if b.CountryCentroid {
			n++
		}
	}
	frac := float64(n) / float64(len(w.Blocks))
	if frac < 0.04 || frac > 0.11 {
		t.Fatalf("centroid fraction = %v, want ~0.07", frac)
	}
}

func TestRegionHelpers(t *testing.T) {
	ea := RegionOf(RegionEasternAsia)
	if len(ea) != 6 {
		t.Fatalf("Eastern Asia has %d countries", len(ea))
	}
	if TotalWeight() < 1000 {
		t.Fatalf("TotalWeight = %v", TotalWeight())
	}
	us := CountryByCode("US")
	if math.Abs(us.CenterLon()-(-95.5)) > 0.01 {
		t.Fatalf("US centroid lon = %v", us.CenterLon())
	}
}

func BenchmarkGenerate2000(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Config{Blocks: 2000, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
