package world

import (
	"fmt"
	"math/rand"
	"time"

	"sleepnet/internal/netsim"
)

// CampusConfig sizes a university-campus address plan modeled on the
// paper's §3.2.4 USC validation: heavily overprovisioned wireless blocks
// (one address per student, ~10 live at a time, most blocks below the
// prober's 15-active floor), dynamically-assigned pools, and general-use
// building blocks — some of which contain pockets of dynamic addresses
// that make otherwise-static blocks diurnal.
type CampusConfig struct {
	// Wireless is the number of wireless /24s (paper: 142).
	Wireless int
	// Dynamic is the number of DHCP-pool /24s (paper: 32).
	Dynamic int
	// General is the number of general-use building /24s.
	General int
	// PocketFrac is the fraction of general-use blocks containing a pocket
	// of dynamically-assigned (diurnal) addresses (the paper's surprise).
	PocketFrac float64
	Seed       uint64
}

func (c CampusConfig) withDefaults() CampusConfig {
	if c.Wireless == 0 {
		c.Wireless = 142
	}
	if c.Dynamic == 0 {
		c.Dynamic = 32
	}
	if c.General == 0 {
		c.General = 120
	}
	if c.PocketFrac == 0 {
		c.PocketFrac = 0.15
	}
	return c
}

// CampusCategory labels a campus block's true use.
type CampusCategory string

const (
	CampusWireless CampusCategory = "wireless"
	CampusDynamic  CampusCategory = "dynamic"
	CampusGeneral  CampusCategory = "general"
	// CampusGeneralPocket marks general-use blocks with a dynamic pocket.
	CampusGeneralPocket CampusCategory = "general+pocket"
)

// CampusBlock is the ground truth for one campus /24.
type CampusBlock struct {
	ID       netsim.BlockID
	Category CampusCategory
	// ActiveAddrs is the number of ever-active addresses (what probing
	// history would know); wireless blocks are often below the 15-address
	// policy floor.
	ActiveAddrs int
	// TrulyDiurnal records whether the generator gave the block real daily
	// structure.
	TrulyDiurnal bool
}

// Campus is a generated campus network.
type Campus struct {
	Net    *netsim.Network
	Blocks []*CampusBlock
}

// GenerateCampus builds the campus world. The campus sits at the Los
// Angeles longitude so local working hours translate to late-UTC phases,
// matching the USC validation setting.
func GenerateCampus(cfg CampusConfig) (*Campus, error) {
	cfg = cfg.withDefaults()
	total := cfg.Wireless + cfg.Dynamic + cfg.General
	if total == 0 || total > 60000 {
		return nil, fmt.Errorf("world: campus size %d out of range", total)
	}
	r := rand.New(rand.NewSource(int64(cfg.Seed) ^ 0xca3905))
	c := &Campus{Net: netsim.NewNetwork(cfg.Seed)}
	const lonLA = -118.3
	utcShift := -lonLA / 15 // hours to add to local time for UTC

	next := 0
	mkID := func() netsim.BlockID {
		id := netsim.MakeBlockID(128, byte(next>>8), byte(next))
		next++
		return id
	}

	// Wireless: overprovisioned. Roughly ten concurrently-live addresses
	// drawn from a small ever-active set; most blocks fall below the
	// 15-address probing floor.
	for i := 0; i < cfg.Wireless; i++ {
		blk := &netsim.Block{ID: mkID(), Seed: cfg.Seed + uint64(next)}
		active := 6 + r.Intn(18) // 6..23 ever-active; many < 15
		for h := 1; h <= active; h++ {
			// Wifi clients: on campus during the day, sparse within it.
			phase := time.Duration((8.5+r.Float64()*2+utcShift)*3600) * time.Second
			blk.Behaviors[h] = netsim.Diurnal{
				Phase:      phase,
				Duration:   time.Duration((4 + r.Float64()*5) * float64(time.Hour)),
				StartSigma: time.Hour,
				UpProb:     0.55,
				Seed:       cfg.Seed + uint64(next*337+h),
			}
		}
		c.Net.AddBlock(blk)
		c.Blocks = append(c.Blocks, &CampusBlock{
			ID: blk.ID, Category: CampusWireless, ActiveAddrs: active, TrulyDiurnal: true,
		})
	}

	// Dynamic pools: densely used, assigned sequentially, strongly diurnal.
	for i := 0; i < cfg.Dynamic; i++ {
		blk := &netsim.Block{ID: mkID(), Seed: cfg.Seed + uint64(next)}
		active := 60 + r.Intn(120)
		for h := 1; h <= active; h++ {
			phase := time.Duration((8+r.Float64()*1.5+utcShift)*3600) * time.Second
			blk.Behaviors[h] = netsim.Diurnal{
				Phase:      phase,
				Duration:   time.Duration((8 + r.Float64()*2) * float64(time.Hour)),
				StartSigma: 30 * time.Minute,
				Seed:       cfg.Seed + uint64(next*337+h),
			}
		}
		c.Net.AddBlock(blk)
		c.Blocks = append(c.Blocks, &CampusBlock{
			ID: blk.ID, Category: CampusDynamic, ActiveAddrs: active, TrulyDiurnal: true,
		})
	}

	// General use: servers and desktops, mostly always-on; a fraction hold
	// a pocket of dynamic addresses (decentralized address management).
	for i := 0; i < cfg.General; i++ {
		blk := &netsim.Block{ID: mkID(), Seed: cfg.Seed + uint64(next)}
		stable := 25 + r.Intn(60)
		h := 1
		for ; h <= stable; h++ {
			blk.Behaviors[h] = netsim.AlwaysOn{}
		}
		cat := CampusGeneral
		diurnal := false
		if r.Float64() < cfg.PocketFrac {
			cat = CampusGeneralPocket
			diurnal = true
			pocket := 16 + r.Intn(30)
			phase := time.Duration((8.5+r.Float64()+utcShift)*3600) * time.Second
			for j := 0; j < pocket && h < 255; j++ {
				blk.Behaviors[h] = netsim.Diurnal{
					Phase:      phase,
					Duration:   time.Duration((8 + r.Float64()*2) * float64(time.Hour)),
					StartSigma: 45 * time.Minute,
					Seed:       cfg.Seed + uint64(next*337+h),
				}
				h++
			}
		}
		c.Net.AddBlock(blk)
		c.Blocks = append(c.Blocks, &CampusBlock{
			ID: blk.ID, Category: cat, ActiveAddrs: h - 1, TrulyDiurnal: diurnal,
		})
	}
	return c, nil
}
