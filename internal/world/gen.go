package world

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sleepnet/internal/netsim"
)

// Config sizes and seeds a synthetic world.
type Config struct {
	// Blocks is the total number of /24 blocks to generate (the paper
	// measures 3.7M; experiments here scale down while preserving shares).
	Blocks int
	// Seed makes generation fully deterministic.
	Seed uint64
	// CentroidFrac is the fraction of blocks whose geolocation is only
	// country-precise and therefore lands on the country centroid (the
	// Fig 12 anomaly). Defaults to 0.07.
	CentroidFrac float64
	// MeanLoss is the mean per-block packet loss probability (default 0.01).
	MeanLoss float64
	// OutagesPerBlockWeek is the base rate of whole-block outages
	// (episodes per block per week); the realized per-block rate scales
	// with national infrastructure (lower GDP, more outages). Zero
	// disables outage injection.
	OutagesPerBlockWeek float64
	// OutageHorizonDays bounds how far ahead outages are scheduled
	// (default 70 days from the simulation epoch).
	OutageHorizonDays int
}

func (c Config) withDefaults() Config {
	if c.CentroidFrac == 0 {
		c.CentroidFrac = 0.07
	}
	if c.MeanLoss == 0 {
		c.MeanLoss = 0.01
	}
	if c.OutageHorizonDays == 0 {
		c.OutageHorizonDays = 70
	}
	return c
}

// allocEnd is when IANA exhausted the IPv4 /8 pool.
var allocEnd = time.Date(2011, time.February, 1, 0, 0, 0, 0, time.UTC)

// BlockInfo is the ground-truth record of one generated /24.
type BlockInfo struct {
	ID      netsim.BlockID
	Country *Country
	// Lat, Lon is the true location of the block's users.
	Lat, Lon float64
	// CountryCentroid marks blocks the geolocation database can only place
	// at the country level.
	CountryCentroid bool
	// ASN and OrgName identify the operating network.
	ASN     int
	OrgName string
	// LinkType is the true access technology.
	LinkType string
	// Slash8 is the /8 the block lives in; AllocDate its IANA allocation.
	Slash8    int
	AllocDate time.Time
	// DesignedDiurnal records whether the generator made this block diurnal
	// (ground truth for validation).
	DesignedDiurnal bool
	// Population of the block.
	NumStable, NumDiurnal, NumIntermittent int
	// LocalOnHour is the local-time start of the diurnal on-period.
	LocalOnHour float64
}

// ISP describes one operator in the synthetic world.
type ISP struct {
	Name    string
	Country string
	ASNs    []int
}

// World is a fully generated synthetic Internet.
type World struct {
	Net    *netsim.Network
	Blocks []*BlockInfo
	ByID   map[netsim.BlockID]*BlockInfo
	// AllocDates maps /8 index to its allocation date.
	AllocDates map[int]time.Time
	// ISPs lists every operator; ASNOrg maps ASN to operator name.
	ISPs   []*ISP
	ASNOrg map[int]string
	Seed   uint64
}

// Generate builds a synthetic world of cfg.Blocks /24 blocks.
func Generate(cfg Config) (*World, error) {
	cfg = cfg.withDefaults()
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("world: Config.Blocks must be positive, got %d", cfg.Blocks)
	}
	w := &World{
		Net:        netsim.NewNetwork(cfg.Seed),
		ByID:       make(map[netsim.BlockID]*BlockInfo),
		AllocDates: make(map[int]time.Time),
		ASNOrg:     make(map[int]string),
		Seed:       cfg.Seed,
	}
	r := rand.New(rand.NewSource(int64(cfg.Seed) ^ 0x51eef))
	total := TotalWeight()
	nextSlash8 := 1
	nextASN := 1000

	for ci := range Countries {
		c := &Countries[ci]
		n := int(math.Round(float64(cfg.Blocks) * c.BlockWeight / total))
		if n < 1 {
			n = 1
		}
		// Address space: one /8 per ~512 blocks, at least 2 so the country
		// has an allocation-date spread.
		num8 := n/512 + 2
		slash8s := make([]int, num8)
		for i := 0; i < num8; i++ {
			s8 := nextSlash8
			nextSlash8++
			if nextSlash8 > 223 {
				nextSlash8 = 1 // wrap; collisions avoided by /16 partitioning below
			}
			slash8s[i] = s8
			// Allocation dates run from the country's first allocation to
			// exhaustion, earlier /8s earlier.
			frac := float64(i) / float64(num8)
			start := time.Date(c.FirstAllocYear, time.January, 1, 0, 0, 0, 0, time.UTC)
			span := allocEnd.Sub(start)
			w.AllocDates[s8] = start.Add(time.Duration(frac * float64(span)))
		}
		isps := makeISPs(c, r, &nextASN)
		w.ISPs = append(w.ISPs, isps...)
		for _, isp := range isps {
			for _, a := range isp.ASNs {
				w.ASNOrg[a] = isp.Name
			}
		}

		mix := LinkMixFor(c)
		eLink := expectedLinkMult(c)
		// Expected allocation multiplier over this country's /8s.
		var eAlloc float64
		for _, s8 := range slash8s {
			eAlloc += allocDiurnalMult(w.AllocDates[s8])
		}
		eAlloc /= float64(num8)
		norm := eLink * eAlloc
		if norm <= 0 {
			norm = 1
		}

		for bi := 0; bi < n; bi++ {
			s8idx := r.Intn(num8)
			s8 := slash8s[s8idx]
			// Partition /16s within the /8 by country index to avoid ID
			// collisions after wrapping.
			b2 := byte((ci*7 + bi/250) % 256)
			b3 := byte(bi % 250)
			id := netsim.MakeBlockID(byte(s8), b2, b3)
			if _, dup := w.ByID[id]; dup {
				continue // extremely rare with default sizes; skip
			}
			info := &BlockInfo{
				ID:        id,
				Country:   c,
				Slash8:    s8,
				AllocDate: w.AllocDates[s8],
			}
			// Geography.
			if r.Float64() < cfg.CentroidFrac {
				info.CountryCentroid = true
				info.Lat, info.Lon = c.CenterLat(), c.CenterLon()
			} else {
				info.Lat = c.LatMin + r.Float64()*(c.LatMax-c.LatMin)
				info.Lon = c.LonMin + r.Float64()*(c.LonMax-c.LonMin)
			}
			// Technology.
			info.LinkType = pickLink(mix, r)
			// Operator: zipf-ish preference for the first ISPs.
			isp := isps[zipfPick(len(isps), r)]
			info.OrgName = isp.Name
			info.ASN = isp.ASNs[r.Intn(len(isp.ASNs))]

			// Diurnal decision: country base scaled by technology and
			// allocation age, normalized to keep the country aggregate.
			p := c.DiurnalFrac * LinkDiurnalMultiplier(info.LinkType) *
				allocDiurnalMult(info.AllocDate) / norm
			if p > 0.92 {
				p = 0.92
			}
			info.DesignedDiurnal = r.Float64() < p

			blk := buildBlock(info, cfg, r)
			injectOutages(blk, info, cfg)
			w.Net.AddBlock(blk)
			w.Blocks = append(w.Blocks, info)
			w.ByID[id] = info
		}
	}
	sort.Slice(w.Blocks, func(i, j int) bool { return w.Blocks[i].ID < w.Blocks[j].ID })
	return w, nil
}

// allocDiurnalMult encodes the Fig 15 trend: space allocated later (under
// stricter reuse policies) is more often used dynamically and diurnally.
func allocDiurnalMult(d time.Time) float64 {
	startEra := time.Date(1983, time.January, 1, 0, 0, 0, 0, time.UTC)
	frac := d.Sub(startEra).Hours() / allocEnd.Sub(startEra).Hours()
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return 0.5 + frac
}

func pickLink(mix []float64, r *rand.Rand) string {
	u := r.Float64()
	var cum float64
	for i, m := range mix {
		cum += m
		if u < cum {
			return LinkTypes[i]
		}
	}
	return LinkTypes[len(LinkTypes)-1]
}

// zipfPick prefers low indices (the big incumbent ISPs).
func zipfPick(n int, r *rand.Rand) int {
	if n <= 1 {
		return 0
	}
	// P(i) ∝ 1/(i+1)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / float64(i+1)
	}
	u := r.Float64() * total
	var cum float64
	for i := 0; i < n; i++ {
		cum += 1 / float64(i+1)
		if u < cum {
			return i
		}
	}
	return n - 1
}

// makeISPs synthesizes a country's operators with clusterable names.
func makeISPs(c *Country, r *rand.Rand, nextASN *int) []*ISP {
	n := 2
	switch {
	case c.BlockWeight > 100:
		n = 6
	case c.BlockWeight > 20:
		n = 4
	case c.BlockWeight > 5:
		n = 3
	}
	patterns := []string{
		"%s Telecom", "%sNet Backbone", "Cable %s", "%s Broadband", "University of %s", "%s Mobile",
	}
	out := make([]*ISP, 0, n)
	for i := 0; i < n; i++ {
		isp := &ISP{
			Name:    fmt.Sprintf(patterns[i%len(patterns)], c.Name),
			Country: c.Code,
		}
		nas := 1 + r.Intn(3)
		for j := 0; j < nas; j++ {
			isp.ASNs = append(isp.ASNs, *nextASN)
			*nextASN++
		}
		out = append(out, isp)
	}
	return out
}

// buildBlock wires the netsim behaviours for one block.
func buildBlock(info *BlockInfo, cfg Config, r *rand.Rand) *netsim.Block {
	blk := &netsim.Block{
		ID:            info.ID,
		Seed:          uint64(info.ID) ^ cfg.Seed,
		Loss:          clampF(r.ExpFloat64()*cfg.MeanLoss, 0, 0.2),
		LatencyBase:   time.Duration(20+r.Intn(250)) * time.Millisecond,
		LatencyJitter: time.Duration(5+r.Intn(40)) * time.Millisecond,
	}
	host := 1 // leave .0 unused, as in real blocks
	info.NumStable = 20 + r.Intn(41)
	for i := 0; i < info.NumStable && host < 255; i++ {
		blk.Behaviors[host] = netsim.AlwaysOn{}
		host++
	}
	if info.DesignedDiurnal {
		info.NumDiurnal = 40 + r.Intn(120)
		info.LocalOnHour = clampF(8.5+1.5*r.NormFloat64(), 5, 13)
		utcOn := math.Mod(info.LocalOnHour-info.Lon/15+48, 24)
		for i := 0; i < info.NumDiurnal && host < 255; i++ {
			jitter := r.NormFloat64() * 0.75 // hours
			phase := math.Mod(utcOn+jitter+48, 24)
			dur := clampF(9+1.5*r.NormFloat64(), 4, 16)
			blk.Behaviors[host] = netsim.Diurnal{
				Phase:         time.Duration(phase * float64(time.Hour)),
				Duration:      time.Duration(dur * float64(time.Hour)),
				StartSigma:    20 * time.Minute,
				DurationSigma: 40 * time.Minute,
				Seed:          uint64(info.ID) + uint64(host)*131,
			}
			host++
		}
	} else if r.Float64() < 0.02 {
		// A small share of blocks cycle with a DHCP lease period that is
		// not 24 hours — the paper's §4 example of non-daily periodicity
		// (addresses handed out sequentially across a region with lease
		// period p show usage with period p). These populate the Fig 10
		// distribution away from 1 cycle/day.
		lease := []time.Duration{7 * time.Hour, 9 * time.Hour, 14 * time.Hour}[r.Intn(3)]
		info.NumIntermittent = 60 + r.Intn(80)
		for i := 0; i < info.NumIntermittent && host < 255; i++ {
			blk.Behaviors[host] = netsim.Periodic{
				Period: lease,
				Duty:   0.4 + 0.3*r.Float64(),
				Offset: time.Duration(r.Int63n(int64(lease))),
			}
			host++
		}
	} else {
		// Non-diurnal blocks get an intermittent population so availability
		// varies across blocks without daily structure. Per-address
		// probabilities are heterogeneous: that heterogeneity is what makes
		// prober-restart walk resets visible (the Fig 10 artifact).
		info.NumIntermittent = r.Intn(120)
		p := 0.3 + 0.65*r.Float64()
		for i := 0; i < info.NumIntermittent && host < 255; i++ {
			pi := clampF(p+0.12*(r.Float64()-0.5), 0.05, 0.98)
			blk.Behaviors[host] = netsim.Intermittent{P: pi, Seed: uint64(info.ID) + uint64(host)*257}
			host++
		}
	}
	return blk
}

// injectOutages schedules whole-block outages over the horizon. Rates scale
// with national infrastructure quality: at the same base rate, a $5k-GDP
// country sees several times the outages of a $50k one — the reliability
// gradient the Trinocular line of work reports. A dedicated RNG keyed by
// block id keeps outage draws from perturbing the rest of generation.
func injectOutages(blk *netsim.Block, info *BlockInfo, cfg Config) {
	if cfg.OutagesPerBlockWeek <= 0 {
		return
	}
	r := rand.New(rand.NewSource(int64(uint64(info.ID)*0x9e3779b9 ^ cfg.Seed ^ 0x07a6e)))
	mult := clampF(2.6-2.2*info.Country.GDP/50000, 0.3, 2.6)
	rate := cfg.OutagesPerBlockWeek * mult // episodes per week
	horizon := time.Duration(cfg.OutageHorizonDays) * 24 * time.Hour
	// Poisson process via exponential gaps.
	t := time.Duration(0)
	epoch := time.Date(2013, time.April, 1, 0, 0, 0, 0, time.UTC)
	for {
		gap := time.Duration(r.ExpFloat64() / rate * float64(7*24*time.Hour))
		t += gap
		if t >= horizon {
			return
		}
		// Lognormal-ish duration around two hours, clamped to [22m, 48h].
		durHours := math.Exp(math.Log(2) + r.NormFloat64())
		dur := time.Duration(clampF(durHours, 0.37, 48) * float64(time.Hour))
		start := epoch.Add(t)
		blk.Outages = append(blk.Outages, netsim.Interval{Start: start, End: start.Add(dur)})
		t += dur
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CountryBlocks returns the blocks generated for a country code.
func (w *World) CountryBlocks(code string) []*BlockInfo {
	var out []*BlockInfo
	for _, b := range w.Blocks {
		if b.Country.Code == code {
			out = append(out, b)
		}
	}
	return out
}

// MeanAllocYear returns the mean allocation year of a country's blocks and
// the year of its earliest allocation — the Table 5 "age of allocation"
// factors.
func (w *World) MeanAllocYear(code string) (mean, first float64) {
	var sum float64
	n := 0
	first = math.Inf(1)
	for _, b := range w.Blocks {
		if b.Country.Code != code {
			continue
		}
		y := float64(b.AllocDate.Year()) + float64(b.AllocDate.YearDay())/365
		sum += y
		n++
		if y < first {
			first = y
		}
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	return sum / float64(n), first
}
