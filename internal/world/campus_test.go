package world

import (
	"testing"
	"time"

	"sleepnet/internal/netsim"
)

func TestGenerateCampusDefaults(t *testing.T) {
	c, err := GenerateCampus(CampusConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[CampusCategory]int{}
	wirelessBelowFloor := 0
	for _, b := range c.Blocks {
		counts[b.Category]++
		blk := c.Net.Block(b.ID)
		if blk == nil {
			t.Fatalf("block %s not registered", b.ID)
		}
		if got := len(blk.EverActive()); got != b.ActiveAddrs {
			t.Fatalf("block %s ActiveAddrs %d != network E(b) %d", b.ID, b.ActiveAddrs, got)
		}
		if b.Category == CampusWireless && b.ActiveAddrs < 15 {
			wirelessBelowFloor++
		}
		switch b.Category {
		case CampusWireless, CampusDynamic, CampusGeneralPocket:
			if !b.TrulyDiurnal {
				t.Fatalf("%s block should be truly diurnal", b.Category)
			}
		case CampusGeneral:
			if b.TrulyDiurnal {
				t.Fatal("pure general block should not be diurnal")
			}
		}
	}
	if counts[CampusWireless] != 142 || counts[CampusDynamic] != 32 {
		t.Fatalf("counts = %v", counts)
	}
	if counts[CampusGeneral]+counts[CampusGeneralPocket] != 120 {
		t.Fatalf("general total = %d", counts[CampusGeneral]+counts[CampusGeneralPocket])
	}
	// A meaningful share of wireless blocks sits below the probing floor.
	if wirelessBelowFloor < 30 {
		t.Fatalf("only %d wireless blocks below the 15-active floor", wirelessBelowFloor)
	}
}

func TestGenerateCampusDiurnalBehavior(t *testing.T) {
	c, err := GenerateCampus(CampusConfig{Wireless: 1, Dynamic: 1, General: 1, PocketFrac: 1e-9, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic pool block: availability swings between near zero at local
	// night and high during the local (LA) day.
	var dyn *CampusBlock
	for _, b := range c.Blocks {
		if b.Category == CampusDynamic {
			dyn = b
		}
	}
	if dyn == nil {
		t.Fatal("no dynamic block")
	}
	blk := c.Net.Block(dyn.ID)
	epoch := time.Date(2013, time.April, 1, 0, 0, 0, 0, time.UTC)
	// LA noon = 20:00 UTC; LA 3am = 11:00 UTC.
	day := blk.TrueA(epoch.Add(20 * time.Hour))
	night := blk.TrueA(epoch.Add(11 * time.Hour))
	if !(day > 0.8 && night < 0.2) {
		t.Fatalf("dynamic pool day=%v night=%v, want strong diurnal swing in LA time", day, night)
	}
}

func TestGenerateCampusErrors(t *testing.T) {
	if _, err := GenerateCampus(CampusConfig{Wireless: 1 << 20}); err == nil {
		t.Fatal("oversized campus should error")
	}
}

func TestInjectOutages(t *testing.T) {
	w, err := Generate(Config{Blocks: 300, Seed: 7, OutagesPerBlockWeek: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	horizon := time.Date(2013, time.April, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, 70)
	for _, info := range w.Blocks {
		blk := w.Net.Block(info.ID)
		total += len(blk.Outages)
		for _, iv := range blk.Outages {
			if !iv.End.After(iv.Start) {
				t.Fatalf("block %s has empty outage interval", info.ID)
			}
			if iv.Start.After(horizon) {
				t.Fatalf("block %s outage beyond horizon", info.ID)
			}
			dur := iv.End.Sub(iv.Start)
			if dur < 20*time.Minute || dur > 49*time.Hour {
				t.Fatalf("outage duration %v out of range", dur)
			}
		}
	}
	// 300 blocks x 10 weeks x ~0.5/wk x GDP multiplier: expect hundreds.
	if total < 300 {
		t.Fatalf("only %d outages injected", total)
	}
	// Poorer countries get more outages per block.
	rate := func(code string) float64 {
		blocks := w.CountryBlocks(code)
		if len(blocks) == 0 {
			return -1
		}
		n := 0
		for _, info := range blocks {
			n += len(w.Net.Block(info.ID).Outages)
		}
		return float64(n) / float64(len(blocks))
	}
	us, cn := rate("US"), rate("CN")
	if us < 0 || cn < 0 {
		t.Fatal("missing populations")
	}
	if !(us < cn) {
		t.Fatalf("US outage rate %v should be below CN %v", us, cn)
	}
	// Zero rate injects nothing.
	w2, err := Generate(Config{Blocks: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range w2.Blocks {
		if len(w2.Net.Block(info.ID).Outages) != 0 {
			t.Fatal("outages injected with zero rate")
		}
	}
}

func TestLeaseCycleBlocksExist(t *testing.T) {
	w, err := Generate(Config{Blocks: 4000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// ~2% of non-diurnal blocks cycle with a DHCP lease period; find at
	// least a few by checking for Periodic behaviors.
	lease := 0
	for _, info := range w.Blocks {
		blk := w.Net.Block(info.ID)
		for h := 0; h < 256; h++ {
			if _, ok := blk.Behaviors[h].(netsim.Periodic); ok {
				lease++
				break
			}
		}
	}
	if lease < 10 {
		t.Fatalf("only %d lease-cycle blocks in 4000", lease)
	}
	frac := float64(lease) / float64(len(w.Blocks))
	if frac > 0.05 {
		t.Fatalf("lease-cycle fraction = %v, want ~0.02", frac)
	}
}
