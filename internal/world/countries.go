// Package world generates the synthetic Internet the study measures: a
// population of /24 blocks distributed over countries with realistic
// covariates (per-capita GDP, electricity consumption, Internet users per
// host, geography, /8 allocation dates, access-link technology mixes, ASes
// and organizations), wired to netsim behaviour models so that the paper's
// causal story — poorer and later-allocated networks are more diurnal, with
// on-hours following local time — is actually present in the data for the
// measurement pipeline to rediscover.
//
// Country-level diurnal fractions and block weights are seeded from the
// paper's Tables 3 and 4 where the paper reports them, and from a
// GDP-driven model elsewhere; see DESIGN.md for the substitution argument.
package world

// Region names follow the paper's Table 4 (UN M49-style groupings).
const (
	RegionNorthernAmerica = "Northern America"
	RegionSouthernAfrica  = "Southern Africa"
	RegionWesternEurope   = "W. Europe"
	RegionNorthernEurope  = "Northern Europe"
	RegionCaribbean       = "Caribbean"
	RegionOceania         = "Oceania"
	RegionWesternAsia     = "W. Asia"
	RegionNorthernAfrica  = "Northern Africa"
	RegionSouthernEurope  = "Southern Europe"
	RegionCentralAmerica  = "Central America"
	RegionEasternEurope   = "Eastern Europe"
	RegionSouthernAsia    = "Southern Asia"
	RegionSouthAmerica    = "South America"
	RegionSouthEastAsia   = "South-Eastern Asia"
	RegionEasternAsia     = "Eastern Asia"
	RegionCentralAsia     = "Central Asia"
)

// Country is one national population of blocks with its covariates.
type Country struct {
	Code   string // ISO 3166-1 alpha-2
	Name   string
	Region string
	// GDP is per-capita GDP (PPP, USD) — the paper's Table 3 covariate.
	GDP float64
	// ElecPerCapita is electricity consumption per capita (kWh/year).
	ElecPerCapita float64
	// UsersPerHost is Internet users per host, a Table 5 covariate.
	UsersPerHost float64
	// Geographic bounding box for block placement (degrees).
	LonMin, LonMax float64
	LatMin, LatMax float64
	// BlockWeight is the country's share of /24 blocks, proportional to the
	// paper's observed counts (Table 3 / Table 4 populations).
	BlockWeight float64
	// DiurnalFrac is the target fraction of diurnal blocks (paper's Table 3
	// where reported; GDP model elsewhere).
	DiurnalFrac float64
	// FirstAllocYear approximates when the country's first /8 space was
	// allocated — early adopters get early space (drives Fig 15).
	FirstAllocYear int
}

// Countries is the synthetic world's national table. Block weights are the
// approximate /24 counts from the paper (in thousands); diurnal fractions
// for the countries in Table 3 are the paper's measured values.
var Countries = []Country{
	// Northern America (721,716 blocks; frac 0.002)
	{"US", "United States", RegionNorthernAmerica, 50700, 12950, 2.1, -124, -67, 26, 48, 672.1, 0.002, 1985},
	{"CA", "Canada", RegionNorthernAmerica, 41500, 15500, 2.3, -130, -55, 43, 57, 49.6, 0.003, 1988},

	// Western Europe (275,224; 0.0109)
	{"DE", "Germany", RegionWesternEurope, 39100, 7000, 2.6, 6, 15, 47, 55, 100.0, 0.011, 1989},
	{"FR", "France", RegionWesternEurope, 35500, 7300, 2.8, -4, 8, 42, 51, 80.0, 0.011, 1990},
	{"NL", "Netherlands", RegionWesternEurope, 42300, 6700, 2.2, 3.4, 7.2, 50.7, 53.5, 40.0, 0.009, 1989},
	{"CH", "Switzerland", RegionWesternEurope, 54600, 7500, 2.1, 6, 10.5, 45.8, 47.8, 25.0, 0.008, 1990},
	{"BE", "Belgium", RegionWesternEurope, 37800, 7700, 2.5, 2.5, 6.4, 49.5, 51.5, 20.0, 0.010, 1990},
	{"AT", "Austria", RegionWesternEurope, 42500, 8000, 2.4, 9.5, 17, 46.4, 49, 10.2, 0.010, 1991},

	// Northern Europe (133,911; 0.0131)
	{"GB", "United Kingdom", RegionNorthernEurope, 36700, 5400, 2.4, -8, 2, 50, 58, 80.0, 0.012, 1988},
	{"SE", "Sweden", RegionNorthernEurope, 41700, 13500, 2.0, 11, 24, 55, 68, 25.0, 0.012, 1990},
	{"FI", "Finland", RegionNorthernEurope, 36500, 15000, 2.1, 20, 31, 60, 69, 15.0, 0.013, 1991},
	{"NO", "Norway", RegionNorthernEurope, 55400, 23000, 2.0, 4, 30, 58, 70, 10.0, 0.012, 1991},
	{"DK", "Denmark", RegionNorthernEurope, 37700, 6000, 2.2, 8, 13, 54.5, 57.8, 3.9, 0.013, 1991},

	// Southern Europe (134,933; 0.124)
	{"IT", "Italy", RegionSouthernEurope, 29600, 5200, 3.5, 7, 18, 37, 46, 60.0, 0.10, 1992},
	{"ES", "Spain", RegionSouthernEurope, 30400, 5600, 3.3, -9, 3, 36, 43, 40.0, 0.13, 1992},
	{"GR", "Greece", RegionSouthernEurope, 24900, 5100, 3.8, 20, 27, 35, 41.5, 15.0, 0.15, 1994},
	{"PT", "Portugal", RegionSouthernEurope, 23000, 4700, 3.6, -9.5, -6.2, 37, 42, 10.0, 0.12, 1993},
	{"HR", "Croatia", RegionSouthernEurope, 17800, 3700, 3.9, 13.5, 19.4, 42.4, 46.5, 5.5, 0.14, 1995},
	{"RS", "Serbia", RegionSouthernEurope, 10600, 4300, 4.5, 19, 23, 42.2, 46.2, 4.4, 0.393, 1997},

	// Eastern Europe (146,552; 0.135)
	{"RU", "Russia", RegionEasternEurope, 18000, 6500, 4.0, 30, 135, 50, 60, 53.0, 0.159, 1993},
	{"PL", "Poland", RegionEasternEurope, 20600, 3900, 3.8, 14, 24, 49, 55, 40.0, 0.12, 1993},
	{"CZ", "Czechia", RegionEasternEurope, 27100, 6200, 3.2, 12, 19, 48.5, 51.1, 20.0, 0.11, 1993},
	{"UA", "Ukraine", RegionEasternEurope, 7500, 3500, 5.0, 22, 40, 44, 52, 16.6, 0.289, 1996},
	{"RO", "Romania", RegionEasternEurope, 12800, 2600, 4.2, 20, 30, 43.6, 48.3, 15.0, 0.16, 1996},
	{"BY", "Belarus", RegionEasternEurope, 15900, 3600, 4.6, 23, 33, 51, 56, 1.7, 0.512, 1998},

	// Eastern Asia (757,352; 0.279)
	{"CN", "China", RegionEasternAsia, 9300, 3500, 6.0, 75, 130, 20, 47, 394.2, 0.498, 1996},
	{"JP", "Japan", RegionEasternAsia, 36200, 7800, 2.4, 129, 146, 31, 45, 200.0, 0.004, 1988},
	{"KR", "South Korea", RegionEasternAsia, 32400, 10200, 2.6, 126, 130, 34, 38.6, 100.0, 0.02, 1992},
	{"TW", "Taiwan", RegionEasternAsia, 38500, 10400, 2.8, 120, 122, 22, 25.3, 50.0, 0.05, 1993},
	{"HK", "Hong Kong", RegionEasternAsia, 50700, 6000, 2.2, 113.8, 114.4, 22.2, 22.6, 13.0, 0.01, 1991},

	// South-Eastern Asia (48,885; 0.219)
	{"TH", "Thailand", RegionSouthEastAsia, 10300, 2300, 5.5, 98, 105.6, 6, 20, 11.0, 0.336, 1998},
	{"MY", "Malaysia", RegionSouthEastAsia, 17200, 4200, 4.3, 100, 119, 1, 7, 9.7, 0.247, 1996},
	{"VN", "Vietnam", RegionSouthEastAsia, 3600, 1100, 7.5, 102, 110, 9, 23, 8.2, 0.183, 2000},
	{"ID", "Indonesia", RegionSouthEastAsia, 5100, 680, 8.0, 95, 141, -10, 6, 7.6, 0.166, 1999},
	{"PH", "Philippines", RegionSouthEastAsia, 4500, 640, 8.5, 117, 127, 5, 19, 5.7, 0.239, 1999},
	{"SG", "Singapore", RegionSouthEastAsia, 60900, 8400, 2.1, 103.6, 104.1, 1.2, 1.5, 6.7, 0.02, 1992},

	// Southern Asia (44,524; 0.200)
	{"IN", "India", RegionSouthernAsia, 3900, 700, 9.0, 68, 90, 8, 33, 36.5, 0.225, 1997},
	{"PK", "Pakistan", RegionSouthernAsia, 2900, 450, 10.0, 61, 75, 24, 36, 5.0, 0.20, 2001},
	{"BD", "Bangladesh", RegionSouthernAsia, 2000, 280, 12.0, 88, 92.7, 20.7, 26.6, 2.0, 0.22, 2003},
	{"LK", "Sri Lanka", RegionSouthernAsia, 6100, 490, 7.0, 79.6, 81.9, 5.9, 9.8, 1.0, 0.18, 2002},

	// Western Asia (25,570; 0.0765)
	{"TR", "Turkey", RegionWesternAsia, 15200, 2700, 4.1, 26, 45, 36, 42, 15.0, 0.06, 1995},
	{"IL", "Israel", RegionWesternAsia, 32800, 6600, 2.5, 34.3, 35.7, 29.5, 33.3, 8.0, 0.02, 1992},
	{"GE", "Georgia", RegionWesternAsia, 6000, 2300, 6.5, 40, 46.7, 41.1, 43.6, 1.4, 0.546, 2002},
	{"AM", "Armenia", RegionWesternAsia, 5900, 1700, 6.8, 43.4, 46.6, 38.8, 41.3, 1.1, 0.630, 2003},

	// Central Asia (3,832; 0.401)
	{"KZ", "Kazakhstan", RegionCentralAsia, 14100, 4900, 5.2, 47, 87, 41, 55, 3.8, 0.400, 2000},

	// Northern Africa (9,984; 0.0992)
	{"EG", "Egypt", RegionNorthernAfrica, 6600, 1700, 7.2, 25, 35, 22, 31.5, 6.0, 0.09, 1998},
	{"MA", "Morocco", RegionNorthernAfrica, 5400, 830, 7.8, -13, -1, 28, 35.9, 2.1, 0.185, 1999},
	{"TN", "Tunisia", RegionNorthernAfrica, 9700, 1400, 6.1, 7.5, 11.6, 30.2, 37.5, 1.8, 0.10, 1999},

	// Southern Africa (11,255; 0.0108)
	{"ZA", "South Africa", RegionSouthernAfrica, 11600, 4500, 4.9, 16.5, 32.9, -34.8, -22.1, 11.3, 0.011, 1993},

	// Caribbean (2,174; 0.016)
	{"DO", "Dominican Republic", RegionCaribbean, 9800, 1400, 6.3, -72, -68.3, 17.5, 19.9, 2.2, 0.016, 2001},

	// Central America (44,644; 0.133)
	{"MX", "Mexico", RegionCentralAmerica, 15600, 2100, 4.4, -117, -87, 15, 32, 40.0, 0.12, 1993},
	{"CR", "Costa Rica", RegionCentralAmerica, 12800, 1900, 4.8, -85.9, -82.6, 8, 11.2, 3.5, 0.14, 1999},
	{"SV", "El Salvador", RegionCentralAmerica, 7600, 940, 6.6, -90.1, -87.7, 13.2, 14.5, 1.1, 0.311, 2002},

	// South America (133,493; 0.208)
	{"BR", "Brazil", RegionSouthAmerica, 12100, 2500, 4.7, -74, -35, -33, 2, 79.1, 0.185, 1994},
	{"AR", "Argentina", RegionSouthAmerica, 18400, 3000, 4.2, -73, -54, -52, -22, 20.4, 0.339, 1995},
	{"CL", "Chile", RegionSouthAmerica, 18700, 3600, 4.0, -75.6, -67, -53, -17.5, 12.0, 0.10, 1995},
	{"CO", "Colombia", RegionSouthAmerica, 11000, 1200, 5.3, -79, -67, -4, 12, 9.4, 0.261, 1998},
	{"VE", "Venezuela", RegionSouthAmerica, 13600, 3300, 5.0, -73, -60, 1, 12, 8.0, 0.15, 1997},
	{"PE", "Peru", RegionSouthAmerica, 10900, 1200, 5.8, -81, -69, -18, 0, 4.6, 0.401, 1999},

	// Oceania (27,206; 0.0349)
	{"AU", "Australia", RegionOceania, 42400, 10700, 2.3, 114, 153, -39, -16, 22.0, 0.035, 1989},
	{"NZ", "New Zealand", RegionOceania, 29800, 9600, 2.5, 167, 178.5, -47, -34.4, 5.2, 0.034, 1992},
	{"FJ", "Fiji", RegionOceania, 4900, 920, 7.4, 177, 180, -19.2, -16, 0.3, 0.15, 2003},

	// Smaller economies filling out the sixteen regions.
	{"IE", "Ireland", RegionNorthernEurope, 41600, 5700, 2.2, -10, -6, 51.5, 55.4, 8.0, 0.012, 1991},
	{"IS", "Iceland", RegionNorthernEurope, 39400, 51500, 2.0, -24, -13.5, 63.4, 66.5, 1.2, 0.011, 1993},
	{"LT", "Lithuania", RegionNorthernEurope, 20100, 3300, 3.4, 21, 26.8, 53.9, 56.4, 3.0, 0.09, 1996},
	{"LV", "Latvia", RegionNorthernEurope, 18100, 3100, 3.5, 21, 28.2, 55.7, 58.1, 2.5, 0.10, 1996},
	{"EE", "Estonia", RegionNorthernEurope, 21200, 6200, 2.8, 23.3, 28.2, 57.5, 59.7, 2.8, 0.07, 1995},
	{"LU", "Luxembourg", RegionWesternEurope, 80700, 13900, 2.0, 5.7, 6.5, 49.4, 50.2, 1.5, 0.007, 1992},
	{"HU", "Hungary", RegionEasternEurope, 19800, 3700, 3.6, 16.1, 22.9, 45.7, 48.6, 10.0, 0.13, 1994},
	{"SK", "Slovakia", RegionEasternEurope, 24300, 4700, 3.3, 16.8, 22.6, 47.7, 49.6, 6.0, 0.11, 1995},
	{"BG", "Bulgaria", RegionEasternEurope, 14200, 4500, 4.3, 22.4, 28.6, 41.2, 44.2, 7.0, 0.17, 1996},
	{"MD", "Moldova", RegionEasternEurope, 3800, 1400, 8.2, 26.6, 30.2, 45.5, 48.5, 1.0, 0.35, 2001},
	{"SI", "Slovenia", RegionSouthernEurope, 28600, 6500, 3.0, 13.4, 16.6, 45.4, 46.9, 3.0, 0.09, 1994},
	{"BA", "Bosnia and Herzegovina", RegionSouthernEurope, 8300, 3100, 5.6, 15.7, 19.6, 42.6, 45.3, 1.5, 0.25, 2000},
	{"MK", "North Macedonia", RegionSouthernEurope, 10700, 3500, 5.0, 20.5, 23, 40.9, 42.4, 1.0, 0.22, 2000},
	{"AL", "Albania", RegionSouthernEurope, 8000, 2100, 6.2, 19.3, 21, 39.6, 42.7, 0.8, 0.24, 2001},
	{"MT", "Malta", RegionSouthernEurope, 27500, 4800, 2.9, 14.2, 14.6, 35.8, 36.1, 0.5, 0.08, 1996},
	{"CY", "Cyprus", RegionWesternAsia, 26900, 4000, 3.0, 32.3, 34.6, 34.6, 35.7, 0.8, 0.07, 1995},
	{"SA", "Saudi Arabia", RegionWesternAsia, 31300, 8700, 3.8, 36.5, 55, 17.5, 31, 6.0, 0.08, 1995},
	{"AE", "United Arab Emirates", RegionWesternAsia, 49000, 11000, 2.5, 51.5, 56.4, 22.7, 26.1, 4.0, 0.04, 1994},
	{"JO", "Jordan", RegionWesternAsia, 6100, 2100, 6.8, 35, 39.3, 29.2, 33.4, 1.2, 0.28, 2001},
	{"LB", "Lebanon", RegionWesternAsia, 15900, 3300, 4.4, 35.1, 36.6, 33, 34.7, 1.0, 0.14, 1999},
	{"AZ", "Azerbaijan", RegionWesternAsia, 10700, 2100, 5.4, 44.8, 50.4, 38.4, 41.9, 1.0, 0.33, 2002},
	{"UZ", "Uzbekistan", RegionCentralAsia, 3600, 1600, 9.5, 56, 73.2, 37.2, 45.6, 0.8, 0.42, 2003},
	{"KG", "Kyrgyzstan", RegionCentralAsia, 2400, 1500, 10.5, 69.3, 80.3, 39.2, 43.3, 0.4, 0.45, 2004},
	{"DZ", "Algeria", RegionNorthernAfrica, 7500, 1400, 7.1, -8.7, 12, 19, 37, 1.5, 0.14, 2000},
	{"JM", "Jamaica", RegionCaribbean, 9000, 1500, 6.4, -78.4, -76.2, 17.7, 18.5, 0.8, 0.12, 2001},
	{"TT", "Trinidad and Tobago", RegionCaribbean, 20400, 6100, 3.7, -61.9, -60.5, 10, 10.9, 0.7, 0.06, 1998},
	{"GT", "Guatemala", RegionCentralAmerica, 5200, 600, 7.9, -92.2, -88.2, 13.7, 17.8, 1.5, 0.20, 2001},
	{"PA", "Panama", RegionCentralAmerica, 15600, 2100, 4.5, -83, -77.2, 7.2, 9.7, 1.5, 0.12, 1999},
	{"HN", "Honduras", RegionCentralAmerica, 4600, 710, 8.3, -89.4, -83.1, 13, 16, 0.8, 0.25, 2002},
	{"EC", "Ecuador", RegionSouthAmerica, 10600, 1300, 5.7, -81, -75.2, -5, 1.5, 3.0, 0.22, 1999},
	{"BO", "Bolivia", RegionSouthAmerica, 5000, 750, 8.1, -69.6, -57.5, -22.9, -9.7, 1.2, 0.30, 2001},
	{"UY", "Uruguay", RegionSouthAmerica, 16700, 2900, 4.1, -58.4, -53.1, -35, -30.1, 2.5, 0.11, 1997},
	{"PY", "Paraguay", RegionSouthAmerica, 6800, 1500, 6.9, -62.6, -54.3, -27.6, -19.3, 1.0, 0.24, 2001},
	{"NP", "Nepal", RegionSouthernAsia, 1500, 140, 13.0, 80, 88.2, 26.3, 30.4, 0.6, 0.28, 2004},
	{"MM", "Myanmar", RegionSouthEastAsia, 1700, 180, 12.5, 92.2, 101.2, 9.8, 28.5, 0.4, 0.30, 2005},
	{"KH", "Cambodia", RegionSouthEastAsia, 2600, 270, 11.0, 102.3, 107.6, 10.4, 14.7, 0.5, 0.28, 2004},
	{"MN", "Mongolia", RegionEasternAsia, 5400, 1700, 6.7, 87.8, 119.9, 41.6, 52.1, 0.5, 0.35, 2002},
}

// CountryByCode returns the country with the given ISO code, or nil.
func CountryByCode(code string) *Country {
	for i := range Countries {
		if Countries[i].Code == code {
			return &Countries[i]
		}
	}
	return nil
}

// RegionOf lists all countries in a region.
func RegionOf(region string) []*Country {
	var out []*Country
	for i := range Countries {
		if Countries[i].Region == region {
			out = append(out, &Countries[i])
		}
	}
	return out
}

// Regions returns the distinct region names in table order.
func Regions() []string {
	seen := make(map[string]bool)
	var out []string
	for i := range Countries {
		r := Countries[i].Region
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// TotalWeight sums the block weights of all countries.
func TotalWeight() float64 {
	var w float64
	for i := range Countries {
		w += Countries[i].BlockWeight
	}
	return w
}

// CenterLon returns the longitude of the country's bounding-box center —
// where a MaxMind-style database places blocks it can only locate to the
// country (the Fig 12 anomaly).
func (c *Country) CenterLon() float64 { return (c.LonMin + c.LonMax) / 2 }

// CenterLat returns the latitude of the bounding-box center.
func (c *Country) CenterLat() float64 { return (c.LatMin + c.LatMax) / 2 }
