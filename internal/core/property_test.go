package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: feeding a constant observation (p, t) converges every estimate
// to p/t.
func TestEstimatorConstantConvergenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tt := 1 + r.Intn(15)
		p := r.Intn(tt + 1)
		want := float64(p) / float64(tt)
		e := NewEstimator(r.Float64())
		for i := 0; i < 3000; i++ {
			e.Observe(p, tt)
		}
		return math.Abs(e.ShortTerm()-want) < 1e-6 &&
			math.Abs(e.LongTerm()-want) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the diurnal classification is invariant under positive affine
// transforms of the series (availability rescaling must not change the
// verdict).
func TestDetectDiurnalAffineInvarianceProperty(t *testing.T) {
	base := synthSeries(10, diurnalWave)
	flat := synthSeries(10, func(_ float64, _ int) float64 { return 0.6 })
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := 0.1 + 3*r.Float64()
		b := -1 + 2*r.Float64()
		transform := func(x []float64) []float64 {
			out := make([]float64, len(x))
			for i, v := range x {
				out[i] = a*v + b
			}
			return out
		}
		r1, err := DetectDiurnal(base, 10)
		if err != nil {
			return false
		}
		r2, err := DetectDiurnal(transform(base), 10)
		if err != nil {
			return false
		}
		if r1.Class != r2.Class {
			return false
		}
		f1, err := DetectDiurnal(flat, 10)
		if err != nil {
			return false
		}
		f2, err := DetectDiurnal(transform(flat), 10)
		if err != nil {
			return false
		}
		return f1.Class == f2.Class
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the diurnal phase is equivariant under circular time shifts:
// delaying the series by s samples advances the fundamental's phase by
// 2*pi*s*k/n.
func TestDetectDiurnalPhaseShiftProperty(t *testing.T) {
	days := 10
	base := synthSeries(days, diurnalWave)
	n := len(base)
	r0, err := DetectDiurnal(base, days)
	if err != nil {
		t.Fatal(err)
	}
	k := r0.FundamentalBin
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := 1 + r.Intn(n-1)
		shifted := make([]float64, n)
		for i := range shifted {
			shifted[i] = base[(i+s)%n]
		}
		rs, err := DetectDiurnal(shifted, days)
		if err != nil || rs.FundamentalBin != k {
			return false
		}
		want := math.Mod(r0.Phase+2*math.Pi*float64(s)*float64(k)/float64(n)+3*math.Pi, 2*math.Pi) - math.Pi
		d := rs.Phase - want
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		for d < -math.Pi {
			d += 2 * math.Pi
		}
		return math.Abs(d) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: StrongestCyclesPerDay of a pure c-cycles-per-day tone recovers c
// for any integer c in the resolvable range.
func TestStrongestFrequencyRecoveryProperty(t *testing.T) {
	days := 10
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := 1 + r.Intn(8) // cycles per day
		vals := synthSeries(days, func(hour float64, day int) float64 {
			sec := float64(day)*86400 + hour*3600
			return 0.5 + 0.3*math.Cos(2*math.Pi*sec*float64(c)/86400)
		})
		got, err := StrongestCyclesPerDay(vals, days)
		if err != nil {
			return false
		}
		return math.Abs(got-float64(c)) < 0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ACF detector never fires on iid noise, regardless of its
// variance or offset.
func TestACFNeverFiresOnNoiseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		off := r.Float64()
		sd := 0.01 + 0.2*r.Float64()
		nSamples := float64(roundsPerDay) * 10
		vals := make([]float64, int(nSamples))
		for i := range vals {
			vals[i] = off + sd*r.NormFloat64()
		}
		res, err := DetectDiurnalACF(vals, roundsPerDay)
		if err != nil {
			return false
		}
		return !res.Diurnal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
