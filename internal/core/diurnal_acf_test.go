package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestDetectDiurnalACFPositive(t *testing.T) {
	vals := synthSeries(14, diurnalWave)
	res, err := DetectDiurnalACF(vals, roundsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diurnal {
		t.Fatalf("diurnal series missed: %+v", res)
	}
	if res.PeakValue < 0.5 {
		t.Fatalf("peak value = %v", res.PeakValue)
	}
}

func TestDetectDiurnalACFNegative(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	vals := synthSeries(14, func(_ float64, _ int) float64 {
		return 0.7 + 0.05*r.NormFloat64()
	})
	res, err := DetectDiurnalACF(vals, roundsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diurnal {
		t.Fatalf("flat noise classified diurnal: %+v", res)
	}
}

func TestDetectDiurnalACFNonDailyPeriod(t *testing.T) {
	// A 5.5h cycle: the dominant lag sits well below one day.
	vals := synthSeries(14, func(hour float64, day int) float64 {
		sec := float64(day)*86400 + hour*3600
		return 0.5 + 0.3*math.Cos(2*3.141592653589793*sec/(5.5*3600))
	})
	res, err := DetectDiurnalACF(vals, roundsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diurnal {
		t.Fatalf("5.5h cycle classified diurnal: %+v", res)
	}
}

func TestDetectDiurnalACFAgreesWithFFT(t *testing.T) {
	// Both detectors should agree on clear cases across a parameter sweep.
	agree := 0
	total := 0
	for amp := 0.0; amp <= 0.3; amp += 0.05 {
		a := amp
		vals := synthSeries(10, func(hour float64, _ int) float64 {
			return 0.5 + a*math.Cos(2*3.141592653589793*(hour-14)/24)
		})
		fft, err := DetectDiurnal(vals, 10)
		if err != nil {
			t.Fatal(err)
		}
		acf, err := DetectDiurnalACF(vals, roundsPerDay)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if fft.Class.IsDiurnal() == acf.Diurnal {
			agree++
		}
	}
	if agree < total-1 {
		t.Fatalf("detectors agree on only %d of %d clean cases", agree, total)
	}
}

func TestDetectDiurnalACFErrors(t *testing.T) {
	if _, err := DetectDiurnalACF(make([]float64, 100), 1); err == nil {
		t.Fatal("samplesPerDay 1 should error")
	}
	if _, err := DetectDiurnalACF(make([]float64, 10), 131); err == nil {
		t.Fatal("short series should error")
	}
}
