package core

import (
	"testing"

	"sleepnet/internal/dsp"
)

// TestDetectDiurnalAllocBudget pins the steady-state allocation count of
// one classification. With a warm plan cache and a caller scratch the only
// allocations left are the retained result: the Spectrum struct and its
// Coef/Amp storage (3 allocations). The pooled DetectDiurnal wrapper is
// allowed one more for occasional pool misses. A failure means a change
// put transform temporaries back on the per-block path.
func TestDetectDiurnalAllocBudget(t *testing.T) {
	const days = 7
	n := days * 131 // a realistic non-power-of-two campaign length
	vals := dsp.Sine(n, float64(days), 0.3, 0)

	sc := dsp.NewScratch()
	if _, err := DetectDiurnalScratch(vals, days, sc); err != nil {
		t.Fatal(err)
	}

	scratchAvg := testing.AllocsPerRun(20, func() {
		if _, err := DetectDiurnalScratch(vals, days, sc); err != nil {
			t.Fatal(err)
		}
	})
	if scratchAvg > 3 {
		t.Errorf("DetectDiurnalScratch allocates %.1f/run, budget 3 (Spectrum + Coef + Amp)", scratchAvg)
	}

	pooledAvg := testing.AllocsPerRun(20, func() {
		if _, err := DetectDiurnal(vals, days); err != nil {
			t.Fatal(err)
		}
	})
	if pooledAvg > 4 {
		t.Errorf("DetectDiurnal allocates %.1f/run, budget 4 (retained Spectrum + pool slack)", pooledAvg)
	}
}
