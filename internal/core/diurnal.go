package core

import (
	"fmt"
	"sync"

	"sleepnet/internal/dsp"
)

// DiurnalClass is the outcome of the spectral diurnal test (§2.2).
type DiurnalClass int

const (
	// NonDiurnal blocks show no dominant daily periodicity.
	NonDiurnal DiurnalClass = iota
	// StrictDiurnal blocks have their strongest frequency at 1 cycle/day,
	// at least twice the next strongest non-harmonic frequency and greater
	// than all harmonics.
	StrictDiurnal
	// RelaxedDiurnal blocks have their strongest frequency at 1 cycle/day
	// or its first harmonic, without the 2x dominance requirement.
	RelaxedDiurnal
)

// String renders the class for reports.
func (c DiurnalClass) String() string {
	switch c {
	case StrictDiurnal:
		return "strict"
	case RelaxedDiurnal:
		return "relaxed"
	default:
		return "non-diurnal"
	}
}

// IsDiurnal reports whether the class is strict or relaxed diurnal.
func (c DiurnalClass) IsDiurnal() bool { return c != NonDiurnal }

// binTolerance is the +/- slop (in FFT bins) when matching the diurnal bin
// and its harmonics; the paper considers k = N_d and N_d + 1 "to account
// for noise".
const binTolerance = 1

// DiurnalResult is the full outcome of spectral diurnal detection for one
// block.
type DiurnalResult struct {
	Class DiurnalClass
	// Days is N_d, the number of whole days analyzed; the diurnal frequency
	// lives in FFT bin N_d (and N_d+1).
	Days int
	// FundamentalBin is the bin (N_d or N_d+1) carrying the larger diurnal
	// amplitude.
	FundamentalBin int
	// DiurnalAmp is the amplitude at the fundamental bin.
	DiurnalAmp float64
	// PeakBin and PeakAmp describe the strongest non-DC bin overall.
	PeakBin int
	PeakAmp float64
	// NextAmp is the strongest non-harmonic amplitude outside the diurnal
	// neighborhood — the value the 2x dominance rule compares against.
	NextAmp float64
	// MaxHarmonicAmp is the strongest amplitude among harmonics of the
	// fundamental.
	MaxHarmonicAmp float64
	// Phase is the angle of the 1-cycle/day FFT coefficient in (-pi, pi];
	// meaningful only for diurnal blocks (random otherwise).
	Phase float64
	// Spectrum retains the one-sided spectrum for plotting (Figs 1, 3, 6).
	Spectrum *dsp.Spectrum
}

// scratchPool shares warm dsp workspaces across the concurrent pipeline
// workers: DetectDiurnal and StrongestCyclesPerDay borrow one per call, so
// classifying thousands of same-length series reuses the same transform
// buffers instead of rebuilding them per block.
var scratchPool = sync.Pool{New: func() any { return dsp.NewScratch() }}

// DetectDiurnal classifies a cleaned, midnight-trimmed availability series
// covering the given whole number of days. The series should be the
// short-term estimate Âs sampled every round (§2.2). It returns an error
// when days < 2 or the series is shorter than one sample per day, because
// the diurnal bin would be indistinguishable from the series trend.
func DetectDiurnal(values []float64, days int) (DiurnalResult, error) {
	sc := scratchPool.Get().(*dsp.Scratch)
	defer scratchPool.Put(sc)
	return DetectDiurnalScratch(values, days, sc)
}

// DetectDiurnalScratch is DetectDiurnal staging the detrended series and
// transform temporaries through the caller's scratch. Steady state it
// allocates only the retained Spectrum; the scratch must not be shared
// across goroutines.
func DetectDiurnalScratch(values []float64, days int, sc *dsp.Scratch) (DiurnalResult, error) {
	if days < 2 {
		return DiurnalResult{}, fmt.Errorf("core: DetectDiurnal needs >= 2 days, got %d", days)
	}
	if len(values) < 2*days {
		return DiurnalResult{}, fmt.Errorf("core: series of %d samples too short for %d days", len(values), days)
	}
	// Remove the mean so bin 0 does not dominate, and remove any linear
	// trend so slow drift is not mistaken for low-frequency strength.
	detrended := dsp.DetrendLinearInto(sc.Floats(len(values)), values)
	spec := dsp.NewSpectrumScratch(detrended, sc)
	res := DiurnalResult{Days: days, Spectrum: spec}

	kd := days
	// Fundamental: the stronger of bins N_d and N_d+1.
	res.FundamentalBin = kd
	res.DiurnalAmp = spec.AmpAt(kd)
	if a := spec.AmpAt(kd + 1); a > res.DiurnalAmp {
		res.FundamentalBin = kd + 1
		res.DiurnalAmp = a
	}
	res.Phase = spec.Phase(res.FundamentalBin)
	res.PeakBin, res.PeakAmp = spec.Peak()

	inDiurnalNeighborhood := func(k int) bool {
		return k >= kd-0 && k <= kd+binTolerance
	}
	isHarm := func(k int) bool {
		return dsp.IsHarmonicOf(k, res.FundamentalBin, binTolerance)
	}

	// Strongest bin outside the diurnal neighborhood and not a harmonic.
	_, res.NextAmp = spec.PeakExcluding(func(k int) bool {
		return inDiurnalNeighborhood(k) || isHarm(k)
	})
	// Strongest harmonic amplitude.
	_, res.MaxHarmonicAmp = spec.PeakExcluding(func(k int) bool {
		return !isHarm(k)
	})

	peakAtFundamental := inDiurnalNeighborhood(res.PeakBin)
	firstHarmonicLow := 2*kd - binTolerance
	firstHarmonicHigh := 2*(kd+binTolerance) + binTolerance
	peakAtFirstHarmonic := res.PeakBin >= firstHarmonicLow && res.PeakBin <= firstHarmonicHigh

	switch {
	case peakAtFundamental &&
		res.DiurnalAmp >= 2*res.NextAmp &&
		res.DiurnalAmp > res.MaxHarmonicAmp:
		res.Class = StrictDiurnal
	case peakAtFundamental || peakAtFirstHarmonic:
		res.Class = RelaxedDiurnal
	default:
		res.Class = NonDiurnal
	}
	return res, nil
}

// StrongestCyclesPerDay returns the frequency (in cycles/day) of the
// strongest non-DC bin of the series — the quantity whose distribution the
// paper shows in Figure 10. The series covers the given number of days.
func StrongestCyclesPerDay(values []float64, days int) (float64, error) {
	if days <= 0 {
		return 0, fmt.Errorf("core: need positive days, got %d", days)
	}
	if len(values) < 2 {
		return 0, fmt.Errorf("core: series too short")
	}
	sc := scratchPool.Get().(*dsp.Scratch)
	defer scratchPool.Put(sc)
	detrended := dsp.DetrendLinearInto(sc.Floats(len(values)), values)
	spec := dsp.NewSpectrumScratch(detrended, sc)
	bin, _ := spec.Peak()
	return float64(bin) / float64(days), nil
}
