package core

import (
	"fmt"
	"math"

	"sleepnet/internal/dsp"
)

// ACFResult is the outcome of the autocorrelation-based diurnal test — an
// alternative detector used to ablate the paper's spectral method: instead
// of requiring a dominant FFT bin at 1 cycle/day, it requires the
// autocorrelation function to peak at the one-day lag.
type ACFResult struct {
	// Diurnal is the detector's verdict.
	Diurnal bool
	// DayLag is the lag (in samples) corresponding to 24 hours.
	DayLag int
	// PeakLag is the dominant lag found in the search window.
	PeakLag int
	// PeakValue is the autocorrelation at the dominant lag.
	PeakValue float64
}

// acfThreshold is the minimum one-day autocorrelation considered a real
// daily structure rather than noise.
const acfThreshold = 0.25

// DetectDiurnalACF classifies a series sampled samplesPerDay times per day
// by its autocorrelation: diurnal when the dominant lag in the half-day to
// day-and-a-half window sits within 5% of the one-day lag with correlation
// at least 0.25. It needs at least two days of data, like the FFT test.
func DetectDiurnalACF(values []float64, samplesPerDay float64) (ACFResult, error) {
	if samplesPerDay <= 1 {
		return ACFResult{}, fmt.Errorf("core: DetectDiurnalACF needs samplesPerDay > 1, got %v", samplesPerDay)
	}
	dayLag := int(math.Round(samplesPerDay))
	if len(values) < 2*dayLag {
		return ACFResult{}, fmt.Errorf("core: series of %d too short for day lag %d", len(values), dayLag)
	}
	maxLag := dayLag + dayLag/2
	if maxLag >= len(values) {
		maxLag = len(values) - 1
	}
	acf, err := dsp.Autocorrelation(dsp.DetrendLinear(values), maxLag)
	if err != nil {
		return ACFResult{}, err
	}
	minLag := dayLag / 2
	if minLag < 1 {
		minLag = 1
	}
	lag, v, err := dsp.DominantLag(acf, minLag, maxLag)
	if err != nil {
		return ACFResult{}, err
	}
	res := ACFResult{DayLag: dayLag, PeakLag: lag, PeakValue: v}
	tol := int(0.05*float64(dayLag)) + 1
	if abs(lag-dayLag) <= tol && v >= acfThreshold {
		res.Diurnal = true
	}
	return res, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
