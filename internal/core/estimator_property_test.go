package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// driveEstimator folds a bounded random observation stream into a fresh
// estimator and returns it. The stream shape (seed, length, per-round p/t)
// is entirely determined by the quick-generated inputs, so failures replay.
func driveEstimator(initialA float64, seed int64, rounds uint8) *Estimator {
	e := NewEstimator(initialA)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < int(rounds); i++ {
		t := rng.Intn(16) // 0..15, like the adaptive prober's 1..15 plus idle
		p := 0
		if t > 0 {
			p = rng.Intn(t + 1)
		}
		e.Observe(p, t)
	}
	return e
}

// TestEstimatorInvariants property-checks the §2.1.2 estimator bounds over
// arbitrary observation streams, including streams with zero usable rounds:
//
//	Âs, Âl, d̂l ∈ [0, 1]
//	Âo ≥ 0.1 (the operational floor)
//	Âo ≤ max(Âl, 0.1) — conservative except when the floor binds
func TestEstimatorInvariants(t *testing.T) {
	prop := func(initialA float64, seed int64, rounds uint8) bool {
		e := driveEstimator(initialA, seed, rounds)
		as, al, dl, ao := e.ShortTerm(), e.LongTerm(), e.Deviation(), e.Operational()
		for _, v := range []float64{as, al, dl, ao} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		if as < 0 || as > 1 || al < 0 || al > 1 || dl < 0 || dl > 1 {
			return false
		}
		if ao < OperationalFloor {
			return false
		}
		return ao <= math.Max(al, OperationalFloor)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestEstimatorAllPositiveMonotone: a stream of all-positive rounds (p == t)
// drives Âs monotonically (non-strictly) toward 1 — each update moves the
// short-term estimate up, never past 1.
func TestEstimatorAllPositiveMonotone(t *testing.T) {
	prop := func(initialA float64, nProbes uint8, rounds uint8) bool {
		e := NewEstimator(initialA)
		n := int(nProbes)%15 + 1
		prev := e.ShortTerm()
		for i := 0; i < int(rounds); i++ {
			e.Observe(n, n)
			cur := e.ShortTerm()
			if cur < prev-1e-12 || cur > 1 {
				return false
			}
			prev = cur
		}
		// After plenty of rounds the estimate must be close to 1: the EWMA
		// residue of the initial seed decays as (1-αs)^rounds.
		if int(rounds) >= 100 && prev < 0.99 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestEstimatorAllNegativeMonotone is the mirror image: all-negative rounds
// (p == 0) drive Âs monotonically toward 0.
func TestEstimatorAllNegativeMonotone(t *testing.T) {
	prop := func(initialA float64, nProbes uint8, rounds uint8) bool {
		e := NewEstimator(initialA)
		n := int(nProbes)%15 + 1
		prev := e.ShortTerm()
		for i := 0; i < int(rounds); i++ {
			e.Observe(0, n)
			cur := e.ShortTerm()
			if cur > prev+1e-12 || cur < 0 {
				return false
			}
			prev = cur
		}
		if int(rounds) >= 100 && prev > 0.01 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestEstimatorStateRoundTripProperty: State/EstimatorFromState is lossless
// for any reachable estimator, and the restored copy evolves identically.
func TestEstimatorStateRoundTripProperty(t *testing.T) {
	prop := func(initialA float64, seed int64, rounds uint8, p, n uint8) bool {
		e := driveEstimator(initialA, seed, rounds)
		r := EstimatorFromState(e.State())
		if r.ShortTerm() != e.ShortTerm() || r.LongTerm() != e.LongTerm() ||
			r.Deviation() != e.Deviation() || r.Operational() != e.Operational() ||
			r.Rounds() != e.Rounds() {
			return false
		}
		// One more identical observation keeps them in lockstep bit for bit.
		nn := int(n)%15 + 1
		pp := int(p) % (nn + 1)
		e.Observe(pp, nn)
		r.Observe(pp, nn)
		return r.State() == e.State()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
