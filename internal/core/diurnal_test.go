package core

import (
	"math"
	"math/rand"
	"testing"
)

// roundsPerDay matches the paper's 11-minute sampling.
const roundsPerDay = 86400.0 / 660.0

// synthSeries builds a days-long series sampled every 11 minutes by
// evaluating f(hourOfDay, dayIndex).
func synthSeries(days int, f func(hour float64, day int) float64) []float64 {
	n := int(float64(days) * roundsPerDay)
	out := make([]float64, n)
	for i := range out {
		sec := float64(i) * 660
		day := int(sec / 86400)
		hour := math.Mod(sec/3600, 24)
		out[i] = f(hour, day)
	}
	return out
}

func diurnalWave(hour float64, _ int) float64 {
	// Smooth day/night availability swing between 0.2 and 0.8 peaking at 14h.
	return 0.5 + 0.3*math.Cos(2*math.Pi*(hour-14)/24)
}

func TestDetectDiurnalStrict(t *testing.T) {
	vals := synthSeries(14, diurnalWave)
	res, err := DetectDiurnal(vals, 14)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != StrictDiurnal {
		t.Fatalf("class = %v, want strict (peak bin %d amp %.2f next %.2f)", res.Class, res.PeakBin, res.DiurnalAmp, res.NextAmp)
	}
	if res.FundamentalBin != 14 && res.FundamentalBin != 15 {
		t.Fatalf("fundamental = %d, want 14 or 15", res.FundamentalBin)
	}
	if !res.Class.IsDiurnal() {
		t.Fatal("IsDiurnal")
	}
}

func TestDetectDiurnalFlatNoise(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	vals := synthSeries(14, func(_ float64, _ int) float64 {
		return 0.7 + 0.05*r.NormFloat64()
	})
	res, err := DetectDiurnal(vals, 14)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != NonDiurnal {
		t.Fatalf("flat noise classified %v", res.Class)
	}
}

func TestDetectDiurnalPhaseTracksOnset(t *testing.T) {
	// Two pure daily cosines with different peak hours must differ in phase
	// by the corresponding fraction of a day.
	mk := func(peak float64) []float64 {
		return synthSeries(14, func(hour float64, _ int) float64 {
			return 0.5 + 0.3*math.Cos(2*math.Pi*(hour-peak)/24)
		})
	}
	r1, err := DetectDiurnal(mk(6), 14)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DetectDiurnal(mk(12), 14)
	if err != nil {
		t.Fatal(err)
	}
	d := r2.Phase - r1.Phase
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	// Six hours later peak = quarter day = pi/2 phase lag.
	if math.Abs(math.Abs(d)-math.Pi/2) > 0.1 {
		t.Fatalf("phase difference = %v, want ±pi/2", d)
	}
}

func TestDetectDiurnalRelaxedOnHarmonic(t *testing.T) {
	// Energy dominated by the 2-cycles/day harmonic (e.g. lunch-dip
	// bimodal day): strict fails, relaxed catches it.
	vals := synthSeries(14, func(hour float64, _ int) float64 {
		return 0.5 + 0.25*math.Cos(2*2*math.Pi*hour/24) + 0.05*math.Cos(2*math.Pi*hour/24)
	})
	res, err := DetectDiurnal(vals, 14)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != RelaxedDiurnal {
		t.Fatalf("class = %v, want relaxed (peak %d)", res.Class, res.PeakBin)
	}
}

func TestDetectDiurnalWeakDailySignalIsRelaxed(t *testing.T) {
	// Daily signal strongest but a strong unrelated periodicity removes
	// the 2x dominance: relaxed, not strict.
	vals := synthSeries(14, func(hour float64, day int) float64 {
		sec := float64(day)*86400 + hour*3600
		other := 0.22 * math.Cos(2*math.Pi*sec/(5.37*3600)) // ~4.47 cyc/day
		return 0.5 + 0.25*math.Cos(2*math.Pi*hour/24) + other
	})
	res, err := DetectDiurnal(vals, 14)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != RelaxedDiurnal {
		t.Fatalf("class = %v (peak %d, diurnal %.1f, next %.1f)", res.Class, res.PeakBin, res.DiurnalAmp, res.NextAmp)
	}
}

func TestDetectDiurnalNonDailyPeriodicity(t *testing.T) {
	// A pure 5.5-hour cycle (DHCP-lease-like) is not diurnal at all.
	vals := synthSeries(14, func(hour float64, day int) float64 {
		sec := float64(day)*86400 + hour*3600
		return 0.5 + 0.3*math.Cos(2*math.Pi*sec/(5.5*3600))
	})
	res, err := DetectDiurnal(vals, 14)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != NonDiurnal {
		t.Fatalf("class = %v, want non-diurnal", res.Class)
	}
}

func TestDetectDiurnalSquareWave(t *testing.T) {
	// An 8h-on/16h-off square wave has strong harmonics but the fundamental
	// still dominates: must be at least relaxed, typically strict.
	vals := synthSeries(14, func(hour float64, _ int) float64 {
		if hour >= 9 && hour < 17 {
			return 0.9
		}
		return 0.2
	})
	res, err := DetectDiurnal(vals, 14)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Class.IsDiurnal() {
		t.Fatalf("square wave not detected: %v", res.Class)
	}
	if res.Class != StrictDiurnal {
		t.Logf("square wave relaxed (harmonics): fundamental %.1f, maxHarm %.1f", res.DiurnalAmp, res.MaxHarmonicAmp)
	}
}

func TestDetectDiurnalTrendDoesNotFool(t *testing.T) {
	// A strong continuous linear trend plus faint noise must not classify
	// diurnal. (A per-day staircase would be genuinely daily-periodic.)
	r := rand.New(rand.NewSource(8))
	vals := synthSeries(14, func(hour float64, day int) float64 {
		sec := float64(day)*86400 + hour*3600
		return 0.2 + 0.04*sec/86400 + 0.01*r.NormFloat64()
	})
	res, err := DetectDiurnal(vals, 14)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != NonDiurnal {
		t.Fatalf("trend classified %v", res.Class)
	}
}

func TestDetectDiurnalErrors(t *testing.T) {
	if _, err := DetectDiurnal(make([]float64, 100), 1); err == nil {
		t.Fatal("days < 2 should error")
	}
	if _, err := DetectDiurnal(make([]float64, 10), 14); err == nil {
		t.Fatal("short series should error")
	}
}

func TestDiurnalClassString(t *testing.T) {
	if NonDiurnal.String() != "non-diurnal" || StrictDiurnal.String() != "strict" || RelaxedDiurnal.String() != "relaxed" {
		t.Fatal("String()")
	}
}

func TestStrongestCyclesPerDay(t *testing.T) {
	vals := synthSeries(14, diurnalWave)
	cpd, err := StrongestCyclesPerDay(vals, 14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cpd-1) > 0.1 {
		t.Fatalf("cycles/day = %v, want ~1", cpd)
	}
	vals2 := synthSeries(14, func(hour float64, day int) float64 {
		sec := float64(day)*86400 + hour*3600
		return 0.5 + 0.3*math.Cos(2*math.Pi*sec/(5.5*3600))
	})
	cpd2, err := StrongestCyclesPerDay(vals2, 14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cpd2-24/5.5) > 0.15 {
		t.Fatalf("cycles/day = %v, want ~%v", cpd2, 24/5.5)
	}
	if _, err := StrongestCyclesPerDay(vals, 0); err == nil {
		t.Fatal("zero days should error")
	}
	if _, err := StrongestCyclesPerDay([]float64{1}, 5); err == nil {
		t.Fatal("short should error")
	}
}

func TestDetect35DayWindow(t *testing.T) {
	// The A12w shape: 35 days, fundamental at bin 35.
	vals := synthSeries(35, diurnalWave)
	res, err := DetectDiurnal(vals, 35)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != StrictDiurnal {
		t.Fatalf("class = %v", res.Class)
	}
	if res.FundamentalBin != 35 && res.FundamentalBin != 36 {
		t.Fatalf("fundamental = %d", res.FundamentalBin)
	}
}

func BenchmarkDetectDiurnal14d(b *testing.B) {
	vals := synthSeries(14, diurnalWave)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DetectDiurnal(vals, 14); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectDiurnal35d(b *testing.B) {
	vals := synthSeries(35, diurnalWave)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DetectDiurnal(vals, 35); err != nil {
			b.Fatal(err)
		}
	}
}
