package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// simulateRounds feeds the estimator with stop-on-first-positive
// observations from a block of availability a, and returns the final
// estimator.
func simulateRounds(e *Estimator, a float64, rounds int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < rounds; i++ {
		p, t := 0, 0
		for t < 15 {
			t++
			if r.Float64() < a {
				p = 1
				break
			}
		}
		e.Observe(p, t)
	}
}

func TestEstimatorConvergesToTrueA(t *testing.T) {
	for _, a := range []float64{0.2, 0.5, 0.735, 0.9} {
		e := NewEstimator(0.5)
		simulateRounds(e, a, 4000, 42)
		if got := e.ShortTerm(); math.Abs(got-a) > 0.12 {
			t.Errorf("A=%v: ShortTerm = %v (noisy but should be near)", a, got)
		}
		if got := e.LongTerm(); math.Abs(got-a) > 0.05 {
			t.Errorf("A=%v: LongTerm = %v", a, got)
		}
	}
}

func TestEstimatorConvergesFromBadPrior(t *testing.T) {
	// Historical estimate badly wrong (0.05 when truth is 0.8).
	e := NewEstimator(0.05)
	simulateRounds(e, 0.8, 2000, 7)
	if got := e.LongTerm(); math.Abs(got-0.8) > 0.05 {
		t.Fatalf("LongTerm = %v, want ~0.8 despite bad prior", got)
	}
}

func TestOperationalUnderestimates(t *testing.T) {
	// After convergence, Âo should be at or below the true A nearly always.
	const a = 0.6
	e := NewEstimator(0.5)
	r := rand.New(rand.NewSource(9))
	warmup := 500
	under, total := 0, 0
	for i := 0; i < 4000; i++ {
		p, tt := 0, 0
		for tt < 15 {
			tt++
			if r.Float64() < a {
				p = 1
				break
			}
		}
		e.Observe(p, tt)
		if i >= warmup {
			total++
			if e.Operational() <= a {
				under++
			}
		}
	}
	frac := float64(under) / float64(total)
	if frac < 0.9 {
		t.Fatalf("operational under true A only %.1f%% of rounds, want >= 90%%", frac*100)
	}
}

func TestOperationalFloor(t *testing.T) {
	e := NewEstimator(0)
	for i := 0; i < 100; i++ {
		e.Observe(0, 15)
	}
	if got := e.Operational(); got != OperationalFloor {
		t.Fatalf("Operational = %v, want floor %v", got, OperationalFloor)
	}
}

func TestEstimatorIgnoresDegenerateObservations(t *testing.T) {
	e := NewEstimator(0.5)
	before := e.ShortTerm()
	e.Observe(1, 0)
	e.Observe(-1, 0)
	if e.ShortTerm() != before || e.Rounds() != 0 {
		t.Fatal("t=0 observations must be ignored")
	}
	// p out of range is clamped.
	e.Observe(5, 2)
	if e.ShortTerm() > 1 {
		t.Fatalf("clamping failed: %v", e.ShortTerm())
	}
	e2 := NewEstimator(0.5)
	e2.Observe(-3, 2)
	if e2.ShortTerm() < 0 {
		t.Fatalf("negative p clamping failed: %v", e2.ShortTerm())
	}
}

func TestEstimatorBoundsProperty(t *testing.T) {
	// Estimates always stay in [0, 1] whatever the observation stream.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEstimator(r.Float64())
		for i := 0; i < 200; i++ {
			tt := 1 + r.Intn(15)
			p := r.Intn(tt + 1)
			e.Observe(p, tt)
			for _, v := range []float64{e.ShortTerm(), e.LongTerm(), e.Operational()} {
				if v < 0 || v > 1 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestShortTermAdaptsFasterThanLongTerm(t *testing.T) {
	e := NewEstimator(0.9)
	// Block abruptly drops to A = 0.1.
	simulateRounds(e, 0.1, 60, 3)
	if !(e.ShortTerm() < e.LongTerm()) {
		t.Fatalf("after drop: short %v should lead long %v downward", e.ShortTerm(), e.LongTerm())
	}
}

func TestRatioEstimatorOverestimates(t *testing.T) {
	// The A12w variant smooths p/t directly; with stop-on-first-positive
	// sampling it must overestimate mid-range availabilities, while the
	// separate-EWMA estimator does not.
	const a = 0.5
	good := NewEstimator(a)
	bad := NewRatioEstimator(a, AlphaShort)
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 6000; i++ {
		p, tt := 0, 0
		for tt < 15 {
			tt++
			if r.Float64() < a {
				p = 1
				break
			}
		}
		good.Observe(p, tt)
		bad.Observe(p, tt)
	}
	if got := bad.Estimate(); got < a+0.1 {
		t.Fatalf("ratio estimator = %v, expected clear overestimate of %v", got, a)
	}
	if got := good.LongTerm(); math.Abs(got-a) > 0.05 {
		t.Fatalf("separate estimator = %v, want ~%v", got, a)
	}
}

func TestNewEstimatorClampsPrior(t *testing.T) {
	if got := NewEstimator(2).ShortTerm(); got != 1 {
		t.Fatalf("prior clamp high: %v", got)
	}
	if got := NewEstimator(-1).ShortTerm(); got != 0 {
		t.Fatalf("prior clamp low: %v", got)
	}
	if got := NewEstimator(math.NaN()).ShortTerm(); got != 0 {
		t.Fatalf("prior NaN: %v", got)
	}
}

func TestCustomGains(t *testing.T) {
	fast := NewEstimatorWithGains(0.9, 0.5, 0.01)
	slow := NewEstimatorWithGains(0.9, 0.01, 0.01)
	for i := 0; i < 20; i++ {
		fast.Observe(0, 15)
		slow.Observe(0, 15)
	}
	if !(fast.ShortTerm() < slow.ShortTerm()) {
		t.Fatalf("higher gain should adapt faster: %v vs %v", fast.ShortTerm(), slow.ShortTerm())
	}
}

func TestDeviationTracksVolatility(t *testing.T) {
	stable := NewEstimator(0.5)
	volatile := NewEstimator(0.5)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		stable.Observe(1, 2) // constant 0.5
		if r.Float64() < 0.5 {
			volatile.Observe(1, 1)
		} else {
			volatile.Observe(0, 15)
		}
	}
	if !(volatile.Deviation() > stable.Deviation()) {
		t.Fatalf("deviation should reflect volatility: %v vs %v", volatile.Deviation(), stable.Deviation())
	}
}
