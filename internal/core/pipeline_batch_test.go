package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"sleepnet/internal/faults"
	"sleepnet/internal/netsim"
	"sleepnet/internal/trinocular"
)

// batchRounds keeps the group-equivalence fixture fast while still crossing
// midnight (trim needs a full UTC day) and several restart windows.
const batchRounds = 2*86400/660 + 30

// buildBatchPipeline assembles a fresh hostile fixture: a mixed population
// (diurnal, stable, flaky, outage-prone, reply-rate-limited, sparse), a wire
// fault injector, collection artifacts, retries, and restart downtime. Each
// call builds an independent world so the two probe paths share no state.
func buildBatchPipeline() (*Pipeline, []netsim.BlockID) {
	net := netsim.NewNetwork(77)

	diurnal := mkDiurnalBlock(netsim.MakeBlockID(27, 1, 1), 80)
	stable := mkStableBlock(netsim.MakeBlockID(27, 1, 2), 60, 1)
	flaky := mkStableBlock(netsim.MakeBlockID(27, 1, 3), 90, 0.5)
	outage := mkStableBlock(netsim.MakeBlockID(27, 1, 4), 70, 1)
	outage.GatewayUnreachableProb = 0.4
	outage.Outages = []netsim.Interval{
		{Start: start.Add(5 * time.Hour), End: start.Add(9 * time.Hour)},
	}
	limited := mkStableBlock(netsim.MakeBlockID(27, 1, 5), 50, 0.7)
	limited.ReplyRateLimit = 2
	sparse := mkStableBlock(netsim.MakeBlockID(27, 1, 6), 4, 1)

	ids := make([]netsim.BlockID, 0, 7)
	for _, b := range []*netsim.Block{diurnal, stable, flaky, outage, limited, sparse} {
		net.AddBlock(b)
		ids = append(ids, b.ID)
	}
	// One id that is not in the network at all: its error slot must come
	// back filled while the rest of the group measures normally.
	ids = append(ids, netsim.MakeBlockID(99, 99, 99))

	net.SetTap(faults.New(faults.Config{
		Seed:              31,
		LossRate:          0.1,
		CorruptRate:       0.1,
		RateLimitPerRound: 8,
		BlackoutEvery:     3 * time.Hour,
		BlackoutFor:       2 * time.Minute,
		Epoch:             start,
	}))

	cfg := PipelineConfig{
		Start:         start,
		Rounds:        batchRounds,
		Seed:          5,
		MissingRate:   0.03,
		DuplicateRate: 0.02,
		Prober: trinocular.Config{
			RestartInterval:     6 * time.Hour,
			RestartDowntimeFrac: 0.5,
			Retry:               trinocular.RetryConfig{MaxAttempts: 3, BaseBackoff: time.Second},
		},
	}
	return NewPipeline(net, cfg), ids
}

// TestRunBlocksMatchesRunBlock is the pipeline-level equivalence gate: for
// every group size, the lockstep batched group runner must return, block for
// block, exactly what sequential RunBlock calls return — records, series,
// classifications, and error slots alike — under wire faults, collection
// artifacts, retries, and restart downtime.
func TestRunBlocksMatchesRunBlock(t *testing.T) {
	plRef, ids := buildBatchPipeline()
	refRuns := make([]*BlockRun, len(ids))
	refErrs := make([]error, len(ids))
	for i, id := range ids {
		refRuns[i], refErrs[i] = plRef.RunBlock(id)
	}
	if !errors.Is(refErrs[5], trinocular.ErrTooSparse) {
		t.Fatalf("fixture block 5 should be sparse, got %v", refErrs[5])
	}
	if refErrs[6] == nil {
		t.Fatal("fixture block 6 should be unknown to the network")
	}

	for _, group := range []int{1, 3, len(ids)} {
		pl, _ := buildBatchPipeline()
		runs := make([]*BlockRun, 0, len(ids))
		errs := make([]error, 0, len(ids))
		for g := 0; g < len(ids); g += group {
			e := g + group
			if e > len(ids) {
				e = len(ids)
			}
			rs, es := pl.RunBlocks(ids[g:e])
			runs = append(runs, rs...)
			errs = append(errs, es...)
		}
		for i, id := range ids {
			switch {
			case (refErrs[i] == nil) != (errs[i] == nil):
				t.Fatalf("group %d block %s: error mismatch: %v vs %v", group, id, refErrs[i], errs[i])
			case refErrs[i] != nil:
				if errors.Is(refErrs[i], trinocular.ErrTooSparse) != errors.Is(errs[i], trinocular.ErrTooSparse) {
					t.Fatalf("group %d block %s: sparse classification diverged", group, id)
				}
			case !reflect.DeepEqual(refRuns[i], runs[i]):
				t.Fatalf("group %d block %s: batched run diverged from scalar", group, id)
			}
		}
	}
}
