// Package core implements the paper's primary contribution: estimating
// /24-block availability from the biased observations of adaptive outage
// probing (§2.1), and detecting diurnal blocks by spectral analysis of the
// short-term estimate (§2.2).
//
// Three availability estimates are maintained per block, all exponentially
// weighted moving averages over the per-round observation of p positive
// responses out of t probes:
//
//	Âs = p̂s/t̂s with gain αs = 0.1  (short-term, drives diurnal detection)
//	Âl = p̂l/t̂l with gain αl = 0.01 (long-term)
//	Âo = max(Âl − d̂l/2, 0.1)        (operational, deliberately conservative)
//
// p and t are smoothed separately because A is their ratio: smoothing the
// ratio directly overestimates A (the paper's A12w variant, kept here as
// RatioEstimator for the ablation benchmark).
package core

import "math"

// Estimator gains and floors from §2.1.2 of the paper.
const (
	AlphaShort       = 0.1
	AlphaLong        = 0.01
	OperationalFloor = 0.1
)

// Estimator tracks the three availability estimates for one block.
type Estimator struct {
	alphaS, alphaL float64

	pS, tS float64 // short-term EWMAs of p and t
	pL, tL float64 // long-term EWMAs of p and t
	dL     float64 // long-term EWMA of |Âl − p/t|

	rounds int
}

// NewEstimator creates an estimator seeded with a historical availability
// estimate (the paper seeds from years-old census data, which may be badly
// wrong; the estimator must converge regardless). initialA is clamped to
// [0, 1].
func NewEstimator(initialA float64) *Estimator {
	initialA = clamp01(initialA)
	return &Estimator{
		alphaS: AlphaShort,
		alphaL: AlphaLong,
		// Seed the averages as one synthetic observation of a single probe
		// with the historical success rate.
		pS: initialA, tS: 1,
		pL: initialA, tL: 1,
	}
}

// NewEstimatorWithGains creates an estimator with custom gains, for the
// gain-sensitivity ablation.
func NewEstimatorWithGains(initialA, alphaS, alphaL float64) *Estimator {
	e := NewEstimator(initialA)
	e.alphaS = alphaS
	e.alphaL = alphaL
	return e
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Observe folds one round's observation (p positives of t probes) into the
// estimates. Rounds with t == 0 are ignored.
func (e *Estimator) Observe(p, t int) {
	if t <= 0 {
		return
	}
	if p < 0 {
		p = 0
	}
	if p > t {
		p = t
	}
	fp, ft := float64(p), float64(t)
	e.pS = e.alphaS*fp + (1-e.alphaS)*e.pS
	e.tS = e.alphaS*ft + (1-e.alphaS)*e.tS
	e.pL = e.alphaL*fp + (1-e.alphaL)*e.pL
	e.tL = e.alphaL*ft + (1-e.alphaL)*e.tL
	// Deviation of the raw sample from the long-term estimate.
	e.dL = e.alphaL*math.Abs(e.LongTerm()-fp/ft) + (1-e.alphaL)*e.dL
	e.rounds++
}

// ShortTerm returns Âs.
func (e *Estimator) ShortTerm() float64 { return ratio(e.pS, e.tS) }

// LongTerm returns Âl.
func (e *Estimator) LongTerm() float64 { return ratio(e.pL, e.tL) }

// Deviation returns d̂l, the long-term mean absolute deviation.
func (e *Estimator) Deviation() float64 { return e.dL }

// Operational returns Âo = max(Âl − d̂l/2, 0.1): a deliberately conservative
// value, because an overestimate makes a few negative probes look like an
// outage.
func (e *Estimator) Operational() float64 {
	v := e.LongTerm() - e.dL/2
	if v < OperationalFloor {
		return OperationalFloor
	}
	return v
}

// Rounds returns how many observations have been folded in.
func (e *Estimator) Rounds() int { return e.rounds }

// EstimatorState is the serializable snapshot of an Estimator, used by
// campaign checkpoint files so a resumed run continues with bit-identical
// EWMA state.
type EstimatorState struct {
	AlphaS, AlphaL float64
	PS, TS         float64
	PL, TL         float64
	DL             float64
	Rounds         int
}

// State snapshots the estimator.
func (e *Estimator) State() EstimatorState {
	return EstimatorState{
		AlphaS: e.alphaS, AlphaL: e.alphaL,
		PS: e.pS, TS: e.tS, PL: e.pL, TL: e.tL, DL: e.dL,
		Rounds: e.rounds,
	}
}

// EstimatorFromState rebuilds an estimator from a snapshot.
func EstimatorFromState(s EstimatorState) *Estimator {
	return &Estimator{
		alphaS: s.AlphaS, alphaL: s.AlphaL,
		pS: s.PS, tS: s.TS, pL: s.PL, tL: s.TL, dL: s.DL,
		rounds: s.Rounds,
	}
}

func ratio(p, t float64) float64 {
	if t <= 0 {
		return 0
	}
	v := p / t
	return clamp01(v)
}

// RatioEstimator is the A12w-era variant that smooths the ratio p/t
// directly instead of smoothing p and t separately. It consistently
// overestimates A (stop-on-first-positive makes p/t = 1 the most common
// observation), which is why the paper replaced it; it is retained for the
// ablation benchmark.
type RatioEstimator struct {
	alpha float64
	a     float64
	init  bool
}

// NewRatioEstimator creates the variant estimator with gain alpha.
func NewRatioEstimator(initialA, alpha float64) *RatioEstimator {
	return &RatioEstimator{alpha: alpha, a: clamp01(initialA), init: true}
}

// Observe folds one round in.
func (e *RatioEstimator) Observe(p, t int) {
	if t <= 0 {
		return
	}
	if p < 0 {
		p = 0
	}
	if p > t {
		p = t
	}
	obs := float64(p) / float64(t)
	e.a = e.alpha*obs + (1-e.alpha)*e.a
}

// Estimate returns the smoothed ratio.
func (e *RatioEstimator) Estimate() float64 { return e.a }
