package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"sleepnet/internal/netsim"
	"sleepnet/internal/timeseries"
	"sleepnet/internal/trinocular"
)

var start = time.Date(2013, time.April, 24, 17, 18, 0, 0, time.UTC)

const testRounds = 14*86400/660 + 60 // a bit over 14 days

// mkDiurnalBlock: 50 always-on + nd diurnal (9:00 for 8h) addresses.
func mkDiurnalBlock(id netsim.BlockID, nd int) *netsim.Block {
	b := &netsim.Block{ID: id, Seed: uint64(id)}
	h := 0
	for ; h < 50; h++ {
		b.Behaviors[h] = netsim.AlwaysOn{}
	}
	for ; h < 50+nd; h++ {
		b.Behaviors[h] = netsim.Diurnal{Phase: 9 * time.Hour, Duration: 8 * time.Hour, Seed: uint64(id) + uint64(h)}
	}
	return b
}

func mkStableBlock(id netsim.BlockID, n int, p float64) *netsim.Block {
	b := &netsim.Block{ID: id, Seed: uint64(id)}
	for h := 0; h < n; h++ {
		if p >= 1 {
			b.Behaviors[h] = netsim.AlwaysOn{}
		} else {
			b.Behaviors[h] = netsim.Intermittent{P: p, Seed: uint64(id) + uint64(h)}
		}
	}
	return b
}

func pipelineOver(blocks ...*netsim.Block) (*Pipeline, *netsim.Network) {
	net := netsim.NewNetwork(99)
	for _, b := range blocks {
		net.AddBlock(b)
	}
	cfg := PipelineConfig{Start: start, Rounds: testRounds, Seed: 5}
	return NewPipeline(net, cfg), net
}

func TestPipelineDetectsDiurnalBlock(t *testing.T) {
	blk := mkDiurnalBlock(netsim.MakeBlockID(27, 186, 9), 100)
	pl, _ := pipelineOver(blk)
	run, err := pl.RunBlock(blk.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Result.Class.IsDiurnal() {
		t.Fatalf("diurnal block classified %v (peak %d, diurnal %.1f, next %.1f)",
			run.Result.Class, run.Result.PeakBin, run.Result.DiurnalAmp, run.Result.NextAmp)
	}
	if run.Days < 13 || run.Days > 14 {
		t.Fatalf("Days = %d", run.Days)
	}
	if run.Short.Len() != testRounds {
		t.Fatalf("series len = %d, want %d", run.Short.Len(), testRounds)
	}
	if len(run.Operational) != testRounds || len(run.LongTerm) != testRounds || len(run.RawRate) != testRounds {
		t.Fatal("diagnostic series must cover every round")
	}
}

func TestPipelineStableBlockNonDiurnal(t *testing.T) {
	blk := mkStableBlock(netsim.MakeBlockID(1, 9, 21), 42, 1)
	pl, _ := pipelineOver(blk)
	run, err := pl.RunBlock(blk.ID)
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.Class != NonDiurnal {
		t.Fatalf("always-on block classified %v", run.Result.Class)
	}
	// Âs of a fully-up block converges to 1.
	tail := run.Short.Values[run.Short.Len()-1]
	if tail < 0.95 {
		t.Fatalf("final Âs = %v, want ~1", tail)
	}
}

func TestPipelineEstimateTracksLowAvailability(t *testing.T) {
	blk := mkStableBlock(netsim.MakeBlockID(93, 208, 233), 245, 0.19)
	pl, _ := pipelineOver(blk)
	run, err := pl.RunBlock(blk.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Mean of the converged half of Âs should be near 0.19.
	var sum float64
	half := run.Short.Values[run.Short.Len()/2:]
	for _, v := range half {
		sum += v
	}
	mean := sum / float64(len(half))
	if math.Abs(mean-0.19) > 0.05 {
		t.Fatalf("mean Âs = %v, want ~0.19", mean)
	}
	// Operational stays at or below truth nearly always after warmup.
	under := 0
	opsTail := run.Operational[len(run.Operational)/2:]
	for _, v := range opsTail {
		if v <= 0.19+1e-9 || v == OperationalFloor {
			under++
		}
	}
	if frac := float64(under) / float64(len(opsTail)); frac < 0.9 {
		t.Fatalf("Âo under truth only %.1f%%", frac*100)
	}
}

func TestPipelineOutageDetected(t *testing.T) {
	blk := mkStableBlock(netsim.MakeBlockID(1, 9, 21), 42, 1)
	// Outage spanning rounds ~957-1000.
	oStart := start.Add(957 * 660 * time.Second)
	blk.Outages = []netsim.Interval{{Start: oStart, End: oStart.Add(8 * time.Hour)}}
	pl, _ := pipelineOver(blk)
	run, err := pl.RunBlock(blk.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Outages) != 2 {
		t.Fatalf("outage events = %+v, want down+up", run.Outages)
	}
	if !run.Outages[0].Down || run.Outages[1].Down {
		t.Fatalf("events = %+v", run.Outages)
	}
	if got := run.Outages[0].Round; got < 957 || got > 960 {
		t.Fatalf("outage detected at round %d, want ~957", got)
	}
}

func TestPipelineArtifacts(t *testing.T) {
	blk := mkStableBlock(netsim.MakeBlockID(5, 5, 5), 60, 1)
	net := netsim.NewNetwork(3)
	net.AddBlock(blk)
	cfg := PipelineConfig{Start: start, Rounds: testRounds, Seed: 5, MissingRate: 0.03, DuplicateRate: 0.02}
	pl := NewPipeline(net, cfg)
	run, err := pl.RunBlock(blk.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Roughly 3% of rounds filled and 2% duplicated.
	fillFrac := float64(run.CleanStats.Filled) / float64(testRounds)
	dupFrac := float64(run.CleanStats.Duplicates) / float64(testRounds)
	if fillFrac < 0.01 || fillFrac > 0.06 {
		t.Fatalf("filled fraction = %v", fillFrac)
	}
	if dupFrac < 0.005 || dupFrac > 0.05 {
		t.Fatalf("duplicate fraction = %v", dupFrac)
	}
	if run.Short.Len() != testRounds {
		t.Fatal("cleaning must restore the full grid")
	}
}

func TestPipelineSparseBlockRejected(t *testing.T) {
	blk := mkStableBlock(netsim.MakeBlockID(7, 7, 7), 10, 1)
	pl, _ := pipelineOver(blk)
	if _, err := pl.RunBlock(blk.ID); !errors.Is(err, trinocular.ErrTooSparse) {
		t.Fatalf("want ErrTooSparse, got %v", err)
	}
}

func TestPipelineUnknownBlock(t *testing.T) {
	pl, _ := pipelineOver()
	if _, err := pl.RunBlock(netsim.MakeBlockID(9, 9, 9)); err == nil {
		t.Fatal("unknown block should error")
	}
	if _, err := pl.Survey(netsim.MakeBlockID(9, 9, 9)); err == nil {
		t.Fatal("unknown survey should error")
	}
}

func TestPipelineZeroRounds(t *testing.T) {
	blk := mkStableBlock(netsim.MakeBlockID(8, 8, 8), 60, 1)
	net := netsim.NewNetwork(3)
	net.AddBlock(blk)
	pl := NewPipeline(net, PipelineConfig{Start: start})
	if _, err := pl.RunBlock(blk.ID); err == nil {
		t.Fatal("zero rounds should error")
	}
	if _, err := pl.Survey(blk.ID); err == nil {
		t.Fatal("zero-round survey should error")
	}
}

func TestSurveyGroundTruth(t *testing.T) {
	blk := mkDiurnalBlock(netsim.MakeBlockID(27, 186, 9), 100)
	pl, _ := pipelineOver(blk)
	sv, err := pl.Survey(blk.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Len() != testRounds {
		t.Fatalf("survey len = %d", sv.Len())
	}
	// Ground truth oscillates between 1/3 (night: 50 of 150) and 1 (day).
	min, max := sv.Values[0], sv.Values[0]
	for _, v := range sv.Values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if math.Abs(min-1.0/3) > 0.02 || math.Abs(max-1) > 1e-9 {
		t.Fatalf("survey range [%v, %v], want [1/3, 1]", min, max)
	}
	// Classifying the survey yields strict diurnal: the §3.2.3 ground truth.
	res, days, err := ClassifySeries(sv)
	if err != nil {
		t.Fatal(err)
	}
	if days < 13 || !res.Class.IsDiurnal() {
		t.Fatalf("survey classification: days=%d class=%v", days, res.Class)
	}
}

func TestEstimateAgreesWithSurveyCorrelation(t *testing.T) {
	// The Fig-4 property in miniature: Âs correlates strongly with true A.
	blk := mkDiurnalBlock(netsim.MakeBlockID(27, 186, 9), 100)
	pl, _ := pipelineOver(blk)
	run, err := pl.RunBlock(blk.ID)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := pl.Survey(blk.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Pearson by hand over the converged tail.
	a := run.Short.Values[200:]
	b := sv.Values[200:]
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	// The EWMA lags the truth by ~10 rounds, so per-block correlation on a
	// strongly diurnal block is below the paper's pooled 0.96 (which is
	// dominated by stable blocks); strong positive correlation is the
	// invariant.
	r := sab / math.Sqrt(saa*sbb)
	if r < 0.75 {
		t.Fatalf("corr(Âs, A) = %v, want > 0.75", r)
	}
}

func TestClassifySeriesErrors(t *testing.T) {
	short := timeseries.New(start, timeseries.DefaultRound, make([]float64, 10))
	if _, _, err := ClassifySeries(short); err == nil {
		t.Fatal("short series should error")
	}
}
