package core

import (
	"fmt"
	"time"

	"sleepnet/internal/metrics"
	"sleepnet/internal/netsim"
	"sleepnet/internal/prf"
	"sleepnet/internal/timeseries"
	"sleepnet/internal/trinocular"
)

// PipelineConfig describes one measurement campaign: when it starts, how
// many 11-minute rounds it runs, and the collection-artifact rates observed
// in the real datasets (§2.2 reports ~5% of rounds missing or duplicated).
type PipelineConfig struct {
	Start  time.Time
	Rounds int
	// Period is the probing round length; zero means the paper's 660 s.
	Period time.Duration
	// InitialA seeds the estimators, standing in for the years-old census
	// history the paper used (deliberately allowed to be wrong).
	InitialA float64
	// MissingRate and DuplicateRate inject collection artifacts: a missing
	// round records no observation (later gap-filled), a duplicated round
	// records the observation twice.
	MissingRate   float64
	DuplicateRate float64
	// Seed drives artifact injection and the prober's address walks.
	Seed uint64
	// Prober carries the Trinocular policy knobs.
	Prober trinocular.Config
	// Metrics, when non-nil, receives pipeline counters and per-phase timing
	// histograms (probe, clean, classify) and is forwarded to the prober.
	// Nil keeps the measurement path uninstrumented and clock-free.
	Metrics *metrics.Registry
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Period <= 0 {
		c.Period = timeseries.DefaultRound
	}
	if c.InitialA == 0 {
		c.InitialA = 0.5
	}
	return c
}

// OutageEvent is a block state transition observed by the prober.
type OutageEvent struct {
	Round int
	Down  bool // true: up->down (outage start), false: recovery
}

// BlockRun is the full measurement record for one block.
type BlockRun struct {
	ID netsim.BlockID
	// Short is the cleaned Âs series, one value per round.
	Short timeseries.Series
	// Operational is Âo per round (same grid as Short).
	Operational []float64
	// LongTerm is Âl per round.
	LongTerm []float64
	// RawRate is the per-round p/t before smoothing (quantized, jittery).
	RawRate []float64
	// Outages lists the prober's state transitions.
	Outages []OutageEvent
	// CleanStats reports gap-filling and duplicate resolution.
	CleanStats timeseries.CleanStats
	// Trimmed is Short cut to midnight UTC boundaries, the series the
	// spectral test actually runs on.
	Trimmed timeseries.Series
	// Days is N_d for the trimmed series.
	Days int
	// Result is the diurnal classification.
	Result DiurnalResult
	// SlopePerDay is the stationarity diagnostic of the trimmed series.
	SlopePerDay float64
	// ProbesSent counts probes this block cost.
	ProbesSent int64

	// FailedRounds counts rounds that produced no usable observation (all
	// probes failed locally or were eaten by rate limiting); they are
	// recorded as missing samples and gap-filled by cleaning.
	FailedRounds int
	// Retries, SendErrors and RateLimited accumulate the prober's per-round
	// fault counters. All zero on a fault-free network.
	Retries     int
	SendErrors  int
	RateLimited int
}

// pipelineMetrics caches the pipeline's instruments. All fields are nil when
// the pipeline is uninstrumented; every method on a nil instrument is a no-op.
type pipelineMetrics struct {
	blocks          *metrics.Counter
	rounds          *metrics.Counter
	failedRounds    *metrics.Counter
	probeSeconds    *metrics.Histogram
	cleanSeconds    *metrics.Histogram
	classifySeconds *metrics.Histogram
}

func newPipelineMetrics(r *metrics.Registry) pipelineMetrics {
	timing := metrics.ExpBuckets(1e-5, 10, 8)
	return pipelineMetrics{
		blocks:          r.Counter("pipeline.blocks_measured"),
		rounds:          r.Counter("pipeline.rounds"),
		failedRounds:    r.Counter("pipeline.failed_rounds"),
		probeSeconds:    r.Histogram("pipeline.probe_seconds", metrics.UnitSeconds, timing),
		cleanSeconds:    r.Histogram("pipeline.clean_seconds", metrics.UnitSeconds, timing),
		classifySeconds: r.Histogram("pipeline.classify_seconds", metrics.UnitSeconds, timing),
	}
}

// Pipeline runs the full §2 measurement chain over blocks of a simulated
// network: adaptive probing -> EWMA estimation -> cleaning -> midnight trim
// -> spectral diurnal detection.
type Pipeline struct {
	cfg PipelineConfig
	net *netsim.Network
	pm  pipelineMetrics
}

// NewPipeline creates a pipeline over the network.
func NewPipeline(net *netsim.Network, cfg PipelineConfig) *Pipeline {
	cfg = cfg.withDefaults()
	if cfg.Prober.Metrics == nil {
		cfg.Prober.Metrics = cfg.Metrics
	}
	return &Pipeline{cfg: cfg, net: net, pm: newPipelineMetrics(cfg.Metrics)}
}

// Config returns the effective (defaulted) configuration.
func (pl *Pipeline) Config() PipelineConfig { return pl.cfg }

// blockRunner is one block's measurement in flight: the per-block prober,
// estimator, and accumulating record. RunBlock drives one runner round by
// round; RunBlocks drives a group of them in lockstep so a whole group's
// round crosses the netsim boundary as one batched wavefront. Both paths
// share step and finish, so they cannot drift.
type blockRunner struct {
	pl      *Pipeline
	id      netsim.BlockID
	prober  *trinocular.Prober
	est     *Estimator
	run     *BlockRun
	samples []timeseries.Sample
}

// newBlockRunner validates the block and assembles its measurement state.
func (pl *Pipeline) newBlockRunner(id netsim.BlockID) (*blockRunner, error) {
	blk := pl.net.Block(id)
	if blk == nil {
		return nil, fmt.Errorf("core: block %s not in network", id)
	}
	if pl.cfg.Rounds <= 0 {
		return nil, fmt.Errorf("core: pipeline needs Rounds > 0")
	}
	prober := trinocular.New(pl.net, pl.cfg.Prober, pl.cfg.Seed^uint64(id))
	if err := prober.AddBlock(id, blk.EverActive()); err != nil {
		return nil, err
	}
	return &blockRunner{
		pl:     pl,
		id:     id,
		prober: prober,
		est:    NewEstimator(pl.cfg.InitialA),
		run: &BlockRun{
			ID:          id,
			Operational: make([]float64, 0, pl.cfg.Rounds),
			LongTerm:    make([]float64, 0, pl.cfg.Rounds),
			RawRate:     make([]float64, 0, pl.cfg.Rounds),
		},
		samples: make([]timeseries.Sample, 0, pl.cfg.Rounds),
	}, nil
}

// step folds round r's observation into the record. obs is a pointer only
// to avoid copying the ~96-byte struct once per round on the hot path; it
// is read, never mutated.
func (br *blockRunner) step(r int, obs *trinocular.RoundObs) {
	run, est := br.run, br.est
	if obs.Changed {
		run.Outages = append(run.Outages, OutageEvent{Round: r, Down: !obs.Up})
	}
	run.Retries += obs.Retries
	run.SendErrors += obs.SendErrors
	run.RateLimited += obs.RateLimited
	if obs.Failed() {
		// A round with no usable observation is a gap in the record,
		// exactly like a missing collection artifact: no sample, no
		// estimator update, gap-filled by cleaning.
		run.FailedRounds++
		run.Operational = append(run.Operational, est.Operational())
		run.LongTerm = append(run.LongTerm, est.LongTerm())
		run.RawRate = append(run.RawRate, 0)
		return
	}
	// Collection artifacts: some observations never make it into the
	// recorded dataset, some are recorded twice. The estimator is part
	// of the analysis (recomputed from records), so a lost record is
	// also never observed.
	switch artifactFor(&br.pl.cfg, br.id, r) {
	case artifactMissing:
	case artifactDuplicate:
		est.Observe(obs.Positive, obs.Total)
		s := timeseries.Sample{Round: r, Value: est.ShortTerm()}
		br.samples = append(br.samples, s, s)
	default:
		est.Observe(obs.Positive, obs.Total)
		br.samples = append(br.samples, timeseries.Sample{Round: r, Value: est.ShortTerm()})
	}
	run.Operational = append(run.Operational, est.Operational())
	run.LongTerm = append(run.LongTerm, est.LongTerm())
	run.RawRate = append(run.RawRate, obs.Rate())
}

// finish runs the post-probing chain — cleaning, midnight trim, spectral
// classification — and returns the completed record.
func (br *blockRunner) finish() (*BlockRun, error) {
	pl, run, id := br.pl, br.run, br.id
	run.ProbesSent = br.prober.ProbesSent()
	pl.pm.rounds.Add(int64(pl.cfg.Rounds))
	pl.pm.failedRounds.Add(int64(run.FailedRounds))

	stopClean := pl.pm.cleanSeconds.Time()
	cleaned, st, err := timeseries.Clean(br.samples, pl.cfg.Rounds)
	if err != nil {
		return nil, fmt.Errorf("core: cleaning block %s: %w", id, err)
	}
	run.CleanStats = st
	run.Short = timeseries.New(pl.cfg.Start, pl.cfg.Period, cleaned)

	trimmed, err := timeseries.TrimToMidnightUTC(run.Short)
	if err != nil {
		return nil, fmt.Errorf("core: trimming block %s: %w", id, err)
	}
	stopClean()
	run.Trimmed = trimmed
	run.Days = timeseries.NearestDays(trimmed.Len(), trimmed.Period)
	run.SlopePerDay = trimmed.SlopePerDay()

	stopClassify := pl.pm.classifySeconds.Time()
	res, err := DetectDiurnal(trimmed.Values, run.Days)
	if err != nil {
		return nil, fmt.Errorf("core: classifying block %s: %w", id, err)
	}
	stopClassify()
	run.Result = res
	pl.pm.blocks.Inc()
	return run, nil
}

// RunBlock measures one block end to end. The block must be registered in
// the pipeline's network. Sparse blocks (fewer ever-active addresses than
// the Trinocular policy floor) return trinocular.ErrTooSparse.
func (pl *Pipeline) RunBlock(id netsim.BlockID) (*BlockRun, error) {
	br, err := pl.newBlockRunner(id)
	if err != nil {
		return nil, err
	}
	stopProbe := pl.pm.probeSeconds.Time()
	for r := 0; r < pl.cfg.Rounds; r++ {
		now := pl.cfg.Start.Add(time.Duration(r) * pl.cfg.Period)
		obs, err := br.prober.ProbeRound(id, now, br.est.Operational())
		if err != nil {
			return nil, err
		}
		br.step(r, &obs)
	}
	stopProbe()
	return br.finish()
}

// RunBlocks measures a group of blocks in lockstep: every round, the whole
// group's probes cross the netsim boundary as one batched wavefront
// (trinocular.ProbeRoundsBatchGroup), amortizing the per-packet routing,
// locking, and counter cost RunBlock pays. Each block keeps its own prober
// (its own walk seed) and its own record; runs[i]/errs[i] report block
// ids[i], exactly what RunBlock(ids[i]) would have returned — block state
// never crosses lanes, so the lockstep interleaving is unobservable. Over a
// network without the batched fast path the group degrades to scalar
// rounds.
func (pl *Pipeline) RunBlocks(ids []netsim.BlockID) (runs []*BlockRun, errs []error) {
	runs = make([]*BlockRun, len(ids))
	errs = make([]error, len(ids))
	runners := make([]*blockRunner, len(ids))
	live := make([]int, 0, len(ids))
	for i, id := range ids {
		br, err := pl.newBlockRunner(id)
		if err != nil {
			errs[i] = err
			continue
		}
		runners[i] = br
		live = append(live, i)
	}

	bc := trinocular.NewBatchContext()
	probers := make([]*trinocular.Prober, 0, len(live))
	bids := make([]netsim.BlockID, 0, len(live))
	aOps := make([]float64, 0, len(live))
	obs := make([]trinocular.RoundObs, len(live))

	stopProbe := pl.pm.probeSeconds.Time()
	for r := 0; r < pl.cfg.Rounds && len(live) > 0; r++ {
		now := pl.cfg.Start.Add(time.Duration(r) * pl.cfg.Period)
		probers, bids, aOps = probers[:0], bids[:0], aOps[:0]
		for _, i := range live {
			br := runners[i]
			probers = append(probers, br.prober)
			bids = append(bids, br.id)
			aOps = append(aOps, br.est.Operational())
		}
		if err := trinocular.ProbeRoundsBatchGroup(bc, probers, bids, aOps, now, obs[:len(live)]); err != nil {
			// Only possible for construction invariant violations (untracked
			// block, shape mismatch); every in-flight block inherits it.
			for _, i := range live {
				errs[i] = err
				runners[i] = nil
			}
			live = live[:0]
		}
		for k, i := range live {
			runners[i].step(r, &obs[k])
		}
	}
	stopProbe()
	for _, i := range live {
		runs[i], errs[i] = runners[i].finish()
	}
	return runs, errs
}

type artifactKind int

const (
	artifactNone artifactKind = iota
	artifactMissing
	artifactDuplicate
)

// artifactFor deterministically decides whether round r of a block suffers
// a collection artifact. cfg is a pointer only to avoid copying the config
// struct once per round; it is read, never mutated.
func artifactFor(cfg *PipelineConfig, id netsim.BlockID, r int) artifactKind {
	if cfg.MissingRate <= 0 && cfg.DuplicateRate <= 0 {
		return artifactNone
	}
	u := prf.LegacyFloat(cfg.Seed^0xa57f_ac75, uint64(id), uint64(r))
	switch {
	case u < cfg.MissingRate:
		return artifactMissing
	case u < cfg.MissingRate+cfg.DuplicateRate:
		return artifactDuplicate
	default:
		return artifactNone
	}
}

// Survey measures ground truth by full enumeration: TrueA of the block at
// every round — what the paper's Internet surveys provide for ~2% of
// blocks.
func (pl *Pipeline) Survey(id netsim.BlockID) (timeseries.Series, error) {
	blk := pl.net.Block(id)
	if blk == nil {
		return timeseries.Series{}, fmt.Errorf("core: block %s not in network", id)
	}
	if pl.cfg.Rounds <= 0 {
		return timeseries.Series{}, fmt.Errorf("core: pipeline needs Rounds > 0")
	}
	vals := make([]float64, pl.cfg.Rounds)
	for r := 0; r < pl.cfg.Rounds; r++ {
		now := pl.cfg.Start.Add(time.Duration(r) * pl.cfg.Period)
		vals[r] = blk.TrueA(now)
	}
	return timeseries.New(pl.cfg.Start, pl.cfg.Period, vals), nil
}

// ClassifySeries trims a (survey or estimated) series to midnight UTC and
// runs the diurnal test — used to derive ground-truth classifications from
// full survey data (§3.2.3).
func ClassifySeries(s timeseries.Series) (DiurnalResult, int, error) {
	trimmed, err := timeseries.TrimToMidnightUTC(s)
	if err != nil {
		return DiurnalResult{}, 0, err
	}
	days := timeseries.NearestDays(trimmed.Len(), trimmed.Period)
	res, err := DetectDiurnal(trimmed.Values, days)
	if err != nil {
		return DiurnalResult{}, 0, err
	}
	return res, days, nil
}
