// Package timeseries provides the evenly-sampled series representation the
// spectral analysis runs on, plus the data-cleaning steps from §2.2 of the
// paper: mapping raw per-round observations onto an 11-minute grid
// (extrapolating single missing rounds, trusting the most recent value when
// a round is observed twice), trimming the series to start and end near
// midnight UTC so phase is tied to physical time, and the stationarity
// check (near-zero linear slope) that validates FFT appropriateness.
package timeseries

import (
	"fmt"
	"math"
	"time"
)

// DefaultRound is the probing round length used throughout the paper.
const DefaultRound = 660 * time.Second

// Sample is one raw observation tagged with its probing round.
type Sample struct {
	Round int
	Value float64
}

// Series is an evenly sampled timeseries: Values[i] is the value of round
// Start + i*Period.
type Series struct {
	Start  time.Time
	Period time.Duration
	Values []float64
}

// New creates a Series with the given start time and sampling period.
func New(start time.Time, period time.Duration, values []float64) Series {
	return Series{Start: start, Period: period, Values: values}
}

// Len returns the number of samples.
func (s Series) Len() int { return len(s.Values) }

// Duration returns the time covered by the series.
func (s Series) Duration() time.Duration {
	return time.Duration(len(s.Values)) * s.Period
}

// Days returns the (fractional) number of days the series covers.
func (s Series) Days() float64 {
	return s.Duration().Hours() / 24
}

// TimeAt returns the timestamp of sample i.
func (s Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Period)
}

// CleanStats reports what Clean had to repair.
type CleanStats struct {
	Filled     int // rounds synthesized from the previous value
	Duplicates int // extra observations for an already-seen round (dropped, latest wins)
	OutOfRange int // samples with round < 0 or >= nRounds
}

// Clean maps raw samples onto a dense nRounds-long grid following the
// paper's §2.2 cleaning rules: when a round was observed more than once the
// most recent observation wins; when a round is missing, the previous
// value is extrapolated (single-round gaps are the common case the paper
// describes; longer gaps are filled the same way and reported via
// CleanStats so callers can reject heavily-gapped blocks). Rounds before
// the first observation take the first observed value.
//
// It returns an error when samples is empty or nRounds <= 0.
func Clean(samples []Sample, nRounds int) ([]float64, CleanStats, error) {
	var st CleanStats
	if nRounds <= 0 {
		return nil, st, fmt.Errorf("timeseries: Clean needs nRounds > 0, got %d", nRounds)
	}
	if len(samples) == 0 {
		return nil, st, fmt.Errorf("timeseries: Clean needs at least one sample")
	}
	out := make([]float64, nRounds)
	seen := make([]bool, nRounds)
	for _, s := range samples {
		if s.Round < 0 || s.Round >= nRounds {
			st.OutOfRange++
			continue
		}
		if seen[s.Round] {
			st.Duplicates++
		}
		// Samples arrive in observation order; the latest assignment wins.
		out[s.Round] = s.Value
		seen[s.Round] = true
	}
	// Find first observed value for leading fill.
	first := -1
	for i, ok := range seen {
		if ok {
			first = i
			break
		}
	}
	if first == -1 {
		return nil, st, fmt.Errorf("timeseries: Clean got no in-range samples")
	}
	for i := 0; i < first; i++ {
		out[i] = out[first]
		st.Filled++
	}
	for i := first + 1; i < nRounds; i++ {
		if !seen[i] {
			out[i] = out[i-1]
			st.Filled++
		}
	}
	return out, st, nil
}

// TrimToMidnightUTC returns the subseries that starts at the first round
// boundary at or after a UTC midnight and ends just before the last UTC
// midnight within the series, tying FFT phase to physical time (§2.2).
// If the series does not span at least one full UTC day an error is
// returned.
func TrimToMidnightUTC(s Series) (Series, error) {
	if s.Period <= 0 {
		return Series{}, fmt.Errorf("timeseries: non-positive period %v", s.Period)
	}
	if len(s.Values) == 0 {
		return Series{}, fmt.Errorf("timeseries: empty series")
	}
	startUTC := s.Start.UTC()
	firstMidnight := time.Date(startUTC.Year(), startUTC.Month(), startUTC.Day(), 0, 0, 0, 0, time.UTC)
	if firstMidnight.Before(startUTC) {
		firstMidnight = firstMidnight.Add(24 * time.Hour)
	}
	// Index of the first round at or after firstMidnight.
	lead := int((firstMidnight.Sub(startUTC) + s.Period - 1) / s.Period)
	end := s.TimeAt(len(s.Values)).UTC() // exclusive end
	lastMidnight := time.Date(end.Year(), end.Month(), end.Day(), 0, 0, 0, 0, time.UTC)
	if lastMidnight.After(end) {
		lastMidnight = lastMidnight.Add(-24 * time.Hour)
	}
	tail := int(lastMidnight.Sub(startUTC) / s.Period)
	if tail > len(s.Values) {
		tail = len(s.Values)
	}
	if lead >= tail {
		return Series{}, fmt.Errorf("timeseries: series %v–%v does not span a full UTC day", startUTC, end)
	}
	return Series{
		Start:  startUTC.Add(time.Duration(lead) * s.Period),
		Period: s.Period,
		Values: s.Values[lead:tail:tail],
	}, nil
}

// SlopePerDay returns the least-squares slope of the series expressed in
// value-change per day.
func (s Series) SlopePerDay() float64 {
	n := len(s.Values)
	if n < 2 || s.Period <= 0 {
		return math.NaN()
	}
	// Least-squares slope per sample index.
	var sx, sy, sxx, sxy float64
	for i, v := range s.Values {
		fi := float64(i)
		sx += fi
		sy += v
		sxx += fi * fi
		sxy += fi * v
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	perSample := (fn*sxy - sx*sy) / den
	samplesPerDay := (24 * time.Hour).Seconds() / s.Period.Seconds()
	return perSample * samplesPerDay
}

// IsStationary reports whether the series drifts by no more than
// maxSlopePerDay in absolute value — the §2.2 appropriateness check. The
// paper used a slope equivalent to less than one address change per day,
// i.e. maxSlopePerDay = 1/|E(b)| in availability units.
func (s Series) IsStationary(maxSlopePerDay float64) bool {
	sl := s.SlopePerDay()
	return !math.IsNaN(sl) && math.Abs(sl) <= maxSlopePerDay
}

// DaysCovered returns the number of whole days covered by n rounds of the
// given period.
func DaysCovered(n int, period time.Duration) int {
	if period <= 0 {
		return 0
	}
	return int(time.Duration(n) * period / (24 * time.Hour))
}

// NearestDays returns the day count nearest to the series duration — the
// N_d used to pick the diurnal FFT bin. Because a day is not an integer
// number of 11-minute rounds, a midnight-trimmed series spans slightly
// less than a whole number of days (e.g. 1832 rounds = 13.995 days); the
// diurnal frequency bin is the *nearest* integer, not the floor.
func NearestDays(n int, period time.Duration) int {
	if period <= 0 {
		return 0
	}
	return int(math.Round(float64(n) * period.Seconds() / 86400))
}

// RoundsPerDay returns the (fractional) number of sampling rounds per day.
func RoundsPerDay(period time.Duration) float64 {
	if period <= 0 {
		return 0
	}
	return (24 * time.Hour).Seconds() / period.Seconds()
}
