package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestCleanDense(t *testing.T) {
	samples := []Sample{{0, 1}, {1, 2}, {2, 3}}
	got, st, err := Clean(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Filled != 0 || st.Duplicates != 0 || st.OutOfRange != 0 {
		t.Fatalf("stats = %+v", st)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCleanSingleGap(t *testing.T) {
	samples := []Sample{{0, 1}, {2, 3}}
	got, st, err := Clean(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Filled != 1 {
		t.Fatalf("Filled = %d, want 1", st.Filled)
	}
	if got[1] != 1 { // extrapolated from previous
		t.Fatalf("gap fill = %v, want 1", got[1])
	}
}

func TestCleanDuplicatesLatestWins(t *testing.T) {
	samples := []Sample{{0, 1}, {1, 5}, {1, 9}}
	got, st, err := Clean(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Duplicates != 1 {
		t.Fatalf("Duplicates = %d", st.Duplicates)
	}
	if got[1] != 9 {
		t.Fatalf("duplicate resolution = %v, want 9 (most recent)", got[1])
	}
}

func TestCleanLeadingGapAndOutOfRange(t *testing.T) {
	samples := []Sample{{-1, 7}, {2, 4}, {99, 8}}
	got, st, err := Clean(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.OutOfRange != 2 {
		t.Fatalf("OutOfRange = %d", st.OutOfRange)
	}
	if got[0] != 4 || got[1] != 4 || got[3] != 4 {
		t.Fatalf("fills = %v", got)
	}
	if st.Filled != 3 {
		t.Fatalf("Filled = %d", st.Filled)
	}
}

func TestCleanErrors(t *testing.T) {
	if _, _, err := Clean(nil, 5); err == nil {
		t.Fatal("no samples should error")
	}
	if _, _, err := Clean([]Sample{{0, 1}}, 0); err == nil {
		t.Fatal("zero rounds should error")
	}
	if _, _, err := Clean([]Sample{{10, 1}}, 5); err == nil {
		t.Fatal("all out-of-range should error")
	}
}

func TestCleanPropertyNoNaNsAndLength(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		k := 1 + r.Intn(n)
		samples := make([]Sample, k)
		for i := range samples {
			samples[i] = Sample{Round: r.Intn(n), Value: r.Float64()}
		}
		out, _, err := Clean(samples, n)
		if err != nil || len(out) != n {
			return false
		}
		for _, v := range out {
			if math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func mkSeries(start time.Time, n int) Series {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	return New(start, DefaultRound, v)
}

func TestTrimToMidnightAlreadyAligned(t *testing.T) {
	start := time.Date(2013, 4, 25, 0, 0, 0, 0, time.UTC)
	// exactly 2 days of 660s rounds: 2*86400/660 = 261.8 -> 262 rounds covers
	// past midnight; use 265 rounds.
	s := mkSeries(start, 265)
	got, err := TrimToMidnightUTC(s)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start.Equal(start) {
		t.Fatalf("start = %v, want %v", got.Start, start)
	}
	// Last midnight within series: start+2d = round index floor(172800/660)=261.8 -> 261
	if got.Len() != 261 {
		t.Fatalf("len = %d, want 261", got.Len())
	}
	lastEnd := got.TimeAt(got.Len())
	if lastEnd.After(start.Add(48 * time.Hour)) {
		t.Fatalf("series extends past final midnight: %v", lastEnd)
	}
}

func TestTrimToMidnightUnaligned(t *testing.T) {
	// Paper's A12w starts 2013-04-24 17:18 UTC.
	start := time.Date(2013, 4, 24, 17, 18, 0, 0, time.UTC)
	days := 35
	n := int(float64(days)*86400/660) + 80
	s := mkSeries(start, n)
	got, err := TrimToMidnightUTC(s)
	if err != nil {
		t.Fatal(err)
	}
	// Trimmed start must be within one round after a UTC midnight.
	st := got.Start.UTC()
	midnight := time.Date(st.Year(), st.Month(), st.Day(), 0, 0, 0, 0, time.UTC)
	if st.Sub(midnight) >= DefaultRound {
		t.Fatalf("trimmed start %v not near midnight", st)
	}
	// Trimmed end must be within one round before a UTC midnight.
	end := got.TimeAt(got.Len()).UTC()
	endMidnight := time.Date(end.Year(), end.Month(), end.Day(), 0, 0, 0, 0, time.UTC)
	if end.Sub(endMidnight) >= DefaultRound && endMidnight.Add(24*time.Hour).Sub(end) >= DefaultRound {
		t.Fatalf("trimmed end %v not near a midnight", end)
	}
	if got.Days() < 33 || got.Days() > 35 {
		t.Fatalf("trimmed days = %v", got.Days())
	}
}

func TestTrimTooShort(t *testing.T) {
	start := time.Date(2013, 4, 24, 17, 18, 0, 0, time.UTC)
	s := mkSeries(start, 10)
	if _, err := TrimToMidnightUTC(s); err == nil {
		t.Fatal("sub-day series should error")
	}
	if _, err := TrimToMidnightUTC(Series{Period: DefaultRound}); err == nil {
		t.Fatal("empty series should error")
	}
	if _, err := TrimToMidnightUTC(Series{Values: []float64{1}}); err == nil {
		t.Fatal("zero period should error")
	}
}

func TestSlopePerDay(t *testing.T) {
	start := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	// Rising 0.01 per round; rounds per day = 86400/660.
	n := 1000
	v := make([]float64, n)
	for i := range v {
		v[i] = 0.01 * float64(i)
	}
	s := New(start, DefaultRound, v)
	want := 0.01 * 86400 / 660
	if got := s.SlopePerDay(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("slope = %v, want %v", got, want)
	}
	if !s.IsStationary(want + 1) {
		t.Fatal("should be stationary under loose threshold")
	}
	if s.IsStationary(want / 2) {
		t.Fatal("should not be stationary under tight threshold")
	}
	if !math.IsNaN(New(start, DefaultRound, []float64{1}).SlopePerDay()) {
		t.Fatal("single sample slope should be NaN")
	}
}

func TestStationaryFlatWithNoise(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	start := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	v := make([]float64, 2000)
	for i := range v {
		v[i] = 0.5 + 0.05*r.NormFloat64()
	}
	s := New(start, DefaultRound, v)
	// 1 address of a 256-address block per day.
	if !s.IsStationary(1.0 / 256) {
		t.Fatalf("flat noisy series should be stationary, slope=%v", s.SlopePerDay())
	}
}

func TestDaysCoveredAndRoundsPerDay(t *testing.T) {
	if got := DaysCovered(1832, DefaultRound); got != 13 { // 1832*660s = 13.99d
		t.Fatalf("DaysCovered = %d, want 13", got)
	}
	if got := DaysCovered(1834, DefaultRound); got != 14 {
		t.Fatalf("DaysCovered = %d, want 14", got)
	}
	if DaysCovered(5, 0) != 0 || RoundsPerDay(0) != 0 {
		t.Fatal("degenerate period")
	}
	if got := RoundsPerDay(DefaultRound); math.Abs(got-130.9090909) > 1e-6 {
		t.Fatalf("RoundsPerDay = %v", got)
	}
}

func TestSeriesAccessors(t *testing.T) {
	start := time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	s := New(start, DefaultRound, []float64{1, 2, 3})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.TimeAt(2); !got.Equal(start.Add(2 * DefaultRound)) {
		t.Fatalf("TimeAt = %v", got)
	}
	if got := s.Duration(); got != 3*DefaultRound {
		t.Fatalf("Duration = %v", got)
	}
}
