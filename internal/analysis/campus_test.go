package analysis

import (
	"testing"

	"sleepnet/internal/world"
)

func TestCampusGeneration(t *testing.T) {
	c, err := world.GenerateCampus(world.CampusConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Blocks) != 142+32+120 {
		t.Fatalf("blocks = %d", len(c.Blocks))
	}
	counts := map[world.CampusCategory]int{}
	for _, b := range c.Blocks {
		counts[b.Category]++
		if c.Net.Block(b.ID) == nil {
			t.Fatalf("block %s missing from network", b.ID)
		}
	}
	if counts[world.CampusWireless] != 142 || counts[world.CampusDynamic] != 32 {
		t.Fatalf("category counts = %v", counts)
	}
	if counts[world.CampusGeneralPocket] == 0 {
		t.Fatal("no pocket blocks generated")
	}
	if _, err := world.GenerateCampus(world.CampusConfig{Wireless: 1 << 20}); err == nil {
		t.Fatal("oversized campus should error")
	}
}

func TestCampusValidation(t *testing.T) {
	c, err := world.GenerateCampus(world.CampusConfig{
		Wireless: 60, Dynamic: 16, General: 60, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateCampus(c, StudyConfig{Days: 14, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §3.2.4 structural findings:
	// 1. Most wireless blocks are excluded by the 15-active probing floor.
	if rate := res.WirelessExclusionRate(); rate < 0.3 {
		t.Fatalf("wireless exclusion rate = %v, want most excluded", rate)
	}
	// 2. Dense dynamic pools are detected as diurnal at a high rate.
	if rate := res.DetectionRate(world.CampusDynamic); rate < 0.8 {
		t.Fatalf("dynamic detection rate = %v", rate)
	}
	// 3. Pure general-use blocks are not diurnal...
	if rate := res.DetectionRate(world.CampusGeneral); rate > 0.25 {
		t.Fatalf("general-use diurnal rate = %v, want low", rate)
	}
	// 4. ...but pockets of dynamic addresses make general-use blocks
	// diurnal (the paper's surprise).
	if rate := res.DetectionRate(world.CampusGeneralPocket); rate < 0.5 {
		t.Fatalf("pocket detection rate = %v, want high", rate)
	}
	// 5. Probed wireless blocks (the densest ones) are detected only
	// sometimes — sparse diurnal populations are hard (Fig 7).
	w := res.PerCategory[world.CampusWireless]
	if w.Probed == 0 {
		t.Fatal("no wireless blocks probed at all")
	}
	if res.Excluded == 0 || res.Measured == 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestCampusDegenerateAccessors(t *testing.T) {
	r := &CampusResult{PerCategory: map[world.CampusCategory]*CampusCategoryResult{}}
	if r.WirelessExclusionRate() != 0 || r.DetectionRate(world.CampusDynamic) != 0 {
		t.Fatal("empty result accessors should be 0")
	}
}
