package analysis

import (
	"sync"
	"testing"

	"sleepnet/internal/core"
	"sleepnet/internal/geo"
	"sleepnet/internal/world"
)

// Shared fixtures: one generated world measured once, reused by the
// experiment tests (measurement dominates test cost).
var (
	fixtureOnce  sync.Once
	fixtureWorld *world.World
	fixtureStudy *Study
	fixtureGeo   *geo.DB
	fixtureErr   error
)

func sharedStudy(t *testing.T) (*world.World, *Study, *geo.DB) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureWorld, fixtureErr = world.Generate(world.Config{Blocks: 1200, Seed: 31})
		if fixtureErr != nil {
			return
		}
		fixtureStudy, fixtureErr = MeasureWorld(fixtureWorld, StudyConfig{Days: 14, Seed: 77})
		if fixtureErr != nil {
			return
		}
		fixtureGeo = geo.FromWorld(fixtureWorld, 0.93, 3)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureWorld, fixtureStudy, fixtureGeo
}

func TestMeasureWorldBasics(t *testing.T) {
	w, st, _ := sharedStudy(t)
	if len(st.Blocks) != len(w.Blocks) {
		t.Fatalf("blocks = %d, want %d", len(st.Blocks), len(w.Blocks))
	}
	m := st.Measured()
	if len(m) < len(w.Blocks)*8/10 {
		t.Fatalf("only %d of %d measured", len(m), len(w.Blocks))
	}
	for _, b := range st.Blocks {
		if b.ErrMsg != "" {
			t.Fatalf("block %s failed: %v", b.Info.ID, b.ErrMsg)
		}
	}
	counts := st.CountByClass()
	if counts[core.StrictDiurnal] == 0 || counts[core.NonDiurnal] == 0 {
		t.Fatalf("degenerate class counts: %v", counts)
	}
}

func TestStudyDetectsDesignedDiurnals(t *testing.T) {
	_, st, _ := sharedStudy(t)
	var tp, fn, fpStrict, nonDesigned int
	for _, b := range st.Measured() {
		if b.Info.DesignedDiurnal {
			if b.Class.IsDiurnal() {
				tp++
			} else {
				fn++
			}
		} else {
			nonDesigned++
			if b.Class == core.StrictDiurnal {
				fpStrict++
			}
		}
	}
	recall := float64(tp) / float64(tp+fn)
	if recall < 0.8 {
		t.Fatalf("recall vs design = %v (tp=%d fn=%d)", recall, tp, fn)
	}
	// Strict detection must almost never fire on non-diurnal blocks; the
	// relaxed class is intentionally loose (the paper's Fig 10 shows ~25%
	// of blocks peak at 1 c/d while only 11% pass the strict test), so it
	// is not held to a false-positive bound here.
	fpr := float64(fpStrict) / float64(nonDesigned)
	if fpr > 0.02 {
		t.Fatalf("strict false positive rate vs design = %v", fpr)
	}
}

func TestStudyFractionsInPaperBallpark(t *testing.T) {
	_, st, _ := sharedStudy(t)
	strict, either := st.DiurnalFraction()
	// The paper reports 11% strict and 25% either at full scale; our scaled
	// world encodes the same country mix, so the strict fraction should
	// land in the same regime.
	if strict < 0.05 || strict > 0.30 {
		t.Fatalf("strict fraction = %v", strict)
	}
	if either < strict {
		t.Fatalf("either %v < strict %v", either, strict)
	}
}

func TestProbeBudgetUnderTwenty(t *testing.T) {
	_, st, _ := sharedStudy(t)
	rate := st.ProbeBudget()
	if rate <= 0 || rate >= 20 {
		t.Fatalf("probe budget = %v probes/block/hour, want (0, 20)", rate)
	}
}

func TestSelectBlocksAndSortedCodes(t *testing.T) {
	_, st, _ := sharedStudy(t)
	us := st.SelectBlocks(func(b MeasuredBlock) bool { return b.Info.Country.Code == "US" })
	if len(us) == 0 {
		t.Fatal("no US blocks")
	}
	codes := st.sortedCountryCodes()
	if len(codes) < 10 {
		t.Fatalf("codes = %v", codes)
	}
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			t.Fatal("codes not sorted")
		}
	}
}

func TestMeasureWorldEmpty(t *testing.T) {
	if _, err := MeasureWorld(&world.World{}, StudyConfig{}); err == nil {
		t.Fatal("empty world should error")
	}
}

func TestRoundsForDays(t *testing.T) {
	if got := RoundsForDays(14); got != 14*86400/660+60 {
		t.Fatalf("RoundsForDays = %d", got)
	}
}

func TestCountryTableShape(t *testing.T) {
	_, st, _ := sharedStudy(t)
	rows := st.CountryTable(5)
	if len(rows) < 10 {
		t.Fatalf("only %d countries", len(rows))
	}
	// Sorted descending.
	for i := 1; i < len(rows); i++ {
		if rows[i-1].FracDiurnal < rows[i].FracDiurnal {
			t.Fatal("rows not sorted")
		}
	}
	// The US must be near the bottom, high-diurnal countries near the top.
	pos := map[string]int{}
	for i, r := range rows {
		pos[r.Code] = i
	}
	if usPos, cnPos := pos["US"], pos["CN"]; usPos < cnPos {
		t.Fatalf("US (pos %d) should rank below CN (pos %d)", usPos, cnPos)
	}
	// Countries below the floor are excluded.
	for _, r := range rows {
		if r.Blocks < 5 {
			t.Fatalf("row %s has %d blocks below floor", r.Code, r.Blocks)
		}
	}
}

func TestRegionTableShape(t *testing.T) {
	_, st, _ := sharedStudy(t)
	rows := st.RegionTable()
	if len(rows) < 10 {
		t.Fatalf("only %d regions", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].FracDiurnal > rows[i].FracDiurnal {
			t.Fatal("regions not sorted ascending")
		}
	}
	// Northern America must be among the least diurnal; Asia among the most.
	fr := map[string]float64{}
	for _, r := range rows {
		fr[r.Region] = r.FracDiurnal
	}
	if fr[world.RegionNorthernAmerica] > fr[world.RegionEasternAsia] {
		t.Fatalf("N.America %v should be below E.Asia %v",
			fr[world.RegionNorthernAmerica], fr[world.RegionEasternAsia])
	}
}

func TestGDPCorrelationNegative(t *testing.T) {
	_, st, _ := sharedStudy(t)
	res, err := st.CorrelateGDP(5)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: confidence coefficient -0.526 (weak but clearly negative).
	if res.R > -0.3 {
		t.Fatalf("GDP correlation = %v, want clearly negative", res.R)
	}
	if res.Fit.Slope >= 0 {
		t.Fatalf("slope = %v, want negative", res.Fit.Slope)
	}
	if _, err := st.CorrelateGDP(1 << 30); err == nil {
		t.Fatal("impossible floor should error")
	}
}

func TestANOVATableGDPStrongest(t *testing.T) {
	_, st, _ := sharedStudy(t)
	tab, err := st.ANOVATable(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Names) != 5 {
		t.Fatalf("factors = %v", tab.Names)
	}
	// GDP is factor 0; its single-factor p-value should be significant, as
	// in the paper (6.6e-8 at full scale).
	if p := tab.P[0][0]; p > 0.05 {
		t.Fatalf("GDP p = %v, want significant", p)
	}
	// Symmetry of pairs.
	for i := range tab.P {
		for j := range tab.P {
			if tab.P[i][j] != tab.P[j][i] {
				t.Fatal("table not symmetric")
			}
		}
	}
	if _, err := st.ANOVATable(1 << 30); err == nil {
		t.Fatal("impossible floor should error")
	}
}

func TestPhaseVsLongitude(t *testing.T) {
	_, st, db := sharedStudy(t)
	res, err := st.PhaseVsLongitude(db, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks < 30 {
		t.Fatalf("only %d strict diurnal geolocated blocks", res.Blocks)
	}
	// Paper: r = 0.835 strict. Accept anything strongly positive.
	if res.R < 0.5 {
		t.Fatalf("phase-longitude r = %v, want > 0.5", res.R)
	}
	relaxed, err := st.PhaseVsLongitude(db, true)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Blocks < res.Blocks {
		t.Fatal("relaxed population should be at least as large")
	}
	// Predictor: most phases with data predict with finite uncertainty.
	ok := 0
	for i := 0; i < 100; i++ {
		phase := -3.1 + 6.2*float64(i)/100
		if _, _, hasData := res.PredictLongitude(phase); hasData {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("predictor has no populated bins")
	}
}

func TestUnrollPhase(t *testing.T) {
	cases := []struct{ phase, lon, want float64 }{
		{0, 0, 0},
		{3, 0, 3},
		{-3, 3, 2*3.141592653589793 - 3},
	}
	for _, c := range cases {
		got := UnrollPhase(c.phase, c.lon)
		if got < c.lon-3.15 || got >= c.lon+3.15 {
			t.Fatalf("UnrollPhase(%v, %v) = %v outside window", c.phase, c.lon, got)
		}
	}
}

func TestAllocationDateTrendPositive(t *testing.T) {
	_, st, _ := sharedStudy(t)
	res, err := st.AllocationDateTrend(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Months) < 5 {
		t.Fatalf("only %d months", len(res.Months))
	}
	// Paper: +0.08%/month with r = 0.609. Require positive slope and
	// positive correlation.
	if res.Fit.Slope <= 0 {
		t.Fatalf("allocation trend slope = %v, want positive", res.Fit.Slope)
	}
	if res.Fit.R < 0.2 {
		t.Fatalf("allocation trend r = %v, want positive", res.Fit.R)
	}
	if _, err := st.AllocationDateTrend(1 << 30); err == nil {
		t.Fatal("impossible floor should error")
	}
}

func TestLinkTypesDynMostDiurnal(t *testing.T) {
	_, st, _ := sharedStudy(t)
	res, err := st.LinkTypes(9)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClassifiedFrac < 0.35 || res.ClassifiedFrac > 0.6 {
		t.Fatalf("classified fraction = %v, want ~0.46", res.ClassifiedFrac)
	}
	frac := map[string]float64{}
	for _, r := range res.Rows {
		frac[r.Keyword] = r.FracDiurnal
	}
	// The Fig 17 ordering: dynamic most diurnal, dialup near zero, dsl in
	// between.
	if !(frac["dyn"] > frac["dsl"]) {
		t.Fatalf("dyn %v should exceed dsl %v", frac["dyn"], frac["dsl"])
	}
	if !(frac["dsl"] > frac["dial"]) {
		t.Fatalf("dsl %v should exceed dial %v", frac["dsl"], frac["dial"])
	}
}

func TestFrequencyCDFDailyPeak(t *testing.T) {
	_, st, _ := sharedStudy(t)
	res, err := st.FrequencyCDF()
	if err != nil {
		t.Fatal(err)
	}
	strict, either := st.DiurnalFraction()
	_ = either
	// Every strict-diurnal block has its strongest frequency at 1 c/d, so
	// the daily mass must be at least the strict fraction.
	if res.FracDaily < strict {
		t.Fatalf("daily mass %v < strict fraction %v", res.FracDaily, strict)
	}
	// CDF sanity: mass below 0 cycles/day is none; everything below an
	// absurdly high frequency.
	if res.CDF.At(-0.01) != 0 {
		t.Fatal("negative frequencies impossible")
	}
	if res.CDF.At(100) != 1 {
		t.Fatal("CDF should reach 1")
	}
}

func TestBuildWorldMaps(t *testing.T) {
	_, st, db := sharedStudy(t)
	maps, err := st.BuildWorldMaps(db)
	if err != nil {
		t.Fatal(err)
	}
	if maps.Geolocated < 800 {
		t.Fatalf("geolocated = %d", maps.Geolocated)
	}
	if maps.Counts.NonEmptyCells() < 20 {
		t.Fatalf("non-empty cells = %d", maps.Counts.NonEmptyCells())
	}
	// Sanity: a cell in the continental US should exist and be lightly
	// diurnal relative to a Chinese cell (aggregate check over countries
	// instead of single cells to avoid sparse-cell noise).
	usCells, cnCells := 0, 0
	var usDiurnal, cnDiurnal, usTotal, cnTotal int
	for _, c := range maps.Counts.Cells() {
		switch {
		case c.LonCenter > -125 && c.LonCenter < -66 && c.LatCenter > 25 && c.LatCenter < 49:
			usCells++
			usTotal += c.Total
			usDiurnal += c.Marked
		case c.LonCenter > 74 && c.LonCenter < 131 && c.LatCenter > 19 && c.LatCenter < 48:
			cnCells++
			cnTotal += c.Total
			cnDiurnal += c.Marked
		}
	}
	if usCells == 0 || cnCells == 0 {
		t.Fatalf("cells: us=%d cn=%d", usCells, cnCells)
	}
	usFrac := float64(usDiurnal) / float64(usTotal)
	cnFrac := float64(cnDiurnal) / float64(cnTotal)
	if usFrac >= cnFrac {
		t.Fatalf("US diurnal fraction %v should be far below China-region %v", usFrac, cnFrac)
	}
}

func TestLocalPeakHourCalibration(t *testing.T) {
	// Designed diurnal blocks wake at LocalOnHour and stay up ~9h, so the
	// activity peak sits near LocalOnHour + 4.5. The phase-derived local
	// peak must recover that within a couple of hours on average.
	_, st, db := sharedStudy(t)
	var errSum float64
	n := 0
	for _, b := range st.Measured() {
		if b.Class != core.StrictDiurnal || !b.Info.DesignedDiurnal {
			continue
		}
		e, ok := db.Lookup(b.Info.ID)
		if !ok {
			continue
		}
		got := LocalPeakHour(b.Phase, e.Lon)
		want := b.Info.LocalOnHour + 4.5
		d := got - want
		for d > 12 {
			d -= 24
		}
		for d < -12 {
			d += 24
		}
		if d < 0 {
			d = -d
		}
		errSum += d
		n++
	}
	if n < 20 {
		t.Fatalf("only %d calibratable blocks", n)
	}
	mean := errSum / float64(n)
	if mean > 2.5 {
		t.Fatalf("mean |local peak error| = %.2f h over %d blocks, want <= 2.5", mean, n)
	}
	t.Logf("mean local-peak error: %.2f h over %d blocks", mean, n)
}

func TestUTCPeakHourRange(t *testing.T) {
	for _, ph := range []float64{-3.14, -1, 0, 1, 3.14, 6, -6} {
		h := UTCPeakHour(ph)
		if h < 0 || h >= 24 {
			t.Fatalf("UTCPeakHour(%v) = %v", ph, h)
		}
	}
	if h := LocalPeakHour(0, -180); h < 0 || h >= 24 {
		t.Fatalf("LocalPeakHour wrap = %v", h)
	}
}

func TestStationaryFraction(t *testing.T) {
	_, st, _ := sharedStudy(t)
	frac := st.StationaryFraction()
	// The paper found 80.3% of blocks stationary; our world has no secular
	// drift, so the measured fraction should be at least in that regime.
	if frac < 0.7 {
		t.Fatalf("stationary fraction = %v, want >= 0.7", frac)
	}
	if frac > 1 {
		t.Fatalf("fraction = %v", frac)
	}
	t.Logf("stationary fraction: %.3f (paper: 0.803)", frac)
}

func TestGDPCorrelationWeighted(t *testing.T) {
	_, st, _ := sharedStudy(t)
	res, err := st.CorrelateGDP(5)
	if err != nil {
		t.Fatal(err)
	}
	// Weighting by block count should not flip the sign, and with the US
	// and CN dominating the weights it is typically at least as strong.
	if res.RWeighted >= 0 {
		t.Fatalf("weighted correlation = %v, want negative", res.RWeighted)
	}
}
