package analysis

import (
	"fmt"
	"math"
	"sort"

	"sleepnet/internal/core"
	"sleepnet/internal/stats"
	"sleepnet/internal/world"
)

// CountryRow is one line of Table 3.
type CountryRow struct {
	Code        string
	Name        string
	Region      string
	Blocks      int
	Diurnal     int // strictly diurnal blocks
	FracDiurnal float64
	GDP         float64
}

// CountryTable reproduces Table 3: fraction of strictly diurnal blocks per
// country, for countries with at least minBlocks measured blocks, sorted by
// descending diurnal fraction. The paper uses minBlocks=1000 at full scale;
// scaled-down worlds pass a proportionally smaller floor.
func (s *Study) CountryTable(minBlocks int) []CountryRow {
	type agg struct{ n, d int }
	byCountry := make(map[string]*agg)
	for _, b := range s.Measured() {
		a := byCountry[b.Info.Country.Code]
		if a == nil {
			a = &agg{}
			byCountry[b.Info.Country.Code] = a
		}
		a.n++
		if b.Class == core.StrictDiurnal {
			a.d++
		}
	}
	var rows []CountryRow
	for _, code := range s.sortedCountryCodes() {
		a := byCountry[code]
		if a == nil || a.n < minBlocks {
			continue
		}
		c := world.CountryByCode(code)
		rows = append(rows, CountryRow{
			Code:        code,
			Name:        c.Name,
			Region:      c.Region,
			Blocks:      a.n,
			Diurnal:     a.d,
			FracDiurnal: float64(a.d) / float64(a.n),
			GDP:         c.GDP,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		//lint:allow floateq: exact tie-break inside a comparator; epsilon equality would break strict weak ordering
		if rows[i].FracDiurnal != rows[j].FracDiurnal {
			return rows[i].FracDiurnal > rows[j].FracDiurnal
		}
		return rows[i].Code < rows[j].Code
	})
	return rows
}

// RegionRow is one line of Table 4.
type RegionRow struct {
	Region      string
	Blocks      int
	FracDiurnal float64
}

// RegionTable reproduces Table 4: fraction of strictly diurnal blocks per
// region, sorted ascending by fraction as the paper prints it.
func (s *Study) RegionTable() []RegionRow {
	type agg struct{ n, d int }
	byRegion := make(map[string]*agg)
	for _, b := range s.Measured() {
		a := byRegion[b.Info.Country.Region]
		if a == nil {
			a = &agg{}
			byRegion[b.Info.Country.Region] = a
		}
		a.n++
		if b.Class == core.StrictDiurnal {
			a.d++
		}
	}
	var rows []RegionRow
	for _, region := range world.Regions() {
		a := byRegion[region]
		if a == nil {
			continue
		}
		rows = append(rows, RegionRow{
			Region:      region,
			Blocks:      a.n,
			FracDiurnal: float64(a.d) / float64(a.n),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].FracDiurnal < rows[j].FracDiurnal })
	return rows
}

// GDPCorrelation is the Fig 16 result: the linear fit of per-country
// diurnal fraction against per-capita GDP.
type GDPCorrelation struct {
	Rows []CountryRow
	Fit  stats.LinearFit
	// R is the (negative) correlation coefficient of fraction vs GDP.
	R float64
	// RWeighted is the same correlation with countries weighted by their
	// block counts, so a 10-block country does not count as much as the
	// US; it is usually stronger than the unweighted R the paper reports.
	RWeighted float64
}

// CorrelateGDP reproduces Fig 16 over the Table 3 population.
func (s *Study) CorrelateGDP(minBlocks int) (*GDPCorrelation, error) {
	rows := s.CountryTable(minBlocks)
	if len(rows) < 3 {
		return nil, fmt.Errorf("analysis: only %d countries pass the %d-block floor", len(rows), minBlocks)
	}
	xs := make([]float64, len(rows))
	ys := make([]float64, len(rows))
	ws := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = r.GDP
		ys[i] = r.FracDiurnal
		ws[i] = float64(r.Blocks)
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return nil, err
	}
	return &GDPCorrelation{
		Rows:      rows,
		Fit:       fit,
		R:         fit.R,
		RWeighted: stats.WeightedPearson(xs, ys, ws),
	}, nil
}

// ANOVATable reproduces Table 5: single and pairwise regression-ANOVA
// p-values of country-level factors against the per-country diurnal
// fraction. Factors follow the paper: per-capita GDP, Internet users per
// host, electricity consumption per capita, age of first allocation, and
// mean allocation age.
func (s *Study) ANOVATable(minBlocks int) (stats.FactorialTable, error) {
	rows := s.CountryTable(minBlocks)
	if len(rows) < 8 {
		return stats.FactorialTable{}, fmt.Errorf("analysis: only %d countries for ANOVA", len(rows))
	}
	n := len(rows)
	y := make([]float64, n)
	gdp := make([]float64, n)
	users := make([]float64, n)
	elec := make([]float64, n)
	firstAge := make([]float64, n)
	meanAge := make([]float64, n)
	const refYear = 2013
	for i, r := range rows {
		c := world.CountryByCode(r.Code)
		y[i] = r.FracDiurnal
		gdp[i] = c.GDP
		users[i] = c.UsersPerHost
		elec[i] = c.ElecPerCapita
		mean, first := s.World.MeanAllocYear(r.Code)
		if math.IsNaN(mean) {
			mean, first = refYear, refYear
		}
		firstAge[i] = refYear - first
		meanAge[i] = refYear - mean
	}
	return stats.FactorialANOVA(y, []stats.Factor{
		{Name: "gdp", Values: gdp},
		{Name: "usersPerHost", Values: users},
		{Name: "elecPerCapita", Values: elec},
		{Name: "firstAllocAge", Values: firstAge},
		{Name: "meanAllocAge", Values: meanAge},
	})
}
