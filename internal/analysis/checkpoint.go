package analysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"sleepnet/internal/durable"
	"sleepnet/internal/netsim"
	"sleepnet/internal/world"
)

// Study checkpoints are JSONL: a header line identifying the campaign, then
// one line per measured block, appended as blocks complete. A killed run
// leaves at worst one torn trailing line, which resume discards; everything
// else is recovered, and only the remaining blocks are re-measured.

const studyCheckpointVersion = 1

type studyCheckpointHeader struct {
	Version int    `json:"version"`
	Seed    uint64 `json:"seed"`
	Days    int    `json:"days"`
	Blocks  int    `json:"blocks"`
}

type studyCheckpointLine struct {
	Index int            `json:"i"`
	ID    netsim.BlockID `json:"id"`
	Block MeasuredBlock  `json:"block"` // Info nulled out; restored from the world on load
}

// checkpointWriter appends measured blocks to the checkpoint file; Append is
// safe for concurrent use by the measurement workers.
type checkpointWriter struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// Append writes one measured block as a line and flushes it, so the line is
// durable before the next block is handed out.
func (c *checkpointWriter) Append(i int, mb MeasuredBlock) error {
	line := studyCheckpointLine{Index: i, ID: mb.Info.ID, Block: mb}
	line.Block.Info = nil
	data, err := json.Marshal(&line)
	if err != nil {
		return fmt.Errorf("analysis: checkpoint: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("analysis: checkpoint: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("analysis: checkpoint: %w", err)
	}
	return nil
}

func (c *checkpointWriter) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.w.Flush(); err != nil {
		_ = c.f.Close() // best effort: the flush error is the one to surface
		return err
	}
	return c.f.Close()
}

// openCheckpoint prepares the checkpoint file for a study. With Resume set
// and a matching file present, previously measured blocks are loaded into
// the study and reported in done; the file is then rewritten from its valid
// lines (dropping any torn trailing line) and reopened for append. Without
// Resume the file is started fresh.
func openCheckpoint(path string, w *world.World, sc StudyConfig, study *Study) (*checkpointWriter, map[int]bool, error) {
	header := studyCheckpointHeader{
		Version: studyCheckpointVersion,
		Seed:    sc.Seed,
		Days:    sc.Days,
		Blocks:  len(w.Blocks),
	}
	done := make(map[int]bool)
	var recovered []studyCheckpointLine
	if sc.Resume {
		var err error
		recovered, err = readCheckpoint(path, header)
		if err != nil {
			return nil, nil, err
		}
		for _, line := range recovered {
			if line.Index < 0 || line.Index >= len(w.Blocks) {
				return nil, nil, fmt.Errorf("analysis: checkpoint %s: block index %d out of range", path, line.Index)
			}
			info := w.Blocks[line.Index]
			if info.ID != line.ID {
				return nil, nil, fmt.Errorf("analysis: checkpoint %s: block %d is %s, checkpoint says %s (different world?)", path, line.Index, info.ID, line.ID)
			}
			mb := line.Block
			mb.Info = info
			study.Blocks[line.Index] = mb
			done[line.Index] = true
		}
	}

	// Rewrite the file from the header plus recovered lines (atomically, so
	// a kill during the rewrite cannot lose them), then reopen for append.
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: checkpoint: %w", err)
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(&header); err != nil {
		_ = f.Close() // best effort on the error path; the temp file is abandoned
		return nil, nil, fmt.Errorf("analysis: checkpoint: %w", err)
	}
	for i := range recovered {
		if err := enc.Encode(&recovered[i]); err != nil {
			_ = f.Close() // best effort on the error path; the temp file is abandoned
			return nil, nil, fmt.Errorf("analysis: checkpoint: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close() // best effort on the error path; the temp file is abandoned
		return nil, nil, fmt.Errorf("analysis: checkpoint: %w", err)
	}
	// The rename only makes the rewrite durable if the temp file hits disk
	// first and the directory entry after (caught by sleeplint fsyncorder:
	// a crash between rename and dir sync could lose the recovered lines
	// the comment above promises to keep).
	if err := f.Sync(); err != nil {
		_ = f.Close() // best effort on the error path; the temp file is abandoned
		return nil, nil, fmt.Errorf("analysis: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, nil, fmt.Errorf("analysis: checkpoint: %w", err)
	}
	if err := durable.Rename(tmp, path); err != nil {
		return nil, nil, fmt.Errorf("analysis: checkpoint: %w", err)
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: checkpoint: %w", err)
	}
	return &checkpointWriter{f: af, w: bufio.NewWriter(af)}, done, nil
}

// readCheckpoint loads the valid lines of an existing checkpoint file. A
// missing file yields no lines and no error; a header that does not match
// the current campaign is an error (measuring a different world into the
// same file would silently mix datasets). A torn trailing line (killed
// mid-write) is discarded; a torn line in the middle is an error.
func readCheckpoint(path string, want studyCheckpointHeader) ([]studyCheckpointLine, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, nil // empty file: start fresh
	}
	var header studyCheckpointHeader
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		return nil, fmt.Errorf("analysis: checkpoint %s: bad header: %w", path, err)
	}
	if header != want {
		return nil, fmt.Errorf("analysis: checkpoint %s: header %+v does not match campaign %+v", path, header, want)
	}
	var lines []studyCheckpointLine
	var torn bool
	for sc.Scan() {
		if torn {
			return nil, fmt.Errorf("analysis: checkpoint %s: corrupt line %d (not at end of file)", path, len(lines)+2)
		}
		var line studyCheckpointLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			torn = true // tolerated only as the final line
			continue
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analysis: checkpoint %s: %w", path, err)
	}
	return lines, nil
}
