package analysis

import (
	"fmt"
	"sort"
	"time"

	"sleepnet/internal/outage"
	"sleepnet/internal/stats"
	"sleepnet/internal/world"
)

// OutageRow aggregates reliability for one country.
type OutageRow struct {
	Code   string
	Blocks int
	// Agg pools all block summaries (uptime weighted by rounds).
	Agg outage.Summary
	// EpisodesPerBlockWeek normalizes outage counts by population and
	// measurement length.
	EpisodesPerBlockWeek float64
	GDP                  float64
}

// OutageTable aggregates detected outages per country (countries with at
// least minBlocks measured blocks), sorted by descending outage rate —
// the reliability companion to Table 3.
//
// When excludeDiurnal is true, diurnal blocks are dropped first. This is
// the methodologically sound setting — a sleeping network looks exactly
// like an outage to a belief-based detector, and one application the paper
// names (§5.6) is using diurnal classifications to calibrate outage and
// availability measurements. With excludeDiurnal false the table shows the
// raw, sleep-confounded rates.
func (s *Study) OutageTable(minBlocks int, excludeDiurnal bool) []OutageRow {
	byCountry := make(map[string][]outage.Summary)
	for _, b := range s.Measured() {
		if excludeDiurnal && b.Class.IsDiurnal() {
			continue
		}
		code := b.Info.Country.Code
		byCountry[code] = append(byCountry[code], b.Outage)
	}
	weeks := float64(s.Cfg.Rounds) * s.Cfg.Period.Hours() / (24 * 7)
	var rows []OutageRow
	for _, code := range s.sortedCountryCodes() {
		sums := byCountry[code]
		if len(sums) < minBlocks {
			continue
		}
		agg := outage.Merge(sums)
		row := OutageRow{
			Code:   code,
			Blocks: len(sums),
			Agg:    agg,
			GDP:    world.CountryByCode(code).GDP,
		}
		if weeks > 0 {
			row.EpisodesPerBlockWeek = float64(agg.Episodes) / float64(len(sums)) / weeks
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		//lint:allow floateq: exact tie-break inside a comparator; epsilon equality would break strict weak ordering
		if rows[i].EpisodesPerBlockWeek != rows[j].EpisodesPerBlockWeek {
			return rows[i].EpisodesPerBlockWeek > rows[j].EpisodesPerBlockWeek
		}
		return rows[i].Code < rows[j].Code
	})
	return rows
}

// OutageGDPCorrelation correlates the per-country outage rate with
// per-capita GDP — the §7 claim that outages, like diurnalness, track
// economics (negative correlation expected: richer, fewer outages).
// Diurnal blocks are always excluded here so nightly sleep is not counted
// as unreliability.
func (s *Study) OutageGDPCorrelation(minBlocks int) (float64, stats.ANOVAResult, error) {
	rows := s.OutageTable(minBlocks, true)
	if len(rows) < 5 {
		return 0, stats.ANOVAResult{}, fmt.Errorf("analysis: only %d countries for outage correlation", len(rows))
	}
	gdp := make([]float64, len(rows))
	rate := make([]float64, len(rows))
	for i, r := range rows {
		gdp[i] = r.GDP
		rate[i] = r.EpisodesPerBlockWeek
	}
	r := stats.Pearson(gdp, rate)
	res, err := stats.RegressionANOVA(rate, gdp)
	if err != nil {
		return r, stats.ANOVAResult{}, err
	}
	return r, res, nil
}

// CensusPoint is one sample of the active-address census.
type CensusPoint struct {
	Time time.Time
	// Active is the number of responding public addresses at this instant.
	Active float64
	// ActiveNonDiurnal is the contribution of blocks the generator designed
	// as non-diurnal, isolating the diurnal swing.
	ActiveNonDiurnal float64
}

// AddressCensus estimates "the size of the Internet in active addresses"
// over time (§5.6): the total number of responding addresses across the
// world's blocks, sampled every step. A single snapshot is representative
// only for non-diurnal blocks; the census shows the daily swing that
// diurnal blocks contribute, which is why snapshot scans must be calibrated
// with diurnal classifications.
func AddressCensus(w *world.World, start time.Time, duration, step time.Duration) ([]CensusPoint, error) {
	if duration <= 0 || step <= 0 {
		return nil, fmt.Errorf("analysis: census needs positive duration and step")
	}
	n := int(duration / step)
	if n == 0 {
		return nil, fmt.Errorf("analysis: census step exceeds duration")
	}
	out := make([]CensusPoint, 0, n)
	for i := 0; i < n; i++ {
		ts := start.Add(time.Duration(i) * step)
		pt := CensusPoint{Time: ts}
		for _, info := range w.Blocks {
			blk := w.Net.Block(info.ID)
			if blk == nil {
				continue
			}
			ever := len(blk.EverActive())
			active := blk.TrueA(ts) * float64(ever)
			pt.Active += active
			if !info.DesignedDiurnal {
				pt.ActiveNonDiurnal += active
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// CensusSwing summarizes a census: daily mean, minimum, and maximum of the
// active-address count, and the swing fraction (max-min)/mean.
type CensusSwing struct {
	Mean, Min, Max float64
	SwingFraction  float64
}

// SummarizeCensus computes the swing statistics of a census series.
func SummarizeCensus(pts []CensusPoint) (CensusSwing, error) {
	if len(pts) == 0 {
		return CensusSwing{}, fmt.Errorf("analysis: empty census")
	}
	s := CensusSwing{Min: pts[0].Active, Max: pts[0].Active}
	for _, p := range pts {
		s.Mean += p.Active
		if p.Active < s.Min {
			s.Min = p.Active
		}
		if p.Active > s.Max {
			s.Max = p.Active
		}
	}
	s.Mean /= float64(len(pts))
	if s.Mean > 0 {
		s.SwingFraction = (s.Max - s.Min) / s.Mean
	}
	return s, nil
}
