package analysis

import (
	"testing"
	"time"

	"sleepnet/internal/core"
	"sleepnet/internal/world"
)

// smallWorld generates a compact world for the survey-based experiments
// (full surveys evaluate every address every round, so these stay small).
func smallWorld(t testing.TB, blocks int, seed uint64) *world.World {
	t.Helper()
	w, err := world.Generate(world.Config{Blocks: blocks, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func surveyCfg(days int, seed uint64) core.PipelineConfig {
	return core.PipelineConfig{
		Start:  DefaultStart,
		Rounds: RoundsForDays(days),
		Seed:   seed,
	}
}

func TestCompareEstimatorToTruthShortTerm(t *testing.T) {
	w := smallWorld(t, 120, 41)
	res, err := CompareEstimatorToTruth(w, surveyCfg(7, 5), ShortTermEstimate, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: pooled correlation 0.957. Our smaller pool should still be
	// strongly correlated.
	if res.R < 0.85 {
		t.Fatalf("pooled corr = %v, want > 0.85", res.R)
	}
	if res.Pairs < 10000 || res.Blocks < 80 {
		t.Fatalf("pool too small: %d pairs, %d blocks", res.Pairs, res.Blocks)
	}
	if len(res.Quartiles) != 10 {
		t.Fatalf("quartile groups = %d", len(res.Quartiles))
	}
	// The estimator is unbiased: medians track the bin centers for bins
	// that have data (check a central bin).
	med := res.Quartiles[7][1] // truth in [0.7, 0.8): median Âs
	if med < 0.6 || med > 0.9 {
		t.Fatalf("median Âs for A~0.75 = %v", med)
	}
	if res.Grid.Total() != res.Pairs {
		t.Fatalf("grid total %d != pairs %d", res.Grid.Total(), res.Pairs)
	}
}

func TestCompareEstimatorToTruthOperational(t *testing.T) {
	w := smallWorld(t, 120, 43)
	res, err := CompareEstimatorToTruth(w, surveyCfg(7, 7), OperationalEstimate, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Âo under truth 94% of the time.
	if res.UnderFrac < 0.85 {
		t.Fatalf("operational under-fraction = %v, want >= 0.85", res.UnderFrac)
	}
}

func TestValidateDiurnalDetection(t *testing.T) {
	w := smallWorld(t, 150, 47)
	v, err := ValidateDiurnalDetection(w, surveyCfg(7, 9), 8)
	if err != nil {
		t.Fatal(err)
	}
	if v.Total() < 100 {
		t.Fatalf("validated only %d blocks", v.Total())
	}
	// Paper: precision 82%, accuracy 91%. Strict-vs-strict validation on
	// the simulated world runs cleaner than the real Internet, so require
	// at least the paper's levels.
	if p := v.Precision(); p < 0.7 {
		t.Fatalf("precision = %v", p)
	}
	if a := v.Accuracy(); a < 0.9 {
		t.Fatalf("accuracy = %v", a)
	}
	if r := v.Recall(); r <= 0 || r > 1 {
		t.Fatalf("recall = %v", r)
	}
}

func TestSweepAccuracyHighAtFullPopulation(t *testing.T) {
	cfg := SweepConfig{Batches: 2, PerBatch: 6, Weeks: 2, Seed: 3, Workers: 8}
	pt, err := RunSweepPoint(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// n_d=100 of 50 stable, no noise: paper detects 100%.
	if pt.Mean < 0.9 {
		t.Fatalf("accuracy at n_d=100 = %v, want ~1", pt.Mean)
	}
	if len(pt.BatchAccuracy) != 2 {
		t.Fatalf("batches = %d", len(pt.BatchAccuracy))
	}
	if pt.Q1 > pt.Median || pt.Median > pt.Q3 {
		t.Fatalf("quartiles out of order: %v %v %v", pt.Q1, pt.Median, pt.Q3)
	}
}

func TestSweepDiurnalCountMonotoneEnds(t *testing.T) {
	cfg := SweepConfig{Batches: 2, PerBatch: 6, Weeks: 2, Seed: 5, Workers: 8}
	pts, err := SweepDiurnalCount([]int{2, 60}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 7: accuracy near zero for a couple of diurnal addresses among 50
	// stable ones, high for 60.
	if pts[0].Mean > 0.4 {
		t.Fatalf("accuracy at n_d=2 = %v, want low", pts[0].Mean)
	}
	if pts[1].Mean < 0.8 {
		t.Fatalf("accuracy at n_d=60 = %v, want high", pts[1].Mean)
	}
}

func TestSweepPhaseSpreadCollapse(t *testing.T) {
	cfg := SweepConfig{Batches: 2, PerBatch: 6, Weeks: 2, Seed: 7, Workers: 8}
	pts, err := SweepPhaseSpread([]float64{0, 22}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 8: detection collapses as phases spread across the whole day
	// (signals blur together past ~14h).
	if pts[0].Mean < 0.9 {
		t.Fatalf("accuracy at phi=0 = %v", pts[0].Mean)
	}
	if pts[1].Mean > 0.5 {
		t.Fatalf("accuracy at phi=22h = %v, want collapsed", pts[1].Mean)
	}
}

func TestSweepDurationSigmaRobust(t *testing.T) {
	cfg := SweepConfig{Batches: 2, PerBatch: 6, Weeks: 2, Seed: 9, Workers: 8}
	pts, err := SweepDurationSigma([]float64{0, 6}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 9: duration noise barely hurts below ~10h.
	if pts[0].Mean < 0.9 || pts[1].Mean < 0.75 {
		t.Fatalf("accuracy = %v / %v, want robust", pts[0].Mean, pts[1].Mean)
	}
}

func TestSweepErrors(t *testing.T) {
	cfg := SweepConfig{Batches: 1, PerBatch: 1, Weeks: 2, Stable: 200, NDiurnal: 200}
	if _, err := RunSweepPoint(0, cfg); err == nil {
		t.Fatal("overfull population should error")
	}
}

func TestCompareSitesAgree(t *testing.T) {
	_, st, _ := sharedStudy(t)
	// Second vantage point: same world, different probing seed.
	st2, err := MeasureWorld(fixtureWorld, StudyConfig{Days: 14, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := CompareSites(st, st2)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 2: of site-A strict blocks, ~1.2% are called non-diurnal
	// by site B. Allow a loose bound.
	if cs.StrongDisagree > 0.1 {
		t.Fatalf("strong disagreement = %v, want < 0.1", cs.StrongDisagree)
	}
	// Diagonal dominance: strict/strict and non/non are the bulk.
	if cs.M[0][0] == 0 || cs.M[2][2] == 0 {
		t.Fatalf("matrix = %+v", cs.M)
	}
	if cs.M[2][2] < cs.M[2][0] {
		t.Fatal("non-diurnal blocks must mostly agree")
	}
	// Different worlds are rejected.
	other := smallWorld(t, 60, 99)
	stOther, err := MeasureWorld(other, StudyConfig{Days: 14, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareSites(st, stOther); err == nil {
		t.Fatal("different worlds should error")
	}
}

func TestLongTermTrendDeclines(t *testing.T) {
	pts, err := LongTermTrend(8, 150, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("points = %d", len(pts))
	}
	// Surveys are 21 days apart from Dec 2009; with 8 points we span into
	// mid-2010 only, so just verify plausibility and site rotation.
	for i, p := range pts {
		if p.FracDiurnal < 0 || p.FracDiurnal > 1 || p.Blocks == 0 {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
	if pts[0].Site != "w" || pts[1].Site != "c" || pts[2].Site != "j" {
		t.Fatalf("site rotation wrong: %+v", pts[:3])
	}
	if _, err := LongTermTrend(0, 10, 1); err == nil {
		t.Fatal("zero surveys should error")
	}
}

func TestLongTermTrendDeclineAfter2012(t *testing.T) {
	if testing.Short() {
		t.Skip("long-span trend is slow")
	}
	// Sample two eras directly: a 2010-era survey and a 2014-era survey.
	early, err := LongTermTrend(1, 200, 33)
	if err != nil {
		t.Fatal(err)
	}
	// Build a late survey by asking for enough surveys to pass 2012; take
	// the last.
	pts, err := LongTermTrend(80, 200, 33)
	if err != nil {
		t.Fatal(err)
	}
	late := pts[len(pts)-1]
	if !late.Date.After(time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("late survey date = %v", late.Date)
	}
	if late.FracDiurnal >= early[0].FracDiurnal {
		t.Fatalf("diurnal fraction should decline: early %v late %v",
			early[0].FracDiurnal, late.FracDiurnal)
	}
}

func TestCompareSiteFrequencies(t *testing.T) {
	_, st, _ := sharedStudy(t)
	st2, err := MeasureWorld(fixtureWorld, StudyConfig{Days: 14, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompareSiteFrequencies(st, st2)
	if err != nil {
		t.Fatal(err)
	}
	// Two vantage points over the same world should produce near-identical
	// frequency distributions. Assert on effect size: with ~1000 blocks the
	// KS test can reach small p-values for negligible D, so D is the
	// meaningful agreement measure.
	if res.D > 0.15 {
		t.Fatalf("frequency distributions differ across sites: D=%v p=%v", res.D, res.P)
	}
	t.Logf("cross-site frequency KS: D=%.3f p=%.3g", res.D, res.P)
	other := smallWorld(t, 60, 98)
	stOther, err := MeasureWorld(other, StudyConfig{Days: 14, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareSiteFrequencies(st, stOther); err == nil {
		t.Fatal("different worlds should error")
	}
}

func TestConsensusClassify(t *testing.T) {
	_, st, _ := sharedStudy(t)
	st2, err := MeasureWorld(fixtureWorld, StudyConfig{Days: 14, Seed: 555})
	if err != nil {
		t.Fatal(err)
	}
	st3, err := MeasureWorld(fixtureWorld, StudyConfig{Days: 14, Seed: 777})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ConsensusClassify(st, st2, st3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks < 900 {
		t.Fatalf("consensus population = %d", res.Blocks)
	}
	// Consensus should flip only a small minority of verdicts.
	if frac := float64(res.FlippedFromFirst) / float64(res.Blocks); frac > 0.05 {
		t.Fatalf("consensus flipped %.1f%% of verdicts", frac*100)
	}
	// Consensus precision against designed truth should be at least as
	// good as the single-site strict FP rate.
	var fp, nonDesigned int
	for _, b := range st.Measured() {
		strict, ok := res.Strict[uint32(b.Info.ID)]
		if !ok || b.Info.DesignedDiurnal {
			continue
		}
		nonDesigned++
		if strict {
			fp++
		}
	}
	if nonDesigned == 0 {
		t.Fatal("no non-designed blocks in consensus")
	}
	if frac := float64(fp) / float64(nonDesigned); frac > 0.02 {
		t.Fatalf("consensus strict FP rate = %v", frac)
	}
	if _, err := ConsensusClassify(st); err == nil {
		t.Fatal("single study should error")
	}
	other := smallWorld(t, 40, 123)
	stOther, err := MeasureWorld(other, StudyConfig{Days: 14, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConsensusClassify(st, stOther); err == nil {
		t.Fatal("different worlds should error")
	}
}
