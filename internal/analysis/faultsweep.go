package analysis

import (
	"fmt"

	"sleepnet/internal/core"
	"sleepnet/internal/faults"
	"sleepnet/internal/trinocular"
	"sleepnet/internal/world"
)

// FaultSweep charts how classification accuracy degrades under injected
// measurement-path faults: one synthetic world is measured fault-free and
// then under increasing packet loss and ICMP rate-limiting intensity, each
// run compared against survey ground truth (full enumeration of the same
// rounds, the paper's §3.2.3 validation method). The resilient probe path
// (retries, gap-filling, quarantine) is what keeps the curves flat at the
// fault levels the real deployment saw (~2% loss).

// FaultSweepConfig controls the sweep.
type FaultSweepConfig struct {
	// Blocks is the world size (default 300).
	Blocks int
	// Days of probing per run (default 7).
	Days int
	Seed uint64
	// LossRates are the packet-loss intensities to sweep (default
	// 0, 0.02, 0.05, 0.10).
	LossRates []float64
	// RateLimits are the probes-per-round rate-limit caps to sweep; 0 means
	// unlimited (default 4, 2).
	RateLimits []int
	// Retry is the prober's retry policy for every run (zero: no retries).
	Retry trinocular.RetryConfig
	// Workers bounds per-run parallelism.
	Workers int
}

func (c FaultSweepConfig) withDefaults() FaultSweepConfig {
	if c.Blocks == 0 {
		c.Blocks = 300
	}
	if c.Days == 0 {
		c.Days = 7
	}
	if c.LossRates == nil {
		c.LossRates = []float64{0, 0.02, 0.05, 0.10}
	}
	if c.RateLimits == nil {
		c.RateLimits = []int{4, 2}
	}
	return c
}

// FaultSweepPoint is one fault intensity level of the sweep.
type FaultSweepPoint struct {
	// Label names the fault configuration ("loss=2%", "ratelimit=4/round").
	Label string
	// Measured, Partial, Quarantined and Errors describe how the population
	// fared.
	Measured, Partial, Quarantined, Errors int
	// Compared is how many blocks had both a measurement and ground truth.
	Compared int
	// StrictAgree is the fraction of compared blocks whose strict-diurnal
	// verdict matches ground truth; EitherAgree compares the combined
	// strict-or-relaxed verdict.
	StrictAgree, EitherAgree float64
	// Faults is the injector's total accounting for the run.
	Faults faults.Stats
}

// FaultSweep runs the sweep and returns one point per fault level, the
// fault-free baseline first.
func FaultSweep(cfg FaultSweepConfig) ([]FaultSweepPoint, error) {
	cfg = cfg.withDefaults()
	w, err := world.Generate(world.Config{Blocks: cfg.Blocks, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	truth, err := surveyTruth(w, cfg)
	if err != nil {
		return nil, err
	}

	var points []FaultSweepPoint
	for _, lvl := range faults.SweepLevels(cfg.Seed, cfg.LossRates, cfg.RateLimits) {
		st, err := MeasureWorld(w, StudyConfig{
			Days:    cfg.Days,
			Seed:    cfg.Seed,
			Workers: cfg.Workers,
			Faults:  lvl.Config,
			Retry:   cfg.Retry,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lvl.Label, err)
		}
		points = append(points, scoreStudy(lvl.Label, st, truth))
	}
	return points, nil
}

// surveyTruth classifies every block from full enumeration of the same
// rounds the study probes — the ground truth a survey provides.
func surveyTruth(w *world.World, cfg FaultSweepConfig) (map[int]core.DiurnalClass, error) {
	pl := core.NewPipeline(w.Net, core.PipelineConfig{
		Start:  DefaultStart,
		Rounds: RoundsForDays(cfg.Days),
		Seed:   cfg.Seed,
	})
	truth := make(map[int]core.DiurnalClass, len(w.Blocks))
	for i, info := range w.Blocks {
		series, err := pl.Survey(info.ID)
		if err != nil {
			return nil, err
		}
		res, _, err := core.ClassifySeries(series)
		if err != nil {
			return nil, err
		}
		truth[i] = res.Class
	}
	return truth, nil
}

func scoreStudy(label string, st *Study, truth map[int]core.DiurnalClass) FaultSweepPoint {
	pt := FaultSweepPoint{
		Label:       label,
		Partial:     st.PartialCount(),
		Quarantined: st.QuarantinedCount(),
		Errors:      st.ErrorCount(),
		Faults:      st.FaultTotals(),
	}
	var strictOK, eitherOK int
	for i, b := range st.Blocks {
		if b.ErrMsg != "" || b.Sparse || b.Quarantined {
			continue
		}
		pt.Measured++
		t, ok := truth[i]
		if !ok {
			continue
		}
		pt.Compared++
		if (b.Class == core.StrictDiurnal) == (t == core.StrictDiurnal) {
			strictOK++
		}
		if b.Class.IsDiurnal() == t.IsDiurnal() {
			eitherOK++
		}
	}
	if pt.Compared > 0 {
		pt.StrictAgree = float64(strictOK) / float64(pt.Compared)
		pt.EitherAgree = float64(eitherOK) / float64(pt.Compared)
	}
	return pt
}
