package analysis

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sleepnet/internal/faults"
	"sleepnet/internal/trinocular"
	"sleepnet/internal/world"
)

// blockJSON renders a measured block for comparison; JSON is used so the
// NaN-bearing outage summaries compare equal (NaN encodes as null).
func blockJSON(t *testing.T, mb MeasuredBlock) string {
	t.Helper()
	data, err := json.Marshal(mb)
	if err != nil {
		t.Fatalf("marshal block: %v", err)
	}
	return string(data)
}

// TestMeasureWorldBatchScalarEquivalence is the study-level gate on batched
// probe delivery: over a faulty world, a ScalarProbe study and batched
// studies at several group sizes must agree block for block — same
// classifications, same degradation counters, same fault accounting.
func TestMeasureWorldBatchScalarEquivalence(t *testing.T) {
	w, err := world.Generate(world.Config{Blocks: 40, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	base := StudyConfig{
		Days: 3,
		Seed: 41,
		Faults: faults.Config{
			Seed:              41 ^ 0xfa17,
			LossRate:          0.02,
			CorruptRate:       0.01,
			RateLimitPerRound: 12,
		},
		Retry: trinocular.RetryConfig{MaxAttempts: 2},
	}

	scalar := base
	scalar.ScalarProbe = true
	want, err := MeasureWorld(w, scalar)
	if err != nil {
		t.Fatal(err)
	}
	if want.FaultTotals().Probes == 0 {
		t.Fatal("fault fixture saw no probes; the equivalence is vacuous")
	}

	for _, group := range []int{1, 7, 64} {
		cfg := base
		cfg.BatchGroup = group
		got, err := MeasureWorld(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Blocks {
			if blockJSON(t, got.Blocks[i]) != blockJSON(t, want.Blocks[i]) {
				t.Fatalf("group size %d, block %d: batched study diverged from scalar", group, i)
			}
		}
	}
}

// TestMeasureWorldCheckpointResume simulates a killed study: a complete
// checkpoint file is truncated to a prefix plus a torn trailing line, and the
// resumed run must reproduce the uninterrupted study exactly.
func TestMeasureWorldCheckpointResume(t *testing.T) {
	w, err := world.Generate(world.Config{Blocks: 50, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	base := StudyConfig{
		Days: 3,
		Seed: 77,
		Faults: faults.Config{
			Seed:              77 ^ 0xfa17,
			LossRate:          0.01,
			RateLimitPerRound: 12,
		},
		Retry: trinocular.RetryConfig{MaxAttempts: 2},
	}

	want, err := MeasureWorld(w, base)
	if err != nil {
		t.Fatal(err)
	}

	// A full checkpointed run must not change the results.
	ckpt := filepath.Join(t.TempDir(), "study.ckpt")
	full := base
	full.CheckpointPath = ckpt
	st, err := MeasureWorld(w, full)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Blocks {
		if blockJSON(t, st.Blocks[i]) != blockJSON(t, want.Blocks[i]) {
			t.Fatalf("block %d: checkpointing changed the measurement", i)
		}
	}

	// Kill simulation: keep the header and the first 20 block lines, then a
	// torn partial line as a kill mid-write would leave.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1+len(w.Blocks) {
		t.Fatalf("checkpoint has %d lines, want %d", len(lines), 1+len(w.Blocks))
	}
	truncated := strings.Join(lines[:21], "\n") + "\n" + lines[21][:len(lines[21])/2]
	if err := os.WriteFile(ckpt, []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := full
	resumed.Resume = true
	got, err := MeasureWorld(w, resumed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Blocks {
		if g, w := blockJSON(t, got.Blocks[i]), blockJSON(t, want.Blocks[i]); g != w {
			t.Fatalf("block %d: resumed run diverged:\n got %s\nwant %s", i, g, w)
		}
	}

	// The rewritten file holds the full study again, with no torn remnant.
	data, err = os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1+len(w.Blocks) {
		t.Fatalf("post-resume checkpoint has %d lines, want %d", len(lines), 1+len(w.Blocks))
	}

	t.Run("torn mid-file is rejected", func(t *testing.T) {
		bad := filepath.Join(t.TempDir(), "bad.ckpt")
		content := lines[0] + "\n" + lines[1][:len(lines[1])/2] + "\n" + lines[2] + "\n"
		if err := os.WriteFile(bad, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := resumed
		cfg.CheckpointPath = bad
		if _, err := MeasureWorld(w, cfg); err == nil {
			t.Fatal("resume accepted a checkpoint with a torn line mid-file")
		}
	})

	t.Run("mismatched campaign is rejected", func(t *testing.T) {
		cfg := resumed
		cfg.Seed = 78 // different campaign, same file
		if _, err := MeasureWorld(w, cfg); err == nil {
			t.Fatal("resume accepted a checkpoint from a different campaign")
		}
	})

	t.Run("missing file starts fresh", func(t *testing.T) {
		cfg := resumed
		cfg.CheckpointPath = filepath.Join(t.TempDir(), "missing.ckpt")
		st, err := MeasureWorld(w, cfg)
		if err != nil {
			t.Fatalf("missing checkpoint should start fresh: %v", err)
		}
		if blockJSON(t, st.Blocks[0]) != blockJSON(t, want.Blocks[0]) {
			t.Fatal("fresh run with missing checkpoint diverged")
		}
	})
}

// TestLossResilienceWithinTwoPoints is the PR's acceptance criterion: on a
// 500-block world with 2% injected probe loss and retries enabled, strict and
// either agreement with survey ground truth stay within two percentage points
// of the fault-free run.
func TestLossResilienceWithinTwoPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute sweep; run without -short")
	}
	points, err := FaultSweep(FaultSweepConfig{
		Blocks:     500,
		Days:       7,
		Seed:       42,
		LossRates:  []float64{0.02},
		RateLimits: []int{},
		Retry:      trinocular.RetryConfig{MaxAttempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d sweep points, want baseline + loss", len(points))
	}
	base, lossy := points[0], points[1]
	if base.Label != "fault-free" || lossy.Label != "loss=2%" {
		t.Fatalf("unexpected labels %q, %q", base.Label, lossy.Label)
	}
	if base.Compared < 300 || lossy.Compared < 300 {
		t.Fatalf("too few compared blocks: %d, %d", base.Compared, lossy.Compared)
	}
	if lossy.Faults.Dropped == 0 {
		t.Fatal("loss run dropped no probes; injector not active")
	}
	if d := math.Abs(lossy.StrictAgree - base.StrictAgree); d > 0.02 {
		t.Fatalf("strict agreement degraded %.1fpp under 2%% loss (%.3f vs %.3f)",
			d*100, lossy.StrictAgree, base.StrictAgree)
	}
	if d := math.Abs(lossy.EitherAgree - base.EitherAgree); d > 0.02 {
		t.Fatalf("either agreement degraded %.1fpp under 2%% loss (%.3f vs %.3f)",
			d*100, lossy.EitherAgree, base.EitherAgree)
	}
	t.Logf("strict: %.3f -> %.3f, either: %.3f -> %.3f",
		base.StrictAgree, lossy.StrictAgree, base.EitherAgree, lossy.EitherAgree)
}
