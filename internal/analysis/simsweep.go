package analysis

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"sleepnet/internal/core"
	"sleepnet/internal/netsim"
)

// SweepConfig describes the controlled diurnal-block simulation of §3.2.2:
// one /24 with Stable always-on addresses and NDiurnal addresses that are
// up for UpHours and down the rest of each day, with phase spread Φ and
// per-day start/duration noise. The sweep repeats the experiment
// PerBatch times in each of Batches batches and reports detection accuracy
// (fraction of experiments classified strictly diurnal).
type SweepConfig struct {
	Batches  int // default 10 (paper)
	PerBatch int // default 100 (paper)
	Weeks    int // default 4 (paper)
	Stable   int // default 50 (paper)
	NDiurnal int // default 100 (paper)
	// PhaseSpread is Φ: each address's daily on-time is drawn once,
	// uniformly in [0, Φ] after the base hour.
	PhaseSpread time.Duration
	// StartSigma (σs) and DurationSigma (σd) are per-day noise.
	StartSigma    time.Duration
	DurationSigma time.Duration
	// UpHours is the daily on-period length (default 8).
	UpHours float64
	Seed    uint64
	Workers int
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Batches == 0 {
		c.Batches = 10
	}
	if c.PerBatch == 0 {
		c.PerBatch = 100
	}
	if c.Weeks == 0 {
		c.Weeks = 4
	}
	if c.Stable == 0 {
		c.Stable = 50
	}
	if c.NDiurnal == 0 {
		c.NDiurnal = 100
	}
	if c.UpHours == 0 {
		c.UpHours = 8
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	return c
}

// SweepPoint is one x-value of a sensitivity figure: detection accuracy per
// batch plus its median and quartiles (the paper's error bars).
type SweepPoint struct {
	// X is the varied parameter's value at this point (count or hours).
	X float64
	// BatchAccuracy is the per-batch detection accuracy.
	BatchAccuracy []float64
	// Median, Q1, Q3 summarize the batches.
	Median, Q1, Q3 float64
	// Mean is the overall accuracy across all experiments.
	Mean float64
}

// RunSweepPoint runs Batches x PerBatch controlled experiments and scores
// strict-diurnal detection accuracy.
func RunSweepPoint(x float64, cfg SweepConfig) (SweepPoint, error) {
	cfg = cfg.withDefaults()
	if cfg.NDiurnal < 1 || cfg.NDiurnal+cfg.Stable > 255 {
		return SweepPoint{}, fmt.Errorf("analysis: bad population %d stable + %d diurnal", cfg.Stable, cfg.NDiurnal)
	}
	pt := SweepPoint{X: x, BatchAccuracy: make([]float64, cfg.Batches)}
	type job struct{ batch, exp int }
	type res struct {
		batch    int
		detected bool
		err      error
	}
	jobs := make(chan job)
	results := make(chan res)
	var wg sync.WaitGroup
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				det, err := runControlledExperiment(cfg, j.batch, j.exp)
				results <- res{batch: j.batch, detected: det, err: err}
			}
		}()
	}
	go func() {
		for b := 0; b < cfg.Batches; b++ {
			for e := 0; e < cfg.PerBatch; e++ {
				jobs <- job{b, e}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	detectedPerBatch := make([]int, cfg.Batches)
	totalDetected := 0
	var firstErr error
	for r := range results {
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		if r.detected {
			detectedPerBatch[r.batch]++
			totalDetected++
		}
	}
	if firstErr != nil {
		return SweepPoint{}, firstErr
	}
	for b := range pt.BatchAccuracy {
		pt.BatchAccuracy[b] = float64(detectedPerBatch[b]) / float64(cfg.PerBatch)
	}
	sorted := append([]float64(nil), pt.BatchAccuracy...)
	sort.Float64s(sorted)
	pt.Q1 = quantileSorted(sorted, 0.25)
	pt.Median = quantileSorted(sorted, 0.5)
	pt.Q3 = quantileSorted(sorted, 0.75)
	pt.Mean = float64(totalDetected) / float64(cfg.Batches*cfg.PerBatch)
	return pt, nil
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	h := q * float64(len(s)-1)
	lo := int(h)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := h - float64(lo)
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// runControlledExperiment builds one simulated block and reports whether
// the pipeline classifies it strictly diurnal.
func runControlledExperiment(cfg SweepConfig, batch, exp int) (bool, error) {
	seed := cfg.Seed ^ uint64(batch)<<32 ^ uint64(exp)<<8 ^ 0xf00d
	r := rand.New(rand.NewSource(int64(seed)))
	id := netsim.MakeBlockID(172, byte(batch), byte(exp))
	blk := &netsim.Block{ID: id, Seed: seed}
	h := 0
	for ; h < cfg.Stable; h++ {
		blk.Behaviors[h] = netsim.AlwaysOn{}
	}
	// Base on-time 09:00 plus a per-address uniform offset in [0, Φ].
	for i := 0; i < cfg.NDiurnal; i++ {
		phi := time.Duration(r.Float64() * float64(cfg.PhaseSpread))
		blk.Behaviors[h] = netsim.Diurnal{
			Phase:         9*time.Hour + phi,
			Duration:      time.Duration(cfg.UpHours * float64(time.Hour)),
			StartSigma:    cfg.StartSigma,
			DurationSigma: cfg.DurationSigma,
			Seed:          seed + uint64(h)*977,
		}
		h++
	}
	net := netsim.NewNetwork(seed ^ 0xbeef)
	net.AddBlock(blk)
	pl := core.NewPipeline(net, core.PipelineConfig{
		Start:  DefaultStart,
		Rounds: RoundsForDays(cfg.Weeks * 7),
		Seed:   seed ^ 0xc0de,
	})
	run, err := pl.RunBlock(id)
	if err != nil {
		return false, err
	}
	return run.Result.Class == core.StrictDiurnal, nil
}

// SweepDiurnalCount reproduces Fig 7: accuracy as the number of diurnal
// addresses varies (Φ = σs = σd = 0).
func SweepDiurnalCount(counts []int, cfg SweepConfig) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(counts))
	for _, n := range counts {
		c := cfg
		c.NDiurnal = n
		pt, err := RunSweepPoint(float64(n), c)
		if err != nil {
			return nil, fmt.Errorf("n_d=%d: %w", n, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// SweepPhaseSpread reproduces Fig 8: accuracy as maximum phase Φ varies
// (n_d = 100, σs = σd = 0).
func SweepPhaseSpread(hours []float64, cfg SweepConfig) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(hours))
	for _, hh := range hours {
		c := cfg
		c.PhaseSpread = time.Duration(hh * float64(time.Hour))
		pt, err := RunSweepPoint(hh, c)
		if err != nil {
			return nil, fmt.Errorf("phi=%vh: %w", hh, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// SweepDurationSigma reproduces Fig 9: accuracy as uptime-duration noise σd
// varies (n_d = 100, Φ = σs = 0).
func SweepDurationSigma(hours []float64, cfg SweepConfig) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(hours))
	for _, hh := range hours {
		c := cfg
		c.DurationSigma = time.Duration(hh * float64(time.Hour))
		pt, err := RunSweepPoint(hh, c)
		if err != nil {
			return nil, fmt.Errorf("sigma_d=%vh: %w", hh, err)
		}
		out = append(out, pt)
	}
	return out, nil
}
