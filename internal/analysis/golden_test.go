package analysis

import (
	"bytes"
	"encoding/json"
	"testing"

	"sleepnet/internal/dsp"
	"sleepnet/internal/metrics"
	"sleepnet/internal/world"
)

// goldenRecord is the serialized per-block outcome the golden test compares.
type goldenRecord struct {
	ID           uint32  `json:"id"`
	Class        int     `json:"class"`
	Phase        float64 `json:"phase"`
	StrongestCPD float64 `json:"strongest_cpd"`
	Days         int     `json:"days"`
	ProbesSent   int64   `json:"probes_sent"`
	Sparse       bool    `json:"sparse"`
	Partial      bool    `json:"partial"`
	Quarantined  bool    `json:"quarantined"`
}

// TestGoldenPipelineDeterminism pins DESIGN.md's byte-identical fast path:
// a fault-free 50-block measurement run twice with the same seed must
// serialize to byte-identical classifications AND a byte-identical
// deterministic metrics snapshot, regardless of worker scheduling. This is
// the regression tripwire for anything that sneaks wall-clock, map-order, or
// scheduling dependence into the measurement path or its instrumentation.
func TestGoldenPipelineDeterminism(t *testing.T) {
	run := func() ([]byte, []byte) {
		w, err := world.Generate(world.Config{Blocks: 50, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.New()
		dsp.SetMetrics(reg)
		defer dsp.SetMetrics(nil)
		st, err := MeasureWorld(w, StudyConfig{
			Days:    3,
			Seed:    7 ^ 0x5ca9,
			Workers: 4,
			Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		recs := make([]goldenRecord, 0, len(st.Blocks))
		for _, b := range st.Blocks {
			recs = append(recs, goldenRecord{
				ID:           uint32(b.Info.ID),
				Class:        int(b.Class),
				Phase:        b.Phase,
				StrongestCPD: b.StrongestCPD,
				Days:         b.Days,
				ProbesSent:   b.ProbesSent,
				Sparse:       b.Sparse,
				Partial:      b.Partial,
				Quarantined:  b.Quarantined,
			})
		}
		classes, err := json.MarshalIndent(recs, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		var snap bytes.Buffer
		if err := reg.Snapshot().Deterministic().WriteJSON(&snap); err != nil {
			t.Fatal(err)
		}
		return classes, snap.Bytes()
	}

	classesA, snapA := run()
	classesB, snapB := run()
	if !bytes.Equal(classesA, classesB) {
		t.Errorf("classifications differ across same-seed runs:\n%s\nvs\n%s", classesA, classesB)
	}
	if !bytes.Equal(snapA, snapB) {
		t.Errorf("metrics snapshots differ across same-seed runs:\n%s\nvs\n%s", snapA, snapB)
	}
	if len(snapA) == 0 || !bytes.Contains(snapA, []byte("trinocular.probes_sent")) {
		t.Fatalf("snapshot missing expected counters:\n%s", snapA)
	}
}
