package analysis

import (
	"fmt"
	"sync"

	"sleepnet/internal/core"
	"sleepnet/internal/world"
)

// CampusResult is the §3.2.4-style ground-truth validation on a campus
// network: how many blocks the probing policy excluded as too sparse, and
// how detection fared per category against designed truth.
type CampusResult struct {
	// PerCategory maps category to its counts.
	PerCategory map[world.CampusCategory]*CampusCategoryResult
	// Excluded counts blocks below the 15-active probing floor (the
	// paper's wireless false-negative story: 119 of 142 wireless blocks).
	Excluded int
	// Measured counts probed blocks.
	Measured int
}

// CampusCategoryResult tallies one category.
type CampusCategoryResult struct {
	Total    int
	Excluded int
	Detected int // classified diurnal (strict or relaxed) among probed
	Strict   int
	Probed   int
}

// ValidateCampus measures a campus with the standard pipeline and
// cross-tabulates detection against the generator's ground truth.
func ValidateCampus(c *world.Campus, sc StudyConfig) (*CampusResult, error) {
	sc = sc.withDefaults()
	cfg := core.PipelineConfig{
		Start:  sc.Start,
		Rounds: RoundsForDays(sc.Days),
		Seed:   sc.Seed,
	}
	pl := core.NewPipeline(c.Net, cfg)
	res := &CampusResult{PerCategory: make(map[world.CampusCategory]*CampusCategoryResult)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	ch := make(chan *world.CampusBlock)
	errCh := make(chan error, sc.Workers)
	for i := 0; i < sc.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cb := range ch {
				run, err := pl.RunBlock(cb.ID)
				mu.Lock()
				cat := res.PerCategory[cb.Category]
				if cat == nil {
					cat = &CampusCategoryResult{}
					res.PerCategory[cb.Category] = cat
				}
				cat.Total++
				switch {
				case err != nil && isSparse(err):
					cat.Excluded++
					res.Excluded++
				case err != nil:
					select {
					case errCh <- err:
					default:
					}
				default:
					cat.Probed++
					res.Measured++
					if run.Result.Class.IsDiurnal() {
						cat.Detected++
					}
					if run.Result.Class == core.StrictDiurnal {
						cat.Strict++
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, cb := range c.Blocks {
		ch <- cb
	}
	close(ch)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	if res.Measured == 0 {
		return nil, fmt.Errorf("analysis: no campus blocks measured")
	}
	return res, nil
}

// WirelessExclusionRate returns the fraction of wireless blocks the sparse
// policy removed from probing (paper: 119/142 ≈ 84%).
func (r *CampusResult) WirelessExclusionRate() float64 {
	w := r.PerCategory[world.CampusWireless]
	if w == nil || w.Total == 0 {
		return 0
	}
	return float64(w.Excluded) / float64(w.Total)
}

// DetectionRate returns detected/probed for a category.
func (r *CampusResult) DetectionRate(cat world.CampusCategory) float64 {
	c := r.PerCategory[cat]
	if c == nil || c.Probed == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Probed)
}
