package analysis

import (
	"fmt"
	"math"

	"sleepnet/internal/core"
	"sleepnet/internal/geo"
	"sleepnet/internal/stats"
)

// UnrollPhase maps a raw FFT phase into the window [-pi + L, pi + L), where
// L is the block's longitude in radians — the paper's trick for comparing
// two circular quantities (§5.2): instead of a fixed branch cut at ±pi, the
// cut follows the longitude, so phases of eastern and western blocks stay
// comparable.
func UnrollPhase(phase, lonRadians float64) float64 {
	for phase < lonRadians-math.Pi {
		phase += 2 * math.Pi
	}
	for phase >= lonRadians+math.Pi {
		phase -= 2 * math.Pi
	}
	return phase
}

// PhaseLongitude is the Fig 14 result.
type PhaseLongitude struct {
	// Grid is the unrolled-phase (y) vs longitude (x) density, 100x100 bins
	// as in the paper.
	Grid *stats.Grid2D
	// R is the correlation of unrolled phase against longitude
	// (paper: 0.835 strict, 0.763 relaxed).
	R float64
	// Blocks is the population size.
	Blocks int
	// Predictor maps 100 phase bins to the mean and standard deviation of
	// longitude in each bin (Fig 14c); empty bins hold NaN.
	PredictorMean, PredictorStd [100]float64
}

// PhaseVsLongitude reproduces Fig 14 for the study's diurnal blocks:
// strict-only (Fig 14a) or strict+relaxed (Fig 14b), geolocated through the
// given database.
func (s *Study) PhaseVsLongitude(db *geo.DB, includeRelaxed bool) (*PhaseLongitude, error) {
	grid, err := stats.NewGrid2D(-180, 180, 100, -math.Pi-math.Pi/9, math.Pi+2*math.Pi+math.Pi/9, 100)
	if err != nil {
		return nil, err
	}
	var lons, phases []float64
	type binAgg struct {
		sum, sumsq float64
		n          int
	}
	var bins [100]binAgg
	for _, b := range s.Measured() {
		switch b.Class {
		case core.StrictDiurnal:
		case core.RelaxedDiurnal:
			if !includeRelaxed {
				continue
			}
		default:
			continue
		}
		e, ok := db.Lookup(b.Info.ID)
		if !ok {
			continue
		}
		lonRad := e.Lon * math.Pi / 180
		up := UnrollPhase(b.Phase, lonRad)
		grid.Add(e.Lon, up)
		lons = append(lons, e.Lon)
		phases = append(phases, up)
		// Predictor bins use the raw phase folded to [-pi, pi).
		raw := math.Mod(b.Phase+3*math.Pi, 2*math.Pi) - math.Pi
		bi := int((raw + math.Pi) / (2 * math.Pi) * 100)
		if bi < 0 {
			bi = 0
		}
		if bi > 99 {
			bi = 99
		}
		bins[bi].sum += e.Lon
		bins[bi].sumsq += e.Lon * e.Lon
		bins[bi].n++
	}
	if len(lons) < 3 {
		return nil, fmt.Errorf("analysis: only %d geolocated diurnal blocks", len(lons))
	}
	out := &PhaseLongitude{Grid: grid, Blocks: len(lons), R: stats.Pearson(phases, lons)}
	for i := range bins {
		if bins[i].n == 0 {
			out.PredictorMean[i] = math.NaN()
			out.PredictorStd[i] = math.NaN()
			continue
		}
		mean := bins[i].sum / float64(bins[i].n)
		out.PredictorMean[i] = mean
		variance := bins[i].sumsq/float64(bins[i].n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		out.PredictorStd[i] = math.Sqrt(variance)
	}
	return out, nil
}

// UTCPeakHour converts a diurnal 1-cycle/day FFT phase into the UTC time
// of day (hours) of the block's daily activity peak. It relies on the
// midnight-UTC trim (§2.2): the series starts at a UTC midnight, so for the
// diurnal bin k = N_d the coefficient phase θ relates to the peak's
// time-of-day fraction as θ = -2π·τ/24 — this is the "tie phase to
// time-of-day" calibration the paper leaves as future work.
func UTCPeakHour(phase float64) float64 {
	h := math.Mod(-phase*24/(2*math.Pi), 24)
	if h < 0 {
		h += 24
	}
	return h
}

// LocalPeakHour converts a diurnal phase to the local solar time of day of
// peak activity at the given longitude (degrees east).
func LocalPeakHour(phase, lonDegrees float64) float64 {
	h := math.Mod(UTCPeakHour(phase)+lonDegrees/15, 24)
	if h < 0 {
		h += 24
	}
	return h
}

// PredictLongitude estimates a block's longitude from its diurnal phase
// using the Fig 14c predictor, returning the mean and the uncertainty
// (stddev) of the matching phase bin. ok is false for phases with no
// training data.
func (p *PhaseLongitude) PredictLongitude(phase float64) (lon, sd float64, ok bool) {
	raw := math.Mod(phase+3*math.Pi, 2*math.Pi) - math.Pi
	bi := int((raw + math.Pi) / (2 * math.Pi) * 100)
	if bi < 0 {
		bi = 0
	}
	if bi > 99 {
		bi = 99
	}
	if math.IsNaN(p.PredictorMean[bi]) {
		return 0, 0, false
	}
	return p.PredictorMean[bi], p.PredictorStd[bi], true
}
