// Package analysis implements the paper's experiments: each figure and
// table of the evaluation (§3–§5) has a function here that runs the
// measurement pipeline over a simulated world and computes the reported
// quantity — estimator correlation (Figs 4–5), detection validation
// (Table 1), controlled sensitivity sweeps (Figs 7–9), cross-site agreement
// (Table 2), the frequency distribution (Fig 10), long-term trends
// (Fig 11), world maps (Figs 12–13), country and region tables (Tables
// 3–4), phase-longitude analysis (Fig 14), allocation-date trends (Fig 15),
// GDP correlation (Fig 16), factorial ANOVA (Table 5), and link-technology
// correlation (Fig 17).
package analysis

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"sleepnet/internal/core"
	"sleepnet/internal/outage"
	"sleepnet/internal/trinocular"
	"sleepnet/internal/world"
)

// DefaultStart matches the A12w collection start (2013-04-24 17:18 UTC).
var DefaultStart = time.Date(2013, time.April, 24, 17, 18, 0, 0, time.UTC)

// RoundsForDays returns the number of 11-minute rounds that cover the given
// number of days with a safety margin for midnight trimming.
func RoundsForDays(days int) int {
	return days*86400/660 + 60
}

// MeasuredBlock is the per-block summary a study keeps: the classification
// and the small diagnostics the experiments consume (full per-round series
// are dropped to keep world-scale studies in memory).
type MeasuredBlock struct {
	Info *world.BlockInfo
	// Class is the spectral classification of the estimated series.
	Class core.DiurnalClass
	// Phase is the 1-cycle/day FFT phase (meaningful when diurnal).
	Phase float64
	// StrongestCPD is the strongest periodicity in cycles/day.
	StrongestCPD float64
	// Days is N_d of the trimmed series.
	Days int
	// ProbesSent is the probing cost of this block.
	ProbesSent int64
	// SlopePerDay is the linear drift of the trimmed Âs series — the §2.2
	// stationarity diagnostic.
	SlopePerDay float64
	// Outage summarizes the block's detected outage episodes.
	Outage outage.Summary
	// Sparse marks blocks Trinocular refused to probe (policy floor).
	Sparse bool
	// Err records any other per-block failure.
	Err error
}

// Study is a measured world: the block population with classifications.
type Study struct {
	World  *world.World
	Blocks []MeasuredBlock
	// Cfg is the pipeline configuration used.
	Cfg core.PipelineConfig
}

// StudyConfig controls a world measurement.
type StudyConfig struct {
	// Days of probing (default 14).
	Days int
	// Seed for the pipeline (artifact injection, walks).
	Seed uint64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// RestartInterval forwards the prober restart artifact (zero: none).
	RestartInterval time.Duration
	// MissingRate/DuplicateRate forward collection artifacts.
	MissingRate, DuplicateRate float64
	// Start overrides the campaign start time.
	Start time.Time
}

func (c StudyConfig) withDefaults() StudyConfig {
	if c.Days == 0 {
		c.Days = 14
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Start.IsZero() {
		c.Start = DefaultStart
	}
	return c
}

// MeasureWorld runs the full §2 pipeline over every block of the world in
// parallel and returns the per-block classifications.
func MeasureWorld(w *world.World, sc StudyConfig) (*Study, error) {
	sc = sc.withDefaults()
	if len(w.Blocks) == 0 {
		return nil, fmt.Errorf("analysis: world has no blocks")
	}
	cfg := core.PipelineConfig{
		Start:         sc.Start,
		Rounds:        RoundsForDays(sc.Days),
		Seed:          sc.Seed,
		MissingRate:   sc.MissingRate,
		DuplicateRate: sc.DuplicateRate,
		Prober:        trinocular.Config{RestartInterval: sc.RestartInterval},
	}
	pl := core.NewPipeline(w.Net, cfg)
	study := &Study{World: w, Cfg: pl.Config(), Blocks: make([]MeasuredBlock, len(w.Blocks))}

	var wg sync.WaitGroup
	idxCh := make(chan int)
	for wk := 0; wk < sc.Workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				study.Blocks[i] = measureOne(pl, w.Blocks[i])
			}
		}()
	}
	for i := range w.Blocks {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return study, nil
}

func measureOne(pl *core.Pipeline, info *world.BlockInfo) MeasuredBlock {
	mb := MeasuredBlock{Info: info}
	run, err := pl.RunBlock(info.ID)
	if err != nil {
		if isSparse(err) {
			mb.Sparse = true
		} else {
			mb.Err = err
		}
		return mb
	}
	mb.Class = run.Result.Class
	mb.Phase = run.Result.Phase
	mb.Days = run.Days
	mb.ProbesSent = run.ProbesSent
	mb.SlopePerDay = run.SlopePerDay
	// Use the exact series duration, not the integer day count: a trimmed
	// series spans ~13.995 days, and bin/floor(days) would misscale every
	// frequency by ~7%.
	if exactDays := run.Trimmed.Days(); exactDays > 0 {
		mb.StrongestCPD = float64(run.Result.PeakBin) / exactDays
	}
	if eps, err := outage.Episodes(run.Outages, run.Short.Len()); err == nil {
		mb.Outage = outage.Summarize(eps, run.Short.Len())
	}
	return mb
}

func isSparse(err error) bool { return errors.Is(err, trinocular.ErrTooSparse) }

// Measured returns the blocks that produced a classification.
func (s *Study) Measured() []MeasuredBlock {
	out := make([]MeasuredBlock, 0, len(s.Blocks))
	for _, b := range s.Blocks {
		if b.Err == nil && !b.Sparse {
			out = append(out, b)
		}
	}
	return out
}

// CountByClass tallies the measured population.
func (s *Study) CountByClass() map[core.DiurnalClass]int {
	out := make(map[core.DiurnalClass]int)
	for _, b := range s.Measured() {
		out[b.Class]++
	}
	return out
}

// DiurnalFraction returns the strict and either (strict+relaxed) fractions
// of the measured population.
func (s *Study) DiurnalFraction() (strict, either float64) {
	m := s.Measured()
	if len(m) == 0 {
		return 0, 0
	}
	var ns, ne int
	for _, b := range m {
		switch b.Class {
		case core.StrictDiurnal:
			ns++
			ne++
		case core.RelaxedDiurnal:
			ne++
		}
	}
	return float64(ns) / float64(len(m)), float64(ne) / float64(len(m))
}

// ProbeBudget summarizes probing cost: mean probes per block per hour.
func (s *Study) ProbeBudget() float64 {
	m := s.Measured()
	if len(m) == 0 {
		return 0
	}
	var total int64
	for _, b := range m {
		total += b.ProbesSent
	}
	hours := float64(s.Cfg.Rounds) * s.Cfg.Period.Hours()
	return float64(total) / float64(len(m)) / hours
}

// StationaryFraction reports the share of measured blocks whose Âs series
// drifts by less than one address per day in availability units (slope <
// 1/|E(b)|) — the §2.2 data-appropriateness check; the paper found 80.3%
// of survey blocks stationary.
func (s *Study) StationaryFraction() float64 {
	m := s.Measured()
	if len(m) == 0 {
		return 0
	}
	stationary := 0
	for _, b := range m {
		ever := b.Info.NumStable + b.Info.NumDiurnal + b.Info.NumIntermittent
		if ever <= 0 {
			ever = 256
		}
		limit := 1 / float64(ever)
		if b.SlopePerDay <= limit && b.SlopePerDay >= -limit {
			stationary++
		}
	}
	return float64(stationary) / float64(len(m))
}

// SelectBlocks returns measured blocks passing the filter.
func (s *Study) SelectBlocks(keep func(MeasuredBlock) bool) []MeasuredBlock {
	var out []MeasuredBlock
	for _, b := range s.Measured() {
		if keep(b) {
			out = append(out, b)
		}
	}
	return out
}

// sortedCountryCodes returns the country codes present among measured
// blocks, sorted for deterministic iteration.
func (s *Study) sortedCountryCodes() []string {
	seen := make(map[string]bool)
	for _, b := range s.Measured() {
		seen[b.Info.Country.Code] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
