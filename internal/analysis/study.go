// Package analysis implements the paper's experiments: each figure and
// table of the evaluation (§3–§5) has a function here that runs the
// measurement pipeline over a simulated world and computes the reported
// quantity — estimator correlation (Figs 4–5), detection validation
// (Table 1), controlled sensitivity sweeps (Figs 7–9), cross-site agreement
// (Table 2), the frequency distribution (Fig 10), long-term trends
// (Fig 11), world maps (Figs 12–13), country and region tables (Tables
// 3–4), phase-longitude analysis (Fig 14), allocation-date trends (Fig 15),
// GDP correlation (Fig 16), factorial ANOVA (Table 5), and link-technology
// correlation (Fig 17).
package analysis

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"sleepnet/internal/core"
	"sleepnet/internal/faults"
	"sleepnet/internal/metrics"
	"sleepnet/internal/netsim"
	"sleepnet/internal/outage"
	"sleepnet/internal/trinocular"
	"sleepnet/internal/world"
)

// DefaultStart matches the A12w collection start (2013-04-24 17:18 UTC).
var DefaultStart = time.Date(2013, time.April, 24, 17, 18, 0, 0, time.UTC)

// RoundsForDays returns the number of 11-minute rounds that cover the given
// number of days with a safety margin for midnight trimming.
func RoundsForDays(days int) int {
	return days*86400/660 + 60
}

// MeasuredBlock is the per-block summary a study keeps: the classification
// and the small diagnostics the experiments consume (full per-round series
// are dropped to keep world-scale studies in memory).
type MeasuredBlock struct {
	Info *world.BlockInfo
	// Class is the spectral classification of the estimated series.
	Class core.DiurnalClass
	// Phase is the 1-cycle/day FFT phase (meaningful when diurnal).
	Phase float64
	// StrongestCPD is the strongest periodicity in cycles/day.
	StrongestCPD float64
	// Days is N_d of the trimmed series.
	Days int
	// ProbesSent is the probing cost of this block.
	ProbesSent int64
	// SlopePerDay is the linear drift of the trimmed Âs series — the §2.2
	// stationarity diagnostic.
	SlopePerDay float64
	// Outage summarizes the block's detected outage episodes.
	Outage outage.Summary
	// Sparse marks blocks Trinocular refused to probe (policy floor).
	Sparse bool
	// ErrMsg records any other per-block failure (empty when measured).
	ErrMsg string
	// Partial marks blocks measured through recoverable gaps: some rounds
	// produced no observation (blackout, rate limiting) and were gap-filled
	// before classification. Partial blocks still count as measured.
	Partial bool
	// Quarantined marks blocks whose failed-round fraction crossed the
	// study's quarantine threshold; their classification is unreliable and
	// they are excluded from aggregates.
	Quarantined bool
	// FailedRounds, Retries, SendErrors and RateLimited are the block's
	// degradation counters from the probing run.
	FailedRounds int
	Retries      int
	SendErrors   int
	RateLimited  int
	// Faults is the injector's per-block accounting, when a fault model was
	// active.
	Faults faults.Stats
}

// Err returns the recorded failure as an error, or nil.
func (b MeasuredBlock) Err() error {
	if b.ErrMsg == "" {
		return nil
	}
	return errors.New(b.ErrMsg)
}

// Study is a measured world: the block population with classifications.
type Study struct {
	World  *world.World
	Blocks []MeasuredBlock
	// Cfg is the pipeline configuration used.
	Cfg core.PipelineConfig
}

// StudyConfig controls a world measurement.
type StudyConfig struct {
	// Days of probing (default 14).
	Days int
	// Seed for the pipeline (artifact injection, walks).
	Seed uint64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// RestartInterval forwards the prober restart artifact (zero: none).
	RestartInterval time.Duration
	// MissingRate/DuplicateRate forward collection artifacts.
	MissingRate, DuplicateRate float64
	// Start overrides the campaign start time.
	Start time.Time
	// Faults, when active, attaches a fault injector to the world's network
	// for the duration of the measurement. Its Epoch defaults to Start.
	Faults faults.Config
	// Retry forwards the prober's retry policy for vantage-local failures.
	Retry trinocular.RetryConfig
	// QuarantineFailedFrac is the failed-round fraction above which a block
	// is quarantined instead of classified (default 0.25).
	QuarantineFailedFrac float64
	// ScalarProbe forces per-probe delivery instead of the default batched
	// wavefronts. Results are identical either way (the batch path only
	// amortizes the netsim boundary cost); the knob exists for A/B
	// benchmarks and equivalence tests.
	ScalarProbe bool
	// BatchGroup is how many blocks one worker measures in lockstep so
	// their rounds share a batched boundary crossing (default 64). Ignored
	// under ScalarProbe.
	BatchGroup int
	// CheckpointPath, when set, appends each measured block to a JSONL
	// checkpoint file as it completes.
	CheckpointPath string
	// Resume skips blocks already present in CheckpointPath.
	Resume bool
	// Metrics, when non-nil, receives study-level counters (blocks measured,
	// sparse, failed, partial, quarantined) plus a per-block wall-time
	// histogram, and is forwarded to the pipeline and prober underneath.
	Metrics *metrics.Registry
}

func (c StudyConfig) withDefaults() StudyConfig {
	if c.Days == 0 {
		c.Days = 14
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Start.IsZero() {
		c.Start = DefaultStart
	}
	if c.QuarantineFailedFrac == 0 {
		c.QuarantineFailedFrac = 0.25
	}
	if c.BatchGroup <= 0 {
		c.BatchGroup = 64
	}
	return c
}

// MeasureWorld runs the full §2 pipeline over every block of the world in
// parallel and returns the per-block classifications.
func MeasureWorld(w *world.World, sc StudyConfig) (*Study, error) {
	sc = sc.withDefaults()
	if len(w.Blocks) == 0 {
		return nil, fmt.Errorf("analysis: world has no blocks")
	}
	cfg := core.PipelineConfig{
		Start:         sc.Start,
		Rounds:        RoundsForDays(sc.Days),
		Seed:          sc.Seed,
		MissingRate:   sc.MissingRate,
		DuplicateRate: sc.DuplicateRate,
		Prober:        trinocular.Config{RestartInterval: sc.RestartInterval, Retry: sc.Retry},
		Metrics:       sc.Metrics,
	}
	pl := core.NewPipeline(w.Net, cfg)
	sm := newStudyMetrics(sc.Metrics)
	study := &Study{World: w, Cfg: pl.Config(), Blocks: make([]MeasuredBlock, len(w.Blocks))}

	// Attach the fault injector for the duration of the measurement.
	var inj *faults.Injector
	if sc.Faults.Active() {
		fc := sc.Faults
		if fc.Epoch.IsZero() {
			fc.Epoch = sc.Start
		}
		inj = faults.New(fc)
		w.Net.SetTap(inj)
		defer w.Net.SetTap(nil)
	}

	// Block-level checkpointing: blocks measured by a previous (killed) run
	// are loaded from the JSONL file and skipped; newly measured blocks are
	// appended as they complete.
	var cw *checkpointWriter
	done := make(map[int]bool)
	if sc.CheckpointPath != "" {
		var err error
		cw, done, err = openCheckpoint(sc.CheckpointPath, w, sc, study)
		if err != nil {
			return nil, err
		}
		defer cw.Close()
	}

	// Work is dealt in groups: one worker measures a group of blocks in
	// lockstep so every round of the group crosses the netsim boundary as
	// one batched wavefront (RunBlocks). Under ScalarProbe each group is
	// measured block by block through the per-probe path instead.
	groupSize := sc.BatchGroup
	if sc.ScalarProbe {
		groupSize = 1
	}
	var groups [][]int
	var cur []int
	for i := range w.Blocks {
		if done[i] {
			continue
		}
		cur = append(cur, i)
		if len(cur) == groupSize {
			groups = append(groups, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}

	var wg sync.WaitGroup
	groupCh := make(chan []int)
	errCh := make(chan error, sc.Workers)
	commit := func(i int, mb MeasuredBlock) {
		finishBlock(&mb, inj, cfg.Rounds, sc.QuarantineFailedFrac)
		sm.record(mb)
		study.Blocks[i] = mb
		if cw != nil {
			if err := cw.Append(i, mb); err != nil {
				select {
				case errCh <- err:
				default:
				}
			}
		}
	}
	for wk := 0; wk < sc.Workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]netsim.BlockID, 0, groupSize)
			for idxs := range groupCh {
				if sc.ScalarProbe {
					for _, i := range idxs {
						stop := sm.blockSeconds.Time()
						mb := measureOne(pl, w.Blocks[i])
						stop()
						commit(i, mb)
					}
					continue
				}
				ids = ids[:0]
				for _, i := range idxs {
					ids = append(ids, w.Blocks[i].ID)
				}
				stop := sm.blockSeconds.Time()
				runs, errs := pl.RunBlocks(ids)
				stop()
				for k, i := range idxs {
					commit(i, blockFromRun(w.Blocks[i], runs[k], errs[k]))
				}
			}
		}()
	}
	for _, g := range groups {
		groupCh <- g
	}
	close(groupCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return study, nil
}

// studyMetrics caches the study-level instruments; all handles are nil (and
// every use a no-op) when the study is uninstrumented.
type studyMetrics struct {
	measured     *metrics.Counter
	sparse       *metrics.Counter
	failed       *metrics.Counter
	partial      *metrics.Counter
	quarantined  *metrics.Counter
	blockSeconds *metrics.Histogram
}

func newStudyMetrics(r *metrics.Registry) studyMetrics {
	return studyMetrics{
		measured:    r.Counter("analysis.blocks_measured"),
		sparse:      r.Counter("analysis.blocks_sparse"),
		failed:      r.Counter("analysis.blocks_failed"),
		partial:     r.Counter("analysis.blocks_partial"),
		quarantined: r.Counter("analysis.blocks_quarantined"),
		blockSeconds: r.Histogram("analysis.block_seconds",
			metrics.UnitSeconds, metrics.ExpBuckets(1e-4, 10, 7)),
	}
}

// record tallies one finished block into the study counters.
func (m studyMetrics) record(mb MeasuredBlock) {
	switch {
	case mb.Sparse:
		m.sparse.Inc()
	case mb.ErrMsg != "":
		m.failed.Inc()
	case mb.Quarantined:
		m.quarantined.Inc()
	default:
		m.measured.Inc()
		if mb.Partial {
			m.partial.Inc()
		}
	}
}

// finishBlock attaches the injector's per-block accounting and applies the
// quarantine policy.
func finishBlock(mb *MeasuredBlock, inj *faults.Injector, rounds int, quarantineFrac float64) {
	if inj != nil {
		mb.Faults = inj.BlockStats(mb.Info.ID)
	}
	if mb.ErrMsg != "" || mb.Sparse || rounds <= 0 {
		return
	}
	frac := float64(mb.FailedRounds) / float64(rounds)
	switch {
	case frac > quarantineFrac:
		mb.Quarantined = true
		mb.Partial = false
	case mb.FailedRounds > 0:
		mb.Partial = true
	}
}

func measureOne(pl *core.Pipeline, info *world.BlockInfo) MeasuredBlock {
	run, err := pl.RunBlock(info.ID)
	return blockFromRun(info, run, err)
}

// blockFromRun converts one block's pipeline result (from RunBlock or a
// RunBlocks group slot) into its study record.
func blockFromRun(info *world.BlockInfo, run *core.BlockRun, err error) MeasuredBlock {
	mb := MeasuredBlock{Info: info}
	if err != nil {
		if isSparse(err) {
			mb.Sparse = true
		} else {
			mb.ErrMsg = err.Error()
		}
		return mb
	}
	mb.FailedRounds = run.FailedRounds
	mb.Retries = run.Retries
	mb.SendErrors = run.SendErrors
	mb.RateLimited = run.RateLimited
	mb.Class = run.Result.Class
	mb.Phase = run.Result.Phase
	mb.Days = run.Days
	mb.ProbesSent = run.ProbesSent
	mb.SlopePerDay = run.SlopePerDay
	// Use the exact series duration, not the integer day count: a trimmed
	// series spans ~13.995 days, and bin/floor(days) would misscale every
	// frequency by ~7%.
	if exactDays := run.Trimmed.Days(); exactDays > 0 {
		mb.StrongestCPD = float64(run.Result.PeakBin) / exactDays
	}
	if eps, err := outage.Episodes(run.Outages, run.Short.Len()); err == nil {
		mb.Outage = outage.Summarize(eps, run.Short.Len())
	}
	return mb
}

func isSparse(err error) bool { return errors.Is(err, trinocular.ErrTooSparse) }

// Measured returns the blocks that produced a trustworthy classification:
// not sparse, not failed, not quarantined. Partial blocks (recoverable gaps,
// gap-filled) are included.
func (s *Study) Measured() []MeasuredBlock {
	out := make([]MeasuredBlock, 0, len(s.Blocks))
	for _, b := range s.Blocks {
		if b.ErrMsg == "" && !b.Sparse && !b.Quarantined {
			out = append(out, b)
		}
	}
	return out
}

// ErrorCount returns how many blocks failed measurement outright.
func (s *Study) ErrorCount() int {
	n := 0
	for _, b := range s.Blocks {
		if b.ErrMsg != "" {
			n++
		}
	}
	return n
}

// FirstError returns one recorded per-block error message, or "".
func (s *Study) FirstError() string {
	for _, b := range s.Blocks {
		if b.ErrMsg != "" {
			return b.ErrMsg
		}
	}
	return ""
}

// QuarantinedCount returns how many blocks the quarantine policy excluded.
func (s *Study) QuarantinedCount() int {
	n := 0
	for _, b := range s.Blocks {
		if b.Quarantined {
			n++
		}
	}
	return n
}

// PartialCount returns how many measured blocks carried recoverable gaps.
func (s *Study) PartialCount() int {
	n := 0
	for _, b := range s.Blocks {
		if b.Partial {
			n++
		}
	}
	return n
}

// FaultTotals sums the injector's per-block accounting over all blocks.
func (s *Study) FaultTotals() faults.Stats {
	var t faults.Stats
	for _, b := range s.Blocks {
		t.Probes += b.Faults.Probes
		t.Dropped += b.Faults.Dropped
		t.RateLimited += b.Faults.RateLimited
		t.SendErrors += b.Faults.SendErrors
		t.Corrupted += b.Faults.Corrupted
	}
	return t
}

// DegradationTotals sums the probing-side degradation counters.
func (s *Study) DegradationTotals() (failedRounds, retries, sendErrors, rateLimited int) {
	for _, b := range s.Blocks {
		failedRounds += b.FailedRounds
		retries += b.Retries
		sendErrors += b.SendErrors
		rateLimited += b.RateLimited
	}
	return
}

// CountByClass tallies the measured population.
func (s *Study) CountByClass() map[core.DiurnalClass]int {
	out := make(map[core.DiurnalClass]int)
	for _, b := range s.Measured() {
		out[b.Class]++
	}
	return out
}

// DiurnalFraction returns the strict and either (strict+relaxed) fractions
// of the measured population.
func (s *Study) DiurnalFraction() (strict, either float64) {
	m := s.Measured()
	if len(m) == 0 {
		return 0, 0
	}
	var ns, ne int
	for _, b := range m {
		switch b.Class {
		case core.StrictDiurnal:
			ns++
			ne++
		case core.RelaxedDiurnal:
			ne++
		}
	}
	return float64(ns) / float64(len(m)), float64(ne) / float64(len(m))
}

// ProbeBudget summarizes probing cost: mean probes per block per hour.
func (s *Study) ProbeBudget() float64 {
	m := s.Measured()
	if len(m) == 0 {
		return 0
	}
	var total int64
	for _, b := range m {
		total += b.ProbesSent
	}
	hours := float64(s.Cfg.Rounds) * s.Cfg.Period.Hours()
	return float64(total) / float64(len(m)) / hours
}

// StationaryFraction reports the share of measured blocks whose Âs series
// drifts by less than one address per day in availability units (slope <
// 1/|E(b)|) — the §2.2 data-appropriateness check; the paper found 80.3%
// of survey blocks stationary.
func (s *Study) StationaryFraction() float64 {
	m := s.Measured()
	if len(m) == 0 {
		return 0
	}
	stationary := 0
	for _, b := range m {
		ever := b.Info.NumStable + b.Info.NumDiurnal + b.Info.NumIntermittent
		if ever <= 0 {
			ever = 256
		}
		limit := 1 / float64(ever)
		if b.SlopePerDay <= limit && b.SlopePerDay >= -limit {
			stationary++
		}
	}
	return float64(stationary) / float64(len(m))
}

// SelectBlocks returns measured blocks passing the filter.
func (s *Study) SelectBlocks(keep func(MeasuredBlock) bool) []MeasuredBlock {
	var out []MeasuredBlock
	for _, b := range s.Measured() {
		if keep(b) {
			out = append(out, b)
		}
	}
	return out
}

// sortedCountryCodes returns the country codes present among measured
// blocks, sorted for deterministic iteration.
func (s *Study) sortedCountryCodes() []string {
	seen := make(map[string]bool)
	for _, b := range s.Measured() {
		seen[b.Info.Country.Code] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
