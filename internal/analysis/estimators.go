package analysis

import (
	"fmt"
	"sync"

	"sleepnet/internal/core"
	"sleepnet/internal/netsim"
	"sleepnet/internal/stats"
	"sleepnet/internal/world"
)

// EstimatorCorrelation is the Fig 4 / Fig 5 result: pooled per-round pairs
// of true availability against an estimate, as a density grid with
// per-column quartiles and an overall correlation coefficient.
type EstimatorCorrelation struct {
	// Grid is the 2D density of (true A, estimate) pairs (x: truth).
	Grid *stats.Grid2D
	// Quartiles[g] holds {Q1, median, Q3} of the estimate for truth bin g
	// (bins of 0.1 as in the paper).
	Quartiles [][]float64
	// R is the Pearson correlation over all pooled pairs.
	R float64
	// UnderFrac is the fraction of rounds where the estimate is at or
	// below truth (the Fig 5 "94% under" check; also computed for Fig 4
	// where it is uninteresting).
	UnderFrac float64
	// Pairs is the number of pooled (truth, estimate) observations.
	Pairs int
	// Blocks is the number of blocks that contributed.
	Blocks int
}

// EstimatorKind selects which estimate Figs 4 and 5 validate.
type EstimatorKind int

const (
	// ShortTermEstimate is Âs (Fig 4).
	ShortTermEstimate EstimatorKind = iota
	// OperationalEstimate is Âo (Fig 5).
	OperationalEstimate
)

// warmupRounds excludes the estimator's initial convergence from pooled
// comparisons, as the paper excludes the "inaccurate initial value".
const warmupRounds = 200

// CompareEstimatorToTruth reproduces Figs 4 and 5: it probes every block of
// the world adaptively, surveys it exhaustively for ground truth, pools the
// per-round (A, estimate) pairs, and summarizes them. For the operational
// estimate, rounds where Âo sits at the 0.1 policy floor are excluded, as
// the paper omits non-probed very-sparse cases.
func CompareEstimatorToTruth(w *world.World, cfg core.PipelineConfig, kind EstimatorKind, workers int) (*EstimatorCorrelation, error) {
	if workers <= 0 {
		workers = 4
	}
	pl := core.NewPipeline(w.Net, cfg)
	grid, err := stats.NewGrid2D(0, 1.0001, 50, 0, 1.0001, 50)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var xs, ys []float64
	var under, pairs, nblocks int

	var wg sync.WaitGroup
	ch := make(chan netsim.BlockID)
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ch {
				run, err := pl.RunBlock(id)
				if err != nil {
					if isSparse(err) {
						continue
					}
					select {
					case errCh <- err:
					default:
					}
					continue
				}
				sv, err := pl.Survey(id)
				if err != nil {
					select {
					case errCh <- err:
					default:
					}
					continue
				}
				est := run.Short.Values
				if kind == OperationalEstimate {
					est = run.Operational
				}
				mu.Lock()
				nblocks++
				for r := warmupRounds; r < len(est) && r < sv.Len(); r++ {
					truth := sv.Values[r]
					e := est[r]
					if kind == OperationalEstimate && e <= core.OperationalFloor {
						continue
					}
					grid.Add(truth, e)
					xs = append(xs, truth)
					ys = append(ys, e)
					pairs++
					if e <= truth+1e-9 {
						under++
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, b := range w.Blocks {
		ch <- b.ID
	}
	close(ch)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	if pairs == 0 {
		return nil, fmt.Errorf("analysis: no comparable pairs")
	}
	quart, err := stats.ColumnQuantiles(xs, ys, 0, 1, 10, 0.25, 0.5, 0.75)
	if err != nil {
		return nil, err
	}
	return &EstimatorCorrelation{
		Grid:      grid,
		Quartiles: quart,
		R:         stats.Pearson(xs, ys),
		UnderFrac: float64(under) / float64(pairs),
		Pairs:     pairs,
		Blocks:    nblocks,
	}, nil
}

// DiurnalValidation is the Table 1 confusion matrix: ground truth from
// classifying the true availability series, prediction from classifying the
// estimated series.
type DiurnalValidation struct {
	// TruePos, TrueNeg, FalseNeg, FalsePos follow Table 1's four rows
	// (d/d̂, n/n̂, d/n̂, n/d̂) where "diurnal" means strict or relaxed.
	TruePos, TrueNeg, FalseNeg, FalsePos int
}

// Total returns the number of validated blocks.
func (v DiurnalValidation) Total() int {
	return v.TruePos + v.TrueNeg + v.FalseNeg + v.FalsePos
}

// Precision is TP / (TP + FP): how rarely a predicted diurnal block is
// wrong (the paper reports 82.48%).
func (v DiurnalValidation) Precision() float64 {
	d := v.TruePos + v.FalsePos
	if d == 0 {
		return 0
	}
	return float64(v.TruePos) / float64(d)
}

// Accuracy is (TP + TN) / total (the paper reports 90.99%).
func (v DiurnalValidation) Accuracy() float64 {
	t := v.Total()
	if t == 0 {
		return 0
	}
	return float64(v.TruePos+v.TrueNeg) / float64(t)
}

// Recall is TP / (TP + FN); the paper accepts a high false-negative rate
// (conservative detection), so this is expected to be moderate.
func (v DiurnalValidation) Recall() float64 {
	d := v.TruePos + v.FalseNeg
	if d == 0 {
		return 0
	}
	return float64(v.TruePos) / float64(d)
}

// ValidateDiurnalDetection reproduces Table 1 over the world's blocks:
// classify each block twice — once from full-survey truth, once from the
// adaptive estimate — and cross-tabulate. "Diurnal" here means strictly
// diurnal on both sides: the relaxed class is deliberately loose (Fig 10
// shows 1 c/d peaks in ~25% of blocks while only 11% pass strict), and
// only the strict test yields the paper's high-precision regime.
func ValidateDiurnalDetection(w *world.World, cfg core.PipelineConfig, workers int) (*DiurnalValidation, error) {
	if workers <= 0 {
		workers = 4
	}
	pl := core.NewPipeline(w.Net, cfg)
	var mu sync.Mutex
	var v DiurnalValidation

	var wg sync.WaitGroup
	ch := make(chan netsim.BlockID)
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ch {
				run, err := pl.RunBlock(id)
				if err != nil {
					if isSparse(err) {
						continue
					}
					select {
					case errCh <- err:
					default:
					}
					continue
				}
				sv, err := pl.Survey(id)
				if err != nil {
					continue
				}
				truthRes, _, err := core.ClassifySeries(sv)
				if err != nil {
					continue
				}
				truth := truthRes.Class == core.StrictDiurnal
				pred := run.Result.Class == core.StrictDiurnal
				mu.Lock()
				switch {
				case truth && pred:
					v.TruePos++
				case !truth && !pred:
					v.TrueNeg++
				case truth && !pred:
					v.FalseNeg++
				default:
					v.FalsePos++
				}
				mu.Unlock()
			}
		}()
	}
	for _, b := range w.Blocks {
		ch <- b.ID
	}
	close(ch)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	if v.Total() == 0 {
		return nil, fmt.Errorf("analysis: no blocks validated")
	}
	return &v, nil
}
