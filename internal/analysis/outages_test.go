package analysis

import (
	"testing"
	"time"

	"sleepnet/internal/world"
)

func TestOutageTableAndCorrelation(t *testing.T) {
	w, err := world.Generate(world.Config{Blocks: 900, Seed: 61, OutagesPerBlockWeek: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	st, err := MeasureWorld(w, StudyConfig{Days: 14, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rows := st.OutageTable(5, true)
	if len(rows) < 8 {
		t.Fatalf("only %d countries in outage table", len(rows))
	}
	var totalEpisodes int
	rateByCode := map[string]float64{}
	for _, r := range rows {
		totalEpisodes += r.Agg.Episodes
		rateByCode[r.Code] = r.EpisodesPerBlockWeek
		if r.Agg.Uptime < 0.5 || r.Agg.Uptime > 1 {
			t.Fatalf("%s uptime = %v", r.Code, r.Agg.Uptime)
		}
	}
	if totalEpisodes == 0 {
		t.Fatal("no outages detected despite injection")
	}
	// The GDP gradient: US should see fewer outages per block-week than a
	// low-GDP country with enough blocks (use CN, always populous).
	if usRate, cnRate := rateByCode["US"], rateByCode["CN"]; !(usRate < cnRate) {
		t.Fatalf("US outage rate %v should be below CN %v", usRate, cnRate)
	}
	r, anova, err := st.OutageGDPCorrelation(5)
	if err != nil {
		t.Fatal(err)
	}
	if r >= 0 {
		t.Fatalf("outage-GDP correlation = %v, want negative", r)
	}
	if anova.P > 0.2 {
		t.Logf("note: outage-GDP ANOVA p = %v (small world, noisy)", anova.P)
	}
}

func TestOutageTableNoInjection(t *testing.T) {
	_, st, _ := sharedStudy(t)
	// The fixture world injects no outages. With diurnal blocks excluded,
	// false outages should be rare.
	rows := st.OutageTable(5, true)
	for _, r := range rows {
		if r.EpisodesPerBlockWeek > 0.5 {
			t.Fatalf("%s has %v episodes/block-week without injection", r.Code, r.EpisodesPerBlockWeek)
		}
	}
	// With diurnal blocks included, sleeping networks register as nightly
	// outages — the confound the paper's classifier lets one remove. Verify
	// the raw table shows strictly more episodes for a diurnal-heavy
	// country.
	raw := st.OutageTable(5, false)
	rateOf := func(rows []OutageRow, code string) (float64, bool) {
		for _, r := range rows {
			if r.Code == code {
				return r.EpisodesPerBlockWeek, true
			}
		}
		return 0, false
	}
	cnRaw, ok1 := rateOf(raw, "CN")
	cnClean, ok2 := rateOf(rows, "CN")
	if ok1 && ok2 && !(cnRaw > cnClean) {
		t.Fatalf("raw CN outage rate %v should exceed diurnal-excluded %v", cnRaw, cnClean)
	}
	if _, _, err := st.OutageGDPCorrelation(1 << 30); err == nil {
		t.Fatal("impossible floor should error")
	}
}

func TestAddressCensus(t *testing.T) {
	w, err := world.Generate(world.Config{Blocks: 300, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := AddressCensus(w, DefaultStart, 48*time.Hour, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 48 {
		t.Fatalf("points = %d", len(pts))
	}
	sw, err := SummarizeCensus(pts)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Mean <= 0 || sw.Min > sw.Max {
		t.Fatalf("swing = %+v", sw)
	}
	// Diurnal blocks must produce a visible daily swing, and the
	// non-diurnal contribution must be much flatter.
	if sw.SwingFraction < 0.02 {
		t.Fatalf("total swing = %v, want visible", sw.SwingFraction)
	}
	nd := make([]CensusPoint, len(pts))
	for i, p := range pts {
		nd[i] = CensusPoint{Time: p.Time, Active: p.ActiveNonDiurnal}
	}
	swND, err := SummarizeCensus(nd)
	if err != nil {
		t.Fatal(err)
	}
	if swND.SwingFraction >= sw.SwingFraction {
		t.Fatalf("non-diurnal swing %v should be below total %v", swND.SwingFraction, sw.SwingFraction)
	}
	// Errors.
	if _, err := AddressCensus(w, DefaultStart, 0, time.Hour); err == nil {
		t.Fatal("zero duration should error")
	}
	if _, err := AddressCensus(w, DefaultStart, time.Hour, 2*time.Hour); err == nil {
		t.Fatal("step > duration should error")
	}
	if _, err := SummarizeCensus(nil); err == nil {
		t.Fatal("empty census should error")
	}
}
