package analysis

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sleepnet/internal/core"
	"sleepnet/internal/geo"
	"sleepnet/internal/rdns"
	"sleepnet/internal/stats"
	"sleepnet/internal/world"
)

// --- Fig 10: distribution of the strongest frequency ---

// FrequencyDistribution is the Fig 10 result: the empirical CDF of the
// strongest periodicity (cycles/day) across blocks, plus the mass near the
// interesting frequencies.
type FrequencyDistribution struct {
	CDF *stats.ECDF
	// FracDaily is the mass within ±tolerance of 1 cycle/day.
	FracDaily float64
	// FracRestartArtifact is the mass near 24/5.5 ≈ 4.36 cycles/day, the
	// prober-restart artifact.
	FracRestartArtifact float64
}

// FrequencyCDF computes Fig 10 over the study's measured blocks.
func (s *Study) FrequencyCDF() (*FrequencyDistribution, error) {
	m := s.Measured()
	if len(m) == 0 {
		return nil, fmt.Errorf("analysis: no measured blocks")
	}
	vals := make([]float64, 0, len(m))
	var daily, restart int
	restartCPD := 24.0 / 5.5
	for _, b := range m {
		v := b.StrongestCPD
		vals = append(vals, v)
		if math.Abs(v-1) <= 0.15 {
			daily++
		}
		if math.Abs(v-restartCPD) <= 0.3 {
			restart++
		}
	}
	return &FrequencyDistribution{
		CDF:                 stats.NewECDF(vals),
		FracDaily:           float64(daily) / float64(len(m)),
		FracRestartArtifact: float64(restart) / float64(len(m)),
	}, nil
}

// --- Fig 11: long-term trend over surveys ---

// TrendPoint is one survey in Fig 11.
type TrendPoint struct {
	Date        time.Time
	Site        string // w, c, or j
	FracDiurnal float64
	Blocks      int
}

// LongTermTrend reproduces Fig 11: a sequence of survey-scale measurements
// over several years, with the world's dynamic-address share drifting so
// the diurnal fraction declines after 2012 as the paper observed. Each
// survey samples blocksPerSurvey blocks.
func LongTermTrend(surveys int, blocksPerSurvey int, seed uint64) ([]TrendPoint, error) {
	if surveys <= 0 || blocksPerSurvey <= 0 {
		return nil, fmt.Errorf("analysis: need positive surveys and blocks")
	}
	sites := []string{"w", "c", "j"}
	startDate := time.Date(2009, time.December, 1, 0, 0, 0, 0, time.UTC)
	out := make([]TrendPoint, 0, surveys)
	for i := 0; i < surveys; i++ {
		// Surveys every ~3 weeks across the span.
		date := startDate.AddDate(0, 0, i*21)
		// The underlying diurnal propensity: roughly flat through 2012,
		// declining afterwards (dynamic addresses shifting to always-on).
		years := date.Sub(startDate).Hours() / 24 / 365
		mult := 1.0
		if date.After(time.Date(2012, time.June, 1, 0, 0, 0, 0, time.UTC)) {
			mult = 1.0 - 0.12*(years-2.5)
		}
		if mult < 0.5 {
			mult = 0.5
		}
		w, err := generateScaledWorld(blocksPerSurvey, seed+uint64(i)*7919, mult)
		if err != nil {
			return nil, err
		}
		st, err := MeasureWorld(w, StudyConfig{Days: 14, Seed: seed + uint64(i)})
		if err != nil {
			return nil, err
		}
		strict, _ := st.DiurnalFraction()
		out = append(out, TrendPoint{
			Date:        date,
			Site:        sites[i%len(sites)],
			FracDiurnal: strict,
			Blocks:      len(st.Measured()),
		})
	}
	return out, nil
}

// generateScaledWorld builds a world whose country diurnal fractions are
// scaled by mult (used by the long-term trend).
func generateScaledWorld(blocks int, seed uint64, mult float64) (*world.World, error) {
	saved := make([]float64, len(world.Countries))
	for i := range world.Countries {
		saved[i] = world.Countries[i].DiurnalFrac
		f := world.Countries[i].DiurnalFrac * mult
		if f > 0.95 {
			f = 0.95
		}
		world.Countries[i].DiurnalFrac = f
	}
	defer func() {
		for i := range world.Countries {
			world.Countries[i].DiurnalFrac = saved[i]
		}
	}()
	return world.Generate(world.Config{Blocks: blocks, Seed: seed})
}

// --- Figs 12, 13: world maps ---

// WorldMaps holds the Fig 12 (counts) and Fig 13 (percent diurnal) grids.
type WorldMaps struct {
	Counts *geo.Grid
	// Geolocated counts how many measured blocks resolved in the database.
	Geolocated int
}

// BuildWorldMaps aggregates the study onto a 2°x2° grid through the
// geolocation database; the same grid answers both Fig 12 (totals) and
// Fig 13 (marked fraction = strictly diurnal).
func (s *Study) BuildWorldMaps(db *geo.DB) (*WorldMaps, error) {
	g, err := geo.NewGrid(2)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, b := range s.Measured() {
		e, ok := db.Lookup(b.Info.ID)
		if !ok {
			continue
		}
		n++
		g.Add(e.Lat, e.Lon, b.Class == core.StrictDiurnal)
	}
	if n == 0 {
		return nil, fmt.Errorf("analysis: nothing geolocated")
	}
	return &WorldMaps{Counts: g, Geolocated: n}, nil
}

// --- Fig 15: allocation-date trend ---

// AllocationTrend is the Fig 15 result.
type AllocationTrend struct {
	// Months are month offsets (x) and Frac the diurnal fraction (y) for
	// months with data.
	Months []time.Time
	Frac   []float64
	Blocks []int
	// Fit is the linear regression of percent-diurnal against month index
	// (paper: slope ≈ +0.08%/month, r ≈ 0.609).
	Fit stats.LinearFit
}

// AllocationDateTrend reproduces Fig 15: diurnal fraction of blocks grouped
// by their /8's allocation month. Months with fewer than minBlocks blocks
// are skipped.
func (s *Study) AllocationDateTrend(minBlocks int) (*AllocationTrend, error) {
	type agg struct{ n, d int }
	byMonth := make(map[string]*agg)
	monthDate := make(map[string]time.Time)
	for _, b := range s.Measured() {
		t := b.Info.AllocDate
		key := fmt.Sprintf("%04d-%02d", t.Year(), int(t.Month()))
		a := byMonth[key]
		if a == nil {
			a = &agg{}
			byMonth[key] = a
			monthDate[key] = time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
		}
		a.n++
		if b.Class == core.StrictDiurnal {
			a.d++
		}
	}
	keys := make([]string, 0, len(byMonth))
	for k, a := range byMonth {
		if a.n >= minBlocks {
			keys = append(keys, k)
		}
	}
	if len(keys) < 3 {
		return nil, fmt.Errorf("analysis: only %d allocation months with >= %d blocks", len(keys), minBlocks)
	}
	sort.Strings(keys)
	out := &AllocationTrend{}
	var xs, ys []float64
	epoch := monthDate[keys[0]]
	for _, k := range keys {
		a := byMonth[k]
		frac := float64(a.d) / float64(a.n)
		out.Months = append(out.Months, monthDate[k])
		out.Frac = append(out.Frac, frac)
		out.Blocks = append(out.Blocks, a.n)
		months := monthDate[k].Sub(epoch).Hours() / 24 / 30.44
		xs = append(xs, months)
		ys = append(ys, frac*100) // percent, like the paper's slope units
	}
	fit, err := stats.FitLine(xs, ys)
	if err != nil {
		return nil, err
	}
	out.Fit = fit
	return out, nil
}

// --- Fig 17: link technology ---

// LinkTypeRow is one bar of Fig 17.
type LinkTypeRow struct {
	Keyword     string
	Blocks      int
	FracDiurnal float64
}

// LinkTypeResult is the Fig 17 outcome plus the §2.3.3 coverage stats.
type LinkTypeResult struct {
	Rows []LinkTypeRow
	// ClassifiedFrac is the fraction of blocks with at least one feature
	// (paper: 46.3% at full scale; the study's synthesizer matches).
	ClassifiedFrac float64
	// MultiFrac is the fraction with multiple features (paper: 11.4%).
	MultiFrac float64
}

// LinkTypes reproduces Fig 17: classify every measured block's reverse
// names, then compute the strictly-diurnal fraction per kept keyword.
func (s *Study) LinkTypes(seed uint64) (*LinkTypeResult, error) {
	m := s.Measured()
	if len(m) == 0 {
		return nil, fmt.Errorf("analysis: no measured blocks")
	}
	synth := rdns.NewSynthesizer(seed)
	type agg struct{ n, d int }
	byKw := make(map[string]*agg)
	classified, multi := 0, 0
	for _, b := range m {
		names := synth.BlockNames(b.Info.ID, b.Info.LinkType, rdns.Domain(b.Info.OrgName))
		cls := rdns.ClassifyBlock(names)
		if len(cls.Features) > 0 {
			classified++
		}
		if cls.Multi() {
			multi++
		}
		for _, f := range cls.Features {
			a := byKw[f]
			if a == nil {
				a = &agg{}
				byKw[f] = a
			}
			a.n++
			if b.Class == core.StrictDiurnal {
				a.d++
			}
		}
	}
	out := &LinkTypeResult{
		ClassifiedFrac: float64(classified) / float64(len(m)),
		MultiFrac:      float64(multi) / float64(len(m)),
	}
	for _, kw := range rdns.KeptKeywords {
		a := byKw[kw]
		if a == nil || a.n == 0 {
			continue
		}
		out.Rows = append(out.Rows, LinkTypeRow{
			Keyword:     kw,
			Blocks:      a.n,
			FracDiurnal: float64(a.d) / float64(a.n),
		})
	}
	return out, nil
}

// --- Table 2: cross-site comparison ---

// CrossSite is the Table 2 result: the 3x3 cross-tabulation of
// {strict, either, non} between two vantage points.
type CrossSite struct {
	// M[i][j]: i indexes site A's class (0 strict, 1 either, 2 non),
	// j site B's. "Either" counts strict+relaxed, so M is not a partition:
	// like the paper's Table 2, row "d" is a subset of row "e".
	M [3][3]int
	// StrongDisagree is the fraction of site-A strict blocks that site B
	// calls non-diurnal (paper: ~1.2%).
	StrongDisagree float64
}

// CompareSites reproduces Table 2 between two studies of the same world
// (different vantage points = different probing seeds and paths).
func CompareSites(a, b *Study) (*CrossSite, error) {
	if a.World != b.World {
		return nil, fmt.Errorf("analysis: studies must share a world")
	}
	classOf := func(st *Study) map[uint32]core.DiurnalClass {
		out := make(map[uint32]core.DiurnalClass)
		for _, mb := range st.Measured() {
			out[uint32(mb.Info.ID)] = mb.Class
		}
		return out
	}
	ca, cb := classOf(a), classOf(b)
	var cs CrossSite
	idx := func(c core.DiurnalClass) []int {
		switch c {
		case core.StrictDiurnal:
			return []int{0, 1} // strict is also "either"
		case core.RelaxedDiurnal:
			return []int{1}
		default:
			return []int{2}
		}
	}
	var strictA, strictANonB int
	for id, clsA := range ca {
		clsB, ok := cb[id]
		if !ok {
			continue
		}
		for _, i := range idx(clsA) {
			for _, j := range idx(clsB) {
				cs.M[i][j]++
			}
		}
		if clsA == core.StrictDiurnal {
			strictA++
			if clsB == core.NonDiurnal {
				strictANonB++
			}
		}
	}
	if strictA > 0 {
		cs.StrongDisagree = float64(strictANonB) / float64(strictA)
	}
	return &cs, nil
}

// ConsensusResult summarizes a majority-vote classification across several
// vantage points — the natural use of the paper's three sites (Los Angeles,
// Colorado, Keio): blocks are labelled strictly diurnal only when a
// majority of sites agree, trading a little recall for precision.
type ConsensusResult struct {
	// Strict maps block id to consensus strictness for blocks measured at
	// a majority of sites.
	Strict map[uint32]bool
	// FlippedFromFirst counts blocks whose consensus differs from the
	// first site's verdict.
	FlippedFromFirst int
	// Blocks is the consensus population size.
	Blocks int
}

// ConsensusClassify majority-votes strict-diurnal verdicts across studies
// of the same world. At least two studies are required.
func ConsensusClassify(studies ...*Study) (*ConsensusResult, error) {
	if len(studies) < 2 {
		return nil, fmt.Errorf("analysis: consensus needs >= 2 studies, got %d", len(studies))
	}
	for _, st := range studies[1:] {
		if st.World != studies[0].World {
			return nil, fmt.Errorf("analysis: studies must share a world")
		}
	}
	votes := make(map[uint32][2]int) // id -> {strictVotes, totalVotes}
	first := make(map[uint32]bool)
	for si, st := range studies {
		for _, mb := range st.Measured() {
			id := uint32(mb.Info.ID)
			v := votes[id]
			v[1]++
			if mb.Class == core.StrictDiurnal {
				v[0]++
				if si == 0 {
					first[id] = true
				}
			}
			votes[id] = v
		}
	}
	res := &ConsensusResult{Strict: make(map[uint32]bool)}
	majority := len(studies)/2 + 1
	for id, v := range votes {
		if v[1] < majority {
			continue // not measured at enough sites
		}
		strict := v[0] >= majority
		res.Strict[id] = strict
		res.Blocks++
		if strict != first[id] {
			res.FlippedFromFirst++
		}
	}
	return res, nil
}

// CompareSiteFrequencies strengthens Table 2 distributionally: a two-sample
// Kolmogorov-Smirnov test over the strongest-frequency samples of both
// vantage points. Measurement location should not change the frequency
// distribution, so a high p-value is the expected outcome.
func CompareSiteFrequencies(a, b *Study) (stats.KSResult, error) {
	if a.World != b.World {
		return stats.KSResult{}, fmt.Errorf("analysis: studies must share a world")
	}
	sample := func(st *Study) []float64 {
		m := st.Measured()
		out := make([]float64, 0, len(m))
		for _, mb := range m {
			out = append(out, mb.StrongestCPD)
		}
		return out
	}
	return stats.KSTest(sample(a), sample(b))
}
