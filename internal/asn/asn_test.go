package asn

import (
	"testing"

	"sleepnet/internal/netsim"
	"sleepnet/internal/world"
)

func TestClusterKey(t *testing.T) {
	cases := map[string]string{
		"Brazil Telecom":         "brazil",
		"BrazilNet Backbone":     "brazilnet",
		"Cable Brazil":           "brazil",
		"Time Warner Cable":      "time warner",
		"The University of Oslo": "oslo",
		"Telecom":                "",
		"":                       "",
		"AS-Foo Networks LLC":    "foo",
	}
	for in, want := range cases {
		if got := ClusterKey(in); got != want {
			t.Errorf("ClusterKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNewTableAndLookup(t *testing.T) {
	b1 := netsim.MakeBlockID(1, 2, 3)
	tab := NewTable(
		map[netsim.BlockID]int{b1: 100},
		map[int]string{100: "Foo Telecom", 101: "Foo Broadband"},
	)
	if a, ok := tab.ASNOf(b1); !ok || a != 100 {
		t.Fatalf("ASNOf = %d %v", a, ok)
	}
	if _, ok := tab.ASNOf(netsim.MakeBlockID(9, 9, 9)); ok {
		t.Fatal("unknown block should fail")
	}
	if tab.NameOf(100) != "Foo Telecom" || tab.NameOf(999) != "" {
		t.Fatal("NameOf")
	}
	if tab.Coverage() != 1 {
		t.Fatalf("Coverage = %d", tab.Coverage())
	}
}

func TestClustersGroupRelatedASes(t *testing.T) {
	tab := NewTable(nil, map[int]string{
		1: "Acme Telecom",
		2: "Cable Acme",
		3: "Zenith Networks",
		4: "Telecom", // degenerate, dropped
	})
	clusters := tab.Clusters()
	if got := clusters["acme"]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("acme cluster = %v", got)
	}
	if got := clusters["zenith"]; len(got) != 1 {
		t.Fatalf("zenith cluster = %v", got)
	}
	if _, ok := clusters[""]; ok {
		t.Fatal("empty key cluster should not exist")
	}
}

func TestBlocksOfOrg(t *testing.T) {
	b1 := netsim.MakeBlockID(1, 0, 0)
	b2 := netsim.MakeBlockID(2, 0, 0)
	b3 := netsim.MakeBlockID(3, 0, 0)
	tab := NewTable(
		map[netsim.BlockID]int{b1: 1, b2: 2, b3: 3},
		map[int]string{1: "Acme Telecom", 2: "Cable Acme", 3: "Zenith Networks"},
	)
	got := tab.BlocksOfOrg("acme")
	if len(got) != 2 || got[0] != b1 || got[1] != b2 {
		t.Fatalf("BlocksOfOrg(acme) = %v", got)
	}
	if got := tab.BlocksOfOrg("zenith"); len(got) != 1 || got[0] != b3 {
		t.Fatalf("BlocksOfOrg(zenith) = %v", got)
	}
	if got := tab.BlocksOfOrg("nonexistent"); len(got) != 0 {
		t.Fatalf("BlocksOfOrg(nonexistent) = %v", got)
	}
}

func TestFromWorld(t *testing.T) {
	w, err := world.Generate(world.Config{Blocks: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tab := FromWorld(w, 0, 9) // default coverage 0.9941
	frac := float64(tab.Coverage()) / float64(len(w.Blocks))
	if frac < 0.985 || frac > 1 {
		t.Fatalf("coverage = %v", frac)
	}
	// Mapped blocks resolve to the right org.
	hits := 0
	for _, b := range w.Blocks {
		a, ok := tab.ASNOf(b.ID)
		if !ok {
			continue
		}
		hits++
		if a != b.ASN || tab.NameOf(a) != b.OrgName {
			t.Fatalf("block %s maps to %d/%q, want %d/%q", b.ID, a, tab.NameOf(a), b.ASN, b.OrgName)
		}
	}
	if hits == 0 {
		t.Fatal("no blocks mapped")
	}
	// An org keyword query returns that country's operator blocks.
	blocks := tab.BlocksOfOrg("brazil")
	if len(blocks) == 0 {
		t.Fatal("no Brazilian operator blocks found")
	}
	for _, id := range blocks {
		if w.ByID[id].Country.Code != "BR" {
			t.Fatalf("block %s is %s, not BR", id, w.ByID[id].Country.Code)
		}
	}
}
