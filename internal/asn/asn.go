// Package asn maps IP blocks to autonomous systems and clusters ASes into
// organizations, following §2.3.2 of the paper: blocks map to an AS by
// their .0 address (Team Cymru-style), and ASes map to organizations by
// WHOIS-name string clustering — generic tokens are stripped and the
// remaining distinctive tokens form the cluster key, so "Brazil Telecom"
// and "BrazilNet Backbone" cluster together.
package asn

import (
	"sort"
	"strings"

	"sleepnet/internal/netsim"
	"sleepnet/internal/world"
)

// Table is an immutable block→ASN and ASN→name mapping.
type Table struct {
	blockASN map[netsim.BlockID]int
	asnName  map[int]string
}

// NewTable builds a table from explicit mappings (both copied).
func NewTable(blockASN map[netsim.BlockID]int, asnName map[int]string) *Table {
	t := &Table{
		blockASN: make(map[netsim.BlockID]int, len(blockASN)),
		asnName:  make(map[int]string, len(asnName)),
	}
	for k, v := range blockASN {
		t.blockASN[k] = v
	}
	for k, v := range asnName {
		t.asnName[k] = v
	}
	return t
}

// FromWorld derives the table the measurement side uses from ground truth,
// with the paper's coverage (99.41% of blocks resolve). Dropped blocks are
// deterministic in the seed.
func FromWorld(w *world.World, coverage float64, seed uint64) *Table {
	if coverage <= 0 {
		coverage = 0.9941
	}
	blockASN := make(map[netsim.BlockID]int, len(w.Blocks))
	for _, b := range w.Blocks {
		if coverage < 1 && hashUnit(seed, uint64(b.ID)) >= coverage {
			continue
		}
		blockASN[b.ID] = b.ASN
	}
	return NewTable(blockASN, w.ASNOrg)
}

func hashUnit(seed uint64, x uint64) float64 {
	h := seed + 0x9e3779b97f4a7c15
	mix := func(v uint64) uint64 {
		v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
		v = (v ^ (v >> 27)) * 0x94d049bb133111eb
		return v ^ (v >> 31)
	}
	h = mix(mix(h) ^ x)
	return float64(h>>11) / (1 << 53)
}

// ASNOf returns the AS number announcing the block (by its .0 address).
func (t *Table) ASNOf(id netsim.BlockID) (int, bool) {
	a, ok := t.blockASN[id]
	return a, ok
}

// NameOf returns the registered name of an AS, or "".
func (t *Table) NameOf(asn int) string { return t.asnName[asn] }

// Coverage returns the number of mapped blocks.
func (t *Table) Coverage() int { return len(t.blockASN) }

// genericTokens are words too common in AS names to distinguish operators.
var genericTokens = map[string]bool{
	"telecom": true, "net": true, "backbone": true, "cable": true,
	"broadband": true, "university": true, "of": true, "mobile": true,
	"inc": true, "llc": true, "ltd": true, "co": true, "corp": true,
	"communications": true, "network": true, "networks": true, "isp": true,
	"the": true, "and": true, "services": true, "as": true,
}

// ClusterKey normalizes an AS name to its organization cluster key: the
// distinctive tokens, lowercased and sorted. Names reduced to nothing
// return "".
func ClusterKey(name string) string {
	fields := strings.FieldsFunc(strings.ToLower(name), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
	var keep []string
	for _, f := range fields {
		if genericTokens[f] {
			continue
		}
		keep = append(keep, f)
	}
	if len(keep) == 0 {
		return ""
	}
	sort.Strings(keep)
	return strings.Join(keep, " ")
}

// Clusters groups all known ASes by organization cluster key.
func (t *Table) Clusters() map[string][]int {
	out := make(map[string][]int)
	for asn, name := range t.asnName {
		k := ClusterKey(name)
		if k == "" {
			continue
		}
		out[k] = append(out[k], asn)
	}
	for _, asns := range out {
		sort.Ints(asns)
	}
	return out
}

// BlocksOfOrg returns the blocks operated by any AS whose name matches the
// keyword (case-insensitive substring, the paper's "Time Warner" example):
// keyword match finds the clusters, then all ASes in those clusters, then
// all their blocks.
func (t *Table) BlocksOfOrg(keyword string) []netsim.BlockID {
	kw := strings.ToLower(keyword)
	clusters := t.Clusters()
	matched := make(map[int]bool)
	for key, asns := range clusters {
		hit := strings.Contains(key, kw)
		if !hit {
			// Also match against the raw names within the cluster.
			for _, a := range asns {
				if strings.Contains(strings.ToLower(t.asnName[a]), kw) {
					hit = true
					break
				}
			}
		}
		if hit {
			for _, a := range asns {
				matched[a] = true
			}
		}
	}
	var out []netsim.BlockID
	for id, a := range t.blockASN {
		if matched[a] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
