package netsim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sleepnet/internal/icmp"
	"sleepnet/internal/ipv4"
)

// Response is the outcome of one probe round trip.
type Response struct {
	// Data is the raw reply packet; nil when the probe timed out.
	Data []byte
	// RTT is the simulated round-trip time for delivered replies.
	RTT time.Duration
	// Timeout is true when no reply arrived (address down, block in outage,
	// or packet loss) — indistinguishable causes, as on the real Internet.
	Timeout bool
	// SendFailed is true when the probe never left the vantage point (local
	// send error, e.g. during a vantage blackout). Unlike a timeout this is
	// knowably transient and carries no evidence about the target, so a
	// prober may retry it.
	SendFailed bool
}

// TapVerdict is the fate a Tap assigns to an outbound probe.
type TapVerdict int

const (
	// TapDeliver lets the probe through unharmed.
	TapDeliver TapVerdict = iota
	// TapDrop loses the probe silently in transit (indistinguishable from a
	// down target).
	TapDrop
	// TapSendError fails the probe at the vantage point before it is sent.
	TapSendError
	// TapAdminProhibited has an intermediate device eat the probe and answer
	// with an ICMP administratively-prohibited unreachable (rate limiting).
	TapAdminProhibited
)

// Tap perturbs the delivery path — the hook the fault-injection layer
// (internal/faults) attaches to. A nil tap, like a zero-value injector, is
// a no-op. Implementations must be safe for concurrent use; SetTap must not
// race with probing (same rule as AddBlock).
type Tap interface {
	// Outbound is consulted before a probe is routed. It returns the
	// (possibly skewed) timestamp delivery should use and the verdict.
	Outbound(dst Addr, now time.Time) (time.Time, TapVerdict)
	// Inbound may corrupt or replace a reply on its way back. Returning nil
	// drops the reply (the probe times out).
	Inbound(dst Addr, reply []byte, now time.Time) []byte
}

// Counters accumulates network-wide accounting, used to check the paper's
// "<20 probes per hour per /24" claim.
type Counters struct {
	Probes      atomic.Int64
	Replies     atomic.Int64
	Timeouts    atomic.Int64
	Lost        atomic.Int64
	Malformed   atomic.Int64
	RateLimited atomic.Int64
}

// Network is the simulated Internet edge: a set of /24 blocks addressable
// by ICMP echo probes. Probe is safe for concurrent use; topology mutation
// (AddBlock) must not race with probing.
type Network struct {
	mu     sync.RWMutex
	blocks map[BlockID]*Block
	seed   uint64
	tap    Tap

	// Stats counts global probe outcomes.
	Stats Counters
	// perBlockProbes counts probes per block for radiation-budget checks.
	perBlockProbes sync.Map // BlockID -> *atomic.Int64
}

// NewNetwork creates an empty simulated network with the given seed.
func NewNetwork(seed uint64) *Network {
	return &Network{blocks: make(map[BlockID]*Block), seed: seed}
}

// SetTap installs (or, with nil, removes) a delivery-path fault tap. Like
// AddBlock it must not race with probing.
func (n *Network) SetTap(t Tap) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tap = t
}

// AddBlock registers a block. Re-adding a BlockID replaces it.
func (n *Network) AddBlock(b *Block) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocks[b.ID] = b
}

// Block returns the block with the given id, or nil.
func (n *Network) Block(id BlockID) *Block {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.blocks[id]
}

// NumBlocks returns the number of registered blocks.
func (n *Network) NumBlocks() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.blocks)
}

// BlockIDs returns all registered block ids in ascending order, so callers
// iterating the network never inherit map order.
func (n *Network) BlockIDs() []BlockID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]BlockID, 0, len(n.blocks))
	for id := range n.blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Probe sends the marshalled ICMP packet pkt to dst at virtual time now and
// returns the outcome. Malformed probes are dropped (counted, timeout), as
// a real network stack would discard them.
func (n *Network) Probe(dst Addr, pkt []byte, now time.Time) Response {
	n.Stats.Probes.Add(1)
	n.countBlockProbe(dst.Block)

	echo, err := icmp.ParseEcho(pkt)
	if err != nil || echo.Reply {
		n.Stats.Malformed.Add(1)
		return Response{Timeout: true}
	}

	n.mu.RLock()
	blk := n.blocks[dst.Block]
	tap := n.tap
	n.mu.RUnlock()

	if tap != nil {
		var v TapVerdict
		now, v = tap.Outbound(dst, now)
		switch v {
		case TapDrop:
			n.Stats.Lost.Add(1)
			n.Stats.Timeouts.Add(1)
			return Response{Timeout: true}
		case TapSendError:
			return Response{Timeout: true, SendFailed: true}
		case TapAdminProhibited:
			n.Stats.RateLimited.Add(1)
			un, uerr := (&icmp.Unreachable{Code: icmp.CodeAdminProhibited, Original: pkt}).Marshal()
			if uerr != nil {
				n.Stats.Timeouts.Add(1)
				return Response{Timeout: true}
			}
			rtt := 20 * time.Millisecond
			if blk != nil {
				rtt = blk.LatencyBase
			}
			return n.inbound(tap, dst, Response{Data: un, RTT: rtt}, now)
		}
	}

	if blk == nil {
		// Unrouted space: silence.
		n.Stats.Timeouts.Add(1)
		return Response{Timeout: true}
	}

	// Path loss, one Bernoulli draw per round trip, keyed so retransmissions
	// (new seq) redraw but duplicates (same seq) are consistent.
	if blk.Loss > 0 {
		k := prfFloat(n.seed^blk.Seed, dst.key(), uint64(echo.ID)<<16|uint64(echo.Seq), uint64(now.UnixNano()))
		if k < blk.Loss {
			n.Stats.Lost.Add(1)
			n.Stats.Timeouts.Add(1)
			return Response{Timeout: true}
		}
	}

	if !blk.RespondsAt(dst.Host, now) {
		// During an outage an upstream gateway may answer on the block's
		// behalf with destination-unreachable.
		if blk.GatewayUnreachableProb > 0 && blk.InOutage(now) {
			u := prfFloat(n.seed^blk.Seed^0x6a7e, dst.key(), uint64(echo.Seq), uint64(now.UnixNano()))
			if u < blk.GatewayUnreachableProb {
				un, err := (&icmp.Unreachable{Code: icmp.CodeHostUnreachable, Original: pkt}).Marshal()
				if err == nil {
					n.Stats.Replies.Add(1)
					return n.inbound(tap, dst, Response{Data: un, RTT: blk.LatencyBase}, now)
				}
			}
		}
		n.Stats.Timeouts.Add(1)
		return Response{Timeout: true}
	}

	if !blk.allowReply(now) {
		n.Stats.RateLimited.Add(1)
		n.Stats.Timeouts.Add(1)
		return Response{Timeout: true}
	}

	reply, err := icmp.ReplyTo(echo).Marshal()
	if err != nil {
		// Cannot happen for a parsed request, but fail closed.
		n.Stats.Malformed.Add(1)
		return Response{Timeout: true}
	}
	rtt := blk.LatencyBase
	if blk.LatencyJitter > 0 {
		j := prfFloat(n.seed^blk.Seed^0x9badcafe, dst.key(), uint64(echo.Seq), uint64(now.UnixNano()))
		rtt += time.Duration(j * float64(blk.LatencyJitter))
	}
	n.Stats.Replies.Add(1)
	return n.inbound(tap, dst, Response{Data: reply, RTT: rtt}, now)
}

// inbound runs a delivered reply back through the tap, which may corrupt
// or drop it.
func (n *Network) inbound(tap Tap, dst Addr, resp Response, now time.Time) Response {
	if tap == nil || resp.Data == nil {
		return resp
	}
	data := tap.Inbound(dst, resp.Data, now)
	if data == nil {
		n.Stats.Timeouts.Add(1)
		return Response{Timeout: true}
	}
	resp.Data = data
	return resp
}

// DeliverIP routes a full IPv4 packet into the simulated edge: the header
// is parsed and validated, the destination is taken from it, the path's
// hop count is charged against the TTL, and the ICMP payload is delivered
// as Probe would. Replies come back IPv4-encapsulated with source and
// destination swapped. This is the path real probes take; Probe remains
// for callers that operate below the IP layer.
func (n *Network) DeliverIP(pkt []byte, now time.Time) Response {
	hdr, payload, err := ipv4.Parse(pkt)
	if err != nil || hdr.Protocol != ipv4.ProtoICMP {
		n.Stats.Probes.Add(1)
		n.Stats.Malformed.Add(1)
		return Response{Timeout: true}
	}
	dst := AddrFromIP(hdr.Dst)
	n.mu.RLock()
	blk := n.blocks[dst.Block]
	n.mu.RUnlock()
	if blk != nil {
		// The packet must survive the path.
		if _, ok := ipv4.DecrementTTL(pkt, blk.PathHops()); !ok {
			n.Stats.Probes.Add(1)
			n.countBlockProbe(dst.Block)
			n.Stats.Timeouts.Add(1)
			return Response{Timeout: true}
		}
	}
	resp := n.Probe(dst, payload, now)
	if resp.Timeout || resp.Data == nil {
		return resp
	}
	hops := 0
	if blk != nil {
		hops = blk.PathHops()
	}
	replyHdr := &ipv4.Header{
		ID:       hdr.ID,
		TTL:      byte(ipv4.DefaultTTL - min(hops, ipv4.DefaultTTL-1)),
		Protocol: ipv4.ProtoICMP,
		Src:      hdr.Dst,
		Dst:      hdr.Src,
	}
	wrapped, err := replyHdr.Marshal(resp.Data)
	if err != nil {
		n.Stats.Malformed.Add(1)
		return Response{Timeout: true}
	}
	resp.Data = wrapped
	return resp
}

func (n *Network) countBlockProbe(id BlockID) {
	v, ok := n.perBlockProbes.Load(id)
	if !ok {
		v, _ = n.perBlockProbes.LoadOrStore(id, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)
}

// ProbesToBlock returns how many probes were addressed to the block.
func (n *Network) ProbesToBlock(id BlockID) int64 {
	if v, ok := n.perBlockProbes.Load(id); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// ProbeRatePerHour converts a probe count over an observation window into
// the per-hour rate the paper budgets against background radiation.
func ProbeRatePerHour(probes int64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(probes) / window.Hours()
}

// String summarizes counters for logs.
func (c *Counters) String() string {
	return fmt.Sprintf("probes=%d replies=%d timeouts=%d lost=%d malformed=%d",
		c.Probes.Load(), c.Replies.Load(), c.Timeouts.Load(), c.Lost.Load(), c.Malformed.Load())
}
